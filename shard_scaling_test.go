package psmkit

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/psm"
	"psmkit/internal/shard"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// shardGateMinProcs is the parallel headroom the throughput half of the
// shard gate needs: four reducer goroutines plus the producers. Below
// it the gate still pins model equality and records the measured
// scaling, but cannot honestly enforce a wall-clock speedup (see
// EXPERIMENTS.md, "Shard scaling").
const shardGateMinProcs = 6

// shardBatches precomputes the batch frame table over an NDJSON payload
// produced by ingestPayload: byte range, record count and the physical
// number of the first line (the header is line 1, records start at 2).
type shardBatch struct {
	start, end, records, firstLine int
}

func shardFrames(body []byte, batch int) []shardBatch {
	var frames []shardBatch
	cur := shardBatch{firstLine: 2}
	off := 0
	for off < len(body) {
		nl := bytes.IndexByte(body[off:], '\n')
		if nl < 0 {
			break
		}
		off += nl + 1
		cur.records++
		if cur.records == batch {
			cur.end = off
			frames = append(frames, cur)
			cur = shardBatch{start: off, firstLine: 2 + len(frames)*batch}
		}
	}
	if cur.records > 0 {
		cur.end = off
		frames = append(frames, cur)
	}
	return frames
}

// balancedIDs picks one session id per slot, probing candidates against
// the coordinator's own ring so the load splits evenly across shards —
// the harness controls ids, so the benchmark measures reducer scaling,
// not hash luck.
func balancedIDs(co *shard.Coordinator, sessions int) []string {
	perShard := make([]int, co.Shards())
	quota := (sessions + co.Shards() - 1) / co.Shards()
	ids := make([]string, 0, sessions)
	for cand := 0; len(ids) < sessions; cand++ {
		id := fmt.Sprintf("sess-%04d", cand)
		if sh := co.ShardOf(id); perShard[sh] < quota {
			perShard[sh]++
			ids = append(ids, id)
		}
	}
	return ids
}

// shardIngest streams `sessions` identical-content sessions through a
// fresh coordinator concurrently and returns the ingest wall clock
// (Open through the last Close) and the final model. Identical content
// with distinct ids makes the mined model independent of shard count
// and completion interleaving, so every arm must produce the same
// model as the single-engine reference.
func shardIngest(t testing.TB, shards, sessions int, payload []byte, batch int) (time.Duration, *psm.Model) {
	t.Helper()
	sc := stream.NewScanner(bytes.NewReader(payload), 0)
	h, err := sc.ScanHeader()
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := h.Schema()
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := bytes.IndexByte(payload, '\n') + 1
	body := payload[headerEnd:]
	frames := shardFrames(body, batch)

	co := shard.New(shard.Config{Shards: shards, Stream: ingestConfig()})
	defer co.Close()
	ids := balancedIDs(co, sessions)

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sess, err := co.Open(ctx, id, sigs)
			if err != nil {
				errc <- err
				return
			}
			for _, f := range frames {
				buf := make([]byte, f.end-f.start)
				copy(buf, body[f.start:f.end])
				if err := sess.AppendLines(buf, f.records, f.firstLine); err != nil {
					sess.Abort()
					errc <- err
					return
				}
			}
			if _, _, err := sess.Close(ctx); err != nil {
				errc <- err
			}
		}(ids[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if shed := co.Shed(); shed != 0 {
		t.Fatalf("%d shards shed %d batches at default queue depth", shards, shed)
	}
	m, err := co.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, m
}

// ingestOne streams one session of the payload into an existing engine
// via the zero-copy Scanner/arena/AppendBatch path (the same loop as
// ingestNew, reusing the engine so several sessions fold into one
// model). Returns the records appended.
func ingestOne(eng *stream.Engine, sigs []trace.Signal, payload []byte, batch int) (int, error) {
	sc := stream.NewScanner(bytes.NewReader(payload), 0)
	if _, err := sc.ScanHeader(); err != nil {
		return 0, err
	}
	sess, err := eng.Open(sigs)
	if err != nil {
		return 0, err
	}
	var (
		arenas [2]logic.Arena
		raw    stream.RawRecord
		epoch  int
	)
	rows := make([][]logic.Vector, 0, batch)
	powers := make([]float64, 0, batch)
	rowMem := make([]logic.Vector, batch*len(sigs))
	n := 0
	for {
		if err := sc.ScanRecord(&raw); err == io.EOF {
			break
		} else if err != nil {
			sess.Abort()
			return n, err
		}
		a := &arenas[epoch&1]
		if len(rows) == 0 {
			a.Reset()
		}
		k := len(rows) * len(sigs)
		row, err := stream.DecodeRowArena(sigs, &raw, a, rowMem[k:k:k+len(sigs)])
		if err != nil {
			sess.Abort()
			return n, err
		}
		rows = append(rows, row)
		powers = append(powers, *raw.P)
		n++
		if len(rows) == batch {
			if err := sess.AppendBatch(rows, powers); err != nil {
				sess.Abort()
				return n, err
			}
			rows, powers = rows[:0], powers[:0]
			epoch++
		}
	}
	if len(rows) > 0 {
		if err := sess.AppendBatch(rows, powers); err != nil {
			sess.Abort()
			return n, err
		}
	}
	if _, err := sess.Close(); err != nil {
		return n, err
	}
	return n, nil
}

// TestShardScalingGate is the `make bench-shard` gate for the sharded
// ingest fan-out. It always enforces the correctness half: the model a
// coordinator mines at 1, 2, 4 and 8 shards must deep-equal the
// single-engine model over the same sessions, with zero batches shed.
// The throughput half — aggregate ingest >=3x at 4 shards vs 1 — is
// enforced when the host has the parallel headroom to make the claim
// honest (GOMAXPROCS >= shardGateMinProcs); below that the measured
// scaling is logged and recorded by scripts/loadgen in BENCH_shard.json.
func TestShardScalingGate(t *testing.T) {
	if os.Getenv("BENCH_SHARD") == "" {
		t.Skip("set BENCH_SHARD=1 (or run `make bench-shard`) to run the shard scaling gate")
	}
	const records, sessions, batch = 10000, 8, 256
	payload := ingestPayload(records, 0x9e3779b97f4a7c15)

	// Single-engine reference over the same content.
	_, _, ref := ingestMany(t, sessions, payload, batch)

	// Correctness across shard counts.
	for _, shards := range []int{1, 2, 4, 8} {
		_, m := shardIngest(t, shards, sessions, payload, batch)
		if !reflect.DeepEqual(ref, m) {
			t.Fatalf("%d-shard model differs from the single-engine reference", shards)
		}
	}

	// Throughput: min-of-rounds wall clock, 1 shard vs 4.
	const rounds = 3
	minOne, minFour := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < rounds; i++ {
		if d, _ := shardIngest(t, 1, sessions, payload, batch); d < minOne {
			minOne = d
		}
		if d, _ := shardIngest(t, 4, sessions, payload, batch); d < minFour {
			minFour = d
		}
	}
	total := sessions * records
	speedup := float64(minOne) / float64(minFour)
	t.Logf("1 shard %v (%.0f rec/s), 4 shards %v (%.0f rec/s) over %d sessions x %d records, speedup %.2fx (GOMAXPROCS=%d)",
		minOne, recPerSec(total, minOne), minFour, recPerSec(total, minFour), sessions, records, speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < shardGateMinProcs {
		t.Logf("skipping the >=3x throughput assertion: GOMAXPROCS=%d < %d leaves no parallel headroom",
			runtime.GOMAXPROCS(0), shardGateMinProcs)
		return
	}
	if speedup < 3 {
		t.Fatalf("4-shard aggregate speedup %.2fx (min over %d rounds: %v vs %v); gate is 3x",
			speedup, rounds, minFour, minOne)
	}
}

// ingestMany folds the same payload `sessions` times into one engine
// sequentially via the zero-copy path and returns the reference model.
func ingestMany(t testing.TB, sessions int, payload []byte, batch int) (time.Duration, int, *psm.Model) {
	t.Helper()
	sc := stream.NewScanner(bytes.NewReader(payload), 0)
	h, err := sc.ScanHeader()
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := h.Schema()
	if err != nil {
		t.Fatal(err)
	}
	eng := stream.NewEngine(ingestConfig())
	total := 0
	start := time.Now()
	for i := 0; i < sessions; i++ {
		n, err := ingestOne(eng, sigs, payload, batch)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	elapsed := time.Since(start)
	m, err := eng.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return elapsed, total, m
}
