module psmkit

go 1.22
