// Command bench_power sweeps the power-kernel scaling comparison and
// writes BENCH_power.json: for each banked-register-file size, the
// min-of-N replay wall clock of the scalar ReferenceEstimator walk
// versus the columnar word-scan Estimator on the same deterministic
// stimulus, with the traces pinned bit-identical. The sweep backs the
// committed BENCH_power.json and the numbers quoted in the README's
// Performance section; `make bench-power` runs the pass/fail gate
// (TestPowerKernelGate) and then refreshes the file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"psmkit/internal/hdl"
	"psmkit/internal/power"
	"psmkit/internal/powerbench"
)

// point is one sweep row of the emitted JSON.
type point struct {
	Banks           int     `json:"banks"`
	PerBank         int     `json:"per_bank"`
	Elements        int     `json:"elements"`
	Cycles          int     `json:"cycles"`
	ScalarNsPerCyc  float64 `json:"scalar_ns_per_cycle"`
	ColumnarNsPerCy float64 `json:"columnar_ns_per_cycle"`
	SpeedupX        float64 `json:"speedup_x"`
}

type report struct {
	Description string  `json:"description"`
	Rounds      int     `json:"rounds"`
	Points      []point `json:"points"`
}

type kernel interface {
	CyclePower(in, out hdl.Values) float64
}

// arm replays the stimulus through one kernel on a fresh core; only the
// Step+CyclePower loop is timed.
func arm(columnar bool, banks, perBank, n int) (time.Duration, []float64) {
	core := powerbench.New(banks, perBank)
	var est kernel
	if columnar {
		est = power.NewEstimator(core, power.DefaultConfig())
	} else {
		est = power.NewReferenceEstimator(core, power.DefaultConfig())
	}
	ins := powerbench.Stimulus(banks, n, 0x9e3779b9)
	trace := make([]float64, n)
	start := time.Now()
	for t, in := range ins {
		trace[t] = est.CyclePower(in, core.Step(in))
	}
	return time.Since(start), trace
}

func main() {
	out := flag.String("o", "BENCH_power.json", "output file")
	rounds := flag.Int("rounds", 3, "interleaved timing rounds (min is reported)")
	cycles := flag.Int("cycles", 3000, "replay length per arm")
	flag.Parse()

	rep := report{
		Description: "scalar ReferenceEstimator walk vs columnar word-scan Estimator on the " +
			"internal/powerbench banked register file (one bank powered per cycle, rest " +
			"clock-gated); min replay wall clock over interleaved rounds, traces pinned " +
			"bit-identical",
		Rounds: *rounds,
	}
	for _, sz := range []struct{ banks, perBank int }{
		{16, 64}, {32, 64}, {64, 64}, {128, 64},
	} {
		arm(false, sz.banks, sz.perBank, *cycles) // warm both arms
		arm(true, sz.banks, sz.perBank, *cycles)
		minRef, minCol := time.Duration(1<<62), time.Duration(1<<62)
		var refTrace, colTrace []float64
		for i := 0; i < *rounds; i++ {
			var d time.Duration
			if d, refTrace = arm(false, sz.banks, sz.perBank, *cycles); d < minRef {
				minRef = d
			}
			if d, colTrace = arm(true, sz.banks, sz.perBank, *cycles); d < minCol {
				minCol = d
			}
		}
		for t := range refTrace {
			if math.Float64bits(refTrace[t]) != math.Float64bits(colTrace[t]) {
				fmt.Fprintf(os.Stderr, "bench_power: kernels diverge at %dx%d cycle %d\n",
					sz.banks, sz.perBank, t)
				os.Exit(1)
			}
		}
		p := point{
			Banks:           sz.banks,
			PerBank:         sz.perBank,
			Elements:        sz.banks * sz.perBank,
			Cycles:          *cycles,
			ScalarNsPerCyc:  float64(minRef.Nanoseconds()) / float64(*cycles),
			ColumnarNsPerCy: float64(minCol.Nanoseconds()) / float64(*cycles),
			SpeedupX:        float64(minRef) / float64(minCol),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("elements=%-6d scalar=%-12v columnar=%-12v speedup=%.1fx\n",
			p.Elements, minRef, minCol, p.SpeedupX)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_power:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench_power:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench_power:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
