// Command bench_ingest sweeps the stream-ingest scaling comparison and
// writes BENCH_ingest.json: for each record count, the min-of-N wall
// clock of the historical bufio/encoding-json Decoder + per-record
// Append loop versus the zero-copy Scanner + arena + AppendBatch loop
// (the path psmd's trace handler runs), on the same synthetic NDJSON
// payload, with the mined models pinned identical. The single-goroutine
// records/s it reports is the per-core ingest rate. The sweep backs the
// committed BENCH_ingest.json and the numbers quoted in the README's
// Performance section; `make bench-ingest` runs the pass/fail gate
// (TestIngestGate) and then refreshes the file.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/psm"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// point is one sweep row of the emitted JSON.
type point struct {
	Records        int     `json:"records"`
	Batch          int     `json:"batch"`
	PayloadBytes   int     `json:"payload_bytes"`
	DecoderNsPerOp int64   `json:"decoder_ns_per_op"`
	ZeroCopyNsOp   int64   `json:"zerocopy_ns_per_op"`
	DecoderRecSec  float64 `json:"decoder_rec_per_sec"`
	ZeroCopyRecSec float64 `json:"zerocopy_rec_per_sec_core"`
	SpeedupX       float64 `json:"speedup_x"`
}

type report struct {
	Description string  `json:"description"`
	Rounds      int     `json:"rounds"`
	Points      []point `json:"points"`
}

func schema() []trace.Signal {
	return []trace.Signal{
		{Name: "en", Width: 1},
		{Name: "mode", Width: 8},
		{Name: "addr", Width: 16},
		{Name: "ctr", Width: 32},
		{Name: "data", Width: 64},
		{Name: "bus", Width: 128},
	}
}

func payload(n int, seed uint64) []byte {
	sigs := schema()
	var buf bytes.Buffer
	enc := stream.NewEncoder(&buf)
	check(enc.WriteHeader(stream.HeaderFor(sigs, []int{0, 1})))
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	row := make([]logic.Vector, len(sigs))
	for i := 0; i < n; i++ {
		for k, sig := range sigs {
			if sig.Width <= 64 {
				row[k] = logic.FromUint64(sig.Width, next())
			} else {
				v, err := logic.ParseHex(sig.Width, fmt.Sprintf("%016x%016x", next(), next()))
				check(err)
				row[k] = v
			}
		}
		check(enc.WriteRow(row, float64(next()%4096)/64))
	}
	check(enc.Flush())
	return buf.Bytes()
}

func config() stream.Config {
	cfg := stream.DefaultConfig()
	cfg.Inputs = []string{"en", "mode"}
	return cfg
}

// decoderArm is the historical path: Decoder, per-record DecodeRow and
// Session.Append. Only the decode+append loop is timed.
func decoderArm(data []byte) (time.Duration, *psm.Model) {
	dec := stream.NewDecoder(bytes.NewReader(data), 0)
	h, err := dec.ReadHeader()
	check(err)
	sigs, err := h.Schema()
	check(err)
	eng := stream.NewEngine(config())
	sess, err := eng.Open(sigs)
	check(err)
	var rec stream.Record
	start := time.Now()
	for {
		if err := dec.Next(&rec); err == io.EOF {
			break
		} else {
			check(err)
		}
		row, err := stream.DecodeRow(sigs, &rec)
		check(err)
		check(sess.Append(row, *rec.P))
	}
	elapsed := time.Since(start)
	_, err = sess.Close()
	check(err)
	m, err := eng.Snapshot(context.Background())
	check(err)
	return elapsed, m
}

// zeroCopyArm is psmd's ingest loop: Scanner framing, fast-path record
// parse, arena row decode into preallocated headers, batched
// AppendBatch with double-buffered arenas.
func zeroCopyArm(data []byte, batch int) (time.Duration, *psm.Model) {
	sc := stream.NewScanner(bytes.NewReader(data), 0)
	h, err := sc.ScanHeader()
	check(err)
	sigs, err := h.Schema()
	check(err)
	eng := stream.NewEngine(config())
	sess, err := eng.Open(sigs)
	check(err)
	var (
		arenas [2]logic.Arena
		raw    stream.RawRecord
		epoch  int
	)
	rows := make([][]logic.Vector, 0, batch)
	powers := make([]float64, 0, batch)
	rowMem := make([]logic.Vector, batch*len(sigs))
	start := time.Now()
	for {
		if err := sc.ScanRecord(&raw); err == io.EOF {
			break
		} else {
			check(err)
		}
		a := &arenas[epoch&1]
		if len(rows) == 0 {
			a.Reset()
		}
		k := len(rows) * len(sigs)
		row, err := stream.DecodeRowArena(sigs, &raw, a, rowMem[k:k:k+len(sigs)])
		check(err)
		rows = append(rows, row)
		powers = append(powers, *raw.P)
		if len(rows) == batch {
			check(sess.AppendBatch(rows, powers))
			rows, powers = rows[:0], powers[:0]
			epoch++
		}
	}
	if len(rows) > 0 {
		check(sess.AppendBatch(rows, powers))
	}
	elapsed := time.Since(start)
	_, err = sess.Close()
	check(err)
	m, err := eng.Snapshot(context.Background())
	check(err)
	return elapsed, m
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_ingest:", err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "BENCH_ingest.json", "output file")
	rounds := flag.Int("rounds", 3, "interleaved timing rounds (min is reported)")
	batch := flag.Int("batch", 256, "AppendBatch size of the zero-copy arm")
	flag.Parse()

	rep := report{
		Description: "bufio/encoding-json Decoder + per-record Append vs zero-copy Scanner + " +
			"arena decode + AppendBatch on synthetic 6-signal NDJSON (widths 1..128); min " +
			"decode+append wall clock over interleaved rounds, mined models pinned identical; " +
			"zerocopy_rec_per_sec_core is single-goroutine throughput",
		Rounds: *rounds,
	}
	for _, records := range []int{10000, 20000, 40000} {
		data := payload(records, 0x5851f42d4c957f2d)
		_, oldModel := decoderArm(data) // warm both arms
		_, newModel := zeroCopyArm(data, *batch)
		if !reflect.DeepEqual(oldModel, newModel) {
			fmt.Fprintf(os.Stderr, "bench_ingest: models diverge at %d records\n", records)
			os.Exit(1)
		}
		minOld, minNew := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < *rounds; i++ {
			if d, _ := decoderArm(data); d < minOld {
				minOld = d
			}
			if d, _ := zeroCopyArm(data, *batch); d < minNew {
				minNew = d
			}
		}
		p := point{
			Records:        records,
			Batch:          *batch,
			PayloadBytes:   len(data),
			DecoderNsPerOp: minOld.Nanoseconds(),
			ZeroCopyNsOp:   minNew.Nanoseconds(),
			DecoderRecSec:  float64(records) / minOld.Seconds(),
			ZeroCopyRecSec: float64(records) / minNew.Seconds(),
			SpeedupX:       float64(minOld) / float64(minNew),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("records=%-6d decoder=%-12v zerocopy=%-12v rate=%.0f rec/s/core speedup=%.2fx\n",
			records, minOld, minNew, p.ZeroCopyRecSec, p.SpeedupX)
	}

	f, err := os.Create(*out)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(rep))
	check(f.Close())
	fmt.Printf("wrote %s\n", *out)
}
