// Command bench_join sweeps the join-engine scaling comparison and
// writes BENCH_join.json: for each pooled-state count, the min-of-N wall
// clock and the number of MergePolicy.Evaluate calls actually executed
// (the psm_merge_evals_total counter — memo misses only) for the
// historical restart-scan fixpoint versus the worklist engine, on the
// adversarial mergeable-heavy models of internal/joinbench. The sweep
// backs the committed BENCH_join.json and the numbers quoted in the
// README's Performance section; `make bench-join` runs the pass/fail
// gate (TestJoinScalingGate) and then refreshes the file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"psmkit/internal/joinbench"
	"psmkit/internal/obs"
	"psmkit/internal/psm"
)

// point is one sweep row of the emitted JSON.
type point struct {
	Groups        int     `json:"groups"`
	StatesIn      int     `json:"states_in"`
	StatesOut     int     `json:"states_out"`
	ScanNsPerOp   int64   `json:"scan_ns_per_op"`
	ScanEvals     int64   `json:"scan_evals"`
	WorklistNsOp  int64   `json:"worklist_ns_per_op"`
	WorklistEvals int64   `json:"worklist_evals"`
	SpeedupX      float64 `json:"speedup_x"`
	EvalRatioX    float64 `json:"eval_ratio_x"`
}

type report struct {
	Description string  `json:"description"`
	Rounds      int     `json:"rounds"`
	Points      []point `json:"points"`
}

// arm joins a fresh clone of the pooled model under its own metrics
// registry, returning wall time, executed Evaluate calls, and the
// collapsed state count.
func arm(m *psm.Model, join func(context.Context, *psm.Model, psm.MergePolicy) *psm.Model) (time.Duration, int64, int) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	start := time.Now()
	out := join(ctx, psm.CloneModel(m), psm.DefaultMergePolicy())
	return time.Since(start), reg.Snapshot().Counters["psm_merge_evals_total"], len(out.States)
}

func main() {
	out := flag.String("o", "BENCH_join.json", "output file")
	rounds := flag.Int("rounds", 3, "interleaved timing rounds (min is reported)")
	flag.Parse()

	rep := report{
		Description: "restart-scan join fixpoint vs worklist engine on internal/joinbench " +
			"adversarial models (one phase-2 collapse per 3-state group); min wall clock over " +
			"interleaved rounds, evals = MergePolicy.Evaluate executions (psm_merge_evals_total)",
		Rounds: *rounds,
	}
	for _, groups := range []int{50, 100, 200, 400} {
		pooled := joinbench.Model(groups)
		arm(pooled, psm.JoinPooledReferenceCtx) // warm both arms
		arm(pooled, psm.JoinPooledCtx)
		minScan, minWl := time.Duration(1<<62), time.Duration(1<<62)
		var scanEvals, wlEvals int64
		statesOut := 0
		for i := 0; i < *rounds; i++ {
			var d time.Duration
			if d, scanEvals, statesOut = arm(pooled, psm.JoinPooledReferenceCtx); d < minScan {
				minScan = d
			}
			var n int
			if d, wlEvals, n = arm(pooled, psm.JoinPooledCtx); d < minWl {
				minWl = d
			}
			if n != statesOut {
				fmt.Fprintf(os.Stderr, "bench_join: engines disagree at %d groups: %d vs %d states\n",
					groups, statesOut, n)
				os.Exit(1)
			}
		}
		if wlEvals == 0 {
			fmt.Fprintf(os.Stderr, "bench_join: worklist executed no evaluations at %d groups\n", groups)
			os.Exit(1)
		}
		p := point{
			Groups:        groups,
			StatesIn:      groups * joinbench.StatesPerGroup,
			StatesOut:     statesOut,
			ScanNsPerOp:   minScan.Nanoseconds(),
			ScanEvals:     scanEvals,
			WorklistNsOp:  minWl.Nanoseconds(),
			WorklistEvals: wlEvals,
			SpeedupX:      float64(minScan) / float64(minWl),
			EvalRatioX:    float64(scanEvals) / float64(wlEvals),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("groups=%-4d states=%-5d scan=%-12v worklist=%-12v speedup=%.1fx evals %d vs %d (%.1fx)\n",
			groups, p.StatesIn, minScan, minWl, p.SpeedupX, scanEvals, wlEvals, p.EvalRatioX)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_join:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench_join:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench_join:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
