// Command psmd_smoke is the `make psmd-smoke` gate: it exercises the real
// psmd and tracegen binaries end to end over HTTP — boot the daemon on an
// ephemeral port with -shards=4, stream a generated RAM trace in, require
// GET /v1/model to serve a verified model, require GET /metrics to report
// the ingested record count fleet-wide plus one row per shard, and shut
// the daemon down gracefully via SIGTERM.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// slots into `make ci` next to the test and lint gates.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"
)

const traceInstants = 3000

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "psmd-smoke:", err)
		os.Exit(1)
	}
	fmt.Println("psmd-smoke: ok")
}

func run() error {
	tmp, err := os.MkdirTemp("", "psmd-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the real binaries the flow documents.
	psmd := filepath.Join(tmp, "psmd")
	tracegen := filepath.Join(tmp, "tracegen")
	for bin, pkg := range map[string]string{psmd: "./cmd/psmd", tracegen: "./cmd/tracegen"} {
		out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput()
		if err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}

	// Boot the daemon on an ephemeral port and learn the address from its
	// startup log.
	daemon := exec.Command(psmd, "-addr", "127.0.0.1:0", "-shards", "4", "-inputs", "en,we,addr,wdata")
	stderr, err := daemon.StderrPipe()
	if err != nil {
		return err
	}
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill() // no-op after the graceful exit below

	// psmd logs structured NDJSON events; the "serving" event carries
	// the bound address as an attribute.
	logs := bufio.NewScanner(stderr)
	addrRe := regexp.MustCompile(`"msg":"serving".*"addr":"([^"]+)"`)
	addrc := make(chan string, 1)
	go func() {
		for logs.Scan() {
			if m := addrRe.FindStringSubmatch(logs.Text()); m != nil {
				addrc <- m[1]
				break
			}
		}
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not report its address")
	}

	// Stream a generated trace straight from tracegen's stdout into the
	// ingest endpoint — the documented pipe, without the shell.
	gen := exec.Command(tracegen, "-ip", "RAM", "-n", fmt.Sprint(traceInstants), "-stream")
	stdout, err := gen.StdoutPipe()
	if err != nil {
		return err
	}
	gen.Stderr = os.Stderr
	if err := gen.Start(); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/traces", "application/x-ndjson", stdout)
	if err != nil {
		return fmt.Errorf("POST /v1/traces: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := gen.Wait(); err != nil {
		return fmt.Errorf("tracegen: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/traces: status %d: %s", resp.StatusCode, body)
	}
	var ack struct {
		Records int  `json:"records"`
		Shard   *int `json:"shard"`
	}
	if err := json.Unmarshal(body, &ack); err != nil || ack.Records != traceInstants {
		return fmt.Errorf("ingest acknowledged %d records, want %d (%v)", ack.Records, traceInstants, err)
	}
	// Under -shards the ack names the shard that owned the session.
	if ack.Shard == nil || *ack.Shard < 0 || *ack.Shard >= 4 {
		return fmt.Errorf("sharded ingest ack missing a valid shard index: %s", body)
	}

	// The model endpoint runs the psmlint rule set before serving; a 200
	// therefore certifies the streamed model verified clean.
	resp, err = http.Get(base + "/v1/model")
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/model: status %d (model failed verification?): %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"states"`) {
		return fmt.Errorf("GET /v1/model: no states in export: %.120s", body)
	}

	// Metrics must account for every ingested record.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var mdoc struct {
		PSMD struct {
			RecordsIngested int64 `json:"records_ingested"`
			TracesCompleted int   `json:"traces_completed"`
			OpenSessions    int   `json:"open_sessions"`
			Shards          []struct {
				Shard           int   `json:"shard"`
				RecordsIngested int64 `json:"records_ingested"`
				TracesCompleted int   `json:"traces_completed"`
				QueueCap        int   `json:"queue_cap"`
				Shed            int64 `json:"shed_total"`
			} `json:"shards"`
		} `json:"psmd"`
	}
	if err := json.Unmarshal(body, &mdoc); err != nil {
		return fmt.Errorf("GET /metrics: %v\n%s", err, body)
	}
	if mdoc.PSMD.RecordsIngested != traceInstants || mdoc.PSMD.TracesCompleted != 1 || mdoc.PSMD.OpenSessions != 0 {
		return fmt.Errorf("metrics report %+v, want %d records / 1 trace / 0 open", mdoc.PSMD, traceInstants)
	}
	// One metrics row per shard, indices in order, bounded queues live,
	// nothing shed, and the per-shard counters summing to the fleet view.
	if len(mdoc.PSMD.Shards) != 4 {
		return fmt.Errorf("metrics carry %d shard rows, want 4: %s", len(mdoc.PSMD.Shards), body)
	}
	var shardRecords int64
	var shardTraces int
	for i, row := range mdoc.PSMD.Shards {
		if row.Shard != i {
			return fmt.Errorf("shard row %d reports index %d: %s", i, row.Shard, body)
		}
		if row.QueueCap <= 0 {
			return fmt.Errorf("shard %d reports no bounded queue: %s", i, body)
		}
		if row.Shed != 0 {
			return fmt.Errorf("shard %d shed %d batches during the smoke", i, row.Shed)
		}
		shardRecords += row.RecordsIngested
		shardTraces += row.TracesCompleted
	}
	if shardRecords != traceInstants || shardTraces != 1 {
		return fmt.Errorf("shard rows sum to %d records / %d traces, want %d / 1", shardRecords, shardTraces, traceInstants)
	}
	if mdoc.PSMD.Shards[*ack.Shard].RecordsIngested != traceInstants {
		return fmt.Errorf("shard %d owned the session but reports %d records",
			*ack.Shard, mdoc.PSMD.Shards[*ack.Shard].RecordsIngested)
	}

	// The health surface must report ready with sane windowed quantiles
	// after the traffic above.
	resp, err = http.Get(base + "/v1/status")
	if err != nil {
		return err
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/status: status %d: %s", resp.StatusCode, body)
	}
	var sdoc struct {
		Ready          bool `json:"ready"`
		ModelAvailable bool `json:"model_available"`
		Ingest         struct {
			Count int64   `json:"count"`
			P50Ms float64 `json:"p50_ms"`
			P95Ms float64 `json:"p95_ms"`
			P99Ms float64 `json:"p99_ms"`
		} `json:"ingest"`
		Errors struct {
			Requests int64 `json:"requests"`
			Errors   int64 `json:"errors"`
		} `json:"errors"`
	}
	if err := json.Unmarshal(body, &sdoc); err != nil {
		return fmt.Errorf("GET /v1/status: %v\n%s", err, body)
	}
	if !sdoc.Ready || !sdoc.ModelAvailable {
		return fmt.Errorf("status not healthy after traffic: %s", body)
	}
	if sdoc.Ingest.Count == 0 || sdoc.Ingest.P99Ms <= 0 ||
		sdoc.Ingest.P50Ms > sdoc.Ingest.P95Ms || sdoc.Ingest.P95Ms > sdoc.Ingest.P99Ms {
		return fmt.Errorf("ingest quantiles implausible: %s", body)
	}
	if sdoc.Errors.Requests == 0 || sdoc.Errors.Errors != 0 {
		return fmt.Errorf("SLO error accounting implausible: %s", body)
	}

	// The flight recorder must have captured the session: a post-traffic
	// dump is non-empty NDJSON with span events in sequence order.
	resp, err = http.Get(base + "/debug/flight")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return fmt.Errorf("GET /debug/flight: status %d", resp.StatusCode)
	}
	var (
		flightLines int
		flightSpans int
		lastSeq     uint64
	)
	fl := bufio.NewScanner(resp.Body)
	fl.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for fl.Scan() {
		line := strings.TrimSpace(fl.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			resp.Body.Close()
			return fmt.Errorf("GET /debug/flight: unparseable line: %v: %.120s", err, line)
		}
		if ev.Seq <= lastSeq || ev.Name == "" || (ev.Kind != "span" && ev.Kind != "log") {
			resp.Body.Close()
			return fmt.Errorf("GET /debug/flight: malformed event: %.120s", line)
		}
		lastSeq = ev.Seq
		flightLines++
		if ev.Kind == "span" {
			flightSpans++
		}
	}
	resp.Body.Close()
	if err := fl.Err(); err != nil {
		return fmt.Errorf("GET /debug/flight: %v", err)
	}
	if flightLines == 0 || flightSpans == 0 {
		return fmt.Errorf("flight dump empty after traffic (%d lines, %d spans)", flightLines, flightSpans)
	}

	// Graceful shutdown: SIGTERM must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not exit after SIGTERM")
	}
	return nil
}
