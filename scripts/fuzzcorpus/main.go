// Command fuzzcorpus (re)generates the committed seed corpus of
// FuzzWireScan under internal/stream/testdata/fuzz/FuzzWireScan, in the
// native Go fuzzing corpus-file format. Run from the repo root:
//
//	go run ./scripts/fuzzcorpus
//
// The seeds mirror the f.Add set: canonical encoder output, every
// fallback trigger and the framing edges, so `go test ./internal/stream`
// replays them even without -fuzz.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const header = `{"signals":[{"name":"a","width":8},{"name":"b","width":64}],"inputs":["a"]}`

func main() {
	seeds := map[string]string{
		"canonical":       header + "\n" + `{"v":["ff","deadbeefcafebabe"],"p":0.0125}` + "\n",
		"empty_and_nop":   header + "\n" + `{"v":[],"p":-2.5e-3}` + "\n" + `{"v":["0f","1"]}`,
		"crlf":            header + "\r\n\r\n" + `{"v":["ff","0"],"p":3}` + "\r\n",
		"field_reorder":   header + "\n" + `{"p":1,"v":["ff","0"]}` + "\n",
		"overflow_number": header + "\n" + `{"v":["ff","0"],"p":1e999}` + "\n",
		"null_then_bad":   header + "\n" + `null` + "\n" + `{"v":["ff","0"],"p":01}` + "\n",
		"long_line":       header + "\n" + `{"v":["` + strings.Repeat("f", 200) + `","0"],"p":1}` + "\n",
		"empty_schema":    `{"signals":[]}` + "\n",
		"bad_header":      "not json\n",
		"empty_stream":    "",
		"spaced":          header + "\n" + ` { "v" : [ "ff" , "0" ] , "p" : 5E-7 } ` + "\n",
		"unknown_field":   header + "\n" + `{"v":["ff","0"],"p":1,"x":{"y":[1,2]}}` + "\n",
		"escaped_hex":     header + "\n" + `{"v":["\u0066f","0"],"p":1}` + "\n",
		"unicode_value":   header + "\n" + `{"v":["ü","0"],"p":1}` + "\n",
		"nan_like":        header + "\n" + `{"v":["ff","0"],"p":NaN}` + "\n",
	}
	dir := filepath.Join("internal", "stream", "testdata", "fuzz", "FuzzWireScan")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	names := make([]string, 0, len(seeds))
	for name := range seeds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(seeds[name]) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
