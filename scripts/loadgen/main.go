// Command loadgen sweeps the sharded-ingest scaling comparison and
// writes BENCH_shard.json: for each shard count it streams S identical
// concurrent sessions of synthetic NDJSON through a shard.Coordinator
// (the path psmd runs under -shards=N) and records the min-of-N
// aggregate ingest wall clock, the records/s, and whether the final
// model deep-equals the single-engine reference — the tentpole's
// byte-stability claim, re-checked on every sweep. The committed file
// also records GOMAXPROCS: the >=3x gate at 4 shards (TestShardScalingGate,
// `make bench-shard`) is only enforced where the host has the parallel
// headroom to make a wall-clock claim honest; a single-core run records
// the measured ~1x and marks the gate unenforced.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sync"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/psm"
	"psmkit/internal/shard"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// point is one sweep row of the emitted JSON.
type point struct {
	Shards       int     `json:"shards"`
	WallNs       int64   `json:"wall_ns"`
	AggRecPerSec float64 `json:"agg_rec_per_sec"`
	SpeedupX     float64 `json:"speedup_x"`
	ModelEqual   bool    `json:"model_equal"`
	Shed         int64   `json:"shed"`
}

type report struct {
	Description       string  `json:"description"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Rounds            int     `json:"rounds"`
	Sessions          int     `json:"sessions"`
	RecordsPerSession int     `json:"records_per_session"`
	Batch             int     `json:"batch"`
	Points            []point `json:"points"`
	GateThresholdX    float64 `json:"gate_threshold_x"`
	GateEnforced      bool    `json:"gate_enforced"`
	GateNote          string  `json:"gate_note"`
}

func schema() []trace.Signal {
	return []trace.Signal{
		{Name: "en", Width: 1},
		{Name: "mode", Width: 8},
		{Name: "addr", Width: 16},
		{Name: "ctr", Width: 32},
		{Name: "data", Width: 64},
		{Name: "bus", Width: 128},
	}
}

func payload(n int, seed uint64) []byte {
	sigs := schema()
	var buf bytes.Buffer
	enc := stream.NewEncoder(&buf)
	check(enc.WriteHeader(stream.HeaderFor(sigs, []int{0, 1})))
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	row := make([]logic.Vector, len(sigs))
	for i := 0; i < n; i++ {
		for k, sig := range sigs {
			if sig.Width <= 64 {
				row[k] = logic.FromUint64(sig.Width, next())
			} else {
				v, err := logic.ParseHex(sig.Width, fmt.Sprintf("%016x%016x", next(), next()))
				check(err)
				row[k] = v
			}
		}
		check(enc.WriteRow(row, float64(next()%4096)/64))
	}
	check(enc.Flush())
	return buf.Bytes()
}

func config() stream.Config {
	cfg := stream.DefaultConfig()
	cfg.Inputs = []string{"en", "mode"}
	return cfg
}

// batchFrame is one pre-framed AppendLines batch over the record body.
type batchFrame struct {
	start, end, records, firstLine int
}

func frames(body []byte, batch int) []batchFrame {
	var fs []batchFrame
	cur := batchFrame{firstLine: 2}
	off := 0
	for off < len(body) {
		nl := bytes.IndexByte(body[off:], '\n')
		if nl < 0 {
			break
		}
		off += nl + 1
		cur.records++
		if cur.records == batch {
			cur.end = off
			fs = append(fs, cur)
			cur = batchFrame{start: off, firstLine: 2 + len(fs)*batch}
		}
	}
	if cur.records > 0 {
		cur.end = off
		fs = append(fs, cur)
	}
	return fs
}

// balancedIDs probes candidate ids against the coordinator's ring so
// the sessions split evenly across shards: the sweep measures reducer
// scaling, not hash luck.
func balancedIDs(co *shard.Coordinator, sessions int) []string {
	perShard := make([]int, co.Shards())
	quota := (sessions + co.Shards() - 1) / co.Shards()
	ids := make([]string, 0, sessions)
	for cand := 0; len(ids) < sessions; cand++ {
		id := fmt.Sprintf("sess-%04d", cand)
		if sh := co.ShardOf(id); perShard[sh] < quota {
			perShard[sh]++
			ids = append(ids, id)
		}
	}
	return ids
}

// run streams `sessions` identical sessions through a fresh coordinator
// concurrently; returns the ingest wall clock, the final model, and
// the shed count.
func run(shards, sessions int, data []byte, batch int) (time.Duration, *psm.Model, int64) {
	sc := stream.NewScanner(bytes.NewReader(data), 0)
	h, err := sc.ScanHeader()
	check(err)
	sigs, err := h.Schema()
	check(err)
	headerEnd := bytes.IndexByte(data, '\n') + 1
	body := data[headerEnd:]
	fs := frames(body, batch)

	co := shard.New(shard.Config{Shards: shards, Stream: config()})
	defer co.Close()
	ids := balancedIDs(co, sessions)

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, sessions)
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sess, err := co.Open(ctx, id, sigs)
			if err != nil {
				errc <- err
				return
			}
			for _, f := range fs {
				buf := make([]byte, f.end-f.start)
				copy(buf, body[f.start:f.end])
				if err := sess.AppendLines(buf, f.records, f.firstLine); err != nil {
					sess.Abort()
					errc <- err
					return
				}
			}
			if _, _, err := sess.Close(ctx); err != nil {
				errc <- err
			}
		}(ids[i])
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		check(err)
	}
	m, err := co.Snapshot(ctx)
	check(err)
	return elapsed, m, co.Shed()
}

// reference mines the single-engine model over the same sessions
// sequentially (the canonical arm every shard count must match).
func reference(sessions int, data []byte, batch int) *psm.Model {
	sc := stream.NewScanner(bytes.NewReader(data), 0)
	h, err := sc.ScanHeader()
	check(err)
	sigs, err := h.Schema()
	check(err)
	eng := stream.NewEngine(config())
	for i := 0; i < sessions; i++ {
		check(ingestOne(eng, sigs, data, batch))
	}
	m, err := eng.Snapshot(context.Background())
	check(err)
	return m
}

func ingestOne(eng *stream.Engine, sigs []trace.Signal, data []byte, batch int) error {
	sc := stream.NewScanner(bytes.NewReader(data), 0)
	if _, err := sc.ScanHeader(); err != nil {
		return err
	}
	sess, err := eng.Open(sigs)
	if err != nil {
		return err
	}
	var (
		arenas [2]logic.Arena
		raw    stream.RawRecord
		epoch  int
	)
	rows := make([][]logic.Vector, 0, batch)
	powers := make([]float64, 0, batch)
	rowMem := make([]logic.Vector, batch*len(sigs))
	for {
		if err := sc.ScanRecord(&raw); err == io.EOF {
			break
		} else if err != nil {
			sess.Abort()
			return err
		}
		a := &arenas[epoch&1]
		if len(rows) == 0 {
			a.Reset()
		}
		k := len(rows) * len(sigs)
		row, err := stream.DecodeRowArena(sigs, &raw, a, rowMem[k:k:k+len(sigs)])
		if err != nil {
			sess.Abort()
			return err
		}
		rows = append(rows, row)
		powers = append(powers, *raw.P)
		if len(rows) == batch {
			if err := sess.AppendBatch(rows, powers); err != nil {
				sess.Abort()
				return err
			}
			rows, powers = rows[:0], powers[:0]
			epoch++
		}
	}
	if len(rows) > 0 {
		if err := sess.AppendBatch(rows, powers); err != nil {
			sess.Abort()
			return err
		}
	}
	_, err = sess.Close()
	return err
}

func main() {
	sessions := flag.Int("sessions", 8, "concurrent sessions per arm")
	records := flag.Int("records", 10000, "records per session")
	batch := flag.Int("batch", 256, "records per AppendLines batch")
	rounds := flag.Int("rounds", 3, "interleaved rounds (min wall clock wins)")
	out := flag.String("out", "BENCH_shard.json", "output path")
	flag.Parse()

	data := payload(*records, 0x9e3779b97f4a7c15)
	ref := reference(*sessions, data, *batch)
	total := *sessions * *records

	counts := []int{1, 2, 4, 8}
	mins := make([]time.Duration, len(counts))
	equal := make([]bool, len(counts))
	sheds := make([]int64, len(counts))
	for i := range mins {
		mins[i] = time.Duration(1 << 62)
	}
	for r := 0; r < *rounds; r++ {
		for i, n := range counts {
			d, m, shed := run(n, *sessions, data, *batch)
			if d < mins[i] {
				mins[i] = d
			}
			equal[i] = r == 0 && reflect.DeepEqual(ref, m) || equal[i]
			sheds[i] += shed
		}
	}

	rep := report{
		Description: "sharded ingest fan-out (shard.Coordinator, consistent-hash routing, one reducer goroutine per shard) vs single engine: S identical concurrent sessions of synthetic 6-signal NDJSON (widths 1..128); min aggregate ingest wall clock over interleaved rounds; model_equal pins every arm's final model deep-equal to the single-engine reference",
		GOMAXPROCS:  runtime.GOMAXPROCS(0), Rounds: *rounds,
		Sessions: *sessions, RecordsPerSession: *records, Batch: *batch,
		GateThresholdX: 3.0,
	}
	base := mins[0]
	for i, n := range counts {
		rep.Points = append(rep.Points, point{
			Shards:       n,
			WallNs:       mins[i].Nanoseconds(),
			AggRecPerSec: float64(total) / mins[i].Seconds(),
			SpeedupX:     float64(base) / float64(mins[i]),
			ModelEqual:   equal[i],
			Shed:         sheds[i],
		})
	}
	if rep.GOMAXPROCS >= 6 {
		rep.GateEnforced = true
		rep.GateNote = "TestShardScalingGate enforces >=3x aggregate throughput at 4 shards"
	} else {
		rep.GateNote = fmt.Sprintf("throughput gate needs GOMAXPROCS >= 6 for honest wall-clock scaling; this run (GOMAXPROCS=%d) records the measured ratio and pins model equality only", rep.GOMAXPROCS)
	}

	f, err := os.Create(*out)
	check(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	check(enc.Encode(rep))
	check(f.Close())
	for _, p := range rep.Points {
		fmt.Printf("shards=%d wall=%s rec/s=%.0f speedup=%.2fx model_equal=%v shed=%d\n",
			p.Shards, time.Duration(p.WallNs), p.AggRecPerSec, p.SpeedupX, p.ModelEqual, p.Shed)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d, gate_enforced=%v)\n", *out, rep.GOMAXPROCS, rep.GateEnforced)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
