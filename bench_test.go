// Package psmkit's repository-root benchmarks regenerate every table of
// the paper's evaluation (Section VI) and the ablation studies listed in
// DESIGN.md. Each benchmark reports the paper's figures of merit as
// custom metrics (states, transitions, MRE%, WSP%, overhead%), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation; bench_output.txt in the repository root
// records a reference run, and EXPERIMENTS.md compares it against the
// paper row by row.
package psmkit

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"psmkit/internal/dpm"
	"psmkit/internal/experiment"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/soc"
	"psmkit/internal/testbench"
)

// BenchmarkTableI regenerates Table I (characteristics of benchmarks).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiment.TableI()
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.MemElems), r.IP+"_mem_elements")
			}
		}
	}
}

// benchTableII runs the Table II experiment for one IP at full scale.
func benchTableII(b *testing.B, name string, long bool) {
	c, err := experiment.CaseByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		row, err := experiment.TableIIFor(c, long, 1, experiment.DefaultPolicies())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.States), "states")
		b.ReportMetric(float64(row.Trans), "transitions")
		b.ReportMetric(100*row.MRE, "MRE_%")
		b.ReportMetric(row.PXSecs, "PX_s")
		b.ReportMetric(row.GenSecs, "PSM_gen_s")
	}
}

// BenchmarkTableIIShortTS regenerates the upper half of Table II: PSMs
// generated and self-validated on the functional-verification testsets.
func BenchmarkTableIIShortTS(b *testing.B) {
	for _, c := range experiment.Cases() {
		b.Run(c.Name, func(b *testing.B) { benchTableII(b, c.Name, false) })
	}
}

// BenchmarkTableIILongTS regenerates the lower half of Table II
// (500000-instant testsets).
func BenchmarkTableIILongTS(b *testing.B) {
	for _, c := range experiment.Cases() {
		b.Run(c.Name, func(b *testing.B) { benchTableII(b, c.Name, true) })
	}
}

// BenchmarkTableIII regenerates Table III: PSMs trained on short-TS,
// cross-validated on the 500000-instant long-TS, with the IP-vs-IP+PSM
// simulation-time comparison.
func BenchmarkTableIII(b *testing.B) {
	for _, c := range experiment.Cases() {
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row, err := experiment.TableIIIFor(c, 1, experiment.DefaultPolicies())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(row.IPSimSecs, "IP_sim_s")
				b.ReportMetric(row.CoSimSecs, "IP+PSM_s")
				b.ReportMetric(100*row.Overhead, "overhead_%")
				b.ReportMetric(100*row.MRE, "MRE_%")
				b.ReportMetric(100*row.WSP, "WSP_%")
				b.ReportMetric(row.PXSecs, "PX_ref_s")
				b.ReportMetric(row.Speedup, "speedup_vs_PX")
			}
		})
	}
}

// --- ablations (design knobs called out in DESIGN.md) -------------------------

// ablationScale keeps the ablation sweeps quick while still statistically
// meaningful (≈1/5 of the paper's testset lengths).
const ablationScale = 0.2

// BenchmarkAblationMergeAlpha sweeps the t-test significance level of the
// mergeability policy on the RAM: lower α merges more aggressively
// (fewer states, worse accuracy), higher α splits more.
func BenchmarkAblationMergeAlpha(b *testing.B) {
	c, _ := experiment.CaseByName("RAM")
	for _, alpha := range []float64{0.01, 0.05, 0.20, 0.50} {
		name := map[float64]string{0.01: "alpha=0.01", 0.05: "alpha=0.05", 0.20: "alpha=0.20", 0.50: "alpha=0.50"}[alpha]
		b.Run(name, func(b *testing.B) {
			pol := experiment.DefaultPolicies()
			pol.Merge.Alpha = alpha
			for i := 0; i < b.N; i++ {
				row, err := experiment.TableIIFor(c, false, ablationScale, pol)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(row.States), "states")
				b.ReportMetric(100*row.MRE, "MRE_%")
			}
		})
	}
}

// BenchmarkAblationCVGuard compares merging with the paper's "σ is low"
// coefficient-of-variation guard enabled vs the default (disabled): the
// guard prevents data-dependent states from pooling, exploding the state
// count.
func BenchmarkAblationCVGuard(b *testing.B) {
	c, _ := experiment.CaseByName("RAM")
	for _, maxCV := range []float64{0, 0.3} {
		name := "cv=off"
		if maxCV > 0 {
			name = "cv=0.3"
		}
		b.Run(name, func(b *testing.B) {
			pol := experiment.DefaultPolicies()
			pol.Merge.MaxCV = maxCV
			for i := 0; i < b.N; i++ {
				row, err := experiment.TableIIFor(c, false, ablationScale, pol)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(row.States), "states")
				b.ReportMetric(100*row.MRE, "MRE_%")
			}
		})
	}
}

// BenchmarkAblationCalibration disables the Hamming-distance regression:
// the data-dependent RAM loses most of its accuracy, exactly the effect
// the paper motivates the calibration with.
func BenchmarkAblationCalibration(b *testing.B) {
	c, _ := experiment.CaseByName("RAM")
	for _, skip := range []bool{false, true} {
		name := "calibration=on"
		if skip {
			name = "calibration=off"
		}
		b.Run(name, func(b *testing.B) {
			pol := experiment.DefaultPolicies()
			pol.SkipCalibration = skip
			for i := 0; i < b.N; i++ {
				row, err := experiment.TableIIFor(c, false, ablationScale, pol)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*row.MRE, "MRE_%")
			}
		})
	}
}

// BenchmarkAblationMinerStability sweeps the miner's run-length stability
// filter: disabling it lets data-driven comparison atoms fragment the
// proposition space and the PSMs.
func BenchmarkAblationMinerStability(b *testing.B) {
	c, _ := experiment.CaseByName("MultSum")
	for _, minRun := range []float64{1, 3, 8} {
		name := map[float64]string{1: "minrun=1", 3: "minrun=3", 8: "minrun=8"}[minRun]
		b.Run(name, func(b *testing.B) {
			pol := experiment.DefaultPolicies()
			pol.Mining.MinRunLength = minRun
			for i := 0; i < b.N; i++ {
				row, err := experiment.TableIIFor(c, false, ablationScale, pol)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(row.States), "states")
				b.ReportMetric(100*row.MRE, "MRE_%")
			}
		})
	}
}

// BenchmarkAblationResync compares tracking the Camellia long-TS (with its
// unknown stall behaviours) with and without the HMM resynchronization of
// Section V.
func BenchmarkAblationResync(b *testing.B) {
	c, _ := experiment.CaseByName("Camellia")
	ts, err := experiment.GenerateTraces(c, int(float64(c.ShortTS)*ablationScale), experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		b.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		b.Fatal(err)
	}
	val, err := experiment.GenerateTraces(c, 50000, 1,
		testbench.Options{Seed: c.Seed + 424243, Stalls: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, resync := range []bool{true, false} {
		name := "resync=on"
		if !resync {
			name = "resync=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := powersim.Run(flow.Model, val.FTs[0], val.InputCols, val.PWs[0],
					powersim.Config{Resync: resync})
				b.ReportMetric(100*res.MRE, "MRE_%")
				b.ReportMetric(100*res.WSP(), "WSP_%")
				b.ReportMetric(float64(res.UnsyncedInstants), "unsynced")
			}
		})
	}
}

// BenchmarkPSMGeneration measures the generation pipeline alone (mining →
// XU generator → simplify → join → calibrate) per IP on the short-TS.
func BenchmarkPSMGeneration(b *testing.B) {
	for _, c := range experiment.Cases() {
		ts, err := experiment.GenerateTraces(c, c.ShortTS, experiment.Pieces,
			testbench.Options{Seed: c.Seed})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.BuildModel(ts, experiment.DefaultPolicies()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelPSMGeneration is BenchmarkPSMGeneration through the
// parallel pipeline (internal/pipeline) at the default worker count. The
// speedup_x metric is the sequential generation time divided by the
// parallel per-op time — on a single-core runner it hovers around 1.0
// (the pool degrades to the sequential flow); on a 4-core machine the
// per-trace stages scale with the trace-piece count.
func BenchmarkParallelPSMGeneration(b *testing.B) {
	for _, c := range experiment.Cases() {
		ts, err := experiment.GenerateTraces(c, c.ShortTS, experiment.Pieces,
			testbench.Options{Seed: c.Seed})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.Name, func(b *testing.B) {
			seqStart := time.Now()
			if _, err := experiment.BuildModel(ts, experiment.DefaultPolicies()); err != nil {
				b.Fatal(err)
			}
			seqSecs := time.Since(seqStart).Seconds()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.BuildModelParallel(ts, experiment.DefaultPolicies(), 0); err != nil {
					b.Fatal(err)
				}
			}
			parSecs := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(seqSecs/parSecs, "speedup_x")
			b.ReportMetric(float64(experiment.RowWorkers()), "workers")
		})
	}
}

// BenchmarkParallelWorkerSweep sweeps the -j worker count on the AES
// generation pipeline, reporting each point's speedup over the measured
// sequential baseline. The generated model is bit-identical at every
// point (the equivalence and property suites in internal/pipeline pin
// that), so the sweep isolates pure scheduling cost/benefit.
func BenchmarkParallelWorkerSweep(b *testing.B) {
	c, _ := experiment.CaseByName("AES")
	ts, err := experiment.GenerateTraces(c, c.ShortTS, experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		b.Fatal(err)
	}
	seqStart := time.Now()
	if _, err := experiment.BuildModel(ts, experiment.DefaultPolicies()); err != nil {
		b.Fatal(err)
	}
	seqSecs := time.Since(seqStart).Seconds()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.BuildModelParallel(ts, experiment.DefaultPolicies(), workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seqSecs/(b.Elapsed().Seconds()/float64(b.N)), "speedup_x")
		})
	}
}

// BenchmarkTrackerStep measures the steady-state cost of one PSM tracking
// step (the per-cycle overhead the IP+PSM column of Table III pays).
func BenchmarkTrackerStep(b *testing.B) {
	for _, c := range experiment.Cases() {
		ts, err := experiment.GenerateTraces(c, c.ShortTS/4, experiment.Pieces,
			testbench.Options{Seed: c.Seed})
		if err != nil {
			b.Fatal(err)
		}
		flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
		if err != nil {
			b.Fatal(err)
		}
		ft := ts.FTs[0]
		b.Run(c.Name, func(b *testing.B) {
			sim := powersim.New(flow.Model, ts.InputCols, powersim.DefaultConfig())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step(ft.Row(i % ft.Len()))
			}
		})
	}
}

// BenchmarkModelSaveLoad exercises the model file round trip used by the
// psmgen/psmsim tools.
func BenchmarkModelSaveLoad(b *testing.B) {
	c, _ := experiment.CaseByName("AES")
	ts, err := experiment.GenerateTraces(c, c.ShortTS/4, experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		b.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := psm.Save(&buf, flow.Model); err != nil {
			b.Fatal(err)
		}
		if _, err := psm.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierarchicalCamellia regenerates the extension experiment (the
// paper's Section VII future work): flat PI/PO-level PSM vs hierarchical
// per-subcomponent PSMs on Camellia, cross-validated with stalls.
func BenchmarkHierarchicalCamellia(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := experiment.HierarchicalCamellia(1, experiment.DefaultPolicies())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*row.FlatMRE, "flat_MRE_%")
		b.ReportMetric(100*row.HierMRE, "hier_MRE_%")
		b.ReportMetric(float64(row.FlatStates), "flat_states")
		b.ReportMetric(float64(row.HierStates), "hier_states")
	}
}

// BenchmarkBaselines compares the PSM against two stateless power models
// (training-set constant, global input-Hamming regression) on every IP —
// quantifying what the mined temporal structure contributes.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Baselines(1, experiment.DefaultPolicies())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(100*r.ConstantMRE, r.IP+"_const_MRE_%")
			b.ReportMetric(100*r.RegressionMRE, r.IP+"_reg_MRE_%")
			b.ReportMetric(100*r.PSMMRE, r.IP+"_psm_MRE_%")
		}
	}
}

// BenchmarkDPMPolicySweep evaluates the dynamic-power-management layer
// (the use case the paper's introduction motivates PSMs with): a timeout
// policy sweep plus the oracle over a MultSum workload profile derived
// from its generated PSM.
func BenchmarkDPMPolicySweep(b *testing.B) {
	c, _ := experiment.CaseByName("MultSum")
	ts, err := experiment.GenerateTraces(c, c.ShortTS, experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		b.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		b.Fatal(err)
	}
	workload, err := experiment.GenerateTraces(c, 100000, 1, testbench.Options{Seed: 777})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dpm.BuildProfile(flow.Model, workload.FTs[0], ts.InputCols, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		p.CycleSeconds = 20e-9
		var idleMean float64
		n := 0
		for t, a := range p.Active {
			if !a {
				idleMean += p.Power[t]
				n++
			}
		}
		idleMean /= float64(n)
		p.WakeEnergy = 4 * idleMean * p.CycleSeconds
		p.WakeLatency = 5
		rs := dpm.Sweep(p, []int{1, 2, 4, 8, 16, 32})
		b.ReportMetric(100*rs[1].Savings, "timeout1_savings_%")
		b.ReportMetric(100*rs[len(rs)-1].Savings, "oracle_savings_%")
	}
}

// BenchmarkSoCCoSimulation measures the chip-level virtual prototype:
// four IPs stepping in lock-step with their PSM trackers for 50k cycles.
func BenchmarkSoCCoSimulation(b *testing.B) {
	mk := func() *soc.System {
		sys := soc.New(20e-9, 0)
		for _, name := range []string{"RAM", "MultSum", "AES", "Camellia"} {
			c, _ := experiment.CaseByName(name)
			ts, err := experiment.GenerateTraces(c, c.ShortTS/4, experiment.Pieces,
				testbench.Options{Seed: c.Seed})
			if err != nil {
				b.Fatal(err)
			}
			flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
			if err != nil {
				b.Fatal(err)
			}
			core := c.New()
			gen, err := testbench.For(core, testbench.Options{Seed: c.Seed + 1})
			if err != nil {
				b.Fatal(err)
			}
			sys.Add(soc.NewComponent(name, core, gen, flow.Model, ts.InputCols))
		}
		return sys
	}
	sys := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Run(50000); err != nil {
			b.Fatal(err)
		}
	}
	r := sys.Report()
	b.ReportMetric(1e3*r.AvgPowerW, "avg_power_mW")
	b.ReportMetric(1e3*r.PeakPowerW, "peak_power_mW")
}
