GO ?= go

.PHONY: build test race fmt vet lint lint-sarif verify fuzz psmd-smoke bench-obs bench-join bench-power bench-ingest bench-shard ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
	# Concurrency layer under load: GOMAXPROCS>1 so the pools really
	# interleave even on single-core CI runners (the equivalence and
	# property tests inside force worker counts > 1).
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/pipeline ./internal/mining ./internal/experiment ./internal/serve ./internal/stream ./internal/shard ./internal/psm ./internal/power ./internal/hdl ./internal/obs

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# Layer-2 psmlint: the repo's own multi-pass go/ast+go/types driver over
# the whole module, gated by the committed findings baseline — findings
# recorded in .psmlint-baseline.json are grandfathered, anything new
# fails the build. Record freshly accepted debt with:
#   go run ./cmd/psmlint code -baseline .psmlint-baseline.json -write-baseline ./...
lint:
	$(GO) run ./cmd/psmlint code -baseline .psmlint-baseline.json ./...

# Machine-readable lint report (SARIF 2.1.0) for CI code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/psmlint code -sarif psmlint.sarif ./... || true
	@echo "wrote psmlint.sarif"

# Layer-1 psmlint sanity: the hand-corrupted fixture must fail, the clean
# one must pass (guards the verifier itself against regressions).
verify:
	@$(GO) run ./cmd/psmlint model cmd/psmlint/testdata/clean.json
	@if $(GO) run ./cmd/psmlint model cmd/psmlint/testdata/corrupt.json >/dev/null 2>&1; then \
		echo "psmlint model failed to reject the corrupt fixture"; \
		exit 1; \
	else \
		echo "cmd/psmlint/testdata/corrupt.json: rejected as expected"; \
	fi

# End-to-end daemon smoke: boot the real psmd on an ephemeral port, pipe
# a tracegen -stream capture into POST /v1/traces, assert GET /v1/model
# serves a verified model, GET /metrics accounts for every record,
# GET /v1/status reports ready with sane windowed quantiles and
# GET /debug/flight dumps a non-empty parseable recording, then SIGTERM
# and require a clean drain.
psmd-smoke:
	$(GO) run ./scripts

# Observability overhead gate: generation with the full opt-in obs stack
# attached (spans, registry, provenance) AND with psmd's always-on
# diagnostics (flight-recorder ring + windowed span histogram, no event
# writer) must each finish within 2% of the plain run's wall-clock
# floor (the opt-in arm's budget relaxes on single-core machines — see
# EXPERIMENTS.md); the plain arm is the nil fast path every untraced
# production call takes.
bench-obs:
	BENCH_OBS=1 $(GO) test -run TestObsOverheadGate -count=1 -v .

# Join-engine scaling gate: the worklist join must beat the restart-scan
# reference by >=5x wall clock with strictly fewer Evaluate calls on the
# adversarial 1200-state model (the gate only runs under BENCH_JOIN=1),
# then the sweep refreshes the committed BENCH_join.json.
bench-join:
	BENCH_JOIN=1 $(GO) test -run TestJoinScalingGate -count=1 -v .
	$(GO) run ./scripts/bench_join

# Power-kernel scaling gate: the columnar word-scan Estimator must beat
# the scalar ReferenceEstimator walk by >=5x wall clock with bit-identical
# cycle traces on the 4096-element banked register file (the gate only
# runs under BENCH_POWER=1), then the sweep refreshes BENCH_power.json.
bench-power:
	BENCH_POWER=1 $(GO) test -run TestPowerKernelGate -count=1 -v .
	$(GO) run ./scripts/bench_power

# Ingest scaling gate: the zero-copy Scanner/arena/AppendBatch path must
# beat the bufio/encoding-json Decoder + per-record Append path by >=2x
# wall clock while mining the identical model (the gate only runs under
# BENCH_INGEST=1), then the sweep refreshes BENCH_ingest.json with the
# absolute records/s/core rate.
bench-ingest:
	BENCH_INGEST=1 $(GO) test -run TestIngestGate -count=1 -v .
	$(GO) run ./scripts/bench_ingest

# Shard scaling gate: every shard count in {1,2,4,8} must reduce the
# workload to a model deep-equal to the single-engine reference with
# zero shed batches, and at 4 shards the coordinator must beat one
# engine by >=3x wall clock (the throughput assertion needs real cores
# and is enforced when GOMAXPROCS >= 6 — see EXPERIMENTS.md), then the
# loadgen sweep refreshes the committed BENCH_shard.json.
bench-shard:
	BENCH_SHARD=1 $(GO) test -run TestShardScalingGate -count=1 -v .
	$(GO) run ./scripts/loadgen

# Short fuzz smoke: run each native fuzz target for a few seconds on top
# of its committed seed corpus (testdata/fuzz/). Longer sessions: raise
# FUZZTIME or run `go test -fuzz` by hand.
FUZZTIME ?= 5s
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzVCDParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/check -run '^$$' -fuzz FuzzModelJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stream -run '^$$' -fuzz FuzzWireScan -fuzztime $(FUZZTIME)

ci: fmt vet build race lint verify fuzz psmd-smoke
	@echo "ci: all gates passed"
