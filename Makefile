GO ?= go

.PHONY: build test race fmt vet lint verify ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; \
		echo "$$out"; \
		exit 1; \
	fi

vet:
	$(GO) vet ./...

# Layer-2 psmlint: the repo's own go/ast linter over the whole module.
lint:
	$(GO) run ./cmd/psmlint code ./...

# Layer-1 psmlint sanity: the hand-corrupted fixture must fail, the clean
# one must pass (guards the verifier itself against regressions).
verify:
	@$(GO) run ./cmd/psmlint model cmd/psmlint/testdata/clean.json
	@if $(GO) run ./cmd/psmlint model cmd/psmlint/testdata/corrupt.json >/dev/null 2>&1; then \
		echo "psmlint model failed to reject the corrupt fixture"; \
		exit 1; \
	else \
		echo "cmd/psmlint/testdata/corrupt.json: rejected as expected"; \
	fi

ci: fmt vet build race lint verify
	@echo "ci: all gates passed"
