package psmkit

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"psmkit/internal/joinbench"
	"psmkit/internal/obs"
	"psmkit/internal/psm"
)

// joinArm runs one join engine over a fresh clone of the pooled model
// with its own metrics registry, returning the wall time, the number of
// MergePolicy.Evaluate calls actually executed (memo misses only — the
// psm_merge_evals_total counter) and the collapsed model.
func joinArm(m *psm.Model, join func(context.Context, *psm.Model, psm.MergePolicy) *psm.Model) (time.Duration, int64, *psm.Model) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	start := time.Now()
	out := join(ctx, psm.CloneModel(m), psm.DefaultMergePolicy())
	elapsed := time.Since(start)
	return elapsed, reg.Snapshot().Counters["psm_merge_evals_total"], out
}

// BenchmarkJoinScaling compares the historical restart-scan join fixpoint
// against the worklist engine on the adversarial 501-state pooled model
// of internal/joinbench (167 groups, one phase-2 collapse each). The
// restart scan pays a fresh O(n²) evaluation sweep per collapse; the
// worklist pays one seeding sweep plus O(n) re-probes. speedup_x is the
// reference wall time divided by the worklist per-op time; evals_ref and
// evals_worklist count real MergePolicy.Evaluate executions per join.
// The models are byte-identical (TestJoinScalingGate pins that).
func BenchmarkJoinScaling(b *testing.B) {
	pooled := joinbench.Model(167)
	refTime, refEvals, ref := joinArm(pooled, psm.JoinPooledReferenceCtx)

	var wlEvals int64
	var wl *psm.Model
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, wlEvals, wl = joinArm(pooled, psm.JoinPooledCtx)
	}
	if len(wl.States) != len(ref.States) {
		b.Fatalf("worklist collapsed to %d states, reference to %d", len(wl.States), len(ref.States))
	}
	b.ReportMetric(refTime.Seconds()/(b.Elapsed().Seconds()/float64(b.N)), "speedup_x")
	b.ReportMetric(float64(refEvals), "evals_ref")
	b.ReportMetric(float64(wlEvals), "evals_worklist")
	b.ReportMetric(float64(len(ref.States)), "states_out")
}

// TestJoinScalingGate is the `make bench-join` regression gate for the
// incremental join engine, on the same 501-state adversarial model as
// BenchmarkJoinScaling:
//
//   - the worklist engine must be ≥5× faster than the restart-scan
//     reference (min over interleaved rounds, like the obs gate);
//   - it must execute strictly fewer MergePolicy.Evaluate calls;
//   - both engines must collapse to exactly one state per group and
//     produce deeply equal models (the stream parity suite additionally
//     pins DOT/JSON byte identity on mined models).
//
// Wall-clock gates are noisy, so the test only runs under BENCH_JOIN=1
// (CI: `make bench-join`).
func TestJoinScalingGate(t *testing.T) {
	if os.Getenv("BENCH_JOIN") == "" {
		t.Skip("set BENCH_JOIN=1 (or run `make bench-join`) to run the join scaling gate")
	}
	const groups = 400 // 1200 pooled states: deep enough that the scan's cubic term dominates
	pooled := joinbench.Model(groups)

	joinArm(pooled, psm.JoinPooledReferenceCtx) // warm both arms before timing
	joinArm(pooled, psm.JoinPooledCtx)
	const rounds = 3
	minRef, minWl := time.Duration(1<<62), time.Duration(1<<62)
	var refEvals, wlEvals int64
	var ref, wl *psm.Model
	for i := 0; i < rounds; i++ {
		var d time.Duration
		if d, refEvals, ref = joinArm(pooled, psm.JoinPooledReferenceCtx); d < minRef {
			minRef = d
		}
		if d, wlEvals, wl = joinArm(pooled, psm.JoinPooledCtx); d < minWl {
			minWl = d
		}
	}

	if len(ref.States) != groups || len(wl.States) != groups {
		t.Fatalf("collapsed to %d (reference) / %d (worklist) states, want %d",
			len(ref.States), len(wl.States), groups)
	}
	if !reflect.DeepEqual(ref, wl) {
		t.Fatal("worklist and reference joins produced different models")
	}

	speedup := float64(minRef) / float64(minWl)
	t.Logf("reference %v (%d evals), worklist %v (%d evals), speedup %.1fx",
		minRef, refEvals, minWl, wlEvals, speedup)
	if wlEvals >= refEvals {
		t.Fatalf("worklist executed %d Evaluate calls, reference %d; want strictly fewer", wlEvals, refEvals)
	}
	if speedup < 5 {
		t.Fatalf("worklist speedup %.1fx over restart scan (min over %d rounds: %v vs %v); gate is 5x",
			speedup, rounds, minWl, minRef)
	}
}
