// DPM exploration: the use case the paper's introduction motivates PSMs
// with — a power manager exploring dynamic power management policies on
// top of the generated model. A PSM is trained for the MultSum MAC, its states
// classify the workload into active/idle cycles, and shutdown policies
// (fixed timeouts vs the clairvoyant oracle) are evaluated for energy
// savings and added wake-up latency. The MAC is the interesting subject:
// unlike the clock-gated RAM, its clock tree free-runs, so idle cycles
// burn real power a manager can reclaim.
//
//	go run ./examples/dpm_exploration
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"psmkit/internal/dpm"
	"psmkit/internal/experiment"
	"psmkit/internal/testbench"
)

func main() {
	// 1. Train a PSM for the RAM on its verification testset.
	c, err := experiment.CaseByName("MultSum")
	if err != nil {
		log.Fatal(err)
	}
	ts, err := experiment.GenerateTraces(c, 20000, experiment.Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		log.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Derive the activity profile of a workload from the PSM: the
	//    model's own power states classify each cycle as active or idle.
	workload, err := experiment.GenerateTraces(c, 50000, 1, testbench.Options{Seed: 777})
	if err != nil {
		log.Fatal(err)
	}
	profile, err := dpm.BuildProfile(flow.Model, workload.FTs[0], ts.InputCols, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Power-gating economics: 20 ns cycle (50 MHz), zero retention
	//    power, a wake-up costing four idle-cycles' worth of energy (so
	//    only gaps past the ~4-cycle break-even are worth gating), and
	//    5 cycles of wake latency.
	profile.CycleSeconds = 20e-9
	profile.SleepPower = 0
	profile.WakeLatency = 5

	active := 0
	for _, a := range profile.Active {
		if a {
			active++
		}
	}
	fmt.Printf("workload: %d cycles, %.0f%% active (classified by the PSM's power states)\n",
		profile.Len(), 100*float64(active)/float64(profile.Len()))
	idleMean := 0.0
	n := 0
	for i, a := range profile.Active {
		if !a {
			idleMean += profile.Power[i]
			n++
		}
	}
	if n > 0 {
		idleMean /= float64(n)
	}
	profile.WakeEnergy = 4 * idleMean * profile.CycleSeconds
	fmt.Printf("break-even idle length: %d cycles\n\n", dpm.BreakEvenCycles(profile, idleMean))

	// 4. Sweep shutdown policies.
	results := dpm.Sweep(profile, []int{1, 2, 4, 8, 16, 32, 64, 128})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tenergy (nJ)\tsavings\tshutdowns\tsleep cycles\tadded latency")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%.2f\t%.1f%%\t%d\t%d\t%d\n",
			r.Policy, 1e9*r.EnergyJ, 100*r.Savings, r.Shutdowns, r.SleepCycles, r.AddedLatency)
	}
	w.Flush()
	fmt.Println("\nThe oracle row bounds what any online policy can achieve; timeouts")
	fmt.Println("near the break-even length approach it with bounded added latency.")
}
