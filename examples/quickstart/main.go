// Quickstart: generate a Power State Machine for a benchmark IP in a few
// lines — simulate the IP to get training traces, mine the PSM, and
// validate it against the reference power trace.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"psmkit/internal/experiment"
	"psmkit/internal/powersim"
	"psmkit/internal/testbench"
)

func main() {
	// 1. Pick a benchmark IP (the 1 KB RAM) and simulate it under its
	//    functional-verification testbench, capturing functional traces
	//    and reference power traces. The experiment helper splits the
	//    testset into four training traces, like the paper's flow.
	c, err := experiment.CaseByName("RAM")
	if err != nil {
		log.Fatal(err)
	}
	traces, err := experiment.GenerateTraces(c, 8000, experiment.Pieces, testbench.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d instants (reference power estimation took %v)\n",
		traces.Instants(), traces.PXTime.Round(1000))

	// 2. Run the automatic PSM generation flow: assertion mining, the
	//    XU-automaton PSMGenerator, simplify, join and the data-dependent
	//    calibration.
	flow, err := experiment.BuildModel(traces, experiment.DefaultPolicies())
	if err != nil {
		log.Fatal(err)
	}
	model := flow.Model
	fmt.Printf("generated PSM: %d states, %d transitions (in %v)\n",
		model.NumStates(), model.NumTransitions(), flow.GenTime.Round(1000))

	// 3. Inspect the power states.
	for _, s := range model.States {
		kind := "constant"
		if s.Fit != nil {
			kind = fmt.Sprintf("regression (r=%.2f)", s.Fit.R)
		}
		fmt.Printf("  state s%d: μ=%.3g W, σ=%.2g, n=%d instants, output=%s\n",
			s.ID, s.Power.Mean(), s.Power.StdDev(), s.Power.N, kind)
	}

	// 4. Validate: replay the training traces through the PSM tracker and
	//    compare the per-instant estimates with the reference power.
	mre, wsp := experiment.ValidateMRE(model, traces, powersim.DefaultConfig())
	fmt.Printf("validation: MRE %.2f%%, wrong-state predictions %.1f%%\n", 100*mre, 100*wsp)

	// 5. Export the PSM for documentation (Graphviz).
	fmt.Println("\nGraphviz model (pipe into `dot -Tsvg`):")
	if err := model.WriteDOT(os.Stdout, "ram_psm"); err != nil {
		log.Fatal(err)
	}
}
