// Paperfig reproduces the worked examples of the paper's figures:
//
//   - Fig. 3: the 8-instant functional trace and its mined proposition
//     trace p_a p_a p_a p_b p_b p_b p_c p_d;
//
//   - Fig. 5: the XU automaton recognizing ⟨p_a U p_b, 0, 2⟩,
//     ⟨p_b U p_c, 3, 5⟩ and p_c X p_d, and the resulting 3-state chain
//     PSM with its power attributes;
//
//   - Fig. 6 (a): simplify merging two adjacent power-equivalent states
//     into a cascade;
//
//   - Fig. 2-style rendering of the final PSM as Graphviz.
//
//     go run ./examples/paperfig
package main

import (
	"fmt"
	"log"
	"os"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/psm"
	"psmkit/internal/trace"
)

func main() {
	// --- Fig. 3: the functional trace ------------------------------------
	f := trace.NewFunctional([]trace.Signal{
		{Name: "v1", Width: 1}, {Name: "v2", Width: 1},
		{Name: "v3", Width: 4}, {Name: "v4", Width: 4},
	})
	rows := [][4]uint64{
		{1, 0, 3, 1}, {1, 0, 3, 1}, {1, 0, 3, 1},
		{0, 1, 3, 3}, {0, 1, 4, 4}, {0, 1, 2, 2},
		{1, 1, 0, 0}, {1, 1, 3, 1},
	}
	for _, r := range rows {
		f.Append([]logic.Vector{
			logic.FromUint64(1, r[0]), logic.FromUint64(1, r[1]),
			logic.FromUint64(4, r[2]), logic.FromUint64(4, r[3]),
		})
	}
	pw := &trace.Power{Values: []float64{3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343}}

	fmt.Println("Fig. 3 — functional trace Φ:")
	fmt.Println("  t   v1     v2     v3  v4   power")
	for t := 0; t < f.Len(); t++ {
		fmt.Printf("  %d   %-5v  %-5v  %d   %d   %.3f\n", t,
			f.Value(t, 0).Bit(0) == 1, f.Value(t, 1).Bit(0) == 1,
			f.Value(t, 2).Uint64(), f.Value(t, 3).Uint64(), pw.Values[t])
	}

	// Mine the proposition trace (Fig. 3's illustration uses a short
	// trace, so the stability filter is relaxed accordingly).
	dict, pts, err := mining.Mine([]*trace.Functional{f},
		mining.Config{MinSupport: 0.1, MinRunLength: 2})
	if err != nil {
		log.Fatal(err)
	}
	pt := pts[0]
	fmt.Println("\nmined proposition trace Γ:")
	labels := map[int]string{}
	next := 'a'
	for t, id := range pt.IDs {
		if _, ok := labels[id]; !ok {
			labels[id] = "p_" + string(next)
			next++
		}
		fmt.Printf("  t=%d: %s = %s\n", t, labels[id], dict.PropString(id))
	}

	// --- Fig. 5: the PSMGenerator over Γ ---------------------------------
	chain, err := psm.Generate(dict, pt, pw, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFig. 5 — XU automaton output (one state per temporal assertion):")
	for i, s := range chain.States {
		ph := s.Alts[0].Seq.Phases[0]
		iv := s.Intervals[0]
		pattern := labels[ph.Prop] + " " + ph.Kind.String()
		if i+1 < len(chain.States) {
			pattern += " " + labels[chain.States[i+1].Alts[0].Seq.Phases[0].Prop]
		} else {
			pattern += " ·"
		}
		fmt.Printf("  s%d: ⟨%s, %d, %d⟩  power ⟨μ=%.4f, σ=%.4f, n=%d⟩\n",
			i, pattern, iv.Start, iv.Stop, s.Power.Mean(), s.Power.StdDev(), s.Power.N)
	}
	for _, tr := range psm.ChainTransitions(chain) {
		fmt.Printf("  transition s%d → s%d enabled by %s\n", tr.From, tr.To, labels[tr.Enabling])
	}

	// --- Fig. 6(a): simplify on a chain with mergeable neighbours ---------
	fmt.Println("\nFig. 6(a) — simplify: two adjacent states with statistically")
	fmt.Println("equal power pool into one cascade state:")
	f2 := trace.NewFunctional([]trace.Signal{{Name: "m0", Width: 1}, {Name: "m1", Width: 1}})
	seg := func(m0, m1 uint64, n int) {
		for i := 0; i < n; i++ {
			f2.Append([]logic.Vector{logic.FromUint64(1, m0), logic.FromUint64(1, m1)})
		}
	}
	seg(0, 0, 4)
	seg(0, 1, 4) // same power as the first segment
	seg(1, 0, 4) // higher power
	seg(1, 1, 2)
	pw2 := &trace.Power{Values: []float64{
		1.00, 1.01, 0.99, 1.00, 1.01, 1.00, 1.00, 0.99,
		5.00, 5.05, 4.95, 5.00, 5.00, 5.00,
	}}
	d2, pts2, err := mining.Mine([]*trace.Functional{f2}, mining.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	c2, err := psm.Generate(d2, pts2[0], pw2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  before simplify: %d states\n", len(c2.States))
	s2 := psm.Simplify(c2, psm.DefaultMergePolicy())
	fmt.Printf("  after simplify:  %d states; cascade = %s\n",
		len(s2.States), s2.States[0].Alts[0].Seq.String(d2))

	// --- Fig. 2-style rendering -------------------------------------------
	model := psm.Join([]*psm.Chain{chain}, psm.MergePolicy{Alpha: 1.1})
	fmt.Println("\nFig. 5 PSM as Graphviz (pipe into `dot -Tsvg`):")
	if err := model.WriteDOT(os.Stdout, "fig5"); err != nil {
		log.Fatal(err)
	}
}
