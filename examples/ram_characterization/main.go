// RAM characterization: the full Table II experiment for the 1 KB RAM,
// demonstrating the data-dependent calibration of Section IV — the write
// state's power is not a constant but a linear function of the input
// Hamming distance, and the automatically fitted regression recovers it.
//
//	go run ./examples/ram_characterization
package main

import (
	"fmt"
	"log"

	"psmkit/internal/experiment"
	"psmkit/internal/powersim"
	"psmkit/internal/testbench"
)

func main() {
	c, err := experiment.CaseByName("RAM")
	if err != nil {
		log.Fatal(err)
	}

	// Training: the paper's short-TS length (34130 instants).
	traces, err := experiment.GenerateTraces(c, c.ShortTS, experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		log.Fatal(err)
	}

	// Compare the flow with and without calibration to show what the
	// linear regression buys on a data-dependent IP.
	withCal := experiment.DefaultPolicies()
	noCal := experiment.DefaultPolicies()
	noCal.SkipCalibration = true

	for _, cfg := range []struct {
		name string
		pol  experiment.Policies
	}{
		{"with Hamming-distance calibration", withCal},
		{"without calibration (constant μ)", noCal},
	} {
		flow, err := experiment.BuildModel(traces, cfg.pol)
		if err != nil {
			log.Fatal(err)
		}
		mre, _ := experiment.ValidateMRE(flow.Model, traces, powersim.DefaultConfig())
		calibrated := 0
		for _, s := range flow.Model.States {
			if s.Fit != nil {
				calibrated++
			}
		}
		fmt.Printf("%-36s states=%d calibrated=%d MRE=%.2f%%\n",
			cfg.name, flow.Model.NumStates(), calibrated, 100*mre)
	}

	// Cross-validate on a fresh testset (different seed — different
	// addresses, data and burst lengths).
	flow, err := experiment.BuildModel(traces, withCal)
	if err != nil {
		log.Fatal(err)
	}
	val, err := experiment.GenerateTraces(c, 50000, 1, testbench.Options{Seed: 998877})
	if err != nil {
		log.Fatal(err)
	}
	res := powersim.Run(flow.Model, val.FTs[0], val.InputCols, val.PWs[0], powersim.DefaultConfig())
	fmt.Printf("\ncross-validation on unseen stimulus: MRE=%.2f%% WSP=%.1f%% (unsynced %d of %d instants)\n",
		100*res.MRE, 100*res.WSP(), res.UnsyncedInstants, res.Instants)

	// Show the fitted write-state law.
	for _, s := range flow.Model.States {
		if s.Fit != nil && s.Power.Mean() > 2e-6 {
			fmt.Printf("\nwrite state s%d: power ≈ %.3g + %.3g × HD(inputs)  (Pearson r = %.3f)\n",
				s.ID, s.Fit.Intercept, s.Fit.Slope, s.Fit.R)
			fmt.Println("  HD   estimate (W)")
			for _, hd := range []float64{0, 8, 16, 24, 32} {
				fmt.Printf("  %2.0f   %.3e\n", hd, s.Estimate(hd))
			}
			break
		}
	}
}
