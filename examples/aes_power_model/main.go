// AES power model: generate a PSM for the AES-128 core, persist it as a
// model file, reload it, and co-simulate it live against the core —
// streaming per-cycle power estimates while the IP encrypts and decrypts,
// exactly how the paper's SystemC PSM module runs alongside the IP model.
//
//	go run ./examples/aes_power_model
package main

import (
	"bytes"
	"fmt"
	"log"

	"psmkit/internal/experiment"
	"psmkit/internal/hdl"
	"psmkit/internal/logic"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/testbench"
)

func main() {
	// Train a PSM on the AES functional-verification testset.
	c, err := experiment.CaseByName("AES")
	if err != nil {
		log.Fatal(err)
	}
	traces, err := experiment.GenerateTraces(c, c.ShortTS/2, experiment.Pieces,
		testbench.Options{Seed: c.Seed})
	if err != nil {
		log.Fatal(err)
	}
	flow, err := experiment.BuildModel(traces, experiment.DefaultPolicies())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained AES PSM: %d states, %d transitions\n",
		flow.Model.NumStates(), flow.Model.NumTransitions())

	// Round-trip the model through its file format (what cmd/psmgen and
	// cmd/psmsim exchange).
	var buf bytes.Buffer
	if err := psm.Save(&buf, flow.Model); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	model, err := psm.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model file round trip: %d bytes\n", size)

	// Live co-simulation: drive the core cycle by cycle and feed every
	// PI/PO valuation to the streaming tracker.
	core := c.New()
	sim := hdl.NewSimulator(core)
	tracker := powersim.New(model, traces.InputCols, powersim.DefaultConfig())

	names := hdl.SortedPortNames(core)
	row := make([]logic.Vector, len(names))
	var estimate float64
	sim.Observe(func(_ int, in, out hdl.Values) {
		for i, n := range names {
			if v, ok := in[n]; ok {
				row[i] = v
			} else {
				row[i] = out[n]
			}
		}
		estimate = tracker.Step(row)
	})

	// Encrypt one block with the FIPS-197 example key/plaintext and print
	// the per-cycle power estimates.
	key := logic.MustParseHex(128, "000102030405060708090a0b0c0d0e0f")
	pt := logic.MustParseHex(128, "00112233445566778899aabbccddeeff")
	idle := hdl.Values{
		"key": logic.New(128), "din": logic.New(128),
		"keyload": logic.New(1), "start": logic.New(1),
		"dec": logic.New(1), "flush": logic.New(1),
	}

	step := func(v hdl.Values, label string) hdl.Values {
		out := sim.MustStep(v)
		fmt.Printf("  cycle %2d  %-8s  estimate %.3e W\n", sim.Cycle()-1, label, estimate)
		return out
	}

	fmt.Println("\nlive co-simulation (one AES-128 encryption):")
	for i := 0; i < 3; i++ {
		step(idle, "idle")
	}
	kv := idle.Clone()
	kv["key"] = key
	kv["keyload"] = logic.FromUint64(1, 1)
	step(kv, "keyload")
	sv := idle.Clone()
	sv["din"] = pt
	sv["start"] = logic.FromUint64(1, 1)
	out := step(sv, "start")
	for out["done"].Bit(0) != 1 {
		out = step(idle, "round")
	}
	fmt.Printf("\nciphertext: %s (FIPS-197 expects 69c4e0d86a7b0430d8cdb78070b4c55a)\n",
		out["dout"].Hex())

	// Validate against the reference power model over a longer run.
	val, err := experiment.GenerateTraces(c, 40000, 1, testbench.Options{Seed: 31415})
	if err != nil {
		log.Fatal(err)
	}
	res := powersim.Run(model, val.FTs[0], val.InputCols, val.PWs[0], powersim.DefaultConfig())
	fmt.Printf("validation on 40000 unseen instants: MRE %.2f%%, WSP %.1f%%\n",
		100*res.MRE, 100*res.WSP())

}
