// SoC virtual prototype: the scenario the paper's introduction targets —
// several IP cores simulated together, each with its automatically
// generated PSM estimating power alongside, feeding chip-level energy
// accounting, a peak-power budget check, and a per-component breakdown.
//
//	go run ./examples/soc_prototype
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"psmkit/internal/experiment"
	"psmkit/internal/soc"
	"psmkit/internal/testbench"
)

func main() {
	// Train one PSM per IP on its functional-verification testset.
	fmt.Println("training PSMs for the SoC's IPs…")
	sys := soc.New(20e-9, 0) // 50 MHz common clock
	for _, spec := range []struct {
		ip    string
		train int
		seed  int64
	}{
		{"RAM", 12000, 11},
		{"MultSum", 8000, 22},
		{"AES", 10000, 33},
		{"Camellia", 16000, 44},
	} {
		c, err := experiment.CaseByName(spec.ip)
		if err != nil {
			log.Fatal(err)
		}
		ts, err := experiment.GenerateTraces(c, spec.train, experiment.Pieces,
			testbench.Options{Seed: c.Seed})
		if err != nil {
			log.Fatal(err)
		}
		flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
		if err != nil {
			log.Fatal(err)
		}
		core := c.New()
		gen, err := testbench.For(core, testbench.Options{Seed: spec.seed})
		if err != nil {
			log.Fatal(err)
		}
		sys.Add(soc.NewComponent(spec.ip, core, gen, flow.Model, ts.InputCols))
		fmt.Printf("  %-8s PSM: %d states\n", spec.ip, flow.Model.NumStates())
	}

	// Simulate the whole chip for 100k cycles (2 ms at 50 MHz).
	const cycles = 100000
	fmt.Printf("\nco-simulating %d cycles…\n", cycles)
	if err := sys.Run(cycles); err != nil {
		log.Fatal(err)
	}

	r := sys.Report()
	fmt.Printf("\nchip summary: %.3f µJ total, average %.3f mW, peak %.3f mW (cycle %d)\n",
		1e6*r.TotalEnergyJ, 1e3*r.AvgPowerW, 1e3*r.PeakPowerW, r.PeakCycle)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "\ncomponent\tenergy (µJ)\tshare\ttracker WSP")
	for _, b := range r.Breakdown {
		var wsp float64
		for _, c := range sys.Components() {
			if c.Name == b.Name {
				wsp = c.Tracker().Result().WSP()
			}
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.1f%%\t%.1f%%\n", b.Name, 1e6*b.EnergyJ, 100*b.Share, 100*wsp)
	}
	w.Flush()
	fmt.Println("\nEvery power number above comes from the generated PSMs — no gate-level")
	fmt.Println("simulation ran during the 100k-cycle co-simulation.")
}
