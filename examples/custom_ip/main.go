// Custom IP: characterize a user-defined core with the PSM flow. This is
// the library's main extension point — implement hdl.Core for your RTL
// model, provide stimulus, and the rest of the pipeline (power reference,
// mining, PSM generation, validation) is generic.
//
// The example builds a small DMA-style burst engine from scratch: it sits
// idle, accepts a descriptor (length + source pattern), then streams that
// many beats. Power-wise it has three regimes the flow must discover on
// its own: gated idle, descriptor setup, and the data-dependent streaming
// burst.
//
//	go run ./examples/custom_ip
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/power"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/trace"
)

// dmaEngine is the custom core: a descriptor-driven burst streamer.
type dmaEngine struct {
	lenReg  *hdl.Reg // remaining beats
	pattern *hdl.Reg // streaming data pattern (rotated every beat)
	outReg  *hdl.Reg
	busyReg *hdl.Reg
}

func newDMA() *dmaEngine {
	return &dmaEngine{
		lenReg:  hdl.NewReg("dma.len", 8),
		pattern: hdl.NewReg("dma.pattern", 32),
		outReg:  hdl.NewReg("dma.out", 32),
		busyReg: hdl.NewReg("dma.busy", 1),
	}
}

func (d *dmaEngine) Name() string { return "DMA" }

func (d *dmaEngine) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "desc_valid", Width: 1, Dir: hdl.In},
		{Name: "desc_len", Width: 8, Dir: hdl.In},
		{Name: "desc_data", Width: 32, Dir: hdl.In},
		{Name: "beat", Width: 32, Dir: hdl.Out},
		{Name: "busy", Width: 1, Dir: hdl.Out},
	}
}

func (d *dmaEngine) Reset() {
	for _, r := range d.Elements() {
		r.Reset()
		r.Gate(true)
	}
	d.busyReg.Gate(false)
}

func (d *dmaEngine) Elements() []*hdl.Reg {
	return []*hdl.Reg{d.lenReg, d.pattern, d.outReg, d.busyReg}
}

func (d *dmaEngine) Step(in hdl.Values) hdl.Values {
	busy := d.busyReg.Get().Bit(0) == 1
	gate := func(g bool) {
		d.lenReg.Gate(g)
		d.pattern.Gate(g)
		d.outReg.Gate(g)
		d.busyReg.Gate(g)
	}
	switch {
	case !busy && in["desc_valid"].Bit(0) == 1:
		gate(false)
		d.lenReg.Set(in["desc_len"])
		d.pattern.Set(in["desc_data"])
		d.busyReg.SetUint64(1)
	case busy:
		gate(false)
		left := d.lenReg.Get().Uint64()
		// Stream one beat: the scrambler stage inverts the pattern each
		// beat (full-swing, data-independent switching activity).
		p := d.pattern.Get().Not()
		d.pattern.Set(p)
		d.outReg.Set(p)
		if left <= 1 {
			d.busyReg.SetUint64(0)
			gate(true)
		} else {
			d.lenReg.SetUint64(left - 1)
		}
	default:
		gate(true)
	}
	return hdl.Values{"beat": d.outReg.Get(), "busy": d.busyReg.Get()}
}

// stimulus drives descriptors with idle gaps.
func stimulus(seed int64, n int) []hdl.Values {
	rng := rand.New(rand.NewSource(seed))
	idle := hdl.Values{
		"desc_valid": logic.New(1), "desc_len": logic.New(8), "desc_data": logic.New(32),
	}
	var out []hdl.Values
	for len(out) < n {
		for i := rng.Intn(8) + 2; i > 0; i-- {
			out = append(out, idle)
		}
		length := uint64(rng.Intn(30) + 4)
		desc := hdl.Values{
			"desc_valid": logic.FromUint64(1, 1),
			"desc_len":   logic.FromUint64(8, length),
			"desc_data":  logic.FromUint64(32, rng.Uint64()),
		}
		out = append(out, desc)
		for i := uint64(0); i < length; i++ {
			out = append(out, idle)
		}
	}
	return out[:n]
}

func main() {
	// 1. Simulate the custom core with the power reference attached.
	core := newDMA()
	sim := hdl.NewSimulator(core)
	est := power.NewEstimator(core, power.DefaultConfig())
	ft, obs := trace.Capture(core)
	sim.Observe(obs)
	sim.Observe(est.Observer())
	for _, v := range stimulus(1, 12000) {
		sim.MustStep(v)
	}
	pw := &trace.Power{Values: est.Trace()}
	fmt.Printf("simulated %d instants of the custom DMA engine\n", ft.Len())

	// 2. Mine and generate the PSM.
	dict, pts, err := mining.Mine([]*trace.Functional{ft}, mining.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	chain, err := psm.Generate(dict, pts[0], pw, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XU automaton recognized %d temporal assertions\n", len(chain.States))

	model := psm.Join([]*psm.Chain{psm.Simplify(chain, psm.DefaultMergePolicy())},
		psm.DefaultMergePolicy())
	inputCols := trace.InputColumns(ft, core)
	calibrated := psm.Calibrate(model, []*trace.Functional{ft}, []*trace.Power{pw},
		inputCols, psm.DefaultCalibrationPolicy())
	fmt.Printf("after simplify+join: %d states (%d calibrated), %d transitions\n",
		model.NumStates(), calibrated, model.NumTransitions())

	// 3. Validate on an unseen stimulus.
	core2 := newDMA()
	sim2 := hdl.NewSimulator(core2)
	est2 := power.NewEstimator(core2, power.DefaultConfig())
	ft2, obs2 := trace.Capture(core2)
	sim2.Observe(obs2)
	sim2.Observe(est2.Observer())
	for _, v := range stimulus(777, 8000) {
		sim2.MustStep(v)
	}
	res := powersim.Run(model, ft2, inputCols, &trace.Power{Values: est2.Trace()},
		powersim.DefaultConfig())
	fmt.Printf("validation: MRE %.2f%%, WSP %.1f%%\n", 100*res.MRE, 100*res.WSP())

	fmt.Println("\nPSM (Graphviz):")
	if err := model.WriteDOT(os.Stdout, "dma_psm"); err != nil {
		log.Fatal(err)
	}
}
