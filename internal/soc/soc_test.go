package soc

import (
	"math"
	"testing"

	"psmkit/internal/experiment"
	"psmkit/internal/testbench"
)

// buildComponent trains a PSM for the named IP and wires a component.
func buildComponent(t *testing.T, name string, train int, seed int64) *Component {
	t.Helper()
	c, err := experiment.CaseByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := experiment.GenerateTraces(c, train, experiment.Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	core := c.New()
	gen, err := testbench.For(core, testbench.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewComponent(name, core, gen, flow.Model, ts.InputCols)
}

func twoIPSystem(t *testing.T) *System {
	t.Helper()
	sys := New(20e-9, 0)
	sys.Add(buildComponent(t, "RAM", 4000, 101))
	sys.Add(buildComponent(t, "MultSum", 3000, 202))
	return sys
}

func TestSystemStepsAllComponents(t *testing.T) {
	sys := twoIPSystem(t)
	if err := sys.Run(2000); err != nil {
		t.Fatal(err)
	}
	if sys.Cycle() != 2000 {
		t.Errorf("cycles = %d", sys.Cycle())
	}
	for _, c := range sys.Components() {
		if c.EnergyJ() <= 0 {
			t.Errorf("%s accumulated no energy", c.Name)
		}
	}
}

func TestTotalIsSumOfComponents(t *testing.T) {
	sys := twoIPSystem(t)
	for i := 0; i < 500; i++ {
		total, err := sys.Step()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range sys.Components() {
			sum += c.Power()
		}
		if math.Abs(total-sum) > 1e-18 {
			t.Fatalf("cycle %d: total %g != Σ %g", i, total, sum)
		}
	}
}

func TestReportAccounting(t *testing.T) {
	sys := twoIPSystem(t)
	if err := sys.Run(3000); err != nil {
		t.Fatal(err)
	}
	r := sys.Report()
	if r.Cycles != 3000 {
		t.Errorf("cycles = %d", r.Cycles)
	}
	var sum, shares float64
	for _, b := range r.Breakdown {
		sum += b.EnergyJ
		shares += b.Share
	}
	if math.Abs(sum-r.TotalEnergyJ) > 1e-18 {
		t.Errorf("breakdown sums to %g, total %g", sum, r.TotalEnergyJ)
	}
	if math.Abs(shares-1) > 1e-12 {
		t.Errorf("shares sum to %g", shares)
	}
	// Breakdown sorted descending.
	for i := 1; i < len(r.Breakdown); i++ {
		if r.Breakdown[i].EnergyJ > r.Breakdown[i-1].EnergyJ {
			t.Error("breakdown not sorted")
		}
	}
	// Average power consistency: E = P̄ · t.
	wantAvg := r.TotalEnergyJ / (float64(r.Cycles) * sys.CycleSeconds)
	if math.Abs(r.AvgPowerW-wantAvg) > 1e-18 {
		t.Errorf("avg power %g, want %g", r.AvgPowerW, wantAvg)
	}
	if r.PeakPowerW < r.AvgPowerW {
		t.Errorf("peak %g below average %g", r.PeakPowerW, r.AvgPowerW)
	}
	if r.PeakCycle < 0 || r.PeakCycle >= r.Cycles {
		t.Errorf("peak cycle = %d", r.PeakCycle)
	}
}

func TestBudgetAccounting(t *testing.T) {
	// Budget between average and peak: some cycles must exceed it.
	probe := twoIPSystem(t)
	if err := probe.Run(2000); err != nil {
		t.Fatal(err)
	}
	pr := probe.Report()
	budget := (pr.AvgPowerW + pr.PeakPowerW) / 2

	sys := twoIPSystem(t)
	sys.budgetW = budget
	if err := sys.Run(2000); err != nil {
		t.Fatal(err)
	}
	r := sys.Report()
	if r.OverBudgetCycles <= 0 || r.OverBudgetCycles >= r.Cycles {
		t.Errorf("over-budget cycles = %d of %d", r.OverBudgetCycles, r.Cycles)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := twoIPSystem(t)
	b := twoIPSystem(t)
	for i := 0; i < 500; i++ {
		ta, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		tb, err := b.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ta != tb {
			t.Fatalf("cycle %d diverged: %g vs %g", i, ta, tb)
		}
	}
}

func TestEmptySystemReport(t *testing.T) {
	sys := New(20e-9, 0)
	if err := sys.Run(10); err != nil {
		t.Fatal(err)
	}
	r := sys.Report()
	if r.TotalEnergyJ != 0 || len(r.Breakdown) != 0 {
		t.Errorf("empty system report: %+v", r)
	}
}
