// Package soc assembles the virtual prototype the paper's introduction
// targets: "PSMs are a well-known formalism to model and simulate the
// time-based energy consumption of IP cores for early virtual prototyping
// of system-on-chips". A System steps several IP cores cycle by cycle,
// each with its generated PSM tracking alongside, and aggregates
// per-component and chip-level power: instantaneous totals, per-component
// energy breakdown, and peak-power detection against a budget.
package soc

import (
	"fmt"
	"sort"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/testbench"
)

// Component is one IP instance in the system: the functional core, its
// stimulus, and the PSM tracker estimating its power.
type Component struct {
	Name    string
	core    hdl.Core
	sim     *hdl.Simulator
	gen     testbench.Generator
	tracker *powersim.Simulator

	names []string
	row   []logic.Vector

	energyJ float64
	lastW   float64
}

// NewComponent wires a core, its stimulus generator and its PSM model
// into a steppable component. inputCols index the primary inputs in the
// model's trace schema.
func NewComponent(name string, core hdl.Core, gen testbench.Generator, model *psm.Model, inputCols []int) *Component {
	c := &Component{
		Name:    name,
		core:    core,
		sim:     hdl.NewSimulator(core),
		gen:     gen,
		tracker: powersim.New(model, inputCols, powersim.DefaultConfig()),
		names:   hdl.SortedPortNames(core),
	}
	c.row = make([]logic.Vector, len(c.names))
	c.sim.Observe(func(_ int, in, out hdl.Values) {
		for i, n := range c.names {
			if v, ok := in[n]; ok {
				c.row[i] = v
			} else {
				c.row[i] = out[n]
			}
		}
		c.lastW = c.tracker.Step(c.row)
	})
	return c
}

// Power returns the component's last per-cycle power estimate in watts.
func (c *Component) Power() float64 { return c.lastW }

// EnergyJ returns the component's accumulated energy in joules.
func (c *Component) EnergyJ() float64 { return c.energyJ }

// Tracker exposes the component's PSM tracker (for WSP inspection).
func (c *Component) Tracker() *powersim.Simulator { return c.tracker }

// System is a set of components stepped in lock-step on a common clock.
type System struct {
	CycleSeconds float64
	components   []*Component

	cycle      int
	peakW      float64
	peakCycle  int
	overBudget int
	budgetW    float64
}

// New creates a system with the given clock period. budgetW, when
// positive, arms peak-power accounting against the chip budget.
func New(cycleSeconds, budgetW float64) *System {
	return &System{CycleSeconds: cycleSeconds, budgetW: budgetW}
}

// Add registers a component.
func (s *System) Add(c *Component) { s.components = append(s.components, c) }

// Components returns the registered components.
func (s *System) Components() []*Component { return s.components }

// Cycle returns the number of cycles simulated.
func (s *System) Cycle() int { return s.cycle }

// Step advances every component one clock cycle and returns the chip's
// total estimated power for the cycle.
func (s *System) Step() (float64, error) {
	var total float64
	for _, c := range s.components {
		if _, err := c.sim.Step(c.gen.Next()); err != nil {
			return 0, fmt.Errorf("soc: %s: %w", c.Name, err)
		}
		total += c.lastW
		c.energyJ += c.lastW * s.CycleSeconds
	}
	if total > s.peakW {
		s.peakW = total
		s.peakCycle = s.cycle
	}
	if s.budgetW > 0 && total > s.budgetW {
		s.overBudget++
	}
	s.cycle++
	return total, nil
}

// Run steps the system n cycles.
func (s *System) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Report summarizes a simulation.
type Report struct {
	Cycles       int
	TotalEnergyJ float64
	AvgPowerW    float64
	PeakPowerW   float64
	PeakCycle    int
	// OverBudgetCycles counts cycles whose total power exceeded the
	// budget (0 when no budget armed).
	OverBudgetCycles int
	// Breakdown is the per-component energy share, sorted descending.
	Breakdown []ComponentShare
}

// ComponentShare is one row of the energy breakdown.
type ComponentShare struct {
	Name    string
	EnergyJ float64
	Share   float64
}

// Report aggregates the simulation so far.
func (s *System) Report() Report {
	r := Report{
		Cycles:           s.cycle,
		PeakPowerW:       s.peakW,
		PeakCycle:        s.peakCycle,
		OverBudgetCycles: s.overBudget,
	}
	for _, c := range s.components {
		r.TotalEnergyJ += c.energyJ
	}
	for _, c := range s.components {
		share := 0.0
		if r.TotalEnergyJ > 0 {
			share = c.energyJ / r.TotalEnergyJ
		}
		r.Breakdown = append(r.Breakdown, ComponentShare{Name: c.Name, EnergyJ: c.energyJ, Share: share})
	}
	sort.Slice(r.Breakdown, func(i, j int) bool { return r.Breakdown[i].EnergyJ > r.Breakdown[j].EnergyJ })
	if s.cycle > 0 && s.CycleSeconds > 0 {
		r.AvgPowerW = r.TotalEnergyJ / (float64(s.cycle) * s.CycleSeconds)
	}
	return r
}
