package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value interface{}
}

// KV builds an Attr.
func KV(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// maxSpanRecords bounds the finished-span memory the summary tree is
// built from; a run that ends more spans still streams every NDJSON
// event, the overflow is only dropped from the aggregate.
const maxSpanRecords = 1 << 16

// spanRecord is the finished-span residue kept for the summary tree.
type spanRecord struct {
	id, parent int64
	name       string
	dur        time.Duration
}

// Tracer collects spans. Ended spans are emitted immediately as one
// NDJSON event each (when the tracer has a writer) and retained —
// bounded — for the per-run summary tree. All methods are goroutine-
// safe; spans from concurrent workers interleave in end order.
type Tracer struct {
	nextID atomic.Int64

	// flight and spanWin are attached before the tracer is shared (see
	// SetFlight/SetSpanWindow) and read without t.mu afterwards.
	flight  *Flight
	spanWin *WindowedHistogram

	mu      sync.Mutex
	w       io.Writer // nil: summary only
	records []spanRecord
	dropped int
	err     error // first write error
}

// NewTracer returns a tracer streaming span events to w as NDJSON.
// A nil w collects the summary tree without emitting events.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// SetFlight attaches a flight recorder: every ended span is also
// captured in the ring. Attach before the tracer is shared across
// goroutines.
func (t *Tracer) SetFlight(f *Flight) {
	if t == nil {
		return
	}
	t.flight = f
}

// SetSpanWindow attaches a windowed histogram observing every ended
// span's duration in milliseconds. Attach before the tracer is shared
// across goroutines.
func (t *Tracer) SetSpanWindow(h *WindowedHistogram) {
	if t == nil {
		return
	}
	t.spanWin = h
}

// Err returns the first event-write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one timed operation. The zero value of the *pointer* — nil —
// is valid and inert: every method no-ops, so instrumented code never
// checks whether tracing is on.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

type spanCtxKey struct{}

// Start opens a span under the context's tracer, nested below the
// context's current span. It returns the child context carrying the new
// span and the span itself; both are inert (ctx unchanged, span nil)
// when the context has no tracer, so the disabled path costs one
// context lookup and nothing else.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	var parent int64
	if ps, ok := ctx.Value(spanCtxKey{}).(*Span); ok && ps != nil {
		parent = ps.id
	}
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: time.Now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SetAttr annotates the span; a later value for the same key wins in
// the event encoding (attrs marshal as a JSON object).
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// spanEvent is the NDJSON wire form of one finished span.
type spanEvent struct {
	Name    string                 `json:"name"`
	ID      int64                  `json:"id"`
	Parent  int64                  `json:"parent,omitempty"`
	StartNS int64                  `json:"start_ns"`
	DurNS   int64                  `json:"dur_ns"`
	Attrs   map[string]interface{} `json:"attrs,omitempty"`
}

// End closes the span: the event is emitted and the span joins the
// summary tree. End is idempotent; a nil span no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	dur := time.Since(s.start)
	at := s.attrs
	var attrs map[string]interface{}
	if len(s.attrs) > 0 {
		attrs = make(map[string]interface{}, len(s.attrs))
		for _, a := range s.attrs {
			attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()

	t := s.t
	t.flight.RecordSpan(s.name, s.id, s.parent, s.start, dur, at)
	t.spanWin.Observe(float64(dur.Nanoseconds()) / 1e6)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w != nil {
		ev := spanEvent{
			Name:    s.name,
			ID:      s.id,
			Parent:  s.parent,
			StartNS: s.start.UnixNano(),
			DurNS:   dur.Nanoseconds(),
			Attrs:   attrs,
		}
		line, err := json.Marshal(ev)
		if err == nil {
			_, err = fmt.Fprintf(t.w, "%s\n", line)
		}
		if err != nil && t.err == nil {
			t.err = err
		}
	}
	if len(t.records) < maxSpanRecords {
		t.records = append(t.records, spanRecord{id: s.id, parent: s.parent, name: s.name, dur: dur})
	} else {
		t.dropped++
	}
}

// Summary is the aggregated span tree of a run: sibling spans with the
// same name fold into one node (Count, summed Total), recursively.
type Summary struct {
	Name     string
	Count    int
	Total    time.Duration
	Children []*Summary
}

// Find returns the first child (depth-first) with the given name, or
// nil. The root itself is considered.
func (n *Summary) Find(name string) *Summary {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Summary builds the aggregate tree over the spans ended so far. The
// returned root is a synthetic "run" node whose children are the
// top-level spans grouped by name; sums of concurrent children may
// exceed their parent's wall-clock — that is the point, the tree shows
// where the work went, not where the clock went.
func (t *Tracer) Summary() *Summary {
	t.mu.Lock()
	recs := append([]spanRecord(nil), t.records...)
	t.mu.Unlock()

	kids := make(map[int64][]spanRecord)
	for _, r := range recs {
		kids[r.parent] = append(kids[r.parent], r)
	}
	var build func(name string, group []spanRecord) *Summary
	build = func(name string, group []spanRecord) *Summary {
		n := &Summary{Name: name, Count: len(group)}
		var sub []spanRecord
		for _, r := range group {
			n.Total += r.dur
			sub = append(sub, kids[r.id]...)
		}
		n.Children = groupByName(sub, build)
		return n
	}
	root := &Summary{Name: "run"}
	root.Children = groupByName(kids[0], build)
	for _, c := range root.Children {
		root.Count += c.Count
		root.Total += c.Total
	}
	return root
}

// groupByName folds sibling spans with equal names, first-seen order.
func groupByName(recs []spanRecord, build func(string, []spanRecord) *Summary) []*Summary {
	groups := make(map[string][]spanRecord)
	var order []string
	for _, r := range recs {
		if _, ok := groups[r.name]; !ok {
			order = append(order, r.name)
		}
		groups[r.name] = append(groups[r.name], r)
	}
	var out []*Summary
	for _, name := range order {
		out = append(out, build(name, groups[name]))
	}
	return out
}

// WriteSummary renders the summary tree with durations, the share of
// the run total, and span counts.
func (t *Tracer) WriteSummary(w io.Writer) error {
	root := t.Summary()
	total := root.Total
	if _, err := fmt.Fprintf(w, "span summary (total %v)\n", total.Round(time.Microsecond)); err != nil {
		return err
	}
	var walk func(n *Summary, depth int) error
	walk = func(n *Summary, depth int) error {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n.Total) / float64(total)
		}
		if _, err := fmt.Fprintf(w, "  %s%-*s %12v %6.1f%%  x%d\n",
			strings.Repeat("  ", depth), 24-2*depth, n.Name,
			n.Total.Round(time.Microsecond), pct, n.Count); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range root.Children {
		if err := walk(c, 0); err != nil {
			return err
		}
	}
	t.mu.Lock()
	dropped := t.dropped
	t.mu.Unlock()
	if dropped > 0 {
		if _, err := fmt.Fprintf(w, "  (%d spans beyond the %d-record summary bound)\n", dropped, maxSpanRecords); err != nil {
			return err
		}
	}
	return nil
}
