package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// MomentsRecord is one state's power-attribute summary at decision
// time. N/Sum/SumSq are the exact accumulator (enough to replay the
// decision bit for bit); Mean/Std are the derived ⟨μ, σ⟩ a reader
// wants to see.
type MomentsRecord struct {
	State int     `json:"state"`
	N     int     `json:"n"`
	Sum   float64 `json:"sum"`
	SumSq float64 `json:"sumsq"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
}

// MergeDecision is one mergeability verdict of Section IV-A: which
// state pair was compared, which statistical path decided (the Case and
// the named test), the computed statistic against its threshold, and
// the outcome. Phase tells where the comparison ran: "simplify"
// (adjacent states of chain Trace) or "join" (the pooled model's
// cross-chain collapse, Trace = -1).
type MergeDecision struct {
	Seq       int           `json:"seq"`
	Phase     string        `json:"phase"`
	Trace     int           `json:"trace"`
	A         MomentsRecord `json:"a"`
	B         MomentsRecord `json:"b"`
	Case      int           `json:"case"`
	Test      string        `json:"test"`
	Stat      float64       `json:"stat"`
	Threshold float64       `json:"threshold"`
	T         float64       `json:"t,omitempty"`
	Accept    bool          `json:"accept"`
}

// ProvenanceLog accumulates merge decisions. Recording is goroutine-
// safe; Decisions returns them in a canonical order independent of the
// recording interleaving, so a parallel batch run, a sequential run and
// the streaming engine produce identical logs over the same traces.
// The join engine honors the same contract from the other side: when a
// log is attached, the collapse runs its reference restart scan so join
// decisions land in the canonical scan order (memoized verdicts still
// record — a memo hit replays the cached outcome into the log), and the
// worklist fast path is reserved for un-logged runs, which produce the
// identical model.
type ProvenanceLog struct {
	mu sync.Mutex
	ds []MergeDecision
}

// NewProvenanceLog returns an empty log.
func NewProvenanceLog() *ProvenanceLog { return &ProvenanceLog{} }

// Record appends one decision. Nil-safe; Seq is assigned on append (in
// arrival order — Decisions re-numbers canonically).
func (l *ProvenanceLog) Record(d MergeDecision) {
	if l == nil {
		return
	}
	l.mu.Lock()
	d.Seq = len(l.ds)
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

// Len returns the number of decisions recorded (0 on nil).
func (l *ProvenanceLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

// Decisions returns a canonically ordered copy: simplify decisions
// first, grouped by trace and kept in program order within each trace
// (each trace's simplify is sequential even when traces fan out), then
// the join decisions in program order (the collapse is sequential).
// Seq is re-numbered over the canonical order, so two runs over the
// same inputs return byte-identical logs regardless of worker count.
func (l *ProvenanceLog) Decisions() []MergeDecision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := append([]MergeDecision(nil), l.ds...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := phaseRank(out[i].Phase), phaseRank(out[j].Phase)
		if pi != pj {
			return pi < pj
		}
		if out[i].Trace != out[j].Trace {
			return out[i].Trace < out[j].Trace
		}
		return out[i].Seq < out[j].Seq
	})
	for i := range out {
		out[i].Seq = i
	}
	return out
}

func phaseRank(phase string) int {
	if phase == "simplify" {
		return 0
	}
	return 1
}

// WriteDecisions streams decisions as NDJSON, one decision per line —
// the wire format of both `psmreport provenance` and psmd's
// GET /v1/provenance.
func WriteDecisions(w io.Writer, ds []MergeDecision) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range ds {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDecisions parses an NDJSON decision stream.
func ReadDecisions(r io.Reader) ([]MergeDecision, error) {
	dec := json.NewDecoder(r)
	var out []MergeDecision
	for {
		var d MergeDecision
		err := dec.Decode(&d)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("obs: provenance line %d: %w", len(out)+1, err)
		}
		out = append(out, d)
	}
}
