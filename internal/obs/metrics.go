package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically-adjusted integer metric. A nil *Counter —
// what a nil Registry hands out — is inert.
type Counter struct{ v atomic.Int64 }

// Add adjusts the counter. Negative deltas are allowed: the engine's
// records-ingested counter rolls back when a session aborts.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float metric. A nil *Gauge is inert.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution. bounds are upper bounds,
// exclusive — counts[i] tallies observations v < bounds[i] that missed
// every earlier bucket; counts[len(bounds)] is the overflow. A nil
// *Histogram is inert.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64
	sum    float64
	n      int64
}

// Observe tallies one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	slot := len(h.bounds)
	for i, ub := range h.bounds {
		if v < ub {
			slot = i
			break
		}
	}
	h.counts[slot]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// HistogramSnapshot is a histogram's point-in-time state.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// Quantile estimates the q-quantile (q in [0,1], clamped) of the
// snapshotted distribution by linear interpolation within bucket
// bounds: the first bucket spans [0, Bounds[0]), bucket i spans
// [Bounds[i-1], Bounds[i]), and the overflow bucket is pinned to the
// last bound — an estimator can only interpolate inside known bounds,
// so overflow mass reports the highest finite bound rather than
// inventing an upper limit. Returns 0 on an empty snapshot; never NaN
// or Inf, so the result is always JSON-encodable.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 || len(s.Counts) != len(s.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next && i < len(s.Counts)-1 {
			cum = next
			continue
		}
		if i == len(s.Counts)-1 {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (rank - cum) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot returns the histogram's point-in-time state (zero on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Sum:    h.sum,
		Count:  h.n,
	}
}

// ExponentialBuckets returns count upper bounds start, start·factor,
// start·factor², … — the geometry that keeps sub-millisecond and
// multi-second observations apart in the same histogram.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry names and owns the process's instruments. Get-or-create
// accessors make call sites declarative; a nil *Registry hands out nil
// instruments so instrumented code pays one nil check when metrics are
// off.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	windows   map[string]*WindowedHistogram
	wcounters map[string]*WindowedCounter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		windows:   map[string]*WindowedHistogram{},
		wcounters: map[string]*WindowedCounter{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (an existing histogram keeps its bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Window returns the named windowed histogram, creating it with the
// given bucket bounds and window geometry on first use (an existing
// window keeps its configuration).
func (r *Registry) Window(name string, bounds []float64, interval time.Duration, windows int) *WindowedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.windows[name]
	if !ok {
		h = NewWindowedHistogram(bounds, interval, windows)
		r.windows[name] = h
	}
	return h
}

// WindowCounter returns the named windowed counter, creating it with
// the given window geometry on first use.
func (r *Registry) WindowCounter(name string, interval time.Duration, windows int) *WindowedCounter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.wcounters[name]
	if !ok {
		c = NewWindowedCounter(interval, windows)
		r.wcounters[name] = c
	}
	return c
}

// Snapshot captures every instrument's current value.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Windows holds the merged state of every windowed histogram — the
	// distribution over the most recent window, not since boot.
	Windows map[string]HistogramSnapshot `json:"windows,omitempty"`
}

// Snapshot returns a point-in-time copy of the registry (empty on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.windows) > 0 {
		s.Windows = make(map[string]HistogramSnapshot, len(r.windows))
		for name, wh := range r.windows {
			s.Windows[name] = wh.Snapshot()
		}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format, names sorted for a stable scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, s.Gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, ub := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			name, h.Count, name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	// Windowed histograms export as Prometheus summaries: their state is
	// already a sliding window, which is what a summary's quantiles mean.
	for _, name := range sortedKeys(s.Windows) {
		h := s.Windows[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", name); err != nil {
			return err
		}
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q, h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteExpvarJSON renders the expvar-style JSON document: the caller's
// own sections (sorted by name) followed by every process-global expvar
// — cmdline, memstats, whatever else is registered. This is the
// module's single expvar access point: servers inject their per-engine
// sections here instead of contending over the global expvar namespace
// (the psmlint obs-metrics rule keeps it that way).
func WriteExpvarJSON(w io.Writer, extra map[string]interface{}) error {
	if _, err := fmt.Fprintf(w, "{\n"); err != nil {
		return err
	}
	first := true
	for _, name := range sortedKeys(extra) {
		val, err := json.Marshal(extra[name])
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, name, val); err != nil {
			return err
		}
	}
	var werr error
	expvar.Do(func(kv expvar.KeyValue) {
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		if _, err := fmt.Fprintf(w, "%s%q: %s", sep, kv.Key, kv.Value); err != nil && werr == nil {
			werr = err
		}
	})
	if werr != nil {
		return werr
	}
	_, err := fmt.Fprintf(w, "\n}\n")
	return err
}
