package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the wire name of the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// ParseLevel resolves a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// logEvent is the NDJSON wire form of one log event.
type logEvent struct {
	TimeNS int64                  `json:"ts_ns"`
	Level  string                 `json:"level"`
	Msg    string                 `json:"msg"`
	Attrs  map[string]interface{} `json:"attrs,omitempty"`
}

// Logger is the structured, leveled NDJSON event logger the serving
// path uses instead of ad-hoc stderr writes (the psmlint obs-logging
// rule enforces the substitution in cmd/psmd, internal/serve and
// internal/stream). One event is one JSON object on one line:
//
//	{"ts_ns":1700000000000,"level":"info","msg":"serving","attrs":{"addr":"127.0.0.1:8080"}}
//
// Events below the minimum level are dropped before any allocation.
// When a Flight recorder is attached, every emitted event is also
// captured in the ring, so a flight dump interleaves the daemon's log
// history with its span history. A nil *Logger is fully inert.
type Logger struct {
	min    Level
	flight *Flight

	mu  sync.Mutex
	w   io.Writer
	err error // first write error
}

// NewLogger returns a logger emitting NDJSON events at or above min
// to w. A nil w drops events (flight capture, when attached, still
// records them).
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min}
}

// SetFlight attaches the flight recorder every emitted event is also
// captured into. Attach before the logger is shared across goroutines.
func (l *Logger) SetFlight(f *Flight) {
	if l == nil {
		return
	}
	l.flight = f
}

// Enabled reports whether events at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Err returns the first event-write error, if any.
func (l *Logger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

func (l *Logger) log(lv Level, msg string, attrs []Attr) {
	if l == nil || lv < l.min {
		return
	}
	now := time.Now()
	l.flight.RecordLog(now, lv.String(), msg, attrs)
	if l.w == nil {
		return
	}
	ev := logEvent{TimeNS: now.UnixNano(), Level: lv.String(), Msg: msg}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]interface{}, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	line, err := json.Marshal(ev)
	l.mu.Lock()
	defer l.mu.Unlock()
	if err == nil {
		_, err = fmt.Fprintf(l.w, "%s\n", line)
	}
	if err != nil && l.err == nil {
		l.err = err
	}
}

// Debug emits a debug-level event.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info emits an info-level event.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn emits a warn-level event.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error emits an error-level event.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }
