package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLoggerLevelsAndShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("dropped")
	l.Info("serving", KV("addr", "127.0.0.1:0"))
	l.Warn("slow", KV("ms", 12.5))
	l.Error("boom")
	if l.Err() != nil {
		t.Fatalf("Err = %v", l.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("emitted %d lines, want 3 (debug filtered):\n%s", len(lines), buf.String())
	}
	var ev struct {
		TimeNS int64                  `json:"ts_ns"`
		Level  string                 `json:"level"`
		Msg    string                 `json:"msg"`
		Attrs  map[string]interface{} `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if ev.Level != "info" || ev.Msg != "serving" || ev.TimeNS == 0 || ev.Attrs["addr"] != "127.0.0.1:0" {
		t.Fatalf("unexpected event: %+v", ev)
	}
	for i, want := range []string{`"level":"info"`, `"level":"warn"`, `"level":"error"`} {
		if !strings.Contains(lines[i], want) {
			t.Fatalf("line %d missing %s: %s", i, want, lines[i])
		}
	}
}

func TestLoggerFlightCapture(t *testing.T) {
	f := NewFlight(8)
	l := NewLogger(nil, LevelDebug) // no writer: flight capture only
	l.SetFlight(f)
	l.Info("captured", KV("k", "v"))
	snap := f.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("flight holds %d entries, want 1", len(snap))
	}
	e := snap[0]
	if e.Kind != "log" || e.Level != "info" || e.Name != "captured" || len(e.Attrs) != 1 {
		t.Fatalf("unexpected flight entry: %+v", e)
	}
}

func TestLoggerNilInert(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	l.SetFlight(NewFlight(1))
	if l.Enabled(LevelError) || l.Err() != nil {
		t.Fatal("nil Logger is not inert")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, " error ": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
}
