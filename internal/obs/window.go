package obs

import (
	"sync"
	"time"
)

// windowSlot is one interval of a sliding-window instrument. epoch is
// the absolute interval index (UnixNano / interval) the slot currently
// tallies; a slot whose epoch is stale is reset before reuse, so slots
// age out without a background ticker.
type windowSlot struct {
	epoch  int64
	counts []int64
	sum    float64
	n      int64
}

// WindowedHistogram is a sliding-window distribution: a ring of
// per-interval fixed-bucket histograms whose merge covers the most
// recent `windows` intervals (the current, partially-filled interval
// included). Observations land in the interval the wall clock maps to;
// no goroutine runs in the background — rotation happens lazily on
// Observe/Snapshot, and slots older than the window are simply never
// merged. A nil *WindowedHistogram is inert.
//
// This is the instrument behind the daemon's live SLO surface: where
// the cumulative Histogram answers "what has the process seen since
// boot", the windowed variant answers "what are ingest and join latency
// doing *right now*" — the p50/p95/p99 that GET /v1/status reports.
type WindowedHistogram struct {
	mu       sync.Mutex
	bounds   []float64
	interval int64 // ns per slot
	windows  int   // slots merged into a snapshot
	slots    []windowSlot
	nowNS    func() int64 // injectable clock (tests)
}

// NewWindowedHistogram returns a windowed histogram with the given
// bucket bounds covering `windows` intervals of the given length
// (non-positive arguments select DefaultWindowInterval/Slots). The ring
// keeps windows+1 slots so the slot being recycled for a new interval
// is never one a concurrent snapshot still merges.
func NewWindowedHistogram(bounds []float64, interval time.Duration, windows int) *WindowedHistogram {
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	if windows <= 0 {
		windows = DefaultWindowSlots
	}
	h := &WindowedHistogram{
		bounds:   append([]float64(nil), bounds...),
		interval: int64(interval),
		windows:  windows,
		slots:    make([]windowSlot, windows+1),
		nowNS:    func() int64 { return time.Now().UnixNano() },
	}
	for i := range h.slots {
		h.slots[i].epoch = -1
		h.slots[i].counts = make([]int64, len(bounds)+1)
	}
	return h
}

// WindowDuration returns the total span a snapshot covers.
func (h *WindowedHistogram) WindowDuration() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.interval * int64(h.windows))
}

// slotFor rotates the ring to the current interval and returns its
// slot. Caller holds h.mu.
func (h *WindowedHistogram) slotFor(epoch int64) *windowSlot {
	s := &h.slots[int(epoch%int64(len(h.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		for i := range s.counts {
			s.counts[i] = 0
		}
		s.sum, s.n = 0, 0
	}
	return s
}

// Observe tallies one value into the current interval.
func (h *WindowedHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	epoch := h.nowNS() / h.interval
	h.mu.Lock()
	s := h.slotFor(epoch)
	slot := len(h.bounds)
	for i, ub := range h.bounds {
		if v < ub {
			slot = i
			break
		}
	}
	s.counts[slot]++
	s.sum += v
	s.n++
	h.mu.Unlock()
}

// Snapshot merges the most recent `windows` intervals (the current one
// included) into one point-in-time histogram state (zero on nil).
func (h *WindowedHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	epoch := h.nowNS() / h.interval
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.slots {
		s := &h.slots[i]
		if s.epoch < 0 || s.epoch <= epoch-int64(h.windows) || s.epoch > epoch {
			continue
		}
		for j, c := range s.counts {
			out.Counts[j] += c
		}
		out.Sum += s.sum
		out.Count += s.n
	}
	return out
}

// WindowedCounter is the counting sibling of WindowedHistogram: a ring
// of per-interval counts whose Sum covers the most recent `windows`
// intervals. It backs windowed rates — requests and errors over the
// last minute — for the error-rate burn GET /v1/status reports. A nil
// *WindowedCounter is inert.
type WindowedCounter struct {
	mu       sync.Mutex
	interval int64
	windows  int
	epochs   []int64
	counts   []int64
	nowNS    func() int64
}

// NewWindowedCounter returns a windowed counter covering `windows`
// intervals of the given length (non-positive arguments select
// DefaultWindowInterval/Slots).
func NewWindowedCounter(interval time.Duration, windows int) *WindowedCounter {
	if interval <= 0 {
		interval = DefaultWindowInterval
	}
	if windows <= 0 {
		windows = DefaultWindowSlots
	}
	c := &WindowedCounter{
		interval: int64(interval),
		windows:  windows,
		epochs:   make([]int64, windows+1),
		counts:   make([]int64, windows+1),
		nowNS:    func() int64 { return time.Now().UnixNano() },
	}
	for i := range c.epochs {
		c.epochs[i] = -1
	}
	return c
}

// WindowDuration returns the total span a Sum covers.
func (c *WindowedCounter) WindowDuration() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.interval * int64(c.windows))
}

// Add adjusts the current interval's count.
func (c *WindowedCounter) Add(d int64) {
	if c == nil {
		return
	}
	epoch := c.nowNS() / c.interval
	c.mu.Lock()
	i := int(epoch % int64(len(c.epochs)))
	if c.epochs[i] != epoch {
		c.epochs[i] = epoch
		c.counts[i] = 0
	}
	c.counts[i] += d
	c.mu.Unlock()
}

// Sum returns the total over the most recent `windows` intervals, the
// current one included (0 on nil).
func (c *WindowedCounter) Sum() int64 {
	if c == nil {
		return 0
	}
	epoch := c.nowNS() / c.interval
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for i, ep := range c.epochs {
		if ep < 0 || ep <= epoch-int64(c.windows) || ep > epoch {
			continue
		}
		total += c.counts[i]
	}
	return total
}
