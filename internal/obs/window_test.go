package obs

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestQuantileUniformBuckets(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{10, 20, 30},
		Counts: []int64{10, 10, 10, 0},
		Count:  30,
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 7.5}, {0.5, 15}, {0.75, 22.5}, {1, 30},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileSkewedDistribution(t *testing.T) {
	// 90% of mass in the first bucket, a long tail behind it — the shape
	// of a healthy latency distribution.
	s := HistogramSnapshot{
		Bounds: []float64{10, 20, 30},
		Counts: []int64{90, 9, 1, 0},
		Count:  100,
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 10 * 50.0 / 90.0},
		{0.95, 10 + 10*5.0/9.0},
		{0.99, 20},
	} {
		if got := s.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestQuantileOverflowClampsToLastBound(t *testing.T) {
	s := HistogramSnapshot{
		Bounds: []float64{1, 2, 4},
		Counts: []int64{0, 0, 0, 5},
		Count:  5,
	}
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got := s.Quantile(q); got != 4 {
			t.Fatalf("Quantile(%g) = %g, want 4 (last bound)", q, got)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty snapshot Quantile = %g, want 0", got)
	}
	s := HistogramSnapshot{Bounds: []float64{10}, Counts: []int64{4, 0}, Count: 4}
	if got := s.Quantile(-1); got != 0 {
		t.Fatalf("Quantile(-1) = %g, want 0 (clamped)", got)
	}
	if got := s.Quantile(2); got != 10 {
		t.Fatalf("Quantile(2) = %g, want 10 (clamped)", got)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); math.IsNaN(got) || math.IsInf(got, 0) {
			t.Fatalf("Quantile(%g) = %g, not JSON-safe", q, got)
		}
	}
}

func TestWindowedHistogramRotation(t *testing.T) {
	var now int64
	h := NewWindowedHistogram([]float64{10, 100}, time.Second, 3)
	h.nowNS = func() int64 { return now }

	now = 0 // epoch 0
	h.Observe(5)
	h.Observe(50)
	now = int64(2 * time.Second) // epoch 2, still inside (cur-3, cur]
	h.Observe(5)
	s := h.Snapshot()
	if s.Count != 3 || s.Counts[0] != 2 || s.Counts[1] != 1 {
		t.Fatalf("windowed snapshot = %+v, want 3 observations (2 small, 1 mid)", s)
	}

	now = int64(4 * time.Second) // epoch 4: epoch 0 aged out, epoch 2 remains
	s = h.Snapshot()
	if s.Count != 1 || s.Counts[0] != 1 {
		t.Fatalf("after aging: %+v, want only the epoch-2 observation", s)
	}

	now = int64(10 * time.Second) // everything aged out
	if s = h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("after full aging: %+v, want empty", s)
	}

	// A slot recycled for a new epoch must shed its old tallies.
	now = int64(12 * time.Second) // epoch 12 lands on slot 12%4 = 0, reused
	h.Observe(7)
	if s = h.Snapshot(); s.Count != 1 {
		t.Fatalf("recycled slot kept stale tallies: %+v", s)
	}
}

func TestWindowedHistogramDefaultsAndNil(t *testing.T) {
	h := NewWindowedHistogram([]float64{1}, 0, 0)
	if got := h.WindowDuration(); got != DefaultWindowInterval*time.Duration(DefaultWindowSlots) {
		t.Fatalf("default WindowDuration = %v", got)
	}
	var nh *WindowedHistogram
	nh.Observe(1)
	if s := nh.Snapshot(); s.Count != 0 || nh.WindowDuration() != 0 {
		t.Fatal("nil WindowedHistogram is not inert")
	}
}

func TestWindowedCounterRotation(t *testing.T) {
	var now int64
	c := NewWindowedCounter(time.Second, 3)
	c.nowNS = func() int64 { return now }

	now = 0
	c.Add(2)
	now = int64(2 * time.Second)
	c.Add(3)
	if got := c.Sum(); got != 5 {
		t.Fatalf("Sum = %d, want 5", got)
	}
	now = int64(4 * time.Second) // first Add aged out
	if got := c.Sum(); got != 3 {
		t.Fatalf("Sum after aging = %d, want 3", got)
	}
	now = int64(60 * time.Second)
	if got := c.Sum(); got != 0 {
		t.Fatalf("Sum after full aging = %d, want 0", got)
	}
	var nc *WindowedCounter
	nc.Add(1)
	if nc.Sum() != 0 || nc.WindowDuration() != 0 {
		t.Fatal("nil WindowedCounter is not inert")
	}
}

func TestRegistryWindowAccessors(t *testing.T) {
	r := NewRegistry()
	w1 := r.Window("lat", []float64{1, 2}, time.Second, 2)
	w2 := r.Window("lat", []float64{9}, time.Minute, 9) // existing keeps config
	if w1 != w2 {
		t.Fatal("Window did not return the existing instrument")
	}
	w1.Observe(1.5)
	snap := r.Snapshot()
	ws, ok := snap.Windows["lat"]
	if !ok || ws.Count != 1 {
		t.Fatalf("Snapshot.Windows = %+v, want lat with 1 observation", snap.Windows)
	}
	c1 := r.WindowCounter("reqs", time.Second, 2)
	if c2 := r.WindowCounter("reqs", time.Minute, 9); c1 != c2 {
		t.Fatal("WindowCounter did not return the existing instrument")
	}
	var nr *Registry
	if nr.Window("x", nil, 0, 0) != nil || nr.WindowCounter("x", 0, 0) != nil {
		t.Fatal("nil Registry handed out non-nil windowed instruments")
	}
}

func TestTracerFlightAndSpanWindow(t *testing.T) {
	f := NewFlight(8)
	wh := NewWindowedHistogram([]float64{1e6}, time.Minute, 1)
	tr := NewTracer(nil)
	tr.SetFlight(f)
	tr.SetSpanWindow(wh)
	ctx := WithTracer(context.Background(), tr)
	_, sp := Start(ctx, "work", KV("k", "v"))
	sp.End()
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].Kind != "span" || snap[0].Name != "work" {
		t.Fatalf("flight did not capture the span: %+v", snap)
	}
	if got := wh.Snapshot(); got.Count != 1 {
		t.Fatalf("span window Count = %d, want 1", got.Count)
	}
}
