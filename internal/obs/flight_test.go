package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightWraparound(t *testing.T) {
	f := NewFlight(8)
	base := time.Unix(0, 1_700_000_000_000_000_000)
	for i := 0; i < 20; i++ {
		f.RecordLog(base.Add(time.Duration(i)*time.Millisecond), "info", "ev", nil)
	}
	if got := f.Recorded(); got != 20 {
		t.Fatalf("Recorded = %d, want 20", got)
	}
	if got := f.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot holds %d entries, want 8", len(snap))
	}
	for i, e := range snap {
		want := uint64(13 + i) // entries 13..20 survive
		if e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestFlightSpanAndLogRoundTrip(t *testing.T) {
	f := NewFlight(16)
	start := time.Unix(0, 1_700_000_000_000_000_000)
	f.RecordSpan("ingest", 7, 3, start, 42*time.Millisecond, []Attr{KV("records", 10), KV("session", "s1")})
	f.RecordLog(start.Add(time.Second), "warn", "slow session", []Attr{KV("ms", 99.5)})

	var buf bytes.Buffer
	if err := f.WriteNDJSON(&buf); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("dump has %d lines, want 2:\n%s", n, buf.String())
	}
	got, err := ReadFlight(&buf)
	if err != nil {
		t.Fatalf("ReadFlight: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d entries, want 2", len(got))
	}
	sp := got[0]
	if sp.Kind != "span" || sp.Name != "ingest" || sp.ID != 7 || sp.Parent != 3 ||
		sp.DurNS != (42*time.Millisecond).Nanoseconds() || sp.TimeNS != start.UnixNano() {
		t.Fatalf("span round-trip mismatch: %+v", sp)
	}
	if len(sp.Attrs) != 2 || sp.Attrs[0].Key != "records" || sp.Attrs[1].Key != "session" {
		t.Fatalf("span attrs not sorted by key: %+v", sp.Attrs)
	}
	lg := got[1]
	if lg.Kind != "log" || lg.Name != "slow session" || lg.Level != "warn" || lg.ID != 0 || lg.DurNS != 0 {
		t.Fatalf("log round-trip mismatch: %+v", lg)
	}
}

func TestFlightQuiescedDumpByteStable(t *testing.T) {
	f := NewFlight(4)
	base := time.Unix(0, 1_700_000_000_000_000_000)
	for i := 0; i < 9; i++ { // wraps more than twice
		f.RecordLog(base.Add(time.Duration(i)*time.Second), "info", "tick", []Attr{KV("i", i), KV("host", "a")})
	}
	var a, b bytes.Buffer
	if err := f.WriteNDJSON(&a); err != nil {
		t.Fatalf("dump 1: %v", err)
	}
	if err := f.WriteNDJSON(&b); err != nil {
		t.Fatalf("dump 2: %v", err)
	}
	if a.Len() == 0 || !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("quiesced dumps differ:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

func TestFlightConcurrentRecordAndSnapshot(t *testing.T) {
	f := NewFlight(32)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader while the ring wraps
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range f.Snapshot() {
				if e.Kind != "log" || e.Name != "hammer" {
					t.Errorf("torn entry: %+v", e)
					return
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			at := time.Unix(0, 1)
			for i := 0; i < perWriter; i++ {
				f.RecordLog(at, "info", "hammer", nil)
			}
		}()
	}
	for f.Recorded() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if got := f.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
	snap := f.Snapshot()
	if len(snap) != 32 {
		t.Fatalf("snapshot holds %d entries, want 32", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not strictly Seq-ordered at %d: %d then %d", i, snap[i-1].Seq, snap[i].Seq)
		}
	}
}

func TestFlightNilInert(t *testing.T) {
	var f *Flight
	f.RecordSpan("x", 1, 0, time.Now(), time.Second, nil)
	f.RecordLog(time.Now(), "info", "x", nil)
	if f.Snapshot() != nil || f.Capacity() != 0 || f.Recorded() != 0 || f.Dropped() != 0 {
		t.Fatal("nil Flight is not inert")
	}
}

func TestReadFlightRejectsBadKind(t *testing.T) {
	_, err := ReadFlight(strings.NewReader(`{"seq":1,"ts_ns":1,"kind":"bogus","name":"x"}` + "\n"))
	if err == nil {
		t.Fatal("ReadFlight accepted an unknown kind")
	}
}
