package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestStartWithoutTracerIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, span := Start(ctx, "noop", KV("k", 1))
	if span != nil {
		t.Fatal("want nil span without a tracer")
	}
	if ctx2 != ctx {
		t.Fatal("want the context unchanged without a tracer")
	}
	// Every nil-receiver method must no-op.
	span.SetAttr("k", 2)
	span.End()
	span.End()
}

func TestTracerEmitsNestedNDJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "root", KV("traces", 3))
	_, child := Start(ctx, "child")
	child.SetAttr("states", 7)
	child.End()
	child.End() // idempotent
	root.End()

	var events []spanEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev spanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("want 2 events (End is idempotent), got %d", len(events))
	}
	// Ends stream in end order: child first.
	if events[0].Name != "child" || events[1].Name != "root" {
		t.Fatalf("want [child root], got [%s %s]", events[0].Name, events[1].Name)
	}
	if events[0].Parent != events[1].ID {
		t.Fatalf("child.parent = %d, want root id %d", events[0].Parent, events[1].ID)
	}
	if events[1].Parent != 0 {
		t.Fatalf("root.parent = %d, want 0", events[1].Parent)
	}
	if events[0].Attrs["states"] != float64(7) {
		t.Fatalf("child attrs = %v, want states=7", events[0].Attrs)
	}
	if events[1].Attrs["traces"] != float64(3) {
		t.Fatalf("root attrs = %v, want traces=3", events[1].Attrs)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

func TestSummaryFoldsSiblingsByName(t *testing.T) {
	tr := NewTracer(nil) // summary only, no writer
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "build")
	for i := 0; i < 3; i++ {
		_, s := Start(ctx, "simplify")
		s.End()
	}
	_, j := Start(ctx, "join")
	j.End()
	root.End()

	sum := tr.Summary()
	if sum.Name != "run" {
		t.Fatalf("root name = %q", sum.Name)
	}
	b := sum.Find("build")
	if b == nil || b.Count != 1 {
		t.Fatalf("build node missing or miscounted: %+v", b)
	}
	simp := sum.Find("simplify")
	if simp == nil || simp.Count != 3 {
		t.Fatalf("want simplify folded x3, got %+v", simp)
	}
	if sum.Find("join") == nil {
		t.Fatal("join node missing")
	}
	if sum.Find("nonexistent") != nil {
		t.Fatal("Find invented a node")
	}

	var out bytes.Buffer
	if err := tr.WriteSummary(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"span summary", "build", "simplify", "x3"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("summary output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(nil)
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_, s := Start(ctx, "work")
				s.SetAttr("j", j)
				s.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.Summary().Find("work").Count; n != 800 {
		t.Fatalf("want 800 folded spans, got %d", n)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []int64{2, 1, 1, 1}; len(s.Counts) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(s.Counts), len(want))
	} else {
		for i, w := range want {
			if s.Counts[i] != w {
				t.Fatalf("bucket[%d] = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
			}
		}
	}
	if s.Count != 5 {
		t.Fatalf("histogram count = %d, want 5", s.Count)
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	g := r.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	h := r.Histogram("z", []float64{1})
	h.Observe(1)
	if h.Snapshot().Count != 0 {
		t.Fatal("nil histogram must stay empty")
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(0.001, 4, 12)
	if len(b) != 12 {
		t.Fatalf("len = %d, want 12", len(b))
	}
	if math.Abs(b[0]-0.001) > 1e-12 {
		t.Fatalf("b[0] = %v, want 0.001", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-4) > 1e-9 {
			t.Fatalf("ratio b[%d]/b[%d] = %v, want 4", i, i-1, b[i]/b[i-1])
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("depth").Set(3)
	h := r.Histogram("lat_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Names render sorted within each kind.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	for _, want := range []string{
		"a_total 1",
		"depth 3",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="10"} 1`, // cumulative: 20 lands beyond 10
		`lat_ms_bucket{le="+Inf"} 2`,
		"lat_ms_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteExpvarJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteExpvarJSON(&buf, map[string]interface{}{"psmd": map[string]int{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not a JSON object: %v\n%s", err, buf.String())
	}
	if _, ok := doc["psmd"]; !ok {
		t.Fatal("extra section missing")
	}
	// The process-global expvar vars (memstats, cmdline) ride along.
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("expvar globals missing")
	}
}

func TestProvenanceCanonicalOrder(t *testing.T) {
	l := NewProvenanceLog()
	// Arrival order scrambles phases and traces, as parallel workers do.
	l.Record(MergeDecision{Phase: "join", Trace: -1, Test: "welch"})
	l.Record(MergeDecision{Phase: "simplify", Trace: 1, Test: "epsilon"})
	l.Record(MergeDecision{Phase: "simplify", Trace: 0, Test: "epsilon"})
	l.Record(MergeDecision{Phase: "simplify", Trace: 0, Test: "welch"})
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}

	ds := l.Decisions()
	wantPhases := []string{"simplify", "simplify", "simplify", "join"}
	wantTraces := []int{0, 0, 1, -1}
	wantTests := []string{"epsilon", "welch", "epsilon", "welch"}
	for i, d := range ds {
		if d.Seq != i {
			t.Fatalf("Seq[%d] = %d, want renumbered %d", i, d.Seq, i)
		}
		if d.Phase != wantPhases[i] || d.Trace != wantTraces[i] || d.Test != wantTests[i] {
			t.Fatalf("decision %d = %+v, want phase=%s trace=%d test=%s",
				i, d, wantPhases[i], wantTraces[i], wantTests[i])
		}
	}

	var nilLog *ProvenanceLog
	nilLog.Record(MergeDecision{})
	if nilLog.Len() != 0 || nilLog.Decisions() != nil {
		t.Fatal("nil log must be inert")
	}
}

func TestDecisionsRoundTrip(t *testing.T) {
	in := []MergeDecision{
		{Seq: 0, Phase: "simplify", Trace: 0,
			A:    MomentsRecord{State: 1, N: 5, Sum: 10, SumSq: 21, Mean: 2, Std: 0.5},
			B:    MomentsRecord{State: 2, N: 4, Sum: 8.4, SumSq: 18, Mean: 2.1, Std: 0.4},
			Case: 2, Test: "welch", Stat: 0.12, Threshold: 0.05, T: 1.3, Accept: false},
		{Seq: 1, Phase: "join", Trace: -1, Case: 1, Test: "epsilon",
			Stat: 0.01, Threshold: 0.05, Accept: true},
	}
	var buf bytes.Buffer
	if err := WriteDecisions(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost decisions: %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("decision %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := ReadDecisions(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil || RegistryFrom(ctx) != nil || ProvenanceFrom(ctx) != nil {
		t.Fatal("empty context must carry nothing")
	}
	tr, reg, log := NewTracer(nil), NewRegistry(), NewProvenanceLog()
	ctx = WithTracer(ctx, tr)
	ctx = WithRegistry(ctx, reg)
	ctx = WithProvenance(ctx, log)
	if TracerFrom(ctx) != tr || RegistryFrom(ctx) != reg || ProvenanceFrom(ctx) != log {
		t.Fatal("context round trip failed")
	}
}

func TestCLILifecycle(t *testing.T) {
	dir := t.TempDir()
	cli := &CLI{
		TracePath:      filepath.Join(dir, "spans.ndjson"),
		MetricsPath:    filepath.Join(dir, "metrics.prom"),
		ProvenancePath: filepath.Join(dir, "prov.ndjson"),
	}
	ctx, err := cli.Start(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, s := Start(ctx, "stage")
	s.End()
	RegistryFrom(ctx).Counter("n_total").Inc()
	ProvenanceFrom(ctx).Record(MergeDecision{Phase: "simplify", Test: "epsilon", Accept: true})
	if cli.Registry() == nil {
		t.Fatal("Registry() nil with -metrics on")
	}

	var summary bytes.Buffer
	if err := cli.Finish(&summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "stage") {
		t.Fatalf("summary missing the span:\n%s", summary.String())
	}
	for _, p := range []string{cli.TracePath, cli.MetricsPath, cli.ProvenancePath} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty (err=%v)", p, err)
		}
	}

	var nilCLI *CLI
	if _, err := nilCLI.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := nilCLI.Finish(nil); err != nil {
		t.Fatal(err)
	}
	if nilCLI.Registry() != nil {
		t.Fatal("nil CLI must expose no registry")
	}
}

func TestCLIBindFlags(t *testing.T) {
	var cli CLI
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	cli.BindFlags(fs, true)
	if err := fs.Parse([]string{"-trace", "t", "-metrics", "m", "-provenance", "p",
		"-cpuprofile", "c", "-memprofile", "h"}); err != nil {
		t.Fatal(err)
	}
	if cli.TracePath != "t" || cli.MetricsPath != "m" || cli.ProvenancePath != "p" ||
		cli.CPUProfilePath != "c" || cli.MemProfilePath != "h" {
		t.Fatalf("flags not bound: %+v", cli)
	}
	fs2 := flag.NewFlagSet("y", flag.ContinueOnError)
	fs2.SetOutput(new(bytes.Buffer))
	var cli2 CLI
	cli2.BindFlags(fs2, false)
	if err := fs2.Parse([]string{"-provenance", "p"}); err == nil {
		t.Fatal("-provenance must be absent when withProvenance=false")
	}
}
