package obs

import (
	"context"
	"flag"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// CLI wires the standard observability flags of the command-line tools
// — -trace, -metrics, -provenance, -cpuprofile, -memprofile — into one
// lifecycle: BindFlags registers the flags, Start opens the selected
// sinks and returns the instrumented context, Finish flushes them after
// the work (error path included, so an aborted run still leaves usable
// profiles). An empty path leaves its sink off: the context then
// carries nothing for it and the nil fast paths engage. A nil *CLI is
// fully inert — library callers of run() pass nil and pay nothing.
type CLI struct {
	TracePath      string
	MetricsPath    string
	ProvenancePath string
	CPUProfilePath string
	MemProfilePath string

	tracer    *Tracer
	reg       *Registry
	prov      *ProvenanceLog
	traceFile *os.File
	cpuFile   *os.File
}

// BindFlags registers the observability flags on fs. withProvenance
// includes -provenance (only meaningful for tools that run the merge
// phases).
func (c *CLI) BindFlags(fs *flag.FlagSet, withProvenance bool) {
	fs.StringVar(&c.TracePath, "trace", "", "write NDJSON span events to this file and print the stage summary to stderr")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write the run's metrics (Prometheus text) to this file")
	if withProvenance {
		fs.StringVar(&c.ProvenancePath, "provenance", "", "write the merge-provenance audit log (NDJSON) to this file")
	}
	fs.StringVar(&c.CPUProfilePath, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&c.MemProfilePath, "memprofile", "", "write a heap profile to this file")
}

// Start opens the configured sinks and returns ctx instrumented with
// them.
func (c *CLI) Start(ctx context.Context) (context.Context, error) {
	if c == nil {
		return ctx, nil
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, err
		}
		c.traceFile = f
		c.tracer = NewTracer(f)
		ctx = WithTracer(ctx, c.tracer)
	}
	if c.MetricsPath != "" {
		c.reg = NewRegistry()
		ctx = WithRegistry(ctx, c.reg)
	}
	if c.ProvenancePath != "" {
		c.prov = NewProvenanceLog()
		ctx = WithProvenance(ctx, c.prov)
	}
	if c.CPUProfilePath != "" {
		f, err := os.Create(c.CPUProfilePath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			//psmlint:ignore err-drop the profile failed to start; its close error is secondary
			f.Close()
			return nil, err
		}
		c.cpuFile = f
	}
	return ctx, nil
}

// Registry returns the active metrics registry (nil when -metrics is
// off) — for counters a tool maintains itself, outside the pipeline.
func (c *CLI) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Finish flushes every sink: stops the CPU profile, writes the heap
// profile, the metrics text, the provenance NDJSON, and — when tracing
// — the span summary tree to summary. It returns the first flush error.
func (c *CLI) Finish(summary io.Writer) error {
	if c == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if c.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(c.cpuFile.Close())
		c.cpuFile = nil
	}
	if c.MemProfilePath != "" {
		runtime.GC() // settle the live set the heap profile reports
		keep(writeFileWith(c.MemProfilePath, pprof.WriteHeapProfile))
	}
	if c.reg != nil {
		keep(writeFileWith(c.MetricsPath, c.reg.WritePrometheus))
	}
	if c.prov != nil {
		keep(writeFileWith(c.ProvenancePath, func(w io.Writer) error {
			return WriteDecisions(w, c.prov.Decisions())
		}))
	}
	if c.tracer != nil {
		if summary != nil {
			keep(c.tracer.WriteSummary(summary))
		}
		keep(c.tracer.Err())
	}
	if c.traceFile != nil {
		keep(c.traceFile.Close())
		c.traceFile = nil
	}
	return first
}

func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		//psmlint:ignore err-drop the write error is primary; close cannot improve on it
		f.Close()
		return err
	}
	return f.Close()
}
