// Package obs is the unified observability layer of the flow: spans,
// metrics and the merge-provenance audit log, plumbed through context so
// every stage of the pipeline — batch or streaming — reports into the
// same sinks without knowing who is listening.
//
// Three independent instruments share one design rule, the nil fast
// path: a context that carries no Tracer/Registry/ProvenanceLog yields
// nil handles, and every method on a nil handle is a no-op. Hot loops
// therefore instrument unconditionally and pay nothing when
// observability is off (make bench-obs pins the overhead), and the
// instrumented code never branches on "is obs enabled".
//
//   - Tracer (trace.go): nestable timed spans with key/value attrs,
//     exported as NDJSON events plus an aggregated per-run summary tree.
//   - Registry (metrics.go): named counters, gauges and histograms with
//     point-in-time snapshots, Prometheus text and expvar-style JSON
//     export. This package is the module's only expvar importer — the
//     psmlint obs-metrics rule enforces it.
//   - ProvenanceLog (provenance.go): one record per mergeability
//     decision (Section IV-A), canonically ordered so parallel and
//     sequential runs over the same traces produce identical logs.
package obs

import "context"

type tracerKey struct{}
type registryKey struct{}
type provenanceKey struct{}

// WithTracer returns a context whose spans report to t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil when tracing is off.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithRegistry returns a context whose metrics report to r.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom returns the context's metrics registry, or nil when
// metrics are off. A nil registry hands out nil instruments, whose
// methods no-op — callers never need to check.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// WithProvenance returns a context whose merge decisions are recorded
// into l.
func WithProvenance(ctx context.Context, l *ProvenanceLog) context.Context {
	return context.WithValue(ctx, provenanceKey{}, l)
}

// ProvenanceFrom returns the context's provenance log, or nil when the
// audit trail is off.
func ProvenanceFrom(ctx context.Context) *ProvenanceLog {
	l, _ := ctx.Value(provenanceKey{}).(*ProvenanceLog)
	return l
}
