package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults of the always-on diagnostics: the flight ring's capacity and
// the sliding-window geometry (6 slots of 10s — the last minute) shared
// by the daemon's windowed histograms and counters.
const (
	DefaultFlightEntries  = 4096
	DefaultWindowInterval = 10 * time.Second
	DefaultWindowSlots    = 6
)

// FlightEntry is one captured event of the flight recorder: a finished
// span or a structured log event. Seq is the entry's global sequence
// number, assigned at record time — sequence numbers are contiguous
// across the whole recording, so a dump whose lowest Seq is s has
// provably dropped s-1 older entries to wraparound, and sorting by Seq
// deterministically orders any dump.
type FlightEntry struct {
	Seq    uint64
	TimeNS int64  // event time (span start / log emit), UnixNano
	Kind   string // "span" or "log"
	Name   string // span name or log message
	Level  string // log level; "" for spans
	ID     int64  // span id; 0 for logs
	Parent int64  // parent span id; 0 for top-level spans and logs
	DurNS  int64  // span duration; 0 for logs
	Attrs  []Attr
}

// flightSlot is one ring cell. The per-slot mutex makes a concurrent
// dump see whole entries without serializing writers against each other
// (writers contend only when they land on the same cell).
type flightSlot struct {
	mu sync.Mutex
	e  FlightEntry
}

// Flight is the always-on flight recorder: a fixed-size ring buffer
// that continuously captures the most recent span and log events with
// bounded memory and near-zero overhead. Recording takes one atomic
// increment to claim a cell plus one uncontended per-cell mutex; no
// allocation and no encoding happen until a dump is requested. A nil
// *Flight is inert, like every other obs instrument.
//
// The recorder is the production answer to "the daemon misbehaved three
// hours in and -trace was not passed at boot": psmd keeps one attached
// to its tracer and logger at all times and dumps it on demand
// (GET /debug/flight), on SIGQUIT, and on crash paths.
type Flight struct {
	slots  []flightSlot
	cursor atomic.Uint64 // total entries ever recorded
}

// NewFlight returns a recorder holding the most recent n entries
// (n ≤ 0 selects DefaultFlightEntries).
func NewFlight(n int) *Flight {
	if n <= 0 {
		n = DefaultFlightEntries
	}
	return &Flight{slots: make([]flightSlot, n)}
}

// Capacity returns the ring size (0 on nil).
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Recorded returns the total number of entries ever recorded, including
// those overwritten by wraparound (0 on nil).
func (f *Flight) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// Dropped returns how many entries wraparound has overwritten (0 on nil).
func (f *Flight) Dropped() uint64 {
	if f == nil {
		return 0
	}
	if n := f.cursor.Load(); n > uint64(len(f.slots)) {
		return n - uint64(len(f.slots))
	}
	return 0
}

// record claims the next cell and stores e with its sequence number.
func (f *Flight) record(e FlightEntry) {
	seq := f.cursor.Add(1)
	s := &f.slots[(seq-1)%uint64(len(f.slots))]
	e.Seq = seq
	s.mu.Lock()
	s.e = e
	s.mu.Unlock()
}

// RecordSpan captures one finished span. attrs is retained as-is (not
// copied): callers pass ownership, which the tracer's span lifecycle
// guarantees — a span's attrs are never mutated after End.
func (f *Flight) RecordSpan(name string, id, parent int64, start time.Time, dur time.Duration, attrs []Attr) {
	if f == nil {
		return
	}
	f.record(FlightEntry{
		TimeNS: start.UnixNano(),
		Kind:   "span",
		Name:   name,
		ID:     id,
		Parent: parent,
		DurNS:  dur.Nanoseconds(),
		Attrs:  attrs,
	})
}

// RecordLog captures one structured log event.
func (f *Flight) RecordLog(at time.Time, level, msg string, attrs []Attr) {
	if f == nil {
		return
	}
	f.record(FlightEntry{
		TimeNS: at.UnixNano(),
		Kind:   "log",
		Name:   msg,
		Level:  level,
		Attrs:  attrs,
	})
}

// Snapshot returns the current ring contents ordered by sequence number
// (nil on a nil or empty recorder). Concurrent recording may land
// entries while the snapshot walks the ring — every returned entry is
// whole (the per-slot lock forbids torn reads), and the ordering is
// still strictly by Seq; a quiesced recorder snapshots identically
// every time.
func (f *Flight) Snapshot() []FlightEntry {
	if f == nil {
		return nil
	}
	out := make([]FlightEntry, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		e := s.e
		s.mu.Unlock()
		if e.Seq != 0 {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if len(out) == 0 {
		return nil
	}
	return out
}

// flightWire is the NDJSON form of one entry. Attrs marshal as a JSON
// object (encoding/json sorts the keys), so a quiesced dump is
// byte-stable.
type flightWire struct {
	Seq    uint64                 `json:"seq"`
	TimeNS int64                  `json:"ts_ns"`
	Kind   string                 `json:"kind"`
	Name   string                 `json:"name"`
	Level  string                 `json:"level,omitempty"`
	ID     int64                  `json:"id,omitempty"`
	Parent int64                  `json:"parent,omitempty"`
	DurNS  int64                  `json:"dur_ns,omitempty"`
	Attrs  map[string]interface{} `json:"attrs,omitempty"`
}

func wireOf(e FlightEntry) flightWire {
	w := flightWire{
		Seq:    e.Seq,
		TimeNS: e.TimeNS,
		Kind:   e.Kind,
		Name:   e.Name,
		Level:  e.Level,
		ID:     e.ID,
		Parent: e.Parent,
		DurNS:  e.DurNS,
	}
	if len(e.Attrs) > 0 {
		w.Attrs = make(map[string]interface{}, len(e.Attrs))
		for _, a := range e.Attrs {
			w.Attrs[a.Key] = a.Value
		}
	}
	return w
}

// WriteNDJSON dumps the current ring as NDJSON, one entry per line,
// ordered by sequence number. Dumping never blocks recording beyond the
// per-cell copy.
func (f *Flight) WriteNDJSON(w io.Writer) error {
	for _, e := range f.Snapshot() {
		line, err := json.Marshal(wireOf(e))
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", line); err != nil {
			return err
		}
	}
	return nil
}

// ReadFlight parses an NDJSON flight dump back into entries (the
// inverse of WriteNDJSON) — the input of `psmreport flight`. Attribute
// order inside an entry is not preserved (JSON objects are unordered);
// entry order follows the input.
func ReadFlight(r io.Reader) ([]FlightEntry, error) {
	var out []FlightEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var w flightWire
		if err := json.Unmarshal(text, &w); err != nil {
			return nil, fmt.Errorf("obs: flight dump line %d: %w", line, err)
		}
		if w.Kind != "span" && w.Kind != "log" {
			return nil, fmt.Errorf("obs: flight dump line %d: unknown kind %q", line, w.Kind)
		}
		e := FlightEntry{
			Seq:    w.Seq,
			TimeNS: w.TimeNS,
			Kind:   w.Kind,
			Name:   w.Name,
			Level:  w.Level,
			ID:     w.ID,
			Parent: w.Parent,
			DurNS:  w.DurNS,
		}
		if len(w.Attrs) > 0 {
			keys := make([]string, 0, len(w.Attrs))
			for k := range w.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				e.Attrs = append(e.Attrs, Attr{Key: k, Value: w.Attrs[k]})
			}
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
