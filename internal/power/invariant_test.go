package power

import (
	"math"
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Invariant suite for the power kernels: the contracts that were never
// pinned before the columnar rework — the uniform-jitter group-sum
// identity, exact jitter-stream restoration across Reset, the
// Classify-after-first-cycle misuse guard, and explicit boundary-history
// ownership.

// ulpDist returns the distance between two finite same-sign float64
// values in units of least precision (0 = identical bits).
func ulpDist(a, b float64) uint64 {
	ai, bi := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	d := ai - bi
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// TestGroupSumsEqualTotalExactly pins the uniform-jitter contract on
// every benchmark IP and both kernels: summing the per-group traces in
// Groups() order reproduces the total trace at exactly 0 ULP, cycle by
// cycle.
func TestGroupSumsEqualTotalExactly(t *testing.T) {
	for _, c := range diffIPs {
		for _, k := range []struct {
			name string
			mk   func(hdl.Core, Config) estimator
		}{{"columnar", newColumnar}, {"reference", newReference}} {
			run := runKernel(t, c.mk, k.mk, 11, 300, true)
			// Groups() order is what runKernel's map lost; rebuild it.
			core := c.mk()
			est := NewEstimator(core, DefaultConfig())
			est.Classify(hashClassifier)
			order := est.Groups()

			for i := range run.total {
				sum := 0.0
				for _, g := range order {
					sum += run.groups[g][i]
				}
				if d := ulpDist(sum, run.total[i]); d != 0 {
					t.Fatalf("%s/%s cycle %d: group sum %g differs from total %g by %d ULP",
						c.name, k.name, i, sum, run.total[i], d)
				}
			}
		}
	}
}

// TestResetRestoresExactJitterStream runs the full jitter-bearing config
// twice around a Reset on each IP: the two runs must be bit-equal, for
// the total and for every group trace.
func TestResetRestoresExactJitterStream(t *testing.T) {
	for _, c := range diffIPs {
		first := runKernel(t, c.mk, newColumnar, 3, 120, true)
		second := runKernel(t, c.mk, newColumnar, 3, 120, true)
		if cyc := firstDivergence(first.total, second.total); cyc >= 0 {
			t.Fatalf("%s: fresh runs diverge at cycle %d", c.name, cyc)
		}
		for g, tr := range first.groups {
			if cyc := firstDivergence(tr, second.groups[g]); cyc >= 0 {
				t.Fatalf("%s group %s: fresh runs diverge at cycle %d", c.name, g, cyc)
			}
		}
	}
}

func expectPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestClassifyAfterFirstCyclePanics: installing a classifier once cycles
// have been recorded would silently desynchronize the group traces from
// the total — both kernels must refuse.
func TestClassifyAfterFirstCyclePanics(t *testing.T) {
	mkCore := func() (hdl.Core, hdl.Values) {
		core := newToggler()
		return core, hdl.Values{"go": logic.FromUint64(1, 1)}
	}

	core, in := mkCore()
	est := NewEstimator(core, DefaultConfig())
	est.CyclePower(in, core.Step(in))
	expectPanic(t, "columnar Classify after first cycle", func() {
		est.Classify(func(string) string { return "g" })
	})

	core2, in2 := mkCore()
	ref := NewReferenceEstimator(core2, DefaultConfig())
	ref.CyclePower(in2, core2.Step(in2))
	expectPanic(t, "reference Classify after first cycle", func() {
		ref.Classify(func(string) string { return "g" })
	})

	// Reset re-arms classification: a reset estimator has no recorded
	// cycles to desynchronize from.
	est.Reset()
	est.Classify(func(string) string { return "g" })
}

// TestBoundaryHistoryOwnership pins the boundary-history ownership
// contract: the estimator retains the (immutable) port vectors of the
// previous cycle but never the caller's Values map — mutating the map
// after CyclePower returns must not perturb later cycles — and Reset
// severs the history completely, so the cycle after a Reset charges no
// boundary toggles.
func TestBoundaryHistoryOwnership(t *testing.T) {
	for _, k := range []struct {
		name string
		mk   func(hdl.Core, Config) estimator
	}{{"columnar", newColumnar}, {"reference", newReference}} {
		run := func(mutate bool) []float64 {
			core := newToggler()
			est := k.mk(core, noNoise())
			var trace []float64
			step := func(bit uint64) {
				in := hdl.Values{"go": logic.FromUint64(1, bit)}
				out := core.Step(in)
				trace = append(trace, est.CyclePower(in, out))
				if mutate {
					// A hostile caller recycles its maps: overwrite both
					// valuations with maximally-different vectors.
					in["go"] = logic.FromUint64(1, 1^bit)
					out["q"] = out["q"].Not()
				}
			}
			for _, b := range []uint64{0, 1, 0, 1, 1, 0} {
				step(b)
			}
			return trace
		}
		clean, dirty := run(false), run(true)
		if cyc := firstDivergence(clean, dirty); cyc >= 0 {
			t.Fatalf("%s: caller-side map mutation changed cycle %d: %g vs %g",
				k.name, cyc, clean[cyc], dirty[cyc])
		}
	}

	// Reset severs the history: the first cycle after Reset sees no
	// boundary toggles even though the valuations changed across it.
	core := newToggler()
	est := NewEstimator(core, noNoise())
	in0 := hdl.Values{"go": logic.FromUint64(1, 0)}
	est.CyclePower(in0, core.Step(in0))
	est.Reset()
	core.Reset()
	in1 := hdl.Values{"go": logic.FromUint64(1, 1)}
	out1 := core.Step(in1)
	p := est.CyclePower(in1, out1)
	// The only charges allowed are element data/clock power — strip them
	// by comparing against a fresh estimator fed the same single cycle.
	core2 := newToggler()
	est2 := NewEstimator(core2, noNoise())
	p2 := est2.CyclePower(in1, core2.Step(in1))
	if math.Float64bits(p) != math.Float64bits(p2) {
		t.Fatalf("first cycle after Reset charges stale boundary history: %g vs fresh %g", p, p2)
	}
}
