// Package power is psmkit's stand-in for a gate-level power simulator
// (Synopsys PrimeTime PX in the paper). It produces the *reference dynamic
// power traces* the PSM flow calibrates against.
//
// The model follows the paper's Definition 2: the dynamic energy consumed
// at simulation instant t is
//
//	δ(t) = ½ · V²dd · f · C · α(t)
//
// where α(t) is the design's switching activity. The estimator charges,
// per cycle:
//
//   - data power: every bit toggle of every registered state element and
//     tracked net, weighted by a per-element cell capacitance;
//   - clock power: the clock pin of every memory element whose clock is
//     not gated this cycle;
//   - I/O power: toggles on the primary input/output boundary nets.
//
// Cell capacitances are "synthesized" at elaboration time: each element
// gets a deterministic per-instance drive-strength factor derived from its
// name, mimicking the cell-sizing spread of a synthesized netlist. A small
// deterministic measurement jitter is added per cycle so reference traces
// exhibit the σ > 0 that real gate-level power reports show.
//
// Two kernels share that model. Estimator is the production kernel: it
// binds the core's elements to an hdl.ToggleBank and consumes a cycle's
// activity by scanning the bank's packed bit planes — untouched, gated
// words are skipped 64 elements per compare — with boundary I/O diffed
// through index-stable pre-bound vector slots instead of cloned maps.
// ReferenceEstimator is the historical per-element walk, retained as the
// differential oracle: both kernels visit charged elements in the same
// index order and perform the same float operations, so their traces are
// bit-identical (zero-contribution elements the columnar kernel skips
// would have added exactly 0.0, the IEEE-754 additive identity for the
// non-negative sums involved).
package power

import (
	"math/bits"
	"strings"
	"time"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Config holds the electrical parameters of the power model.
type Config struct {
	// VDD is the supply voltage in volts.
	VDD float64
	// ClockHz is the clock frequency in hertz.
	ClockHz float64
	// DataCapF is the nominal switched capacitance per data bit toggle, in
	// farads.
	DataCapF float64
	// ClockCapF is the clock-pin capacitance per memory-element bit, in
	// farads, charged every un-gated cycle.
	ClockCapF float64
	// IOCapF is the boundary-net capacitance per PI/PO bit toggle, in
	// farads.
	IOCapF float64
	// NoiseAmp is the relative amplitude of the deterministic measurement
	// jitter (0.01 = ±1%).
	NoiseAmp float64
	// Seed selects the jitter stream.
	Seed uint64
}

// DefaultConfig returns the parameters used throughout the paper
// reproduction: a 50 MHz, 1.1 V operating point with ~fF-scale cells.
func DefaultConfig() Config {
	return Config{
		VDD:       1.1,
		ClockHz:   50e6,
		DataCapF:  1.8e-15,
		ClockCapF: 0.9e-15,
		IOCapF:    3.5e-15,
		NoiseAmp:  0.005,
		Seed:      0x9e3779b97f4a7c15,
	}
}

// IOGroup is the reserved subcomponent name for boundary I/O power when a
// classifier is installed.
const IOGroup = "io"

// elaborateCaps assigns the per-instance data and clock capacitances —
// the deterministic "synthesis" both kernels must agree on exactly.
func elaborateCaps(elems []*hdl.Reg, cfg Config) (dataCap, clockCap []float64) {
	dataCap = make([]float64, len(elems))
	clockCap = make([]float64, len(elems))
	for i, r := range elems {
		// Deterministic per-instance drive-strength spread in [0.8, 1.2],
		// like the cell sizing a synthesis tool would pick. Array
		// elements (names differing only in their index) share one
		// factor: the slices of a memory array or register file are
		// physically identical cells.
		f := 0.8 + 0.4*unit(hashName(baseName(r.Name())))
		dataCap[i] = cfg.DataCapF * f
		if r.IsMemory() {
			clockCap[i] = cfg.ClockCapF * f * float64(r.Width())
		}
	}
	return dataCap, clockCap
}

// classify interns a group id per element plus the reserved I/O group.
func classify(elems []*hdl.Reg, groupFor func(string) string) (groupOf []int, names []string, ioGroup int) {
	index := map[string]int{}
	intern := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		index[name] = len(names)
		names = append(names, name)
		return len(names) - 1
	}
	groupOf = make([]int, len(elems))
	for i, r := range elems {
		groupOf[i] = intern(groupFor(r.Name()))
	}
	ioGroup = intern(IOGroup)
	return groupOf, names, ioGroup
}

func groupTraceByName(names []string, traces [][]float64, name string) []float64 {
	for i, n := range names {
		if n == name {
			return traces[i]
		}
	}
	return nil
}

// boundary is one direction's pre-bound I/O history: one slot per
// declared port, resolved once at elaboration. Slots hold the previous
// cycle's vectors by reference — logic.Vector is immutable through its
// exported API, so retaining the caller's values is safe and clone-free —
// and validity is tracked explicitly, which makes the history's ownership
// unambiguous: the estimator never retains the caller's Values map, and
// Reset severs every reference it holds.
type boundary struct {
	names []string
	prev  []logic.Vector
	ok    []bool
	armed bool // false until the first cycle has populated the slots
}

func newBoundary(ports []hdl.PortSpec, dir hdl.PortDir) *boundary {
	b := &boundary{}
	for _, p := range ports {
		if p.Dir == dir {
			b.names = append(b.names, p.Name)
		}
	}
	b.prev = make([]logic.Vector, len(b.names))
	b.ok = make([]bool, len(b.names))
	return b
}

// toggles returns the Hamming distance between the previous and current
// valuations over the declared ports, then retains cur's vectors as the
// new history. The first call after reset charges nothing (no history).
func (b *boundary) toggles(cur hdl.Values) int {
	n := 0
	for i, name := range b.names {
		v, ok := cur[name]
		if ok && b.armed && b.ok[i] {
			n += b.prev[i].HammingDistance(v)
		}
		b.prev[i], b.ok[i] = v, ok
	}
	b.armed = true
	return n
}

func (b *boundary) reset() {
	for i := range b.prev {
		b.prev[i], b.ok[i] = logic.Vector{}, false
	}
	b.armed = false
}

// Estimator computes per-cycle dynamic power for one core over columnar
// activity state. Create it with NewEstimator after the core is
// constructed — this binds the core's elements to a fresh
// hdl.ToggleBank, so one core supports exactly one Estimator — attach it
// to the simulation via Observer (or call CyclePower manually after
// every Step), and read the accumulated trace from Trace.
//
// Boundary accounting covers the core's declared ports; the historical
// kernel diffed whatever keys two consecutive Values maps shared, which
// is the same set for any simulator-driven core.
type Estimator struct {
	cfg   Config
	core  hdl.Core
	elems []*hdl.Reg
	bank  *hdl.ToggleBank
	// dataCap[i] is the per-toggle capacitance of elems[i]; clockCap[i] is
	// its total clock-pin capacitance (0 for nets).
	dataCap  []float64
	clockCap []float64
	// clocked is the plane of elements with clockCap != 0: the only ones
	// whose un-gated cycles charge anything. Un-gated nets contribute an
	// exact 0.0 and are skipped.
	clocked []uint64
	ioCap   float64
	scale   float64 // ½·V²·f

	in, out *boundary

	rng      uint64
	trace    []float64
	elabTime time.Duration
	started  bool

	// Per-subcomponent accounting (hierarchical PSM extension): when a
	// classifier is installed, every element belongs to a group and the
	// estimator additionally records one power trace per group. Boundary
	// I/O power goes to the reserved group "io".
	groupOf     []int
	groupNames  []string
	groupTraces [][]float64
	ioGroup     int
	groupAccum  []float64
}

// NewEstimator elaborates the power model of a core: it enumerates the
// design's state elements, assigns per-instance cell capacitances, and
// binds the elements to a columnar toggle bank. This is psmkit's
// analogue of the gate-level synthesis step that Table I of the paper
// reports as "Syn. time".
func NewEstimator(core hdl.Core, cfg Config) *Estimator {
	start := time.Now()
	e := &Estimator{
		cfg:   cfg,
		core:  core,
		elems: core.Elements(),
		ioCap: cfg.IOCapF,
		scale: 0.5 * cfg.VDD * cfg.VDD * cfg.ClockHz,
		rng:   cfg.Seed ^ hashName(core.Name()),
	}
	e.dataCap, e.clockCap = elaborateCaps(e.elems, cfg)
	e.bank = hdl.NewToggleBank(e.elems)
	e.clocked = make([]uint64, e.bank.Words())
	for i := range e.elems {
		if e.clockCap[i] != 0 {
			e.clocked[i/64] |= 1 << uint(i%64)
		}
	}
	ports := core.Ports()
	e.in = newBoundary(ports, hdl.In)
	e.out = newBoundary(ports, hdl.Out)
	e.elabTime = time.Since(start)
	return e
}

// ElaborationTime returns how long the power-model build took.
func (e *Estimator) ElaborationTime() time.Duration { return e.elabTime }

// Classify installs a subcomponent classifier: every element name maps to
// a group, and the estimator records a separate power trace per group on
// top of the total. Boundary I/O power is booked under the reserved group
// IOGroup. It must be called before the first cycle and panics otherwise:
// group traces started mid-run would silently miss the cycles already
// recorded and desynchronize from the total.
func (e *Estimator) Classify(groupFor func(elementName string) string) {
	if e.started {
		panic("power: Classify after the first cycle")
	}
	e.groupOf, e.groupNames, e.ioGroup = classify(e.elems, groupFor)
	e.groupTraces = make([][]float64, len(e.groupNames))
	e.groupAccum = make([]float64, len(e.groupNames))
}

// Groups returns the group names (empty without a classifier).
func (e *Estimator) Groups() []string { return e.groupNames }

// GroupTrace returns the recorded power trace of a group, or nil.
func (e *Estimator) GroupTrace(name string) []float64 {
	return groupTraceByName(e.groupNames, e.groupTraces, name)
}

// Reset clears the boundary history, the jitter stream and the recorded
// traces. Pending element activity is left to the core's own Reset, like
// the per-Reg counters the bank replaced.
func (e *Estimator) Reset() {
	e.in.reset()
	e.out.reset()
	e.rng = e.cfg.Seed ^ hashName(e.core.Name())
	e.trace = nil
	e.started = false
	for i := range e.groupTraces {
		e.groupTraces[i] = nil
	}
	for i := range e.groupAccum {
		e.groupAccum[i] = 0
	}
}

// CyclePower returns the dynamic power (in watts) consumed during the
// cycle that just executed, given its boundary valuations. It must be
// called exactly once per Step, in order.
//
// The kernel is a word scan over the bank's planes: a word contributes
// only where an element toggled (touched plane) or holds an un-gated
// clock pin (clocked &^ gated), so a quiescent, clock-gated word of 64
// elements costs one compare. Charged elements are visited in ascending
// index order with the reference kernel's exact float operations.
func (e *Estimator) CyclePower(in, out hdl.Values) float64 {
	e.started = true
	var c float64
	grouped := e.groupOf != nil
	touched := e.bank.TouchedPlane()
	gatedPlane := e.bank.GatedPlane()
	for w, tw := range touched {
		cmask := e.clocked[w] &^ gatedPlane[w]
		act := tw | cmask
		if act == 0 {
			continue
		}
		base := w * 64
		for act != 0 {
			bit := uint(bits.TrailingZeros64(act))
			act &= act - 1
			i := base + int(bit)
			var ec float64
			if tw&(1<<bit) != 0 {
				if t := e.bank.DrainSlot(i); t != 0 {
					ec += float64(t) * e.dataCap[i]
				}
			}
			if cmask&(1<<bit) != 0 {
				ec += e.clockCap[i]
			}
			c += ec
			if grouped {
				e.groupAccum[e.groupOf[i]] += ec
			}
		}
		if tw != 0 {
			e.bank.ClearTouchedWord(w)
		}
	}
	// Boundary I/O power over the pre-bound port slots.
	io := float64(e.in.toggles(in)) * e.ioCap
	io += float64(e.out.toggles(out)) * e.ioCap
	c += io
	if grouped {
		e.groupAccum[e.ioGroup] += io
	}

	// Deterministic measurement jitter, applied uniformly per cycle.
	jitter := 1.0
	if e.cfg.NoiseAmp > 0 {
		e.rng = xorshift(e.rng)
		jitter = 1 + e.cfg.NoiseAmp*(2*unit(e.rng)-1)
	}
	if grouped {
		// The grouped total is defined as the sum of the per-group cycle
		// values in group-id order, so the group traces sum to the total
		// at exactly 0 ULP — the uniform-jitter contract the invariant
		// suite pins. (Summing the raw element chain instead would drift
		// a few ULPs from the regrouped per-group sums.)
		var total float64
		for g := range e.groupAccum {
			v := e.scale * e.groupAccum[g] * jitter
			e.groupTraces[g] = append(e.groupTraces[g], v)
			e.groupAccum[g] = 0
			total += v
		}
		return total
	}
	return e.scale * c * jitter
}

// Observer returns an hdl.Observer that computes the cycle power after
// every Step and appends it to the estimator's trace.
func (e *Estimator) Observer() hdl.Observer {
	return func(_ int, in, out hdl.Values) {
		e.trace = append(e.trace, e.CyclePower(in, out))
	}
}

// Trace returns the power values recorded so far (watts per cycle).
func (e *Estimator) Trace() []float64 { return e.trace }

func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x == 0 {
		return 0x2545f4914f6cdd1d
	}
	return x
}

// unit maps a 64-bit state to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// baseName strips a trailing "[index]" so array slices share an identity.
func baseName(s string) string {
	if i := strings.IndexByte(s, '['); i >= 0 {
		return s[:i]
	}
	return s
}

func hashName(s string) uint64 {
	// FNV-1a
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
