// Package power is psmkit's stand-in for a gate-level power simulator
// (Synopsys PrimeTime PX in the paper). It produces the *reference dynamic
// power traces* the PSM flow calibrates against.
//
// The model follows the paper's Definition 2: the dynamic energy consumed
// at simulation instant t is
//
//	δ(t) = ½ · V²dd · f · C · α(t)
//
// where α(t) is the design's switching activity. The estimator charges,
// per cycle:
//
//   - data power: every bit toggle of every registered state element and
//     tracked net, weighted by a per-element cell capacitance;
//   - clock power: the clock pin of every memory element whose clock is
//     not gated this cycle;
//   - I/O power: toggles on the primary input/output boundary nets.
//
// Cell capacitances are "synthesized" at elaboration time: each element
// gets a deterministic per-instance drive-strength factor derived from its
// name, mimicking the cell-sizing spread of a synthesized netlist. A small
// deterministic measurement jitter is added per cycle so reference traces
// exhibit the σ > 0 that real gate-level power reports show.
//
// Like its real counterpart, the estimator walks every element of the
// design every cycle — which is exactly why it is one to two orders of
// magnitude slower than plain functional simulation, and why the paper's
// PSMs are worth generating.
package power

import (
	"strings"
	"time"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Config holds the electrical parameters of the power model.
type Config struct {
	// VDD is the supply voltage in volts.
	VDD float64
	// ClockHz is the clock frequency in hertz.
	ClockHz float64
	// DataCapF is the nominal switched capacitance per data bit toggle, in
	// farads.
	DataCapF float64
	// ClockCapF is the clock-pin capacitance per memory-element bit, in
	// farads, charged every un-gated cycle.
	ClockCapF float64
	// IOCapF is the boundary-net capacitance per PI/PO bit toggle, in
	// farads.
	IOCapF float64
	// NoiseAmp is the relative amplitude of the deterministic measurement
	// jitter (0.01 = ±1%).
	NoiseAmp float64
	// Seed selects the jitter stream.
	Seed uint64
}

// DefaultConfig returns the parameters used throughout the paper
// reproduction: a 50 MHz, 1.1 V operating point with ~fF-scale cells.
func DefaultConfig() Config {
	return Config{
		VDD:       1.1,
		ClockHz:   50e6,
		DataCapF:  1.8e-15,
		ClockCapF: 0.9e-15,
		IOCapF:    3.5e-15,
		NoiseAmp:  0.005,
		Seed:      0x9e3779b97f4a7c15,
	}
}

// Estimator computes per-cycle dynamic power for one core. Create it with
// NewEstimator after the core is constructed, attach it to the simulation
// via Observer (or call CyclePower manually after every Step), and read
// the accumulated trace from Trace.
type Estimator struct {
	cfg   Config
	core  hdl.Core
	elems []*hdl.Reg
	// dataCap[i] is the per-toggle capacitance of elems[i]; clockCap[i] is
	// its total clock-pin capacitance (0 for nets).
	dataCap  []float64
	clockCap []float64
	ioCap    float64
	scale    float64 // ½·V²·f

	prevIn  map[string]logic.Vector
	prevOut map[string]logic.Vector

	rng      uint64
	trace    []float64
	elabTime time.Duration

	// Per-subcomponent accounting (hierarchical PSM extension): when a
	// classifier is installed, every element belongs to a group and the
	// estimator additionally records one power trace per group. Boundary
	// I/O power goes to the reserved group "io".
	groupOf     []int
	groupNames  []string
	groupTraces [][]float64
	ioGroup     int
	groupAccum  []float64
}

// IOGroup is the reserved subcomponent name for boundary I/O power when a
// classifier is installed.
const IOGroup = "io"

// NewEstimator elaborates the power model of a core: it enumerates the
// design's state elements and assigns per-instance cell capacitances.
// This is psmkit's analogue of the gate-level synthesis step that Table I
// of the paper reports as "Syn. time".
func NewEstimator(core hdl.Core, cfg Config) *Estimator {
	start := time.Now()
	e := &Estimator{
		cfg:   cfg,
		core:  core,
		elems: core.Elements(),
		ioCap: cfg.IOCapF,
		scale: 0.5 * cfg.VDD * cfg.VDD * cfg.ClockHz,
		rng:   cfg.Seed ^ hashName(core.Name()),
	}
	e.dataCap = make([]float64, len(e.elems))
	e.clockCap = make([]float64, len(e.elems))
	for i, r := range e.elems {
		// Deterministic per-instance drive-strength spread in [0.8, 1.2],
		// like the cell sizing a synthesis tool would pick. Array
		// elements (names differing only in their index) share one
		// factor: the slices of a memory array or register file are
		// physically identical cells.
		f := 0.8 + 0.4*unit(hashName(baseName(r.Name())))
		e.dataCap[i] = cfg.DataCapF * f
		if r.IsMemory() {
			e.clockCap[i] = cfg.ClockCapF * f * float64(r.Width())
		}
	}
	e.elabTime = time.Since(start)
	return e
}

// ElaborationTime returns how long the power-model build took.
func (e *Estimator) ElaborationTime() time.Duration { return e.elabTime }

// Classify installs a subcomponent classifier: every element name maps to
// a group, and the estimator records a separate power trace per group on
// top of the total. Must be called before the first cycle. Boundary I/O
// power is booked under the reserved group IOGroup.
func (e *Estimator) Classify(groupFor func(elementName string) string) {
	index := map[string]int{}
	intern := func(name string) int {
		if i, ok := index[name]; ok {
			return i
		}
		index[name] = len(e.groupNames)
		e.groupNames = append(e.groupNames, name)
		return len(e.groupNames) - 1
	}
	e.groupOf = make([]int, len(e.elems))
	for i, r := range e.elems {
		e.groupOf[i] = intern(groupFor(r.Name()))
	}
	e.ioGroup = intern(IOGroup)
	e.groupTraces = make([][]float64, len(e.groupNames))
	e.groupAccum = make([]float64, len(e.groupNames))
}

// Groups returns the group names (empty without a classifier).
func (e *Estimator) Groups() []string { return e.groupNames }

// GroupTrace returns the recorded power trace of a group, or nil.
func (e *Estimator) GroupTrace(name string) []float64 {
	for i, n := range e.groupNames {
		if n == name {
			return e.groupTraces[i]
		}
	}
	return nil
}

// Reset clears the boundary history, the jitter stream and the recorded
// trace.
func (e *Estimator) Reset() {
	e.prevIn, e.prevOut = nil, nil
	e.rng = e.cfg.Seed ^ hashName(e.core.Name())
	e.trace = nil
	for i := range e.groupTraces {
		e.groupTraces[i] = nil
	}
	for i := range e.groupAccum {
		e.groupAccum[i] = 0
	}
}

// CyclePower returns the dynamic power (in watts) consumed during the
// cycle that just executed, given its boundary valuations. It must be
// called exactly once per Step, in order.
func (e *Estimator) CyclePower(in, out hdl.Values) float64 {
	var c float64
	grouped := e.groupOf != nil
	// Data and clock power over every element of the design. Walking the
	// full element list per cycle is the defining cost of gate-level power
	// estimation.
	for i, r := range e.elems {
		var ec float64
		if t := r.TakeToggles(); t != 0 {
			ec += float64(t) * e.dataCap[i]
		}
		if !r.Gated() {
			ec += e.clockCap[i]
		}
		c += ec
		if grouped {
			e.groupAccum[e.groupOf[i]] += ec
		}
	}
	// Boundary I/O power.
	io := float64(boundaryToggles(e.prevIn, in)) * e.ioCap
	io += float64(boundaryToggles(e.prevOut, out)) * e.ioCap
	c += io
	if grouped {
		e.groupAccum[e.ioGroup] += io
	}
	e.prevIn, e.prevOut = in.Clone(), out.Clone()

	// Deterministic measurement jitter, applied uniformly so the group
	// traces always sum to the total.
	jitter := 1.0
	if e.cfg.NoiseAmp > 0 {
		e.rng = xorshift(e.rng)
		jitter = 1 + e.cfg.NoiseAmp*(2*unit(e.rng)-1)
	}
	if grouped {
		for g := range e.groupAccum {
			e.groupTraces[g] = append(e.groupTraces[g], e.scale*e.groupAccum[g]*jitter)
			e.groupAccum[g] = 0
		}
	}
	return e.scale * c * jitter
}

// Observer returns an hdl.Observer that computes the cycle power after
// every Step and appends it to the estimator's trace.
func (e *Estimator) Observer() hdl.Observer {
	return func(_ int, in, out hdl.Values) {
		e.trace = append(e.trace, e.CyclePower(in, out))
	}
}

// Trace returns the power values recorded so far (watts per cycle).
func (e *Estimator) Trace() []float64 { return e.trace }

func boundaryToggles(prev map[string]logic.Vector, cur hdl.Values) int {
	if prev == nil {
		return 0
	}
	n := 0
	for name, v := range cur {
		if p, ok := prev[name]; ok {
			n += p.HammingDistance(v)
		}
	}
	return n
}

func xorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	if x == 0 {
		return 0x2545f4914f6cdd1d
	}
	return x
}

// unit maps a 64-bit state to [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// baseName strips a trailing "[index]" so array slices share an identity.
func baseName(s string) string {
	if i := strings.IndexByte(s, '['); i >= 0 {
		return s[:i]
	}
	return s
}

func hashName(s string) uint64 {
	// FNV-1a
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}
