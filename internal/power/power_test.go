package power

import (
	"math"
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
	"psmkit/internal/stats"
)

// toggler is a toy core whose internal register toggles all bits when
// "go" is asserted and is clock-gated otherwise.
type toggler struct {
	r *hdl.Reg
}

func newToggler() *toggler { return &toggler{r: hdl.NewReg("t.r", 32)} }

func (t *toggler) Name() string { return "toggler" }
func (t *toggler) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "go", Width: 1, Dir: hdl.In},
		{Name: "q", Width: 32, Dir: hdl.Out},
	}
}
func (t *toggler) Reset()               { t.r.Reset() }
func (t *toggler) Elements() []*hdl.Reg { return []*hdl.Reg{t.r} }
func (t *toggler) Step(in hdl.Values) hdl.Values {
	active := in["go"].Bit(0) == 1
	t.r.Gate(!active)
	if active {
		t.r.Set(t.r.Get().Not())
	}
	return hdl.Values{"q": t.r.Get()}
}

func run(cfg Config, stim []uint64) []float64 {
	core := newToggler()
	sim := hdl.NewSimulator(core)
	est := NewEstimator(core, cfg)
	sim.Observe(est.Observer())
	for _, g := range stim {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	return est.Trace()
}

func noNoise() Config {
	cfg := DefaultConfig()
	cfg.NoiseAmp = 0
	return cfg
}

func TestActiveConsumesMoreThanIdle(t *testing.T) {
	trace := run(noNoise(), []uint64{0, 0, 0, 1, 1, 1})
	idle := stats.MomentsOf(trace[:3]).Mean()
	active := stats.MomentsOf(trace[4:]).Mean()
	if active <= idle {
		t.Errorf("active power %g <= idle power %g", active, idle)
	}
	if idle < 0 {
		t.Errorf("negative idle power %g", idle)
	}
}

func TestGatedIdleDrawsNoClockPower(t *testing.T) {
	// With gating, idle cycles (after the first, which sees I/O toggles
	// from the boundary history warm-up) should draw exactly zero.
	trace := run(noNoise(), []uint64{0, 0, 0, 0})
	for i := 1; i < len(trace); i++ {
		if trace[i] != 0 {
			t.Errorf("gated idle cycle %d: power = %g, want 0", i, trace[i])
		}
	}
}

func TestDataPowerMatchesFormula(t *testing.T) {
	cfg := noNoise()
	core := newToggler()
	sim := hdl.NewSimulator(core)
	est := NewEstimator(core, cfg)
	sim.Observe(est.Observer())

	// Warm up boundary history with an idle cycle, then toggle.
	sim.MustStep(hdl.Values{"go": logic.FromUint64(1, 0)})
	sim.MustStep(hdl.Values{"go": logic.FromUint64(1, 1)})
	p := est.Trace()[1]

	// Expected capacitance: 32 data toggles × dataCap×f + 32-bit clock pin
	// cap ×f + boundary: "go" toggles 1 bit, "q" toggles 32 bits.
	f := 0.8 + 0.4*unit(hashName("t.r"))
	c := 32*cfg.DataCapF*f + 32*cfg.ClockCapF*f + 33*cfg.IOCapF
	want := 0.5 * cfg.VDD * cfg.VDD * cfg.ClockHz * c
	if math.Abs(p-want)/want > 1e-12 {
		t.Errorf("power = %g, want %g", p, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	stim := []uint64{0, 1, 1, 0, 1, 0, 0, 1, 1, 1}
	a := run(DefaultConfig(), stim)
	b := run(DefaultConfig(), stim)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cycle %d: %g != %g", i, a[i], b[i])
		}
	}
}

func TestNoiseBoundsAndVariation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseAmp = 0.01
	stim := make([]uint64, 200)
	for i := range stim {
		stim[i] = 1
	}
	noisy := run(cfg, stim)
	clean := run(noNoise(), stim)
	distinct := 0
	for i := 2; i < len(stim); i++ {
		rel := math.Abs(noisy[i]-clean[i]) / clean[i]
		if rel > cfg.NoiseAmp+1e-12 {
			t.Fatalf("cycle %d: jitter %g exceeds amplitude", i, rel)
		}
		if noisy[i] != noisy[2] {
			distinct++
		}
	}
	if distinct == 0 {
		t.Error("jitter produced a constant trace")
	}
}

func TestSeedChangesJitterOnly(t *testing.T) {
	stim := []uint64{1, 1, 1, 1, 1, 1}
	cfg2 := DefaultConfig()
	cfg2.Seed = 12345
	a := run(DefaultConfig(), stim)
	b := run(cfg2, stim)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		// same underlying power, different jitter: within 2×noise of each other
		if math.Abs(a[i]-b[i]) > 0.03*a[i] {
			t.Fatalf("cycle %d: seeds diverge too much: %g vs %g", i, a[i], b[i])
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestEstimatorReset(t *testing.T) {
	core := newToggler()
	sim := hdl.NewSimulator(core)
	est := NewEstimator(core, DefaultConfig())
	sim.Observe(est.Observer())
	stim := []uint64{0, 1, 1, 0}
	for _, g := range stim {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	first := append([]float64(nil), est.Trace()...)
	sim.Reset()
	est.Reset()
	for _, g := range stim {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	second := est.Trace()
	if len(second) != len(first) {
		t.Fatalf("trace length %d vs %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cycle %d not reproducible after Reset: %g vs %g", i, first[i], second[i])
		}
	}
}

func TestElaborationReportsTime(t *testing.T) {
	est := NewEstimator(newToggler(), DefaultConfig())
	if est.ElaborationTime() < 0 {
		t.Error("negative elaboration time")
	}
}

func TestXorshiftNeverSticksAtZero(t *testing.T) {
	if xorshift(0) == 0 {
		t.Error("xorshift(0) = 0")
	}
	x := uint64(1)
	for i := 0; i < 1000; i++ {
		x = xorshift(x)
		if x == 0 {
			t.Fatal("xorshift reached 0")
		}
	}
}

func TestUnitRange(t *testing.T) {
	for _, x := range []uint64{0, 1, math.MaxUint64, 0xdeadbeef} {
		u := unit(x)
		if u < 0 || u >= 1 {
			t.Errorf("unit(%#x) = %g out of [0,1)", x, u)
		}
	}
}

func TestClassifyGroupAccounting(t *testing.T) {
	core := newToggler()
	sim := hdl.NewSimulator(core)
	est := NewEstimator(core, noNoise())
	est.Classify(func(name string) string {
		if name == "t.r" {
			return "datapath"
		}
		return "other"
	})
	sim.Observe(est.Observer())
	for _, g := range []uint64{0, 1, 1, 0, 1} {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	groups := est.Groups()
	if len(groups) != 2 { // datapath + reserved io
		t.Fatalf("groups = %v", groups)
	}
	dp := est.GroupTrace("datapath")
	io := est.GroupTrace(IOGroup)
	total := est.Trace()
	if dp == nil || io == nil {
		t.Fatal("group traces missing")
	}
	for i := range total {
		if diff := dp[i] + io[i] - total[i]; diff > 1e-20 || diff < -1e-20 {
			t.Fatalf("cycle %d: groups sum %g != total %g", i, dp[i]+io[i], total[i])
		}
	}
	if est.GroupTrace("nope") != nil {
		t.Error("unknown group returned a trace")
	}
}

func TestClassifyResetClearsGroups(t *testing.T) {
	core := newToggler()
	sim := hdl.NewSimulator(core)
	est := NewEstimator(core, DefaultConfig())
	est.Classify(func(string) string { return "all" })
	sim.Observe(est.Observer())
	stim := []uint64{1, 0, 1, 1}
	for _, g := range stim {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	first := append([]float64(nil), est.GroupTrace("all")...)
	sim.Reset()
	est.Reset()
	if got := est.GroupTrace("all"); len(got) != 0 {
		t.Fatalf("group trace not cleared: %d entries", len(got))
	}
	for _, g := range stim {
		sim.MustStep(hdl.Values{"go": logic.FromUint64(1, g)})
	}
	second := est.GroupTrace("all")
	if len(second) != len(first) {
		t.Fatalf("lengths differ after reset")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cycle %d not reproducible: %g vs %g", i, first[i], second[i])
		}
	}
}
