package power

import (
	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// ReferenceEstimator is the historical scalar power kernel, retained
// verbatim as the oracle of the columnar Estimator's differential suite
// (the same role psm.JoinPooledReferenceCtx plays for the worklist join
// engine): it walks every element of the design every cycle through the
// per-Reg accessors and keeps its boundary history as cloned Values
// maps. Element order, float operation order and the jitter stream are
// exactly the Estimator's, so for any core and stimulus the two kernels
// must produce bit-identical total and per-group traces — pinned by
// TestColumnarMatchesReference.
//
// It also remains a working estimator for cores whose elements are not
// bound to an hdl.ToggleBank (the accessors read through either way).
type ReferenceEstimator struct {
	cfg      Config
	core     hdl.Core
	elems    []*hdl.Reg
	dataCap  []float64
	clockCap []float64
	ioCap    float64
	scale    float64

	prevIn  map[string]logic.Vector
	prevOut map[string]logic.Vector

	rng     uint64
	trace   []float64
	started bool

	groupOf     []int
	groupNames  []string
	groupTraces [][]float64
	ioGroup     int
	groupAccum  []float64
}

// NewReferenceEstimator elaborates the scalar power model of a core with
// exactly the Estimator's per-instance cell capacitances.
func NewReferenceEstimator(core hdl.Core, cfg Config) *ReferenceEstimator {
	e := &ReferenceEstimator{
		cfg:   cfg,
		core:  core,
		elems: core.Elements(),
		ioCap: cfg.IOCapF,
		scale: 0.5 * cfg.VDD * cfg.VDD * cfg.ClockHz,
		rng:   cfg.Seed ^ hashName(core.Name()),
	}
	e.dataCap, e.clockCap = elaborateCaps(e.elems, cfg)
	return e
}

// Classify installs a subcomponent classifier (see Estimator.Classify).
// It panics after the first cycle: group traces would silently miss the
// cycles already recorded.
func (e *ReferenceEstimator) Classify(groupFor func(elementName string) string) {
	if e.started {
		panic("power: Classify after the first cycle")
	}
	e.groupOf, e.groupNames, e.ioGroup = classify(e.elems, groupFor)
	e.groupTraces = make([][]float64, len(e.groupNames))
	e.groupAccum = make([]float64, len(e.groupNames))
}

// Groups returns the group names (empty without a classifier).
func (e *ReferenceEstimator) Groups() []string { return e.groupNames }

// GroupTrace returns the recorded power trace of a group, or nil.
func (e *ReferenceEstimator) GroupTrace(name string) []float64 {
	return groupTraceByName(e.groupNames, e.groupTraces, name)
}

// Reset clears the boundary history, the jitter stream and the recorded
// traces.
func (e *ReferenceEstimator) Reset() {
	e.prevIn, e.prevOut = nil, nil
	e.rng = e.cfg.Seed ^ hashName(e.core.Name())
	e.trace = nil
	e.started = false
	for i := range e.groupTraces {
		e.groupTraces[i] = nil
	}
	for i := range e.groupAccum {
		e.groupAccum[i] = 0
	}
}

// CyclePower is the historical per-element walk: one TakeToggles/Gated
// round trip per element per cycle, plus a full clone of both boundary
// maps.
func (e *ReferenceEstimator) CyclePower(in, out hdl.Values) float64 {
	e.started = true
	var c float64
	grouped := e.groupOf != nil
	for i, r := range e.elems {
		var ec float64
		if t := r.TakeToggles(); t != 0 {
			ec += float64(t) * e.dataCap[i]
		}
		if !r.Gated() {
			ec += e.clockCap[i]
		}
		c += ec
		if grouped {
			e.groupAccum[e.groupOf[i]] += ec
		}
	}
	io := float64(boundaryToggles(e.prevIn, in)) * e.ioCap
	io += float64(boundaryToggles(e.prevOut, out)) * e.ioCap
	c += io
	if grouped {
		e.groupAccum[e.ioGroup] += io
	}
	e.prevIn, e.prevOut = in.Clone(), out.Clone()

	jitter := 1.0
	if e.cfg.NoiseAmp > 0 {
		e.rng = xorshift(e.rng)
		jitter = 1 + e.cfg.NoiseAmp*(2*unit(e.rng)-1)
	}
	if grouped {
		// Grouped totals follow the uniform-jitter contract (see
		// Estimator.CyclePower): the total is the group values' sum in
		// group-id order, exact at 0 ULP.
		var total float64
		for g := range e.groupAccum {
			v := e.scale * e.groupAccum[g] * jitter
			e.groupTraces[g] = append(e.groupTraces[g], v)
			e.groupAccum[g] = 0
			total += v
		}
		return total
	}
	return e.scale * c * jitter
}

// Observer returns an hdl.Observer that records the cycle power.
func (e *ReferenceEstimator) Observer() hdl.Observer {
	return func(_ int, in, out hdl.Values) {
		e.trace = append(e.trace, e.CyclePower(in, out))
	}
}

// Trace returns the power values recorded so far (watts per cycle).
func (e *ReferenceEstimator) Trace() []float64 { return e.trace }

func boundaryToggles(prev map[string]logic.Vector, cur hdl.Values) int {
	if prev == nil {
		return 0
	}
	n := 0
	for name, v := range cur {
		if p, ok := prev[name]; ok {
			n += p.HammingDistance(v)
		}
	}
	return n
}
