package power

import (
	"math"
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/ip"
	"psmkit/internal/testbench"
)

// The differential suite: the columnar Estimator must reproduce the
// retained scalar ReferenceEstimator bit for bit — exact float64 bits on
// the total trace and on every per-group trace — for every benchmark IP,
// many stimulus seeds, with and without a subcomponent classifier. This
// is the PR 5 pattern (worklist join vs JoinPooledReferenceCtx) applied
// to the power kernel: no speed number counts until the outputs are
// pinned byte-identical.

// diffIPs are the four benchmark cores of Table I.
var diffIPs = []struct {
	name string
	mk   func() hdl.Core
}{
	{"RAM", func() hdl.Core { return ip.NewRAM() }},
	{"MultSum", func() hdl.Core { return ip.NewMultSum() }},
	{"AES", func() hdl.Core { return ip.NewAES128() }},
	{"Camellia", func() hdl.Core { return ip.NewCamellia128() }},
}

// hashClassifier buckets elements into three deterministic groups — a
// generic stand-in for per-IP subcomponent maps that exercises multiple
// concurrently-active groups on every core.
func hashClassifier(name string) string {
	switch hashName(baseName(name)) % 3 {
	case 0:
		return "alpha"
	case 1:
		return "beta"
	default:
		return "gamma"
	}
}

// kernelRun is one kernel's output over a run.
type kernelRun struct {
	total  []float64
	groups map[string][]float64
}

// estimator is the surface both kernels share.
type estimator interface {
	CyclePower(in, out hdl.Values) float64
	Classify(func(string) string)
	Groups() []string
	GroupTrace(string) []float64
	Observer() hdl.Observer
	Trace() []float64
	Reset()
}

// runKernel drives a fresh core instance for n cycles under the seeded
// stimulus program and collects the kernel's traces.
func runKernel(t *testing.T, mk func() hdl.Core, newEst func(hdl.Core, Config) estimator,
	seed int64, n int, grouped bool) kernelRun {
	t.Helper()
	core := mk()
	sim := hdl.NewSimulator(core)
	est := newEst(core, DefaultConfig())
	if grouped {
		est.Classify(hashClassifier)
	}
	sim.Observe(est.Observer())
	gen, err := testbench.For(core, testbench.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := testbench.Drive(sim, gen, n); err != nil {
		t.Fatal(err)
	}
	run := kernelRun{total: est.Trace(), groups: map[string][]float64{}}
	for _, g := range est.Groups() {
		run.groups[g] = est.GroupTrace(g)
	}
	return run
}

func newColumnar(c hdl.Core, cfg Config) estimator  { return NewEstimator(c, cfg) }
func newReference(c hdl.Core, cfg Config) estimator { return NewReferenceEstimator(c, cfg) }

// firstDivergence returns the first cycle where two traces differ in
// their exact float64 bits, or -1.
func firstDivergence(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// divergenceAt reruns both kernels at a given cycle count and reports
// the earliest bit divergence across the total and group traces
// (-1 = identical).
func divergenceAt(t *testing.T, mk func() hdl.Core, seed int64, n int, grouped bool) (int, string) {
	ref := runKernel(t, mk, newReference, seed, n, grouped)
	col := runKernel(t, mk, newColumnar, seed, n, grouped)
	worst, where := -1, ""
	note := func(c int, w string) {
		if c >= 0 && (worst < 0 || c < worst) {
			worst, where = c, w
		}
	}
	note(firstDivergence(ref.total, col.total), "total")
	if len(ref.groups) != len(col.groups) {
		return 0, "group sets differ"
	}
	for g, rt := range ref.groups {
		note(firstDivergence(rt, col.groups[g]), "group "+g)
	}
	return worst, where
}

// shrinkCycles reduces a failing cycle count to the shortest prefix that
// still diverges, so the failure report names the exact cycle.
func shrinkCycles(t *testing.T, mk func() hdl.Core, seed int64, n int, grouped bool) int {
	lo, hi := 1, n // invariant: hi fails (some run of length <= hi diverges)
	for lo < hi {
		mid := (lo + hi) / 2
		if c, _ := divergenceAt(t, mk, seed, mid, grouped); c >= 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi
}

// TestColumnarMatchesReference is the differential gate: 32 seeds x 4
// IPs x {ungrouped, grouped}, total and per-group traces byte-identical.
// On failure the stimulus is shrunk to the minimal diverging prefix.
func TestColumnarMatchesReference(t *testing.T) {
	const seeds = 32
	for _, c := range diffIPs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			for seed := int64(1); seed <= seeds; seed++ {
				n := 200 + int(seed*13%139)
				for _, grouped := range []bool{false, true} {
					cyc, where := divergenceAt(t, c.mk, seed, n, grouped)
					if cyc < 0 {
						continue
					}
					min := shrinkCycles(t, c.mk, seed, n, grouped)
					t.Fatalf("seed %d grouped=%v: %s diverges at cycle %d (shrunk: minimal failing run is %d cycles)",
						seed, grouped, where, cyc, min)
				}
			}
		})
	}
}

// TestColumnarMatchesReferenceAfterReset extends the differential gate
// across a Reset: both kernels, reset mid-experiment, must replay the
// identical trace (the jitter stream restarts exactly).
func TestColumnarMatchesReferenceAfterReset(t *testing.T) {
	for _, c := range diffIPs {
		core := c.mk()
		sim := hdl.NewSimulator(core)
		est := NewEstimator(core, DefaultConfig())
		sim.Observe(est.Observer())
		gen, err := testbench.For(core, testbench.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := testbench.Drive(sim, gen, 150); err != nil {
			t.Fatal(err)
		}
		first := append([]float64(nil), est.Trace()...)

		sim.Reset()
		est.Reset()
		gen, err = testbench.For(core, testbench.Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := testbench.Drive(sim, gen, 150); err != nil {
			t.Fatal(err)
		}
		if cyc := firstDivergence(first, est.Trace()); cyc >= 0 {
			t.Fatalf("%s: post-Reset replay diverges at cycle %d", c.name, cyc)
		}
		// And the replay still matches the reference kernel bitwise.
		ref := runKernel(t, c.mk, newReference, 7, 150, false)
		if cyc := firstDivergence(ref.total, est.Trace()); cyc >= 0 {
			t.Fatalf("%s: post-Reset trace diverges from reference at cycle %d", c.name, cyc)
		}
	}
}
