// Package dpm implements the use case the paper's introduction motivates
// PSMs with: dynamic power management exploration. "The PSMs of IPs
// included in the model of the target SoC are controlled by a power
// manager to allow the exploration of different dynamic power management
// solutions" (Section I, after Benini et al.'s DPM survey).
//
// A Manager walks an IP's activity profile — derived from a generated PSM
// tracking a workload trace — and evaluates shutdown policies against it:
// when the IP has sat in a low-power state longer than a policy's
// timeout, the manager power-gates it, paying a wake-up energy and
// latency penalty on the next active period. The classic results
// reproduce: the oracle policy bounds the achievable savings, and the
// break-even timeout trades residency against wake-up penalties.
package dpm

import (
	"fmt"
	"math"

	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/trace"
)

// Profile is the per-cycle view of a workload the power manager operates
// on: the PSM's power estimate and whether the IP was serving work.
type Profile struct {
	// Power is the PSM-estimated dynamic power per cycle, in watts.
	Power []float64
	// Active marks cycles where the IP is doing work (gating it there
	// would stall the SoC).
	Active []bool
	// SleepPower is the power drawn while gated, in watts.
	SleepPower float64
	// WakeEnergy is the energy cost of a wake-up, in joules.
	WakeEnergy float64
	// WakeLatency is the wake-up delay in cycles.
	WakeLatency int
	// CycleSeconds converts cycles to seconds (1/f).
	CycleSeconds float64
}

// Len returns the profile length in cycles.
func (p *Profile) Len() int { return len(p.Power) }

// BuildProfile derives a Profile by tracking a workload trace with a
// generated PSM. A cycle counts as active when the tracked state's mean
// power exceeds activeFraction of the model's most expensive state — the
// PSM's own power levels classify the IP's modes, which is exactly what
// the paper generates them for.
func BuildProfile(model *psm.Model, ft *trace.Functional, inputCols []int, activeFraction float64) (*Profile, error) {
	if ft.Len() == 0 {
		return nil, fmt.Errorf("dpm: empty workload trace")
	}
	var maxMean float64
	for _, s := range model.States {
		if m := s.Power.Mean(); m > maxMean {
			maxMean = m
		}
	}
	if maxMean <= 0 {
		return nil, fmt.Errorf("dpm: model has no positive-power state")
	}
	threshold := activeFraction * maxMean

	sim := powersim.New(model, inputCols, powersim.DefaultConfig())
	p := &Profile{
		Power:  make([]float64, 0, ft.Len()),
		Active: make([]bool, 0, ft.Len()),
	}
	for t := 0; t < ft.Len(); t++ {
		est := sim.Step(ft.Row(t))
		p.Power = append(p.Power, est)
		active := false
		if id := sim.CurrentState(); id >= 0 {
			active = model.States[id].Power.Mean() > threshold
		} else {
			active = est > threshold
		}
		p.Active = append(p.Active, active)
	}
	return p, nil
}

// Policy decides, given the number of cycles the IP has been continuously
// inactive, whether to gate it.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Shutdown reports whether to gate after idleCycles of inactivity.
	Shutdown(idleCycles int) bool
}

// AlwaysOn never gates: the reference the savings are measured against.
type AlwaysOn struct{}

// Name implements Policy.
func (AlwaysOn) Name() string { return "always-on" }

// Shutdown implements Policy.
func (AlwaysOn) Shutdown(int) bool { return false }

// Timeout gates after N consecutive inactive cycles — the classic
// fixed-timeout DPM policy.
type Timeout struct{ N int }

// Name implements Policy.
func (p Timeout) Name() string { return fmt.Sprintf("timeout-%d", p.N) }

// Shutdown implements Policy.
func (p Timeout) Shutdown(idle int) bool { return idle >= p.N }

// Immediate gates on the first inactive cycle (Timeout{1}).
func Immediate() Policy { return Timeout{N: 1} }

// Result is the outcome of evaluating one policy on a profile.
type Result struct {
	Policy string
	// EnergyJ is the total energy over the profile, in joules.
	EnergyJ float64
	// BaselineJ is the always-on energy, for the savings figure.
	BaselineJ float64
	// Savings is 1 - EnergyJ/BaselineJ.
	Savings float64
	// Shutdowns counts gating events; WakeUps equals it when the profile
	// ends awake.
	Shutdowns int
	// AddedLatency is the total wake-up stall in cycles.
	AddedLatency int
	// SleepCycles counts gated cycles.
	SleepCycles int
}

// Evaluate replays the profile under a policy. The manager is reactive:
// it observes inactivity, gates when the policy says so, and wakes —
// paying WakeEnergy and stalling WakeLatency cycles — when the next
// active cycle arrives.
func Evaluate(p *Profile, pol Policy) Result {
	res := Result{Policy: pol.Name()}
	var baseline float64
	for _, w := range p.Power {
		baseline += w * p.CycleSeconds
	}
	res.BaselineJ = baseline

	sleeping := false
	idle := 0
	for t := 0; t < p.Len(); t++ {
		switch {
		case p.Active[t]:
			if sleeping {
				// Wake-up: pay the penalty and stall.
				res.EnergyJ += p.WakeEnergy
				res.AddedLatency += p.WakeLatency
				sleeping = false
			}
			idle = 0
			res.EnergyJ += p.Power[t] * p.CycleSeconds
		case sleeping:
			res.SleepCycles++
			res.EnergyJ += p.SleepPower * p.CycleSeconds
		default:
			idle++
			if pol.Shutdown(idle) {
				sleeping = true
				res.Shutdowns++
				res.SleepCycles++
				res.EnergyJ += p.SleepPower * p.CycleSeconds
			} else {
				res.EnergyJ += p.Power[t] * p.CycleSeconds
			}
		}
	}
	if baseline > 0 {
		res.Savings = 1 - res.EnergyJ/baseline
	}
	return res
}

// Oracle evaluates the clairvoyant policy: it gates an idle period from
// its first cycle exactly when doing so saves energy (the period's idle
// energy exceeds the wake-up cost), giving the upper bound on savings any
// online policy can reach.
func Oracle(p *Profile) Result {
	res := Result{Policy: "oracle"}
	var baseline float64
	for _, w := range p.Power {
		baseline += w * p.CycleSeconds
	}
	res.BaselineJ = baseline

	t := 0
	for t < p.Len() {
		if p.Active[t] {
			res.EnergyJ += p.Power[t] * p.CycleSeconds
			t++
			continue
		}
		// Measure the idle period [t, end).
		end := t
		var idleEnergy float64
		for end < p.Len() && !p.Active[end] {
			idleEnergy += p.Power[end] * p.CycleSeconds
			end++
		}
		n := end - t
		sleepEnergy := float64(n)*p.SleepPower*p.CycleSeconds + p.WakeEnergy
		if end == p.Len() {
			sleepEnergy -= p.WakeEnergy // the profile ends asleep: no wake-up
		}
		if sleepEnergy < idleEnergy {
			res.EnergyJ += sleepEnergy
			res.Shutdowns++
			res.SleepCycles += n
			if end < p.Len() {
				res.AddedLatency += p.WakeLatency
			}
		} else {
			res.EnergyJ += idleEnergy
		}
		t = end
	}
	if baseline > 0 {
		res.Savings = 1 - res.EnergyJ/baseline
	}
	return res
}

// BreakEvenCycles returns the idle length beyond which sleeping beats
// staying awake, for an idle period drawing idlePower per cycle:
// the classic T_be = E_wake / ((P_idle - P_sleep) · t_cycle).
func BreakEvenCycles(p *Profile, idlePower float64) int {
	diff := (idlePower - p.SleepPower) * p.CycleSeconds
	if diff <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(p.WakeEnergy / diff))
}

// Sweep evaluates a set of timeout policies plus always-on and the
// oracle, returning the results in evaluation order.
func Sweep(p *Profile, timeouts []int) []Result {
	out := []Result{Evaluate(p, AlwaysOn{})}
	for _, n := range timeouts {
		out = append(out, Evaluate(p, Timeout{N: n}))
	}
	out = append(out, Oracle(p))
	return out
}
