package dpm

import (
	"math"
	"testing"
	"testing/quick"

	"psmkit/internal/experiment"
	"psmkit/internal/logic"
	"psmkit/internal/psm"
	"psmkit/internal/stats"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// prof builds a synthetic profile: active bursts of power 10 separated by
// idle gaps of power 2, with configurable sleep economics.
func prof(pattern []int, sleep, wakeE float64, wakeLat int) *Profile {
	p := &Profile{
		SleepPower:   sleep,
		WakeEnergy:   wakeE,
		WakeLatency:  wakeLat,
		CycleSeconds: 1, // joules == watt-cycles for easy arithmetic
	}
	for i, seg := range pattern {
		active := i%2 == 0
		for c := 0; c < seg; c++ {
			if active {
				p.Power = append(p.Power, 10)
				p.Active = append(p.Active, true)
			} else {
				p.Power = append(p.Power, 2)
				p.Active = append(p.Active, false)
			}
		}
	}
	return p
}

func TestAlwaysOnMatchesBaseline(t *testing.T) {
	p := prof([]int{3, 5, 2, 10, 4}, 0, 6, 2)
	r := Evaluate(p, AlwaysOn{})
	if r.EnergyJ != r.BaselineJ {
		t.Errorf("always-on energy %g != baseline %g", r.EnergyJ, r.BaselineJ)
	}
	if r.Savings != 0 || r.Shutdowns != 0 || r.SleepCycles != 0 || r.AddedLatency != 0 {
		t.Errorf("always-on result not neutral: %+v", r)
	}
	// baseline = 3*10 + 5*2 + 2*10 + 10*2 + 4*10 = 120
	if r.BaselineJ != 120 {
		t.Errorf("baseline = %g, want 120", r.BaselineJ)
	}
}

func TestImmediateTimeoutArithmetic(t *testing.T) {
	// One active burst (2), idle gap (4), active burst (2).
	p := prof([]int{2, 4, 2}, 0, 3, 1)
	r := Evaluate(p, Immediate())
	// Energy: 2*10 (burst) + 4*0 (gated idle) + 3 (wake) + 2*10 (burst) = 43.
	if math.Abs(r.EnergyJ-43) > 1e-12 {
		t.Errorf("energy = %g, want 43", r.EnergyJ)
	}
	if r.Shutdowns != 1 || r.SleepCycles != 4 || r.AddedLatency != 1 {
		t.Errorf("result = %+v", r)
	}
	// Baseline 2*10+4*2+2*10 = 48 → savings = 5/48.
	if math.Abs(r.Savings-5.0/48.0) > 1e-12 {
		t.Errorf("savings = %g", r.Savings)
	}
}

func TestTimeoutDelaysShutdown(t *testing.T) {
	p := prof([]int{1, 6, 1}, 0, 0, 0)
	r := Evaluate(p, Timeout{N: 3})
	// Idle cycles 1 and 2 stay awake (2 W each); cycles 3..6 gated.
	// Energy: 10 + 2 + 2 + 0*4 + 10 = 24.
	if math.Abs(r.EnergyJ-24) > 1e-12 {
		t.Errorf("energy = %g, want 24", r.EnergyJ)
	}
	if r.SleepCycles != 4 {
		t.Errorf("sleep cycles = %d, want 4", r.SleepCycles)
	}
}

func TestWakePenaltyCanMakeGatingWorse(t *testing.T) {
	// Short gaps + expensive wake-ups: immediate gating must LOSE.
	p := prof([]int{2, 2, 2, 2, 2}, 0, 50, 0)
	eager := Evaluate(p, Immediate())
	if eager.Savings >= 0 {
		t.Errorf("eager gating with 50 J wake-ups should lose energy, savings = %g", eager.Savings)
	}
	// The oracle never does worse than always-on.
	oracle := Oracle(p)
	if oracle.Savings < 0 {
		t.Errorf("oracle went negative: %+v", oracle)
	}
	if oracle.EnergyJ > eager.EnergyJ {
		t.Errorf("oracle %g worse than eager %g", oracle.EnergyJ, eager.EnergyJ)
	}
}

func TestOracleGatesOnlyProfitablePeriods(t *testing.T) {
	// Gap 1: 3 idle cycles × 2 W = 6 J vs wake 4 J → gate.
	// Gap 2: 1 idle cycle = 2 J vs wake 4 J → stay awake.
	p := prof([]int{1, 3, 1, 1, 1}, 0, 4, 0)
	r := Oracle(p)
	if r.Shutdowns != 1 {
		t.Errorf("oracle shutdowns = %d, want 1", r.Shutdowns)
	}
	// Energy: 10 + (0*3 + 4) + 10 + 2 + 10 = 36.
	if math.Abs(r.EnergyJ-36) > 1e-12 {
		t.Errorf("oracle energy = %g, want 36", r.EnergyJ)
	}
}

func TestOracleSkipsWakeAtEnd(t *testing.T) {
	// The profile ends idle: gating the tail pays no wake-up.
	p := prof([]int{1, 5}, 0, 3, 2)
	r := Oracle(p)
	// Energy: 10 + 0 (tail gated, no wake) = 10.
	if math.Abs(r.EnergyJ-10) > 1e-12 {
		t.Errorf("energy = %g, want 10", r.EnergyJ)
	}
	if r.AddedLatency != 0 {
		t.Errorf("latency = %d, want 0 (no wake at end)", r.AddedLatency)
	}
}

func TestBreakEvenCycles(t *testing.T) {
	p := &Profile{SleepPower: 0.5, WakeEnergy: 9, CycleSeconds: 1}
	// (2 - 0.5)*1 = 1.5 J/cycle saved → ceil(9/1.5) = 6.
	if got := BreakEvenCycles(p, 2); got != 6 {
		t.Errorf("break-even = %d, want 6", got)
	}
	// Sleeping never pays when sleep power exceeds idle power.
	if got := BreakEvenCycles(p, 0.4); got != math.MaxInt32 {
		t.Errorf("break-even = %d, want MaxInt32", got)
	}
}

func TestSweepOrderingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		// Random profile via the quick generator: random segments.
		rng := newRand(seed)
		var pattern []int
		for i := 0; i < rng.intn(10)+2; i++ {
			pattern = append(pattern, rng.intn(8)+1)
		}
		p := prof(pattern, 0.1, float64(rng.intn(10)), rng.intn(3))
		rs := Sweep(p, []int{1, 2, 4, 8})
		oracle := rs[len(rs)-1]
		for _, r := range rs[:len(rs)-1] {
			// The oracle is optimal among all evaluated policies.
			if oracle.EnergyJ > r.EnergyJ+1e-9 {
				return false
			}
		}
		// Always-on has zero savings by definition.
		return rs[0].Savings == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic generator for the quick test (avoids
// pulling math/rand into a table-driven helper).
type miniRand struct{ s uint64 }

func newRand(seed int64) *miniRand { return &miniRand{s: uint64(seed)*2654435761 + 1} }

func (r *miniRand) intn(n int) int {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return int(r.s % uint64(n))
}

func TestBuildProfileFromGeneratedPSM(t *testing.T) {
	// End to end: train a RAM PSM, derive the activity profile, and check
	// the power manager finds real savings on the idle/polling share.
	c, err := experiment.CaseByName("RAM")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := experiment.GenerateTraces(c, 6000, experiment.Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProfile(flow.Model, ts.FTs[0], ts.InputCols, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != ts.FTs[0].Len() {
		t.Fatalf("profile length %d", p.Len())
	}
	actives := 0
	for _, a := range p.Active {
		if a {
			actives++
		}
	}
	if actives == 0 || actives == p.Len() {
		t.Fatalf("degenerate activity classification: %d of %d", actives, p.Len())
	}

	p.SleepPower = 0
	p.WakeEnergy = 2e-6 * 20e-9 // small vs the idle energy at 50 MHz
	p.WakeLatency = 3
	p.CycleSeconds = 20e-9
	rs := Sweep(p, []int{1, 4, 16, 64})
	oracle := rs[len(rs)-1]
	if oracle.Savings <= 0 {
		t.Errorf("oracle found no savings: %+v", oracle)
	}
	// Some timeout policy should capture a meaningful share of the oracle.
	best := 0.0
	for _, r := range rs[1 : len(rs)-1] {
		if r.Savings > best {
			best = r.Savings
		}
	}
	if best <= 0 {
		t.Error("no timeout policy saved energy")
	}
	if best > oracle.Savings+1e-9 {
		t.Errorf("timeout policy (%.3f) beat the oracle (%.3f)", best, oracle.Savings)
	}
}

func TestBuildProfileErrors(t *testing.T) {
	c, _ := experiment.CaseByName("RAM")
	ts, err := experiment.GenerateTraces(c, 400, 1, testbench.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := experiment.BuildModel(ts, experiment.DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildProfile(flow.Model, ts.FTs[0].Slice(0, 0), ts.InputCols, 0.5); err == nil {
		t.Error("empty trace accepted")
	}

	// A model with no states has no positive-power state to classify
	// activity against; same for one whose states all sit at zero power.
	ft := trace.NewFunctional([]trace.Signal{{Name: "x", Width: 1}})
	ft.Append([]logic.Vector{logic.FromUint64(1, 0)})
	empty := &psm.Model{Initials: map[int]int{}}
	if _, err := BuildProfile(empty, ft, nil, 0.5); err == nil {
		t.Error("empty model accepted")
	}
	var zero stats.Moments
	zero.AddAll([]float64{0, 0, 0})
	dark := &psm.Model{States: []*psm.State{{ID: 0, Power: zero}}, Initials: map[int]int{0: 1}}
	if _, err := BuildProfile(dark, ft, nil, 0.5); err == nil {
		t.Error("model without a positive-power state accepted")
	}
}
