package check

import (
	"strings"
	"testing"
)

const fuzzSeedModel = `{
  "num_props": 2,
  "prop_sigs": [1, 2],
  "states": [
    {"id": 0, "alts": [{"seq": [{"prop": 0, "kind": "U"}], "count": 2}],
     "mu": 1.5, "sigma": 0.2, "n": 40,
     "fit": {"slope": 0.3, "intercept": 1.1, "r": 0.95}},
    {"id": 1, "alts": [{"seq": [{"prop": 1, "kind": "U"}, {"prop": 0, "kind": "X"}], "count": 1}],
     "mu": 3.0, "sigma": 0.4, "n": 25}
  ],
  "transitions": [
    {"from": 0, "to": 1, "enabling": 1, "count": 10},
    {"from": 1, "to": 0, "enabling": 0, "count": 9}
  ],
  "initials": [{"state": 0, "count": 2}],
  "hmm": {"a": [[0.5, 0.5], [0.9, 0.1]], "b": [[1, 0], [0, 1]], "pi": [1, 0]}
}`

// FuzzModelJSON feeds arbitrary bytes to the psmlint JSON reader and,
// when a document parses, runs the full verifier over it. Corrupted or
// adversarial model files must surface as parse errors or findings —
// never as a panic in ReadJSON or Run.
func FuzzModelJSON(f *testing.F) {
	f.Add([]byte(fuzzSeedModel))
	f.Add([]byte(`{"states": [], "transitions": [], "initials": []}`))
	f.Add([]byte(`{"states": [{"id": 0, "mu": -1, "sigma": -5, "n": 0}], "transitions": [{"from": 0, "to": 7, "enabling": -1, "count": 0}], "initials": []}`))
	f.Add([]byte(`{"num_props": 1, "hmm": {"a": [[2]], "b": [], "pi": [0.5, 0.5]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		doc, err := ReadJSON(strings.NewReader(string(data)), "fuzz")
		if err != nil {
			return
		}
		if doc.Initials == nil {
			t.Fatal("ReadJSON returned nil Initials map")
		}
		rep := Run(doc, DefaultOptions())
		if rep == nil {
			t.Fatal("Run returned nil report")
		}
		// The report must be internally consistent: HasErrors agrees with
		// the per-severity count.
		if rep.HasErrors() != (rep.Count(Error) > 0) {
			t.Fatal("report error flag disagrees with error count")
		}
	})
}
