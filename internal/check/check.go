// Package check is the domain layer of psmlint: a diagnostic engine that
// statically verifies generated PSM and HMM artifacts against the
// invariants the paper's flow assumes but never re-checks downstream.
//
// The pipeline (mine → PSMGenerator → simplify/join → calibrate → HMM)
// relies on properties that are easy to violate by a bug in any stage or
// by a corrupted model file:
//
//   - the mined proposition set Prop is mutually exclusive (exactly one
//     proposition holds per instant — Section III-A);
//   - chain PSMs follow the XU automaton's segmentation: until runs span
//     at least two instants, next runs exactly one (Section III-B);
//   - merged states keep statistically sound power attributes ⟨μ, σ, n⟩
//     (simplify/join pool moments exactly — Section IV);
//   - every state is reachable from an initial state, non-determinism
//     introduced by join is known and bounded;
//   - calibration regressions are finite and honor the correlation
//     threshold (Section IV);
//   - the HMM's A and B matrices stay row-stochastic and π is a
//     distribution (Section V).
//
// Rules implement the Rule interface over a source-independent model
// document (see model.go) so the same checks run on in-memory pipeline
// output, on saved .psm files and on JSON fixtures.
package check

import (
	"fmt"
	"io"
	"sort"

	"psmkit/internal/hmm"
	"psmkit/internal/psm"
)

// Severity ranks findings. Error findings make verification fail; Warn
// findings indicate suspicious but admissible artifacts; Info findings
// report structure worth knowing (e.g. non-determinism the HMM resolves).
type Severity int

const (
	Info Severity = iota
	Warn
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Finding is one structured diagnostic, located at a state and/or a
// transition of the checked model when applicable.
type Finding struct {
	Rule     string
	Severity Severity
	// State is the id of the state the finding concerns, or -1.
	State int
	// From/To locate a transition, or -1/-1.
	From, To int
	Msg      string
}

// String renders the finding as "severity [rule] location: message".
func (f Finding) String() string {
	loc := ""
	switch {
	case f.From >= 0 && f.To >= 0:
		loc = fmt.Sprintf(" s%d->s%d", f.From, f.To)
	case f.State >= 0:
		loc = fmt.Sprintf(" s%d", f.State)
	}
	return fmt.Sprintf("%s [%s]%s: %s", f.Severity, f.Rule, loc, f.Msg)
}

// Report collects the findings of one verification run.
type Report struct {
	Findings []Finding
}

// addf is the convenience constructor used by the rules.
func (r *Report) addf(rule string, sev Severity, state, from, to int, format string, args ...interface{}) {
	r.Findings = append(r.Findings, Finding{
		Rule: rule, Severity: sev, State: state, From: from, To: to,
		Msg: fmt.Sprintf(format, args...),
	})
}

// Count returns the number of findings at exactly the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == s {
			n++
		}
	}
	return n
}

// HasErrors reports whether any Error-severity finding was produced.
func (r *Report) HasErrors() bool { return r.Count(Error) > 0 }

// Merge appends another report's findings.
func (r *Report) Merge(o *Report) {
	r.Findings = append(r.Findings, o.Findings...)
}

// Sort orders findings by severity (errors first), then by state,
// transition and rule id, so output is deterministic and diff-friendly.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.State != b.State {
			return a.State < b.State
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Rule < b.Rule
	})
}

// Write renders every finding, one per line.
func (r *Report) Write(w io.Writer) error {
	for _, f := range r.Findings {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes the verification run.
type Options struct {
	// MinR, when positive, is the calibration correlation threshold every
	// state regression must honor (|R| >= MinR). Zero skips the check.
	MinR float64
	// Tol is the numeric tolerance for row-stochasticity and distribution
	// sums. Zero means the default 1e-9.
	Tol float64
	// MinSeverity filters the report: findings below it are dropped.
	MinSeverity Severity
}

// DefaultOptions returns the tolerances used by the pipeline wiring.
func DefaultOptions() Options { return Options{Tol: 1e-9} }

func (o Options) tol() float64 {
	if o.Tol > 0 {
		return o.Tol
	}
	return 1e-9
}

// Rule is one verification pass over a model document.
type Rule interface {
	// ID is the stable rule identifier reported in findings (and usable
	// in documentation / suppression).
	ID() string
	// Check appends this rule's findings for the model to the report.
	Check(m *Model, opts Options, rep *Report)
}

// ModelRules returns every registered model-document rule, in the order
// they run.
func ModelRules() []Rule {
	return []Rule{
		propsExclusiveRule{},
		structureRule{},
		powerAttrsRule{},
		reachabilityRule{},
		nondeterminismRule{},
		calibrationRule{},
		hmmShapeRule{},
		hmmStochasticRule{},
	}
}

// VerifyPSM lowers a pipeline model (with its HMM layer) and runs every
// model rule against it: the one-call gate the serving path uses before a
// model leaves the process, sharing the exact rule set psmlint and
// psmgen -check apply.
func VerifyPSM(m *psm.Model, source string, opts Options) *Report {
	doc := FromPSM(m, source)
	doc.AttachHMM(hmm.New(m))
	return Run(doc, opts)
}

// Run executes every model rule and returns the sorted, severity-filtered
// report.
func Run(m *Model, opts Options) *Report {
	rep := &Report{}
	for _, r := range ModelRules() {
		r.Check(m, opts, rep)
	}
	if opts.MinSeverity > Info {
		kept := rep.Findings[:0]
		for _, f := range rep.Findings {
			if f.Severity >= opts.MinSeverity {
				kept = append(kept, f)
			}
		}
		rep.Findings = kept
	}
	rep.Sort()
	return rep
}
