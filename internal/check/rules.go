package check

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// --- props-exclusive --------------------------------------------------------

// propsExclusiveRule verifies the mutual exclusivity of the mined
// proposition set (Section III-A): each proposition is identified by a
// distinct atom-truth signature, so exactly one holds per instant. Two
// propositions sharing a signature would both hold simultaneously.
type propsExclusiveRule struct{}

func (propsExclusiveRule) ID() string { return "props-exclusive" }

func (propsExclusiveRule) Check(m *Model, opts Options, rep *Report) {
	if m.PropSigs == nil {
		return
	}
	seen := map[uint64]int{}
	for i, sig := range m.PropSigs {
		if j, ok := seen[sig]; ok {
			rep.addf("props-exclusive", Error, -1, -1, -1,
				"propositions %d and %d share atom signature %#x: the mined set must be mutually exclusive", j, i, sig)
			continue
		}
		seen[sig] = i
	}
}

// --- structure --------------------------------------------------------------

// structureRule verifies the graph's referential integrity: unique state
// ids, transitions between existing states with in-range enabling
// propositions and positive counts, non-empty assertion sets, and a
// non-empty initial distribution.
type structureRule struct{}

func (structureRule) ID() string { return "structure" }

func (structureRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "structure"
	if len(m.States) == 0 {
		rep.addf(rule, Error, -1, -1, -1, "model has no states")
		return
	}
	ids := map[int]bool{}
	for _, s := range m.States {
		if ids[s.ID] {
			rep.addf(rule, Error, s.ID, -1, -1, "duplicate state id %d", s.ID)
		}
		ids[s.ID] = true
		if len(s.Alts) == 0 {
			rep.addf(rule, Error, s.ID, -1, -1, "state has no characterizing assertion")
		}
		for ai, a := range s.Alts {
			if len(a.Seq) == 0 {
				rep.addf(rule, Error, s.ID, -1, -1, "alternative %d has an empty phase sequence", ai)
			}
			if a.Count < 1 {
				rep.addf(rule, Error, s.ID, -1, -1, "alternative %d has non-positive multiplicity %d", ai, a.Count)
			}
			for pi, p := range a.Seq {
				if p.Kind != "U" && p.Kind != "X" {
					rep.addf(rule, Error, s.ID, -1, -1,
						"alternative %d phase %d has unknown temporal kind %q (want U or X)", ai, pi, p.Kind)
				}
				if p.Prop < 0 || (m.NumProps >= 0 && p.Prop >= m.NumProps) {
					rep.addf(rule, Error, s.ID, -1, -1,
						"alternative %d phase %d references proposition %d outside the mined set [0,%d)", ai, pi, p.Prop, m.NumProps)
				}
			}
		}
	}
	for _, t := range m.Transitions {
		if !ids[t.From] || !ids[t.To] {
			rep.addf(rule, Error, -1, t.From, t.To, "transition references a non-existent state")
		}
		if t.Enabling < 0 || (m.NumProps >= 0 && t.Enabling >= m.NumProps) {
			rep.addf(rule, Error, -1, t.From, t.To,
				"enabling proposition %d outside the mined set [0,%d)", t.Enabling, m.NumProps)
		}
		if t.Count < 1 {
			rep.addf(rule, Error, -1, t.From, t.To, "non-positive transition count %d", t.Count)
		}
	}
	if len(m.Initials) == 0 {
		rep.addf(rule, Error, -1, -1, -1, "model has no initial state")
	}
	for id, n := range m.Initials {
		if !ids[id] {
			rep.addf(rule, Error, id, -1, -1, "initial distribution references non-existent state %d", id)
		}
		if n < 1 {
			rep.addf(rule, Error, id, -1, -1, "non-positive initial multiplicity %d", n)
		}
	}
}

// --- power-attrs ------------------------------------------------------------

// powerAttrsRule verifies the power attributes ⟨μ, σ, n⟩ every state must
// keep statistically sound through simplify/join's moment pooling and the
// Welch / one-sample t-test paths: n ≥ 1, μ finite (NaN-free), σ finite
// and non-negative, and σ = 0 whenever n = 1 (a single observation has no
// spread).
type powerAttrsRule struct{}

func (powerAttrsRule) ID() string { return "power-attrs" }

func (powerAttrsRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "power-attrs"
	for _, s := range m.States {
		if s.N < 1 {
			rep.addf(rule, Error, s.ID, -1, -1, "state has n=%d supporting instants (want >= 1)", s.N)
		}
		if !finite(s.Mu) {
			rep.addf(rule, Error, s.ID, -1, -1, "state mean power is %v (must be finite)", s.Mu)
		}
		if !finite(s.Sigma) {
			rep.addf(rule, Error, s.ID, -1, -1, "state power deviation is %v (must be finite)", s.Sigma)
		}
		if s.Sigma < 0 {
			rep.addf(rule, Error, s.ID, -1, -1, "negative power deviation σ=%v", s.Sigma)
		}
		if s.N == 1 && s.Sigma > 0 {
			rep.addf(rule, Warn, s.ID, -1, -1, "σ=%v with a single supporting instant (expected 0)", s.Sigma)
		}
	}
}

// --- reachability -----------------------------------------------------------

// reachabilityRule verifies that every state is reachable from an initial
// state — unreachable (dead) states cannot be entered by the tracker and
// indicate a corrupted join or a truncated file. Absorbing states are
// reported at Info severity: they are legitimate chain tails but worth
// knowing about.
type reachabilityRule struct{}

func (reachabilityRule) ID() string { return "reachability" }

func (reachabilityRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "reachability"
	if len(m.States) == 0 {
		return
	}
	succ := map[int][]int{}
	outdeg := map[int]int{}
	for _, t := range m.Transitions {
		succ[t.From] = append(succ[t.From], t.To)
		outdeg[t.From]++
	}
	visited := map[int]bool{}
	var stack []int
	for id := range m.Initials {
		if !visited[id] {
			visited[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range succ[id] {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	for _, s := range m.States {
		if !visited[s.ID] {
			rep.addf(rule, Error, s.ID, -1, -1, "state is unreachable from every initial state (dead state)")
		}
		if outdeg[s.ID] == 0 {
			rep.addf(rule, Info, s.ID, -1, -1, "state has no outgoing transitions (absorbing)")
		}
	}
}

// --- nondeterminism ---------------------------------------------------------

// nondeterminismRule reports the non-determinism the join procedure may
// introduce (Section IV): several transitions leaving one state under the
// same enabling proposition, and one assertion characterizing several
// states. Both are admissible — the HMM resolves them — but the reports
// quantify how much statistical disambiguation the simulation will need.
type nondeterminismRule struct{}

func (nondeterminismRule) ID() string { return "nondeterminism" }

func (nondeterminismRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "nondeterminism"
	type edge struct{ from, enabling int }
	targets := map[edge][]int{}
	for _, t := range m.Transitions {
		k := edge{t.From, t.Enabling}
		targets[k] = append(targets[k], t.To)
	}
	keys := make([]edge, 0, len(targets))
	for k := range targets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].enabling < keys[j].enabling
	})
	for _, k := range keys {
		if ts := targets[k]; len(ts) > 1 {
			sort.Ints(ts)
			rep.addf(rule, Info, k.from, -1, -1,
				"proposition %d enables %d competing transitions (targets %v): HMM scoring decides", k.enabling, len(ts), ts)
		}
	}
	byAssertion := map[string][]int{}
	for _, s := range m.States {
		for _, a := range s.Alts {
			byAssertion[a.key()] = append(byAssertion[a.key()], s.ID)
		}
	}
	akeys := make([]string, 0, len(byAssertion))
	for k := range byAssertion {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	for _, k := range akeys {
		if ids := byAssertion[k]; len(ids) > 1 {
			sort.Ints(ids)
			var ss []string
			for _, id := range ids {
				ss = append(ss, fmt.Sprintf("s%d", id))
			}
			rep.addf(rule, Info, ids[0], -1, -1,
				"assertion %q characterizes %d states (%s): observation is ambiguous", k, len(ids), strings.Join(ss, ","))
		}
	}
}

// --- calibration ------------------------------------------------------------

// calibrationRule verifies the Hamming-distance regressions of calibrated
// data-dependent states (Section IV): slope, intercept and correlation
// must be finite, |R| must be a valid correlation, and — when the policy
// threshold is known — the correlation gate must have been honored.
type calibrationRule struct{}

func (calibrationRule) ID() string { return "calibration" }

func (calibrationRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "calibration"
	for _, s := range m.States {
		f := s.Fit
		if f == nil {
			continue
		}
		if !finite(f.Slope) || !finite(f.Intercept) {
			rep.addf(rule, Error, s.ID, -1, -1,
				"calibration line %v + %v*HD is not finite", f.Intercept, f.Slope)
		}
		if !finite(f.R) || math.Abs(f.R) > 1+1e-12 {
			rep.addf(rule, Error, s.ID, -1, -1, "calibration correlation R=%v is not a valid Pearson r", f.R)
		} else if opts.MinR > 0 && math.Abs(f.R) < opts.MinR {
			rep.addf(rule, Error, s.ID, -1, -1,
				"calibration kept with |R|=%.3f below the policy threshold %.3f", math.Abs(f.R), opts.MinR)
		}
	}
}

// --- hmm-shape --------------------------------------------------------------

// hmmShapeRule verifies the dimensional consistency of λ = (A, B, π)
// against the model: A is |Q|×|Q|, B has |Q| rows of one common
// observation arity, and π has |Q| entries.
type hmmShapeRule struct{}

func (hmmShapeRule) ID() string { return "hmm-shape" }

func (hmmShapeRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "hmm-shape"
	h := m.HMM
	if h == nil {
		return
	}
	n := len(m.States)
	if len(h.A) != n {
		rep.addf(rule, Error, -1, -1, -1, "A has %d rows for %d states", len(h.A), n)
	}
	for i, row := range h.A {
		if len(row) != len(h.A) {
			rep.addf(rule, Error, i, -1, -1, "A row %d has %d columns (want %d)", i, len(row), len(h.A))
		}
	}
	if len(h.B) != n {
		rep.addf(rule, Error, -1, -1, -1, "B has %d rows for %d states", len(h.B), n)
	}
	k := -1
	for i, row := range h.B {
		if k < 0 {
			k = len(row)
		} else if len(row) != k {
			rep.addf(rule, Error, i, -1, -1, "B row %d has %d columns (want %d)", i, len(row), k)
		}
	}
	if len(h.Pi) != n {
		rep.addf(rule, Error, -1, -1, -1, "π has %d entries for %d states", len(h.Pi), n)
	}
}

// --- hmm-stochastic ---------------------------------------------------------

// hmmStochasticRule verifies the probabilistic invariants of Section V:
// every entry of A, B and π is a finite non-negative probability, every
// non-empty row of A and B sums to 1 (all-zero rows are admitted — they
// encode absorbing states and resynchronization masking), and π is a
// probability distribution.
type hmmStochasticRule struct{}

func (hmmStochasticRule) ID() string { return "hmm-stochastic" }

func (hmmStochasticRule) Check(m *Model, opts Options, rep *Report) {
	const rule = "hmm-stochastic"
	h := m.HMM
	if h == nil {
		return
	}
	tol := opts.tol()
	checkRows := func(name string, rows [][]float64) {
		for i, row := range rows {
			sum := 0.0
			bad := false
			for j, x := range row {
				if !finite(x) || x < 0 {
					rep.addf(rule, Error, i, -1, -1, "%s[%d][%d] = %v is not a probability", name, i, j, x)
					bad = true
				}
				sum += x
			}
			if bad || len(row) == 0 {
				continue
			}
			if sum != 0 && math.Abs(sum-1) > tol {
				rep.addf(rule, Error, i, -1, -1, "%s row %d sums to %v (want 1 or all-zero)", name, i, sum)
			}
		}
	}
	checkRows("A", h.A)
	checkRows("B", h.B)
	sum := 0.0
	bad := false
	for i, x := range h.Pi {
		if !finite(x) || x < 0 {
			rep.addf(rule, Error, i, -1, -1, "π[%d] = %v is not a probability", i, x)
			bad = true
		}
		sum += x
	}
	if !bad && len(h.Pi) > 0 {
		if sum == 0 {
			rep.addf(rule, Error, -1, -1, -1, "π carries no initial mass")
		} else if math.Abs(sum-1) > tol {
			rep.addf(rule, Error, -1, -1, -1, "π sums to %v (want 1)", sum)
		}
	}
}
