package check

import (
	"encoding/json"
	"fmt"
	"io"

	"psmkit/internal/hmm"
	"psmkit/internal/psm"
)

// Model is the checker's source-independent view of a generated PSM (and,
// optionally, its HMM). It deliberately stores derived scalar attributes
// (μ, σ, n) instead of moment accumulators so corrupted artifacts — a
// negative σ in a hand-edited JSON, say — remain representable and
// detectable.
type Model struct {
	// Source labels the artifact in messages (file name or "pipeline").
	Source string
	// NumProps is the cardinality of the mined proposition set, or -1
	// when unknown (proposition ranges are then not checked).
	NumProps int
	// PropSigs, when non-nil, holds the atom-truth signature of each
	// proposition; duplicate signatures violate mutual exclusivity.
	PropSigs    []uint64
	States      []State
	Transitions []Transition
	// Initials maps state id → number of training chains beginning there.
	Initials map[int]int
	// HMM, when non-nil, is the statistical layer to verify.
	HMM *HMMDoc
}

// State mirrors psm.State with scalar power attributes.
type State struct {
	ID    int
	Alts  []Alt
	Mu    float64
	Sigma float64
	N     int
	Fit   *Fit
}

// Alt is one alternative assertion with its join multiplicity.
type Alt struct {
	Seq   []PhaseDoc
	Count int
}

// PhaseDoc is one phase of an assertion: proposition Prop under temporal
// kind "U" (until) or "X" (next).
type PhaseDoc struct {
	Prop int
	Kind string
}

// key renders the alternative's canonical identity (mirrors
// psm.Sequence.Key).
func (a Alt) key() string {
	s := ""
	for i, p := range a.Seq {
		if i > 0 {
			s += ";"
		}
		s += fmt.Sprintf("%d%s", p.Prop, p.Kind)
	}
	return s
}

// Fit mirrors stats.LinearFit.
type Fit struct {
	Slope     float64
	Intercept float64
	R         float64
}

// Transition mirrors psm.Transition.
type Transition struct {
	From, To, Enabling, Count int
}

// HMMDoc carries the λ = (A, B, π) matrices for stochasticity checks.
type HMMDoc struct {
	A  [][]float64
	B  [][]float64
	Pi []float64
}

// FromPSM lowers a pipeline model into the checkable document. The mined
// dictionary, when present, supplies the proposition signatures.
func FromPSM(m *psm.Model, source string) *Model {
	doc := &Model{Source: source, NumProps: -1, Initials: map[int]int{}}
	if m.Dict != nil {
		snap := m.Dict.Snapshot()
		doc.PropSigs = snap.PropKeys
		doc.NumProps = len(snap.PropKeys)
	}
	for _, s := range m.States {
		ds := State{
			ID:    s.ID,
			Mu:    s.Power.Mean(),
			Sigma: s.Power.StdDev(),
			N:     s.Power.N,
		}
		for _, a := range s.Alts {
			da := Alt{Count: a.Count}
			for _, p := range a.Seq.Phases {
				da.Seq = append(da.Seq, PhaseDoc{Prop: p.Prop, Kind: p.Kind.String()})
			}
			ds.Alts = append(ds.Alts, da)
		}
		if s.Fit != nil {
			ds.Fit = &Fit{Slope: s.Fit.Slope, Intercept: s.Fit.Intercept, R: s.Fit.R}
		}
		doc.States = append(doc.States, ds)
	}
	for _, t := range m.Transitions {
		doc.Transitions = append(doc.Transitions, Transition{
			From: t.From, To: t.To, Enabling: t.Enabling, Count: t.Count,
		})
	}
	for id, n := range m.Initials {
		doc.Initials[id] = n
	}
	return doc
}

// AttachHMM lowers the HMM matrices into the document for the
// stochasticity rules.
func (m *Model) AttachHMM(h *hmm.HMM) {
	doc := &HMMDoc{Pi: append([]float64(nil), h.Pi...)}
	for _, row := range h.A {
		doc.A = append(doc.A, append([]float64(nil), row...))
	}
	for _, row := range h.B {
		doc.B = append(doc.B, append([]float64(nil), row...))
	}
	m.HMM = doc
}

// --- JSON document ----------------------------------------------------------

// jsonDoc is the on-disk JSON schema psmlint accepts (and the golden-test
// fixture format). It matches Model field-for-field.
type jsonDoc struct {
	NumProps    *int             `json:"num_props,omitempty"`
	PropSigs    []uint64         `json:"prop_sigs,omitempty"`
	States      []jsonState      `json:"states"`
	Transitions []jsonTransition `json:"transitions"`
	Initials    []jsonInitial    `json:"initials"`
	HMM         *jsonHMM         `json:"hmm,omitempty"`
}

type jsonState struct {
	ID    int       `json:"id"`
	Alts  []jsonAlt `json:"alts"`
	Mu    float64   `json:"mu"`
	Sigma float64   `json:"sigma"`
	N     int       `json:"n"`
	Fit   *jsonFit  `json:"fit,omitempty"`
}

type jsonAlt struct {
	Seq   []jsonPhase `json:"seq"`
	Count int         `json:"count"`
}

type jsonPhase struct {
	Prop int    `json:"prop"`
	Kind string `json:"kind"`
}

type jsonFit struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R         float64 `json:"r"`
}

type jsonTransition struct {
	From     int `json:"from"`
	To       int `json:"to"`
	Enabling int `json:"enabling"`
	Count    int `json:"count"`
}

type jsonInitial struct {
	State int `json:"state"`
	Count int `json:"count"`
}

type jsonHMM struct {
	A  [][]float64 `json:"a"`
	B  [][]float64 `json:"b"`
	Pi []float64   `json:"pi"`
}

// ReadJSON parses a model document in psmlint's JSON schema.
func ReadJSON(r io.Reader, source string) (*Model, error) {
	var jd jsonDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("check: parsing %s: %w", source, err)
	}
	doc := &Model{Source: source, NumProps: -1, Initials: map[int]int{}}
	switch {
	case jd.NumProps != nil:
		doc.NumProps = *jd.NumProps
	case jd.PropSigs != nil:
		doc.NumProps = len(jd.PropSigs)
	}
	doc.PropSigs = jd.PropSigs
	for _, js := range jd.States {
		s := State{ID: js.ID, Mu: js.Mu, Sigma: js.Sigma, N: js.N}
		for _, ja := range js.Alts {
			a := Alt{Count: ja.Count}
			for _, jp := range ja.Seq {
				a.Seq = append(a.Seq, PhaseDoc{Prop: jp.Prop, Kind: jp.Kind})
			}
			s.Alts = append(s.Alts, a)
		}
		if js.Fit != nil {
			s.Fit = &Fit{Slope: js.Fit.Slope, Intercept: js.Fit.Intercept, R: js.Fit.R}
		}
		doc.States = append(doc.States, s)
	}
	for _, jt := range jd.Transitions {
		doc.Transitions = append(doc.Transitions, Transition{
			From: jt.From, To: jt.To, Enabling: jt.Enabling, Count: jt.Count,
		})
	}
	for _, ji := range jd.Initials {
		doc.Initials[ji.State] += ji.Count
	}
	if jd.HMM != nil {
		doc.HMM = &HMMDoc{A: jd.HMM.A, B: jd.HMM.B, Pi: jd.HMM.Pi}
	}
	return doc, nil
}
