package check

import (
	"psmkit/internal/psm"
)

// CheckChain verifies the XU-automaton well-formedness of a chain PSM
// (Section III-B/C): the segmentation invariants the PSMGenerator's
// two-element FIFO guarantees by construction and simplify must preserve.
//
//   - every chain state carries exactly one alternative (join has not run);
//   - an until phase corresponds to a run of at least two instants, a next
//     phase to exactly one — so a state's supporting interval must span at
//     least Σ(2 per U, 1 per X) instants, and exactly that many when the
//     cascade is all-next;
//   - the power attributes cover exactly the supporting interval (n equals
//     the interval length);
//   - intervals tile the trace: consecutive states abut with no gap or
//     overlap, and every interval carries the chain's trace index.
//
// It accepts both raw generator output and simplified chains (whose
// states are cascades over coalesced intervals).
func CheckChain(c *psm.Chain) *Report {
	const rule = "xu-wellformed"
	rep := &Report{}
	for i, s := range c.States {
		if s.ID != i {
			rep.addf(rule, Error, s.ID, -1, -1, "chain state at position %d has id %d (want %d)", i, s.ID, i)
		}
		if len(s.Alts) != 1 {
			rep.addf(rule, Error, s.ID, -1, -1, "chain state carries %d alternatives (want exactly 1 before join)", len(s.Alts))
			continue
		}
		phases := s.Alts[0].Seq.Phases
		if len(phases) == 0 {
			rep.addf(rule, Error, s.ID, -1, -1, "chain state has an empty phase cascade")
			continue
		}
		minLen, allNext := 0, true
		for _, p := range phases {
			if p.Kind == psm.Until {
				minLen += 2
				allNext = false
			} else {
				minLen++
			}
		}
		length := 0
		for _, iv := range s.Intervals {
			length += iv.Stop - iv.Start + 1
			if iv.Trace != c.Trace {
				rep.addf(rule, Error, s.ID, -1, -1,
					"supporting interval references trace %d (chain mined from trace %d)", iv.Trace, c.Trace)
			}
			if iv.Stop < iv.Start {
				rep.addf(rule, Error, s.ID, -1, -1, "supporting interval [%d,%d] is empty", iv.Start, iv.Stop)
			}
		}
		if length < minLen {
			rep.addf(rule, Error, s.ID, -1, -1,
				"assertion needs at least %d instants (until runs >= 2, next runs == 1) but the evidence spans %d", minLen, length)
		}
		if allNext && length != minLen {
			rep.addf(rule, Error, s.ID, -1, -1,
				"all-next cascade of %d phases must span exactly %d instants, evidence spans %d", len(phases), minLen, length)
		}
		if s.Power.N != length {
			rep.addf(rule, Error, s.ID, -1, -1,
				"power attributes pool n=%d observations but the supporting intervals span %d instants", s.Power.N, length)
		}
	}
	// Consecutive states must abut in the trace: the XU automaton consumes
	// the trace left to right with no gaps.
	for i := 0; i+1 < len(c.States); i++ {
		a, b := c.States[i], c.States[i+1]
		if len(a.Intervals) == 0 || len(b.Intervals) == 0 {
			continue
		}
		prev := a.Intervals[len(a.Intervals)-1]
		next := b.Intervals[0]
		if next.Start != prev.Stop+1 {
			rep.addf(rule, Error, -1, a.ID, b.ID,
				"supporting intervals do not abut: state %d ends at %d, state %d starts at %d", a.ID, prev.Stop, b.ID, next.Start)
		}
	}
	rep.Sort()
	return rep
}
