package check

import (
	"math"
	"strings"
	"testing"

	"psmkit/internal/psm"
	"psmkit/internal/stats"
)

// validDoc builds a minimal model document that passes every rule with no
// errors: two mutually exclusive propositions, two sound states in a
// cycle, and a consistent HMM.
func validDoc() *Model {
	return &Model{
		Source:   "test",
		NumProps: 2,
		PropSigs: []uint64{1, 2},
		States: []State{
			{ID: 0, Alts: []Alt{{Seq: []PhaseDoc{{Prop: 0, Kind: "U"}}, Count: 1}}, Mu: 1.0, Sigma: 0.1, N: 5},
			{ID: 1, Alts: []Alt{{Seq: []PhaseDoc{{Prop: 1, Kind: "X"}}, Count: 1}}, Mu: 2.0, Sigma: 0, N: 1},
		},
		Transitions: []Transition{
			{From: 0, To: 1, Enabling: 1, Count: 3},
			{From: 1, To: 0, Enabling: 0, Count: 3},
		},
		Initials: map[int]int{0: 1},
		HMM: &HMMDoc{
			A:  [][]float64{{0, 1}, {1, 0}},
			B:  [][]float64{{1, 0}, {0, 1}},
			Pi: []float64{1, 0},
		},
	}
}

func findingsOf(rep *Report, rule string) []Finding {
	var out []Finding
	for _, f := range rep.Findings {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

func TestValidDocPassesAllRules(t *testing.T) {
	rep := Run(validDoc(), DefaultOptions())
	if rep.HasErrors() {
		t.Fatalf("valid document produced errors:\n%v", rep.Findings)
	}
	if n := rep.Count(Warn); n != 0 {
		t.Fatalf("valid document produced %d warnings:\n%v", n, rep.Findings)
	}
}

// TestModelRules exercises every rule with one violating fixture each
// (the passing fixture is TestValidDocPassesAllRules).
func TestModelRules(t *testing.T) {
	cases := []struct {
		name     string
		mutate   func(*Model)
		rule     string
		severity Severity
		msgPart  string
	}{
		{
			name:     "props-exclusive/duplicate-signature",
			mutate:   func(m *Model) { m.PropSigs = []uint64{1, 1} },
			rule:     "props-exclusive",
			severity: Error,
			msgPart:  "mutually exclusive",
		},
		{
			name:     "structure/duplicate-state-id",
			mutate:   func(m *Model) { m.States[1].ID = 0 },
			rule:     "structure",
			severity: Error,
			msgPart:  "duplicate state id",
		},
		{
			name:     "structure/empty-assertions",
			mutate:   func(m *Model) { m.States[0].Alts = nil },
			rule:     "structure",
			severity: Error,
			msgPart:  "no characterizing assertion",
		},
		{
			name:     "structure/bad-kind",
			mutate:   func(m *Model) { m.States[0].Alts[0].Seq[0].Kind = "Z" },
			rule:     "structure",
			severity: Error,
			msgPart:  "unknown temporal kind",
		},
		{
			name:     "structure/prop-out-of-range",
			mutate:   func(m *Model) { m.States[0].Alts[0].Seq[0].Prop = 7 },
			rule:     "structure",
			severity: Error,
			msgPart:  "outside the mined set",
		},
		{
			name:     "structure/transition-to-nowhere",
			mutate:   func(m *Model) { m.Transitions[0].To = 9 },
			rule:     "structure",
			severity: Error,
			msgPart:  "non-existent state",
		},
		{
			name:     "structure/enabling-out-of-range",
			mutate:   func(m *Model) { m.Transitions[0].Enabling = 5 },
			rule:     "structure",
			severity: Error,
			msgPart:  "enabling proposition",
		},
		{
			name:     "structure/no-initials",
			mutate:   func(m *Model) { m.Initials = map[int]int{} },
			rule:     "structure",
			severity: Error,
			msgPart:  "no initial state",
		},
		{
			name:     "power-attrs/negative-sigma",
			mutate:   func(m *Model) { m.States[0].Sigma = -0.5 },
			rule:     "power-attrs",
			severity: Error,
			msgPart:  "negative power deviation",
		},
		{
			name:     "power-attrs/nan-mean",
			mutate:   func(m *Model) { m.States[0].Mu = math.NaN() },
			rule:     "power-attrs",
			severity: Error,
			msgPart:  "must be finite",
		},
		{
			name:     "power-attrs/zero-observations",
			mutate:   func(m *Model) { m.States[0].N = 0 },
			rule:     "power-attrs",
			severity: Error,
			msgPart:  "supporting instants",
		},
		{
			name:     "power-attrs/spread-on-singleton",
			mutate:   func(m *Model) { m.States[1].Sigma = 0.2 },
			rule:     "power-attrs",
			severity: Warn,
			msgPart:  "single supporting instant",
		},
		{
			name: "reachability/dead-state",
			mutate: func(m *Model) {
				m.States = append(m.States, State{
					ID: 2, Alts: []Alt{{Seq: []PhaseDoc{{Prop: 0, Kind: "U"}}, Count: 1}}, Mu: 1, Sigma: 0, N: 2,
				})
				m.Transitions = append(m.Transitions, Transition{From: 2, To: 0, Enabling: 0, Count: 1})
			},
			rule:     "reachability",
			severity: Error,
			msgPart:  "unreachable",
		},
		{
			name:     "reachability/absorbing-info",
			mutate:   func(m *Model) { m.Transitions = m.Transitions[:1] },
			rule:     "reachability",
			severity: Info,
			msgPart:  "absorbing",
		},
		{
			name: "nondeterminism/competing-transitions",
			mutate: func(m *Model) {
				m.Transitions = append(m.Transitions, Transition{From: 0, To: 0, Enabling: 1, Count: 1})
			},
			rule:     "nondeterminism",
			severity: Info,
			msgPart:  "competing transitions",
		},
		{
			name: "nondeterminism/shared-assertion",
			mutate: func(m *Model) {
				m.States[1].Alts = append(m.States[1].Alts, Alt{Seq: []PhaseDoc{{Prop: 0, Kind: "U"}}, Count: 1})
			},
			rule:     "nondeterminism",
			severity: Info,
			msgPart:  "characterizes 2 states",
		},
		{
			name:     "calibration/nan-slope",
			mutate:   func(m *Model) { m.States[0].Fit = &Fit{Slope: math.NaN(), Intercept: 1, R: 0.9} },
			rule:     "calibration",
			severity: Error,
			msgPart:  "not finite",
		},
		{
			name:     "calibration/invalid-r",
			mutate:   func(m *Model) { m.States[0].Fit = &Fit{Slope: 1, Intercept: 1, R: 1.5} },
			rule:     "calibration",
			severity: Error,
			msgPart:  "valid Pearson",
		},
		{
			name:     "hmm-shape/missing-row",
			mutate:   func(m *Model) { m.HMM.A = m.HMM.A[:1] },
			rule:     "hmm-shape",
			severity: Error,
			msgPart:  "rows for 2 states",
		},
		{
			name:     "hmm-shape/ragged-b",
			mutate:   func(m *Model) { m.HMM.B[1] = []float64{1} },
			rule:     "hmm-shape",
			severity: Error,
			msgPart:  "columns",
		},
		{
			name:     "hmm-stochastic/non-stochastic-row",
			mutate:   func(m *Model) { m.HMM.A[0] = []float64{0.2, 0.3} },
			rule:     "hmm-stochastic",
			severity: Error,
			msgPart:  "sums to",
		},
		{
			name:     "hmm-stochastic/negative-probability",
			mutate:   func(m *Model) { m.HMM.B[0] = []float64{1.5, -0.5} },
			rule:     "hmm-stochastic",
			severity: Error,
			msgPart:  "not a probability",
		},
		{
			name:     "hmm-stochastic/empty-pi",
			mutate:   func(m *Model) { m.HMM.Pi = []float64{0, 0} },
			rule:     "hmm-stochastic",
			severity: Error,
			msgPart:  "no initial mass",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := validDoc()
			tc.mutate(doc)
			rep := Run(doc, DefaultOptions())
			hits := findingsOf(rep, tc.rule)
			found := false
			for _, f := range hits {
				if f.Severity == tc.severity && strings.Contains(f.Msg, tc.msgPart) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a %v finding of rule %s containing %q, got findings:\n%v",
					tc.severity, tc.rule, tc.msgPart, rep.Findings)
			}
		})
	}
}

func TestCalibrationMinRThreshold(t *testing.T) {
	doc := validDoc()
	doc.States[0].Fit = &Fit{Slope: 1, Intercept: 0, R: 0.4}
	opts := DefaultOptions()
	opts.MinR = 0.7
	rep := Run(doc, opts)
	if len(findingsOf(rep, "calibration")) == 0 {
		t.Fatalf("|R| below MinR not flagged: %v", rep.Findings)
	}
	opts.MinR = 0
	if rep := Run(doc, opts); len(findingsOf(rep, "calibration")) != 0 {
		t.Fatalf("MinR=0 must skip the threshold check, got %v", rep.Findings)
	}
}

func TestMinSeverityFilter(t *testing.T) {
	doc := validDoc()
	doc.Transitions = doc.Transitions[:1] // absorbing state → Info finding
	opts := DefaultOptions()
	opts.MinSeverity = Warn
	rep := Run(doc, opts)
	for _, f := range rep.Findings {
		if f.Severity < Warn {
			t.Fatalf("info finding survived the severity filter: %v", f)
		}
	}
}

func TestReportSortDeterministic(t *testing.T) {
	doc := validDoc()
	doc.States[0].Sigma = -1
	doc.Transitions[0].To = 9
	a := Run(doc, DefaultOptions())
	b := Run(doc, DefaultOptions())
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("nondeterministic finding count: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i] != b.Findings[i] {
			t.Fatalf("finding %d differs across runs: %v vs %v", i, a.Findings[i], b.Findings[i])
		}
	}
	if a.Findings[0].Severity != Error {
		t.Fatalf("errors must sort first, got %v", a.Findings[0])
	}
}

// --- chain rules ------------------------------------------------------------

// mkChainState builds a chain state with one single-alternative cascade.
func mkChainState(id int, phases []psm.Phase, traceIdx, start, stop int) *psm.State {
	var m stats.Moments
	for i := start; i <= stop; i++ {
		m.Add(1.0)
	}
	return &psm.State{
		ID:        id,
		Alts:      []psm.Alt{{Seq: psm.Sequence{Phases: phases}, Count: 1}},
		Power:     m,
		Intervals: []psm.Interval{{Trace: traceIdx, Start: start, Stop: stop}},
	}
}

func validChain() *psm.Chain {
	return &psm.Chain{
		Trace: 0,
		States: []*psm.State{
			mkChainState(0, []psm.Phase{{Prop: 0, Kind: psm.Until}}, 0, 0, 3),
			mkChainState(1, []psm.Phase{{Prop: 1, Kind: psm.Next}}, 0, 4, 4),
			mkChainState(2, []psm.Phase{{Prop: 0, Kind: psm.Until}, {Prop: 1, Kind: psm.Next}}, 0, 5, 9),
		},
	}
}

func TestCheckChainValid(t *testing.T) {
	rep := CheckChain(validChain())
	if len(rep.Findings) != 0 {
		t.Fatalf("valid chain produced findings:\n%v", rep.Findings)
	}
}

func TestCheckChainViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*psm.Chain)
		msgPart string
	}{
		{
			name: "until-run-too-short",
			mutate: func(c *psm.Chain) {
				c.States[0] = mkChainState(0, []psm.Phase{{Prop: 0, Kind: psm.Until}}, 0, 0, 0)
				c.States[1] = mkChainState(1, []psm.Phase{{Prop: 1, Kind: psm.Next}}, 0, 1, 1)
				c.States[2] = mkChainState(2, []psm.Phase{{Prop: 0, Kind: psm.Until}}, 0, 2, 9)
			},
			msgPart: "at least 2 instants",
		},
		{
			name: "next-run-too-long",
			mutate: func(c *psm.Chain) {
				c.States[1] = mkChainState(1, []psm.Phase{{Prop: 1, Kind: psm.Next}}, 0, 4, 6)
				c.States[2] = mkChainState(2, []psm.Phase{{Prop: 0, Kind: psm.Until}}, 0, 7, 9)
			},
			msgPart: "all-next cascade",
		},
		{
			name: "moments-interval-mismatch",
			mutate: func(c *psm.Chain) {
				c.States[0].Power.Add(1.0) // n no longer matches the interval
			},
			msgPart: "supporting intervals span",
		},
		{
			name: "interval-gap",
			mutate: func(c *psm.Chain) {
				c.States[1].Intervals[0] = psm.Interval{Trace: 0, Start: 5, Stop: 5}
			},
			msgPart: "do not abut",
		},
		{
			name: "foreign-trace",
			mutate: func(c *psm.Chain) {
				c.States[0].Intervals[0].Trace = 3
			},
			msgPart: "references trace",
		},
		{
			name: "multiple-alternatives-before-join",
			mutate: func(c *psm.Chain) {
				c.States[0].Alts = append(c.States[0].Alts, c.States[0].Alts[0])
			},
			msgPart: "alternatives",
		},
		{
			name: "misnumbered-state",
			mutate: func(c *psm.Chain) {
				c.States[2].ID = 7
			},
			msgPart: "has id",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validChain()
			tc.mutate(c)
			rep := CheckChain(c)
			found := false
			for _, f := range rep.Findings {
				if f.Severity == Error && strings.Contains(f.Msg, tc.msgPart) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want an error finding containing %q, got:\n%v", tc.msgPart, rep.Findings)
			}
		})
	}
}

// --- generated pipeline artifacts must verify -------------------------------

func TestFromPSMOnGeneratedModel(t *testing.T) {
	// A tiny hand-built model mirroring what Join produces.
	dictStates := []*psm.State{
		{
			ID:        0,
			Alts:      []psm.Alt{{Seq: psm.Sequence{Phases: []psm.Phase{{Prop: 0, Kind: psm.Until}}}, Count: 2}},
			Power:     stats.MomentsOf([]float64{1, 1.1, 0.9, 1}),
			Intervals: []psm.Interval{{Trace: 0, Start: 0, Stop: 3}},
		},
		{
			ID:        1,
			Alts:      []psm.Alt{{Seq: psm.Sequence{Phases: []psm.Phase{{Prop: 1, Kind: psm.Next}}}, Count: 1}},
			Power:     stats.MomentsOf([]float64{2}),
			Intervals: []psm.Interval{{Trace: 0, Start: 4, Stop: 4}},
		},
	}
	m := &psm.Model{
		States: dictStates,
		Transitions: []psm.Transition{
			{From: 0, To: 1, Enabling: 1, Count: 2},
			{From: 1, To: 0, Enabling: 0, Count: 1},
		},
		Initials: map[int]int{0: 1},
	}
	doc := FromPSM(m, "test")
	if doc.NumProps != -1 {
		t.Fatalf("nil dictionary must leave NumProps unknown, got %d", doc.NumProps)
	}
	rep := Run(doc, DefaultOptions())
	if rep.HasErrors() {
		t.Fatalf("well-formed model failed verification:\n%v", rep.Findings)
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	const src = `{
	  "prop_sigs": [1, 2],
	  "states": [
	    {"id": 0, "alts": [{"seq": [{"prop": 0, "kind": "U"}], "count": 1}], "mu": 1.0, "sigma": 0.1, "n": 5},
	    {"id": 1, "alts": [{"seq": [{"prop": 1, "kind": "X"}], "count": 1}], "mu": 2.0, "sigma": 0, "n": 1}
	  ],
	  "transitions": [
	    {"from": 0, "to": 1, "enabling": 1, "count": 3},
	    {"from": 1, "to": 0, "enabling": 0, "count": 3}
	  ],
	  "initials": [{"state": 0, "count": 1}],
	  "hmm": {"a": [[0,1],[1,0]], "b": [[1,0],[0,1]], "pi": [1,0]}
	}`
	doc, err := ReadJSON(strings.NewReader(src), "inline.json")
	if err != nil {
		t.Fatal(err)
	}
	if doc.NumProps != 2 || len(doc.States) != 2 || doc.HMM == nil {
		t.Fatalf("document parsed incompletely: %+v", doc)
	}
	rep := Run(doc, DefaultOptions())
	if rep.HasErrors() {
		t.Fatalf("clean JSON document failed verification:\n%v", rep.Findings)
	}
}
