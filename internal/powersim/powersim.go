// Package powersim simulates a combined PSM model concurrently with an
// IP's functional activity (Sections III-C and V of the paper).
//
// At every simulation instant the PI/PO valuation of the IP is mapped to
// the proposition that holds (via the mined dictionary); the tracker
// follows the current power state's temporal assertion — staying through
// until phases, stepping through next phases and cascades — and traverses
// an outgoing transition when its enabling proposition fires. The power
// estimate of the instant is the current state's output function: its
// constant μ, or the Hamming-distance regression for calibrated
// data-dependent states.
//
// Non-deterministic choices (several enterable states or identical
// assertions after join) are resolved by the HMM's filtering scores, and
// the resynchronization procedure of Section V recovers from unknown
// behaviours: the wrong transition is masked in a run-local copy of the A
// matrix, and while the tracker is unsynchronized the estimate holds the
// last valid state's output (the paper notes the estimation is not
// reliable during this period — the WSP metric quantifies it).
package powersim

import (
	"psmkit/internal/hmm"
	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/psm"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// Config tunes the tracker.
type Config struct {
	// Resync enables the HMM resynchronization jump after an unknown
	// behaviour. With it disabled the tracker merely holds the last valid
	// state until a known entry proposition reappears (used by the
	// ablation benchmarks).
	Resync bool
}

// DefaultConfig enables resynchronization.
func DefaultConfig() Config { return Config{Resync: true} }

// Result summarizes one co-simulation run.
type Result struct {
	// Estimates holds the per-instant power estimates (watts).
	Estimates []float64
	// MRE is the mean relative error against the reference power trace
	// (only set by Run).
	MRE float64
	// Predictions counts state-entry decisions; WrongPredictions counts
	// the decisions later invalidated by an unknown behaviour (resync
	// events). WSP = WrongPredictions/Predictions.
	Predictions      int
	WrongPredictions int
	// UnsyncedInstants counts instants spent without a confirmed state.
	UnsyncedInstants int
	// Instants is the total number of simulated instants.
	Instants int
}

// WSP returns the wrong-state-prediction ratio of the run.
func (r *Result) WSP() float64 {
	if r.Predictions == 0 {
		if r.UnsyncedInstants > 0 {
			return 1
		}
		return 0
	}
	return float64(r.WrongPredictions) / float64(r.Predictions)
}

// cursor tracks progress through one alternative's phase cascade.
type cursor struct {
	alt      int
	phase    int
	consumed int // instants consumed in the current phase
}

// Simulator is the streaming tracker. Create it with New, feed one PI/PO
// valuation per clock cycle to Step, and read the running metrics from
// Result.
type Simulator struct {
	model     *psm.Model
	dict      *mining.Dictionary
	h         *hmm.HMM // trained matrices (scoring)
	mask      *hmm.HMM // run-local copy with resync masking
	inputCols []int
	cfg       Config

	prevRow  []logic.Vector
	prevProp int
	hasPrev  bool
	hd       float64
	hdValid  bool

	cur       int // current state id, -1 when unsynchronized
	entryFrom int // state we entered cur from, -1 if initial/jump
	lastValid int
	cursors   []cursor
	// suspended marks an unknown behaviour interrupting the current
	// state: the tracker holds the state (and its cascade progress) until
	// a known proposition reappears — Section V's "remaining in the last
	// valid state till a known behaviour is finally recognized".
	suspended bool

	fallback float64 // model-wide mean power, for the never-synced case

	res Result
}

// New builds a tracker for a model. inputCols are the functional-trace
// columns of the IP's primary inputs (used by calibrated states).
func New(model *psm.Model, inputCols []int, cfg Config) *Simulator {
	h := hmm.New(model)
	var total stats.Moments
	for _, s := range model.States {
		total.Merge(s.Power)
	}
	return &Simulator{
		model:     model,
		dict:      model.Dict,
		h:         h,
		mask:      h.Clone(),
		inputCols: inputCols,
		cfg:       cfg,
		cur:       -1,
		entryFrom: -1,
		lastValid: -1,
		fallback:  total.Mean(),
	}
}

// Result returns the metrics accumulated so far.
func (s *Simulator) Result() *Result { return &s.res }

// CurrentState returns the tracked state id, or -1 when unsynchronized.
func (s *Simulator) CurrentState() int { return s.cur }

// Step consumes one instant's PI/PO valuation and returns the power
// estimate for that instant.
//
// The row's vectors must stay valid until the next Step call and are
// not retained past it (the previous row is the tracker's input-HD
// history, refreshed every step): arena-backed callers may alternate
// two arenas, recycling the one whose row is two steps old, exactly
// like Session.AppendBatch's contract.
func (s *Simulator) Step(row []logic.Vector) float64 {
	s.res.Instants++
	if s.dict == nil || len(s.model.States) == 0 {
		// A model without a dictionary or states cannot classify any
		// behaviour: every instant is unsynchronized and the estimate
		// degrades to the model-wide mean (0 for an empty model) instead
		// of crashing the co-simulation.
		s.res.UnsyncedInstants++
		return s.fallback
	}
	var prop int
	if s.hasPrev && rowsEqual(s.prevRow, row) {
		// Fast path: the PI/PO valuation did not change (long stable
		// phases, cipher busy cycles) — same proposition, zero input HD.
		// The history must still be refreshed: callers only guarantee a
		// row's vectors outlive one Step, so holding on to an older
		// equal row would let prevRow alias storage the caller has
		// since recycled.
		s.prevRow = append(s.prevRow[:0], row...)
		prop = s.prevProp
		s.hd = 0
	} else {
		prop = s.dict.EvalRow(row)
		s.hd = 0
		if s.hasPrev {
			acc := 0
			for _, c := range s.inputCols {
				acc += row[c].HammingDistance(s.prevRow[c])
			}
			s.hd = float64(acc)
		}
		s.prevRow = append(s.prevRow[:0], row...)
		s.prevProp = prop
		s.hasPrev = true
	}
	hd := s.hd

	if prop == mining.Unknown {
		// A valuation outside the mined vocabulary: unknown behaviour.
		// If it interrupts a tracked state, the state's assertion was not
		// satisfied when expected — by the paper's definition, a wrong
		// state prediction — and the tracker suspends in place, keeping
		// the cascade progress, until a known behaviour reappears.
		if s.cur >= 0 && !s.suspended {
			s.res.WrongPredictions++
			s.suspended = true
		}
		s.res.UnsyncedInstants++
		if s.cur >= 0 {
			return s.estimate(s.cur, hd)
		}
		return s.estimate(s.lastValid, hd)
	}

	if s.cur < 0 {
		// Unsynchronized. With resynchronization on (or before the first
		// sync) any state that opens with this proposition is a candidate
		// jump target; in basic mode (Section III-C semantics) the tracker
		// only resumes when the last valid state's expected enabling
		// proposition finally fires.
		if s.cfg.Resync || s.lastValid < 0 {
			if j := s.bestEntry(-1, prop); j >= 0 {
				s.enter(j, -1, prop)
				return s.estimate(s.cur, hd)
			}
		} else if ts := s.model.OutgoingEnabled(s.lastValid, prop); len(ts) > 0 {
			best, bestScore := -1, -1.0
			for _, t := range ts {
				if sc := s.entryScore(s.lastValid, t.To, prop); sc > bestScore {
					best, bestScore = t.To, sc
				}
			}
			s.enter(best, s.lastValid, prop)
			return s.estimate(s.cur, hd)
		}
		s.res.UnsyncedInstants++
		return s.estimate(s.lastValid, hd)
	}

	// Synchronized (possibly suspended): let the state's assertion
	// consume the instant. A suspended state that accepts the instant has
	// recognized the behaviour again and resumes where it was.
	wasSuspended := s.suspended
	s.suspended = false
	if s.advanceCursors(prop) {
		return s.estimate(s.cur, hd)
	}

	// The assertion ended: traverse an outgoing transition whose
	// enabling proposition fires now.
	if ts := s.model.OutgoingEnabled(s.cur, prop); len(ts) > 0 {
		best, bestScore := -1, -1.0
		for _, t := range ts {
			if sc := s.entryScore(s.cur, t.To, prop); sc > bestScore {
				best, bestScore = t.To, sc
			}
		}
		s.enter(best, s.cur, prop)
		return s.estimate(s.cur, hd)
	}
	// Cascade restart: a joined state's recorded cascades are finite, but
	// the behaviour region they summarize can alternate indefinitely; when
	// the cascade ends on a proposition that re-opens the same state, the
	// state implicitly self-loops.
	if s.opensWith(s.cur, prop) {
		s.enter(s.cur, s.cur, prop)
		return s.estimate(s.cur, hd)
	}

	// Unknown behaviour: the prediction that brought us here was wrong
	// (unless it already failed when the suspension began).
	if !wasSuspended {
		s.res.WrongPredictions++
	}
	if s.entryFrom >= 0 {
		// Mask the transition so the resynchronization follows a
		// different path next time (Section V).
		s.mask.ZeroTransition(s.entryFrom, s.cur)
	}
	s.lastValid = s.cur
	s.cur = -1
	if s.cfg.Resync {
		if j := s.bestEntry(s.lastValid, prop); j >= 0 {
			s.enter(j, -1, prop)
			return s.estimate(s.cur, hd)
		}
	}
	s.res.UnsyncedInstants++
	return s.estimate(s.lastValid, hd)
}

// enter moves the tracker into state j, opening with proposition prop.
// from is the state traversed from (-1 for initial entries and resync
// jumps).
func (s *Simulator) enter(j, from, prop int) {
	s.res.Predictions++
	s.cur = j
	s.entryFrom = from
	s.lastValid = j
	s.suspended = false
	s.cursors = s.cursors[:0]
	for ai, a := range s.model.States[j].Alts {
		if a.Seq.Phases[0].Prop == prop {
			s.cursors = append(s.cursors, cursor{alt: ai, phase: 0, consumed: 1})
		}
	}
}

// advanceCursors lets every live alternative try to consume the instant;
// alternatives that cannot are dropped. It reports whether the state
// retained at least one live alternative.
func (s *Simulator) advanceCursors(prop int) bool {
	alts := s.model.States[s.cur].Alts
	live := s.cursors[:0]
	for _, c := range s.cursors {
		phases := alts[c.alt].Seq.Phases
		ph := phases[c.phase]
		switch {
		case ph.Kind == psm.Until && ph.Prop == prop:
			// Stay in the until phase.
			c.consumed++
			live = append(live, c)
		default:
			// The phase ended (until proposition fell, or the single next
			// instant elapsed): the cascade's following phase must open
			// with the current proposition.
			if c.phase+1 < len(phases) && phases[c.phase+1].Prop == prop {
				c.phase++
				c.consumed = 1
				live = append(live, c)
			}
			// Otherwise the alternative is complete; exit is decided at
			// the state level.
		}
	}
	s.cursors = live
	return len(s.cursors) > 0
}

// opensWith reports whether state id has an alternative opening with prop.
func (s *Simulator) opensWith(id, prop int) bool {
	for _, p := range s.model.States[id].FirstProps() {
		if p == prop {
			return true
		}
	}
	return false
}

// bestEntry returns the best state that opens with prop according to the
// (masked) HMM scores, or -1. from < 0 scores against π.
func (s *Simulator) bestEntry(from, prop int) int {
	best, bestScore := -1, 0.0
	for _, st := range s.model.States {
		opens := false
		for _, p := range st.FirstProps() {
			if p == prop {
				opens = true
				break
			}
		}
		if !opens {
			continue
		}
		sc := s.entryScore(from, st.ID, prop)
		// Prefer any opening state over none, even with zero score (a
		// masked or unseeded path is still better than losing sync).
		if best < 0 || sc > bestScore {
			best, bestScore = st.ID, sc
		}
	}
	return best
}

// entryScore ranks entering state j from state i (or from π when i < 0)
// observing an assertion of j that opens with prop.
func (s *Simulator) entryScore(i, j, prop int) float64 {
	bestObs := -1.0
	for _, a := range s.model.States[j].Alts {
		if a.Seq.Phases[0].Prop != prop {
			continue
		}
		obs := s.mask.Observation(a.Seq.Key())
		if sc := s.mask.Score(i, j, obs); sc > bestObs {
			bestObs = sc
		}
	}
	if bestObs < 0 {
		return 0
	}
	return bestObs
}

// estimate evaluates a state's output function; a negative id falls back
// to the model-wide mean (never synchronized yet).
func (s *Simulator) estimate(id int, hd float64) float64 {
	if id < 0 {
		return s.fallback
	}
	return s.model.States[id].Estimate(hd)
}

// rowsEqual reports whether two valuations of the same schema coincide.
func rowsEqual(a, b []logic.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// Run replays a functional trace through a fresh tracker, recording the
// per-instant estimates, and — when a reference power trace is supplied —
// the mean relative error against it.
func Run(model *psm.Model, ft *trace.Functional, inputCols []int, ref *trace.Power, cfg Config) *Result {
	sim := New(model, inputCols, cfg)
	est := make([]float64, 0, ft.Len())
	for t := 0; t < ft.Len(); t++ {
		est = append(est, sim.Step(ft.Row(t)))
	}
	res := sim.res
	res.Estimates = est
	if ref != nil {
		n := ft.Len()
		if ref.Len() < n {
			n = ref.Len()
		}
		res.MRE = stats.MeanRelativeError(est[:n], ref.Values[:n])
	}
	return &res
}
