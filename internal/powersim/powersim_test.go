package powersim

import (
	"math"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/psm"
	"psmkit/internal/trace"
)

// fixture builds a training world with an off/idle/run protocol driven by
// three 1-bit signals, a deterministic power profile, and the mined model.
type fixture struct {
	ft    *trace.Functional
	pw    *trace.Power
	dict  *mining.Dictionary
	model *psm.Model
	cols  []int
}

// protocol appends segments of (on, ready, start) triples with per-
// segment power.
type segment struct {
	on, ready, start uint64
	n                int
	power            float64
}

func buildTrace(segs []segment) (*trace.Functional, *trace.Power) {
	f := trace.NewFunctional([]trace.Signal{
		{Name: "on", Width: 1}, {Name: "ready", Width: 1}, {Name: "start", Width: 1},
	})
	var pw []float64
	for _, s := range segs {
		for i := 0; i < s.n; i++ {
			f.Append([]logic.Vector{
				logic.FromUint64(1, s.on), logic.FromUint64(1, s.ready), logic.FromUint64(1, s.start),
			})
			pw = append(pw, s.power)
		}
	}
	return f, &trace.Power{Values: pw}
}

func trainingSegments() []segment {
	// The mid-trace power-down matters: the generator drops the trace's
	// final run (it has no successor), so every transition the replay
	// needs — including idle→off — must occur mid-trace at least once.
	return []segment{
		{0, 0, 0, 6, 0.001}, // off
		{1, 1, 0, 6, 0.015}, // idle
		{1, 1, 1, 8, 0.100}, // run
		{1, 1, 0, 6, 0.015}, // idle
		{0, 0, 0, 5, 0.001}, // off (mid-trace power-down)
		{1, 1, 0, 5, 0.015}, // idle
		{1, 1, 1, 5, 0.100}, // run again
		{1, 1, 0, 4, 0.015}, // idle
		{0, 0, 0, 4, 0.001}, // off (terminator, dropped by the generator)
	}
}

func build(t *testing.T, segs []segment) *fixture {
	t.Helper()
	ft, pw := buildTrace(segs)
	dict, pts, err := mining.Mine([]*trace.Functional{ft}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := psm.Generate(dict, pts[0], pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := psm.Join([]*psm.Chain{psm.Simplify(c, psm.DefaultMergePolicy())}, psm.DefaultMergePolicy())
	return &fixture{ft: ft, pw: pw, dict: dict, model: model, cols: []int{0, 1, 2}}
}

func TestTrackingOnTrainingTrace(t *testing.T) {
	fx := build(t, trainingSegments())
	res := Run(fx.model, fx.ft, fx.cols, fx.pw, DefaultConfig())
	if res.WrongPredictions != 0 {
		t.Errorf("wrong predictions on the training trace: %d", res.WrongPredictions)
	}
	if res.UnsyncedInstants != 0 {
		t.Errorf("unsynced instants on the training trace: %d", res.UnsyncedInstants)
	}
	if res.WSP() != 0 {
		t.Errorf("WSP = %g", res.WSP())
	}
	// The power profile is piecewise-constant and fully covered by the
	// mined states: estimates must be nearly exact everywhere except the
	// final (dropped) run.
	if res.MRE > 0.01 {
		t.Errorf("MRE = %g on the training trace", res.MRE)
	}
	if res.Instants != fx.ft.Len() {
		t.Errorf("Instants = %d, want %d", res.Instants, fx.ft.Len())
	}
}

func TestTrackingDisambiguatesByContext(t *testing.T) {
	// Idle and run share no proposition here, but the two idle segments
	// (same proposition, same power) were joined into one state entered
	// from different contexts; make sure repeated cycles keep tracking.
	segs := append([]segment{}, trainingSegments()...)
	fx := build(t, segs)
	// Simulate a longer trace with extra repetitions of the same cycle.
	long := []segment{
		{0, 0, 0, 6, 0.001},
		{1, 1, 0, 6, 0.015},
		{1, 1, 1, 8, 0.100},
		{1, 1, 0, 6, 0.015},
		{1, 1, 1, 8, 0.100},
		{1, 1, 0, 6, 0.015},
		{1, 1, 1, 5, 0.100},
		{1, 1, 0, 4, 0.015},
		{0, 0, 0, 6, 0.001},
		{1, 1, 0, 6, 0.015},
		{1, 1, 1, 8, 0.100},
		{1, 1, 0, 4, 0.015},
		{0, 0, 0, 4, 0.001},
	}
	lft, lpw := buildTrace(long)
	res := Run(fx.model, lft, fx.cols, lpw, DefaultConfig())
	if res.MRE > 0.02 {
		t.Errorf("MRE = %g on extended trace", res.MRE)
	}
	if res.WSP() != 0 {
		t.Errorf("WSP = %g (wrong=%d of %d)", res.WSP(), res.WrongPredictions, res.Predictions)
	}
}

func TestUnknownValuationLosesSyncAndRecovers(t *testing.T) {
	fx := build(t, trainingSegments())
	// Inject a valuation whose proposition was never mined: on=0 ready=1.
	weird := []segment{
		{0, 0, 0, 6, 0.001},
		{0, 1, 0, 3, 0.5}, // unknown behaviour
		{0, 0, 0, 5, 0.001},
		{1, 1, 0, 4, 0.015},
	}
	wft, wpw := buildTrace(weird)
	res := Run(fx.model, wft, fx.cols, wpw, DefaultConfig())
	if res.UnsyncedInstants == 0 {
		t.Error("unknown valuation did not lose sync")
	}
	// Recovery: the last segment must be tracked again — its estimates
	// must match the idle power.
	est := res.Estimates
	for i := len(est) - 3; i < len(est); i++ {
		if math.Abs(est[i]-0.015) > 0.002 {
			t.Errorf("instant %d estimate %g, want ~0.015 (recovered idle)", i, est[i])
		}
	}
	_ = wpw
}

func TestUnknownTransitionCountsWrongPrediction(t *testing.T) {
	fx := build(t, trainingSegments())
	// Known propositions, impossible order: off → run directly (training
	// always had idle in between).
	weird := []segment{
		{0, 0, 0, 6, 0.001},
		{1, 1, 1, 8, 0.100},
		{1, 1, 0, 6, 0.015},
	}
	wft, wpw := buildTrace(weird)
	res := Run(fx.model, wft, fx.cols, wpw, DefaultConfig())
	if res.WrongPredictions == 0 {
		t.Error("impossible order did not count a wrong prediction")
	}
	if res.WSP() <= 0 {
		t.Errorf("WSP = %g", res.WSP())
	}
	// Resync must still land in the run state and estimate ~0.1 for the
	// bulk of the run segment.
	mid := 10
	if math.Abs(res.Estimates[mid]-0.100) > 0.01 {
		t.Errorf("estimate during resynced run = %g", res.Estimates[mid])
	}
}

func TestResyncDisabledHoldsLastValid(t *testing.T) {
	fx := build(t, trainingSegments())
	weird := []segment{
		{0, 0, 0, 6, 0.001},
		{1, 1, 1, 8, 0.100},
	}
	wft, _ := buildTrace(weird)
	res := Run(fx.model, wft, fx.cols, nil, Config{Resync: false})
	// Without resync the tracker holds the off state's power after the
	// impossible transition.
	last := res.Estimates[len(res.Estimates)-1]
	if math.Abs(last-0.001) > 0.0005 {
		t.Errorf("estimate without resync = %g, want held ~0.001", last)
	}
	if res.UnsyncedInstants == 0 {
		t.Error("expected unsynced instants with resync disabled")
	}
}

func TestNeverSyncedFallsBackToModelMean(t *testing.T) {
	fx := build(t, trainingSegments())
	// A trace made solely of unknown valuations.
	weird := []segment{{0, 1, 1, 5, 0.05}}
	wft, _ := buildTrace(weird)
	res := Run(fx.model, wft, fx.cols, nil, DefaultConfig())
	if res.UnsyncedInstants != 5 {
		t.Errorf("unsynced = %d, want 5", res.UnsyncedInstants)
	}
	// Fallback is the pooled mean of all states: strictly between off and
	// run power.
	for _, e := range res.Estimates {
		if e <= 0.001 || e >= 0.1 {
			t.Errorf("fallback estimate %g outside (0.001, 0.1)", e)
		}
	}
	if res.WSP() != 1 {
		t.Errorf("WSP with zero predictions and unsynced instants = %g, want 1", res.WSP())
	}
}

func TestStreamingSimulatorMatchesRun(t *testing.T) {
	fx := build(t, trainingSegments())
	sim := New(fx.model, fx.cols, DefaultConfig())
	var est []float64
	for i := 0; i < fx.ft.Len(); i++ {
		est = append(est, sim.Step(fx.ft.Row(i)))
	}
	res := Run(fx.model, fx.ft, fx.cols, fx.pw, DefaultConfig())
	if len(est) != len(res.Estimates) {
		t.Fatal("length mismatch")
	}
	for i := range est {
		if est[i] != res.Estimates[i] {
			t.Fatalf("instant %d: streaming %g != batch %g", i, est[i], res.Estimates[i])
		}
	}
	if sim.Result().Instants != fx.ft.Len() {
		t.Error("streaming result instants wrong")
	}
	if sim.CurrentState() < 0 {
		t.Error("tracker should end synchronized on the training trace")
	}
}

func TestCalibratedStateUsesRegression(t *testing.T) {
	// Build a model with a data-dependent busy state: power = 1 + 2*HD.
	f := trace.NewFunctional([]trace.Signal{{Name: "we", Width: 1}, {Name: "d", Width: 8}})
	var pwv []float64
	for i := 0; i < 6; i++ {
		f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
		pwv = append(pwv, 0.5)
	}
	data := []uint64{0xff, 0x0f, 0xf0, 0x01, 0xff, 0x00, 0xaa, 0x55, 0x3c, 0xc3}
	for _, d := range data {
		f.Append([]logic.Vector{logic.FromUint64(1, 1), logic.FromUint64(8, d)})
		pwv = append(pwv, 0) // filled from HD below
	}
	for i := 0; i < 4; i++ {
		f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
		pwv = append(pwv, 0.5)
	}
	cols := []int{0, 1}
	hds := f.InputHammingDistance(cols)
	for i := 6; i < 6+len(data); i++ {
		pwv[i] = 1 + 2*hds[i]
	}
	pw := &trace.Power{Values: pwv}
	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := psm.Generate(dict, pts[0], pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := psm.Join([]*psm.Chain{psm.Simplify(ch, psm.DefaultMergePolicy())}, psm.DefaultMergePolicy())
	n := psm.Calibrate(model, []*trace.Functional{f}, []*trace.Power{pw}, cols, psm.DefaultCalibrationPolicy())
	if n == 0 {
		t.Fatal("no state calibrated")
	}
	res := Run(model, f, cols, pw, DefaultConfig())
	if res.MRE > 0.01 {
		t.Errorf("calibrated MRE = %g, want ~0 (exact linear model)", res.MRE)
	}
	// Without calibration, the same model must do visibly worse.
	model2 := psm.Join([]*psm.Chain{psm.Simplify(ch, psm.DefaultMergePolicy())}, psm.DefaultMergePolicy())
	res2 := Run(model2, f, cols, pw, DefaultConfig())
	if res2.MRE <= res.MRE {
		t.Errorf("uncalibrated MRE %g not worse than calibrated %g", res2.MRE, res.MRE)
	}
}

func TestWSPZeroDenominator(t *testing.T) {
	r := &Result{}
	if r.WSP() != 0 {
		t.Error("empty result WSP should be 0")
	}
}

func TestSuspensionPreservesCascadeProgress(t *testing.T) {
	// Train with a run cycle, then interrupt mid-run with an unknown
	// valuation: the tracker must suspend in the run state, keep
	// estimating its power, and resume it seamlessly — finishing the run
	// and the following idle without any extra wrong prediction.
	fx := build(t, trainingSegments())
	segs := []segment{
		{0, 0, 0, 6, 0.001},
		{1, 1, 0, 5, 0.015},
		{1, 1, 1, 4, 0.100}, // first half of the run
		{0, 1, 1, 3, 0.200}, // unknown valuation (never trained)
		{1, 1, 1, 4, 0.100}, // run resumes
		{1, 1, 0, 5, 0.015},
	}
	wft, _ := buildTrace(segs)
	res := Run(fx.model, wft, fx.cols, nil, DefaultConfig())

	// Exactly one wrong prediction: the interruption itself.
	if res.WrongPredictions != 1 {
		t.Errorf("wrong predictions = %d, want 1", res.WrongPredictions)
	}
	if res.UnsyncedInstants != 3 {
		t.Errorf("unsynced instants = %d, want 3 (the stall)", res.UnsyncedInstants)
	}
	// During the suspension the estimate holds the run state's power.
	for i := 15; i < 18; i++ {
		if est := res.Estimates[i]; est < 0.09 || est > 0.11 {
			t.Errorf("suspended estimate[%d] = %g, want ~0.1", i, est)
		}
	}
	// After resumption the run keeps tracking, and the final idle too.
	if est := res.Estimates[19]; est < 0.09 || est > 0.11 {
		t.Errorf("resumed run estimate = %g", est)
	}
	last := res.Estimates[len(res.Estimates)-1]
	if last < 0.013 || last > 0.017 {
		t.Errorf("final idle estimate = %g, want ~0.015", last)
	}
}

func TestMaskedTransitionAvoidedOnRetry(t *testing.T) {
	// Force two consecutive impossible orders: the first wrong prediction
	// masks the guilty transition, so the second retry scores paths
	// without it (exercises the resynchronization masking of Section V).
	fx := build(t, trainingSegments())
	segs := []segment{
		{0, 0, 0, 4, 0.001},
		{1, 1, 1, 6, 0.100}, // off → run (never trained)
		{0, 0, 0, 4, 0.001}, // run → off (never trained)
		{1, 1, 1, 6, 0.100}, // off → run again
		{1, 1, 0, 4, 0.015},
	}
	wft, _ := buildTrace(segs)
	res := Run(fx.model, wft, fx.cols, nil, DefaultConfig())
	if res.WrongPredictions == 0 {
		t.Fatal("expected wrong predictions")
	}
	// Despite the wrongs, the run segments must be estimated as run power
	// (resync lands in the right state every time).
	for _, i := range []int{7, 16} {
		if est := res.Estimates[i]; est < 0.09 || est > 0.11 {
			t.Errorf("estimate[%d] = %g, want ~0.1", i, est)
		}
	}
}

func TestRowFastPathMatchesSlowPath(t *testing.T) {
	// The unchanged-row fast path must agree with re-evaluating every
	// row: run the same trace through two trackers, one fed cloned rows
	// (forcing full evaluation is not possible directly, but identical
	// results across repeated runs guard the cache against staleness).
	fx := build(t, trainingSegments())
	a := New(fx.model, fx.cols, DefaultConfig())
	b := New(fx.model, fx.cols, DefaultConfig())
	for i := 0; i < fx.ft.Len(); i++ {
		ra := fx.ft.Row(i)
		// b receives a fresh copy of the row each cycle.
		rb := append([]logic.Vector(nil), ra...)
		ea, eb := a.Step(ra), b.Step(rb)
		if ea != eb {
			t.Fatalf("instant %d: %g vs %g", i, ea, eb)
		}
	}
}

// TestStepWithRotatingArenasMatchesFreshRows pins the contract a row's
// vectors only need to outlive one Step. It replays the serving loop's
// exact memory discipline — two logic.Arenas, the older one Reset and
// reparsed into each record — against a twin simulator fed freshly
// allocated rows. The trace opens with a stable phase, the case where a
// stale prevRow would alias the recycled arena (the fast path would then
// compare the incoming row against its own storage, sticking to the old
// proposition with hd=0 even after the valuation changes).
func TestStepWithRotatingArenasMatchesFreshRows(t *testing.T) {
	fx := build(t, trainingSegments())
	a := New(fx.model, fx.cols, DefaultConfig())
	b := New(fx.model, fx.cols, DefaultConfig())
	var (
		arenas [2]logic.Arena
		row    []logic.Vector
		hex    []byte
	)
	for i := 0; i < fx.ft.Len(); i++ {
		fresh := fx.ft.Row(i)
		ar := &arenas[i&1]
		ar.Reset()
		row = row[:0]
		for _, v := range fresh {
			hex = v.AppendHex(hex[:0])
			pv, err := ar.ParseHex(v.Width(), hex)
			if err != nil {
				t.Fatal(err)
			}
			row = append(row, pv)
		}
		ea := a.Step(row)
		eb := b.Step(append([]logic.Vector(nil), fresh...))
		if ea != eb {
			t.Fatalf("instant %d: arena-fed estimate %g, fresh-row estimate %g", i, ea, eb)
		}
	}
	ra, rb := a.Result(), b.Result()
	if ra.WrongPredictions != rb.WrongPredictions || ra.UnsyncedInstants != rb.UnsyncedInstants {
		t.Fatalf("result divergence: arena %+v vs fresh %+v", ra, rb)
	}
}

// TestEmptyModelDegradesGracefully: simulating against a model with no
// states (or no dictionary) must not panic — every instant is unsynced
// and the estimate falls back to the model-wide mean, 0 for an empty
// model. The serving path can race a fresh daemon with an estimate
// request, so this path is reachable from the outside.
func TestEmptyModelDegradesGracefully(t *testing.T) {
	empty := &psm.Model{Initials: map[int]int{}}
	sim := New(empty, nil, DefaultConfig())
	row := []logic.Vector{logic.FromUint64(1, 1)}
	for i := 0; i < 5; i++ {
		if est := sim.Step(row); est != 0 {
			t.Fatalf("instant %d: estimate %g from an empty model, want 0", i, est)
		}
	}
	res := sim.Result()
	if res.Instants != 5 || res.UnsyncedInstants != 5 {
		t.Fatalf("result %+v, want 5 instants all unsynced", res)
	}
	if res.WSP() != 1 {
		t.Fatalf("WSP %g for a never-synced run, want 1", res.WSP())
	}

	// Run over a functional trace: same degradation, MRE defined.
	ft := trace.NewFunctional([]trace.Signal{{Name: "x", Width: 1}})
	for i := 0; i < 4; i++ {
		ft.Append(row)
	}
	ref := &trace.Power{Values: []float64{1, 1, 1, 1}}
	r := Run(empty, ft, nil, ref, DefaultConfig())
	if len(r.Estimates) != 4 {
		t.Fatalf("run produced %d estimates", len(r.Estimates))
	}
	if math.IsNaN(r.MRE) || math.IsInf(r.MRE, 0) {
		t.Fatalf("MRE %g not finite", r.MRE)
	}
}

// TestZeroVarianceStates: a model whose states all have σ = 0 (perfectly
// constant per-mode power) must track and estimate exactly — degenerate
// variances feed the merge t-test, the HMM training and the estimate
// path, and none of them may emit NaN.
func TestZeroVarianceStates(t *testing.T) {
	// trainingSegments uses constant power per mode, so the generated
	// states are exactly zero-variance.
	fx := build(t, trainingSegments())
	for _, s := range fx.model.States {
		// The pooled σ is zero up to float cancellation in Sum/SumSq.
		if sd := s.Power.StdDev(); sd > 1e-6 {
			t.Fatalf("state %d has σ=%g, fixture should be zero-variance", s.ID, sd)
		}
	}
	sim := New(fx.model, fx.cols, DefaultConfig())
	for i := 0; i < fx.ft.Len(); i++ {
		est := sim.Step(fx.ft.Row(i))
		if math.IsNaN(est) || math.IsInf(est, 0) {
			t.Fatalf("instant %d: estimate %g", i, est)
		}
	}
	res := sim.Result()
	if res.WSP() != 0 {
		t.Fatalf("training replay of a zero-variance model lost sync: %+v", res)
	}
}
