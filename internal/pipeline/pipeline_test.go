package pipeline_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"psmkit/internal/experiment"
	"psmkit/internal/mining"
	"psmkit/internal/pipeline"
	"psmkit/internal/psm"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// exportBytes renders the model through both canonical exporters.
func exportBytes(t *testing.T, m *psm.Model) ([]byte, []byte) {
	t.Helper()
	var dot, js bytes.Buffer
	if err := m.WriteDOT(&dot, "m"); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return dot.Bytes(), js.Bytes()
}

// ipTraces simulates a benchmark IP into a small training set.
func ipTraces(t testing.TB, name string, total, pieces int) *experiment.TraceSet {
	t.Helper()
	c, err := experiment.CaseByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := experiment.GenerateTraces(c, total, pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestBuildModelMatchesSequentialOnIPs is the core determinism contract:
// on real benchmark workloads the parallel flow must reproduce the
// sequential experiment.BuildModel byte for byte in both exporters, for
// every worker count.
func TestBuildModelMatchesSequentialOnIPs(t *testing.T) {
	for _, name := range []string{"RAM", "MultSum", "AES"} {
		t.Run(name, func(t *testing.T) {
			ts := ipTraces(t, name, 2400, experiment.Pieces)
			pol := experiment.DefaultPolicies()
			flow, err := experiment.BuildModel(ts, pol)
			if err != nil {
				t.Fatal(err)
			}
			wantDOT, wantJSON := exportBytes(t, flow.Model)

			for _, workers := range []int{1, 2, 3, 4, 8} {
				cfg := pipeline.Config{
					Workers:     workers,
					Mining:      pol.Mining,
					Merge:       pol.Merge,
					Calibration: pol.Calibration,
				}
				m, err := pipeline.BuildModel(context.Background(), ts.FTs, ts.PWs, ts.InputCols, cfg)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				gotDOT, gotJSON := exportBytes(t, m)
				if !bytes.Equal(wantDOT, gotDOT) {
					t.Errorf("workers=%d: DOT export differs from sequential flow", workers)
				}
				if !bytes.Equal(wantJSON, gotJSON) {
					t.Errorf("workers=%d: JSON export differs from sequential flow", workers)
				}
			}
		})
	}
}

// TestTreeJoinMatchesJoin drives the tree join alone over chain counts
// that exercise odd/even tree shapes, including the degenerate ones.
func TestTreeJoinMatchesJoin(t *testing.T) {
	ts := ipTraces(t, "RAM", 3500, 7)
	pol := experiment.DefaultPolicies()

	// Rebuild the simplified chains once, sequentially.
	for n := 0; n <= 7; n++ {
		chains := buildChains(t, ts, pol, n)
		want := psm.Join(chains, pol.Merge)
		for _, workers := range []int{1, 2, 4} {
			got, err := pipeline.TreeJoin(context.Background(), chains, pol.Merge, workers)
			if err != nil {
				t.Fatal(err)
			}
			wd, wj := exportBytes(t, want)
			gd, gj := exportBytes(t, got)
			if n == 0 {
				// An empty join has no dictionary; exports are not
				// meaningful, compare structure only.
				if got.NumStates() != want.NumStates() || got.NumTransitions() != want.NumTransitions() {
					t.Errorf("n=0 workers=%d: empty join mismatch", workers)
				}
				continue
			}
			if !bytes.Equal(wd, gd) || !bytes.Equal(wj, gj) {
				t.Errorf("n=%d workers=%d: tree join differs from psm.Join", n, workers)
			}
		}
	}
}

// buildChains mines the first n traces of ts sequentially and returns
// their simplified chains.
func buildChains(t *testing.T, ts *experiment.TraceSet, pol experiment.Policies, n int) []*psm.Chain {
	t.Helper()
	if n == 0 {
		return nil
	}
	dict, pts, err := mining.Mine(ts.FTs[:n], pol.Mining)
	if err != nil {
		t.Fatal(err)
	}
	var chains []*psm.Chain
	for i, pt := range pts {
		c, err := psm.Generate(dict, pt, ts.PWs[i], i)
		if err != nil {
			t.Fatal(err)
		}
		chains = append(chains, psm.Simplify(c, pol.Merge))
	}
	return chains
}

// TestBuildModelErrorPropagation feeds a power trace that is too short
// for its functional trace: the per-chain stage must surface the error.
func TestBuildModelErrorPropagation(t *testing.T) {
	ts := ipTraces(t, "RAM", 1200, 3)
	pws := append([]*trace.Power(nil), ts.PWs...)
	pws[1] = &trace.Power{Values: pws[1].Values[:3]}
	cfg := pipeline.DefaultConfig()
	cfg.Workers = 4
	_, err := pipeline.BuildModel(context.Background(), ts.FTs, pws, ts.InputCols, cfg)
	if err == nil {
		t.Fatal("short power trace accepted")
	}
	if !strings.Contains(err.Error(), "trace 1") {
		t.Errorf("error does not name the failing trace: %v", err)
	}

	if _, err := pipeline.BuildModel(context.Background(), ts.FTs, pws[:2], ts.InputCols, cfg); err == nil {
		t.Fatal("mismatched trace list lengths accepted")
	}
}

// TestBuildModelCancellation aborts mid-flow.
func TestBuildModelCancellation(t *testing.T) {
	ts := ipTraces(t, "RAM", 1200, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := pipeline.DefaultConfig()
	cfg.Workers = 4
	if _, err := pipeline.BuildModel(ctx, ts.FTs, ts.PWs, ts.InputCols, cfg); err != context.Canceled {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
}
