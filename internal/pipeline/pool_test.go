package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		var hits [100]int32
		err := ForEach(context.Background(), workers, len(hits), func(_ context.Context, i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 2, 8} {
		var ran int32
		err := ForEach(context.Background(), workers, 1000, func(_ context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return fmt.Errorf("item %d: %w", i, boom)
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if n := atomic.LoadInt32(&ran); n == 1000 {
			t.Errorf("workers=%d: pool did not stop after the failure", workers)
		}
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	// Both items fail; the slower, lower-index failure must be reported.
	errLow := errors.New("low")
	errHigh := errors.New("high")
	err := ForEach(context.Background(), 2, 2, func(_ context.Context, i int) error {
		if i == 0 {
			time.Sleep(20 * time.Millisecond)
			return errLow
		}
		return errHigh
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want the lowest-index error", err)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 4, 1<<30, func(c context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			select {
			case <-c.Done():
			case <-time.After(time.Millisecond):
			}
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if atomic.LoadInt32(&ran) == 1<<30 {
		t.Error("cancellation did not stop the pool")
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Error("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
