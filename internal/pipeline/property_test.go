package pipeline_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"psmkit/internal/experiment"
	"psmkit/internal/logic"
	"psmkit/internal/pipeline"
	"psmkit/internal/trace"
)

// propCase is one randomized trace set: the input of both flows.
type propCase struct {
	fts  []*trace.Functional
	pws  []*trace.Power
	cols []int
}

func (c propCase) String() string {
	var lens []int
	for _, ft := range c.fts {
		lens = append(lens, ft.Len())
	}
	return fmt.Sprintf("traces=%d lens=%v inputs=%v", len(c.fts), lens, c.cols)
}

// genCase draws a random trace set: a mixed-width schema, run-structured
// valuations (so the miner finds stable atoms), and a power trace whose
// level tracks the control state with data-dependent jitter (so simplify,
// join and calibration all have real merge decisions to make).
func genCase(rng *rand.Rand) propCase {
	sigs := []trace.Signal{
		{Name: "en", Width: 1},
		{Name: "busy", Width: 1},
		{Name: "op", Width: 2},
		{Name: "a", Width: 4},
		{Name: "b", Width: 4},
	}
	nTraces := 1 + rng.Intn(4)
	var c propCase
	c.cols = []int{0, 2, 3} // en, op, a
	for i := 0; i < nTraces; i++ {
		n := 30 + rng.Intn(270)
		ft := trace.NewFunctional(sigs)
		pw := &trace.Power{}
		row := make([]logic.Vector, len(sigs))
		for j, s := range sigs {
			row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
		}
		for t := 0; t < n; t++ {
			for j, s := range sigs {
				// Control signals (narrow) change rarely, data often.
				p := 0.08
				if s.Width > 2 {
					p = 0.4
				}
				if rng.Float64() < p {
					row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
				}
			}
			ft.Append(row)
			level := 1.0
			if row[0].Bit(0) == 1 {
				level += 2.5
			}
			if row[1].Bit(0) == 1 {
				level += 1.2
			}
			hw := 0.0
			for b := 0; b < 4; b++ {
				hw += float64(row[3].Bit(b))
			}
			pw.Values = append(pw.Values, level+0.15*hw+0.01*rng.NormFloat64())
		}
		c.fts = append(c.fts, ft)
		c.pws = append(c.pws, pw)
	}
	return c
}

// runBoth executes the sequential and parallel flows and returns a
// non-empty mismatch description when they disagree. Both flows failing
// (for any reason) counts as agreement; exactly one failing does not.
func runBoth(c propCase, workers int) string {
	pol := experiment.DefaultPolicies()
	ts := &experiment.TraceSet{FTs: c.fts, PWs: c.pws, InputCols: c.cols}
	flow, seqErr := experiment.BuildModel(ts, pol)

	cfg := pipeline.Config{Workers: workers, Mining: pol.Mining, Merge: pol.Merge, Calibration: pol.Calibration}
	par, parErr := pipeline.BuildModel(context.Background(), c.fts, c.pws, c.cols, cfg)

	switch {
	case seqErr != nil && parErr != nil:
		return ""
	case seqErr != nil:
		return fmt.Sprintf("sequential failed (%v) but parallel succeeded", seqErr)
	case parErr != nil:
		return fmt.Sprintf("parallel failed (%v) but sequential succeeded", parErr)
	}

	seq := flow.Model
	if seq.NumStates() != par.NumStates() || seq.NumTransitions() != par.NumTransitions() {
		return fmt.Sprintf("shape differs: seq %d states/%d transitions, par %d/%d",
			seq.NumStates(), seq.NumTransitions(), par.NumStates(), par.NumTransitions())
	}
	var seqDOT, parDOT, seqJSON, parJSON bytes.Buffer
	if err := seq.WriteDOT(&seqDOT, "m"); err != nil {
		return err.Error()
	}
	if err := par.WriteDOT(&parDOT, "m"); err != nil {
		return err.Error()
	}
	if !bytes.Equal(seqDOT.Bytes(), parDOT.Bytes()) {
		return "DOT exports differ"
	}
	if err := seq.WriteJSON(&seqJSON); err != nil {
		return err.Error()
	}
	if err := par.WriteJSON(&parJSON); err != nil {
		return err.Error()
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		return "JSON exports differ"
	}
	return ""
}

// shrink greedily reduces a failing case while it keeps failing: first
// dropping whole traces, then repeatedly halving trace lengths. The
// returned case is locally minimal for these moves.
func shrink(c propCase, workers int) propCase {
	improved := true
	for improved {
		improved = false
		// Drop one trace at a time.
		for i := 0; i < len(c.fts) && len(c.fts) > 1; i++ {
			cand := propCase{cols: c.cols}
			cand.fts = append(append([]*trace.Functional{}, c.fts[:i]...), c.fts[i+1:]...)
			cand.pws = append(append([]*trace.Power{}, c.pws[:i]...), c.pws[i+1:]...)
			if runBoth(cand, workers) != "" {
				c = cand
				improved = true
				break
			}
		}
		// Halve each trace.
		for i := range c.fts {
			n := c.fts[i].Len()
			if n < 8 {
				continue
			}
			cand := propCase{cols: c.cols, fts: append([]*trace.Functional{}, c.fts...), pws: append([]*trace.Power{}, c.pws...)}
			cand.fts[i] = c.fts[i].Slice(0, n/2)
			cand.pws[i] = &trace.Power{Values: c.pws[i].Values[:n/2]}
			if runBoth(cand, workers) != "" {
				c = cand
				improved = true
				break
			}
		}
	}
	return c
}

// TestPropertyParallelEquivalence is the randomized equivalence suite:
// for a fixed set of seeds, parallel BuildModel must agree with the
// sequential flow on states, transitions, power attributes and the
// exported JSON/DOT bytes. Failures are shrunk to a minimal trace set
// and reported with the seed so they replay deterministically.
func TestPropertyParallelEquivalence(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		c := genCase(rng)
		for _, workers := range []int{2, 4} {
			if msg := runBoth(c, workers); msg != "" {
				min := shrink(c, workers)
				t.Fatalf("seed %d workers %d: %s\nshrunk to: %s (was %s)\nre-run with rand.NewSource(%d) to reproduce",
					seed, workers, msg, min, c, seed)
			}
		}
	}
}
