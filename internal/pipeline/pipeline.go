// Package pipeline is the concurrency layer of the PSM flow: it fans the
// embarrassingly parallel per-trace stages of the paper's pipeline —
// assertion mining's row evaluation, proposition-trace rewriting, the XU
// PSMGenerator and chain simplification — out over a bounded worker pool
// and merges the per-chain results deterministically.
//
// Determinism is the design constraint. Every fan-out writes results into
// index-addressed slots; the mined proposition ids are replayed
// sequentially in trace order (mining.MineParallel); and the join
// assembles the pooled model through a fixed-order pairwise tree of
// psm.Concat steps — pure, associative concatenation — before running
// the order-dependent collapse once at the root via psm.JoinPooled, the
// exact code path the sequential psm.Join uses. The model produced with
// any worker count is therefore bit-identical to the sequential flow
// (internal/check verifies it, and the sorted DOT/JSON exporters make
// the guarantee byte-testable; the property suite in property_test.go
// exercises it on randomized trace sets).
package pipeline

import (
	"context"
	"fmt"
	"runtime"

	"psmkit/internal/mining"
	"psmkit/internal/obs"
	"psmkit/internal/psm"
	"psmkit/internal/trace"
)

// Config bundles the flow policies and the worker budget.
type Config struct {
	// Workers bounds the goroutines used by each stage; ≤ 0 selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Mining, Merge and Calibration are the paper-flow tunables, exactly
	// as in the sequential pipeline.
	Mining      mining.Config
	Merge       psm.MergePolicy
	Calibration psm.CalibrationPolicy
	// SkipCalibration disables the Hamming-distance regression.
	SkipCalibration bool
}

// DefaultConfig returns the paper-reproduction policies with the worker
// count left at GOMAXPROCS.
func DefaultConfig() Config {
	return Config{
		Mining:      mining.DefaultConfig(),
		Merge:       psm.DefaultMergePolicy(),
		Calibration: psm.DefaultCalibrationPolicy(),
	}
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BuildModel runs mining → PSMGenerator → simplify → join → calibrate
// with the per-trace stages parallelized. The output is bit-identical to
// the sequential flow (experiment.BuildModel) for any worker count.
// Cancelling ctx aborts between work items with ctx.Err().
func BuildModel(ctx context.Context, fts []*trace.Functional, pws []*trace.Power, inputCols []int, cfg Config) (*psm.Model, error) {
	ctx, span := obs.Start(ctx, "build", obs.KV("traces", len(fts)))
	defer span.End()
	chains, err := BuildChains(ctx, fts, pws, cfg)
	if err != nil {
		return nil, err
	}
	model, err := TreeJoin(ctx, chains, cfg.Merge, cfg.workers())
	if err != nil {
		return nil, err
	}
	if !cfg.SkipCalibration {
		psm.CalibrateCtx(ctx, model, fts, pws, inputCols, cfg.Calibration)
	}
	return model, nil
}

// BuildChains runs the per-trace front half of the flow — parallel
// mining, then one Generate+Simplify per trace on its own worker — and
// returns the simplified chains in trace order. cmd/psmgen uses the
// chains for its pre-join invariant checks before handing them to
// TreeJoin.
func BuildChains(ctx context.Context, fts []*trace.Functional, pws []*trace.Power, cfg Config) ([]*psm.Chain, error) {
	if len(fts) != len(pws) {
		return nil, fmt.Errorf("pipeline: %d functional traces but %d power traces", len(fts), len(pws))
	}
	ctx, span := obs.Start(ctx, "chains", obs.KV("traces", len(fts)))
	defer span.End()
	workers := cfg.workers()

	dict, pts, err := mining.MineParallel(ctx, fts, cfg.Mining, workers)
	if err != nil {
		return nil, err
	}

	chains := make([]*psm.Chain, len(pts))
	err = ForEach(ctx, workers, len(pts), func(wctx context.Context, i int) error {
		c, err := psm.GenerateCtx(wctx, dict, pts[i], pws[i], i)
		if err != nil {
			return fmt.Errorf("pipeline: trace %d: %w", i, err)
		}
		chains[i] = psm.SimplifyCtx(wctx, c, cfg.Merge)
		return nil
	})
	if err != nil {
		return nil, err
	}
	obs.RegistryFrom(ctx).Counter("pipeline_chains_built_total").Add(int64(len(chains)))
	return chains, nil
}

// TreeJoin implements psm.Join as a parallel reduction: each chain is
// pooled on its own worker (the clone-and-rebase half of the join), the
// partial pools are concatenated pairwise up a fixed left-to-right binary
// tree, and the order-dependent collapse runs once at the root. Because
// psm.Concat is associative in the chain order, every tree shape — and
// therefore every worker count — produces the same pooled model, and the
// root collapse is the same code the sequential psm.Join runs — the
// worklist engine by default, the provenance-ordered restart scan when a
// log is attached, both replaying the identical collapse sequence: the
// result is bit-identical to psm.Join(chains, policy).
func TreeJoin(ctx context.Context, chains []*psm.Chain, policy psm.MergePolicy, workers int) (*psm.Model, error) {
	if len(chains) == 0 {
		return psm.Join(nil, policy), nil
	}
	ctx, span := obs.Start(ctx, "join", obs.KV("chains", len(chains)))
	defer span.End()
	_, poolSpan := obs.Start(ctx, "join.pool")
	pools := make([]*psm.Model, len(chains))
	err := ForEach(ctx, workers, len(chains), func(_ context.Context, i int) error {
		pools[i] = psm.Pool(chains[i : i+1])
		return nil
	})
	if err != nil {
		poolSpan.End()
		return nil, err
	}
	for len(pools) > 1 {
		next := make([]*psm.Model, (len(pools)+1)/2)
		prev := pools
		err := ForEach(ctx, workers, len(next), func(_ context.Context, i int) error {
			m := prev[2*i]
			if 2*i+1 < len(prev) {
				m = psm.Concat(m, prev[2*i+1])
			}
			next[i] = m
			return nil
		})
		if err != nil {
			poolSpan.End()
			return nil, err
		}
		pools = next
	}
	poolSpan.SetAttr("states", len(pools[0].States))
	poolSpan.End()
	return psm.JoinPooledCtx(ctx, pools[0], policy), nil
}
