package pipeline

import (
	"context"
	"sync"

	"psmkit/internal/obs"
)

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines. Items are handed out in index order over a shared cursor,
// so uneven item costs balance across workers.
//
// Error semantics are deterministic: when one or more calls fail, the
// error of the lowest index is returned (not whichever worker lost the
// race), and the pool stops handing out new items. Cancelling ctx also
// drains the pool; ctx.Err() is returned when no fn error occurred.
// Workers receive a derived context that is cancelled on the first
// failure so long-running items can abort early.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Queue-depth gauge: items not yet handed to a worker. The handle is
	// nil — and Set a no-op — when the context carries no registry.
	depth := obs.RegistryFrom(ctx).Gauge("pipeline_pool_queue_depth")
	depth.Set(float64(n))

	var (
		mu       sync.Mutex
		next     int
		firstIdx = n
		firstErr error
	)
	take := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || firstErr != nil {
			depth.Set(0)
			return 0, false
		}
		i := next
		next++
		depth.Set(float64(n - next))
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		if err != nil && (firstErr == nil || i < firstIdx) {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for wctx.Err() == nil {
				i, ok := take()
				if !ok {
					return
				}
				if err := fn(wctx, i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
