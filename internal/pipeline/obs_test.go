package pipeline_test

import (
	"bytes"
	"context"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"psmkit/internal/experiment"
	"psmkit/internal/obs"
	"psmkit/internal/pipeline"
	"psmkit/internal/stats"
)

// obsCtx returns a context with every observability sink attached: span
// events stream to io.Discard, a live registry and a live provenance
// log — the heaviest instrumented configuration.
func obsCtx() (context.Context, *obs.ProvenanceLog) {
	log := obs.NewProvenanceLog()
	ctx := obs.WithTracer(context.Background(), obs.NewTracer(io.Discard))
	ctx = obs.WithRegistry(ctx, obs.NewRegistry())
	ctx = obs.WithProvenance(ctx, log)
	return ctx, log
}

// TestPropertyObservedBuildIdentical pins the instrumentation-neutrality
// invariant: BuildModel with the full observability stack attached must
// emit byte-identical DOT and JSON exports to the plain run, for every
// seed of the randomized suite.
func TestPropertyObservedBuildIdentical(t *testing.T) {
	seeds := 16
	if testing.Short() {
		seeds = 4
	}
	pol := experiment.DefaultPolicies()
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		c := genCase(rng)
		cfg := pipeline.Config{Workers: 4, Mining: pol.Mining, Merge: pol.Merge, Calibration: pol.Calibration}

		plain, plainErr := pipeline.BuildModel(context.Background(), c.fts, c.pws, c.cols, cfg)
		ctx, _ := obsCtx()
		observed, obsErr := pipeline.BuildModel(ctx, c.fts, c.pws, c.cols, cfg)

		switch {
		case plainErr != nil && obsErr != nil:
			continue
		case plainErr != nil || obsErr != nil:
			t.Fatalf("seed %d: plain err=%v, observed err=%v — instrumentation changed the outcome", seed, plainErr, obsErr)
		}

		var pDOT, oDOT, pJSON, oJSON bytes.Buffer
		if err := plain.WriteDOT(&pDOT, "m"); err != nil {
			t.Fatal(err)
		}
		if err := observed.WriteDOT(&oDOT, "m"); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pDOT.Bytes(), oDOT.Bytes()) {
			t.Fatalf("seed %d: DOT differs under instrumentation (%s)", seed, c)
		}
		if err := plain.WriteJSON(&pJSON); err != nil {
			t.Fatal(err)
		}
		if err := observed.WriteJSON(&oJSON); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pJSON.Bytes(), oJSON.Bytes()) {
			t.Fatalf("seed %d: JSON differs under instrumentation (%s)", seed, c)
		}
	}
}

// buildWithProvenance runs the chain+join flow with a provenance log
// attached and returns the canonical decision list.
func buildWithProvenance(t *testing.T, c propCase, workers int) []obs.MergeDecision {
	t.Helper()
	pol := experiment.DefaultPolicies()
	cfg := pipeline.Config{Workers: workers, Mining: pol.Mining, Merge: pol.Merge}
	log := obs.NewProvenanceLog()
	ctx := obs.WithProvenance(context.Background(), log)
	chains, err := pipeline.BuildChains(ctx, c.fts, c.pws, cfg)
	if err != nil {
		t.Skipf("trace set unbuildable: %v", err)
	}
	if _, err := pipeline.TreeJoin(ctx, chains, pol.Merge, workers); err != nil {
		t.Skipf("join failed: %v", err)
	}
	return log.Decisions()
}

// TestProvenanceDeterministicAcrossWorkers: the canonical decision log
// must not depend on the worker count, only on the inputs.
func TestProvenanceDeterministicAcrossWorkers(t *testing.T) {
	for seed := 0; seed < 6; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		c := genCase(rng)
		seq := buildWithProvenance(t, c, 1)
		if len(seq) == 0 {
			t.Fatalf("seed %d: no merge decisions recorded (%s)", seed, c)
		}
		for _, workers := range []int{2, 4} {
			par := buildWithProvenance(t, c, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed %d: provenance log differs between 1 and %d workers", seed, workers)
			}
		}
	}
}

// TestProvenanceReplay: every logged decision carries the exact
// accumulator ⟨N, Σx, Σx²⟩ of both states, so re-running the merge
// policy on the logged moments must reproduce the logged test, case,
// statistic and verdict — the audit log is self-verifying.
func TestProvenanceReplay(t *testing.T) {
	pol := experiment.DefaultPolicies()
	total := 0
	for seed := 0; seed < 6; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		c := genCase(rng)
		for _, d := range buildWithProvenance(t, c, 4) {
			a := stats.Moments{N: d.A.N, Sum: d.A.Sum, SumSq: d.A.SumSq}
			b := stats.Moments{N: d.B.N, Sum: d.B.Sum, SumSq: d.B.SumSq}
			out := pol.Merge.Evaluate(a, b)
			if out.Accept != d.Accept || out.Test != d.Test || out.Case != d.Case {
				t.Fatalf("seed %d decision %d: replay gives case=%d test=%s accept=%v, log says case=%d test=%s accept=%v",
					seed, d.Seq, out.Case, out.Test, out.Accept, d.Case, d.Test, d.Accept)
			}
			if out.Stat != d.Stat || out.Threshold != d.Threshold || out.T != d.T {
				t.Fatalf("seed %d decision %d: replay statistic (%v vs %v, t %v) differs from log (%v vs %v, t %v)",
					seed, d.Seq, out.Stat, out.Threshold, out.T, d.Stat, d.Threshold, d.T)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("replay exercised no decisions")
	}
}
