package hierarchy

import (
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/ip"
	"psmkit/internal/mining"
	"psmkit/internal/power"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// camTraining simulates Camellia with probes and per-group power.
func camTraining(t *testing.T, n int, seed int64, stalls bool) (*ip.Camellia128, *trace.Functional, *trace.Power, map[string]*trace.Power) {
	t.Helper()
	core := ip.NewCamellia128()
	sim := hdl.NewSimulator(core)
	est := power.NewEstimator(core, power.DefaultConfig())
	est.Classify(core.SubcomponentOf)
	ft, obs := CaptureProbed(core)
	sim.Observe(obs)
	sim.Observe(est.Observer())
	gen, err := testbench.For(core, testbench.Options{Seed: seed, Stalls: stalls})
	if err != nil {
		t.Fatal(err)
	}
	if err := testbench.Drive(sim, gen, n); err != nil {
		t.Fatal(err)
	}
	groups := map[string]*trace.Power{}
	for _, g := range est.Groups() {
		groups[g] = &trace.Power{Values: est.GroupTrace(g)}
	}
	return core, ft, &trace.Power{Values: est.Trace()}, groups
}

func TestProbedSchemaExtendsPorts(t *testing.T) {
	core := ip.NewCamellia128()
	sigs := ProbedSchema(core)
	base := trace.CoreSchema(core)
	if len(sigs) != len(base)+2 {
		t.Fatalf("probed schema has %d signals, want %d", len(sigs), len(base)+2)
	}
	if sigs[len(sigs)-2].Name != "p_step" || sigs[len(sigs)-1].Name != "p_ksu_fetch" {
		t.Errorf("probe columns wrong: %v", sigs[len(sigs)-2:])
	}
}

func TestCaptureProbedRecordsProbes(t *testing.T) {
	_, ft, _, _ := camTraining(t, 300, 7, false)
	if ft.Len() != 300 {
		t.Fatalf("captured %d rows", ft.Len())
	}
	fetchCol := ft.Column("p_ksu_fetch")
	stepCol := ft.Column("p_step")
	if fetchCol < 0 || stepCol < 0 {
		t.Fatal("probe columns missing")
	}
	fetches, busySteps := 0, 0
	for i := 0; i < ft.Len(); i++ {
		if ft.Value(i, fetchCol).Bit(0) == 1 {
			fetches++
		}
		if !ft.Value(i, stepCol).IsZero() {
			busySteps++
		}
	}
	if fetches == 0 || busySteps == 0 {
		t.Errorf("probes inactive: fetches=%d busySteps=%d", fetches, busySteps)
	}
	// The prefetcher fires on ~1/4 of the busy cycles (steps 1,5,9,13,17,21
	// of 21, minus the ramp).
	if fetches > busySteps {
		t.Errorf("fetch strobes (%d) exceed busy cycles (%d)", fetches, busySteps)
	}
}

func TestGroupPowerSumsToTotal(t *testing.T) {
	_, _, total, groups := camTraining(t, 500, 11, false)
	for i := range total.Values {
		var sum float64
		for _, g := range groups {
			sum += g.Values[i]
		}
		if diff := sum - total.Values[i]; diff > 1e-18 || diff < -1e-18 {
			t.Fatalf("instant %d: group sum %g != total %g", i, sum, total.Values[i])
		}
	}
	if len(groups["ksu"].Values) != total.Len() {
		t.Error("ksu trace length mismatch")
	}
	// The key-schedule unit must consume a visible share of the power.
	var ksu, tot float64
	for i := range total.Values {
		ksu += groups["ksu"].Values[i]
		tot += total.Values[i]
	}
	if ksu <= 0 || ksu >= tot {
		t.Errorf("ksu share = %g of %g", ksu, tot)
	}
}

func TestBuildAndRunHierarchical(t *testing.T) {
	_, ft, total, groups := camTraining(t, 6000, 21, false)
	pws := map[string][]*trace.Power{}
	for g, pw := range groups {
		pws[g] = []*trace.Power{pw}
	}
	core := ip.NewCamellia128()
	inputCols := trace.InputColumns(ft, core)

	model, err := Build([]*trace.Functional{ft}, pws, inputCols, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Subs) < 2 {
		t.Fatalf("expected at least data+ksu sub-models, got %v", model.Subs)
	}
	if model.States() <= 0 {
		t.Error("no states")
	}

	// Self-validation: the hierarchical estimate must beat the flat one.
	res := Run(model, ft, inputCols, total, powersim.DefaultConfig())
	if res.MRE > 0.12 {
		t.Errorf("hierarchical training MRE = %g", res.MRE)
	}

	// Flat comparison on the same (probed) traces and total power.
	dict, pts, err := mining.Mine([]*trace.Functional{ft}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chain, err := psm.Generate(dict, pts[0], total, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat := psm.Join([]*psm.Chain{psm.Simplify(chain, psm.DefaultMergePolicy())}, psm.DefaultMergePolicy())
	psm.Calibrate(flat, []*trace.Functional{ft}, []*trace.Power{total}, inputCols, psm.DefaultCalibrationPolicy())
	flatRes := powersim.Run(flat, ft, inputCols, total, powersim.DefaultConfig())

	if res.MRE >= flatRes.MRE {
		t.Errorf("hierarchical MRE %.3f should beat flat %.3f", res.MRE, flatRes.MRE)
	}
}

func TestBuildSkipsZeroGroups(t *testing.T) {
	_, ft, _, groups := camTraining(t, 400, 31, false)
	pws := map[string][]*trace.Power{}
	for g, pw := range groups {
		pws[g] = []*trace.Power{pw}
	}
	// Add an artificial all-zero subcomponent: it must be skipped.
	zero := make([]float64, ft.Len())
	pws["dead"] = []*trace.Power{{Values: zero}}
	model, err := Build([]*trace.Functional{ft}, pws, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range model.Subs {
		if s.Group == "dead" {
			t.Error("all-zero subcomponent was modelled")
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, nil, nil, DefaultConfig()); err == nil {
		t.Error("no traces accepted")
	}
	_, ft, _, groups := camTraining(t, 300, 41, false)
	pws := map[string][]*trace.Power{"data": {groups["data"], groups["data"]}}
	if _, err := Build([]*trace.Functional{ft}, pws, nil, DefaultConfig()); err == nil {
		t.Error("mismatched power-trace count accepted")
	}
	zero := map[string][]*trace.Power{"z": {{Values: make([]float64, ft.Len())}}}
	if _, err := Build([]*trace.Functional{ft}, zero, nil, DefaultConfig()); err == nil {
		t.Error("all-zero model accepted")
	}
}

func TestSimulatorStepSumsSubEstimates(t *testing.T) {
	_, ft, _, groups := camTraining(t, 2000, 51, false)
	pws := map[string][]*trace.Power{}
	for g, pw := range groups {
		pws[g] = []*trace.Power{pw}
	}
	model, err := Build([]*trace.Functional{ft}, pws, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSimulator(model, nil, powersim.DefaultConfig())
	indiv := make([]*powersim.Simulator, len(model.Subs))
	for i, s := range model.Subs {
		indiv[i] = powersim.New(s.Model, nil, powersim.DefaultConfig())
	}
	for t2 := 0; t2 < ft.Len(); t2++ {
		row := ft.Row(t2)
		got := sum.Step(row)
		var want float64
		for _, s := range indiv {
			want += s.Step(row)
		}
		if got != want {
			t.Fatalf("instant %d: sum %g != Σ %g", t2, got, want)
		}
	}
}

func TestProjectMatchesFlatCapture(t *testing.T) {
	// Projecting the probed capture onto the port columns must equal a
	// plain Capture of the same simulation.
	core := ip.NewCamellia128()
	sim := hdl.NewSimulator(core)
	pft, pobs := CaptureProbed(core)
	fft, fobs := trace.Capture(core)
	sim.Observe(pobs)
	sim.Observe(fobs)
	gen, _ := testbench.For(core, testbench.Options{Seed: 3})
	if err := testbench.Drive(sim, gen, 200); err != nil {
		t.Fatal(err)
	}
	cols := make([]int, len(fft.Signals))
	for i := range cols {
		cols[i] = i
	}
	proj := pft.Project(cols)
	if !proj.SameSchema(fft) {
		t.Fatal("projected schema differs")
	}
	for t2 := 0; t2 < fft.Len(); t2++ {
		for c := range fft.Signals {
			if !proj.Value(t2, c).Equal(fft.Value(t2, c)) {
				t.Fatalf("value (%d,%d) differs", t2, c)
			}
		}
	}
}
