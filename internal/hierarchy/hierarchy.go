// Package hierarchy implements the paper's stated future work (Section
// VII): hierarchical PSMs that distinguish among IP subcomponents.
//
// The flat flow of package psm fails on IPs like Camellia because the
// switching activity is "distributed among subcomponents that present
// power behaviours poorly correlated to each other" and invisible from
// the PI/PO boundary. The hierarchical extension fixes both halves of the
// problem:
//
//   - observability: cores implementing hdl.Probed expose their
//     subcomponent-boundary signals, and traces are captured over the
//     extended schema (PIs + POs + probes);
//   - attribution: the power estimator books every element's consumption
//     to its subcomponent (power.Estimator.Classify), giving one
//     reference power trace per subcomponent.
//
// One PSM model is then mined per subcomponent — all against the same
// proposition dictionary, each against its own power trace — and the
// hierarchical simulator runs the per-subcomponent trackers in lock-step,
// estimating total power as the sum of the subcomponent estimates.
package hierarchy

import (
	"fmt"
	"sort"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// Config carries the flat flow's tunables into the per-subcomponent runs.
type Config struct {
	Mining      mining.Config
	Merge       psm.MergePolicy
	Calibration psm.CalibrationPolicy
}

// DefaultConfig mirrors the flat defaults.
func DefaultConfig() Config {
	return Config{
		Mining:      mining.DefaultConfig(),
		Merge:       psm.DefaultMergePolicy(),
		Calibration: psm.DefaultCalibrationPolicy(),
	}
}

// ProbedSchema returns the extended signal set of a probed core: the
// PI/PO schema followed by the probe signals.
func ProbedSchema(core hdl.Probed) []trace.Signal {
	sigs := trace.CoreSchema(core)
	for _, p := range core.Probes() {
		sigs = append(sigs, trace.Signal{Name: p.Name, Width: p.Width})
	}
	return sigs
}

// CaptureProbed returns a functional trace over the extended schema and
// an observer that appends one row per cycle, reading the probes from the
// core after each step.
func CaptureProbed(core hdl.Probed) (*trace.Functional, hdl.Observer) {
	sigs := ProbedSchema(core)
	f := trace.NewFunctional(sigs)
	names := hdl.SortedPortNames(core)
	obs := func(_ int, in, out hdl.Values) {
		row := make([]logic.Vector, 0, len(sigs))
		for _, n := range names {
			if v, ok := in[n]; ok {
				row = append(row, v)
			} else {
				row = append(row, out[n])
			}
		}
		probes := core.ProbeValues()
		for _, p := range core.Probes() {
			row = append(row, probes[p.Name])
		}
		f.Append(row)
	}
	return f, obs
}

// SubModel is the PSM model of one subcomponent.
type SubModel struct {
	Group string
	Model *psm.Model
}

// Model is a hierarchical PSM: one mined sub-model per subcomponent, all
// sharing the proposition dictionary of the extended (probed) schema.
type Model struct {
	Subs []SubModel
}

// States returns the total state count across subcomponents.
func (m *Model) States() int {
	n := 0
	for _, s := range m.Subs {
		n += s.Model.NumStates()
	}
	return n
}

// Build mines one PSM model per subcomponent. fts are training traces
// over the probed schema; pws maps each subcomponent to its per-trace
// power traces (as produced by power.Estimator.Classify + GroupTrace);
// inputCols are the primary-input columns of the extended schema.
// Subcomponents whose power trace is all-zero (e.g. an unused "io" group)
// are skipped.
func Build(fts []*trace.Functional, pws map[string][]*trace.Power, inputCols []int, cfg Config) (*Model, error) {
	if len(fts) == 0 {
		return nil, fmt.Errorf("hierarchy: no training traces")
	}
	dict, pts, err := mining.Mine(fts, cfg.Mining)
	if err != nil {
		return nil, err
	}
	groups := make([]string, 0, len(pws))
	for g := range pws {
		groups = append(groups, g)
	}
	sort.Strings(groups)

	m := &Model{}
	for _, g := range groups {
		gp := pws[g]
		if len(gp) != len(fts) {
			return nil, fmt.Errorf("hierarchy: group %q has %d power traces, want %d", g, len(gp), len(fts))
		}
		if allZero(gp) {
			continue
		}
		var chains []*psm.Chain
		for i, pt := range pts {
			c, err := psm.Generate(dict, pt, gp[i], i)
			if err != nil {
				return nil, fmt.Errorf("hierarchy: group %q trace %d: %w", g, i, err)
			}
			chains = append(chains, psm.Simplify(c, cfg.Merge))
		}
		model := psm.Join(chains, cfg.Merge)
		psm.Calibrate(model, fts, gp, inputCols, cfg.Calibration)
		m.Subs = append(m.Subs, SubModel{Group: g, Model: model})
	}
	if len(m.Subs) == 0 {
		return nil, fmt.Errorf("hierarchy: every subcomponent's power trace is zero")
	}
	return m, nil
}

// Simulator runs one tracker per subcomponent in lock-step; the total
// estimate is the sum of the subcomponent estimates.
type Simulator struct {
	trackers []*powersim.Simulator
}

// NewSimulator builds the per-subcomponent trackers.
func NewSimulator(m *Model, inputCols []int, cfg powersim.Config) *Simulator {
	s := &Simulator{}
	for _, sub := range m.Subs {
		s.trackers = append(s.trackers, powersim.New(sub.Model, inputCols, cfg))
	}
	return s
}

// Step consumes one extended-schema valuation and returns the total power
// estimate.
func (s *Simulator) Step(row []logic.Vector) float64 {
	var sum float64
	for _, t := range s.trackers {
		sum += t.Step(row)
	}
	return sum
}

// Results returns the per-subcomponent tracker metrics, in Build order.
func (s *Simulator) Results() []*powersim.Result {
	out := make([]*powersim.Result, len(s.trackers))
	for i, t := range s.trackers {
		out[i] = t.Result()
	}
	return out
}

// Run replays a trace through a fresh hierarchical simulator and, when a
// total reference power trace is supplied, computes the MRE against it.
func Run(m *Model, ft *trace.Functional, inputCols []int, ref *trace.Power, cfg powersim.Config) *powersim.Result {
	sim := NewSimulator(m, inputCols, cfg)
	est := make([]float64, 0, ft.Len())
	for t := 0; t < ft.Len(); t++ {
		est = append(est, sim.Step(ft.Row(t)))
	}
	res := &powersim.Result{Estimates: est, Instants: ft.Len()}
	for _, r := range sim.Results() {
		res.Predictions += r.Predictions
		res.WrongPredictions += r.WrongPredictions
		res.UnsyncedInstants += r.UnsyncedInstants
	}
	if ref != nil {
		n := ft.Len()
		if ref.Len() < n {
			n = ref.Len()
		}
		res.MRE = stats.MeanRelativeError(est[:n], ref.Values[:n])
	}
	return res
}

func allZero(pws []*trace.Power) bool {
	for _, pw := range pws {
		for _, v := range pw.Values {
			if v != 0 {
				return false
			}
		}
	}
	return true
}
