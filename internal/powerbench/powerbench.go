// Package powerbench is the adversarial workload of the power-kernel
// scaling comparison (the joinbench counterpart for internal/power): a
// banked register file where exactly one bank is powered per cycle and
// the rest sit clock-gated. The per-cycle work a power kernel *needs* to
// do is proportional to one bank; the historical scalar walk still
// visits every element of every bank, while the columnar kernel's
// word-scan skips quiescent gated words with one compare each. The
// benchmark gate (TestPowerKernelGate, `make bench-power`) replays the
// same deterministic stimulus through both kernels, pins the traces
// bit-identical, and compares min-of-N wall clock.
package powerbench

import (
	"fmt"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

const (
	// RegWidth is the width of every register in the file.
	RegWidth = 32
	// patterns is the size of the precomputed write-value table; Step
	// costs O(writes) with no allocation so the kernels dominate the
	// replay loop.
	patterns = 16
	// writes is how many registers of the powered bank Step writes per
	// cycle (a rotating window), keeping the stimulus side cheap
	// relative to the per-cycle power reduction being measured.
	writes = 8
	// dwell is how many cycles Stimulus holds each bank selection, so
	// gate/ungate migration stays off the critical path.
	dwell = 16
)

// Core is the banked register file. It implements hdl.Core.
type Core struct {
	banks   int
	perBank int
	regs    []*hdl.Reg
	vals    [patterns]logic.Vector
	cur     int
	cycle   int
}

// New builds a file of banks x perBank registers. Bank 0 is powered;
// every other bank starts clock-gated (the estimator's bank migration
// picks that pre-bind state up, like the RAM's constructor gating).
func New(banks, perBank int) *Core {
	c := &Core{banks: banks, perBank: perBank}
	c.regs = make([]*hdl.Reg, 0, banks*perBank)
	for b := 0; b < banks; b++ {
		for r := 0; r < perBank; r++ {
			reg := hdl.NewReg(fmt.Sprintf("bank%03d.r%03d", b, r), RegWidth)
			if b != 0 {
				reg.Gate(true)
			}
			c.regs = append(c.regs, reg)
		}
	}
	rng := uint64(0x243f6a8885a308d3)
	for i := range c.vals {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		c.vals[i] = logic.FromUint64(RegWidth, rng)
	}
	return c
}

// Name implements hdl.Core.
func (c *Core) Name() string { return "powerbench" }

// Ports implements hdl.Core.
func (c *Core) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "sel", Width: 16, Dir: hdl.In},
		{Name: "busy", Width: RegWidth, Dir: hdl.Out},
	}
}

// Reset implements hdl.Core: back to bank 0 powered, everything cleared.
func (c *Core) Reset() {
	for i, r := range c.regs {
		r.Reset()
		if i >= c.perBank {
			r.Gate(true)
		}
	}
	c.cur = 0
	c.cycle = 0
}

// Step powers the selected bank (gating the previously active one when
// the selection moves) and writes a rotating pattern into a rotating
// window of its registers. Cost is O(writes), independent of the total
// element count.
func (c *Core) Step(in hdl.Values) hdl.Values {
	sel := 0
	if v, ok := in["sel"]; ok {
		sel = int(v.Uint64() % uint64(c.banks))
	}
	if sel != c.cur {
		for _, r := range c.bank(c.cur) {
			r.Gate(true)
		}
		for _, r := range c.bank(sel) {
			r.Gate(false)
		}
		c.cur = sel
	}
	active := c.bank(sel)
	n := writes
	if n > c.perBank {
		n = c.perBank
	}
	for i := 0; i < n; i++ {
		active[(c.cycle*writes+i)%c.perBank].Set(c.vals[(c.cycle+i)%patterns])
	}
	c.cycle++
	return hdl.Values{"busy": c.vals[c.cycle%patterns]}
}

// Elements implements hdl.Core.
func (c *Core) Elements() []*hdl.Reg { return c.regs }

func (c *Core) bank(b int) []*hdl.Reg {
	return c.regs[b*c.perBank : (b+1)*c.perBank]
}

// Stimulus returns the deterministic n-cycle input sequence of the
// benchmark: a seeded xorshift walk over the banks, with enough dwell
// time per selection that gating transitions do not dominate.
func Stimulus(banks, n int, seed uint64) []hdl.Values {
	rng := seed | 1
	ins := make([]hdl.Values, n)
	sel := logic.FromUint64(16, 0)
	for t := 0; t < n; t++ {
		if t%dwell == 0 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			sel = logic.FromUint64(16, rng%uint64(banks))
		}
		ins[t] = hdl.Values{"sel": sel}
	}
	return ins
}
