// Package joinbench builds adversarial pooled models for the join-engine
// scaling benchmarks: mergeable-heavy state sets on which the historical
// restart-scan fixpoint pays a fresh O(n²) evaluation sweep per collapse
// (~O(n³) total) while the worklist engine pays one seeding sweep plus
// O(n) re-probes per collapse. The same generator feeds
// BenchmarkJoinScaling, the BENCH_JOIN=1 regression gate and
// scripts/bench_join, so the committed BENCH_join.json numbers are
// reproducible from either entry point.
package joinbench

import (
	"psmkit/internal/psm"
	"psmkit/internal/stats"
)

// StatesPerGroup is the number of pooled states each group contributes.
const StatesPerGroup = 3

// Model builds a pooled (pre-collapse) model of `groups` three-state
// groups, 3·groups states total. Group g's power levels are scaled by
// 1.25^g, far outside every merge tolerance, so groups never interact;
// within a group the states are tuned to the default policy's
// thresholds so that the join's two phases each fire exactly once:
//
//   - X (μ=1.0, n=2, σ=0) and Y (μ=1.0995, n=2, σ=0): relative
//     difference 0.0905 — the degenerate-Welch ε check (0.05) rejects;
//   - Z (μ=1.048, n=200, σ=0): against X the relative difference is
//     0.0458 ≤ ε, so phase 1 folds Z into X, dragging the pooled mean to
//     μ≈1.0475 and making its variance positive;
//   - phase 2 then accepts (X′, Y): relative difference 0.0473 ≤ the
//     equivalence margin — a merge that only becomes possible after the
//     phase-1 pooling, which is exactly the fixpoint's reason to exist.
//
// Every group therefore forces one phase-2 collapse; the restart scan
// pays a full pair sweep per group while the worklist re-probes one
// row. The collapsed model has exactly `groups` states (asserted by the
// regression gate).
func Model(groups int) *psm.Model {
	m := &psm.Model{Initials: make(map[int]int, groups)}
	scale := 1.0
	for g := 0; g < groups; g++ {
		base := len(m.States)
		for k, spec := range [StatesPerGroup]struct {
			mu float64
			n  int
		}{{1.0, 2}, {1.0995, 2}, {1.048, 200}} {
			vals := make([]float64, spec.n)
			for i := range vals {
				vals[i] = spec.mu * scale
			}
			id := base + k
			m.States = append(m.States, &psm.State{
				ID: id,
				Alts: []psm.Alt{{
					Seq:   psm.Sequence{Phases: []psm.Phase{{Prop: id, Kind: psm.Until}}},
					Count: 1,
				}},
				Power:     stats.MomentsOf(vals),
				Intervals: []psm.Interval{{Trace: g, Start: k * 10, Stop: k*10 + spec.n - 1}},
			})
		}
		m.Transitions = append(m.Transitions,
			psm.Transition{From: base, To: base + 1, Enabling: base + 1, Count: 1},
			psm.Transition{From: base + 1, To: base + 2, Enabling: base + 2, Count: 1},
		)
		m.Initials[base]++
		scale *= 1.25
	}
	return m
}
