// Package hdl is a small cycle-based RTL simulation kernel. It plays the
// role of the Verilog/SystemC simulators in the paper's flow: IP cores are
// bit- and cycle-accurate Go models that expose primary inputs and outputs
// as fixed-width bit vectors and advance one clock cycle at a time.
//
// The kernel is deliberately minimal — a synchronous single-clock model —
// because the PSM methodology only ever observes the PI/PO valuation at
// each simulation instant. What the kernel adds over a plain function call
// is the bookkeeping a power model needs: every registered state element
// (Reg) records its switching activity per cycle, and supports clock
// gating, so a gate-level-style power estimator (package power) can charge
// clock-tree and data toggles per cell.
package hdl

import (
	"fmt"
	"sort"

	"psmkit/internal/logic"
)

// PortDir distinguishes primary inputs from primary outputs.
type PortDir int

const (
	// In marks a primary input port.
	In PortDir = iota
	// Out marks a primary output port.
	Out
)

func (d PortDir) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// PortSpec describes one primary input or output of a core.
type PortSpec struct {
	Name  string
	Width int
	Dir   PortDir
}

// Values maps port names to their bit-vector valuations at one simulation
// instant.
type Values map[string]logic.Vector

// Clone returns a deep copy of v.
func (v Values) Clone() Values {
	out := make(Values, len(v))
	for k, x := range v {
		out[k] = x.Clone()
	}
	return out
}

// Core is a cycle-accurate RTL model of an IP. Implementations live in
// package ip; users can provide their own cores to characterize custom IPs.
//
// The contract: Reset puts all state elements in their power-on value;
// Step consumes the primary-input valuation of the current clock cycle and
// returns the primary-output valuation after the clock edge. Step must
// write state only through Reg so switching activity is observable.
type Core interface {
	// Name returns a short identifier for the IP (used in reports).
	Name() string
	// Ports lists the primary inputs and outputs.
	Ports() []PortSpec
	// Reset re-initializes all state elements.
	Reset()
	// Step advances one clock cycle.
	Step(in Values) Values
	// Elements returns the design's registered state elements and tracked
	// internal nets, for power accounting.
	Elements() []*Reg
}

// Probed is implemented by cores that expose internal subcomponent-
// boundary signals in addition to their primary inputs and outputs. The
// hierarchical PSM extension (the future work of Section VII of the
// paper) mines per-subcomponent power models against these observables —
// exactly the "visibility on internal signals connecting the
// subcomponents" the paper says flat PI/PO-level PSMs lack.
type Probed interface {
	Core
	// Probes lists the internal observables (direction is ignored).
	Probes() []PortSpec
	// ProbeValues returns the probes' valuation after the current cycle.
	ProbeValues() Values
}

// Reg is a registered state element (or a tracked internal net) of a core.
// Writes go through Set so the kernel can observe per-cycle switching
// activity; TakeToggles drains the activity counter once per cycle.
type Reg struct {
	name string
	// Memory reports whether the element is a memory element (flip-flop /
	// RAM bit) as opposed to a tracked combinational net. Only memory
	// elements count toward the design's "memory elements" size metric and
	// draw clock power.
	memory bool
	// gated marks the element's clock as gated for the current cycle:
	// a gated element draws no clock power. Data toggles are still charged
	// (a gated register normally has none, but tracked nets may).
	gated bool

	val     logic.Vector
	resetTo logic.Vector
	toggles int

	// When bound to a ToggleBank, activity is published to the bank's
	// columns at slot bankID and the fields above act as read-through
	// accessors only (toggles stays 0; gated mirrors the bank's plane).
	bank   *ToggleBank
	bankID int
}

// NewReg returns a memory element of the given width, reset to zero.
func NewReg(name string, width int) *Reg {
	v := logic.New(width)
	return &Reg{name: name, memory: true, val: v, resetTo: v}
}

// NewNet returns a tracked combinational net of the given width. Nets
// contribute data-toggle power but no clock power and do not count as
// memory elements.
func NewNet(name string, width int) *Reg {
	r := NewReg(name, width)
	r.memory = false
	return r
}

// WithReset sets the power-on value and returns the element (builder style).
func (r *Reg) WithReset(v logic.Vector) *Reg {
	if v.Width() != r.val.Width() {
		panic(fmt.Sprintf("hdl: reset width %d != reg %q width %d", v.Width(), r.name, r.val.Width()))
	}
	r.resetTo = v.Clone()
	r.val = v.Clone()
	return r
}

// Name returns the element's hierarchical name.
func (r *Reg) Name() string { return r.name }

// Width returns the element's width in bits.
func (r *Reg) Width() int { return r.val.Width() }

// IsMemory reports whether the element is a memory element.
func (r *Reg) IsMemory() bool { return r.memory }

// Get returns the element's current value.
func (r *Reg) Get() logic.Vector { return r.val }

// Set writes a new value, accumulating the Hamming distance between the
// old and new values into the cycle's toggle counter. Writing a register
// more than once per cycle accumulates activity, which models glitching on
// the tracked net.
func (r *Reg) Set(v logic.Vector) {
	if hd := r.val.HammingDistance(v); hd != 0 {
		if r.bank != nil {
			r.bank.add(r.bankID, hd)
		} else {
			r.toggles += hd
		}
	}
	r.val = v.Clone()
}

// SetUint64 writes v truncated to the element's width.
func (r *Reg) SetUint64(v uint64) {
	r.Set(logic.FromUint64(r.val.Width(), v))
}

// Gate marks the element's clock as gated (g = true) or active for the
// current cycle. Gating is re-evaluated by the core every cycle.
func (r *Reg) Gate(g bool) {
	if r.bank != nil {
		r.bank.gate(r.bankID, g)
		return
	}
	r.gated = g
}

// Gated reports whether the element's clock is gated this cycle.
func (r *Reg) Gated() bool {
	if r.bank != nil {
		return r.bank.isGated(r.bankID)
	}
	return r.gated
}

// TakeToggles returns the switching activity accumulated since the last
// call and resets the counter. The power estimator calls it once per cycle.
func (r *Reg) TakeToggles() int {
	if r.bank != nil {
		return r.bank.drain(r.bankID)
	}
	t := r.toggles
	r.toggles = 0
	return t
}

// Reset restores the power-on value without charging toggles.
func (r *Reg) Reset() {
	r.val = r.resetTo.Clone()
	if r.bank != nil {
		r.bank.drain(r.bankID)
		r.bank.gate(r.bankID, false)
	} else {
		r.toggles = 0
		r.gated = false
	}
}

// MemoryBits returns the total number of memory-element bits of a core —
// the "memory elements" metric of the paper's Table I.
func MemoryBits(c Core) int {
	n := 0
	for _, r := range c.Elements() {
		if r.IsMemory() {
			n += r.Width()
		}
	}
	return n
}

// PortWidths sums the widths of a core's ports in the given direction —
// the "PIs"/"POs" metrics of the paper's Table I.
func PortWidths(c Core, dir PortDir) int {
	n := 0
	for _, p := range c.Ports() {
		if p.Dir == dir {
			n += p.Width
		}
	}
	return n
}

// Simulator drives a Core cycle by cycle, validating port valuations and
// notifying observers. It is the functional-simulation entry point used by
// trace generation and by the IP+PSM co-simulation.
type Simulator struct {
	core      Core
	inPorts   []PortSpec
	outPorts  []PortSpec
	cycle     int
	observers []Observer
}

// Observer is called after every simulated cycle with the cycle index and
// the input/output valuations. Observers must not retain the maps (clone
// if needed); vectors are immutable and safe to retain.
type Observer func(cycle int, in, out Values)

// NewSimulator returns a Simulator for the core, resetting it first.
func NewSimulator(core Core) *Simulator {
	s := &Simulator{core: core}
	for _, p := range core.Ports() {
		if p.Width <= 0 {
			panic(fmt.Sprintf("hdl: port %q of %q has width %d", p.Name, core.Name(), p.Width))
		}
		if p.Dir == In {
			s.inPorts = append(s.inPorts, p)
		} else {
			s.outPorts = append(s.outPorts, p)
		}
	}
	core.Reset()
	return s
}

// Core returns the simulated core.
func (s *Simulator) Core() Core { return s.core }

// Cycle returns the number of cycles simulated so far.
func (s *Simulator) Cycle() int { return s.cycle }

// Observe registers an observer for subsequent cycles.
func (s *Simulator) Observe(o Observer) { s.observers = append(s.observers, o) }

// Reset re-initializes the core and the cycle counter.
func (s *Simulator) Reset() {
	s.core.Reset()
	s.cycle = 0
}

// Step validates the input valuation, advances the core one cycle, and
// returns the validated output valuation.
func (s *Simulator) Step(in Values) (Values, error) {
	for _, p := range s.inPorts {
		v, ok := in[p.Name]
		if !ok {
			return nil, fmt.Errorf("hdl: %s cycle %d: missing input %q", s.core.Name(), s.cycle, p.Name)
		}
		if v.Width() != p.Width {
			return nil, fmt.Errorf("hdl: %s cycle %d: input %q width %d, want %d",
				s.core.Name(), s.cycle, p.Name, v.Width(), p.Width)
		}
	}
	out := s.core.Step(in)
	for _, p := range s.outPorts {
		v, ok := out[p.Name]
		if !ok {
			return nil, fmt.Errorf("hdl: %s cycle %d: core did not drive output %q", s.core.Name(), s.cycle, p.Name)
		}
		if v.Width() != p.Width {
			return nil, fmt.Errorf("hdl: %s cycle %d: output %q width %d, want %d",
				s.core.Name(), s.cycle, p.Name, v.Width(), p.Width)
		}
	}
	for _, o := range s.observers {
		o(s.cycle, in, out)
	}
	s.cycle++
	return out, nil
}

// MustStep is Step for tests and examples where a port mismatch is a
// programming error.
func (s *Simulator) MustStep(in Values) Values {
	out, err := s.Step(in)
	if err != nil {
		panic(err)
	}
	return out
}

// SortedPortNames returns the core's port names in a stable order: inputs
// first, then outputs, each alphabetical. Trace columns use this order so
// serialized traces are deterministic.
func SortedPortNames(c Core) []string {
	var ins, outs []string
	for _, p := range c.Ports() {
		if p.Dir == In {
			ins = append(ins, p.Name)
		} else {
			outs = append(outs, p.Name)
		}
	}
	sort.Strings(ins)
	sort.Strings(outs)
	return append(ins, outs...)
}
