package hdl

import (
	"testing"

	"psmkit/internal/logic"
)

func TestBankMigratesPendingState(t *testing.T) {
	a := NewReg("a", 8)
	b := NewReg("b", 8)
	a.Set(logic.FromUint64(8, 0xff)) // 8 toggles while unbound
	b.Gate(true)

	bank := NewToggleBank([]*Reg{a, b})
	if got := bank.Toggles(0); got != 8 {
		t.Fatalf("migrated toggles = %d, want 8", got)
	}
	if bank.TouchedPlane()[0]&1 == 0 {
		t.Fatal("touched bit not migrated")
	}
	if !b.Gated() || a.Gated() {
		t.Fatal("gating state not migrated")
	}
}

func TestBankPublishAndReadThrough(t *testing.T) {
	a := NewReg("a", 8)
	b := NewReg("b", 8)
	bank := NewToggleBank([]*Reg{a, b})

	a.Set(logic.FromUint64(8, 0x0f)) // 4 toggles
	a.Set(logic.FromUint64(8, 0x00)) // 4 more (glitch accumulation)
	if got := bank.Toggles(0); got != 8 {
		t.Fatalf("bank toggles = %d, want 8", got)
	}
	if bank.TouchedPlane()[0] != 1 {
		t.Fatalf("touched plane = %b, want slot 0 only", bank.TouchedPlane()[0])
	}
	// Read-through drain matches the scalar Reg contract.
	if got := a.TakeToggles(); got != 8 {
		t.Fatalf("TakeToggles = %d, want 8", got)
	}
	if got := a.TakeToggles(); got != 0 {
		t.Fatalf("second TakeToggles = %d, want 0", got)
	}
	if bank.TouchedPlane()[0] != 0 {
		t.Fatal("touched bit survived the drain")
	}

	b.Gate(true)
	if bank.GatedPlane()[0] != 2 {
		t.Fatalf("gated plane = %b, want slot 1 only", bank.GatedPlane()[0])
	}
	b.Gate(false)
	if bank.GatedPlane()[0] != 0 {
		t.Fatal("gate clear not published")
	}
}

func TestBankSetIdenticalValueLeavesPlaneClean(t *testing.T) {
	a := NewReg("a", 8)
	bank := NewToggleBank([]*Reg{a})
	a.Set(logic.FromUint64(8, 0)) // zero Hamming distance
	if bank.TouchedPlane()[0] != 0 || bank.Toggles(0) != 0 {
		t.Fatal("zero-HD write marked the plane")
	}
}

func TestBankDrainSlotLeavesTouchedToCaller(t *testing.T) {
	a := NewReg("a", 4)
	bank := NewToggleBank([]*Reg{a})
	a.Set(logic.FromUint64(4, 0xf))
	if got := bank.DrainSlot(0); got != 4 {
		t.Fatalf("DrainSlot = %d, want 4", got)
	}
	if bank.TouchedPlane()[0] != 1 {
		t.Fatal("DrainSlot must not clear the touched plane")
	}
	bank.ClearTouchedWord(0)
	if bank.TouchedPlane()[0] != 0 {
		t.Fatal("ClearTouchedWord failed")
	}
}

func TestBankRegResetClearsSlot(t *testing.T) {
	a := NewReg("a", 4)
	bank := NewToggleBank([]*Reg{a})
	a.Set(logic.FromUint64(4, 0xf))
	a.Gate(true)
	a.Reset()
	if bank.Toggles(0) != 0 || bank.TouchedPlane()[0] != 0 {
		t.Fatal("Reset left pending toggles in the bank")
	}
	if a.Gated() {
		t.Fatal("Reset left the slot gated")
	}
}

func TestBankDoubleBindPanics(t *testing.T) {
	a := NewReg("a", 4)
	NewToggleBank([]*Reg{a})
	defer func() {
		if recover() == nil {
			t.Fatal("binding an element to a second bank did not panic")
		}
	}()
	NewToggleBank([]*Reg{a})
}

func TestBankManyWords(t *testing.T) {
	elems := make([]*Reg, 130) // 3 plane words, last one partial
	for i := range elems {
		elems[i] = NewReg("e", 1)
	}
	bank := NewToggleBank(elems)
	if bank.Words() != 3 || bank.Len() != 130 {
		t.Fatalf("words=%d len=%d", bank.Words(), bank.Len())
	}
	elems[129].Set(logic.FromUint64(1, 1))
	if bank.TouchedPlane()[2] != 1<<1 {
		t.Fatalf("slot 129 bit not in word 2: %b", bank.TouchedPlane()[2])
	}
	if bank.ActiveCount() != 1 {
		t.Fatalf("ActiveCount = %d, want 1", bank.ActiveCount())
	}
}
