package hdl

import (
	"fmt"
	"math/bits"
)

// ToggleBank is the columnar switching-activity store of a core: one
// slot per state element, with the per-cycle toggle counts in a flat
// int32 column and the "toggled this cycle" / "clock gated" flags packed
// into 64-element bit planes. Binding a bank moves a core's activity
// bookkeeping out of the per-Reg counters — registers publish into the
// bank on Set/Gate — so a power kernel can consume a cycle's activity by
// scanning words instead of walking every element through method calls.
//
// The planes are the bank's own storage. Consumers (package power) read
// them through TouchedPlane/GatedPlane/Toggles and drain a cycle's
// activity with DrainSlot/ClearTouchedWord; the per-Reg accessors
// (TakeToggles, Gated) read through to the bank, so scalar code keeps
// working on a bound core and observes the exact same counters.
//
// A bank is single-writer per cycle, like the Reg counters it replaces:
// one goroutine steps the core and one estimator drains the activity.
type ToggleBank struct {
	elems   []*Reg
	toggles []int32  // per-slot toggle count accumulated this cycle
	touched []uint64 // bit i set: slot i accumulated toggles this cycle
	gated   []uint64 // bit i set: slot i's clock is gated
}

// NewToggleBank builds a bank over the element list and binds every
// element to it, migrating any pending per-Reg activity and gating state
// into the columns. An element already bound to a different bank panics:
// two activity consumers draining the same core is a wiring bug (the
// same rule as attaching two estimators to one core).
func NewToggleBank(elems []*Reg) *ToggleBank {
	words := (len(elems) + 63) / 64
	b := &ToggleBank{
		elems:   elems,
		toggles: make([]int32, len(elems)),
		touched: make([]uint64, words),
		gated:   make([]uint64, words),
	}
	for i, r := range elems {
		if r.bank != nil && r.bank != b {
			panic(fmt.Sprintf("hdl: element %q is already bound to a toggle bank", r.name))
		}
		r.bank = b
		r.bankID = i
		if r.toggles != 0 {
			b.toggles[i] = int32(r.toggles)
			b.touched[i/64] |= 1 << uint(i%64)
			r.toggles = 0
		}
		if r.gated {
			b.gated[i/64] |= 1 << uint(i%64)
		}
	}
	return b
}

// Len returns the number of bound elements.
func (b *ToggleBank) Len() int { return len(b.elems) }

// Words returns the number of 64-bit words in each plane.
func (b *ToggleBank) Words() int { return len(b.touched) }

// TouchedPlane exposes the toggled-this-cycle bit plane. The slice is
// the bank's storage: consumers clear words they have drained.
func (b *ToggleBank) TouchedPlane() []uint64 { return b.touched }

// GatedPlane exposes the clock-gating bit plane (bank storage; gating
// persists across cycles until the core changes it).
func (b *ToggleBank) GatedPlane() []uint64 { return b.gated }

// Toggles returns slot i's accumulated toggle count without draining it.
func (b *ToggleBank) Toggles(i int) int { return int(b.toggles[i]) }

// DrainSlot returns and clears slot i's toggle count. The caller is
// responsible for clearing the touched plane (ClearTouchedWord) once a
// word's slots are drained.
func (b *ToggleBank) DrainSlot(i int) int {
	t := b.toggles[i]
	b.toggles[i] = 0
	return int(t)
}

// ClearTouchedWord zeroes word w of the touched plane.
func (b *ToggleBank) ClearTouchedWord(w int) { b.touched[w] = 0 }

// ActiveCount returns the number of slots with pending toggles — a
// debugging/metrics helper, not on the per-cycle hot path.
func (b *ToggleBank) ActiveCount() int {
	n := 0
	for _, w := range b.touched {
		n += bits.OnesCount64(w)
	}
	return n
}

// add publishes hd toggles for slot i (called by Reg.Set).
func (b *ToggleBank) add(i, hd int) {
	b.toggles[i] += int32(hd)
	b.touched[i/64] |= 1 << uint(i%64)
}

// gate sets or clears slot i's gating bit (called by Reg.Gate).
func (b *ToggleBank) gate(i int, g bool) {
	if g {
		b.gated[i/64] |= 1 << uint(i%64)
	} else {
		b.gated[i/64] &^= 1 << uint(i%64)
	}
}

// isGated reports slot i's gating bit.
func (b *ToggleBank) isGated(i int) bool {
	return b.gated[i/64]&(1<<uint(i%64)) != 0
}

// drain returns and clears slot i's toggles including its touched bit
// (the per-Reg TakeToggles read-through; clears only slot i's bit, so a
// concurrent word scan stays consistent).
func (b *ToggleBank) drain(i int) int {
	t := b.toggles[i]
	if t != 0 {
		b.toggles[i] = 0
		b.touched[i/64] &^= 1 << uint(i%64)
	}
	return int(t)
}
