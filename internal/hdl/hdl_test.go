package hdl

import (
	"strings"
	"testing"
	"testing/quick"

	"psmkit/internal/logic"
)

// counter is a toy core: an 8-bit counter with enable and synchronous
// clear, driving its value and a carry-out flag.
type counter struct {
	cnt   *Reg
	carry *Reg
}

func newCounter() *counter {
	return &counter{
		cnt:   NewReg("cnt", 8),
		carry: NewReg("carry", 1),
	}
}

func (c *counter) Name() string { return "counter" }

func (c *counter) Ports() []PortSpec {
	return []PortSpec{
		{Name: "en", Width: 1, Dir: In},
		{Name: "clr", Width: 1, Dir: In},
		{Name: "count", Width: 8, Dir: Out},
		{Name: "co", Width: 1, Dir: Out},
	}
}

func (c *counter) Reset() {
	c.cnt.Reset()
	c.carry.Reset()
}

func (c *counter) Elements() []*Reg { return []*Reg{c.cnt, c.carry} }

func (c *counter) Step(in Values) Values {
	en := in["en"].Bit(0) == 1
	clr := in["clr"].Bit(0) == 1
	c.cnt.Gate(!en && !clr) // clock gating when idle
	switch {
	case clr:
		c.cnt.SetUint64(0)
		c.carry.SetUint64(0)
	case en:
		next := c.cnt.Get().Add(logic.FromUint64(8, 1))
		if next.IsZero() {
			c.carry.SetUint64(1)
		} else {
			c.carry.SetUint64(0)
		}
		c.cnt.Set(next)
	}
	return Values{"count": c.cnt.Get(), "co": c.carry.Get()}
}

func in(en, clr uint64) Values {
	return Values{"en": logic.FromUint64(1, en), "clr": logic.FromUint64(1, clr)}
}

func TestSimulatorCounts(t *testing.T) {
	s := NewSimulator(newCounter())
	var out Values
	for i := 0; i < 5; i++ {
		out = s.MustStep(in(1, 0))
	}
	if got := out["count"].Uint64(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	out = s.MustStep(in(0, 0)) // disabled: hold
	if got := out["count"].Uint64(); got != 5 {
		t.Errorf("hold: count = %d", got)
	}
	out = s.MustStep(in(1, 1)) // clear wins
	if got := out["count"].Uint64(); got != 0 {
		t.Errorf("clear: count = %d", got)
	}
	if s.Cycle() != 7 {
		t.Errorf("Cycle = %d", s.Cycle())
	}
}

func TestCarryOut(t *testing.T) {
	s := NewSimulator(newCounter())
	var out Values
	for i := 0; i < 256; i++ {
		out = s.MustStep(in(1, 0))
	}
	if got := out["co"].Uint64(); got != 1 {
		t.Errorf("carry after 256 increments = %d", got)
	}
	if got := out["count"].Uint64(); got != 0 {
		t.Errorf("wrapped count = %d", got)
	}
	out = s.MustStep(in(1, 0))
	if got := out["co"].Uint64(); got != 0 {
		t.Errorf("carry should clear, got %d", got)
	}
}

func TestSimulatorValidatesInputs(t *testing.T) {
	s := NewSimulator(newCounter())
	if _, err := s.Step(Values{"en": logic.FromUint64(1, 1)}); err == nil {
		t.Error("missing input accepted")
	} else if !strings.Contains(err.Error(), "clr") {
		t.Errorf("error should name missing port: %v", err)
	}
	if _, err := s.Step(Values{"en": logic.FromUint64(2, 1), "clr": logic.FromUint64(1, 0)}); err == nil {
		t.Error("wrong-width input accepted")
	}
}

type badCore struct{ *counter }

func (b badCore) Step(in Values) Values {
	out := b.counter.Step(in)
	delete(out, "co")
	return out
}

func TestSimulatorValidatesOutputs(t *testing.T) {
	s := NewSimulator(badCore{newCounter()})
	if _, err := s.Step(in(1, 0)); err == nil {
		t.Error("missing output accepted")
	}
}

func TestObserverSeesEveryCycle(t *testing.T) {
	s := NewSimulator(newCounter())
	var cycles []int
	var lastOut uint64
	s.Observe(func(cycle int, _, out Values) {
		cycles = append(cycles, cycle)
		lastOut = out["count"].Uint64()
	})
	for i := 0; i < 4; i++ {
		s.MustStep(in(1, 0))
	}
	if len(cycles) != 4 || cycles[3] != 3 {
		t.Errorf("cycles = %v", cycles)
	}
	if lastOut != 4 {
		t.Errorf("observer lastOut = %d", lastOut)
	}
}

func TestRegToggleAccounting(t *testing.T) {
	r := NewReg("r", 8)
	r.Set(logic.FromUint64(8, 0xff))
	if got := r.TakeToggles(); got != 8 {
		t.Errorf("toggles = %d, want 8", got)
	}
	if got := r.TakeToggles(); got != 0 {
		t.Errorf("TakeToggles should drain, got %d", got)
	}
	// two writes in a cycle accumulate (glitch modelling)
	r.Set(logic.FromUint64(8, 0x00))
	r.Set(logic.FromUint64(8, 0x0f))
	if got := r.TakeToggles(); got != 12 {
		t.Errorf("glitch toggles = %d, want 12", got)
	}
}

func TestRegResetValueAndGating(t *testing.T) {
	r := NewReg("r", 4).WithReset(logic.FromUint64(4, 0xa))
	if r.Get().Uint64() != 0xa {
		t.Errorf("reset value = %#x", r.Get().Uint64())
	}
	r.Set(logic.FromUint64(4, 0x5))
	r.Gate(true)
	r.Reset()
	if r.Get().Uint64() != 0xa || r.TakeToggles() != 0 || r.Gated() {
		t.Error("Reset should restore value, clear toggles and ungate")
	}
}

func TestRegWithResetWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReg("r", 4).WithReset(logic.FromUint64(8, 0))
}

func TestNetIsNotMemory(t *testing.T) {
	n := NewNet("n", 16)
	if n.IsMemory() {
		t.Error("net reported as memory")
	}
	c := newCounter()
	if got := MemoryBits(c); got != 9 {
		t.Errorf("MemoryBits = %d, want 9", got)
	}
}

func TestPortWidths(t *testing.T) {
	c := newCounter()
	if got := PortWidths(c, In); got != 2 {
		t.Errorf("PI bits = %d", got)
	}
	if got := PortWidths(c, Out); got != 9 {
		t.Errorf("PO bits = %d", got)
	}
}

func TestSortedPortNames(t *testing.T) {
	got := SortedPortNames(newCounter())
	want := []string{"clr", "en", "co", "count"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("port %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestValuesClone(t *testing.T) {
	v := Values{"a": logic.FromUint64(8, 1)}
	c := v.Clone()
	c["a"] = logic.FromUint64(8, 2)
	if v["a"].Uint64() != 1 {
		t.Error("Clone aliases the original map")
	}
}

func TestSimulatorReset(t *testing.T) {
	s := NewSimulator(newCounter())
	for i := 0; i < 10; i++ {
		s.MustStep(in(1, 0))
	}
	s.Reset()
	if s.Cycle() != 0 {
		t.Errorf("cycle after reset = %d", s.Cycle())
	}
	out := s.MustStep(in(0, 0))
	if got := out["count"].Uint64(); got != 0 {
		t.Errorf("count after reset = %d", got)
	}
}

func TestQuickCounterMatchesModulo(t *testing.T) {
	f := func(steps uint16) bool {
		n := int(steps % 1000)
		s := NewSimulator(newCounter())
		var out Values
		out = s.MustStep(in(0, 0))
		for i := 0; i < n; i++ {
			out = s.MustStep(in(1, 0))
		}
		return out["count"].Uint64() == uint64(n%256)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
