package trace

import "fmt"

// Limits bounds the resources a trace parse may commit. The readers are
// used on untrusted inputs — fuzzed VCD dumps, streaming uploads into the
// psmd daemon — where a tiny input can demand huge allocations (a bare
// "#99999999" timestamp forward-fills tens of millions of rows). A zero
// field means unlimited; the zero Limits value reproduces the historical
// unbounded behaviour of ReadVCD / ReadFunctionalCSV / ReadPowerCSV.
//
// Violations surface as *LimitError, so callers (the fuzz harness, the
// daemon's ingest path) can distinguish "hostile or oversized input" from
// a malformed one.
type Limits struct {
	// MaxInstants caps the rows a parse may materialize, counting
	// forward-filled VCD rows.
	MaxInstants int
	// MaxSignals caps the declared signal count.
	MaxSignals int
	// MaxWidthBits caps the total declared signal width in bits.
	MaxWidthBits int
	// MaxLineBytes caps one input line (scanner buffer size). Zero uses
	// the historical 1 MiB buffer.
	MaxLineBytes int
}

// LimitError reports a resource limit exceeded during a bounded parse.
type LimitError struct {
	What  string
	Limit int
	Got   int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("trace: input exceeds %s limit (%d > %d)", e.What, e.Got, e.Limit)
}

func (l Limits) lineBytes() int {
	if l.MaxLineBytes > 0 {
		return l.MaxLineBytes
	}
	return 1 << 20
}

// checkSignals validates a declared signal set against the limits.
func (l Limits) checkSignals(count, widthBits int) error {
	if l.MaxSignals > 0 && count > l.MaxSignals {
		return &LimitError{What: "signal count", Limit: l.MaxSignals, Got: count}
	}
	if l.MaxWidthBits > 0 && widthBits > l.MaxWidthBits {
		return &LimitError{What: "total signal width", Limit: l.MaxWidthBits, Got: widthBits}
	}
	return nil
}

// checkInstants validates a row count (or a forward-fill target) against
// the limits.
func (l Limits) checkInstants(n int) error {
	if l.MaxInstants > 0 && n > l.MaxInstants {
		return &LimitError{What: "instant count", Limit: l.MaxInstants, Got: n}
	}
	return nil
}
