package trace

import (
	"errors"
	"strings"
	"testing"
)

func wantLimitError(t *testing.T, err error, what string) {
	t.Helper()
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("got %v, want *LimitError for %s", err, what)
	}
	if le.What != what {
		t.Fatalf("LimitError on %q, want %q (err: %v)", le.What, what, le)
	}
	if le.Got <= le.Limit {
		t.Fatalf("LimitError without an exceeded limit: %v", le)
	}
}

func TestReadVCDBoundedRejectsHugeTimestamp(t *testing.T) {
	// A 40-byte dump whose unbounded parse forward-fills a billion rows.
	in := "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n#999999999\n"
	_, err := ReadVCDBounded(strings.NewReader(in), Limits{MaxInstants: 1 << 14})
	wantLimitError(t, err, "instant count")

	// The same dump parses under no limits with a sane timestamp.
	ok := "$var wire 1 ! a $end\n$enddefinitions $end\n#0\n#3\n"
	ft, err := ReadVCDBounded(strings.NewReader(ok), Limits{MaxInstants: 1 << 14})
	if err != nil {
		t.Fatalf("bounded parse of benign dump: %v", err)
	}
	if ft.Len() != 4 {
		t.Fatalf("got %d instants, want 4", ft.Len())
	}
}

func TestReadVCDBoundedRejectsWideDeclarations(t *testing.T) {
	in := "$var wire 999999 ! bus $end\n$enddefinitions $end\n#0\n"
	_, err := ReadVCDBounded(strings.NewReader(in), Limits{MaxWidthBits: 2048})
	wantLimitError(t, err, "total signal width")

	_, err = ReadVCDBounded(strings.NewReader(hostileManySignalsVCD()), Limits{MaxSignals: 32})
	wantLimitError(t, err, "signal count")
}

func TestReadFunctionalCSVBounded(t *testing.T) {
	in := "a:1,b:4\n1,a\n0,3\n1,f\n"
	if _, err := ReadFunctionalCSVBounded(strings.NewReader(in), Limits{MaxInstants: 3}); err != nil {
		t.Fatalf("csv within limits: %v", err)
	}
	_, err := ReadFunctionalCSVBounded(strings.NewReader(in), Limits{MaxInstants: 2})
	wantLimitError(t, err, "instant count")

	_, err = ReadFunctionalCSVBounded(strings.NewReader(in), Limits{MaxSignals: 1})
	wantLimitError(t, err, "signal count")

	_, err = ReadFunctionalCSVBounded(strings.NewReader(in), Limits{MaxWidthBits: 4})
	wantLimitError(t, err, "total signal width")
}

func TestReadPowerCSVBounded(t *testing.T) {
	in := "1.0\n2.0\n3.0\n"
	if _, err := ReadPowerCSVBounded(strings.NewReader(in), Limits{MaxInstants: 3}); err != nil {
		t.Fatalf("power csv within limits: %v", err)
	}
	_, err := ReadPowerCSVBounded(strings.NewReader(in), Limits{MaxInstants: 2})
	wantLimitError(t, err, "instant count")
}

func TestZeroLimitsAreUnbounded(t *testing.T) {
	in := "a:1\n" + strings.Repeat("1\n", 100)
	ft, err := ReadFunctionalCSVBounded(strings.NewReader(in), Limits{})
	if err != nil {
		t.Fatalf("zero limits must be unbounded: %v", err)
	}
	if ft.Len() != 100 {
		t.Fatalf("got %d rows, want 100", ft.Len())
	}
}
