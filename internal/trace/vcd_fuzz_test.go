package trace

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// hostileManySignalsVCD declares far more signals than the fuzz budget
// admits.
func hostileManySignalsVCD() string {
	var sb strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&sb, "$var wire 1 %s s%d $end\n", vcdID(i), i)
	}
	sb.WriteString("$enddefinitions $end\n#0\n")
	return sb.String()
}

const fuzzSeedVCD = `$timescale 1ns $end
$scope module top $end
$var wire 1 ! en $end
$var wire 1 " we $end
$var wire 4 # addr $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
0"
b0000 #
$end
#0
1!
b1010 #
#1
0!
1"
#3
bx1z0 #
#4
`

var vcdIdentName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*$`)

// fuzzVCDLimits is the resource budget of the fuzz run: rows are
// forward-filled up to the largest #timestamp and each row stores every
// declared signal, so a tiny input like "#99999999" can demand
// gigabytes. The bounded reader rejects such inputs with a *LimitError
// before committing the memory — the same mechanism the psmd streaming
// ingest uses on untrusted uploads.
var fuzzVCDLimits = Limits{
	MaxInstants:  1 << 14,
	MaxSignals:   32,
	MaxWidthBits: 1 << 11,
	MaxLineBytes: 1 << 16,
}

// FuzzVCDParse feeds arbitrary bytes to the bounded VCD reader. The
// parser must reject malformed dumps with an error — never panic, hang
// or over-allocate — and on success the trace must satisfy the reader's
// documented shape. Accepted dumps with writer-compatible signal names
// are additionally round-tripped through WriteVCD as a differential
// oracle.
func FuzzVCDParse(f *testing.F) {
	f.Add([]byte(fuzzSeedVCD))
	f.Add([]byte("$enddefinitions $end\n#0\n"))
	f.Add([]byte("$var wire 1 ! a $end\n$enddefinitions $end\n#0\n1!\n#2\n"))
	f.Add([]byte("$var wire 8 % bus $end\n$enddefinitions $end\nb10101010 %\n#0\n#1\n"))
	// Hostile inputs: tiny dumps whose successful parse would commit
	// enormous resources. The bounded reader must refuse them.
	f.Add([]byte("$var wire 1 ! a $end\n$enddefinitions $end\n#0\n#999999999\n"))
	f.Add([]byte("$var wire 999999999 ! bus $end\n$enddefinitions $end\n#0\n"))
	f.Add([]byte(hostileManySignalsVCD()))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}

		ft, err := ReadVCDBounded(bytes.NewReader(data), fuzzVCDLimits)
		if err != nil {
			var le *LimitError
			if errors.As(err, &le) && le.Got <= le.Limit {
				t.Fatalf("LimitError without an exceeded limit: %v", le)
			}
			return
		}
		if ft.Len() == 0 {
			t.Fatal("ReadVCD succeeded but produced an empty trace")
		}
		if len(ft.Signals) == 0 {
			t.Fatal("ReadVCD succeeded but produced no signals")
		}
		for i := 0; i < ft.Len(); i++ {
			if got := len(ft.Row(i)); got != len(ft.Signals) {
				t.Fatalf("row %d has %d values for %d signals", i, got, len(ft.Signals))
			}
		}

		// Round-trip oracle: WriteVCD output must parse back to the same
		// trace. Only meaningful when every name survives the $var line
		// tokenizer unchanged.
		for _, s := range ft.Signals {
			if !vcdIdentName.MatchString(s.Name) {
				return
			}
		}
		var buf bytes.Buffer
		if err := ft.WriteVCD(&buf, "fuzz", 1); err != nil {
			t.Fatalf("WriteVCD on parsed trace: %v", err)
		}
		back, err := ReadVCD(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parsing WriteVCD output: %v", err)
		}
		if back.Len() != ft.Len() {
			t.Fatalf("round trip changed length: %d -> %d", ft.Len(), back.Len())
		}
		if !back.SameSchema(ft) {
			t.Fatal("round trip changed the signal schema")
		}
		for i := 0; i < ft.Len(); i++ {
			for c := range ft.Signals {
				if !ft.Value(i, c).Equal(back.Value(i, c)) {
					t.Fatalf("round trip changed value at t=%d col=%d", i, c)
				}
			}
		}
	})
}
