package trace

import (
	"bytes"
	"strings"
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/ip"
	"psmkit/internal/logic"
)

func sig2() []Signal {
	return []Signal{{Name: "a", Width: 8}, {Name: "b", Width: 16}}
}

func TestAppendAndAccess(t *testing.T) {
	f := NewFunctional(sig2())
	f.Append([]logic.Vector{logic.FromUint64(8, 1), logic.FromUint64(16, 2)})
	f.Append([]logic.Vector{logic.FromUint64(8, 3), logic.FromUint64(16, 4)})
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
	if got := f.Value(1, 0).Uint64(); got != 3 {
		t.Errorf("Value(1,0) = %d", got)
	}
	if f.Column("b") != 1 || f.Column("zz") != -1 {
		t.Error("Column lookup wrong")
	}
}

func TestAppendValidates(t *testing.T) {
	f := NewFunctional(sig2())
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-width row accepted")
		}
	}()
	f.Append([]logic.Vector{logic.FromUint64(9, 1), logic.FromUint64(16, 2)})
}

func TestAppendCopiesRow(t *testing.T) {
	f := NewFunctional(sig2())
	row := []logic.Vector{logic.FromUint64(8, 1), logic.FromUint64(16, 2)}
	f.Append(row)
	row[0] = logic.FromUint64(8, 99)
	if got := f.Value(0, 0).Uint64(); got != 1 {
		t.Errorf("trace aliases caller slice: %d", got)
	}
}

func TestSameSchema(t *testing.T) {
	a := NewFunctional(sig2())
	b := NewFunctional(sig2())
	if !a.SameSchema(b) {
		t.Error("identical schemas reported different")
	}
	c := NewFunctional([]Signal{{Name: "a", Width: 8}})
	if a.SameSchema(c) {
		t.Error("different schemas reported same")
	}
}

func TestSlice(t *testing.T) {
	f := NewFunctional(sig2())
	for i := 0; i < 10; i++ {
		f.Append([]logic.Vector{logic.FromUint64(8, uint64(i)), logic.FromUint64(16, 0)})
	}
	s := f.Slice(3, 7)
	if s.Len() != 4 || s.Value(0, 0).Uint64() != 3 {
		t.Errorf("Slice wrong: len=%d first=%d", s.Len(), s.Value(0, 0).Uint64())
	}
}

func TestInputHammingDistance(t *testing.T) {
	f := NewFunctional(sig2())
	f.Append([]logic.Vector{logic.FromUint64(8, 0x00), logic.FromUint64(16, 0x0000)})
	f.Append([]logic.Vector{logic.FromUint64(8, 0x0f), logic.FromUint64(16, 0x0003)})
	f.Append([]logic.Vector{logic.FromUint64(8, 0x0f), logic.FromUint64(16, 0x0003)})
	hd := f.InputHammingDistance([]int{0, 1})
	want := []float64{0, 6, 0}
	for i := range want {
		if hd[i] != want[i] {
			t.Errorf("hd[%d] = %g, want %g", i, hd[i], want[i])
		}
	}
}

func TestFunctionalCSVRoundTrip(t *testing.T) {
	f := NewFunctional(sig2())
	f.Append([]logic.Vector{logic.FromUint64(8, 0xab), logic.FromUint64(16, 0xcdef)})
	f.Append([]logic.Vector{logic.FromUint64(8, 0), logic.FromUint64(16, 1)})
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFunctionalCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameSchema(f) || got.Len() != f.Len() {
		t.Fatalf("round trip shape mismatch")
	}
	for ti := 0; ti < f.Len(); ti++ {
		for c := range f.Signals {
			if !got.Value(ti, c).Equal(f.Value(ti, c)) {
				t.Errorf("value (%d,%d) differs", ti, c)
			}
		}
	}
}

func TestReadFunctionalCSVErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"a:8,b\n00,0000", // missing width
		"a:8\nzz",        // bad hex
		"a:8,b:16\nab",   // short row
		"a:0\n0",         // zero width
	}
	for _, c := range cases {
		if _, err := ReadFunctionalCSV(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestPowerCSVRoundTrip(t *testing.T) {
	p := &Power{Values: []float64{1.5e-3, 0, 3.25e-6}}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPowerCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("Len = %d", got.Len())
	}
	for i := range p.Values {
		if got.Values[i] != p.Values[i] {
			t.Errorf("value %d: %g != %g", i, got.Values[i], p.Values[i])
		}
	}
}

func TestReadPowerCSVError(t *testing.T) {
	if _, err := ReadPowerCSV(strings.NewReader("1.0\nnot-a-number\n")); err == nil {
		t.Error("bad float accepted")
	}
}

func TestCaptureRecordsSimulation(t *testing.T) {
	core := ip.NewRAM()
	sim := hdl.NewSimulator(core)
	f, obs := Capture(core)
	sim.Observe(obs)

	step := func(en, we, addr, wdata uint64) {
		sim.MustStep(hdl.Values{
			"en":    logic.FromUint64(1, en),
			"we":    logic.FromUint64(1, we),
			"addr":  logic.FromUint64(10, addr),
			"wdata": logic.FromUint64(32, wdata),
		})
	}
	step(1, 1, 4, 0xbeef)
	step(1, 0, 4, 0)
	step(0, 0, 0, 0)

	if f.Len() != 3 {
		t.Fatalf("captured %d rows", f.Len())
	}
	rcol := f.Column("rdata")
	if rcol < 0 {
		t.Fatal("rdata column missing")
	}
	if got := f.Value(1, rcol).Uint64(); got != 0xbeef {
		t.Errorf("captured rdata = %#x", got)
	}
	// schema covers all 5 ports, inputs first
	if len(f.Signals) != 5 {
		t.Errorf("schema has %d signals", len(f.Signals))
	}
	if f.Signals[len(f.Signals)-1].Name != "rdata" {
		t.Errorf("outputs should come last, got %v", f.Signals)
	}
}

func TestInputColumns(t *testing.T) {
	core := ip.NewRAM()
	f, _ := Capture(core)
	cols := InputColumns(f, core)
	if len(cols) != 4 {
		t.Fatalf("input columns = %v", cols)
	}
	for _, c := range cols {
		if f.Signals[c].Name == "rdata" {
			t.Error("output column classified as input")
		}
	}
}

func TestWriteVCD(t *testing.T) {
	f := NewFunctional([]Signal{{Name: "clk_en", Width: 1}, {Name: "bus", Width: 8}})
	f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
	f.Append([]logic.Vector{logic.FromUint64(1, 1), logic.FromUint64(8, 0x5a)})
	f.Append([]logic.Vector{logic.FromUint64(1, 1), logic.FromUint64(8, 0x5a)}) // no change
	var buf bytes.Buffer
	if err := f.WriteVCD(&buf, "dut", 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 20ns $end",
		"$var wire 1 ! clk_en $end",
		"$var wire 8 \" bus $end",
		"#0", "#1", "b1011010 \"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The closing timestamp marks the dump horizon so ReadVCD recovers
	// trailing unchanged instants.
	if !strings.Contains(out, "#2") {
		t.Error("VCD missing the closing timestamp")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate VCD id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestVCDRoundTrip(t *testing.T) {
	f := NewFunctional([]Signal{{Name: "en", Width: 1}, {Name: "bus", Width: 12}})
	vals := [][2]uint64{{0, 0}, {1, 0x5a}, {1, 0x5a}, {0, 0xfff}, {1, 1}, {1, 1}, {1, 1}, {0, 0}}
	for _, v := range vals {
		f.Append([]logic.Vector{logic.FromUint64(1, v[0]), logic.FromUint64(12, v[1])})
	}
	var buf bytes.Buffer
	if err := f.WriteVCD(&buf, "dut", 10); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVCD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SameSchema(f) {
		t.Fatalf("schema differs: %v vs %v", got.Signals, f.Signals)
	}
	if got.Len() != f.Len() {
		t.Fatalf("length %d, want %d", got.Len(), f.Len())
	}
	for i := 0; i < f.Len(); i++ {
		for c := range f.Signals {
			if !got.Value(i, c).Equal(f.Value(i, c)) {
				t.Errorf("value (%d,%d) = %s, want %s", i, c, got.Value(i, c), f.Value(i, c))
			}
		}
	}
}

func TestReadVCDForeignDialect(t *testing.T) {
	// A dump in the style other simulators emit: $dumpvars block with
	// initial values, x bits, reg vars, gaps between timestamps.
	in := `$date today $end
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var reg 8 " data $end
$upscope $end
$enddefinitions $end
$dumpvars
0!
bxxxxxxxx "
$end
#0
1!
#3
0!
b1010x01z "
#5
1!
`
	f, err := ReadVCD(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 6 {
		t.Fatalf("rows = %d, want 6 (timestamps 0..5)", f.Len())
	}
	clk, data := f.Column("clk"), f.Column("data")
	if got := f.Value(0, clk).Uint64(); got != 1 {
		t.Errorf("clk@0 = %d", got)
	}
	if got := f.Value(0, data).Uint64(); got != 0 {
		t.Errorf("data@0 = %#x (x bits read as 0)", got)
	}
	// forward fill between #0 and #3
	if got := f.Value(2, clk).Uint64(); got != 1 {
		t.Errorf("clk@2 = %d", got)
	}
	// after #3: clk=0, data=1010x01z → 0b10100010
	if got := f.Value(3, clk).Uint64(); got != 0 {
		t.Errorf("clk@3 = %d", got)
	}
	if got := f.Value(4, data).Uint64(); got != 0b10100010 {
		t.Errorf("data@4 = %#b", got)
	}
	if got := f.Value(5, clk).Uint64(); got != 1 {
		t.Errorf("clk@5 = %d", got)
	}
}

func TestReadVCDErrors(t *testing.T) {
	cases := []string{
		"",
		"$enddefinitions $end\n#0\n", // no signals
		"$var wire x ! a $end\n$enddefinitions $end\n#0",       // bad width
		"$var wire 1 ! a $end\n$enddefinitions $end\n0?\n#0\n", // unknown id
		"$var wire 1 ! a $end\n$enddefinitions $end\n",         // no timestamps
		"$var wire 1 ! a $end\n$enddefinitions $end\n#-1\n",    // bad timestamp
		"$var wire 8 ! a $end\n$enddefinitions $end\n#0\nq!\n", // bad change
	}
	for _, c := range cases {
		if _, err := ReadVCD(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}
