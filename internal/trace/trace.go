// Package trace defines the training-trace artifacts of the PSM flow
// (Definition 2 of the paper): functional traces — per-cycle valuations of
// a model's primary inputs and outputs — and dynamic power traces. It also
// provides capture observers that record traces during simulation, a CSV
// interchange format with full round-trip support, and a VCD writer for
// waveform-viewer interoperability.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Signal identifies one column of a functional trace.
type Signal struct {
	Name  string
	Width int
}

// Functional is a finite sequence of valuations of a fixed signal set —
// the paper's Φ = ⟨φ1, …, φn⟩.
type Functional struct {
	Signals []Signal
	rows    [][]logic.Vector
}

// NewFunctional returns an empty functional trace over the given signals.
func NewFunctional(signals []Signal) *Functional {
	return &Functional{Signals: append([]Signal(nil), signals...)}
}

// Len returns the number of simulation instants recorded.
func (f *Functional) Len() int { return len(f.rows) }

// Append adds one instant's valuation. The row length must match the
// signal set; widths are validated.
func (f *Functional) Append(row []logic.Vector) {
	if len(row) != len(f.Signals) {
		panic(fmt.Sprintf("trace: row has %d values, trace has %d signals", len(row), len(f.Signals)))
	}
	for i, v := range row {
		if v.Width() != f.Signals[i].Width {
			panic(fmt.Sprintf("trace: signal %q width %d, value width %d",
				f.Signals[i].Name, f.Signals[i].Width, v.Width()))
		}
	}
	f.rows = append(f.rows, append([]logic.Vector(nil), row...))
}

// Row returns the valuation at instant t.
func (f *Functional) Row(t int) []logic.Vector { return f.rows[t] }

// Value returns signal col's value at instant t.
func (f *Functional) Value(t, col int) logic.Vector { return f.rows[t][col] }

// Column returns the index of the named signal, or -1.
func (f *Functional) Column(name string) int {
	for i, s := range f.Signals {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// SameSchema reports whether o records exactly the same signal set.
func (f *Functional) SameSchema(o *Functional) bool {
	if len(f.Signals) != len(o.Signals) {
		return false
	}
	for i := range f.Signals {
		if f.Signals[i] != o.Signals[i] {
			return false
		}
	}
	return true
}

// Slice returns a view of instants [from, to).
func (f *Functional) Slice(from, to int) *Functional {
	return &Functional{Signals: f.Signals, rows: f.rows[from:to]}
}

// InputHammingDistance returns, for each instant t > 0, the total Hamming
// distance between the valuations of the listed columns at t and t-1 —
// the regressor of the paper's data-dependent state calibration. Instant 0
// gets 0.
func (f *Functional) InputHammingDistance(cols []int) []float64 {
	out := make([]float64, f.Len())
	for t := 1; t < f.Len(); t++ {
		hd := 0
		for _, c := range cols {
			hd += f.rows[t][c].HammingDistance(f.rows[t-1][c])
		}
		out[t] = float64(hd)
	}
	return out
}

// CoreSchema returns the signal set of a core's primary inputs and
// outputs, in the kernel's stable port order.
func CoreSchema(core hdl.Core) []Signal {
	widths := map[string]int{}
	for _, p := range core.Ports() {
		widths[p.Name] = p.Width
	}
	var sigs []Signal
	for _, name := range hdl.SortedPortNames(core) {
		sigs = append(sigs, Signal{Name: name, Width: widths[name]})
	}
	return sigs
}

// InputColumns returns the column indices of f that correspond to primary
// inputs of the core.
func InputColumns(f *Functional, core hdl.Core) []int {
	var cols []int
	for _, p := range core.Ports() {
		if p.Dir == hdl.In {
			if c := f.Column(p.Name); c >= 0 {
				cols = append(cols, c)
			}
		}
	}
	return cols
}

// Capture returns a functional trace bound to the core's PI/PO schema and
// an observer that appends one row per simulated cycle.
func Capture(core hdl.Core) (*Functional, hdl.Observer) {
	f := NewFunctional(CoreSchema(core))
	names := hdl.SortedPortNames(core)
	obs := func(_ int, in, out hdl.Values) {
		row := make([]logic.Vector, len(names))
		for i, n := range names {
			if v, ok := in[n]; ok {
				row[i] = v
			} else {
				row[i] = out[n]
			}
		}
		f.Append(row)
	}
	return f, obs
}

// Power is a dynamic power trace — the paper's Δ = ⟨δ1, …, δn⟩, in watts
// per simulation instant.
type Power struct {
	Values []float64
}

// Len returns the number of instants.
func (p *Power) Len() int { return len(p.Values) }

// --- CSV interchange --------------------------------------------------------

// WriteCSV serializes the functional trace: a header of name:width fields
// followed by one hex-encoded row per instant.
func (f *Functional) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, s := range f.Signals {
		if i > 0 {
			fmt.Fprint(bw, ",")
		}
		fmt.Fprintf(bw, "%s:%d", s.Name, s.Width)
	}
	fmt.Fprintln(bw)
	for _, row := range f.rows {
		for i, v := range row {
			if i > 0 {
				fmt.Fprint(bw, ",")
			}
			fmt.Fprint(bw, v.Hex())
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadFunctionalCSV parses the format produced by WriteCSV. It is
// unbounded; parsers facing untrusted input should use
// ReadFunctionalCSVBounded.
func ReadFunctionalCSV(r io.Reader) (*Functional, error) {
	return ReadFunctionalCSVBounded(r, Limits{})
}

// ReadFunctionalCSVBounded is ReadFunctionalCSV under resource limits;
// violations return a *LimitError.
func ReadFunctionalCSVBounded(r io.Reader, lim Limits) (*Functional, error) {
	sc := bufio.NewScanner(r)
	buf := lim.lineBytes()
	sc.Buffer(make([]byte, min(buf, 1<<20)), buf)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty CSV")
	}
	var sigs []Signal
	widthBits := 0
	for _, field := range strings.Split(sc.Text(), ",") {
		name, widthStr, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("trace: bad header field %q", field)
		}
		w, err := strconv.Atoi(widthStr)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("trace: bad width in header field %q", field)
		}
		sigs = append(sigs, Signal{Name: name, Width: w})
		widthBits += w
	}
	if err := lim.checkSignals(len(sigs), widthBits); err != nil {
		return nil, err
	}
	f := NewFunctional(sigs)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if err := lim.checkInstants(f.Len() + 1); err != nil {
			return nil, err
		}
		fields := strings.Split(text, ",")
		if len(fields) != len(sigs) {
			return nil, fmt.Errorf("trace: line %d has %d fields, want %d", line, len(fields), len(sigs))
		}
		row := make([]logic.Vector, len(fields))
		for i, field := range fields {
			v, err := logic.ParseHex(sigs[i].Width, field)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %v", line, i, err)
			}
			row[i] = v
		}
		f.Append(row)
	}
	return f, sc.Err()
}

// WriteCSV serializes the power trace, one value per line.
func (p *Power) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range p.Values {
		fmt.Fprintf(bw, "%.9e\n", v)
	}
	return bw.Flush()
}

// ReadPowerCSV parses the format produced by Power.WriteCSV. It is
// unbounded; parsers facing untrusted input should use
// ReadPowerCSVBounded.
func ReadPowerCSV(r io.Reader) (*Power, error) {
	return ReadPowerCSVBounded(r, Limits{})
}

// ReadPowerCSVBounded is ReadPowerCSV under resource limits; violations
// return a *LimitError.
func ReadPowerCSVBounded(r io.Reader, lim Limits) (*Power, error) {
	sc := bufio.NewScanner(r)
	buf := lim.lineBytes()
	sc.Buffer(make([]byte, min(buf, 1<<20)), buf)
	p := &Power{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if err := lim.checkInstants(p.Len() + 1); err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: power line %d: %v", line, err)
		}
		p.Values = append(p.Values, v)
	}
	return p, sc.Err()
}

// --- VCD export ---------------------------------------------------------------

// WriteVCD emits the functional trace as a Value Change Dump for waveform
// viewers. Signals get single-character identifiers starting at '!'.
func (f *Functional) WriteVCD(w io.Writer, module string, timescaleNS int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$timescale %dns $end\n", timescaleNS)
	fmt.Fprintf(bw, "$scope module %s $end\n", module)
	ids := make([]string, len(f.Signals))
	for i, s := range f.Signals {
		ids[i] = vcdID(i)
		fmt.Fprintf(bw, "$var wire %d %s %s $end\n", s.Width, ids[i], s.Name)
	}
	fmt.Fprintln(bw, "$upscope $end")
	fmt.Fprintln(bw, "$enddefinitions $end")

	var prev []logic.Vector
	lastEmitted := -1
	for t, row := range f.rows {
		changed := false
		for i, v := range row {
			if prev == nil || !prev[i].Equal(v) {
				if !changed {
					fmt.Fprintf(bw, "#%d\n", t)
					lastEmitted = t
					changed = true
				}
				if f.Signals[i].Width == 1 {
					fmt.Fprintf(bw, "%d%s\n", v.Bit(0), ids[i])
				} else {
					fmt.Fprintf(bw, "b%s %s\n", vcdBits(v), ids[i])
				}
			}
		}
		prev = row
	}
	// Close the dump with a final timestamp so readers recover trailing
	// unchanged instants.
	if n := len(f.rows); n > 0 && lastEmitted < n-1 {
		fmt.Fprintf(bw, "#%d\n", n-1)
	}
	return bw.Flush()
}

func vcdID(i int) string {
	const base = 94 // printable ASCII from '!'
	var sb strings.Builder
	for {
		sb.WriteByte(byte('!' + i%base))
		i /= base
		if i == 0 {
			break
		}
	}
	return sb.String()
}

func vcdBits(v logic.Vector) string {
	var sb strings.Builder
	started := false
	for i := v.Width() - 1; i >= 0; i-- {
		b := v.Bit(i)
		if b == 1 {
			started = true
		}
		if started || i == 0 {
			fmt.Fprintf(&sb, "%d", b)
		}
	}
	return sb.String()
}

// Project returns a trace over a subset of columns (sharing the value
// storage). It is used by the hierarchical-PSM experiments to derive the
// flat PI/PO view from a probed capture.
func (f *Functional) Project(cols []int) *Functional {
	sigs := make([]Signal, len(cols))
	for i, c := range cols {
		sigs[i] = f.Signals[c]
	}
	out := NewFunctional(sigs)
	for _, row := range f.rows {
		nr := make([]logic.Vector, len(cols))
		for i, c := range cols {
			nr[i] = row[c]
		}
		out.rows = append(out.rows, nr)
	}
	return out
}
