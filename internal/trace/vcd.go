package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"psmkit/internal/logic"
)

// ReadVCD parses a Value Change Dump into a functional trace with one row
// per timestamp unit in [0, lastTimestamp]. Values persist between change
// records (forward fill); signals with no value before their first change
// start at zero; `x` and `z` bits read as 0, matching the common
// convention when importing simulator dumps for power analysis.
//
// The reader accepts the subset of VCD that simulators commonly emit (and
// WriteVCD produces): $var declarations of type wire/reg, scalar changes
// `0id`/`1id`, vector changes `b... id`, and `#time` records. $dumpvars /
// $end markers are tolerated.
//
// ReadVCD is unbounded; parsers facing untrusted input should use
// ReadVCDBounded.
func ReadVCD(r io.Reader) (*Functional, error) {
	return ReadVCDBounded(r, Limits{})
}

// ReadVCDBounded is ReadVCD under resource limits: the parse fails with a
// *LimitError — before committing the memory — when the dump declares
// more signals or total width than allowed, or when a timestamp would
// forward-fill more rows than MaxInstants. The fuzz harness and the psmd
// ingest path share these limits.
func ReadVCDBounded(r io.Reader, lim Limits) (*Functional, error) {
	sc := bufio.NewScanner(r)
	buf := lim.lineBytes()
	sc.Buffer(make([]byte, min(buf, 1<<20)), buf)

	type sig struct {
		name  string
		width int
		col   int
	}
	byID := map[string]*sig{}
	var order []*sig

	// --- header -----------------------------------------------------------
	inDefs := true
	for inDefs && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "$var"):
			// $var wire <width> <id> <name> [indices] $end
			f := strings.Fields(line)
			if len(f) < 5 {
				return nil, fmt.Errorf("trace: malformed $var: %q", line)
			}
			w, err := strconv.Atoi(f[2])
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("trace: bad width in $var: %q", line)
			}
			s := &sig{name: f[4], width: w, col: len(order)}
			byID[f[3]] = s
			order = append(order, s)
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		default:
			// $timescale, $scope, $upscope, comments… skipped.
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("trace: VCD declares no signals")
	}
	widthBits := 0
	for _, s := range order {
		widthBits += s.width
	}
	if err := lim.checkSignals(len(order), widthBits); err != nil {
		return nil, err
	}

	sigs := make([]Signal, len(order))
	cur := make([]logic.Vector, len(order))
	for i, s := range order {
		sigs[i] = Signal{Name: s.name, Width: s.width}
		cur[i] = logic.New(s.width)
	}
	out := NewFunctional(sigs)

	apply := func(line string) error {
		switch line[0] {
		case '0', '1':
			s, ok := byID[line[1:]]
			if !ok {
				return fmt.Errorf("trace: change for unknown VCD id %q", line[1:])
			}
			cur[s.col] = logic.FromUint64(s.width, uint64(line[0]-'0'))
		case 'x', 'z', 'X', 'Z':
			s, ok := byID[line[1:]]
			if !ok {
				return fmt.Errorf("trace: change for unknown VCD id %q", line[1:])
			}
			cur[s.col] = logic.New(s.width)
		case 'b', 'B':
			bits, id, ok := strings.Cut(line[1:], " ")
			if !ok {
				return fmt.Errorf("trace: malformed vector change %q", line)
			}
			s, found := byID[strings.TrimSpace(id)]
			if !found {
				return fmt.Errorf("trace: change for unknown VCD id %q", id)
			}
			v := logic.New(s.width)
			for _, c := range bits {
				v = v.Shl(1)
				if c == '1' {
					v = v.SetBit(0, 1)
				}
				// 0/x/z all contribute a 0 bit.
			}
			cur[s.col] = v
		default:
			return fmt.Errorf("trace: unsupported VCD change %q", line)
		}
		return nil
	}

	emitTo := func(t int) {
		for out.Len() < t {
			out.Append(cur)
		}
	}

	// --- value changes ------------------------------------------------------
	started := false
	lastT := 0
	handle := func(line string) error {
		if line == "" || strings.HasPrefix(line, "$") {
			return nil // $dumpvars / $end markers
		}
		if line[0] == '#' {
			t, err := strconv.Atoi(line[1:])
			if err != nil || t < 0 {
				return fmt.Errorf("trace: bad timestamp %q", line)
			}
			// The final emitTo materializes row lastT as well, so the
			// commitment of accepting this timestamp is t+1 rows.
			if err := lim.checkInstants(t + 1); err != nil {
				return err
			}
			if started {
				// rows for [lastT, t) carry the previous values
				emitTo(t)
			}
			started = true
			lastT = t
			return nil
		}
		// Changes before the first timestamp set initial values.
		return apply(line)
	}

	for sc.Scan() {
		if err := handle(strings.TrimSpace(sc.Text())); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !started {
		return nil, fmt.Errorf("trace: VCD has no timestamps")
	}
	// final row for the last timestamp
	emitTo(lastT + 1)
	return out, nil
}
