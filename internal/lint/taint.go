package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the map-order taint engine shared by the map-order rule
// (findings) and the facts pass (cross-package propagation). The
// analysis is intra-procedural and flow-ordered by source position: an
// event stream (taints, aliases, sort-clears, sinks, returns) is
// collected from the function body, sorted by position, and replayed
// against a live taint set — so `sort.Strings(keys)` between the
// map-range append and the write clears the hazard, while the same
// write before the sort reports it.

// isMapExpr reports whether e's resolved type is a map.
func isMapExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// ioWriterIface is a structural io.Writer used to classify emission
// receivers without importing package io into the analysis universe.
var ioWriterIface = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// implementsWriter reports whether t (or *t) satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriterIface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), ioWriterIface)
	}
	return false
}

// recvNamed resolves a method's receiver to (pkgPath, typeName).
func recvNamed(fn *types.Func) (string, string, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", "", false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), named.Obj().Name(), true
}

// emissionSink classifies a call as a per-iteration serialization
// emission: executed once per loop turn, it commits bytes (or hash
// state) in iteration order, which no later sort can repair.
func emissionSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil {
		switch {
		case pkg.Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint"):
			return "fmt." + fn.Name(), true
		case pkg.Path() == "io" && fn.Name() == "WriteString":
			return "io.WriteString", true
		}
	}
	pkgPath, typeName, ok := recvNamed(fn)
	if !ok {
		return "", false
	}
	switch {
	case pkgPath == "encoding/gob" && typeName == "Encoder" && fn.Name() == "Encode":
		return "gob.Encoder.Encode", true
	case pkgPath == "encoding/json" && typeName == "Encoder" && fn.Name() == "Encode":
		return "json.Encoder.Encode", true
	}
	if !strings.HasPrefix(fn.Name(), "Write") {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if implementsWriter(sig.Recv().Type()) {
		return fmt.Sprintf("(%s.%s).%s", shortPkg(pkgPath), typeName, fn.Name()), true
	}
	return "", false
}

// argSink classifies a call that serializes its arguments: a tainted
// (map-ordered) value among the returned args lands in output bytes.
func argSink(info *types.Info, call *ast.CallExpr) (string, []ast.Expr, bool) {
	if desc, ok := emissionSink(info, call); ok {
		args := call.Args
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
			// fmt.Fprint*/io.WriteString: the writer argument itself is
			// not serialized — only what follows it.
			if fn.Pkg().Path() == "fmt" || fn.Pkg().Path() == "io" {
				if len(args) > 0 {
					args = args[1:]
				}
			}
		}
		return desc, args, true
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil, false
	}
	if fn.Pkg().Path() == "encoding/json" && (fn.Name() == "Marshal" || fn.Name() == "MarshalIndent") {
		return "json." + fn.Name(), call.Args[:1], true
	}
	return "", nil, false
}

// sortClearArg reports the expression a sorting call canonicalizes
// (sort.Strings(x), sort.Slice(x, less), slices.Sort(x), ...).
func sortClearArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || len(call.Args) == 0 {
		return nil, false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return call.Args[0], true
		}
	case "slices":
		switch fn.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return call.Args[0], true
		}
	}
	return nil, false
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// --- event stream -----------------------------------------------------------

const (
	evTaint  = iota // direct taint: append (or fact call) inside a map range
	evAppend        // append outside a map range: tainted if a source is
	evAlias         // plain assignment: copies or clears taint
	evClear         // sort call (or handoff to an unknown callee)
	evSink          // serialization of a possibly tainted value
	evRet           // return of a possibly tainted value
)

type taintEvent struct {
	pos    token.Pos
	kind   int
	key    string   // primary expression key (lhs, sorted arg, sunk arg)
	srcs   []string // taint sources for evAppend/evAlias
	origin taintVal // provenance for evTaint
	msg    string   // sink description
}

// taintVal is one live taint: where the map iteration happened and —
// when it flowed in through a call — which function carried it.
type taintVal struct {
	origin token.Position
	via    string // producer FullName for cross-function taint, else ""
}

func (v taintVal) describe(env *Env) string {
	if v.via != "" {
		return fmt.Sprintf("a map iteration in %s (%s)", v.via, env.posLabel(v.origin))
	}
	return fmt.Sprintf("a map iteration (%s)", env.posLabel(v.origin))
}

type mapOrderResult struct {
	findings []Finding
	// retOrigin is the origin of the first tainted return value — the
	// seed of this function's cross-package TaintFact.
	retOrigin *token.Position
}

// analyzeMapOrder runs the taint engine over one function.
func analyzeMapOrder(p *Package, env *Env, fd *ast.FuncDecl) mapOrderResult {
	info := p.Info

	// Map-range body spans: taint introduction and per-iteration
	// emission both key off "is this position inside one".
	type span struct{ from, to, rng token.Pos }
	var mapSpans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && isMapExpr(info, rs.X) {
			mapSpans = append(mapSpans, span{rs.Body.Pos(), rs.Body.End(), rs.For})
		}
		return true
	})
	inMapRange := func(pos token.Pos) (token.Pos, bool) {
		for _, s := range mapSpans {
			if pos >= s.from && pos < s.to {
				return s.rng, true
			}
		}
		return token.NoPos, false
	}

	// Slice-range spans: appending inside `for _, k := range tainted`
	// propagates the source's taint to the destination.
	type rspan struct {
		from, to token.Pos
		key      string
	}
	var sliceSpans []rspan
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok && !isMapExpr(info, rs.X) {
			sliceSpans = append(sliceSpans, rspan{rs.Body.Pos(), rs.Body.End(), exprKey(unwrap(info, rs.X))})
		}
		return true
	})
	enclosingRangeKeys := func(pos token.Pos) []string {
		var out []string
		for _, s := range sliceSpans {
			if pos >= s.from && pos < s.to {
				out = append(out, s.key)
			}
		}
		return out
	}

	var events []taintEvent
	var res mapOrderResult
	factOrigin := func(e ast.Expr) (TaintFact, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return TaintFact{}, false
		}
		return env.Facts.Tainted(calleeFunc(info, call))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Ranging a tainted slice hands its order to the loop
			// variable: `for _, k := range keys` taints k when keys is.
			if !isMapExpr(info, n.X) {
				if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
					events = append(events, taintEvent{
						pos: n.For, kind: evAlias, key: v.Name,
						srcs: []string{exprKey(unwrap(info, n.X))},
					})
				}
			}
		case *ast.CallExpr:
			if desc, ok := emissionSink(info, n); ok {
				if rng, inside := inMapRange(n.Lparen); inside {
					res.findings = append(res.findings, Finding{
						Rule: "map-order",
						Pos:  p.Fset.Position(n.Lparen),
						Msg: fmt.Sprintf("%s inside a map range emits in nondeterministic iteration order (range at %s); iterate sorted keys instead",
							desc, env.posLabel(p.Fset.Position(rng))),
					})
					return true
				}
			}
			if arg, ok := sortClearArg(info, n); ok {
				events = append(events, taintEvent{pos: n.Lparen, kind: evClear, key: exprKey(unwrap(info, arg))})
				return true
			}
			if desc, args, ok := argSink(info, n); ok {
				for _, a := range args {
					if fact, hit := factOrigin(a); hit {
						res.findings = append(res.findings, Finding{
							Rule: "map-order",
							Pos:  p.Fset.Position(n.Lparen),
							Msg: fmt.Sprintf("%s serializes the result of %s, whose order derives from a map iteration (%s), without an intervening sort",
								desc, fact.Func, env.posLabel(fact.Origin)),
						})
						continue
					}
					events = append(events, taintEvent{pos: n.Lparen, kind: evSink, key: exprKey(unwrap(info, a)), msg: desc})
				}
				return true
			}
			// Handing a value to any other named function transfers
			// responsibility (the callee may sort it): clear its taint
			// rather than guess. Builtins (len, cap, copy, append —
			// handled separately) resolve to no *types.Func and are
			// left alone.
			if fn := calleeFunc(info, n); fn != nil {
				if isAppendCall(info, n) {
					return true
				}
				for _, a := range n.Args {
					events = append(events, taintEvent{pos: n.Lparen, kind: evClear, key: exprKey(unwrap(info, a))})
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, isIdent := lhs.(*ast.Ident)
				if isIdent && id.Name == "_" {
					continue
				}
				lhsKey := exprKey(lhs)
				rhs := ast.Unparen(n.Rhs[i])
				if call, ok := rhs.(*ast.CallExpr); ok {
					if isAppendCall(info, call) {
						ev := taintEvent{pos: n.TokPos, kind: evAppend, key: lhsKey}
						if rng, inside := inMapRange(n.TokPos); inside {
							ev.kind = evTaint
							ev.origin = taintVal{origin: p.Fset.Position(rng)}
						} else {
							for _, a := range call.Args {
								ev.srcs = append(ev.srcs, exprKey(unwrap(info, a)))
							}
							ev.srcs = append(ev.srcs, enclosingRangeKeys(n.TokPos)...)
						}
						events = append(events, ev)
						continue
					}
					if fact, ok := env.Facts.Tainted(calleeFunc(info, call)); ok {
						events = append(events, taintEvent{
							pos: n.TokPos, kind: evTaint, key: lhsKey,
							origin: taintVal{origin: fact.Origin, via: fact.Func},
						})
						continue
					}
				}
				events = append(events, taintEvent{
					pos: n.TokPos, kind: evAlias, key: lhsKey,
					srcs: []string{exprKey(unwrap(info, n.Rhs[i]))},
				})
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				if fact, ok := factOrigin(e); ok && res.retOrigin == nil {
					res.retOrigin = &fact.Origin
					continue
				}
				events = append(events, taintEvent{pos: n.Return, kind: evRet, key: exprKey(unwrap(info, e))})
			}
		}
		return true
	})

	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	tainted := map[string]taintVal{}
	for _, ev := range events {
		switch ev.kind {
		case evTaint:
			tainted[ev.key] = ev.origin
		case evAppend:
			if _, already := tainted[ev.key]; already {
				break // appending more elements keeps the taint
			}
			for _, s := range ev.srcs {
				if o, ok := tainted[s]; ok {
					tainted[ev.key] = o
					break
				}
			}
		case evAlias:
			if o, ok := tainted[ev.srcs[0]]; ok {
				tainted[ev.key] = o
			} else {
				delete(tainted, ev.key)
			}
		case evClear:
			delete(tainted, ev.key)
		case evSink:
			if o, ok := tainted[ev.key]; ok {
				res.findings = append(res.findings, Finding{
					Rule: "map-order",
					Pos:  p.Fset.Position(ev.pos),
					Msg: fmt.Sprintf("%s serializes %q, whose order derives from %s, without an intervening sort",
						ev.msg, ev.key, o.describe(env)),
				})
			}
		case evRet:
			if o, ok := tainted[ev.key]; ok && res.retOrigin == nil {
				op := o.origin
				res.retOrigin = &op
			}
		}
	}
	return res
}

// isAppendCall reports whether the call is the append builtin.
func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
