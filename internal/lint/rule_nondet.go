package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// nondetSourceRule keeps ambient nondeterminism out of the
// model-construction packages (internal/psm, internal/mining,
// internal/stream): the streamed ≡ batch and parallel ≡ sequential
// guarantees are byte-identity claims, and a time.Now, an unseeded
// math/rand draw or an os.Getenv on a model path makes two identical
// runs diverge silently. Wall-clock metrics and deliberate
// environment probes are allowlisted per site with
// //psmlint:ignore nondet-source and a justification.
type nondetSourceRule struct{}

func (nondetSourceRule) ID() string { return "nondet-source" }

func (nondetSourceRule) Doc() string {
	return "time.Now / unseeded math/rand / os.Getenv reaching model-construction code (internal/psm, internal/mining, internal/stream)"
}

// nondetScopedPkgs are the import-path suffixes the rule applies to —
// the packages whose outputs must be reproducible byte for byte.
var nondetScopedPkgs = []string{"internal/psm", "internal/mining", "internal/stream"}

func inNondetScope(path string) bool {
	for _, s := range nondetScopedPkgs {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func (nondetSourceRule) Check(p *Package, env *Env) []Finding {
	if !inNondetScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. a seeded *rand.Rand) are fine
			}
			if reason, bad := nondetFunc(fn.Pkg().Path(), fn.Name()); bad {
				out = append(out, Finding{
					Rule: "nondet-source",
					Pos:  p.Fset.Position(call.Lparen),
					Msg: fmt.Sprintf("%s.%s in model-construction code: %s; inject the value from the caller or allowlist with //psmlint:ignore nondet-source",
						fn.Pkg().Name(), fn.Name(), reason),
				})
			}
			return true
		})
	}
	return out
}

// nondetFunc classifies package-level functions whose result differs
// across identical runs.
func nondetFunc(pkgPath, name string) (string, bool) {
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			return "wall-clock reads differ across runs", true
		}
	case "os":
		switch name {
		case "Getenv", "LookupEnv", "Environ":
			return "the environment differs across hosts and runs", true
		}
	case "math/rand", "math/rand/v2":
		switch name {
		// Constructors take an explicit source/seed and stay
		// reproducible; everything else draws from the auto-seeded
		// global generator.
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "", false
		default:
			return "the global generator is auto-seeded (nondeterministic since go1.20)", true
		}
	}
	return "", false
}
