package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// isFloat reports whether the expression's resolved type is a floating-
// point kind (unresolved types report false — no false positives on
// partial type information).
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isZeroConst reports whether the expression is a compile-time constant
// with exact value zero (comparisons against exact 0 are idiomatic
// sentinel checks in this codebase and never suffer rounding).
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// constValue returns the expression's constant value, if any.
func constValue(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil (built-ins, conversions, function-typed variables, unresolved).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isMathCall reports whether the call invokes math.<name>.
func isMathCall(info *types.Info, e ast.Expr, name string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == name
}

// --- float-eq ---------------------------------------------------------------

// floatEqRule flags ==/!= between floating-point expressions. Exact
// comparisons against the constant 0 (zero-sentinel checks behind guards)
// and against math.Inf(...) (infinities compare exactly) are exempt; any
// other float equality is a rounding hazard — use a tolerance or
// math.IsNaN/math.IsInf.
type floatEqRule struct{}

func (floatEqRule) ID() string { return "float-eq" }

func (floatEqRule) Doc() string {
	return "naked ==/!= between floating-point expressions (tolerance or IsNaN/IsInf required)"
}

func (floatEqRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.Info, be.X) && !isFloat(p.Info, be.Y) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				if isZeroConst(p.Info, side) || isMathCall(p.Info, side, "Inf") {
					return true
				}
			}
			out = append(out, Finding{
				Rule: "float-eq",
				Pos:  p.Fset.Position(be.OpPos),
				Msg: fmt.Sprintf("floating-point %s comparison; use a tolerance or math.IsNaN/math.IsInf",
					be.Op),
			})
			return true
		})
	}
	return out
}

// --- nan-guard --------------------------------------------------------------

// nanGuardRule flags floating-point divisions whose denominator is a bare
// variable (identifier, selector or index expression — after stripping
// parentheses and numeric conversions) that is never examined by any
// comparison in the enclosing function. Such divisions silently propagate
// NaN/Inf through the numeric pipeline when the denominator is zero.
//
// A denominator is considered guarded when its expression — or, for a
// local variable, the expression it was assigned from — appears inside
// any comparison in the same function (`if n == 0 { return 0 }` before
// `x / n` is a guard; so is a loop bound or a tolerance check).
// Denominators that are non-zero constants, calls, or compound arithmetic
// are skipped: they encode domain knowledge a syntactic pass cannot
// judge. Division by a constant zero is always an error.
type nanGuardRule struct{}

func (nanGuardRule) ID() string { return "nan-guard" }

func (nanGuardRule) Doc() string {
	return "float division whose denominator has no zero/NaN guard in the enclosing function"
}

func (nanGuardRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFuncDivisions(p, fd)...)
		}
	}
	return out
}

// unwrap strips parentheses and numeric type conversions:
// (float64(m.N)) → m.N.
func unwrap(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// exprKey renders an expression canonically for guard matching.
func exprKey(e ast.Expr) string { return types.ExprString(e) }

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func checkFuncDivisions(p *Package, fd *ast.FuncDecl) []Finding {
	info := p.Info

	// Pass 1: collect guard keys (every subexpression of every comparison
	// operand) and one-step aliases (x := expr records x → key(expr), so a
	// guard on a.N covers na := float64(a.N)).
	guarded := map[string]bool{}
	alias := map[string]string{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if isComparison(n.Op) {
				for _, side := range []ast.Expr{n.X, n.Y} {
					ast.Inspect(side, func(sub ast.Node) bool {
						if e, ok := sub.(ast.Expr); ok {
							switch e.(type) {
							case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.CallExpr:
								guarded[exprKey(e)] = true
							}
						}
						return true
					})
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						alias[id.Name] = exprKey(unwrap(info, n.Rhs[i]))
					}
				}
			}
		case *ast.SwitchStmt:
			// `switch { case x == 0: … }` guards too: case clauses are
			// comparisons and are covered by the BinaryExpr walk above.
		}
		return true
	})

	isGuarded := func(den ast.Expr) bool {
		key := exprKey(den)
		if guarded[key] {
			return true
		}
		if a, ok := alias[key]; ok && guarded[a] {
			return true
		}
		return false
	}

	// Pass 2: examine divisions.
	var out []Finding
	report := func(pos token.Pos, den ast.Expr) {
		v := constValue(info, den)
		if v != nil {
			if (v.Kind() == constant.Int || v.Kind() == constant.Float) && constant.Sign(v) == 0 {
				out = append(out, Finding{
					Rule: "nan-guard",
					Pos:  p.Fset.Position(pos),
					Msg:  "division by constant zero",
				})
			}
			return // non-zero constant denominator is always safe
		}
		bare := unwrap(info, den)
		switch bare.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			return // compound denominators encode domain knowledge
		}
		if isGuarded(bare) || isGuarded(den) {
			return
		}
		out = append(out, Finding{
			Rule: "nan-guard",
			Pos:  p.Fset.Position(pos),
			Msg: fmt.Sprintf("float division by %q has no zero/NaN guard in this function",
				exprKey(bare)),
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO && (isFloat(info, n.X) || isFloat(info, n.Y)) {
				report(n.OpPos, n.Y)
			}
		case *ast.AssignStmt:
			if n.Tok == token.QUO_ASSIGN && len(n.Lhs) == 1 && isFloat(info, n.Lhs[0]) {
				report(n.TokPos, n.Rhs[0])
			}
		}
		return true
	})
	return out
}

// --- err-drop ---------------------------------------------------------------

// errDropRule flags statement-position calls whose error result is
// silently discarded. Deliberate discards (`_ = f()`), defers, and a
// small allowlist of conventionally best-effort calls (the fmt print
// family, strings.Builder / bytes.Buffer writers, Close, and
// tabwriter.Flush) are exempt.
type errDropRule struct{}

func (errDropRule) ID() string { return "err-drop" }

var errorType = types.Universe.Lookup("error").Type()

func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// errDropAllowed exempts calls whose dropped error is conventional.
func errDropAllowed(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false // function values get no exemption
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if fn.Name() == "Close" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkg == "strings" && name == "Builder":
		return true
	case pkg == "bytes" && name == "Buffer":
		return true
	case pkg == "math/rand" && name == "Rand" && fn.Name() == "Read":
		return true // documented to always return a nil error
	case pkg == "text/tabwriter" && name == "Writer" && fn.Name() == "Flush":
		return true
	}
	return false
}

func (errDropRule) Doc() string {
	return "statement-position calls silently discarding an error result"
}

func (errDropRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(p.Info, call) {
				return true
			}
			if errDropAllowed(p.Info, call) {
				return true
			}
			fn := calleeFunc(p.Info, call)
			name := "call"
			if fn != nil {
				name = fn.Name()
			}
			out = append(out, Finding{
				Rule: "err-drop",
				Pos:  p.Fset.Position(call.Lparen),
				Msg:  fmt.Sprintf("error returned by %s is dropped; handle it or assign to _", name),
			})
			return true
		})
	}
	return out
}

// --- obs-metrics ------------------------------------------------------------

// obsMetricsRule keeps the metrics surface unified: psmkit/internal/obs
// is the module's single metrics facade (registry, Prometheus/expvar
// exposition), so importing expvar anywhere else — including blank
// imports for its side-effect handler — reintroduces the scattered
// ad-hoc counters the obs layer replaced. Packages outside the module
// (lint fixtures under another module path) are judged by the same
// "internal/obs" suffix, so the rule is module-name independent.
type obsMetricsRule struct{}

func (obsMetricsRule) ID() string { return "obs-metrics" }

func (obsMetricsRule) Doc() string {
	return "expvar imported outside internal/obs, the module's single metrics facade"
}

func (obsMetricsRule) Check(p *Package, env *Env) []Finding {
	if p.Path == "internal/obs" || strings.HasSuffix(p.Path, "/internal/obs") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if imp.Path.Value != `"expvar"` {
				continue
			}
			out = append(out, Finding{
				Rule: "obs-metrics",
				Pos:  p.Fset.Position(imp.Pos()),
				Msg:  "expvar imported outside internal/obs; register metrics through the obs registry instead",
			})
		}
	}
	return out
}

// --- merge-fixpoint ----------------------------------------------------------

// mergeFixpointRule flags restart-the-world merge fixpoints: an outer
// loop that re-runs a quadratic pair scan over a model's .States slice
// after every mutation, paying O(n²) merge evaluations per collapse
// (~O(n³) total). The blessed join engine lives in internal/psm — a
// version-stamped worklist plus verdict memo that produces the identical
// model with O(n) re-probes per collapse — so state merging anywhere
// else should go through psm.JoinPooled / psm.Joiner rather than
// reimplementing the scan. internal/psm itself is exempt: it keeps the
// reference restart scan for provenance ordering and differential tests.
type mergeFixpointRule struct{}

func (mergeFixpointRule) ID() string { return "merge-fixpoint" }

func (mergeFixpointRule) Doc() string {
	return "restart-scan merge fixpoints over .States outside internal/psm (use the worklist join engine)"
}

func (mergeFixpointRule) Check(p *Package, env *Env) []Finding {
	if p.Path == "internal/psm" || strings.HasSuffix(p.Path, "/internal/psm") {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var pos token.Pos
			var body *ast.BlockStmt
			switch l := n.(type) {
			case *ast.ForStmt:
				pos, body = l.For, l.Body
			case *ast.RangeStmt:
				pos, body = l.For, l.Body
			default:
				return true
			}
			if statesScanDepth(body) >= 2 {
				out = append(out, Finding{
					Rule: "merge-fixpoint",
					Pos:  p.Fset.Position(pos),
					Msg: "restart-scan merge fixpoint over .States (O(n³) evaluations); " +
						"use the worklist join engine (psm.JoinPooled / psm.Joiner) instead",
				})
				return false // one finding per fixpoint, not per nesting level
			}
			return true
		})
	}
	return out
}

// statesScanDepth returns the maximum nesting depth of loops inside body
// that iterate a .States slice — a range over it, or a counted for loop
// whose condition mentions it (i < len(m.States)). A depth of 2 under an
// enclosing loop is the restart-fixpoint shape the rule flags; a bare
// pair scan (depth 2 with no driver loop around it) is not.
func statesScanDepth(body ast.Node) int {
	depth := 0
	ast.Inspect(body, func(n ast.Node) bool {
		var scan ast.Expr
		var inner *ast.BlockStmt
		switch l := n.(type) {
		case *ast.RangeStmt:
			scan, inner = l.X, l.Body
		case *ast.ForStmt:
			scan, inner = l.Cond, l.Body
		default:
			return true
		}
		d := statesScanDepth(inner)
		if scan != nil && mentionsStates(scan) {
			d++
		}
		if d > depth {
			depth = d
		}
		return false // inner loops handled by the recursive call
	})
	return depth
}

// mentionsStates reports whether the expression selects a field or
// method named States (m.States, x.pool.States, len(m.States), ...).
func mentionsStates(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "States" {
			found = true
		}
		return !found
	})
	return found
}
