package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func rulesHit(fs []Finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

const goMod = "module lintfixture\n\ngo 1.22\n"

func TestFloatEqRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import "math"

func Bad(x, y float64) bool { return x == y }

func BadNeq(x float64, v float32) bool { return v != 0.5 }

func OkZeroSentinel(x float64) bool { return x == 0 }

func OkInfSentinel(x float64) bool { return x == math.Inf(-1) }

func OkInts(a, b int) bool { return a == b }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	hits := rulesHit(fs)
	if hits["float-eq"] != 2 {
		t.Fatalf("want 2 float-eq findings (Bad, BadNeq), got %d: %v", hits["float-eq"], fs)
	}
}

func TestNanGuardRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

type S struct{ N int }

func Bad(a, b float64) float64 { return a / b }

func BadConstZero(a float64) float64 { return a / 0.0 }

func OkGuarded(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func OkConversion(a float64, s S) float64 {
	if s.N == 0 {
		return 0
	}
	return a / float64(s.N)
}

func OkAlias(a float64, s S) float64 {
	if s.N < 1 {
		return 0
	}
	n := float64(s.N)
	return a / n
}

func OkNonzeroConst(a float64) float64 { return a / 2 }

func OkCompound(a, b, c float64) float64 { return a / (b + c + 1) }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range fs {
		if f.Rule != "nan-guard" {
			t.Fatalf("unexpected %s finding: %+v", f.Rule, f)
		}
		msgs = append(msgs, f.Msg)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 nan-guard findings (Bad, BadConstZero), got %d: %v", len(fs), fs)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "constant zero") {
		t.Fatalf("constant-zero division not identified: %v", msgs)
	}
}

func TestErrDropRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func Bad() {
	mayFail()
}

func BadWrite(f *os.File) {
	f.Sync()
}

func OkAssigned() error {
	err := mayFail()
	return err
}

func OkBlank() {
	_ = mayFail()
}

func OkFmt() {
	fmt.Println("hello")
}

func OkClose(f *os.File) {
	f.Close()
}

func OkBuilder(sb *strings.Builder) {
	sb.WriteString("x")
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	hits := rulesHit(fs)
	if hits["err-drop"] != 2 {
		t.Fatalf("want 2 err-drop findings (Bad, BadWrite), got %d: %v", hits["err-drop"], fs)
	}
}

func TestSuppressionDirective(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

func SameLine(a, b float64) bool { return a == b } //psmlint:ignore float-eq tolerance handled upstream

func LineAbove(a, b float64) float64 {
	//psmlint:ignore nan-guard b is a physical constant
	return a / b
}

func IgnoreAll(a, b float64) bool {
	//psmlint:ignore all
	return a == b
}

func StillFlagged(a, b float64) bool { return a == b } //psmlint:ignore nan-guard wrong rule id
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "float-eq" {
		t.Fatalf("want exactly the StillFlagged float-eq finding, got %v", fs)
	}
	if fs[0].Pos.Line != 15 {
		t.Fatalf("finding at line %d, want 15 (StillFlagged)", fs[0].Pos.Line)
	}
}

func TestRunSkipsTestAndVendorFiles(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go":   "package a\n",
		"a_test.go": `package a

func helper(a, b float64) bool { return a == b }
`,
		"vendor/v/v.go": `package v

func Bad(a, b float64) bool { return a == b }
`,
		"testdata/t.go": `package t

func Bad(a, b float64) bool { return a == b }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("test/vendor/testdata files must be skipped, got %v", fs)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"b.go": `package a

func Later(a, b float64) bool { return a != b }
`,
		"a.go": `package a

func Earlier(a, b float64) bool { return a == b }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("want 2 findings, got %v", fs)
	}
	if !strings.HasSuffix(fs[0].Pos.Filename, "a.go") || !strings.HasSuffix(fs[1].Pos.Filename, "b.go") {
		t.Fatalf("findings not sorted by file: %v", fs)
	}
}

func TestMergeFixpointRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		// Restart-the-world fixpoint: flagged once, at the driver loop.
		"joiner/a.go": `package joiner

type State struct{ Power float64 }

type Model struct{ States []*State }

func mergeable(a, b *State) bool { return a.Power <= b.Power }

func Collapse(m *Model) {
	for {
		merged := false
		for i := range m.States {
			for j := i + 1; j < len(m.States); j++ {
				if mergeable(m.States[i], m.States[j]) {
					m.States = append(m.States[:j], m.States[j+1:]...)
					merged = true
					break
				}
			}
		}
		if !merged {
			return
		}
	}
}

// A single pair scan with no restart driver is legitimate.
func CountPairs(m *Model) int {
	n := 0
	for i := range m.States {
		for j := i + 1; j < len(m.States); j++ {
			n++
		}
	}
	return n
}
`,
		// The blessed engine's home is exempt even when it restart-scans.
		"internal/psm/psm.go": `package psm

type Model struct{ States []int }

func Scan(m *Model) {
	for {
		for range m.States {
			for range m.States {
			}
		}
		return
	}
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	hits := rulesHit(fs)
	if hits["merge-fixpoint"] != 1 {
		t.Fatalf("want 1 merge-fixpoint finding (Collapse driver loop), got %d: %v",
			hits["merge-fixpoint"], fs)
	}
	for _, f := range fs {
		if f.Rule == "merge-fixpoint" && strings.Contains(f.Pos.Filename, "internal/psm") {
			t.Fatalf("internal/psm must be exempt, got %v", f)
		}
	}
}

func TestObsMetricsRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"serve/a.go": `package serve

import "expvar"

var hits = expvar.NewInt("hits")
`,
		"blank/b.go": `package blank

import _ "expvar"
`,
		"internal/obs/obs.go": `package obs

import "expvar"

func Do(f func(expvar.KeyValue)) { expvar.Do(f) }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	hits := rulesHit(fs)
	if hits["obs-metrics"] != 2 {
		t.Fatalf("want 2 obs-metrics findings (serve, blank import), got %d: %v", hits["obs-metrics"], fs)
	}
	for _, f := range fs {
		if f.Rule == "obs-metrics" && strings.Contains(f.Pos.Filename, "internal/obs") {
			t.Fatalf("internal/obs must be exempt, got %v", f)
		}
	}
}
