// Package lint is the code layer of psmlint: a standard-library-only
// static analysis driver (go/parser, go/ast, go/types — no external
// deps) with rules tuned to this numeric, determinism-obsessed
// codebase:
//
//	float-eq      naked ==/!= between floating-point expressions
//	nan-guard     float division whose denominator has no zero guard
//	err-drop      call statements discarding an error result
//	obs-metrics   expvar imported outside internal/obs (the metrics facade)
//	merge-fixpoint  restart-scan merge fixpoints over .States outside internal/psm
//	map-order     map-iteration order reaching serialized output unsorted
//	nondet-source time.Now / unseeded math/rand / os.Getenv in model code
//	mutex-held-blocking  mutexes held across blocking work; lost unlocks
//	ctx-hygiene   unstoppable goroutines; dropped/shadowed contexts
//	obs-logging   ad-hoc stderr logging in serving-path packages (use obs.Logger)
//
// The driver is multi-pass and whole-program within the module:
//
//	pass 1 — load: package directories parse in parallel (the file set
//	         is concurrency-safe) and type-check serially in import
//	         order through a module-aware importer;
//	pass 2 — facts: every loaded package (targets and their in-module
//	         dependencies alike) exports per-function facts — today the
//	         map-order taint facts, "calling F yields a value whose
//	         element order derives from a map iteration" — iterated to
//	         a fixpoint so taint flows through call chains and across
//	         package boundaries;
//	pass 3 — rules: each rule checks each target package against the
//	         global fact store; packages are checked concurrently and
//	         findings are merged into one position-sorted report.
//
// Type-check errors are tolerated: rules only act on expressions whose
// types resolved, so partial information degrades to fewer findings, not
// to false positives.
//
// A finding can be suppressed with a directive comment on the same line
// or the line above:
//
//	//psmlint:ignore <rule-id> [reason]
//
// Machine-readable output (sarif.go) and the committed findings
// baseline (baseline.go) turn the linter into a CI gate: new findings
// fail the build while grandfathered ones stay tracked in
// .psmlint-baseline.json until they are fixed.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one code diagnostic.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Rule is one analysis pass over a type-checked package.
type Rule interface {
	// ID is the stable identifier reported in findings and honored by
	// //psmlint:ignore directives.
	ID() string
	// Doc is a one-line description of what the rule catches (SARIF
	// rule metadata, README table).
	Doc() string
	// Check appends findings for one package. env carries the
	// cross-package analysis state (module layout, fact store).
	Check(p *Package, env *Env) []Finding
}

// Rules returns every registered code rule, ordered by id.
func Rules() []Rule {
	return []Rule{
		ctxHygieneRule{},
		errDropRule{},
		floatEqRule{},
		mapOrderRule{},
		mergeFixpointRule{},
		mutexHeldRule{},
		nanGuardRule{},
		nondetSourceRule{},
		obsLoggingRule{},
		obsMetricsRule{},
	}
}

// RuleByID returns the registered rule with the given id.
func RuleByID(id string) (Rule, bool) {
	for _, r := range Rules() {
		if r.ID() == id {
			return r, true
		}
	}
	return nil, false
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Env is the whole-program context every rule checks against: the
// module layout (for root-relative reporting) and the fact store the
// facts pass populated over every loaded package.
type Env struct {
	ModRoot string
	ModPath string
	Facts   *FactStore
}

// posLabel renders a position module-root-relative for embedding in
// finding messages, keeping reports machine-independent (the finding's
// own Pos stays absolute for editors).
func (e *Env) posLabel(p token.Position) string {
	return fmt.Sprintf("%s:%d", relativeURI(e.ModRoot, p.Filename), p.Line)
}

// Config tunes a driver run.
type Config struct {
	// Rules selects rule ids to run; empty runs every registered rule.
	// Unknown ids are a load error.
	Rules []string
	// Parallelism bounds the worker goroutines of the parse and rule
	// passes; <= 0 selects GOMAXPROCS.
	Parallelism int
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) rules() ([]Rule, error) {
	if len(c.Rules) == 0 {
		return Rules(), nil
	}
	var out []Rule
	for _, id := range c.Rules {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		r, ok := RuleByID(id)
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", id)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: no rules selected")
	}
	return out, nil
}

// Run loads the packages matched by patterns (relative to root, which
// must lie inside a module) and applies every registered rule.
// Findings are sorted by position.
func Run(root string, patterns []string) ([]Finding, error) {
	return RunConfig(root, patterns, Config{})
}

// RunConfig is Run with driver configuration (rule selection,
// parallelism bound).
func RunConfig(root string, patterns []string, cfg Config) ([]Finding, error) {
	rules, err := cfg.rules()
	if err != nil {
		return nil, err
	}
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}

	// Pass 1 — load. Parsing fans out (the token.FileSet synchronizes
	// internally); type-checking stays serial because the import graph
	// orders it.
	l.parseAll(dirs, cfg.workers())
	var targets []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		targets = append(targets, pkg)
	}

	// Pass 2 — facts, over every loaded package (in-module dependencies
	// included: cross-package taint needs the callee's facts even when
	// its package was not named in the patterns).
	env := &Env{ModRoot: l.modRoot, ModPath: l.modPath, Facts: NewFactStore()}
	ComputeFacts(l.loaded(), env)

	// Pass 3 — rules, fanned out per target package. Each package has
	// its own types.Info and the fact store is read-only by now, so the
	// only shared mutable state is the findings slice.
	var (
		mu       sync.Mutex
		findings []Finding
		wg       sync.WaitGroup
		sem      = make(chan struct{}, cfg.workers())
	)
	for _, pkg := range targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(pkg *Package) {
			defer func() { <-sem; wg.Done() }()
			sup := newSuppressions(pkg)
			var local []Finding
			for _, r := range rules {
				for _, f := range r.Check(pkg, env) {
					if !sup.suppressed(r.ID(), f.Pos) {
						local = append(local, f)
					}
				}
			}
			mu.Lock()
			findings = append(findings, local...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return findings, nil
}

// --- suppression directives -------------------------------------------------

// suppressions indexes //psmlint:ignore directives by file and line.
type suppressions struct {
	fset *token.FileSet
	// byLine maps file:line to the rule ids ignored there ("all" matches
	// every rule).
	byLine map[string][]string
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{fset: p.Fset, byLine: map[string][]string{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//psmlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				rule := "all"
				if len(fields) > 0 {
					rule = fields[0]
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				s.byLine[key] = append(s.byLine[key], rule)
			}
		}
	}
	return s
}

// suppressed reports whether a finding of the rule at pos is silenced by a
// directive on the same line or the line above.
func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", pos.Filename, line)
		for _, r := range s.byLine[key] {
			if r == "all" || r == rule {
				return true
			}
		}
	}
	return false
}
