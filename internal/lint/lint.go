// Package lint is the code layer of psmlint: a standard-library-only
// static analyzer (go/parser, go/ast, go/types — no external deps) with
// rules tuned to this numeric codebase:
//
//	float-eq     naked ==/!= between floating-point expressions
//	nan-guard    float division whose denominator has no zero guard
//	err-drop     call statements discarding an error result
//	obs-metrics  expvar imported outside internal/obs (the metrics facade)
//	merge-fixpoint  restart-scan merge fixpoints over .States outside internal/psm
//
// Packages are loaded and type-checked from source. Imports inside the
// current module resolve through the module tree; everything else (the
// standard library) resolves through go/importer's source importer.
// Type-check errors are tolerated: rules only act on expressions whose
// types resolved, so partial information degrades to fewer findings, not
// to false positives.
//
// A finding can be suppressed with a directive comment on the same line
// or the line above:
//
//	//psmlint:ignore <rule-id> [reason]
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one code diagnostic.
type Finding struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Rule is one analysis pass over a type-checked package.
type Rule interface {
	// ID is the stable identifier reported in findings and honored by
	// //psmlint:ignore directives.
	ID() string
	// Check appends findings for one package.
	Check(p *Package) []Finding
}

// Rules returns every registered code rule.
func Rules() []Rule {
	return []Rule{floatEqRule{}, nanGuardRule{}, errDropRule{}, obsMetricsRule{}, mergeFixpointRule{}}
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Types *types.Package
}

// Run loads the packages matched by patterns (relative to root, which
// must lie inside a module) and applies every rule. Findings are sorted
// by position.
func Run(root string, patterns []string) ([]Finding, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		sup := newSuppressions(pkg)
		for _, r := range Rules() {
			for _, f := range r.Check(pkg) {
				if !sup.suppressed(r.ID(), f.Pos) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// --- module-aware loader ----------------------------------------------------

type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*loadedPkg // keyed by directory
	byPath  map[string]*types.Package
	loading map[string]bool
}

type loadedPkg struct {
	pkg *Package
}

func newLoader(root string) (*loader, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*loadedPkg{},
		byPath:  map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and parses the
// module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// expand resolves package patterns ("./...", "dir", "dir/...") into
// package directories, skipping vendor, testdata and hidden trees.
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.modRoot, pat)
		}
		st, err := os.Stat(base)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q does not name a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else delegates to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if p, ok := l.byPath[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.byPath[path] = p
	return p, nil
}

// loadDir parses and type-checks the non-test Go files of one directory.
// It returns nil (no error) when the directory holds no buildable files.
func (l *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if cached, ok := l.pkgs[dir]; ok {
		return cached.pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[dir] = &loadedPkg{}
		return nil, nil
	}

	importPath := l.importPath(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // tolerate: rules skip unresolved types
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	pkg := &Package{Path: importPath, Fset: l.fset, Files: files, Info: info, Types: tpkg}
	l.pkgs[dir] = &loadedPkg{pkg: pkg}
	if tpkg != nil {
		l.byPath[importPath] = tpkg
	}
	return pkg, nil
}

// importPath maps a directory under the module root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// --- suppression directives -------------------------------------------------

// suppressions indexes //psmlint:ignore directives by file and line.
type suppressions struct {
	fset *token.FileSet
	// byLine maps file:line to the rule ids ignored there ("all" matches
	// every rule).
	byLine map[string][]string
}

func newSuppressions(p *Package) *suppressions {
	s := &suppressions{fset: p.Fset, byLine: map[string][]string{}}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//psmlint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				rule := "all"
				if len(fields) > 0 {
					rule = fields[0]
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				s.byLine[key] = append(s.byLine[key], rule)
			}
		}
	}
	return s
}

// suppressed reports whether a finding of the rule at pos is silenced by a
// directive on the same line or the line above.
func (s *suppressions) suppressed(rule string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		key := fmt.Sprintf("%s:%d", pos.Filename, line)
		for _, r := range s.byLine[key] {
			if r == "all" || r == rule {
				return true
			}
		}
	}
	return false
}
