package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TaintFact records that calling a function yields a value whose
// element order derives from iterating a map without an intervening
// sort. Facts are exported per package and consulted across package
// boundaries: a slice built by ranging a map in package A keeps its
// order-dependence when package B serializes it.
type TaintFact struct {
	// Func is the producer's fully qualified name (types.Func.FullName).
	Func string
	// Origin is the map-range statement the order leaks from.
	Origin token.Position
}

// FactStore is the driver's cross-package fact table, populated by the
// facts pass (ComputeFacts) before any rule runs and read-only after.
type FactStore struct {
	tainted map[*types.Func]TaintFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{tainted: map[*types.Func]TaintFact{}}
}

// setTainted records a fact, reporting whether it was new.
func (s *FactStore) setTainted(fn *types.Func, f TaintFact) bool {
	if _, ok := s.tainted[fn]; ok {
		return false
	}
	s.tainted[fn] = f
	return true
}

// Tainted reports the map-order fact attached to fn, if any.
func (s *FactStore) Tainted(fn *types.Func) (TaintFact, bool) {
	if s == nil || fn == nil {
		return TaintFact{}, false
	}
	f, ok := s.tainted[fn]
	return f, ok
}

// TaintedFuncs returns every recorded fact (diagnostics, tests).
func (s *FactStore) TaintedFuncs() []TaintFact {
	out := make([]TaintFact, 0, len(s.tainted))
	for _, f := range s.tainted {
		out = append(out, f)
	}
	return out
}

// ComputeFacts runs the fact pass over every loaded package, iterating
// to a fixpoint so facts flow through call chains (A returns B's
// map-ordered result) and across packages in either direction. The
// iteration count is bounded by the call-chain depth; the cap only
// guards against pathological object graphs.
func ComputeFacts(pkgs []*Package, env *Env) {
	for round := 0; round < 16; round++ {
		changed := false
		for _, p := range pkgs {
			for _, file := range p.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, ok := p.Info.Defs[fd.Name].(*types.Func)
					if !ok {
						continue
					}
					if _, done := env.Facts.Tainted(fn); done {
						continue
					}
					res := analyzeMapOrder(p, env, fd)
					if res.retOrigin != nil {
						if env.Facts.setTainted(fn, TaintFact{Func: fn.FullName(), Origin: *res.retOrigin}) {
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}
