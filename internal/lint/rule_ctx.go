package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxHygieneRule enforces cancellation discipline. Module-wide, every
// `go func() { ... }` whose body loops forever without a stop signal —
// no select, no channel receive, no ctx.Done()/ctx.Err() check, no
// sync.Cond wait — is an unstoppable goroutine: it outlives Close and
// leaks across daemon restarts. In the serving-path packages (serve,
// stream, pipeline) the rule additionally audits exported entry points
// that accept a context.Context and then drop it (zero uses in the
// body) or shadow it with a fresh context.Background()/TODO(): both
// sever the caller's cancellation chain.
type ctxHygieneRule struct{}

func (ctxHygieneRule) ID() string { return "ctx-hygiene" }

func (ctxHygieneRule) Doc() string {
	return "goroutines with no stop signal; exported serve/stream/pipeline entry points dropping or shadowing their context.Context"
}

// ctxScopedPkgs are the package path tails whose exported API surface
// gets the dropped/shadowed-context audit.
var ctxScopedPkgs = map[string]bool{"serve": true, "stream": true, "pipeline": true}

func (ctxHygieneRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	scoped := ctxScopedPkgs[lastPathSegment(p.Path)]
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			out = append(out, checkGoroutineStop(p, gs, lit)...)
			return true
		})
		if !scoped {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			out = append(out, checkCtxParam(p, fd)...)
		}
	}
	return out
}

// checkGoroutineStop flags goroutine bodies that contain an infinite
// loop with no way to observe shutdown.
func checkGoroutineStop(p *Package, gs *ast.GoStmt, lit *ast.FuncLit) []Finding {
	var out []Finding
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok {
			return true
		}
		if fs.Cond != nil {
			return true // bounded by its condition (e.g. for ctx.Err() == nil)
		}
		if loopHasStopSignal(p.Info, fs.Body) {
			return true
		}
		out = append(out, Finding{
			Rule: "ctx-hygiene",
			Pos:  p.Fset.Position(fs.For),
			Msg:  "goroutine loops forever with no stop signal (no select, channel receive, ctx.Done/Err check, or Cond wait); it cannot be shut down",
		})
		return true
	})
	return out
}

// loopHasStopSignal reports whether a loop body can observe shutdown:
// a select statement, a channel receive, a ctx.Done()/ctx.Err() call,
// a sync.Cond Wait, or a return/panic that exits the loop.
func loopHasStopSignal(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // blocking receive: close(ch) wakes it
			}
		case *ast.RangeStmt:
			// range over a channel terminates on close.
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.ReturnStmt:
			found = true
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				switch fn.Name() {
				case "Done", "Err":
					if fromContextPkg(fn) {
						found = true
					}
				case "Wait":
					if pkgPath, typeName, ok := recvNamed(fn); ok && pkgPath == "sync" && typeName == "Cond" {
						found = true
					}
				case "panic":
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// fromContextPkg reports whether fn is a method of context.Context (or
// any type from package context).
func fromContextPkg(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context"
}

// checkCtxParam audits one exported function that takes a
// context.Context: the parameter must be used, and must not be
// shadowed by a fresh root context.
func checkCtxParam(p *Package, fd *ast.FuncDecl) []Finding {
	params := ctxParams(p.Info, fd)
	if len(params) == 0 {
		return nil
	}
	var out []Finding
	for _, param := range params {
		if param.Name() == "_" {
			continue // explicitly discarded: the signature is for interface shape
		}
		uses := 0
		shadowPos := token.NoPos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if p.Info.Uses[n] == param {
					uses++
				}
			case *ast.AssignStmt:
				if pos, ok := shadowingRootCtx(p.Info, n, param.Name()); ok {
					shadowPos = pos
				}
			}
			return true
		})
		switch {
		case shadowPos.IsValid():
			out = append(out, Finding{
				Rule: "ctx-hygiene",
				Pos:  p.Fset.Position(shadowPos),
				Msg: fmt.Sprintf("exported %s shadows its context.Context %q with a fresh root context, severing the caller's cancellation chain",
					fd.Name.Name, param.Name()),
			})
		case uses == 0:
			out = append(out, Finding{
				Rule: "ctx-hygiene",
				Pos:  p.Fset.Position(fd.Name.Pos()),
				Msg: fmt.Sprintf("exported %s drops its context.Context %q (never used in the body); plumb it through or name it _",
					fd.Name.Name, param.Name()),
			})
		}
	}
	return out
}

// ctxParams returns the context.Context-typed parameters of fd.
func ctxParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// shadowingRootCtx matches `name := context.Background()` /
// `context.TODO()` (and plain = assignment) over an in-scope context
// parameter of the same name.
func shadowingRootCtx(info *types.Info, as *ast.AssignStmt, name string) (token.Pos, bool) {
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != name || i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			continue
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			return id.Pos(), true
		}
	}
	return token.NoPos, false
}

func lastPathSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
