package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// loader is the module-aware package loader behind the driver's load
// pass. Parsing is concurrency-safe (parseDir guards its cache and the
// shared token.FileSet synchronizes internally); type-checking is
// serial, ordered by the import graph through Import.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer

	parseMu sync.Mutex
	parsed  map[string]*parsedDir // keyed by directory

	pkgs    map[string]*loadedPkg // keyed by directory
	byPath  map[string]*types.Package
	loading map[string]bool
}

type parsedDir struct {
	files []*ast.File
	err   error
}

type loadedPkg struct {
	pkg *Package
}

func newLoader(root string) (*loader, error) {
	modRoot, modPath, err := findModule(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		parsed:  map[string]*parsedDir{},
		pkgs:    map[string]*loadedPkg{},
		byPath:  map[string]*types.Package{},
		loading: map[string]bool{},
	}, nil
}

// loaded returns every package type-checked so far (targets and
// in-module dependencies), in a stable directory order.
func (l *loader) loaded() []*Package {
	dirs := make([]string, 0, len(l.pkgs))
	for dir, lp := range l.pkgs {
		if lp.pkg != nil {
			dirs = append(dirs, dir)
		}
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		out = append(out, l.pkgs[dir].pkg)
	}
	return out
}

// findModule walks up from dir to the enclosing go.mod and parses the
// module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
	}
}

// FindModuleRoot resolves the module root enclosing dir (the directory
// findings, baselines and SARIF artifact URIs are reported relative to).
func FindModuleRoot(dir string) (string, error) {
	root, _, err := findModule(dir)
	return root, err
}

// expand resolves package patterns ("./...", "dir", "dir/...") into
// package directories, skipping vendor, testdata and hidden trees.
func (l *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.modRoot, pat)
		}
		st, err := os.Stat(base)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q does not name a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseAll warms the parse cache for every directory on up to workers
// goroutines. Errors are not reported here — loadDir surfaces them in
// deterministic directory order.
func (l *loader) parseAll(dirs []string, workers int) {
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers <= 1 {
		for _, dir := range dirs {
			l.parseDir(dir)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, dir := range dirs {
		wg.Add(1)
		sem <- struct{}{}
		go func(dir string) {
			defer func() { <-sem; wg.Done() }()
			l.parseDir(dir)
		}(dir)
	}
	wg.Wait()
}

// parseDir parses the non-test Go files of one directory, caching the
// result. Safe for concurrent use.
func (l *loader) parseDir(dir string) *parsedDir {
	dir = filepath.Clean(dir)
	l.parseMu.Lock()
	if pd, ok := l.parsed[dir]; ok {
		l.parseMu.Unlock()
		return pd
	}
	// Reserve the slot so concurrent callers of other directories never
	// duplicate work; this directory's parse runs outside the lock.
	l.parseMu.Unlock()

	pd := &parsedDir{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		pd.err = err
	} else {
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				pd.err = fmt.Errorf("lint: %w", err)
				break
			}
			pd.files = append(pd.files, f)
		}
	}

	l.parseMu.Lock()
	defer l.parseMu.Unlock()
	if prev, ok := l.parsed[dir]; ok {
		return prev // another goroutine won the race; keep its result
	}
	l.parsed[dir] = pd
	return pd
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else delegates to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "C" {
		return nil, fmt.Errorf("lint: cgo is not supported")
	}
	if p, ok := l.byPath[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.byPath[path] = p
	return p, nil
}

// loadDir type-checks the non-test Go files of one directory (parsing
// them first if parseAll has not). It returns nil (no error) when the
// directory holds no buildable files. Not safe for concurrent use — the
// import graph serializes type-checking.
func (l *loader) loadDir(dir string) (*Package, error) {
	dir = filepath.Clean(dir)
	if cached, ok := l.pkgs[dir]; ok {
		return cached.pkg, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("lint: import cycle through %s", dir)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	pd := l.parseDir(dir)
	if pd.err != nil {
		return nil, pd.err
	}
	if len(pd.files) == 0 {
		l.pkgs[dir] = &loadedPkg{}
		return nil, nil
	}

	importPath := l.importPath(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(error) {}, // tolerate: rules skip unresolved types
	}
	tpkg, _ := conf.Check(importPath, l.fset, pd.files, info)
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.fset, Files: pd.files, Info: info, Types: tpkg}
	l.pkgs[dir] = &loadedPkg{pkg: pkg}
	if tpkg != nil {
		l.byPath[importPath] = tpkg
	}
	return pkg, nil
}

// importPath maps a directory under the module root to its import path.
func (l *loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}
