package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// mapOrderRule polices the repo's byte-identity contract at its weakest
// point: Go map iteration order is randomized, so any map range whose
// element order reaches serialized output — DOT, JSON, gob, provenance
// NDJSON, a hash, a strings.Builder — produces byte-flaky artifacts.
// Three shapes are reported:
//
//  1. a per-iteration emission inside a map range (fmt.Fprintf, Write*,
//     Encoder.Encode — order committed as it happens);
//  2. a slice built by ranging a map (or returned by a function with a
//     map-order fact, across packages) serialized without an
//     intervening sort — sort.*/slices.Sort* between build and write
//     clears the hazard;
//  3. a value whose type contains a map passed to gob.Encoder.Encode:
//     gob serializes maps in randomized key order (encoding/json sorts
//     keys and is exempt). This is the exact shape of the PR 2
//     psm.Save Initials bug.
type mapOrderRule struct{}

func (mapOrderRule) ID() string { return "map-order" }

func (mapOrderRule) Doc() string {
	return "map iteration order reaching serialized output (writers, encoders, hashes, gob maps) without an intervening sort"
}

func (mapOrderRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, analyzeMapOrder(p, env, fd).findings...)
		}
		out = append(out, checkGobMapEncodes(p, f)...)
	}
	return out
}

// checkGobMapEncodes flags gob.Encoder.Encode calls whose argument type
// contains a map anywhere in its structure: gob writes map entries in
// randomized iteration order, so such encodes are never byte-stable.
func checkGobMapEncodes(p *Package, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || fn.Name() != "Encode" || len(call.Args) != 1 {
			return true
		}
		pkgPath, typeName, ok := recvNamed(fn)
		if !ok || pkgPath != "encoding/gob" || typeName != "Encoder" {
			return true
		}
		t := p.Info.TypeOf(call.Args[0])
		if t == nil {
			return true
		}
		if path, found := findMapInType(t, nil, 0); found {
			out = append(out, Finding{
				Rule: "map-order",
				Pos:  p.Fset.Position(call.Lparen),
				Msg: fmt.Sprintf("gob-encodes %s, which contains a map (%s); gob serializes maps in randomized key order — encode a sorted pair slice instead",
					types.TypeString(t, types.RelativeTo(p.Types)), path),
			})
		}
		return true
	})
	return out
}

// findMapInType walks a type's structure looking for a map, returning a
// human-readable path to the first one found. Named types are tracked
// in seen to terminate on recursive structures; depth is capped so
// pathological graphs stay cheap.
func findMapInType(t types.Type, seen map[*types.Named]bool, depth int) (string, bool) {
	if depth > 8 {
		return "", false
	}
	switch t := t.(type) {
	case *types.Map:
		return t.String(), true
	case *types.Pointer:
		return findMapInType(t.Elem(), seen, depth+1)
	case *types.Slice:
		return findMapInType(t.Elem(), seen, depth+1)
	case *types.Array:
		return findMapInType(t.Elem(), seen, depth+1)
	case *types.Named:
		if seen[t] {
			return "", false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[t] = true
		if path, ok := findMapInType(t.Underlying(), seen, depth+1); ok {
			return fmt.Sprintf("%s: %s", t.Obj().Name(), path), true
		}
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if path, ok := findMapInType(f.Type(), seen, depth+1); ok {
				return fmt.Sprintf("field %s: %s", f.Name(), path), true
			}
		}
	}
	return "", false
}
