package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline grandfathers known findings so the linter can gate CI the
// day it is turned on: existing debt stays recorded in a committed
// .psmlint-baseline.json while anything new fails the build. Entries
// are keyed by (rule, root-relative file, message) with an occurrence
// count — deliberately line-number-free, so unrelated edits that shift
// a baselined finding up or down a file do not break the gate, while a
// *new* instance of the same message in the same file (count exceeded)
// still fails.
type Baseline struct {
	// Version guards the file format.
	Version int `json:"version"`
	// Findings is sorted by key for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding class.
type BaselineEntry struct {
	Rule  string `json:"rule"`
	File  string `json:"file"`
	Msg   string `json:"msg"`
	Count int    `json:"count"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Msg }

// NewBaseline builds a baseline from a findings list, with paths
// rendered relative to root.
func NewBaseline(findings []Finding, root string) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, f := range findings {
		e := BaselineEntry{Rule: f.Rule, File: relativeURI(root, f.Pos.Filename), Msg: f.Msg}
		if prev, ok := counts[e.key()]; ok {
			prev.Count++
			continue
		}
		e.Count = 1
		counts[e.key()] = &e
	}
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// Filter splits findings into those not covered by the baseline (fresh
// — these should fail the build) and the count of grandfathered ones.
// Each baseline entry absorbs at most Count matching findings, so a new
// duplicate of a baselined finding still surfaces.
func (b *Baseline) Filter(findings []Finding, root string) (fresh []Finding, grandfathered int) {
	remaining := map[string]int{}
	for _, e := range b.Findings {
		remaining[e.key()] += e.Count
	}
	for _, f := range findings {
		key := f.Rule + "\x00" + relativeURI(root, f.Pos.Filename) + "\x00" + f.Msg
		if remaining[key] > 0 {
			remaining[key]--
			grandfathered++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, grandfathered
}

// Stale returns baseline entries no current finding matches — fixed
// debt whose entries should be deleted from the file.
func (b *Baseline) Stale(findings []Finding, root string) []BaselineEntry {
	seen := map[string]int{}
	for _, f := range findings {
		key := f.Rule + "\x00" + relativeURI(root, f.Pos.Filename) + "\x00" + f.Msg
		seen[key]++
	}
	var out []BaselineEntry
	for _, e := range b.Findings {
		if seen[e.key()] == 0 {
			out = append(out, e)
		}
	}
	return out
}

// LoadBaseline reads a baseline file. A missing file is not an error:
// it returns an empty baseline so `-baseline` can point at a path that
// will be created later with -write-baseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Version: 1}, nil
		}
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", filepath.Base(path), err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("baseline %s: unsupported version %d", filepath.Base(path), b.Version)
	}
	return &b, nil
}

// Write renders the baseline as stable, indented JSON.
func (b *Baseline) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Save writes the baseline to a file.
func (b *Baseline) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
