package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// obsLoggingRule keeps the serving path's diagnostics structured: psmd's
// operational surfaces (cmd/psmd, internal/serve, internal/stream) log
// through obs.Logger — leveled NDJSON events that also land in the
// flight recorder — so ad-hoc stderr logging there (the standard log
// package, fmt.Fprint* to os.Stderr, direct os.Stderr writes) produces
// lines no dump or analyzer ever sees. Other packages (CLIs printing
// results, scripts) are out of scope: stderr is their interface, not a
// diagnostics side channel. Deliberate raw writes — the flight dump
// itself goes to stderr — are whitelisted per line with
// //psmlint:ignore obs-logging.
type obsLoggingRule struct{}

func (obsLoggingRule) ID() string { return "obs-logging" }

func (obsLoggingRule) Doc() string {
	return "ad-hoc stderr logging (log package, fmt to os.Stderr) in serving-path packages (use obs.Logger)"
}

// obsLoggingScope lists the package-path tails the rule applies to.
var obsLoggingScope = []string{"cmd/psmd", "internal/serve", "internal/stream"}

func inObsLoggingScope(path string) bool {
	for _, tail := range obsLoggingScope {
		if path == tail || strings.HasSuffix(path, "/"+tail) {
			return true
		}
	}
	return false
}

// isOsStderr reports whether the expression resolves to the os.Stderr
// variable (through parentheses; not through local aliases — an alias is
// an explicit decision the rule does not chase).
func isOsStderr(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" && v.Name() == "Stderr"
}

func (obsLoggingRule) Check(p *Package, env *Env) []Finding {
	if !inObsLoggingScope(p.Path) {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "log":
				out = append(out, Finding{
					Rule: "obs-logging",
					Pos:  p.Fset.Position(call.Pos()),
					Msg:  fmt.Sprintf("log.%s in a serving-path package; emit a structured event through obs.Logger", fn.Name()),
				})
			case "fmt":
				// fmt.Fprint/Fprintf/Fprintln with os.Stderr as the writer.
				if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 && isOsStderr(p.Info, call.Args[0]) {
					out = append(out, Finding{
						Rule: "obs-logging",
						Pos:  p.Fset.Position(call.Pos()),
						Msg:  fmt.Sprintf("fmt.%s to os.Stderr in a serving-path package; emit a structured event through obs.Logger", fn.Name()),
					})
				}
			case "os":
				// os.Stderr.Write / WriteString method calls.
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					strings.HasPrefix(fn.Name(), "Write") && isOsStderr(p.Info, sel.X) {
					out = append(out, Finding{
						Rule: "obs-logging",
						Pos:  p.Fset.Position(call.Pos()),
						Msg:  fmt.Sprintf("os.Stderr.%s in a serving-path package; emit a structured event through obs.Logger", fn.Name()),
					})
				}
			}
			return true
		})
	}
	return out
}
