package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// mutexHeldRule reasons about critical sections: a sync.Mutex/RWMutex
// held across a channel operation, network or file IO, a WaitGroup
// join, a time.Sleep or an Evaluate-class statistical test serializes
// every other path through that lock behind work of unbounded latency —
// the exact shape of the /metrics race fixed in PR 4 (a scrape blocked
// behind a join holding the engine lock). It also reports lost locks:
// a Lock with no deferred Unlock whose critical section can return
// early without releasing, and a Lock whose block never unlocks at all.
//
// The analysis is intra-procedural and lexical: a critical section is
// the statement span between a `x.Lock()` statement and the matching
// `x.Unlock()` (same receiver expression, same read/write kind) in the
// same block, extended to the block's end when the unlock is deferred
// or absent. Calls made through function values and closures are not
// followed.
type mutexHeldRule struct{}

func (mutexHeldRule) ID() string { return "mutex-held-blocking" }

func (mutexHeldRule) Doc() string {
	return "mutex held across channel ops / IO / Evaluate-class calls; missing unlock on early-return paths"
}

func (mutexHeldRule) Check(p *Package, env *Env) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkFuncLocks(p, fd)...)
		}
	}
	return out
}

// lockKey identifies one mutex end: receiver expression plus read/write
// kind, so an RLock only pairs with an RUnlock on the same expression.
func lockKey(info *types.Info, call *ast.CallExpr) (key string, lock bool, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	recv := exprKey(sel.X)
	switch fn.Name() {
	case "Lock":
		return recv + "/w", true, true
	case "Unlock":
		return recv + "/w", false, true
	case "RLock":
		return recv + "/r", true, true
	case "RUnlock":
		return recv + "/r", false, true
	}
	return "", false, false
}

func stmtCall(s ast.Stmt) (*ast.CallExpr, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := es.X.(*ast.CallExpr)
	return call, ok
}

func checkFuncLocks(p *Package, fd *ast.FuncDecl) []Finding {
	info := p.Info

	// Deferred unlocks anywhere in the function cover the whole body.
	deferred := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if key, lock, ok := lockKey(info, ds.Call); ok && !lock {
			deferred[key] = true
		}
		return true
	})

	var out []Finding
	var scanList func(stmts []ast.Stmt)
	scanList = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			call, ok := stmtCall(s)
			if !ok {
				continue
			}
			key, lock, ok := lockKey(info, call)
			if !ok || !lock {
				continue
			}
			// Critical section: up to the same-level unlock, else the
			// rest of the block.
			end := len(stmts)
			for j := i + 1; j < len(stmts); j++ {
				if c, ok := stmtCall(stmts[j]); ok {
					if k2, l2, ok := lockKey(info, c); ok && !l2 && k2 == key {
						end = j
						break
					}
				}
			}
			region := stmts[i+1 : end]
			recv := strings.TrimSuffix(strings.TrimSuffix(key, "/w"), "/r")
			lockPos := p.Fset.Position(call.Lparen)
			out = append(out, checkRegionBlocking(p, region, recv, lockPos)...)
			if !deferred[key] {
				out = append(out, checkRegionReturns(p, region, key, recv)...)
				if end == len(stmts) && !regionUnlocks(info, region, key) {
					out = append(out, Finding{
						Rule: "mutex-held-blocking",
						Pos:  lockPos,
						Msg:  fmt.Sprintf("%s.Lock() has no matching unlock in this block and none is deferred", recv),
					})
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run on their own schedule
		case *ast.BlockStmt:
			scanList(n.List)
		case *ast.CaseClause:
			scanList(n.Body)
		case *ast.CommClause:
			scanList(n.Body)
		}
		return true
	})
	return out
}

// regionUnlocks reports whether any statement in the region (nested
// blocks included) unlocks the key — a conditional unlock still counts
// as "a matching unlock exists".
func regionUnlocks(info *types.Info, region []ast.Stmt, key string) bool {
	found := false
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if k, lock, ok := lockKey(info, call); ok && !lock && k == key {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// checkRegionBlocking flags blocking operations inside one critical
// section.
func checkRegionBlocking(p *Package, region []ast.Stmt, recv string, lockPos token.Position) []Finding {
	info := p.Info
	var out []Finding
	report := func(pos token.Pos, what string) {
		out = append(out, Finding{
			Rule: "mutex-held-blocking",
			Pos:  p.Fset.Position(pos),
			Msg: fmt.Sprintf("%s while holding %s (locked at %s:%d); release the lock before blocking work",
				what, recv, filepathBase(lockPos.Filename), lockPos.Line),
		})
	}
	for _, s := range region {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later, on its own goroutine or deferred
			case *ast.SendStmt:
				report(n.Arrow, "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.OpPos, "channel receive")
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					report(n.Select, "select with no default case")
				}
			case *ast.CallExpr:
				if what, ok := blockingCall(info, n); ok {
					report(n.Lparen, what)
				}
			}
			return true
		})
	}
	return out
}

// blockingCall classifies calls of unbounded or IO-bound latency.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	if pkgPath, typeName, ok := recvNamed(fn); ok {
		switch {
		case pkgPath == "sync" && typeName == "WaitGroup" && name == "Wait":
			return "sync.WaitGroup.Wait", true
		case pkgPath == "net/http" && typeName == "Client":
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head":
				return "http.Client." + name, true
			}
		case pkgPath == "os" && typeName == "File":
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "ReadFrom":
				return "os.File." + name, true
			}
		}
		// Evaluate-class statistical tests (merge-policy hot path): the
		// paper's heuristic evaluation is the expensive step of a join.
		if strings.HasPrefix(name, "Evaluate") {
			return typeName + "." + name + " (Evaluate-class call)", true
		}
		return "", false
	}
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "net." + name, true
		}
	case "net/http":
		switch name {
		case "Get", "Post", "PostForm", "Head", "ListenAndServe", "Serve":
			return "http." + name, true
		}
	case "os":
		switch name {
		case "Open", "Create", "OpenFile", "ReadFile", "WriteFile":
			return "os." + name, true
		}
	}
	if strings.HasPrefix(name, "Evaluate") {
		return fn.Pkg().Name() + "." + name + " (Evaluate-class call)", true
	}
	return "", false
}

// checkRegionReturns reports returns inside a critical section that can
// leave the function without releasing the lock. Only runs when no
// deferred unlock covers the key: a return is fine if an unlock on the
// same key appears earlier in the return's own statement list.
func checkRegionReturns(p *Package, region []ast.Stmt, key, recv string) []Finding {
	info := p.Info
	var out []Finding
	var scanList func(stmts []ast.Stmt)
	scanList = func(stmts []ast.Stmt) {
		unlocked := false
		for _, s := range stmts {
			if c, ok := stmtCall(s); ok {
				if k, lock, ok := lockKey(info, c); ok && !lock && k == key {
					unlocked = true
					continue
				}
			}
			switch s := s.(type) {
			case *ast.ReturnStmt:
				if !unlocked {
					out = append(out, Finding{
						Rule: "mutex-held-blocking",
						Pos:  p.Fset.Position(s.Return),
						Msg:  fmt.Sprintf("return leaves the function with %s still locked and no deferred unlock", recv),
					})
				}
			default:
				if !unlocked {
					ast.Inspect(s, func(n ast.Node) bool {
						switch n := n.(type) {
						case *ast.FuncLit:
							return false
						case *ast.BlockStmt:
							scanList(n.List)
							return false
						case *ast.CaseClause:
							scanList(n.Body)
							return false
						case *ast.CommClause:
							scanList(n.Body)
							return false
						}
						_ = n
						return true
					})
				}
			}
		}
	}
	scanList(region)
	return out
}

// filepathBase is a tiny local base-name helper (avoids importing
// path/filepath just for diagnostics).
func filepathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
