package lint

import (
	"strings"
	"testing"
)

func TestObsLoggingRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		// In scope: the package path ends in internal/serve.
		"internal/serve/a.go": `package serve

import (
	"fmt"
	"log"
	"os"
)

func BadLogPkg(err error) {
	log.Printf("upload failed: %v", err)
	log.Println("still here")
}

func BadFprint(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
}

func BadRawWrite(b []byte) {
	os.Stderr.Write(b)
	os.Stderr.WriteString("oops")
}

func OkStdout(msg string) {
	fmt.Fprintln(os.Stdout, msg) // stdout is a result channel, not logging
	fmt.Println(msg)
}

func OkSuppressed(b []byte) {
	//psmlint:ignore obs-logging flight dump on the way down
	os.Stderr.Write(b)
}
`,
		// Out of scope: scripts and other packages keep raw stderr.
		"scripts/tool.go": `package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	log.Println("fine here")
	fmt.Fprintln(os.Stderr, "also fine")
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var hits []Finding
	for _, f := range fs {
		if f.Rule == "obs-logging" {
			hits = append(hits, f)
		}
	}
	if len(hits) != 6 {
		t.Fatalf("want 6 obs-logging findings (2 log, 2 fmt, 2 raw write), got %d: %v", len(hits), hits)
	}
	for _, f := range hits {
		if !strings.Contains(f.Pos.Filename, "internal/serve") {
			t.Fatalf("finding outside the rule scope: %v", f)
		}
		if !strings.Contains(f.Msg, "obs.Logger") {
			t.Fatalf("finding does not point at obs.Logger: %v", f)
		}
	}
}

func TestObsLoggingRuleScope(t *testing.T) {
	for _, tc := range []struct {
		path string
		want bool
	}{
		{"cmd/psmd", true},
		{"psmkit/cmd/psmd", true},
		{"internal/serve", true},
		{"psmkit/internal/stream", true},
		{"cmd/psmgen", false},
		{"scripts", false},
		{"internal/obs", false},
		{"notcmd/psmd2", false},
	} {
		if got := inObsLoggingScope(tc.path); got != tc.want {
			t.Errorf("inObsLoggingScope(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}
