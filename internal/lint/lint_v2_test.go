package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

// --- map-order ---------------------------------------------------------------

func TestMapOrderRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Emission committed per iteration: no later sort can repair it.
func BadDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Slice built from a map range, serialized unsorted.
func BadUnsorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// Builder writes count too: hashes and joined strings leak order.
func BadBuilder(m map[string]int) string {
	var sb strings.Builder
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		sb.WriteString(k)
	}
	return sb.String()
}

// The sort between build and write clears the hazard.
func OkSorted(w io.Writer, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// Ranging a slice (already ordered) is fine.
func OkSlice(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var mapOrder []Finding
	for _, f := range fs {
		if f.Rule == "map-order" {
			mapOrder = append(mapOrder, f)
		}
	}
	if len(mapOrder) != 3 {
		t.Fatalf("want 3 map-order findings (BadDirect, BadUnsorted, BadBuilder), got %d: %v", len(mapOrder), mapOrder)
	}
	if !strings.Contains(mapOrder[0].Msg, "inside a map range") {
		t.Fatalf("BadDirect should report per-iteration emission, got %q", mapOrder[0].Msg)
	}
	for _, f := range mapOrder[1:] {
		if !strings.Contains(f.Msg, "without an intervening sort") {
			t.Fatalf("taint finding should mention the missing sort, got %q", f.Msg)
		}
	}
}

func TestMapOrderGobMapEncode(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import (
	"encoding/gob"
	"encoding/json"
	"io"
)

type payload struct {
	Name  string
	Attrs map[string]float64
}

// gob writes map entries in randomized order: never byte-stable.
func BadGob(w io.Writer, p payload) error {
	return gob.NewEncoder(w).Encode(&p)
}

// encoding/json sorts map keys, so the same shape is deterministic.
func OkJSON(w io.Writer, p payload) error {
	return json.NewEncoder(w).Encode(&p)
}

type flat struct{ Name string }

// No map anywhere in the structure: clean.
func OkGobFlat(w io.Writer, f flat) error {
	return gob.NewEncoder(w).Encode(&f)
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var mapOrder []Finding
	for _, f := range fs {
		if f.Rule == "map-order" {
			mapOrder = append(mapOrder, f)
		}
	}
	if len(mapOrder) != 1 {
		t.Fatalf("want exactly the BadGob finding, got %v", mapOrder)
	}
	if !strings.Contains(mapOrder[0].Msg, "gob") || !strings.Contains(mapOrder[0].Msg, "Attrs") {
		t.Fatalf("gob finding should name the map field, got %q", mapOrder[0].Msg)
	}
}

// TestMapOrderCrossPackage is the cross-package taint test: the map
// range lives in package kv, the serialization in package dump, and the
// fact store carries the order-dependence across the boundary.
func TestMapOrderCrossPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"kv/kv.go": `package kv

// Keys returns the map's keys in iteration (random) order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
		"dump/dump.go": `package dump

import (
	"fmt"
	"io"
	"sort"

	"lintfixture/kv"
)

func Bad(w io.Writer, m map[string]int) {
	ks := kv.Keys(m)
	fmt.Fprintln(w, ks)
}

func BadInline(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, kv.Keys(m))
}

func Ok(w io.Writer, m map[string]int) {
	ks := kv.Keys(m)
	sort.Strings(ks)
	fmt.Fprintln(w, ks)
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var mapOrder []Finding
	for _, f := range fs {
		if f.Rule == "map-order" {
			mapOrder = append(mapOrder, f)
		}
	}
	if len(mapOrder) != 2 {
		t.Fatalf("want 2 cross-package map-order findings (Bad, BadInline), got %d: %v", len(mapOrder), mapOrder)
	}
	for _, f := range mapOrder {
		if !strings.HasSuffix(f.Pos.Filename, "dump/dump.go") {
			t.Fatalf("finding should land in the serializing package, got %v", f)
		}
		if !strings.Contains(f.Msg, "kv.Keys") {
			t.Fatalf("finding should name the cross-package producer, got %q", f.Msg)
		}
	}
}

// TestMapOrderCatchesPR2SaveRevert pins the rule to the historical bug
// it was built for: the original psm.Save gob-encoded a fileModel whose
// Initials field was a map[int]int, producing byte-flaky artifacts
// until it was replaced by a state-sorted pair slice. Reverting that
// fix must trip map-order at exactly the Encode call.
func TestMapOrderCatchesPR2SaveRevert(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		// The pre-fix psm.Save shape, reconstructed.
		"psm/file.go": `package psm

import (
	"encoding/gob"
	"io"
)

type Transition struct{ From, To int }

type Model struct {
	States      []int
	Transitions []Transition
	Initials    map[int]int
}

type fileModel struct {
	Magic       string
	States      []int
	Transitions []Transition
	Initials    map[int]int
}

func Save(w io.Writer, m *Model) error {
	enc := gob.NewEncoder(w)
	fm := fileModel{
		Magic:       "PSMKIT1",
		States:      m.States,
		Transitions: m.Transitions,
		Initials:    m.Initials,
	}
	return enc.Encode(&fm)
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var mapOrder []Finding
	for _, f := range fs {
		if f.Rule == "map-order" {
			mapOrder = append(mapOrder, f)
		}
	}
	if len(mapOrder) != 1 {
		t.Fatalf("reverted psm.Save must yield exactly one map-order finding, got %v", mapOrder)
	}
	f := mapOrder[0]
	if !strings.HasSuffix(f.Pos.Filename, "psm/file.go") || f.Pos.Line != 31 {
		t.Fatalf("finding must sit on the enc.Encode(&fm) call (psm/file.go:31), got %s:%d", f.Pos.Filename, f.Pos.Line)
	}
	if !strings.Contains(f.Msg, "Initials") || !strings.Contains(f.Msg, "map[int]int") {
		t.Fatalf("finding must name the Initials map field, got %q", f.Msg)
	}
}

// --- nondet-source -----------------------------------------------------------

func TestNondetSourceRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"internal/psm/model.go": `package psm

import (
	"math/rand"
	"os"
	"time"
)

func BadClock() int64 { return time.Now().UnixNano() }

func BadRand() int { return rand.Intn(10) }

func BadEnv() string { return os.Getenv("PSM_SEED") }

// A seeded generator is reproducible: constructors and methods pass.
func OkSeeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// Allowlisted wall-clock read.
func OkAllowed() int64 {
	//psmlint:ignore nondet-source startup banner only
	return time.Now().Unix()
}
`,
		"util/clock.go": `package util

import "time"

// Outside the model-construction scope: not this rule's business.
func Stamp() int64 { return time.Now().Unix() }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var nondet []Finding
	for _, f := range fs {
		if f.Rule == "nondet-source" {
			nondet = append(nondet, f)
		}
	}
	if len(nondet) != 3 {
		t.Fatalf("want 3 nondet-source findings (BadClock, BadRand, BadEnv), got %d: %v", len(nondet), nondet)
	}
	for _, f := range nondet {
		if strings.Contains(f.Pos.Filename, "util/") {
			t.Fatalf("util package is out of scope, got %v", f)
		}
	}
}

// --- mutex-held-blocking -----------------------------------------------------

func TestMutexHeldBlockingRule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import (
	"sync"
	"time"
)

type policy struct{}

func (policy) EvaluateMerge(a, b int) bool { return a < b }

type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	pol policy
}

func (s *S) BadSend() {
	s.mu.Lock()
	s.ch <- 1
	s.mu.Unlock()
}

func (s *S) BadSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *S) BadEvaluate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pol.EvaluateMerge(1, 2)
}

func (s *S) BadEarlyReturn(x bool) {
	s.mu.Lock()
	if x {
		return
	}
	s.mu.Unlock()
}

func (s *S) BadLeak() {
	s.mu.Lock()
}

func (s *S) OkPlain() int {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
	return v
}

func (s *S) OkDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return 1
}

func (s *S) OkEarlyUnlock(x bool) {
	s.mu.Lock()
	if x {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// Read lock pairs with RUnlock, independent of the write lock.
func (s *S) OkRead() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return 1
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var mutex []Finding
	for _, f := range fs {
		if f.Rule == "mutex-held-blocking" {
			mutex = append(mutex, f)
		}
	}
	if len(mutex) != 5 {
		t.Fatalf("want 5 mutex-held-blocking findings (send, sleep, evaluate, early return, leak), got %d: %v", len(mutex), mutex)
	}
	joined := func() string {
		var b strings.Builder
		for _, f := range mutex {
			b.WriteString(f.Msg)
			b.WriteByte('\n')
		}
		return b.String()
	}()
	for _, want := range []string{"channel send", "time.Sleep", "Evaluate-class", "still locked", "no matching unlock"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q finding in:\n%s", want, joined)
		}
	}
}

// --- ctx-hygiene -------------------------------------------------------------

func TestCtxHygieneGoroutines(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

import "context"

func compute() {}

// Unstoppable: loops forever, observes nothing.
func Bad() {
	go func() {
		for {
			compute()
		}
	}()
}

// A select over ctx.Done is a stop signal.
func OkSelect(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
				compute()
			}
		}
	}()
}

// A loop bounded by its condition is stoppable.
func OkCond(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
			compute()
		}
	}()
}

// Ranging a channel terminates on close.
func OkRange(ch chan int) {
	go func() {
		for range ch {
			compute()
		}
	}()
}
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var ctx []Finding
	for _, f := range fs {
		if f.Rule == "ctx-hygiene" {
			ctx = append(ctx, f)
		}
	}
	if len(ctx) != 1 {
		t.Fatalf("want 1 ctx-hygiene finding (Bad goroutine), got %d: %v", len(ctx), ctx)
	}
	if !strings.Contains(ctx[0].Msg, "no stop signal") {
		t.Fatalf("unexpected message %q", ctx[0].Msg)
	}
}

func TestCtxHygieneDroppedAndShadowed(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"serve/serve.go": `package serve

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// Exported entry point in a serving package that ignores its context.
func Drops(ctx context.Context, n int) int { return n + 1 }

// Replaces the caller's context with a fresh root: cancellation severed.
func Shadows(ctx context.Context) error {
	ctx = context.Background()
	return work(ctx)
}

func OkPlumbed(ctx context.Context) error { return work(ctx) }

// Underscore declares "intentionally unused" and passes.
func OkDiscarded(_ context.Context, n int) int { return n }

// unexported helpers are not entry points.
func drops(ctx context.Context, n int) int { return n }
`,
		"util/u.go": `package util

import "context"

// Outside serve/stream/pipeline the entry-point audit does not apply.
func Drops(ctx context.Context, n int) int { return n }
`,
	})
	fs, err := Run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var ctx []Finding
	for _, f := range fs {
		if f.Rule == "ctx-hygiene" {
			ctx = append(ctx, f)
		}
	}
	if len(ctx) != 2 {
		t.Fatalf("want 2 ctx-hygiene findings (Drops, Shadows), got %d: %v", len(ctx), ctx)
	}
	joined := ctx[0].Msg + "\n" + ctx[1].Msg
	if !strings.Contains(joined, "drops its context.Context") || !strings.Contains(joined, "shadows its context.Context") {
		t.Fatalf("want one dropped and one shadowed finding, got:\n%s", joined)
	}
}

// --- driver config -----------------------------------------------------------

func TestRunConfigRuleSelection(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a.go": `package a

func mayFail() error { return nil }

func Bad(a, b float64) bool {
	mayFail()
	return a == b
}
`,
	})
	fs, err := RunConfig(root, []string{"./..."}, Config{Rules: []string{"float-eq"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "float-eq" {
		t.Fatalf("rule selection must run only float-eq, got %v", fs)
	}
	if _, err := RunConfig(root, []string{"./..."}, Config{Rules: []string{"no-such-rule"}}); err == nil {
		t.Fatal("unknown rule id must be a load error")
	}
}

func TestRulesHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if r.ID() == "" || r.Doc() == "" {
			t.Fatalf("rule %T missing ID or Doc", r)
		}
		if seen[r.ID()] {
			t.Fatalf("duplicate rule id %q", r.ID())
		}
		seen[r.ID()] = true
	}
	for _, id := range []string{"map-order", "nondet-source", "mutex-held-blocking", "ctx-hygiene"} {
		if !seen[id] {
			t.Fatalf("missing registered rule %q", id)
		}
	}
}

// --- baseline ----------------------------------------------------------------

func testFinding(rule, file string, line int, msg string) Finding {
	return Finding{Rule: rule, Pos: token.Position{Filename: file, Line: line, Column: 1}, Msg: msg}
}

func TestBaselineFilter(t *testing.T) {
	old := []Finding{
		testFinding("float-eq", "/repo/a.go", 10, "floating-point == comparison"),
		testFinding("err-drop", "/repo/b.go", 20, "error returned by f is dropped"),
	}
	b := NewBaseline(old, "/repo")

	// Same findings, shifted lines: all grandfathered.
	moved := []Finding{
		testFinding("float-eq", "/repo/a.go", 99, "floating-point == comparison"),
		testFinding("err-drop", "/repo/b.go", 1, "error returned by f is dropped"),
	}
	fresh, grandfathered := b.Filter(moved, "/repo")
	if len(fresh) != 0 || grandfathered != 2 {
		t.Fatalf("line moves must stay baselined, got fresh=%v grandfathered=%d", fresh, grandfathered)
	}

	// A second instance of a baselined message exceeds the count: fresh.
	dup := append(moved, testFinding("float-eq", "/repo/a.go", 120, "floating-point == comparison"))
	fresh, grandfathered = b.Filter(dup, "/repo")
	if len(fresh) != 1 || grandfathered != 2 {
		t.Fatalf("count overflow must surface, got fresh=%v grandfathered=%d", fresh, grandfathered)
	}

	// A new rule/file/message is always fresh.
	fresh, _ = b.Filter([]Finding{testFinding("map-order", "/repo/c.go", 5, "new hazard")}, "/repo")
	if len(fresh) != 1 {
		t.Fatalf("new finding must be fresh, got %v", fresh)
	}
}

func TestBaselineStaleAndRoundTrip(t *testing.T) {
	old := []Finding{
		testFinding("float-eq", "/repo/a.go", 10, "msg-a"),
		testFinding("err-drop", "/repo/b.go", 20, "msg-b"),
	}
	b := NewBaseline(old, "/repo")

	stale := b.Stale([]Finding{old[0]}, "/repo")
	if len(stale) != 1 || stale[0].Rule != "err-drop" {
		t.Fatalf("fixed finding must be reported stale, got %v", stale)
	}

	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Baseline
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Version != 1 || len(decoded.Findings) != 2 {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
	// Entries are key-sorted (rule first), so err-drop/b.go leads.
	if decoded.Findings[0].File != "b.go" || decoded.Findings[1].File != "a.go" {
		t.Fatalf("baseline paths must be root-relative and key-sorted, got %+v", decoded.Findings)
	}
}

// --- SARIF -------------------------------------------------------------------

func TestWriteSARIFShape(t *testing.T) {
	findings := []Finding{
		testFinding("map-order", "/repo/x.go", 7, "order leak"),
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, Rules(), "/repo"); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("bad SARIF envelope: %s", buf.String())
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "psmlint" || len(run.Tool.Driver.Rules) != len(Rules()) {
		t.Fatalf("driver metadata must list every rule, got %+v", run.Tool.Driver)
	}
	if len(run.Results) != 1 {
		t.Fatalf("want 1 result, got %+v", run.Results)
	}
	res := run.Results[0]
	if res.RuleID != "map-order" {
		t.Fatalf("bad ruleId %q", res.RuleID)
	}
	if got := run.Tool.Driver.Rules[res.RuleIndex].ID; got != "map-order" {
		t.Fatalf("ruleIndex %d points at %q, want map-order", res.RuleIndex, got)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "x.go" || loc.Region.StartLine != 7 {
		t.Fatalf("bad location %+v", loc)
	}
}
