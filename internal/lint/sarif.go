package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output — the static-analysis interchange format GitHub
// code scanning and most CI viewers ingest. Only the subset psmlint
// emits is modeled; field names follow the spec exactly.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri"`
	Version        string          `json:"version"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as one SARIF 2.1.0 run. root, when
// non-empty, strips to module-root-relative URIs so the report is
// machine-independent; rules lists every rule that ran (all of them
// appear in the driver metadata, found or not, so a clean run still
// documents its coverage).
func WriteSARIF(w io.Writer, findings []Finding, rules []Rule, root string) error {
	sorted := make([]Rule, len(rules))
	copy(sorted, rules)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })

	ruleIndex := map[string]int{}
	descs := make([]sarifRuleDesc, 0, len(sorted))
	for i, r := range sorted {
		ruleIndex[r.ID()] = i
		descs = append(descs, sarifRuleDesc{
			ID:               r.ID(),
			ShortDescription: sarifMessage{Text: r.Doc()},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Rule]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relativeURI(root, f.Pos.Filename),
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "psmlint",
				InformationURI: "https://example.invalid/psmkit/psmlint",
				Version:        "2.0.0",
				Rules:          descs,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

// relativeURI renders a finding path relative to root with forward
// slashes (SARIF URIs are /-separated regardless of platform).
func relativeURI(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !isDotDot(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(path)
}

func isDotDot(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == "../"
}
