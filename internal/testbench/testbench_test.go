package testbench

import (
	"sort"
	"testing"

	"psmkit/internal/hdl"
	"psmkit/internal/ip"
)

func drive(t *testing.T, core hdl.Core, opts Options, n int) (*hdl.Simulator, Generator) {
	t.Helper()
	sim := hdl.NewSimulator(core)
	gen, err := For(core, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := Drive(sim, gen, n); err != nil {
		t.Fatal(err)
	}
	return sim, gen
}

func TestForUnknownCore(t *testing.T) {
	if _, err := For(badCore{}, Options{}); err == nil {
		t.Error("unknown core accepted")
	}
}

type badCore struct{ hdl.Core }

func (badCore) Name() string { return "Mystery" }

func TestAllGeneratorsDriveTheirCores(t *testing.T) {
	cores := []hdl.Core{ip.NewRAM(), ip.NewMultSum(), ip.NewAES128(), ip.NewCamellia128()}
	for _, core := range cores {
		sim, _ := drive(t, core, Options{Seed: 42}, 2000)
		if sim.Cycle() != 2000 {
			t.Errorf("%s: cycles = %d", core.Name(), sim.Cycle())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, mk := range []func() hdl.Core{
		func() hdl.Core { return ip.NewRAM() },
		func() hdl.Core { return ip.NewAES128() },
	} {
		a := collect(t, mk(), Options{Seed: 7}, 500)
		b := collect(t, mk(), Options{Seed: 7}, 500)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cycle %d differs across identical seeds", i)
			}
		}
		c := collect(t, mk(), Options{Seed: 8}, 500)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical streams")
		}
	}
}

// collect fingerprints each cycle's inputs.
func collect(t *testing.T, core hdl.Core, opts Options, n int) []uint64 {
	t.Helper()
	gen, err := For(core, opts)
	if err != nil {
		t.Fatal(err)
	}
	sim := hdl.NewSimulator(core)
	var out []uint64
	var names []string
	for i := 0; i < n; i++ {
		in := gen.Next()
		if names == nil {
			for k := range in {
				names = append(names, k)
			}
			sort.Strings(names)
		}
		var fp uint64
		for _, k := range names {
			fp = fp*1099511628211 + in[k].Uint64()
		}
		out = append(out, fp)
		if _, err := sim.Step(in); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

func TestRAMGenExercisesAllModes(t *testing.T) {
	gen, _ := For(ip.NewRAM(), Options{Seed: 3})
	var writes, reads, idles int
	for i := 0; i < 5000; i++ {
		in := gen.Next()
		switch {
		case in["en"].Bit(0) == 0:
			idles++
		case in["we"].Bit(0) == 1:
			writes++
		default:
			reads++
		}
	}
	if writes == 0 || reads == 0 || idles == 0 {
		t.Errorf("modes: writes=%d reads=%d idles=%d", writes, reads, idles)
	}
}

func TestCipherScriptProducesCompleteBlocks(t *testing.T) {
	core := ip.NewAES128()
	sim := hdl.NewSimulator(core)
	gen, _ := For(core, Options{Seed: 9})
	dones := 0
	for i := 0; i < 3000; i++ {
		in := gen.Next()
		out, err := sim.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if out["done"].Bit(0) == 1 {
			dones++
		}
	}
	// blocks take ~14 cycles incl. gaps: expect on the order of 150+.
	if dones < 100 {
		t.Errorf("only %d completed blocks in 3000 cycles", dones)
	}
}

func TestStallsOnlyWhenEnabled(t *testing.T) {
	count := func(opts Options) int {
		gen, _ := For(ip.NewCamellia128(), opts)
		stalls := 0
		for i := 0; i < 5000; i++ {
			if gen.Next()["hold"].Uint64() != 0 {
				stalls++
			}
		}
		return stalls
	}
	if n := count(Options{Seed: 5}); n != 0 {
		t.Errorf("stalls injected without the option: %d", n)
	}
	if n := count(Options{Seed: 5, Stalls: true}); n == 0 {
		t.Error("no stalls injected with the option enabled")
	}
}

func TestStallsHaveNoEffectOnAES(t *testing.T) {
	// AES has no hold port; the stall option must be a no-op.
	core := ip.NewAES128()
	sim := hdl.NewSimulator(core)
	gen, err := For(core, Options{Seed: 11, Stalls: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Drive(sim, gen, 1000); err != nil {
		t.Errorf("stall option broke the AES program: %v", err)
	}
}

func TestCamelliaGenIncludesDecryption(t *testing.T) {
	gen, _ := For(ip.NewCamellia128(), Options{Seed: 13})
	decs := 0
	for i := 0; i < 10000; i++ {
		if gen.Next()["dec"].Bit(0) == 1 {
			decs++
		}
	}
	if decs == 0 {
		t.Error("no decryption blocks in the stimulus")
	}
}
