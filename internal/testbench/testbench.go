// Package testbench generates the deterministic training and validation
// stimulus of the evaluation (Section VI): for each benchmark IP a
// stimulus program that plays the role of the IP's functional-verification
// testbench (short-TS) and of the extended testset that re-exercises the
// same functionality with different data (long-TS).
//
// All generators are seeded and fully deterministic, so every experiment
// in EXPERIMENTS.md is reproducible bit for bit.
package testbench

import (
	"fmt"
	"math/rand"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Options tunes a stimulus program.
type Options struct {
	// Seed selects the stream.
	Seed int64
	// Stalls enables pipeline-stall injection (Camellia only). The
	// evaluation enables it in the long-TS validation runs to expose the
	// PSMs to behaviour absent from training, which is what drives the
	// wrong-state predictions of Table III.
	Stalls bool
}

// Generator produces one input valuation per clock cycle.
type Generator interface {
	// Next returns the primary-input valuation for the next cycle.
	Next() hdl.Values
}

// For returns the stimulus generator matching a core's name.
func For(core hdl.Core, opts Options) (Generator, error) {
	switch core.Name() {
	case "RAM":
		return newRAMGen(opts), nil
	case "MultSum":
		return newMACGen(opts), nil
	case "AES":
		return newAESGen(opts), nil
	case "Camellia":
		return newCamGen(opts), nil
	default:
		return nil, fmt.Errorf("testbench: no stimulus program for core %q", core.Name())
	}
}

// Drive runs a core for n cycles with the generator, returning the
// simulator used (observers can be attached before calling Step manually;
// most callers use experiment's helpers instead).
func Drive(sim *hdl.Simulator, gen Generator, n int) error {
	for i := 0; i < n; i++ {
		if _, err := sim.Step(gen.Next()); err != nil {
			return err
		}
	}
	return nil
}

// --- RAM -----------------------------------------------------------------

// ramGen cycles through idle periods, register-style write bursts (the
// same address rewritten with data whose per-cycle Hamming distance
// varies — the data-dependent behaviour the paper's linear regression
// calibrates), and polling read bursts.
type ramGen struct {
	rng   *rand.Rand
	mode  int // 0 idle, 1 write, 2 read
	left  int
	addr  uint64
	data  uint64
	zero1 logic.Vector
	one1  logic.Vector
}

func newRAMGen(opts Options) *ramGen {
	return &ramGen{
		rng:   rand.New(rand.NewSource(opts.Seed)),
		zero1: logic.New(1),
		one1:  logic.FromUint64(1, 1),
	}
}

func (g *ramGen) Next() hdl.Values {
	if g.left == 0 {
		switch g.rng.Intn(4) {
		case 0:
			g.mode, g.left = 0, 2+g.rng.Intn(18) // idle
		case 1, 2:
			g.mode, g.left = 1, 24+g.rng.Intn(96) // write burst
			g.addr = uint64(g.rng.Intn(1 << 10))
			g.data = g.rng.Uint64() & 0xffffffff
		default:
			g.mode, g.left = 2, 16+g.rng.Intn(64) // read (polling) burst
			g.addr = uint64(g.rng.Intn(1 << 10))
		}
	}
	g.left--
	switch g.mode {
	case 1:
		// Flip a varying number of data bits so the write power spans a
		// wide Hamming range (always at least a few: a write burst that
		// rewrites identical data cycle after cycle is not a realistic
		// payload and would make write power indistinguishable from idle).
		k := 4 + g.rng.Intn(29)
		for i := 0; i < k; i++ {
			g.data ^= 1 << uint(g.rng.Intn(32))
		}
		return hdl.Values{
			"en": g.one1, "we": g.one1,
			"addr":  logic.FromUint64(10, g.addr),
			"wdata": logic.FromUint64(32, g.data),
		}
	case 2:
		return hdl.Values{
			"en": g.one1, "we": g.zero1,
			"addr":  logic.FromUint64(10, g.addr),
			"wdata": logic.New(32),
		}
	default:
		return hdl.Values{
			"en": g.zero1, "we": g.zero1,
			"addr": logic.New(10), "wdata": logic.New(32),
		}
	}
}

// --- MultSum ----------------------------------------------------------------

// macGen alternates idle gaps with MAC bursts of random operands.
type macGen struct {
	rng  *rand.Rand
	busy int
	idle int
	off1 logic.Vector
	on1  logic.Vector
	z16  logic.Vector
}

func newMACGen(opts Options) *macGen {
	return &macGen{
		rng:  rand.New(rand.NewSource(opts.Seed)),
		off1: logic.New(1),
		on1:  logic.FromUint64(1, 1),
		z16:  logic.New(16),
	}
}

func (g *macGen) Next() hdl.Values {
	if g.busy == 0 && g.idle == 0 {
		g.busy = 5 + g.rng.Intn(45)
		g.idle = 3 + g.rng.Intn(17)
	}
	if g.busy > 0 {
		g.busy--
		return hdl.Values{
			"a":  logic.FromUint64(16, uint64(g.rng.Intn(1<<16))),
			"b":  logic.FromUint64(16, uint64(g.rng.Intn(1<<16))),
			"c":  logic.FromUint64(16, uint64(g.rng.Intn(1<<16))),
			"en": g.on1,
		}
	}
	g.idle--
	return hdl.Values{"a": g.z16, "b": g.z16, "c": g.z16, "en": g.off1}
}

// --- block-cipher scripting ---------------------------------------------------

// cipherScript sequences keyload / start / busy-wait / gap phases shared
// by the AES and Camellia programs.
type cipherScript struct {
	rng        *rand.Rand
	busyCycles int // cycles between start and done (exclusive of start)
	holdW      int // width of the hold port; 0 when the core has none
	stalls     bool

	keyLoaded bool
	queue     []hdl.Values

	key logic.Vector
	z1  logic.Vector
	o1  logic.Vector
	z2  logic.Vector
	z12 logic.Vector
}

func newCipherScript(opts Options, busyCycles, holdW int) *cipherScript {
	return &cipherScript{
		rng:        rand.New(rand.NewSource(opts.Seed)),
		busyCycles: busyCycles,
		holdW:      holdW,
		stalls:     opts.Stalls,
		z1:         logic.New(1),
		o1:         logic.FromUint64(1, 1),
		z2:         logic.New(2),
		z12:        logic.New(128),
		key:        logic.New(128),
	}
}

func (g *cipherScript) idleValues() hdl.Values {
	v := hdl.Values{
		"key": g.key, "din": g.z12,
		"keyload": g.z1, "start": g.z1, "dec": g.z1, "flush": g.z1,
	}
	if g.holdW > 0 {
		v["hold"] = logic.New(g.holdW)
	}
	return v
}

func (g *cipherScript) rand128() logic.Vector {
	var b [16]byte
	g.rng.Read(b[:])
	return logic.FromBytes(128, b[:])
}

func (g *cipherScript) Next() hdl.Values {
	if len(g.queue) == 0 {
		g.schedule()
	}
	v := g.queue[0]
	g.queue = g.queue[1:]
	return v
}

// schedule enqueues the next protocol episode.
func (g *cipherScript) schedule() {
	push := func(v hdl.Values) { g.queue = append(g.queue, v) }

	if !g.keyLoaded || g.rng.Intn(12) == 0 {
		g.key = g.rand128()
		v := g.idleValues()
		v["keyload"] = g.o1
		push(v)
		g.keyLoaded = true
		for i := g.rng.Intn(4); i > 0; i-- {
			push(g.idleValues())
		}
		return
	}

	// One block operation: start, busy wait (optionally stalled), gap.
	start := g.idleValues()
	start["din"] = g.rand128()
	start["start"] = g.o1
	dec := g.rng.Intn(5) == 0
	if dec {
		start["dec"] = g.o1
	}
	push(start)

	stallAt := map[int]int{} // busy cycle → stall length
	if g.stalls && g.holdW > 0 {
		for k := g.rng.Intn(2); k > 0; k-- {
			stallAt[2+g.rng.Intn(g.busyCycles-4)] = 1 + g.rng.Intn(2)
		}
	}
	for i := 0; i < g.busyCycles; i++ {
		for k := 0; k < stallAt[i]; k++ {
			v := g.idleValues()
			v["hold"] = logic.FromUint64(g.holdW, 3)
			push(v)
		}
		push(g.idleValues())
	}
	for i := g.rng.Intn(9); i > 0; i-- {
		push(g.idleValues())
	}
}

func newAESGen(opts Options) Generator {
	// AES: done arrives 10 cycles after the start cycle.
	return newCipherScript(opts, 10, 0)
}

func newCamGen(opts Options) Generator {
	// Camellia: done arrives 21 cycles after the start cycle.
	return newCipherScript(opts, 21, 2)
}
