// Package mining implements the dynamic assertion-mining front end of the
// PSM flow (Section III-A of the paper, after Danese et al., DATE 2015):
//
//  1. extract atomic propositions over the model's primary inputs and
//     outputs that hold frequently and stably on the training traces;
//  2. build the truth matrix m (atomic × instant);
//  3. AND-compose each distinct matrix row into a proposition, yielding a
//     set Prop such that exactly one proposition holds at every instant;
//  4. rewrite each functional trace as a proposition trace Γ.
//
// The resulting Dictionary is retained: during PSM simulation it maps any
// fresh PI/PO valuation to the proposition that holds (or reports an
// unknown behaviour), which is what keeps the PSMs synchronized with the
// IP.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"psmkit/internal/logic"
	"psmkit/internal/trace"
)

// Config tunes the atomic-proposition extraction.
type Config struct {
	// MinSupport is the minimum fraction of instants an atomic
	// proposition over multi-bit signals must hold to be retained.
	MinSupport float64
	// MinRunLength is the minimum average run length (instants between
	// value changes) of a multi-bit atomic's truth sequence. It is the
	// stability filter that discards data-driven comparisons (which
	// flicker at random) while keeping mode-describing relations.
	// Single-bit control signals are exempt: their pulses are exactly the
	// behaviour delimiters the temporal patterns need.
	MinRunLength float64
}

// DefaultConfig returns the thresholds used in the paper reproduction.
func DefaultConfig() Config {
	return Config{MinSupport: 0.02, MinRunLength: 3}
}

// AtomKind enumerates the relational templates of atomic propositions.
type AtomKind int

const (
	// AtomTrue / AtomFalse predicate a single-bit signal's polarity.
	AtomTrue AtomKind = iota
	AtomFalse
	// AtomZero / AtomNonZero predicate a multi-bit signal against zero.
	AtomZero
	AtomNonZero
	// AtomLT / AtomEQ / AtomGT compare two equal-width signals.
	AtomLT
	AtomEQ
	AtomGT
)

// Atom is an atomic proposition over one or two trace signals.
type Atom struct {
	Kind AtomKind
	A, B int // signal columns; B is used by the comparison kinds only
}

// Eval evaluates the atom on one valuation row.
func (a Atom) Eval(row []logic.Vector) bool {
	switch a.Kind {
	case AtomTrue:
		return row[a.A].Bit(0) == 1
	case AtomFalse:
		return row[a.A].Bit(0) == 0
	case AtomZero:
		return row[a.A].IsZero()
	case AtomNonZero:
		return !row[a.A].IsZero()
	case AtomLT:
		return row[a.A].Cmp(row[a.B]) < 0
	case AtomEQ:
		return row[a.A].Cmp(row[a.B]) == 0
	case AtomGT:
		return row[a.A].Cmp(row[a.B]) > 0
	default:
		panic("mining: unknown atom kind")
	}
}

// String renders the atom over the given signal set.
func (a Atom) String(signals []trace.Signal) string {
	n := func(i int) string { return signals[i].Name }
	switch a.Kind {
	case AtomTrue:
		return n(a.A) + "=true"
	case AtomFalse:
		return n(a.A) + "=false"
	case AtomZero:
		return n(a.A) + "=0"
	case AtomNonZero:
		return n(a.A) + "!=0"
	case AtomLT:
		return n(a.A) + "<" + n(a.B)
	case AtomEQ:
		return n(a.A) + "=" + n(a.B)
	case AtomGT:
		return n(a.A) + ">" + n(a.B)
	default:
		return "?"
	}
}

// MaxAtoms bounds the retained atomic propositions so a proposition's
// truth signature packs into one machine word, keeping the per-instant
// EvalRow on the PSM simulation hot path allocation-free. When more atoms
// survive filtering, the highest-support ones win.
const MaxAtoms = 64

// Dictionary is the mined proposition vocabulary of one IP: the retained
// atomic propositions and the set Prop of AND-compositions observed on the
// training traces. Exactly one proposition of Prop holds at each training
// instant; on fresh data EvalRow reports which proposition holds, or
// Unknown for a valuation whose atom signature was never seen in training.
type Dictionary struct {
	Signals []trace.Signal
	Atoms   []Atom

	propKeys []uint64       // canonical signature (atom truth bitmask) per proposition id
	index    map[uint64]int // signature → proposition id
}

// Unknown is returned by EvalRow for valuations outside the mined set.
const Unknown = -1

// NumProps returns the cardinality of the mined proposition set.
func (d *Dictionary) NumProps() int { return len(d.propKeys) }

// signature computes the canonical truth signature of a valuation row:
// bit i is set when atom i holds.
func (d *Dictionary) signature(row []logic.Vector) uint64 {
	var bits uint64
	for i, a := range d.Atoms {
		if a.Eval(row) {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// EvalRow maps a valuation to its proposition id, or Unknown. It
// allocates nothing and, once mining has returned (the index is never
// written afterwards), is safe for any number of concurrent readers —
// the parallel experiment rows and the SoC co-simulation rely on this.
func (d *Dictionary) EvalRow(row []logic.Vector) int {
	if id, ok := d.index[d.signature(row)]; ok {
		return id
	}
	return Unknown
}

// intern returns the proposition id for a signature, creating it if new.
// It is single-writer by design: only the mining goroutine calls it
// (MineParallel precomputes signatures concurrently, then replays them
// here sequentially), which is what keeps EvalRow lock-free.
func (d *Dictionary) intern(sig uint64) int {
	if id, ok := d.index[sig]; ok {
		return id
	}
	id := len(d.propKeys)
	d.propKeys = append(d.propKeys, sig)
	d.index[sig] = id
	return id
}

// PropString renders proposition id as the AND of its true atoms (the
// paper's composition step keeps exactly the atomics marked true in the
// matrix row).
func (d *Dictionary) PropString(id int) string {
	if id == Unknown {
		return "<unknown>"
	}
	sig := d.propKeys[id]
	var parts []string
	for i, a := range d.Atoms {
		if sig&(1<<uint(i)) != 0 {
			parts = append(parts, a.String(d.Signals))
		}
	}
	if len(parts) == 0 {
		return "true"
	}
	return strings.Join(parts, " & ")
}

// PropTrace is a proposition trace Γ: the proposition id holding at each
// instant of one functional trace.
type PropTrace struct {
	IDs []int
}

// Len returns the number of instants.
func (p *PropTrace) Len() int { return len(p.IDs) }

// validateTraces checks the schema/emptiness preconditions shared by the
// sequential and parallel miners and returns the total instant count.
func validateTraces(traces []*trace.Functional) (int, error) {
	if len(traces) == 0 {
		return 0, fmt.Errorf("mining: no traces")
	}
	total := 0
	for i, ft := range traces {
		if !traces[0].SameSchema(ft) {
			return 0, fmt.Errorf("mining: trace %d has a different signal schema", i)
		}
		if ft.Len() == 0 {
			return 0, fmt.Errorf("mining: trace %d is empty", i)
		}
		total += ft.Len()
	}
	return total, nil
}

// Mine builds the proposition dictionary over a set of functional traces
// of the same model and rewrites each trace as a proposition trace.
// All traces must share the same signal schema.
func Mine(traces []*trace.Functional, cfg Config) (*Dictionary, []*PropTrace, error) {
	total, err := validateTraces(traces)
	if err != nil {
		return nil, nil, err
	}
	signals := traces[0].Signals

	// Phase 1a: candidate atomic propositions.
	candidates := candidateAtoms(signals)

	// Phase 1b: frequency and stability statistics over all traces.
	kept := filterAtoms(candidates, traces, cfg)
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("mining: no atomic proposition survived filtering (%d candidates over %d instants)",
			len(candidates), total)
	}

	// Phase 2: row-wise AND composition and proposition-trace emission.
	d := &Dictionary{
		Signals: signals,
		Atoms:   kept,
		index:   map[uint64]int{},
	}
	out := make([]*PropTrace, len(traces))
	for i, ft := range traces {
		pt := &PropTrace{IDs: make([]int, ft.Len())}
		for t := 0; t < ft.Len(); t++ {
			pt.IDs[t] = d.intern(d.signature(ft.Row(t)))
		}
		out[i] = pt
	}
	return d, out, nil
}

// CandidateAtoms enumerates the relational templates over a signal set:
// polarity atoms for 1-bit signals, zero tests for wider signals, and the
// three comparisons for every equal-width signal pair. It is the exact
// candidate enumeration the batch miners start from, exported so the
// streaming engine can evaluate the same candidates record by record.
func CandidateAtoms(signals []trace.Signal) []Atom {
	return candidateAtoms(signals)
}

func candidateAtoms(signals []trace.Signal) []Atom {
	var atoms []Atom
	for i, s := range signals {
		if s.Width == 1 {
			atoms = append(atoms, Atom{Kind: AtomTrue, A: i}, Atom{Kind: AtomFalse, A: i})
		} else {
			atoms = append(atoms, Atom{Kind: AtomZero, A: i}, Atom{Kind: AtomNonZero, A: i})
		}
	}
	for i := range signals {
		for j := i + 1; j < len(signals); j++ {
			if signals[i].Width != signals[j].Width || signals[i].Width == 1 {
				continue
			}
			atoms = append(atoms,
				Atom{Kind: AtomLT, A: i, B: j},
				Atom{Kind: AtomEQ, A: i, B: j},
				Atom{Kind: AtomGT, A: i, B: j})
		}
	}
	return atoms
}

// AtomStats accumulates the truth statistics of one candidate atom over
// the training traces. All fields are exact integer counts, so partial
// statistics computed per trace (or per atom, on different workers)
// combine into exactly the numbers a single sequential scan produces —
// the streaming front end (internal/stream) relies on this to fold
// per-session partials into the global filtering decision.
type AtomStats struct {
	Held, Changes       int
	EverTrue, EverFalse bool
}

// Merge folds another partial accumulation (over a disjoint trace set)
// into st.
func (st *AtomStats) Merge(o AtomStats) {
	st.Held += o.Held
	st.Changes += o.Changes
	st.EverTrue = st.EverTrue || o.EverTrue
	st.EverFalse = st.EverFalse || o.EverFalse
}

// statsFor scans every trace once and returns the atom's statistics. It
// reads only immutable trace storage and is safe to call concurrently for
// different (or the same) atoms.
func statsFor(a Atom, traces []*trace.Functional) AtomStats {
	var st AtomStats
	for _, ft := range traces {
		prev := false
		for t := 0; t < ft.Len(); t++ {
			v := a.Eval(ft.Row(t))
			if v {
				st.Held++
				st.EverTrue = true
			} else {
				st.EverFalse = true
			}
			if t > 0 && v != prev {
				st.Changes++
			}
			prev = v
		}
	}
	return st
}

// filterAtoms keeps the atoms that hold frequently and stably. Single-bit
// polarity atoms are kept whenever they hold at least once; multi-bit
// atoms must meet the support and run-length thresholds. At most MaxAtoms
// survive (highest support wins, original order preserved).
func filterAtoms(candidates []Atom, traces []*trace.Functional, cfg Config) []Atom {
	total := 0
	for _, ft := range traces {
		total += ft.Len()
	}
	stats := make([]AtomStats, len(candidates))
	for i, a := range candidates {
		stats[i] = statsFor(a, traces)
	}
	return selectAtoms(candidates, stats, total, cfg)
}

// selectAtoms applies the support/stability thresholds and the MaxAtoms
// cap to precomputed statistics. The decision per atom depends only on
// that atom's stats, so the sequential and parallel miners share this
// exact code path and keep byte-identical dictionaries.
func selectAtoms(candidates []Atom, stats []AtomStats, total int, cfg Config) []Atom {
	idx := SelectIndices(candidates, stats, total, cfg)
	if idx == nil {
		return nil
	}
	kept := make([]Atom, len(idx))
	for i, ci := range idx {
		kept[i] = candidates[ci]
	}
	return kept
}

// SelectIndices applies the support/stability thresholds and the MaxAtoms
// cap to precomputed statistics, returning the indices into candidates of
// the surviving atoms in their original order. The batch miners and the
// streaming engine share this exact decision path, so a streamed trace
// set keeps the byte-identical dictionary the batch flow would mine.
func SelectIndices(candidates []Atom, stats []AtomStats, total int, cfg Config) []int {
	if total == 0 {
		return nil
	}
	var kept []int
	var supports []float64
	for ci, a := range candidates {
		st := stats[ci]
		if !st.EverTrue {
			continue // never holds: carries no information
		}
		support := float64(st.Held) / float64(total)
		wide := a.Kind != AtomTrue && a.Kind != AtomFalse
		if wide {
			if support < cfg.MinSupport {
				continue
			}
			if st.EverFalse { // constant atoms have no run structure to test
				avgRun := float64(total) / float64(st.Changes+1)
				if avgRun < cfg.MinRunLength {
					continue
				}
			}
		}
		kept = append(kept, ci)
		supports = append(supports, support)
	}
	if len(kept) > MaxAtoms {
		// Keep the MaxAtoms highest-support atoms, preserving order.
		idx := make([]int, len(kept))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return supports[idx[a]] > supports[idx[b]] })
		keep := map[int]bool{}
		for _, i := range idx[:MaxAtoms] {
			keep[i] = true
		}
		var trimmed []int
		for i, ci := range kept {
			if keep[i] {
				trimmed = append(trimmed, ci)
			}
		}
		kept = trimmed
	}
	return kept
}

// Snapshot is the lossless serializable form of a Dictionary, used by the
// PSM model file format.
type Snapshot struct {
	Signals  []trace.Signal
	Atoms    []Atom
	PropKeys []uint64
}

// Snapshot extracts the dictionary's state.
func (d *Dictionary) Snapshot() Snapshot {
	return Snapshot{
		Signals:  append([]trace.Signal(nil), d.Signals...),
		Atoms:    append([]Atom(nil), d.Atoms...),
		PropKeys: append([]uint64(nil), d.propKeys...),
	}
}

// FromSnapshot rebuilds a Dictionary (including its signature index).
func FromSnapshot(s Snapshot) *Dictionary {
	d := &Dictionary{
		Signals:  append([]trace.Signal(nil), s.Signals...),
		Atoms:    append([]Atom(nil), s.Atoms...),
		propKeys: append([]uint64(nil), s.PropKeys...),
		index:    make(map[uint64]int, len(s.PropKeys)),
	}
	for i, k := range d.propKeys {
		d.index[k] = i
	}
	return d
}
