package mining

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/trace"
)

// randomTraces builds nTraces run-structured random traces over a small
// mixed-width schema (the run structure gives the miner stable atoms to
// keep, like real control traffic does).
func randomTraces(rng *rand.Rand, nTraces, minLen, maxLen int) []*trace.Functional {
	sigs := []trace.Signal{
		{Name: "en", Width: 1},
		{Name: "mode", Width: 1},
		{Name: "a", Width: 4},
		{Name: "b", Width: 4},
		{Name: "data", Width: 8},
	}
	var out []*trace.Functional
	for i := 0; i < nTraces; i++ {
		ft := trace.NewFunctional(sigs)
		n := minLen + rng.Intn(maxLen-minLen+1)
		row := make([]logic.Vector, len(sigs))
		for j, s := range sigs {
			row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
		}
		for t := 0; t < n; t++ {
			// Change a random subset of signals with low probability so
			// values hold for multi-instant runs.
			for j, s := range sigs {
				if rng.Float64() < 0.15 {
					row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
				}
			}
			ft.Append(row)
		}
		out = append(out, ft)
	}
	return out
}

// TestMineParallelEquivalence checks that the parallel miner reproduces
// the sequential dictionary and proposition traces exactly, for several
// worker counts and seeds.
func TestMineParallelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		traces := randomTraces(rng, 1+rng.Intn(4), 40, 400)
		cfg := DefaultConfig()

		wantDict, wantPTs, wantErr := Mine(traces, cfg)
		for _, workers := range []int{1, 2, 3, 8} {
			gotDict, gotPTs, gotErr := MineParallel(context.Background(), traces, cfg, workers)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("seed %d workers %d: error mismatch: seq %v, par %v", seed, workers, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if !reflect.DeepEqual(wantDict.Snapshot(), gotDict.Snapshot()) {
				t.Fatalf("seed %d workers %d: dictionaries differ", seed, workers)
			}
			if !reflect.DeepEqual(wantPTs, gotPTs) {
				t.Fatalf("seed %d workers %d: proposition traces differ", seed, workers)
			}
		}
	}
}

func TestMineParallelValidation(t *testing.T) {
	if _, _, err := MineParallel(context.Background(), nil, DefaultConfig(), 4); err == nil {
		t.Error("no traces accepted")
	}
	ft := trace.NewFunctional([]trace.Signal{{Name: "x", Width: 1}})
	if _, _, err := MineParallel(context.Background(), []*trace.Functional{ft}, DefaultConfig(), 4); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestMineParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	traces := randomTraces(rng, 4, 300, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := MineParallel(ctx, traces, DefaultConfig(), 4); err != context.Canceled {
		t.Errorf("cancelled mine returned %v, want context.Canceled", err)
	}
}
