package mining

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"psmkit/internal/obs"
	"psmkit/internal/trace"
)

// MineParallel is Mine with the two trace-independent hot loops fanned
// out over a bounded worker pool: the per-atom truth statistics of the
// filtering phase and the per-instant signature computation of the
// rewriting phase. The result is byte-identical to Mine:
//
//   - atom statistics are exact integer counts and each atom is scanned
//     by exactly one worker, so the filtering decisions cannot drift;
//   - signatures are precomputed into per-trace scratch buffers without
//     touching the Dictionary, then replayed through intern sequentially
//     in trace order, so every proposition gets the id the sequential
//     miner would have assigned at its first occurrence.
//
// The sequential replay is also the interning strategy that keeps the
// signature index safe under concurrency: intern runs on a single
// goroutine only, and once MineParallel (or Mine) returns, the index is
// never written again — EvalRow is then safe for any number of
// concurrent readers.
//
// workers ≤ 0 selects GOMAXPROCS. Cancelling ctx aborts the scan and
// returns ctx.Err().
func MineParallel(ctx context.Context, traces []*trace.Functional, cfg Config, workers int) (*Dictionary, []*PropTrace, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx, span := obs.Start(ctx, "mine", obs.KV("traces", len(traces)))
	defer span.End()
	total, err := validateTraces(traces)
	if err != nil {
		return nil, nil, err
	}
	signals := traces[0].Signals
	candidates := candidateAtoms(signals)

	// Phase 1b (parallel over atoms): frequency and stability statistics.
	stats := make([]AtomStats, len(candidates))
	_, statsSpan := obs.Start(ctx, "mine.stats", obs.KV("candidates", len(candidates)))
	err = fanOut(ctx, workers, len(candidates), func(i int) {
		stats[i] = statsFor(candidates[i], traces)
	})
	statsSpan.End()
	if err != nil {
		return nil, nil, err
	}
	kept := selectAtoms(candidates, stats, total, cfg)
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("mining: no atomic proposition survived filtering (%d candidates over %d instants)",
			len(candidates), total)
	}
	span.SetAttr("atoms", len(kept))
	if reg := obs.RegistryFrom(ctx); reg != nil {
		reg.Counter("mining_traces_total").Add(int64(len(traces)))
		reg.Counter("mining_instants_total").Add(int64(total))
		reg.Counter("mining_atoms_candidates_total").Add(int64(len(candidates)))
		reg.Counter("mining_atoms_kept_total").Add(int64(len(kept)))
	}

	d := &Dictionary{
		Signals: signals,
		Atoms:   kept,
		index:   map[uint64]int{},
	}

	// Phase 2a (parallel over traces): pure signature precompute. Workers
	// only read the (now fixed) atom set and write disjoint buffers.
	sigs := make([][]uint64, len(traces))
	_, rewriteSpan := obs.Start(ctx, "mine.rewrite")
	err = fanOut(ctx, workers, len(traces), func(i int) {
		ft := traces[i]
		buf := make([]uint64, ft.Len())
		for t := 0; t < ft.Len(); t++ {
			buf[t] = d.signature(ft.Row(t))
		}
		sigs[i] = buf
	})
	if err != nil {
		rewriteSpan.End()
		return nil, nil, err
	}

	// Phase 2b (sequential): intern replay in trace order — cheap map
	// lookups compared to the atom evaluations above.
	out := make([]*PropTrace, len(traces))
	for i, s := range sigs {
		pt := &PropTrace{IDs: make([]int, len(s))}
		for t, sig := range s {
			pt.IDs[t] = d.intern(sig)
		}
		out[i] = pt
	}
	rewriteSpan.End()
	obs.RegistryFrom(ctx).Counter("mining_props_total").Add(int64(d.NumProps()))
	return d, out, nil
}

// fanOut runs fn(i) for every i in [0, n) on up to workers goroutines
// (work-stealing over an atomic cursor, so uneven item costs balance).
// A cancelled ctx stops workers from picking up new items and is
// reported as the return value; items already started still finish.
func fanOut(ctx context.Context, workers, n int, fn func(int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
