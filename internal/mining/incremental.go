package mining

import (
	"fmt"

	"psmkit/internal/logic"
	"psmkit/internal/trace"
)

// This file is the incremental face of the miner, used by internal/stream:
// instead of scanning a complete trace set, an Observer consumes one
// valuation row at a time, reducing it to a packed candidate-atom truth
// bitset and folding the row into the exact integer statistics the batch
// filter (SelectIndices) decides on. The bitset is lossless with respect
// to every downstream mining decision — any future kept-atom subset's
// signature is a projection of it (ProjectSignature) — so the engine can
// discard the raw logic vectors immediately after observing a record.

// SigWords returns the number of 64-bit words a packed truth bitset over
// n atoms occupies.
func SigWords(n int) int { return (n + 63) / 64 }

// Observer incrementally evaluates a fixed candidate-atom set over the
// rows of one trace. It is single-goroutine by design (one per streaming
// session); partial statistics from several observers merge exactly via
// MergeStats because every field of AtomStats is an exact count.
type Observer struct {
	atoms []Atom
	stats []AtomStats
	prev  []bool
	rows  int
}

// NewObserver returns an observer over the given candidate atoms
// (typically CandidateAtoms of the session's schema).
func NewObserver(atoms []Atom) *Observer {
	return &Observer{
		atoms: atoms,
		stats: make([]AtomStats, len(atoms)),
		prev:  make([]bool, len(atoms)),
	}
}

// NumAtoms returns the candidate count (the bitset width).
func (o *Observer) NumAtoms() int { return len(o.atoms) }

// Rows returns the number of rows observed so far.
func (o *Observer) Rows() int { return o.rows }

// Observe folds one valuation row into the statistics and writes the
// packed candidate truth bits into dst (which must hold
// SigWords(NumAtoms()) words; a short or nil dst is reallocated). The
// returned slice aliases dst when it was large enough.
func (o *Observer) Observe(row []logic.Vector, dst []uint64) []uint64 {
	words := SigWords(len(o.atoms))
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for i := range dst {
		dst[i] = 0
	}
	first := o.rows == 0
	for i, a := range o.atoms {
		v := a.Eval(row)
		st := &o.stats[i]
		if v {
			dst[i/64] |= 1 << uint(i%64)
			st.Held++
			st.EverTrue = true
		} else {
			st.EverFalse = true
		}
		if !first && v != o.prev[i] {
			st.Changes++
		}
		o.prev[i] = v
	}
	o.rows++
	return dst
}

// ObserveBatch folds a batch of rows into the statistics at once,
// writing row r's packed truth bits at dst[r*SigWords(NumAtoms()):].
// It is exactly equivalent to calling Observe row by row — every
// AtomStats field is an exact count, so increment order is immaterial —
// but iterates atoms on the outer loop, loading each atom's metadata,
// statistics slot and previous-value bit once per batch instead of once
// per row. This is the batched reduction behind Session.AppendBatch.
func (o *Observer) ObserveBatch(rows [][]logic.Vector, dst []uint64) []uint64 {
	words := SigWords(len(o.atoms))
	need := words * len(rows)
	if cap(dst) < need {
		dst = make([]uint64, need)
	}
	dst = dst[:need]
	for i := range dst {
		dst[i] = 0
	}
	if len(rows) == 0 {
		return dst
	}
	first := o.rows == 0
	for i, a := range o.atoms {
		st := &o.stats[i]
		prev := o.prev[i]
		word, bit := i/64, uint64(1)<<uint(i%64)
		for r, row := range rows {
			v := a.Eval(row)
			if v {
				dst[r*words+word] |= bit
				st.Held++
				st.EverTrue = true
			} else {
				st.EverFalse = true
			}
			if !(first && r == 0) && v != prev {
				st.Changes++
			}
			prev = v
		}
		o.prev[i] = prev
	}
	o.rows += len(rows)
	return dst
}

// Stats returns the per-atom statistics accumulated so far. The returned
// slice is the observer's own storage; callers that outlive the observer
// should MergeStats it into their accumulator instead of retaining it.
func (o *Observer) Stats() []AtomStats { return o.stats }

// MergeStats folds the per-atom partials of src into dst (same candidate
// order). It panics on a length mismatch — that is always a schema bug.
func MergeStats(dst, src []AtomStats) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mining: merging %d atom stats into %d", len(src), len(dst)))
	}
	for i := range src {
		dst[i].Merge(src[i])
	}
}

// ProjectSignature extracts the kept-atom signature of one row from its
// packed candidate truth bits: bit k of the result is candidate bit
// keptIdx[k]. Projecting the stored bitsets with the SelectIndices of the
// full trace set reproduces exactly the signatures Mine computes over the
// kept dictionary.
func ProjectSignature(bits []uint64, keptIdx []int) uint64 {
	var sig uint64
	for k, ci := range keptIdx {
		if bits[ci/64]&(1<<uint(ci%64)) != 0 {
			sig |= 1 << uint(k)
		}
	}
	return sig
}

// NewDictionary returns an empty dictionary over an already-selected atom
// set, ready for sequential Intern replay in trace order. It is how the
// streaming engine rebuilds (or extends) the vocabulary the batch miner
// would have produced.
func NewDictionary(signals []trace.Signal, kept []Atom) *Dictionary {
	return &Dictionary{
		Signals: append([]trace.Signal(nil), signals...),
		Atoms:   append([]Atom(nil), kept...),
		index:   map[uint64]int{},
	}
}

// Intern returns the proposition id of a kept-atom signature, assigning
// the next id on first sight. Like the unexported intern it wraps, it is
// single-writer: only one goroutine may call it, and once the dictionary
// is published for EvalRow readers it must not be called again. The
// streaming engine honors this by interning only under its snapshot lock,
// in session-completion order — which is exactly the sequential replay
// order MineParallel uses, so ids match the batch flow.
func (d *Dictionary) Intern(sig uint64) int { return d.intern(sig) }
