package mining

import (
	"strings"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/trace"
)

// fig3Trace builds the functional trace of the paper's Fig. 3:
//
//	t : v1    v2    v3 v4
//	0 : true  false 3  1
//	1 : true  false 3  1
//	2 : true  false 3  1
//	3 : false true  3  3
//	4 : false true  4  4
//	5 : false true  2  2
//	6 : true  true  0  0
//	7 : true  true  3  1
func fig3Trace() *trace.Functional {
	f := trace.NewFunctional([]trace.Signal{
		{Name: "v1", Width: 1}, {Name: "v2", Width: 1},
		{Name: "v3", Width: 4}, {Name: "v4", Width: 4},
	})
	rows := [][4]uint64{
		{1, 0, 3, 1}, {1, 0, 3, 1}, {1, 0, 3, 1},
		{0, 1, 3, 3}, {0, 1, 4, 4}, {0, 1, 2, 2},
		{1, 1, 0, 0}, {1, 1, 3, 1},
	}
	for _, r := range rows {
		f.Append([]logic.Vector{
			logic.FromUint64(1, r[0]), logic.FromUint64(1, r[1]),
			logic.FromUint64(4, r[2]), logic.FromUint64(4, r[3]),
		})
	}
	return f
}

func fig3Config() Config {
	// Fig. 3 is an 8-instant illustration; relax the stability filter so
	// the comparison atoms survive on such a short trace.
	return Config{MinSupport: 0.1, MinRunLength: 2}
}

// TestFig3PropositionTrace is the golden reproduction of the paper's
// Fig. 3: the mined proposition trace must partition the instants as
// p_a p_a p_a p_b p_b p_b p_c p_d.
func TestFig3PropositionTrace(t *testing.T) {
	d, pts, err := Mine([]*trace.Functional{fig3Trace()}, fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	pt := pts[0]
	ids := pt.IDs
	if len(ids) != 8 {
		t.Fatalf("proposition trace length %d", len(ids))
	}
	pa, pb, pc, pd := ids[0], ids[3], ids[6], ids[7]
	wantPattern := []int{pa, pa, pa, pb, pb, pb, pc, pd}
	for i, want := range wantPattern {
		if ids[i] != want {
			t.Errorf("instant %d: proposition %d, want %d", i, ids[i], want)
		}
	}
	distinct := map[int]bool{pa: true, pb: true, pc: true, pd: true}
	if len(distinct) != 4 {
		t.Errorf("expected 4 distinct propositions, got %d (%v)", len(distinct), ids)
	}

	// p_a must be the paper's v1=true & v2=false & v3>v4.
	s := d.PropString(pa)
	for _, atom := range []string{"v1=true", "v2=false", "v3>v4"} {
		if !strings.Contains(s, atom) {
			t.Errorf("p_a = %q missing %q", s, atom)
		}
	}
	// p_b: v1=false & v2=true & v3=v4.
	s = d.PropString(pb)
	for _, atom := range []string{"v1=false", "v2=true", "v3=v4"} {
		if !strings.Contains(s, atom) {
			t.Errorf("p_b = %q missing %q", s, atom)
		}
	}
	// p_d: v1=true & v2=true & v3>v4.
	s = d.PropString(pd)
	for _, atom := range []string{"v1=true", "v2=true", "v3>v4"} {
		if !strings.Contains(s, atom) {
			t.Errorf("p_d = %q missing %q", s, atom)
		}
	}
}

func TestExactlyOnePropositionPerInstant(t *testing.T) {
	// By construction every training instant maps to exactly one
	// proposition; re-evaluating the rows must reproduce the trace.
	ft := fig3Trace()
	d, pts, err := Mine([]*trace.Functional{ft}, fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < ft.Len(); tt++ {
		if got := d.EvalRow(ft.Row(tt)); got != pts[0].IDs[tt] {
			t.Errorf("instant %d: EvalRow = %d, trace has %d", tt, got, pts[0].IDs[tt])
		}
	}
}

func TestEvalRowUnknown(t *testing.T) {
	d, _, err := Mine([]*trace.Functional{fig3Trace()}, fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	// v1=false & v2=false never occurs in training.
	row := []logic.Vector{
		logic.FromUint64(1, 0), logic.FromUint64(1, 0),
		logic.FromUint64(4, 1), logic.FromUint64(4, 2),
	}
	if got := d.EvalRow(row); got != Unknown {
		t.Errorf("unseen valuation mapped to proposition %d", got)
	}
	if d.PropString(Unknown) != "<unknown>" {
		t.Error("Unknown should render as <unknown>")
	}
}

func TestStabilityFilterDropsFlickeringAtoms(t *testing.T) {
	// A wide signal that alternates every instant produces comparison
	// atoms with run length ~1; they must be dropped while the stable
	// control bit survives.
	f := trace.NewFunctional([]trace.Signal{
		{Name: "mode", Width: 1}, {Name: "d0", Width: 8}, {Name: "d1", Width: 8},
	})
	for i := 0; i < 100; i++ {
		var a, b uint64 = 10, 20
		if i%2 == 1 {
			a, b = 20, 10
		}
		mode := uint64(0)
		if i >= 50 {
			mode = 1
		}
		f.Append([]logic.Vector{
			logic.FromUint64(1, mode), logic.FromUint64(8, a), logic.FromUint64(8, b),
		})
	}
	d, _, err := Mine([]*trace.Functional{f}, Config{MinSupport: 0.05, MinRunLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Atoms {
		if a.Kind == AtomLT || a.Kind == AtomGT {
			t.Errorf("flickering atom %s survived", a.String(d.Signals))
		}
	}
	// mode polarity atoms survive
	foundMode := false
	for _, a := range d.Atoms {
		if a.Kind == AtomTrue && d.Signals[a.A].Name == "mode" {
			foundMode = true
		}
	}
	if !foundMode {
		t.Error("mode=true atom was dropped")
	}
	if d.NumProps() != 2 {
		t.Errorf("NumProps = %d, want 2 (mode on/off)", d.NumProps())
	}
}

func TestSupportFilter(t *testing.T) {
	// A wide atom that holds on a tiny fraction of instants is dropped.
	f := trace.NewFunctional([]trace.Signal{{Name: "x", Width: 8}})
	for i := 0; i < 1000; i++ {
		v := uint64(5)
		if i == 500 {
			v = 0 // x=0 holds exactly once
		}
		f.Append([]logic.Vector{logic.FromUint64(8, v)})
	}
	d, _, err := Mine([]*trace.Functional{f}, Config{MinSupport: 0.05, MinRunLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Atoms {
		if a.Kind == AtomZero {
			t.Error("rare x=0 atom survived the support filter")
		}
	}
}

func TestNeverTrueAtomsDropped(t *testing.T) {
	f := trace.NewFunctional([]trace.Signal{{Name: "x", Width: 1}})
	for i := 0; i < 10; i++ {
		f.Append([]logic.Vector{logic.FromUint64(1, 1)})
	}
	d, _, err := Mine([]*trace.Functional{f}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Atoms {
		if a.Kind == AtomFalse {
			t.Error("x=false never holds but survived")
		}
	}
}

func TestMineMultipleTracesShareDictionary(t *testing.T) {
	f1 := fig3Trace()
	f2 := fig3Trace()
	d, pts, err := Mine([]*trace.Functional{f1, f2}, fig3Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d proposition traces", len(pts))
	}
	for i := range pts[0].IDs {
		if pts[0].IDs[i] != pts[1].IDs[i] {
			t.Errorf("identical traces mapped differently at %d", i)
		}
	}
	if d.NumProps() != 4 {
		t.Errorf("NumProps = %d", d.NumProps())
	}
}

func TestMineErrors(t *testing.T) {
	if _, _, err := Mine(nil, DefaultConfig()); err == nil {
		t.Error("empty trace set accepted")
	}
	a := fig3Trace()
	b := trace.NewFunctional([]trace.Signal{{Name: "z", Width: 1}})
	b.Append([]logic.Vector{logic.FromUint64(1, 0)})
	if _, _, err := Mine([]*trace.Functional{a, b}, DefaultConfig()); err == nil {
		t.Error("mismatched schemas accepted")
	}
	empty := trace.NewFunctional([]trace.Signal{{Name: "z", Width: 1}})
	if _, _, err := Mine([]*trace.Functional{empty}, DefaultConfig()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestAtomEvalKinds(t *testing.T) {
	row := []logic.Vector{
		logic.FromUint64(1, 1),
		logic.FromUint64(8, 0),
		logic.FromUint64(8, 7),
		logic.FromUint64(8, 7),
	}
	cases := []struct {
		atom Atom
		want bool
	}{
		{Atom{Kind: AtomTrue, A: 0}, true},
		{Atom{Kind: AtomFalse, A: 0}, false},
		{Atom{Kind: AtomZero, A: 1}, true},
		{Atom{Kind: AtomNonZero, A: 1}, false},
		{Atom{Kind: AtomLT, A: 1, B: 2}, true},
		{Atom{Kind: AtomEQ, A: 2, B: 3}, true},
		{Atom{Kind: AtomGT, A: 2, B: 1}, true},
		{Atom{Kind: AtomGT, A: 1, B: 2}, false},
	}
	for _, c := range cases {
		if got := c.atom.Eval(row); got != c.want {
			t.Errorf("%+v.Eval = %v", c.atom, got)
		}
	}
}

func TestAtomStrings(t *testing.T) {
	sigs := []trace.Signal{{Name: "a", Width: 1}, {Name: "x", Width: 8}, {Name: "y", Width: 8}}
	cases := map[string]Atom{
		"a=true":  {Kind: AtomTrue, A: 0},
		"a=false": {Kind: AtomFalse, A: 0},
		"x=0":     {Kind: AtomZero, A: 1},
		"x!=0":    {Kind: AtomNonZero, A: 1},
		"x<y":     {Kind: AtomLT, A: 1, B: 2},
		"x=y":     {Kind: AtomEQ, A: 1, B: 2},
		"x>y":     {Kind: AtomGT, A: 1, B: 2},
	}
	for want, atom := range cases {
		if got := atom.String(sigs); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestEmptyConjunctionRendersTrue(t *testing.T) {
	// Craft a dictionary where some instant satisfies no kept atom: a
	// constant-false-polarity signal... easiest is a direct call.
	d := &Dictionary{
		Signals: []trace.Signal{{Name: "a", Width: 1}},
		Atoms:   []Atom{{Kind: AtomTrue, A: 0}},
		index:   map[uint64]int{},
	}
	id := d.intern(0)
	if got := d.PropString(id); got != "true" {
		t.Errorf("empty conjunction = %q", got)
	}
}
