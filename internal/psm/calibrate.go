package psm

import (
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// CalibrationPolicy controls the data-dependent state calibration of
// Section IV.
type CalibrationPolicy struct {
	// MaxCV is the "too high standard deviation" gate: states whose
	// coefficient of variation σ/μ exceeds it are candidates for the
	// Hamming-distance regression.
	MaxCV float64
	// MinR is the "strong linear correlation" gate: the regression
	// replaces the constant mean only when |Pearson r| between the per-
	// instant input Hamming distance and the power is at least MinR.
	MinR float64
}

// DefaultCalibrationPolicy returns the thresholds used in the
// reproduction.
func DefaultCalibrationPolicy() CalibrationPolicy {
	return CalibrationPolicy{MaxCV: 0.15, MinR: 0.7}
}

// Calibrate applies the linear-regression refinement to the model's
// data-dependent states. For every state whose power spread is too high
// it collects, over all supporting intervals, the pairs
//
//	x = Hamming distance between the primary-input valuations at t and t-1
//	y = reference power at t
//
// and, when the correlation is strong, replaces the state's constant μ
// with the fitted line.
//
// fts and pws are the training functional and power traces (indexed as in
// the states' Intervals); inputCols are the functional-trace columns of
// the primary inputs. It returns the number of states calibrated.
func Calibrate(m *Model, fts []*trace.Functional, pws []*trace.Power, inputCols []int, policy CalibrationPolicy) int {
	// Per-trace input Hamming distances, computed lazily.
	hdCache := make([][]float64, len(fts))
	powers := make([][]float64, len(pws))
	for i, pw := range pws {
		powers[i] = pw.Values
	}
	hd := func(ti int) []float64 {
		if hdCache[ti] == nil {
			hdCache[ti] = fts[ti].InputHammingDistance(inputCols)
		}
		return hdCache[ti]
	}
	return calibrateSeries(m, len(fts), hd, powers, policy)
}

// CalibrateSeries is Calibrate over precomputed per-trace series: hds[i]
// is trace i's per-instant primary-input Hamming distance (exactly
// trace.Functional.InputHammingDistance — 0 at instant 0) and powers[i]
// its per-instant reference power. The streaming engine accumulates both
// series record by record, having long discarded the raw valuations, and
// still calibrates exactly like the batch flow.
func CalibrateSeries(m *Model, hds, powers [][]float64, policy CalibrationPolicy) int {
	return calibrateSeries(m, len(hds), func(ti int) []float64 { return hds[ti] }, powers, policy)
}

func calibrateSeries(m *Model, numTraces int, hd func(int) []float64, powers [][]float64, policy CalibrationPolicy) int {
	calibrated := 0
	for _, s := range m.States {
		if s.Power.N < 3 || s.Power.CoefficientOfVariation() <= policy.MaxCV {
			continue
		}
		var xs, ys []float64
		for _, iv := range s.Intervals {
			if iv.Trace < 0 || iv.Trace >= numTraces {
				continue
			}
			dists := hd(iv.Trace)
			pw := powers[iv.Trace]
			for t := iv.Start; t <= iv.Stop && t < len(dists) && t < len(pw); t++ {
				xs = append(xs, dists[t])
				ys = append(ys, pw[t])
			}
		}
		if len(xs) < 3 {
			continue
		}
		fit, err := stats.LinearRegression(xs, ys)
		if err != nil {
			continue
		}
		if abs(fit.R) >= policy.MinR {
			f := fit
			s.Fit = &f
			calibrated++
		}
	}
	return calibrated
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
