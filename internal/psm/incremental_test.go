package psm

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"psmkit/internal/stats"
)

// randMergeModel builds a pooled model whose power summaries cluster
// around a few levels, so the join's phases make many real merge
// decisions across all three policy cases (n=1 next-states, pooled
// until-states, mixed).
func randMergeModel(rng *rand.Rand) *Model {
	levels := []float64{1.0, 1.03, 1.3, 2.0, 2.08, 3.5}
	n := 20 + rng.Intn(40)
	m := &Model{Initials: map[int]int{}}
	for i := 0; i < n; i++ {
		mu := levels[rng.Intn(len(levels))]
		var vals []float64
		switch rng.Intn(3) {
		case 0: // next-state: single sample
			vals = []float64{mu + 0.01*rng.NormFloat64()}
		case 1: // small until-state
			for k := 0; k < 2+rng.Intn(4); k++ {
				vals = append(vals, mu+0.02*rng.NormFloat64())
			}
		default: // heavy until-state
			for k := 0; k < 30+rng.Intn(40); k++ {
				vals = append(vals, mu+0.02*rng.NormFloat64())
			}
		}
		m.States = append(m.States, &State{
			ID: i,
			Alts: []Alt{{
				Seq:   Sequence{Phases: []Phase{{Prop: rng.Intn(6), Kind: PatternKind(rng.Intn(2))}}},
				Count: 1 + rng.Intn(2),
			}},
			Power:     stats.MomentsOf(vals),
			Intervals: []Interval{{Trace: rng.Intn(4), Start: i * 10, Stop: i*10 + len(vals) - 1}},
		})
		if i > 0 {
			m.Transitions = append(m.Transitions, Transition{
				From: rng.Intn(i), To: i, Enabling: rng.Intn(6), Count: 1 + rng.Intn(3),
			})
		}
	}
	for k := 0; k < 1+rng.Intn(3); k++ {
		m.Initials[rng.Intn(n)]++
	}
	return m
}

// joinReference runs the pre-worklist engine — unmemoized restart-scan
// fixpoint — as the differential oracle.
func joinReference(m *Model, policy MergePolicy) *Model {
	mg := plainMerger(policy, phaseJoin, -1)
	mg.memo = nil
	mg.forceScan = true
	return joinPooledWith(mg, m)
}

// TestWorklistMatchesReference is the engine-equivalence property: for
// seeded random mergeable-heavy pools, the worklist fixpoint must
// produce a model deeply identical to the historical restart scan —
// same states in the same order with bit-identical pooled moments, same
// transitions, same initials.
func TestWorklistMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randMergeModel(rng)
		ref := joinReference(CloneModel(m), DefaultMergePolicy())
		got := JoinPooled(CloneModel(m), DefaultMergePolicy())
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("seed %d: worklist join diverges from the reference scan\nref:  %d states %d transitions\ngot:  %d states %d transitions",
				seed, len(ref.States), len(ref.Transitions), len(got.States), len(got.Transitions))
		}
	}
}

// TestWorklistMatchesReferenceTightPolicies re-runs the differential
// property under policies that exercise the CV guard and a hair-trigger
// epsilon, where accept/reject flips are most order-sensitive.
func TestWorklistMatchesReferenceTightPolicies(t *testing.T) {
	policies := []MergePolicy{
		{Epsilon: 0.2, Alpha: 0.05, EquivalenceMargin: 0.15, MaxCV: 0.1},
		{Epsilon: 0.01, Alpha: 0.5, EquivalenceMargin: 0.005, MaxCV: 0},
	}
	for _, pol := range policies {
		for seed := int64(100); seed < 120; seed++ {
			rng := rand.New(rand.NewSource(seed))
			m := randMergeModel(rng)
			ref := joinReference(CloneModel(m), pol)
			got := JoinPooled(CloneModel(m), pol)
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("seed %d policy %+v: worklist join diverges from the reference scan", seed, pol)
			}
		}
	}
}

// TestJoinPooledIdempotent: joining an already-joined model must be the
// identity — the fixpoint certified no pair merges, so a second pass
// has nothing to do (and must not perturb order, counts or moments).
func TestJoinPooledIdempotent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		once := JoinPooled(randMergeModel(rng), DefaultMergePolicy())
		twice := JoinPooled(CloneModel(once), DefaultMergePolicy())
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("seed %d: JoinPooled is not idempotent", seed)
		}
	}
}

// TestFindAliasDeepChain pins the union-find on a 5-deep alias cascade:
// every node resolves to the root, and the walked chain is fully
// compressed afterwards (each node points directly at the root).
func TestFindAliasDeepChain(t *testing.T) {
	alias := map[int]int{5: 4, 4: 3, 3: 2, 2: 1, 1: 0}
	if got := findAlias(alias, 5); got != 0 {
		t.Fatalf("findAlias(5) = %d, want 0", got)
	}
	for id := 1; id <= 5; id++ {
		if alias[id] != 0 {
			t.Fatalf("path not compressed: alias[%d] = %d, want 0", id, alias[id])
		}
	}
	if got := findAlias(alias, 7); got != 7 {
		t.Fatalf("findAlias of an unaliased id = %d, want 7", got)
	}
}

// TestCollapseCascadeResolvesTransitions drives collapse through a
// 4-deep merge cascade (4←3, 3←2, 2←1, 1←0 by id) and requires
// resolveTransitions to chase every endpoint to the sole survivor and
// aggregate the parallel edges it creates.
func TestCollapseCascadeResolvesTransitions(t *testing.T) {
	m := &Model{Initials: map[int]int{0: 1, 4: 2}}
	for i := 0; i < 5; i++ {
		m.States = append(m.States, &State{
			ID:        i,
			Alts:      []Alt{{Seq: Sequence{Phases: []Phase{{Prop: i, Kind: Until}}}, Count: 1}},
			Power:     stats.MomentsOf([]float64{1, 1}),
			Intervals: []Interval{{Trace: 0, Start: i, Stop: i}},
		})
	}
	for i := 0; i < 4; i++ {
		// One shared enabling prop, so the post-cascade self-loops are
		// parallel edges that must aggregate into a single transition.
		m.Transitions = append(m.Transitions, Transition{From: i, To: i + 1, Enabling: 9, Count: 1})
	}
	alias := map[int]int{}
	// Collapse back to front so each survivor is itself merged next:
	// alias chains 4→3→2→1→0 (depth 4).
	for id := 4; id >= 1; id-- {
		bi := -1
		for i, s := range m.States {
			if s.ID == id {
				bi = i
			}
		}
		collapse(m, alias, 0, bi)
	}
	if len(m.States) != 1 || m.States[0].ID != 0 {
		t.Fatalf("cascade left %d states (first id %d), want the single root 0",
			len(m.States), m.States[0].ID)
	}
	resolveTransitions(m, alias)
	if len(m.Transitions) != 1 {
		t.Fatalf("resolved transitions: %+v, want one aggregated self-loop", m.Transitions)
	}
	tr := m.Transitions[0]
	if tr.From != 0 || tr.To != 0 || tr.Count != 4 {
		t.Fatalf("aggregated transition %+v, want 0→0 with count 4", tr)
	}
	if m.Initials[0] != 3 {
		t.Fatalf("initials %v, want all 3 on the root", m.Initials)
	}
	if got := m.States[0].Power.N; got != 10 {
		t.Fatalf("pooled evidence n = %d, want 10", got)
	}
}

// randChains builds simplified-shaped chains (single-alt states, one
// initial per chain) for the Joiner equivalence property.
func randChains(rng *rand.Rand) []*Chain {
	levels := []float64{1.0, 1.04, 1.9, 2.0}
	nChains := 1 + rng.Intn(5)
	chains := make([]*Chain, nChains)
	for ci := range chains {
		n := 2 + rng.Intn(8)
		c := &Chain{Trace: ci}
		for i := 0; i < n; i++ {
			mu := levels[rng.Intn(len(levels))]
			var vals []float64
			for k := 0; k < 1+rng.Intn(20); k++ {
				vals = append(vals, mu+0.02*rng.NormFloat64())
			}
			c.States = append(c.States, &State{
				ID: i,
				Alts: []Alt{{
					Seq:   Sequence{Phases: []Phase{{Prop: rng.Intn(5), Kind: PatternKind(rng.Intn(2))}}},
					Count: 1,
				}},
				Power:     stats.MomentsOf(vals),
				Intervals: []Interval{{Trace: ci, Start: i * 5, Stop: i*5 + len(vals) - 1}},
			})
		}
		chains[ci] = c
	}
	return chains
}

// TestJoinerMatchesJoin is the streaming-fold equivalence property: for
// seeded random chain sets, folding chain by chain through a Joiner and
// snapshotting after every prefix must deeply equal the batch Join over
// that prefix — including intermediate snapshots, which is exactly what
// psmd serves between session completions.
func TestJoinerMatchesJoin(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		chains := randChains(rng)
		j := NewJoiner(DefaultMergePolicy())
		for k, c := range chains {
			j.Add(ctx, c)
			got := j.Snapshot(ctx)
			want := Join(chains[:k+1], DefaultMergePolicy())
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("seed %d prefix %d: joiner snapshot diverges from batch join (%d vs %d states)",
					seed, k+1, len(got.States), len(want.States))
			}
		}
	}
}

// TestJoinerSnapshotDoesNotMutateFold: snapshots collapse a clone, so
// consecutive snapshots with no Add in between must be deeply equal,
// and a snapshot must not corrupt a later incremental fold.
func TestJoinerSnapshotDoesNotMutateFold(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	chains := randChains(rng)
	j := NewJoiner(DefaultMergePolicy())
	for _, c := range chains[:len(chains)-1] {
		j.Add(ctx, c)
	}
	a := j.Snapshot(ctx)
	b := j.Snapshot(ctx)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("back-to-back joiner snapshots differ: the collapse mutated the fold")
	}
	j.Add(ctx, chains[len(chains)-1])
	got := j.Snapshot(ctx)
	want := Join(chains, DefaultMergePolicy())
	if !reflect.DeepEqual(want, got) {
		t.Fatal("fold after an interleaved snapshot diverges from batch join")
	}
}

// TestJoinerResetReuseAcrossEpochs is the reuse-across-epochs
// regression test: Reset must void the fold, the verdict memo and its
// eval/hit accounting atomically, leaving the joiner indistinguishable
// from a fresh NewJoiner — the second epoch's model and its memo
// counters must both equal a fresh joiner's over the same chains.
func TestJoinerResetReuseAcrossEpochs(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	epoch1 := randChains(rng)
	epoch2 := randChains(rng)

	j := NewJoiner(DefaultMergePolicy())
	for _, c := range epoch1 {
		j.Add(ctx, c)
	}
	j.Snapshot(ctx)
	if j.Memo().Evals() == 0 || j.Memo().Len() == 0 {
		t.Fatalf("memo unused by the fold: %d evals, %d entries", j.Memo().Evals(), j.Memo().Len())
	}

	j.Reset()
	if j.Pooled() != 0 {
		t.Fatalf("reset left %d pooled states", j.Pooled())
	}
	if n := j.Memo().Len(); n != 0 {
		t.Fatalf("reset kept %d memoized verdicts, want 0", n)
	}
	if e, h := j.Memo().Evals(), j.Memo().Hits(); e != 0 || h != 0 {
		t.Fatalf("reset kept memo accounting: %d evals, %d hits, want 0/0", e, h)
	}

	// Epoch 2 on the reused joiner vs a fresh one: identical model,
	// identical memo accounting — nothing of epoch 1 may leak through.
	fresh := NewJoiner(DefaultMergePolicy())
	for _, c := range epoch2 {
		j.Add(ctx, c)
		fresh.Add(ctx, c)
	}
	got, want := j.Snapshot(ctx), fresh.Snapshot(ctx)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("reused joiner diverges from a fresh joiner after Reset")
	}
	if batch := Join(epoch2, DefaultMergePolicy()); !reflect.DeepEqual(batch, got) {
		t.Fatal("post-reset re-fold diverges from batch join")
	}
	if j.Memo().Evals() != fresh.Memo().Evals() || j.Memo().Hits() != fresh.Memo().Hits() ||
		j.Memo().Len() != fresh.Memo().Len() {
		t.Fatalf("reused joiner's memo accounting differs from fresh: %d/%d/%d vs %d/%d/%d",
			j.Memo().Evals(), j.Memo().Hits(), j.Memo().Len(),
			fresh.Memo().Evals(), fresh.Memo().Hits(), fresh.Memo().Len())
	}
}

// TestEvalMemo pins the memo's accounting: first sight computes, repeat
// sight hits, and the ordered key distinguishes (a,b) from (b,a).
func TestEvalMemo(t *testing.T) {
	mo := NewEvalMemo(DefaultMergePolicy())
	a := stats.MomentsOf([]float64{1, 1.01, 0.99})
	b := stats.MomentsOf([]float64{2, 2.02})
	out := mo.Evaluate(a, b)
	if mo.Evals() != 1 || mo.Hits() != 0 {
		t.Fatalf("first evaluate: %d evals %d hits, want 1/0", mo.Evals(), mo.Hits())
	}
	if again := mo.Evaluate(a, b); again != out {
		t.Fatalf("memoized verdict differs: %+v vs %+v", again, out)
	}
	if mo.Evals() != 1 || mo.Hits() != 1 {
		t.Fatalf("repeat evaluate: %d evals %d hits, want 1/1", mo.Evals(), mo.Hits())
	}
	if mo.Evaluate(b, a) != DefaultMergePolicy().Evaluate(b, a) {
		t.Fatal("swapped operand order must be keyed separately")
	}
	if mo.Evals() != 2 {
		t.Fatalf("swapped order was served from cache: %d evals, want 2", mo.Evals())
	}
	if got := mo.Policy(); got != DefaultMergePolicy() {
		t.Fatalf("memo policy %+v, want the default", got)
	}
}

// TestEvalMemoLimit: at the entry bound the memo resets wholesale and
// keeps serving exact verdicts.
func TestEvalMemoLimit(t *testing.T) {
	mo := NewEvalMemo(DefaultMergePolicy())
	mo.SetLimit(4)
	ref := stats.MomentsOf([]float64{1, 1})
	for i := 0; i < 10; i++ {
		mo.Evaluate(ref, stats.MomentsOf([]float64{float64(i + 2), float64(i + 2)}))
	}
	if mo.Len() > 4 {
		t.Fatalf("memo holds %d entries beyond the limit 4", mo.Len())
	}
	if mo.Evals() != 10 {
		t.Fatalf("%d evals for 10 distinct pairs, want 10", mo.Evals())
	}
	out := mo.Evaluate(ref, ref)
	if !out.Accept {
		t.Fatal("identical moments must merge after a reset")
	}
	mo.SetLimit(0)
	if mo.limit != defaultMemoEntries {
		t.Fatalf("SetLimit(0) left limit %d, want the default", mo.limit)
	}
}
