package psm

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// sortedStates returns the states ordered by id and sortedTransitions the
// transitions ordered by (from, to, enabling). Both exports emit in this
// canonical order so repeated runs — and runs across join-order changes —
// diff cleanly (psmlint golden tests depend on it).
func (m *Model) sortedStates() []*State {
	states := append([]*State(nil), m.States...)
	sort.SliceStable(states, func(i, j int) bool { return states[i].ID < states[j].ID })
	return states
}

func (m *Model) sortedTransitions() []Transition {
	ts := append([]Transition(nil), m.Transitions...)
	sort.SliceStable(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Enabling < b.Enabling
	})
	return ts
}

// WriteDOT renders the model as a Graphviz digraph: states labelled with
// their assertions and power attributes, edges with their enabling
// propositions. Emission order is canonical (see sortedStates).
func (m *Model) WriteDOT(w io.Writer, name string) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	for _, s := range m.sortedStates() {
		var alts []string
		for _, a := range s.Alts {
			alts = append(alts, a.Seq.String(m.Dict))
		}
		shape := ""
		if m.Initials[s.ID] > 0 {
			shape = ", peripheries=2"
		}
		fit := ""
		if s.Fit != nil {
			fit = fmt.Sprintf("\\npower = %.3e + %.3e*HD (r=%.2f)", s.Fit.Intercept, s.Fit.Slope, s.Fit.R)
		}
		fmt.Fprintf(&sb, "  s%d [label=\"s%d: %s\\nμ=%.3e σ=%.3e n=%d%s\"%s];\n",
			s.ID, s.ID, strings.Join(alts, " || "), s.Power.Mean(), s.Power.StdDev(), s.Power.N, fit, shape)
	}
	for _, t := range m.sortedTransitions() {
		fmt.Fprintf(&sb, "  s%d -> s%d [label=\"%s (x%d)\"];\n",
			t.From, t.To, m.Dict.PropString(t.Enabling), t.Count)
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// jsonModel is the serialized form of a Model.
type jsonModel struct {
	States      []jsonState      `json:"states"`
	Transitions []jsonTransition `json:"transitions"`
	Initials    map[string]int   `json:"initials"`
}

type jsonState struct {
	ID         int      `json:"id"`
	Assertions []string `json:"assertions"`
	Mu         float64  `json:"mu"`
	Sigma      float64  `json:"sigma"`
	N          int      `json:"n"`
	Fit        *jsonFit `json:"fit,omitempty"`
	Intervals  [][3]int `json:"intervals"`
}

type jsonFit struct {
	Slope     float64 `json:"slope"`
	Intercept float64 `json:"intercept"`
	R         float64 `json:"r"`
}

type jsonTransition struct {
	From     int    `json:"from"`
	To       int    `json:"to"`
	Enabling string `json:"enabling"`
	Count    int    `json:"count"`
}

// WriteJSON serializes a human-readable summary of the model (state
// assertions rendered as text; intended for reports and inspection, not
// for lossless round-tripping). States and transitions are emitted in
// canonical sorted order so repeated runs diff cleanly.
func (m *Model) WriteJSON(w io.Writer) error {
	jm := jsonModel{Initials: map[string]int{}}
	for _, s := range m.sortedStates() {
		js := jsonState{
			ID:    s.ID,
			Mu:    s.Power.Mean(),
			Sigma: s.Power.StdDev(),
			N:     s.Power.N,
		}
		for _, a := range s.Alts {
			js.Assertions = append(js.Assertions, a.Seq.String(m.Dict))
		}
		for _, iv := range s.Intervals {
			js.Intervals = append(js.Intervals, [3]int{iv.Trace, iv.Start, iv.Stop})
		}
		if s.Fit != nil {
			js.Fit = &jsonFit{Slope: s.Fit.Slope, Intercept: s.Fit.Intercept, R: s.Fit.R}
		}
		jm.States = append(jm.States, js)
	}
	for _, t := range m.sortedTransitions() {
		jm.Transitions = append(jm.Transitions, jsonTransition{
			From: t.From, To: t.To, Enabling: m.Dict.PropString(t.Enabling), Count: t.Count,
		})
	}
	ids := make([]int, 0, len(m.Initials))
	for id := range m.Initials {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		jm.Initials[fmt.Sprintf("s%d", id)] = m.Initials[id]
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jm)
}
