package psm

import (
	"context"

	"psmkit/internal/mining"
	"psmkit/internal/obs"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// Phase labels of the provenance log: where a mergeability comparison
// ran.
const (
	phaseSimplify = "simplify"
	phaseJoin     = "join"
)

// merger bundles a MergePolicy with the observation sinks of one merge
// pass: the provenance log the decisions are recorded into and the
// per-case merge counters. A merger without sinks (plainMerger, or a
// context carrying neither) decides through the policy's plain boolean
// path — the instrumented and uninstrumented passes share one decision
// implementation (MergePolicy.Evaluate), so observing a run cannot
// change its model.
type merger struct {
	policy MergePolicy
	phase  string
	trace  int
	// memo caches Evaluate verdicts by moments pair; nil forces every
	// check to recompute (the unmemoized reference configuration the
	// benchmarks compare against).
	memo *EvalMemo
	// forceScan pins the canonical restart-scan fixpoint even without a
	// provenance log (JoinPooledReferenceCtx — the old engine, kept as
	// the benchmark baseline and differential-test oracle).
	forceScan bool
	prov      *obs.ProvenanceLog
	checks    *obs.Counter    // one tick per mergeability probe
	evals     *obs.Counter    // one tick per real Evaluate computation (memo miss)
	cases     [4]*obs.Counter // indexed by MergeOutcome.Case, 1..3; ticks per collapse
}

// plainMerger is the sink-free merger of the non-context entry points.
// Even without observation sinks it memoizes verdicts: the restart scans
// of Simplify and the join fixpoint re-examine unchanged pairs
// constantly, and a memoized verdict is exact (see EvalMemo).
func plainMerger(policy MergePolicy, phase string, traceIdx int) merger {
	return merger{policy: policy, phase: phase, trace: traceIdx, memo: NewEvalMemo(policy)}
}

// newMerger attaches the context's provenance log and registry, if any.
func newMerger(ctx context.Context, policy MergePolicy, phase string, traceIdx int) merger {
	mg := plainMerger(policy, phase, traceIdx)
	mg.prov = obs.ProvenanceFrom(ctx)
	if reg := obs.RegistryFrom(ctx); reg != nil {
		mg.checks = reg.Counter("psm_merge_checks_total")
		mg.evals = reg.Counter("psm_merge_evals_total")
		mg.cases[1] = reg.Counter("psm_merges_case1_total")
		mg.cases[2] = reg.Counter("psm_merges_case2_total")
		mg.cases[3] = reg.Counter("psm_merges_case3_total")
	}
	return mg
}

// evaluate computes (or recalls) the verdict for the ordered pair of
// power summaries, ticking the evals counter only on real computations.
func (mg *merger) evaluate(a, b stats.Moments) MergeOutcome {
	if mg.memo == nil {
		mg.evals.Inc()
		return mg.policy.Evaluate(a, b)
	}
	before := mg.memo.Evals()
	out := mg.memo.Evaluate(a, b)
	if mg.memo.Evals() != before {
		mg.evals.Inc()
	}
	return out
}

// decide is the worklist engine's probe: a counted, memoized verdict
// with no per-case accounting — the worklist enqueues accepting pairs
// speculatively and only pairs that actually collapse count as merges
// (countMerge), keeping the psm_merges_case* counters identical to the
// reference engine's, where every accept is immediately a collapse.
// The worklist runs only when no provenance log is attached, so decide
// records nothing.
func (mg *merger) decide(a, b *State) MergeOutcome {
	out := mg.evaluate(a.Power, b.Power)
	mg.checks.Inc()
	return out
}

// countMerge ticks the per-case merge counter for one actual collapse.
func (mg *merger) countMerge(cse int) {
	if cse >= 1 && cse <= 3 {
		mg.cases[cse].Inc()
	}
}

// mergeable decides whether two states' power attributes merge,
// recording the decision when a sink is attached. In the scan engines
// every accepted probe collapses immediately, so per-case counters tick
// here on accept.
func (mg *merger) mergeable(a, b *State) bool {
	if mg.prov == nil && mg.checks == nil {
		if mg.memo == nil {
			return mg.policy.Mergeable(a.Power, b.Power)
		}
		return mg.memo.Evaluate(a.Power, b.Power).Accept
	}
	out := mg.evaluate(a.Power, b.Power)
	mg.checks.Inc()
	if out.Accept {
		mg.countMerge(out.Case)
	}
	mg.prov.Record(obs.MergeDecision{
		Phase:     mg.phase,
		Trace:     mg.trace,
		A:         momentsRecord(a.ID, a.Power),
		B:         momentsRecord(b.ID, b.Power),
		Case:      out.Case,
		Test:      out.Test,
		Stat:      out.Stat,
		Threshold: out.Threshold,
		T:         out.T,
		Accept:    out.Accept,
	})
	return out.Accept
}

func momentsRecord(id int, m stats.Moments) obs.MomentsRecord {
	return obs.MomentsRecord{State: id, N: m.N, Sum: m.Sum, SumSq: m.SumSq, Mean: m.Mean(), Std: m.StdDev()}
}

// GenerateCtx is Generate under a "generate" span.
func GenerateCtx(ctx context.Context, dict *mining.Dictionary, pt *mining.PropTrace, pw *trace.Power, traceIdx int) (*Chain, error) {
	_, span := obs.Start(ctx, "generate", obs.KV("trace", traceIdx))
	c, err := Generate(dict, pt, pw, traceIdx)
	if c != nil {
		span.SetAttr("states", len(c.States))
	}
	span.End()
	return c, err
}

// SimplifyCtx is Simplify under a "simplify" span, with the context's
// provenance log and merge counters attached. The produced chain is
// identical to Simplify's for any context.
func SimplifyCtx(ctx context.Context, c *Chain, policy MergePolicy) *Chain {
	_, span := obs.Start(ctx, "simplify", obs.KV("trace", c.Trace), obs.KV("states_in", len(c.States)))
	out := simplifyWith(newMerger(ctx, policy, phaseSimplify, c.Trace), c)
	span.SetAttr("states_out", len(out.States))
	span.End()
	return out
}

// JoinPooledCtx is JoinPooled under a "collapse" span, with the
// context's provenance log and merge counters attached. The produced
// model is identical to JoinPooled's for any context.
func JoinPooledCtx(ctx context.Context, m *Model, policy MergePolicy) *Model {
	_, span := obs.Start(ctx, "collapse", obs.KV("states_in", len(m.States)))
	out := joinPooledWith(newMerger(ctx, policy, phaseJoin, -1), m)
	span.SetAttr("states_out", len(out.States))
	span.End()
	return out
}

// JoinPooledMemoCtx is JoinPooledCtx with a caller-owned verdict memo:
// repeated joins of a slowly-growing pool reuse verdicts across calls
// exactly as a Joiner's fold does (verdicts are pure in the moments
// pair). The merge policy is the memo's; the produced model is
// identical to JoinPooled's under that policy for any memo state. The
// cross-shard snapshot path keeps one memo across coordinator
// snapshots this way.
func JoinPooledMemoCtx(ctx context.Context, m *Model, memo *EvalMemo) *Model {
	_, span := obs.Start(ctx, "collapse", obs.KV("states_in", len(m.States)))
	mg := newMerger(ctx, memo.Policy(), phaseJoin, -1)
	mg.memo = memo
	out := joinPooledWith(mg, m)
	span.SetAttr("states_out", len(out.States))
	span.End()
	return out
}

// JoinPooledReferenceCtx is JoinPooledCtx pinned to the unmemoized
// restart-scan engine — the join exactly as shipped before the
// incremental engine landed. It exists for the differential parity
// tests and the scaling benchmarks, which need the historical baseline
// as an oracle; production callers want JoinPooledCtx.
func JoinPooledReferenceCtx(ctx context.Context, m *Model, policy MergePolicy) *Model {
	_, span := obs.Start(ctx, "collapse", obs.KV("states_in", len(m.States)))
	mg := newMerger(ctx, policy, phaseJoin, -1)
	mg.memo = nil
	mg.forceScan = true
	out := joinPooledWith(mg, m)
	span.SetAttr("states_out", len(out.States))
	span.End()
	return out
}

// CalibrateCtx is Calibrate under a "calibrate" span; the number of
// fitted states feeds the psm_calibration_fits_total counter.
func CalibrateCtx(ctx context.Context, m *Model, fts []*trace.Functional, pws []*trace.Power, inputCols []int, policy CalibrationPolicy) int {
	_, span := obs.Start(ctx, "calibrate", obs.KV("states", len(m.States)))
	n := Calibrate(m, fts, pws, inputCols, policy)
	span.SetAttr("fits", n)
	span.End()
	obs.RegistryFrom(ctx).Counter("psm_calibration_fits_total").Add(int64(n))
	return n
}
