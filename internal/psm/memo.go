package psm

import "psmkit/internal/stats"

// momentsPair is the memo key: the exact ordered pair of accumulators a
// mergeability decision was computed on. The order matters — the t
// statistic of an asymmetric test flips sign with the argument order —
// so no canonicalization is applied; the engines below always evaluate
// (earlier state, later state), which keeps the key canonical for free.
type momentsPair struct {
	a, b stats.Moments
}

// defaultMemoEntries bounds the memo of a long-running process (psmd
// folds chains forever); see EvalMemo.
const defaultMemoEntries = 1 << 20

// EvalMemo caches MergePolicy.Evaluate verdicts keyed by the canonical
// ⟨n, Σx, Σx²⟩ pairs they were computed on. Evaluate is a pure function
// of the two accumulators and the policy, so a memoized verdict is
// exact — not approximate — and one memo can be shared across Simplify,
// JoinPooled and successive streaming snapshots, as long as every user
// runs the same policy (NewEvalMemo pins it; Joiner enforces it).
//
// The restart-scan and worklist merge engines both re-examine state
// pairs whose moments have not changed since the last look; the memo
// turns every such repeat into a map hit, so the expensive Welch /
// one-sample evaluations run once per distinct evidence pair.
//
// An EvalMemo is not goroutine-safe: each merge pass (or the engine
// lock of a streaming daemon) owns it exclusively.
type EvalMemo struct {
	policy MergePolicy
	m      map[momentsPair]MergeOutcome
	limit  int
	evals  int64
	hits   int64
}

// NewEvalMemo returns an empty memo for one merge policy, bounded at
// the default entry limit.
func NewEvalMemo(policy MergePolicy) *EvalMemo {
	return &EvalMemo{
		policy: policy,
		m:      make(map[momentsPair]MergeOutcome),
		limit:  defaultMemoEntries,
	}
}

// SetLimit bounds the number of cached verdicts (≤ 0 restores the
// default). When the limit is reached the memo resets wholesale — the
// amortized win survives, the memory bound is hard.
func (mo *EvalMemo) SetLimit(n int) {
	if n <= 0 {
		n = defaultMemoEntries
	}
	mo.limit = n
}

// Policy returns the merge policy the memo's verdicts were computed
// under.
func (mo *EvalMemo) Policy() MergePolicy { return mo.policy }

// Reset drops every cached verdict and zeroes the eval/hit accounting
// in one step; the policy and entry bound survive. Joiner.Reset calls
// it at an epoch boundary so the memo's counters always describe one
// epoch and the map's memory is released with the fold it served.
func (mo *EvalMemo) Reset() {
	mo.m = make(map[momentsPair]MergeOutcome)
	mo.evals = 0
	mo.hits = 0
}

// Evaluate returns the memoized verdict for the ordered pair ⟨a, b⟩,
// computing and caching it on first sight.
func (mo *EvalMemo) Evaluate(a, b stats.Moments) MergeOutcome {
	k := momentsPair{a, b}
	if out, ok := mo.m[k]; ok {
		mo.hits++
		return out
	}
	out := mo.policy.Evaluate(a, b)
	mo.evals++
	if len(mo.m) >= mo.limit {
		// Hard memory bound for long-running daemons: reset wholesale
		// rather than tracking recency — the hot pairs repopulate within
		// one merge pass.
		mo.m = make(map[momentsPair]MergeOutcome)
	}
	mo.m[k] = out
	return out
}

// Evals returns the number of real MergePolicy.Evaluate computations
// (memo misses) performed through this memo.
func (mo *EvalMemo) Evals() int64 { return mo.evals }

// Hits returns the number of verdicts served from the cache.
func (mo *EvalMemo) Hits() int64 { return mo.hits }

// Len returns the number of cached verdicts.
func (mo *EvalMemo) Len() int { return len(mo.m) }
