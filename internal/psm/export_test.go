package psm

import (
	"bytes"
	"math"
	"testing"

	"psmkit/internal/mining"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// scrambled returns the same model with states and transitions in a
// different in-memory order — as a join-order change would produce.
func scrambled(m *Model) *Model {
	out := &Model{Dict: m.Dict, Initials: m.Initials}
	for i := len(m.States) - 1; i >= 0; i-- {
		out.States = append(out.States, m.States[i])
	}
	for i := len(m.Transitions) - 1; i >= 0; i-- {
		out.Transitions = append(out.Transitions, m.Transitions[i])
	}
	return out
}

func exportFixture() *Model {
	dict := mining.FromSnapshot(mining.Snapshot{
		Signals: []trace.Signal{{Name: "v1", Width: 1}, {Name: "v2", Width: 1}},
		Atoms: []mining.Atom{
			{Kind: mining.AtomTrue, A: 0},
			{Kind: mining.AtomFalse, A: 0},
			{Kind: mining.AtomTrue, A: 1},
		},
		PropKeys: []uint64{1, 2, 4},
	})
	return &Model{
		Dict: dict,
		States: []*State{
			{ID: 1, Alts: []Alt{{Seq: Sequence{Phases: []Phase{{Prop: 1, Kind: Next}}}, Count: 1}},
				Power: stats.MomentsOf([]float64{2})},
			{ID: 0, Alts: []Alt{{Seq: Sequence{Phases: []Phase{{Prop: 0, Kind: Until}}}, Count: 2}},
				Power: stats.MomentsOf([]float64{1, 1.2})},
			{ID: 2, Alts: []Alt{{Seq: Sequence{Phases: []Phase{{Prop: 2, Kind: Until}}}, Count: 1}},
				Power: stats.MomentsOf([]float64{3, 3.1})},
		},
		Transitions: []Transition{
			{From: 2, To: 0, Enabling: 0, Count: 1},
			{From: 0, To: 2, Enabling: 2, Count: 1},
			{From: 0, To: 1, Enabling: 1, Count: 2},
			{From: 1, To: 0, Enabling: 0, Count: 2},
		},
		Initials: map[int]int{0: 1},
	}
}

func TestExportsAreOrderIndependent(t *testing.T) {
	a, b := exportFixture(), scrambled(exportFixture())

	var aj, bj bytes.Buffer
	if err := a.WriteJSON(&aj); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&bj); err != nil {
		t.Fatal(err)
	}
	if aj.String() != bj.String() {
		t.Errorf("WriteJSON depends on in-memory order:\n--- sorted input ---\n%s--- scrambled input ---\n%s",
			aj.String(), bj.String())
	}

	var ad, bd bytes.Buffer
	if err := a.WriteDOT(&ad, "m"); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteDOT(&bd, "m"); err != nil {
		t.Fatal(err)
	}
	if ad.String() != bd.String() {
		t.Errorf("WriteDOT depends on in-memory order:\n--- sorted input ---\n%s--- scrambled input ---\n%s",
			ad.String(), bd.String())
	}
}

func TestExportsLeaveModelUntouched(t *testing.T) {
	m := scrambled(exportFixture())
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteDOT(&buf, "m"); err != nil {
		t.Fatal(err)
	}
	// Emission sorts a copy; the caller's slices keep their order.
	if m.States[0].ID != 2 || m.Transitions[0].From != 1 {
		t.Errorf("export reordered the model in place: first state %d, first transition from %d",
			m.States[0].ID, m.Transitions[0].From)
	}
}

func TestMergeableDegenerateWelch(t *testing.T) {
	p := DefaultMergePolicy()

	// Both until-samples constant: the Welch statistic is undefined, the
	// verdict must fall back to the deterministic mean comparison.
	same := stats.MomentsOf([]float64{5, 5, 5})
	alsoSame := stats.MomentsOf([]float64{5, 5, 5, 5})
	if !p.Mergeable(same, alsoSame) {
		t.Error("two constant samples with equal means must merge")
	}
	far := stats.MomentsOf([]float64{9, 9, 9})
	if p.Mergeable(same, far) {
		t.Error("two constant samples with distant means must not merge")
	}

	// Poisoned accumulators must never merge, in either position.
	nan := stats.Moments{N: 3, Sum: math.NaN(), SumSq: 1}
	inf := stats.Moments{N: 3, Sum: 3, SumSq: math.Inf(1)}
	ok := stats.MomentsOf([]float64{1, 1.1, 0.9})
	for _, bad := range []stats.Moments{nan, inf} {
		if p.Mergeable(bad, ok) || p.Mergeable(ok, bad) {
			t.Errorf("non-finite moments %+v must never be mergeable", bad)
		}
	}
}
