package psm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/trace"
)

// randomWorld builds a random mode-driven trace (3 control bits walking
// through random segments) with segment-dependent power, mines it and
// returns the pieces the pipeline invariants are checked on.
func randomWorld(seed int64) (*mining.Dictionary, *mining.PropTrace, *trace.Power, bool) {
	rng := rand.New(rand.NewSource(seed))
	f := trace.NewFunctional([]trace.Signal{
		{Name: "m0", Width: 1}, {Name: "m1", Width: 1}, {Name: "m2", Width: 1},
	})
	var pw []float64
	segments := rng.Intn(12) + 3
	for s := 0; s < segments; s++ {
		mode := rng.Intn(8)
		length := rng.Intn(6) + 1
		level := float64(mode)*1.5 + 1 + rng.Float64()*0.05
		for i := 0; i < length; i++ {
			f.Append([]logic.Vector{
				logic.FromUint64(1, uint64(mode&1)),
				logic.FromUint64(1, uint64(mode>>1&1)),
				logic.FromUint64(1, uint64(mode>>2&1)),
			})
			pw = append(pw, level+rng.Float64()*0.02)
		}
	}
	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
	if err != nil {
		return nil, nil, nil, false
	}
	return dict, pts[0], &trace.Power{Values: pw}, true
}

// TestQuickGenerateInvariants checks the XU segmentation's structural
// guarantees on random traces: states cover a prefix of the trace with
// contiguous, non-overlapping intervals; each state's power-attribute n
// equals its interval length; until-states have n ≥ 2 and next-states
// n = 1; every transition's enabling proposition is the successor state's
// opening proposition.
func TestQuickGenerateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		dict, pt, pw, ok := randomWorld(seed)
		if !ok {
			return true
		}
		c, err := Generate(dict, pt, pw, 0)
		if err != nil {
			return true // trace too short to expose a pattern
		}
		expectedStart := 0
		for _, s := range c.States {
			iv := s.Intervals[0]
			if iv.Start != expectedStart || iv.Stop < iv.Start {
				return false
			}
			n := iv.Stop - iv.Start + 1
			if s.Power.N != n {
				return false
			}
			ph := s.Alts[0].Seq.Phases[0]
			if ph.Kind == Next && n != 1 {
				return false
			}
			if ph.Kind == Until && n < 2 {
				return false
			}
			// The proposition must hold throughout the interval.
			for t2 := iv.Start; t2 <= iv.Stop; t2++ {
				if pt.IDs[t2] != ph.Prop {
					return false
				}
			}
			expectedStart = iv.Stop + 1
		}
		for _, tr := range ChainTransitions(c) {
			if tr.Enabling != c.States[tr.To].Alts[0].Seq.Phases[0].Prop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSimplifyPreservesEvidence checks that simplify never loses or
// duplicates training evidence: the pooled instant count and power sum
// are exactly preserved, and the cascade phase count equals the number of
// merged chain states.
func TestQuickSimplifyPreservesEvidence(t *testing.T) {
	f := func(seed int64) bool {
		dict, pt, pw, ok := randomWorld(seed)
		if !ok {
			return true
		}
		c, err := Generate(dict, pt, pw, 0)
		if err != nil {
			return true
		}
		s := Simplify(c, DefaultMergePolicy())
		var nBefore, nAfter int
		var sumBefore, sumAfter float64
		phases := 0
		for _, st := range c.States {
			nBefore += st.Power.N
			sumBefore += st.Power.Sum
		}
		for _, st := range s.States {
			nAfter += st.Power.N
			sumAfter += st.Power.Sum
			phases += len(st.Alts[0].Seq.Phases)
		}
		return nBefore == nAfter &&
			almostEqual(sumBefore, sumAfter) &&
			phases == len(c.States)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinPreservesEvidence checks join across random multi-trace
// worlds: instant counts and power sums pool exactly, the initial-state
// multiplicities sum to the number of chains, and every transition
// endpoint is a live state whose first propositions include the enabling
// proposition of its incoming edges.
func TestQuickJoinPreservesEvidence(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		// Mining requires a shared dictionary across traces, so both
		// random worlds are built first and mined together.
		rngSeeds := []int64{seedA, seedB}
		var fts []*trace.Functional
		var pws []*trace.Power
		for _, sd := range rngSeeds {
			rng := rand.New(rand.NewSource(sd))
			f2 := trace.NewFunctional([]trace.Signal{
				{Name: "m0", Width: 1}, {Name: "m1", Width: 1}, {Name: "m2", Width: 1},
			})
			var pwv []float64
			segments := rng.Intn(12) + 3
			for s := 0; s < segments; s++ {
				mode := rng.Intn(8)
				length := rng.Intn(6) + 1
				level := float64(mode)*1.5 + 1
				for i := 0; i < length; i++ {
					f2.Append([]logic.Vector{
						logic.FromUint64(1, uint64(mode&1)),
						logic.FromUint64(1, uint64(mode>>1&1)),
						logic.FromUint64(1, uint64(mode>>2&1)),
					})
					pwv = append(pwv, level+rng.Float64()*0.02)
				}
			}
			fts = append(fts, f2)
			pws = append(pws, &trace.Power{Values: pwv})
		}
		dict, pts, err := mining.Mine(fts, mining.DefaultConfig())
		if err != nil {
			return true
		}
		var chains []*Chain
		var nBefore int
		var sumBefore float64
		for i, pt := range pts {
			c, err := Generate(dict, pt, pws[i], i)
			if err != nil {
				continue
			}
			sc := Simplify(c, DefaultMergePolicy())
			chains = append(chains, sc)
			for _, st := range sc.States {
				nBefore += st.Power.N
				sumBefore += st.Power.Sum
			}
		}
		if len(chains) == 0 {
			return true
		}
		m := Join(chains, DefaultMergePolicy())

		var nAfter int
		var sumAfter float64
		for _, st := range m.States {
			nAfter += st.Power.N
			sumAfter += st.Power.Sum
		}
		if nBefore != nAfter || !almostEqual(sumBefore, sumAfter) {
			return false
		}
		initials := 0
		for id, c := range m.Initials {
			if id < 0 || id >= m.NumStates() || c <= 0 {
				return false
			}
			initials += c
		}
		if initials != len(chains) {
			return false
		}
		for _, tr := range m.Transitions {
			if tr.From < 0 || tr.From >= m.NumStates() || tr.To < 0 || tr.To >= m.NumStates() {
				return false
			}
			if tr.Count <= 0 {
				return false
			}
			opens := false
			for _, p := range m.States[tr.To].FirstProps() {
				if p == tr.Enabling {
					opens = true
					break
				}
			}
			if !opens {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := a
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
