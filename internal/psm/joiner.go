package psm

import (
	"context"

	"psmkit/internal/mining"
	"psmkit/internal/obs"
)

// Joiner maintains the join incrementally across streaming snapshots.
//
// The batch join has two phases (see joinPooledWith): a greedy
// clustering pass over the pooled states and a fixpoint over the
// survivors. The clustering pass is a left fold — each pooled state is
// folded into the first already-kept state it merges with, and kept
// states are never re-examined by it — so its result over chains
// ⟨c₀ … cₖ⟩ extends to ⟨c₀ … cₖ₊₁⟩ by folding only cₖ₊₁'s states. A
// Joiner persists exactly that fold: the kept states with their pooled
// evidence, the phase-1-resolved aggregated transitions, and the
// surviving initials. Add folds one new chain in O(|chain| · kept)
// memoized checks; Snapshot clones the kept states cheaply and runs
// only the order-dependent fixpoint on the clone. Neither operation
// revisits previously pooled states, so the steady-state snapshot cost
// is a function of the number of distinct power behaviours (kept
// states), not of the total evidence pooled — while the produced model
// stays byte-identical to Join over the full chain list (pinned by
// TestJoinerMatchesJoin and the streaming parity suite).
//
// A Joiner is not goroutine-safe; the streaming engine owns one under
// its lock.
type Joiner struct {
	policy MergePolicy
	// memo caches mergeability verdicts across Add calls and snapshots
	// within one epoch; Reset clears it together with the fold, so the
	// memo's accounting (and its memory) always belongs to the current
	// epoch.
	memo *EvalMemo
	dict *mining.Dictionary
	// kept holds the phase-1 survivors in adoption order (the fixpoint's
	// scan order). State IDs are pooled-global and stable until a
	// snapshot reindexes its clone.
	kept []*State
	// trans aggregates the chains' transitions with phase-1 aliases
	// resolved, in first-occurrence order; transIdx locates each key's
	// slot. Snapshot applies the fixpoint's aliases on its copy, and the
	// two-stage resolution composes to the batch join's single pass.
	trans    []Transition
	transIdx map[transKey]int
	initials map[int]int
	pooled   int // total states ever folded (the batch pre-join count)
}

// NewJoiner returns an empty incremental join for one merge policy.
func NewJoiner(policy MergePolicy) *Joiner {
	j := &Joiner{policy: policy, memo: NewEvalMemo(policy)}
	j.Reset()
	return j
}

// Reset discards the accumulated fold AND the verdict memo in one step
// (epoch change: every proposition id and chain is void). Memoized
// verdicts are pure in the power moments and would stay correct across
// re-mining, but retaining them made a reset only partial: the memo's
// eval/hit counters kept spanning epochs and its map pinned the old
// epoch's memory. A Joiner that has been Reset is indistinguishable
// from a fresh NewJoiner of the same policy and memo bound — pinned by
// TestJoinerResetReuseAcrossEpochs.
func (j *Joiner) Reset() {
	j.dict = nil
	j.kept = nil
	j.trans = nil
	j.transIdx = make(map[transKey]int)
	j.initials = make(map[int]int)
	j.pooled = 0
	j.memo.Reset()
}

// Policy returns the joiner's merge policy.
func (j *Joiner) Policy() MergePolicy { return j.policy }

// Pooled returns the total number of states folded in so far — the
// batch join's pre-collapse pooled state count.
func (j *Joiner) Pooled() int { return j.pooled }

// SetMemoLimit bounds the verdict memo (see EvalMemo.SetLimit).
func (j *Joiner) SetMemoLimit(n int) { j.memo.SetLimit(n) }

// Memo exposes the verdict memo's counters (for benchmarks and tests).
func (j *Joiner) Memo() *EvalMemo { return j.memo }

// Add folds one simplified chain into the incremental join — the exact
// decisions the batch phase 1 would make for this chain's states after
// all previously added ones. The chain's states are deep-copied; the
// input is not modified. Merge counters from the context tick here
// (provenance is never recorded by a Joiner — the audit trail replays
// the canonical batch build instead, see stream.Engine.Provenance).
func (j *Joiner) Add(ctx context.Context, c *Chain) {
	mg := newMerger(ctx, j.policy, phaseJoin, -1)
	mg.prov = nil
	mg.memo = j.memo

	if j.dict == nil {
		j.dict = c.Dict
	}
	base := j.pooled
	// The chain's first state is an initial; recording it before the
	// fold lets mergeStates transfer the count if the head merges away
	// (exactly Pool-then-collapse's order).
	j.initials[base]++

	// Phase-1 fold with a chain-local alias map: only this chain's
	// states can be aliased here (kept states are never folded into each
	// other before the fixpoint), so the map dies with the chain.
	alias := make(map[int]int)
	for _, s := range c.States {
		ns := clonedState(s)
		ns.ID = base + s.ID
		j.pooled++
		merged := false
		for _, k := range j.kept {
			if mg.mergeable(k, ns) {
				mergeStates(alias, j.initials, k, ns)
				merged = true
				break
			}
		}
		if !merged {
			j.kept = append(j.kept, ns)
		}
	}

	// Aggregate the chain's transitions with its phase-1 aliases
	// resolved. First-occurrence order over chains in completion order
	// equals the batch dedup's first-occurrence order, and the fixpoint
	// aliases applied at snapshot time compose with these (two-stage
	// union-find resolution ≡ the batch's single resolve pass).
	for _, t := range ChainTransitions(c) {
		k := transKey{
			from:     findAlias(alias, base+t.From),
			to:       findAlias(alias, base+t.To),
			enabling: t.Enabling,
		}
		if i, ok := j.transIdx[k]; ok {
			j.trans[i].Count += t.Count
		} else {
			j.transIdx[k] = len(j.trans)
			j.trans = append(j.trans, Transition{From: k.from, To: k.to, Enabling: k.enabling, Count: t.Count})
		}
	}
}

// sharedClone copies the mutable spine of a kept state while sharing
// the immutable bulk with the joiner's copy, so snapshot cost does not
// grow with accumulated evidence:
//
//   - Alts: the slice is copied (the fixpoint mutates Alt.Count and
//     appends), but each Alt's Phases backing is shared — collapse only
//     ever copies phases into fresh slices, never writes them;
//   - Intervals: shared backing, capacity clamped to length, so a
//     fixpoint append copies-on-write instead of scribbling into the
//     joiner's array.
func sharedClone(s *State) *State {
	ns := &State{
		ID:        s.ID,
		Alts:      append([]Alt(nil), s.Alts...),
		Power:     s.Power,
		Intervals: s.Intervals[:len(s.Intervals):len(s.Intervals)],
	}
	if s.Fit != nil {
		f := *s.Fit
		ns.Fit = &f
	}
	return ns
}

// Snapshot materializes the joined model over everything added so far:
// byte-identical to Join over the same chains. The kept states are
// cheaply cloned (sharedClone) and only the order-dependent fixpoint
// runs on the clone — the joiner itself is not modified and keeps
// accepting Add calls. The fixpoint starts from an empty alias map:
// phase-1 aliases were already resolved into the aggregated
// transitions, so only this snapshot's collapses need chasing.
func (j *Joiner) Snapshot(ctx context.Context) *Model {
	_, span := obs.Start(ctx, "collapse", obs.KV("states_in", len(j.kept)))
	mg := newMerger(ctx, j.policy, phaseJoin, -1)
	mg.prov = nil
	mg.memo = j.memo

	m := &Model{
		Dict:        j.dict,
		States:      make([]*State, len(j.kept)),
		Transitions: append([]Transition(nil), j.trans...),
		Initials:    make(map[int]int, len(j.initials)),
	}
	for i, s := range j.kept {
		m.States[i] = sharedClone(s)
	}
	for id, n := range j.initials {
		m.Initials[id] = n
	}

	alias := map[int]int{}
	collapseWorklist(&mg, m, alias)
	resolveTransitions(m, alias)
	reindex(m)
	span.SetAttr("states_out", len(m.States))
	span.End()
	return m
}
