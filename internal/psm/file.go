package psm

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"psmkit/internal/mining"
	"psmkit/internal/stats"
)

// fileMagic guards against loading unrelated gob streams.
const fileMagic = "psmkit-model-v1"

// fileModel is the on-disk representation of a Model (gob-encoded, with
// the mined dictionary embedded so a saved model is self-contained).
// The initial distribution is stored as a state-sorted pair list, not a
// map: gob serializes maps in randomized iteration order, and Save must
// be byte-deterministic so identical models produce identical files.
type fileModel struct {
	Magic       string
	Dict        mining.Snapshot
	States      []fileState
	Transitions []Transition
	Initials    []fileInitial
}

type fileInitial struct {
	State, Count int
}

type fileState struct {
	Alts      []Alt
	Power     stats.Moments
	Intervals []Interval
	Fit       *stats.LinearFit
}

// Save serializes a model (states, transitions, initial distribution and
// the mined proposition dictionary) for later simulation by cmd/psmsim.
func Save(w io.Writer, m *Model) error {
	fm := fileModel{
		Magic:       fileMagic,
		Dict:        m.Dict.Snapshot(),
		Transitions: m.Transitions,
	}
	for s, n := range m.Initials {
		fm.Initials = append(fm.Initials, fileInitial{State: s, Count: n})
	}
	sort.Slice(fm.Initials, func(i, j int) bool { return fm.Initials[i].State < fm.Initials[j].State })
	for _, s := range m.States {
		fm.States = append(fm.States, fileState{
			Alts:      s.Alts,
			Power:     s.Power,
			Intervals: s.Intervals,
			Fit:       s.Fit,
		})
	}
	return gob.NewEncoder(w).Encode(fm)
}

// Load reads a model produced by Save.
func Load(r io.Reader) (*Model, error) {
	var fm fileModel
	if err := gob.NewDecoder(r).Decode(&fm); err != nil {
		return nil, fmt.Errorf("psm: decoding model: %w", err)
	}
	if fm.Magic != fileMagic {
		return nil, fmt.Errorf("psm: not a psmkit model file (magic %q)", fm.Magic)
	}
	m := &Model{
		Dict:        mining.FromSnapshot(fm.Dict),
		Transitions: fm.Transitions,
		Initials:    map[int]int{},
	}
	for _, in := range fm.Initials {
		m.Initials[in.State] += in.Count
	}
	for i, fs := range fm.States {
		m.States = append(m.States, &State{
			ID:        i,
			Alts:      fs.Alts,
			Power:     fs.Power,
			Intervals: fs.Intervals,
			Fit:       fs.Fit,
		})
	}
	return m, nil
}
