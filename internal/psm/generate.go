package psm

import (
	"fmt"

	"psmkit/internal/mining"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// xuState is the current state of the XU automaton of Fig. 5.
type xuState int

const (
	xuX xuState = iota
	xuU
)

// assertion is the triplet ⟨p, start, stop⟩ returned by XU_getAssertion:
// proposition prop holds over [start, stop] and is followed by the
// proposition next (the enabling function of the outgoing transition), or
// next < 0 at end of trace.
type assertion struct {
	prop        int
	start, stop int
	next        int
	kind        PatternKind
}

// xuScanner walks a proposition trace with the two-element FIFO of the
// PSMGenerator procedure, recognizing until (run length ≥ 2) and next
// (run length 1) temporal patterns.
type xuScanner struct {
	pt  *mining.PropTrace
	pos int // index of f[0]
	st  xuState
}

func newXUScanner(pt *mining.PropTrace) *xuScanner {
	return &xuScanner{pt: pt, st: xuX}
}

// next returns the next recognized assertion, or ok=false when the trace
// is exhausted (the run at the end of the trace has no successor and is
// dropped, like the example of Fig. 5 drops the final p_d).
func (s *xuScanner) next() (assertion, bool) {
	ids := s.pt.IDs
	if s.pos >= len(ids)-1 {
		return assertion{}, false
	}
	start := s.pos
	p := ids[s.pos]
	// f = ⟨ids[pos], ids[pos+1]⟩; while f[1] == f[0] stay in U.
	for s.pos+1 < len(ids) && ids[s.pos+1] == p {
		s.st = xuU
		s.pos++
	}
	stop := s.pos
	s.st = xuX
	if s.pos+1 >= len(ids) {
		// Run reaches the end of the trace: no successor, no assertion.
		s.pos = len(ids)
		return assertion{}, false
	}
	succ := ids[s.pos+1]
	s.pos++
	kind := Until
	if stop == start {
		kind = Next
	}
	return assertion{prop: p, start: start, stop: stop, next: succ, kind: kind}, true
}

// Generate is the PSMGenerator procedure (Fig. 4): it scans the
// proposition trace Γ with the XU automaton and builds the chain PSM,
// attaching to each state the power attributes ⟨μ, σ, n⟩ computed on the
// corresponding interval of the dynamic power trace Δ.
//
// traceIdx tags the chain's states with the index of the training trace
// they came from (used later by Calibrate and by the join bookkeeping).
func Generate(dict *mining.Dictionary, pt *mining.PropTrace, pw *trace.Power, traceIdx int) (*Chain, error) {
	if pt.Len() == 0 {
		return nil, fmt.Errorf("psm: empty proposition trace")
	}
	if pw.Len() < pt.Len() {
		return nil, fmt.Errorf("psm: power trace has %d instants, proposition trace %d", pw.Len(), pt.Len())
	}
	c := &Chain{Dict: dict, Trace: traceIdx}
	scan := newXUScanner(pt)
	for {
		a, ok := scan.next()
		if !ok {
			break
		}
		var m stats.Moments
		m.AddAll(pw.Values[a.start : a.stop+1])
		st := &State{
			ID: len(c.States),
			Alts: []Alt{{
				Seq:   Sequence{Phases: []Phase{{Prop: a.prop, Kind: a.kind}}},
				Count: 1,
			}},
			Power:     m,
			Intervals: []Interval{{Trace: traceIdx, Start: a.start, Stop: a.stop}},
		}
		c.States = append(c.States, st)
	}
	if len(c.States) == 0 {
		return nil, fmt.Errorf("psm: proposition trace too short to expose a temporal pattern")
	}
	return c, nil
}

// ChainTransitions materializes the implicit transitions of a chain: the
// edge into state i+1 is enabled by the first proposition of state i+1 —
// exactly the f[1] value at the instant the previous state's pattern was
// recognized (Fig. 4, createTransition).
func ChainTransitions(c *Chain) []Transition {
	var out []Transition
	for i := 0; i+1 < len(c.States); i++ {
		out = append(out, Transition{
			From:     c.States[i].ID,
			To:       c.States[i+1].ID,
			Enabling: c.States[i+1].Alts[0].Seq.Phases[0].Prop,
			Count:    1,
		})
	}
	return out
}
