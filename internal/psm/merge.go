package psm

import (
	"math"
	"sync"

	"psmkit/internal/stats"
)

// MergePolicy quantifies the mergeability of power states (Section IV-A).
type MergePolicy struct {
	// Epsilon is the relative tolerance for Case 1 (two next-states,
	// n_i = n_j = 1): mergeable when |μ_i − μ_j| ≤ Epsilon·max(|μ_i|,|μ_j|).
	Epsilon float64
	// Alpha is the significance level of the t-tests (Case 2: Welch's
	// two-sample test for two until-states; Case 3: one-sample test for an
	// until-state against a next-state). The states are mergeable when the
	// test does NOT reject equality, i.e. p-value ≥ Alpha.
	Alpha float64
	// EquivalenceMargin guards the t-tests against the large-n pathology:
	// with thousands of supporting instants the tests detect arbitrarily
	// small mean differences, so states whose means differ by at most this
	// relative margin are considered mergeable even when the test rejects.
	// (This is an engineering refinement over the paper, which leaves ε to
	// the designer; see DESIGN.md.)
	EquivalenceMargin float64
	// MaxCV is the paper's "σ is low" requirement: until-states are
	// mergeable only when each one's coefficient of variation σ/μ is at
	// most MaxCV. Zero disables the check.
	MaxCV float64
}

// DefaultMergePolicy returns the thresholds used in the reproduction.
//
// MaxCV defaults to 0 (disabled): data-dependent states — a write burst
// whose power tracks the data's Hamming activity — have inherently high σ
// yet must merge across bursts for the subsequent regression calibration
// to see all their evidence; Welch's test already refuses to merge states
// whose mean power genuinely differs. The CV guard remains available for
// the ablation benchmarks.
func DefaultMergePolicy() MergePolicy {
	return MergePolicy{
		Epsilon:           0.05,
		Alpha:             0.20,
		EquivalenceMargin: 0.05,
		MaxCV:             0,
	}
}

// Test names a MergeOutcome can carry: which check decided the verdict.
const (
	// TestEmpty / TestNonFinite are the pre-case guards: a state with no
	// observations, or a poisoned accumulator, never merges.
	TestEmpty     = "empty"
	TestNonFinite = "non-finite"
	// TestEpsilon is Case 1's designer tolerance on two single-sample
	// means; Stat is the relative difference, Threshold is Epsilon.
	TestEpsilon = "epsilon"
	// TestCVGuard is the paper's "σ is low" requirement; Stat is the
	// offending coefficient of variation, Threshold is MaxCV.
	TestCVGuard = "cv-guard"
	// TestDegenerate is the both-constant Welch fallback: the relative
	// mean difference against Epsilon, like two next-states.
	TestDegenerate = "degenerate-epsilon"
	// TestEquivalence is the large-n equivalence margin; Stat is the
	// relative mean difference, Threshold is EquivalenceMargin.
	TestEquivalence = "equivalence"
	// TestWelch / TestOneSample are the t-tests of Cases 2 and 3; Stat is
	// the p-value, Threshold is Alpha, T carries the raw t statistic.
	TestWelch     = "welch"
	TestOneSample = "one-sample"
)

// MergeOutcome explains one mergeability verdict: which of Section
// IV-A's cases applied (0 when a pre-case guard short-circuited), which
// named check decided, the computed statistic against its threshold,
// and the decision. The provenance audit log records one of these per
// comparison.
type MergeOutcome struct {
	Case      int
	Test      string
	Stat      float64
	Threshold float64
	// T is the raw t statistic when a t-test ran (0 otherwise, and when
	// the test itself errored out).
	T      float64
	Accept bool
}

// Mergeable implements the three cases of Section IV-A on two power-
// attribute summaries.
func (p MergePolicy) Mergeable(a, b stats.Moments) bool {
	return p.Evaluate(a, b).Accept
}

// Evaluate is Mergeable with its reasoning attached: the same decision
// procedure, returning the case, the deciding test and the statistic
// instead of a bare boolean. Mergeable is Evaluate(...).Accept — there
// is exactly one implementation of the decision.
func (p MergePolicy) Evaluate(a, b stats.Moments) MergeOutcome {
	if a.N == 0 || b.N == 0 {
		return MergeOutcome{Test: TestEmpty}
	}
	// Corrupted attributes (NaN/Inf from a poisoned power trace) must
	// never merge — and must not reach the t-tests, whose NaN comparisons
	// would silently decide either way.
	if !momentsFinite(a) || !momentsFinite(b) {
		return MergeOutcome{Test: TestNonFinite}
	}
	switch {
	case a.N == 1 && b.N == 1:
		// Case 1: two next-states; designer tolerance on the means.
		d := relDiff(a.Mean(), b.Mean())
		return MergeOutcome{Case: 1, Test: TestEpsilon, Stat: d, Threshold: p.Epsilon, Accept: d <= p.Epsilon}

	case a.N > 1 && b.N > 1:
		// Case 2: two until-states; Welch's t-test plus the low-σ guard.
		if p.MaxCV > 0 && (a.CoefficientOfVariation() > p.MaxCV || b.CoefficientOfVariation() > p.MaxCV) {
			cv := a.CoefficientOfVariation()
			if bcv := b.CoefficientOfVariation(); bcv > cv {
				cv = bcv
			}
			return MergeOutcome{Case: 2, Test: TestCVGuard, Stat: cv, Threshold: p.MaxCV}
		}
		d := relDiff(a.Mean(), b.Mean())
		if a.Variance() == 0 && b.Variance() == 0 {
			// Degenerate Welch: both samples are constant, the statistic
			// is 0/0 or ±Inf. Decide deterministically on the means with
			// the designer tolerance, like two next-states.
			return MergeOutcome{Case: 2, Test: TestDegenerate, Stat: d, Threshold: p.Epsilon, Accept: d <= p.Epsilon}
		}
		if d <= p.EquivalenceMargin {
			return MergeOutcome{Case: 2, Test: TestEquivalence, Stat: d, Threshold: p.EquivalenceMargin, Accept: true}
		}
		res, err := stats.WelchTTest(a, b)
		if err != nil {
			return MergeOutcome{Case: 2, Test: TestWelch, Threshold: p.Alpha}
		}
		return MergeOutcome{Case: 2, Test: TestWelch, Stat: res.P, Threshold: p.Alpha, T: res.T, Accept: res.P >= p.Alpha}

	default:
		// Case 3: an until-state against a next-state (single sample).
		big, x := a, b.Mean()
		if b.N > 1 {
			big, x = b, a.Mean()
		}
		if p.MaxCV > 0 && big.CoefficientOfVariation() > p.MaxCV {
			return MergeOutcome{Case: 3, Test: TestCVGuard, Stat: big.CoefficientOfVariation(), Threshold: p.MaxCV}
		}
		if d := relDiff(big.Mean(), x); d <= p.EquivalenceMargin {
			return MergeOutcome{Case: 3, Test: TestEquivalence, Stat: d, Threshold: p.EquivalenceMargin, Accept: true}
		}
		res, err := stats.OneSampleTTest(big, x)
		if err != nil {
			return MergeOutcome{Case: 3, Test: TestOneSample, Threshold: p.Alpha}
		}
		return MergeOutcome{Case: 3, Test: TestOneSample, Stat: res.P, Threshold: p.Alpha, T: res.T, Accept: res.P >= p.Alpha}
	}
}

// momentsFinite reports whether the accumulator's sums are finite (its
// derived mean and variance then are too).
func momentsFinite(m stats.Moments) bool {
	return !math.IsNaN(m.Sum) && !math.IsInf(m.Sum, 0) &&
		!math.IsNaN(m.SumSq) && !math.IsInf(m.SumSq, 0)
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		if -bb > m {
			m = -bb
		}
	} else if bb > m {
		m = bb
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// Simplify implements the simplify procedure of Section IV on one chain:
// it iteratively substitutes a maximal run of adjacent mergeable states
// ⟨s_i, …, s_{i+j}⟩ with a single state whose assertion is the cascade
// {p_i; p_{i+1}; …; p_{i+j}} and whose power attributes cover the union
// of the merged intervals. It returns a new chain; the input is not
// modified.
func Simplify(c *Chain, policy MergePolicy) *Chain {
	return simplifyWith(plainMerger(policy, phaseSimplify, c.Trace), c)
}

// simplifyWith is Simplify routed through a merger, so SimplifyCtx can
// attach the context's provenance log and counters while the plain
// entry point keeps the policy's boolean fast path.
func simplifyWith(mg merger, c *Chain) *Chain {
	states := make([]*State, len(c.States))
	for i, s := range c.States {
		states[i] = clonedState(s)
	}
	for {
		merged := false
		var out []*State
		i := 0
		for i < len(states) {
			cur := states[i]
			for i+1 < len(states) && mg.mergeable(cur, states[i+1]) {
				cur = mergeAdjacent(cur, states[i+1])
				i++
				merged = true
			}
			out = append(out, cur)
			i++
		}
		states = out
		if !merged {
			break
		}
	}
	for i, s := range states {
		s.ID = i
	}
	return &Chain{Dict: c.Dict, Trace: c.Trace, States: states}
}

// mergeAdjacent folds state b (the immediate successor of a in the chain)
// into a: the cascade concatenates, the intervals concatenate (they are
// adjacent in the trace) and the power attributes pool exactly.
func mergeAdjacent(a, b *State) *State {
	out := clonedState(a)
	// Both a and b are single-alternative at simplify time (join has not
	// run yet); the cascades concatenate.
	out.Alts[0].Seq.Phases = append(out.Alts[0].Seq.Phases, b.Alts[0].Seq.Phases...)
	out.Power.Merge(b.Power)
	// Adjacent intervals coalesce into [start_a, stop_b].
	last := out.Intervals[len(out.Intervals)-1]
	bi := b.Intervals[0]
	out.Intervals[len(out.Intervals)-1] = Interval{Trace: last.Trace, Start: last.Start, Stop: bi.Stop}
	return out
}

// Join implements the join procedure of Section IV: starting from the
// simplified chains it pools every state into one model and iteratively
// collapses any two mergeable states — adjacent or not, from the same or
// different chains. The result can be non-deterministic: a state may
// carry several identical assertions with different successors; Alt
// counts and Transition counts record the multiplicities the HMM needs.
//
// Join deep-copies every chain state on entry (Pool clones): the input
// chains are never modified, so callers may reuse the same chains across
// several merge policies. join_reuse_test.go pins this contract.
func Join(chains []*Chain, policy MergePolicy) *Model {
	if len(chains) == 0 {
		return &Model{Initials: map[int]int{}}
	}
	return JoinPooled(Pool(chains), policy)
}

// Pool flattens simplified chains into one unmerged model: every chain
// state is deep-copied and renumbered with a model-global id (chain k's
// states follow chain k-1's contiguously), the implicit chain transitions
// are materialized, and each chain's first state is recorded as an
// initial. Pooling is pure concatenation — associative in the chain
// order — which is what lets the parallel tree join of internal/pipeline
// assemble partial pools in any grouping and still reproduce the
// sequential Join bit for bit.
func Pool(chains []*Chain) *Model {
	// The exact output sizes are known up front (every chain contributes
	// len(States) states, len(States)-1 transitions and one initial), so
	// the hot snapshot path allocates each backing array once.
	nStates, nTrans := 0, 0
	for _, c := range chains {
		nStates += len(c.States)
		if len(c.States) > 1 {
			nTrans += len(c.States) - 1
		}
	}
	m := &Model{
		States:      make([]*State, 0, nStates),
		Transitions: make([]Transition, 0, nTrans),
		Initials:    make(map[int]int, len(chains)),
	}
	if len(chains) > 0 {
		m.Dict = chains[0].Dict
	}
	for _, c := range chains {
		base := len(m.States)
		for _, s := range c.States {
			ns := clonedState(s)
			ns.ID = base + s.ID
			m.States = append(m.States, ns)
		}
		for _, t := range ChainTransitions(c) {
			m.Transitions = append(m.Transitions, Transition{
				From: base + t.From, To: base + t.To, Enabling: t.Enabling, Count: t.Count,
			})
		}
		m.Initials[base]++
	}
	return m
}

// Concat appends pool b to pool a, rebasing b's state ids, transition
// endpoints and initials by a's state count. It takes ownership of both
// inputs (a is extended in place, b's states are adopted without copying)
// and returns a. Concatenating pooled sub-models left to right — in any
// tree grouping — yields exactly Pool of the concatenated chain list.
func Concat(a, b *Model) *Model {
	if a.Dict == nil {
		a.Dict = b.Dict
	}
	base := len(a.States)
	if need := base + len(b.States); cap(a.States) < need {
		grown := make([]*State, base, need)
		copy(grown, a.States)
		a.States = grown
	}
	for _, s := range b.States {
		s.ID += base
		a.States = append(a.States, s)
	}
	if need := len(a.Transitions) + len(b.Transitions); cap(a.Transitions) < need {
		grown := make([]Transition, len(a.Transitions), need)
		copy(grown, a.Transitions)
		a.Transitions = grown
	}
	for _, t := range b.Transitions {
		a.Transitions = append(a.Transitions, Transition{
			From: base + t.From, To: base + t.To, Enabling: t.Enabling, Count: t.Count,
		})
	}
	for id, n := range b.Initials {
		a.Initials[base+id] += n
	}
	return a
}

// JoinPooled runs the order-dependent collapse phases of Join on a pooled
// model (greedy clustering, fixpoint, transition rewiring, reindexing).
// It mutates and returns m. Exported so the parallel tree join can pool
// concurrently and still share this exact merge code path with the
// sequential flow.
func JoinPooled(m *Model, policy MergePolicy) *Model {
	return joinPooledWith(plainMerger(policy, phaseJoin, -1), m)
}

// joinPooledWith routes JoinPooled through a merger (see simplifyWith)
// and selects the collapse engine. The two engines produce bit-identical
// models — the worklist performs exactly the restart scan's collapse
// sequence (see collapseWorklist) — but they examine state pairs in
// different orders, so when a provenance log is attached the canonical
// restart-scan order is used: the audit log's decision sequence is a
// documented, replayable format (internal/obs) that must not depend on
// which engine produced the model. All repeated evaluations still hit
// the mergeability memo either way.
func joinPooledWith(mg merger, m *Model) *Model {
	// Merged state ids are tracked in an alias table and the transitions
	// are rewired once at the end — collapsing is then O(alts), not O(T).
	alias := map[int]int{}
	joinPhase1(&mg, m, alias)
	if mg.prov != nil || mg.forceScan {
		joinFixpointScan(&mg, m, alias)
	} else {
		collapseWorklist(&mg, m, alias)
	}
	resolveTransitions(m, alias)
	reindex(m)
	return m
}

// joinPhase1 is the greedy clustering pass: walk the pooled states in
// order and fold each into the first already-kept state it is mergeable
// with. This brings the state count down from O(trace length) to the
// number of distinct power behaviours in one linear pass. The pass is a
// left fold — each decision depends only on the states before it — which
// is what lets Joiner maintain its result incrementally across
// streaming snapshots.
func joinPhase1(mg *merger, m *Model, alias map[int]int) {
	kept := 0
	for i := 0; i < len(m.States); {
		merged := false
		for j := 0; j < kept; j++ {
			if mg.mergeable(m.States[j], m.States[i]) {
				collapse(m, alias, j, i)
				merged = true
				break
			}
		}
		if !merged {
			// Keep: move into the kept prefix (it already is — collapse
			// removes merged entries, so position i becomes kept).
			kept++
			i = kept
		}
	}
}

// joinFixpointScan is the reference fixpoint engine: pooling moved the
// kept states' means, so pairs that were not mergeable against the early
// evidence may be now; rescan all pairs from the top after every
// collapse until none merges. Each collapse therefore costs a fresh
// O(n²) pair scan — the superlinear core the worklist engine replaces —
// but the scan visits pairs in the canonical order the provenance log
// documents, so it remains the decision path whenever an audit log is
// attached (every repeated verdict is a memo hit, so even this path no
// longer recomputes the t-tests).
func joinFixpointScan(mg *merger, m *Model, alias map[int]int) {
	for {
		found := false
		for i := 0; i < len(m.States) && !found; i++ {
			for j := i + 1; j < len(m.States) && !found; j++ {
				if mg.mergeable(m.States[i], m.States[j]) {
					collapse(m, alias, i, j)
					found = true
				}
			}
		}
		if !found {
			break
		}
	}
}

// pairItem is one candidate collapse in the worklist: the two states by
// phase-2 rank, the versions of their evidence when the verdict was
// computed, and the verdict's case (for the merge counters).
type pairItem struct {
	ra, rb int // ranks (phase-2 entry order; order-isomorphic to slice position)
	va, vb int // evidence versions at evaluation time
	cse    int // MergeOutcome.Case of the accepting verdict
}

// pairHeap is a binary min-heap of mergeable pairs ordered
// lexicographically by rank — the same "first pair in scan order" the
// reference engine's restart scan selects.
type pairHeap []pairItem

func (h pairHeap) less(i, j int) bool {
	if h[i].ra != h[j].ra {
		return h[i].ra < h[j].ra
	}
	return h[i].rb < h[j].rb
}

func (h *pairHeap) push(it pairItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *pairHeap) pop() pairItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

// collapseWorklist is the incremental fixpoint engine. It reproduces the
// restart scan's collapse sequence exactly without the restarts, from
// two facts:
//
//   - the restart scan always collapses the lexicographically least
//     (by slice position) mergeable pair — every pair before it was just
//     re-checked and rejected;
//   - a verdict is a pure function of the two states' moments, so a
//     collapse of pair (a, b) can only change verdicts of pairs
//     involving a (whose evidence pooled) or b (which is gone).
//
// So: seed a min-heap with every mergeable pair of one full pass (the
// reference engine pays at least that to certify the fixpoint), and
// after each collapse re-probe only the n−1 pairs involving the merged
// state. Stale heap entries — a dead endpoint, or evidence that changed
// since the verdict — are skipped lazily via per-state versions. Ranks
// (entry positions) order the heap: removals never reorder survivors,
// so rank order and slice-position order agree at every step, and the
// popped pair is exactly the pair the restart scan would find next.
// Per collapse the work drops from O(n²) re-evaluations to O(n) probes
// (mostly memo hits), taking the fixpoint from ~O(n³) Evaluate calls to
// O(n²) verdict lookups overall.
func collapseWorklist(mg *merger, m *Model, alias map[int]int) {
	n := len(m.States)
	if n < 2 {
		return
	}
	byRank := make([]*State, n)
	copy(byRank, m.States)
	ver := make([]int, n)
	var h pairHeap

	// probe records the decision for the counters and enqueues the pair
	// when it is currently mergeable. Argument order is (earlier rank,
	// later rank) — the reference scan's (i, j) order, which keeps the
	// memo keys shared between both engines.
	probe := func(ra, rb int) {
		out := mg.decide(byRank[ra], byRank[rb])
		if out.Accept {
			h.push(pairItem{ra: ra, rb: rb, va: ver[ra], vb: ver[rb], cse: out.Case})
		}
	}

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			probe(i, j)
		}
	}
	for len(h) > 0 {
		it := h.pop()
		if byRank[it.ra] == nil || byRank[it.rb] == nil || ver[it.ra] != it.va || ver[it.rb] != it.vb {
			continue // stale: an endpoint died or its evidence changed
		}
		a, b := byRank[it.ra], byRank[it.rb]
		mergeStates(alias, m.Initials, a, b)
		mg.countMerge(it.cse)
		byRank[it.rb] = nil
		ver[it.ra]++
		// Re-enqueue only pairs involving the merged state; everything
		// else kept its evidence, hence its verdict.
		for rc, s := range byRank {
			if s == nil || rc == it.ra {
				continue
			}
			if rc < it.ra {
				probe(rc, it.ra)
			} else {
				probe(it.ra, rc)
			}
		}
	}
	// Compact the survivors in rank order — the order the reference
	// engine's in-place removals preserve.
	out := m.States[:0]
	for _, s := range byRank {
		if s != nil {
			out = append(out, s)
		}
	}
	m.States = out
}

// collapse merges state index bi into state index ai: alternatives union
// (counting duplicates), power pools, intervals concatenate. The merged
// id is recorded in the alias table; transitions are rewired later in one
// pass.
func collapse(m *Model, alias map[int]int, ai, bi int) {
	mergeStates(alias, m.Initials, m.States[ai], m.States[bi])
	m.States = append(m.States[:bi], m.States[bi+1:]...)
}

// mergeStates folds state b into state a without touching the state
// slice — the collapse half the worklist engine and the streaming Joiner
// share with the reference engine, so every path merges evidence
// identically.
func mergeStates(alias, initials map[int]int, a, b *State) {
	for _, alt := range b.Alts {
		key := alt.Seq.Key()
		merged := false
		for k := range a.Alts {
			if a.Alts[k].Seq.Key() == key {
				a.Alts[k].Count += alt.Count
				merged = true
				break
			}
		}
		if !merged {
			a.Alts = append(a.Alts, Alt{
				Seq:   Sequence{Phases: append([]Phase(nil), alt.Seq.Phases...)},
				Count: alt.Count,
			})
		}
	}
	a.Power.Merge(b.Power)
	a.Intervals = append(a.Intervals, b.Intervals...)

	alias[b.ID] = a.ID
	if n, ok := initials[b.ID]; ok {
		initials[a.ID] += n
		delete(initials, b.ID)
	}
}

// findAlias chases the alias chain from id to its surviving root with
// full two-pass path compression: after the root is known, every node on
// the walked chain is pointed directly at it, so merge cascades of any
// depth amortize to near-constant lookups (classic union-find; the
// merge engines only ever union a live root into a live root, so ranks
// are unnecessary — the chain depth equals the cascade depth).
func findAlias(alias map[int]int, id int) int {
	root := id
	for {
		next, ok := alias[root]
		if !ok {
			break
		}
		root = next
	}
	for id != root {
		next := alias[id]
		alias[id] = root
		id = next
	}
	return root
}

// resolveTransitions chases alias chains on every transition endpoint and
// aggregates the duplicates that merging produced.
func resolveTransitions(m *Model, alias map[int]int) {
	for i := range m.Transitions {
		m.Transitions[i].From = findAlias(alias, m.Transitions[i].From)
		m.Transitions[i].To = findAlias(alias, m.Transitions[i].To)
	}
	dedupTransitions(m)
}

// transKey identifies a transition up to its count — the dedup identity.
type transKey struct{ from, to, enabling int }

// dedupScratch holds the aggregation map and first-occurrence order of
// one dedupTransitions pass. The snapshot hot path deduplicates on every
// join; pooling the scratch keeps those passes allocation-free.
type dedupScratch struct {
	agg   map[transKey]int
	order []transKey
}

var dedupPool = sync.Pool{
	New: func() any {
		return &dedupScratch{agg: make(map[transKey]int)}
	},
}

// dedupTransitions aggregates parallel edges (same from/to/enabling) into
// one transition with a summed count, preserving first-occurrence order.
func dedupTransitions(m *Model) {
	sc := dedupPool.Get().(*dedupScratch)
	for _, t := range m.Transitions {
		k := transKey{t.From, t.To, t.Enabling}
		if _, ok := sc.agg[k]; !ok {
			sc.order = append(sc.order, k)
		}
		sc.agg[k] += t.Count
	}
	m.Transitions = m.Transitions[:0]
	for _, k := range sc.order {
		m.Transitions = append(m.Transitions, Transition{From: k.from, To: k.to, Enabling: k.enabling, Count: sc.agg[k]})
	}
	clear(sc.agg)
	sc.order = sc.order[:0]
	dedupPool.Put(sc)
}

// reindex renumbers states to 0..n-1 and rewrites transitions and
// initials accordingly.
func reindex(m *Model) {
	remap := map[int]int{}
	for i, s := range m.States {
		remap[s.ID] = i
		s.ID = i
	}
	for i := range m.Transitions {
		m.Transitions[i].From = remap[m.Transitions[i].From]
		m.Transitions[i].To = remap[m.Transitions[i].To]
	}
	newInit := map[int]int{}
	for id, n := range m.Initials {
		newInit[remap[id]] = n
	}
	m.Initials = newInit
}
