package psm

import (
	"math"

	"psmkit/internal/stats"
)

// MergePolicy quantifies the mergeability of power states (Section IV-A).
type MergePolicy struct {
	// Epsilon is the relative tolerance for Case 1 (two next-states,
	// n_i = n_j = 1): mergeable when |μ_i − μ_j| ≤ Epsilon·max(|μ_i|,|μ_j|).
	Epsilon float64
	// Alpha is the significance level of the t-tests (Case 2: Welch's
	// two-sample test for two until-states; Case 3: one-sample test for an
	// until-state against a next-state). The states are mergeable when the
	// test does NOT reject equality, i.e. p-value ≥ Alpha.
	Alpha float64
	// EquivalenceMargin guards the t-tests against the large-n pathology:
	// with thousands of supporting instants the tests detect arbitrarily
	// small mean differences, so states whose means differ by at most this
	// relative margin are considered mergeable even when the test rejects.
	// (This is an engineering refinement over the paper, which leaves ε to
	// the designer; see DESIGN.md.)
	EquivalenceMargin float64
	// MaxCV is the paper's "σ is low" requirement: until-states are
	// mergeable only when each one's coefficient of variation σ/μ is at
	// most MaxCV. Zero disables the check.
	MaxCV float64
}

// DefaultMergePolicy returns the thresholds used in the reproduction.
//
// MaxCV defaults to 0 (disabled): data-dependent states — a write burst
// whose power tracks the data's Hamming activity — have inherently high σ
// yet must merge across bursts for the subsequent regression calibration
// to see all their evidence; Welch's test already refuses to merge states
// whose mean power genuinely differs. The CV guard remains available for
// the ablation benchmarks.
func DefaultMergePolicy() MergePolicy {
	return MergePolicy{
		Epsilon:           0.05,
		Alpha:             0.20,
		EquivalenceMargin: 0.05,
		MaxCV:             0,
	}
}

// Test names a MergeOutcome can carry: which check decided the verdict.
const (
	// TestEmpty / TestNonFinite are the pre-case guards: a state with no
	// observations, or a poisoned accumulator, never merges.
	TestEmpty     = "empty"
	TestNonFinite = "non-finite"
	// TestEpsilon is Case 1's designer tolerance on two single-sample
	// means; Stat is the relative difference, Threshold is Epsilon.
	TestEpsilon = "epsilon"
	// TestCVGuard is the paper's "σ is low" requirement; Stat is the
	// offending coefficient of variation, Threshold is MaxCV.
	TestCVGuard = "cv-guard"
	// TestDegenerate is the both-constant Welch fallback: the relative
	// mean difference against Epsilon, like two next-states.
	TestDegenerate = "degenerate-epsilon"
	// TestEquivalence is the large-n equivalence margin; Stat is the
	// relative mean difference, Threshold is EquivalenceMargin.
	TestEquivalence = "equivalence"
	// TestWelch / TestOneSample are the t-tests of Cases 2 and 3; Stat is
	// the p-value, Threshold is Alpha, T carries the raw t statistic.
	TestWelch     = "welch"
	TestOneSample = "one-sample"
)

// MergeOutcome explains one mergeability verdict: which of Section
// IV-A's cases applied (0 when a pre-case guard short-circuited), which
// named check decided, the computed statistic against its threshold,
// and the decision. The provenance audit log records one of these per
// comparison.
type MergeOutcome struct {
	Case      int
	Test      string
	Stat      float64
	Threshold float64
	// T is the raw t statistic when a t-test ran (0 otherwise, and when
	// the test itself errored out).
	T      float64
	Accept bool
}

// Mergeable implements the three cases of Section IV-A on two power-
// attribute summaries.
func (p MergePolicy) Mergeable(a, b stats.Moments) bool {
	return p.Evaluate(a, b).Accept
}

// Evaluate is Mergeable with its reasoning attached: the same decision
// procedure, returning the case, the deciding test and the statistic
// instead of a bare boolean. Mergeable is Evaluate(...).Accept — there
// is exactly one implementation of the decision.
func (p MergePolicy) Evaluate(a, b stats.Moments) MergeOutcome {
	if a.N == 0 || b.N == 0 {
		return MergeOutcome{Test: TestEmpty}
	}
	// Corrupted attributes (NaN/Inf from a poisoned power trace) must
	// never merge — and must not reach the t-tests, whose NaN comparisons
	// would silently decide either way.
	if !momentsFinite(a) || !momentsFinite(b) {
		return MergeOutcome{Test: TestNonFinite}
	}
	switch {
	case a.N == 1 && b.N == 1:
		// Case 1: two next-states; designer tolerance on the means.
		d := relDiff(a.Mean(), b.Mean())
		return MergeOutcome{Case: 1, Test: TestEpsilon, Stat: d, Threshold: p.Epsilon, Accept: d <= p.Epsilon}

	case a.N > 1 && b.N > 1:
		// Case 2: two until-states; Welch's t-test plus the low-σ guard.
		if p.MaxCV > 0 && (a.CoefficientOfVariation() > p.MaxCV || b.CoefficientOfVariation() > p.MaxCV) {
			cv := a.CoefficientOfVariation()
			if bcv := b.CoefficientOfVariation(); bcv > cv {
				cv = bcv
			}
			return MergeOutcome{Case: 2, Test: TestCVGuard, Stat: cv, Threshold: p.MaxCV}
		}
		d := relDiff(a.Mean(), b.Mean())
		if a.Variance() == 0 && b.Variance() == 0 {
			// Degenerate Welch: both samples are constant, the statistic
			// is 0/0 or ±Inf. Decide deterministically on the means with
			// the designer tolerance, like two next-states.
			return MergeOutcome{Case: 2, Test: TestDegenerate, Stat: d, Threshold: p.Epsilon, Accept: d <= p.Epsilon}
		}
		if d <= p.EquivalenceMargin {
			return MergeOutcome{Case: 2, Test: TestEquivalence, Stat: d, Threshold: p.EquivalenceMargin, Accept: true}
		}
		res, err := stats.WelchTTest(a, b)
		if err != nil {
			return MergeOutcome{Case: 2, Test: TestWelch, Threshold: p.Alpha}
		}
		return MergeOutcome{Case: 2, Test: TestWelch, Stat: res.P, Threshold: p.Alpha, T: res.T, Accept: res.P >= p.Alpha}

	default:
		// Case 3: an until-state against a next-state (single sample).
		big, x := a, b.Mean()
		if b.N > 1 {
			big, x = b, a.Mean()
		}
		if p.MaxCV > 0 && big.CoefficientOfVariation() > p.MaxCV {
			return MergeOutcome{Case: 3, Test: TestCVGuard, Stat: big.CoefficientOfVariation(), Threshold: p.MaxCV}
		}
		if d := relDiff(big.Mean(), x); d <= p.EquivalenceMargin {
			return MergeOutcome{Case: 3, Test: TestEquivalence, Stat: d, Threshold: p.EquivalenceMargin, Accept: true}
		}
		res, err := stats.OneSampleTTest(big, x)
		if err != nil {
			return MergeOutcome{Case: 3, Test: TestOneSample, Threshold: p.Alpha}
		}
		return MergeOutcome{Case: 3, Test: TestOneSample, Stat: res.P, Threshold: p.Alpha, T: res.T, Accept: res.P >= p.Alpha}
	}
}

// momentsFinite reports whether the accumulator's sums are finite (its
// derived mean and variance then are too).
func momentsFinite(m stats.Moments) bool {
	return !math.IsNaN(m.Sum) && !math.IsInf(m.Sum, 0) &&
		!math.IsNaN(m.SumSq) && !math.IsInf(m.SumSq, 0)
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		if -bb > m {
			m = -bb
		}
	} else if bb > m {
		m = bb
	}
	if m == 0 {
		return 0
	}
	return d / m
}

// Simplify implements the simplify procedure of Section IV on one chain:
// it iteratively substitutes a maximal run of adjacent mergeable states
// ⟨s_i, …, s_{i+j}⟩ with a single state whose assertion is the cascade
// {p_i; p_{i+1}; …; p_{i+j}} and whose power attributes cover the union
// of the merged intervals. It returns a new chain; the input is not
// modified.
func Simplify(c *Chain, policy MergePolicy) *Chain {
	return simplifyWith(plainMerger(policy, phaseSimplify, c.Trace), c)
}

// simplifyWith is Simplify routed through a merger, so SimplifyCtx can
// attach the context's provenance log and counters while the plain
// entry point keeps the policy's boolean fast path.
func simplifyWith(mg merger, c *Chain) *Chain {
	states := make([]*State, len(c.States))
	for i, s := range c.States {
		states[i] = clonedState(s)
	}
	for {
		merged := false
		var out []*State
		i := 0
		for i < len(states) {
			cur := states[i]
			for i+1 < len(states) && mg.mergeable(cur, states[i+1]) {
				cur = mergeAdjacent(cur, states[i+1])
				i++
				merged = true
			}
			out = append(out, cur)
			i++
		}
		states = out
		if !merged {
			break
		}
	}
	for i, s := range states {
		s.ID = i
	}
	return &Chain{Dict: c.Dict, Trace: c.Trace, States: states}
}

// mergeAdjacent folds state b (the immediate successor of a in the chain)
// into a: the cascade concatenates, the intervals concatenate (they are
// adjacent in the trace) and the power attributes pool exactly.
func mergeAdjacent(a, b *State) *State {
	out := clonedState(a)
	// Both a and b are single-alternative at simplify time (join has not
	// run yet); the cascades concatenate.
	out.Alts[0].Seq.Phases = append(out.Alts[0].Seq.Phases, b.Alts[0].Seq.Phases...)
	out.Power.Merge(b.Power)
	// Adjacent intervals coalesce into [start_a, stop_b].
	last := out.Intervals[len(out.Intervals)-1]
	bi := b.Intervals[0]
	out.Intervals[len(out.Intervals)-1] = Interval{Trace: last.Trace, Start: last.Start, Stop: bi.Stop}
	return out
}

// Join implements the join procedure of Section IV: starting from the
// simplified chains it pools every state into one model and iteratively
// collapses any two mergeable states — adjacent or not, from the same or
// different chains. The result can be non-deterministic: a state may
// carry several identical assertions with different successors; Alt
// counts and Transition counts record the multiplicities the HMM needs.
//
// Join deep-copies every chain state on entry (Pool clones): the input
// chains are never modified, so callers may reuse the same chains across
// several merge policies. join_reuse_test.go pins this contract.
func Join(chains []*Chain, policy MergePolicy) *Model {
	if len(chains) == 0 {
		return &Model{Initials: map[int]int{}}
	}
	return JoinPooled(Pool(chains), policy)
}

// Pool flattens simplified chains into one unmerged model: every chain
// state is deep-copied and renumbered with a model-global id (chain k's
// states follow chain k-1's contiguously), the implicit chain transitions
// are materialized, and each chain's first state is recorded as an
// initial. Pooling is pure concatenation — associative in the chain
// order — which is what lets the parallel tree join of internal/pipeline
// assemble partial pools in any grouping and still reproduce the
// sequential Join bit for bit.
func Pool(chains []*Chain) *Model {
	m := &Model{Initials: map[int]int{}}
	if len(chains) > 0 {
		m.Dict = chains[0].Dict
	}
	for _, c := range chains {
		base := len(m.States)
		for _, s := range c.States {
			ns := clonedState(s)
			ns.ID = base + s.ID
			m.States = append(m.States, ns)
		}
		for _, t := range ChainTransitions(c) {
			m.Transitions = append(m.Transitions, Transition{
				From: base + t.From, To: base + t.To, Enabling: t.Enabling, Count: t.Count,
			})
		}
		m.Initials[base]++
	}
	return m
}

// Concat appends pool b to pool a, rebasing b's state ids, transition
// endpoints and initials by a's state count. It takes ownership of both
// inputs (a is extended in place, b's states are adopted without copying)
// and returns a. Concatenating pooled sub-models left to right — in any
// tree grouping — yields exactly Pool of the concatenated chain list.
func Concat(a, b *Model) *Model {
	if a.Dict == nil {
		a.Dict = b.Dict
	}
	base := len(a.States)
	for _, s := range b.States {
		s.ID += base
		a.States = append(a.States, s)
	}
	for _, t := range b.Transitions {
		a.Transitions = append(a.Transitions, Transition{
			From: base + t.From, To: base + t.To, Enabling: t.Enabling, Count: t.Count,
		})
	}
	for id, n := range b.Initials {
		a.Initials[base+id] += n
	}
	return a
}

// JoinPooled runs the order-dependent collapse phases of Join on a pooled
// model (greedy clustering, fixpoint, transition rewiring, reindexing).
// It mutates and returns m. Exported so the parallel tree join can pool
// concurrently and still share this exact merge code path with the
// sequential flow.
func JoinPooled(m *Model, policy MergePolicy) *Model {
	return joinPooledWith(plainMerger(policy, phaseJoin, -1), m)
}

// joinPooledWith is JoinPooled routed through a merger (see
// simplifyWith).
func joinPooledWith(mg merger, m *Model) *Model {
	// Merged state ids are tracked in an alias table and the transitions
	// are rewired once at the end — collapsing is then O(alts), not O(T).
	alias := map[int]int{}

	// Phase 1 — greedy clustering: walk the pooled states in order and
	// fold each into the first already-kept state it is mergeable with.
	// This brings the state count down from O(trace length) to the number
	// of distinct power behaviours in one linear pass.
	kept := 0
	for i := 0; i < len(m.States); {
		merged := false
		for j := 0; j < kept; j++ {
			if mg.mergeable(m.States[j], m.States[i]) {
				collapse(m, alias, j, i)
				merged = true
				break
			}
		}
		if !merged {
			// Keep: move into the kept prefix (it already is — collapse
			// removes merged entries, so position i becomes kept).
			kept++
			i = kept
		}
	}

	// Phase 2 — fixpoint: pooling moved the kept states' means, so pairs
	// that were not mergeable against the early evidence may be now.
	for {
		found := false
		for i := 0; i < len(m.States) && !found; i++ {
			for j := i + 1; j < len(m.States) && !found; j++ {
				if mg.mergeable(m.States[i], m.States[j]) {
					collapse(m, alias, i, j)
					found = true
				}
			}
		}
		if !found {
			break
		}
	}
	resolveTransitions(m, alias)
	reindex(m)
	return m
}

// collapse merges state index bi into state index ai: alternatives union
// (counting duplicates), power pools, intervals concatenate. The merged
// id is recorded in the alias table; transitions are rewired later in one
// pass.
func collapse(m *Model, alias map[int]int, ai, bi int) {
	a, b := m.States[ai], m.States[bi]
	for _, alt := range b.Alts {
		key := alt.Seq.Key()
		merged := false
		for k := range a.Alts {
			if a.Alts[k].Seq.Key() == key {
				a.Alts[k].Count += alt.Count
				merged = true
				break
			}
		}
		if !merged {
			a.Alts = append(a.Alts, Alt{
				Seq:   Sequence{Phases: append([]Phase(nil), alt.Seq.Phases...)},
				Count: alt.Count,
			})
		}
	}
	a.Power.Merge(b.Power)
	a.Intervals = append(a.Intervals, b.Intervals...)

	alias[b.ID] = a.ID
	if n, ok := m.Initials[b.ID]; ok {
		m.Initials[a.ID] += n
		delete(m.Initials, b.ID)
	}
	m.States = append(m.States[:bi], m.States[bi+1:]...)
}

// resolveTransitions chases alias chains on every transition endpoint and
// aggregates the duplicates that merging produced.
func resolveTransitions(m *Model, alias map[int]int) {
	find := func(id int) int {
		for {
			next, ok := alias[id]
			if !ok {
				return id
			}
			// Path compression keeps long merge chains cheap.
			if n2, ok2 := alias[next]; ok2 {
				alias[id] = n2
			}
			id = next
		}
	}
	for i := range m.Transitions {
		m.Transitions[i].From = find(m.Transitions[i].From)
		m.Transitions[i].To = find(m.Transitions[i].To)
	}
	dedupTransitions(m)
}

// dedupTransitions aggregates parallel edges (same from/to/enabling) into
// one transition with a summed count.
func dedupTransitions(m *Model) {
	type key struct{ from, to, enabling int }
	agg := map[key]int{}
	var order []key
	for _, t := range m.Transitions {
		k := key{t.From, t.To, t.Enabling}
		if _, ok := agg[k]; !ok {
			order = append(order, k)
		}
		agg[k] += t.Count
	}
	m.Transitions = m.Transitions[:0]
	for _, k := range order {
		m.Transitions = append(m.Transitions, Transition{From: k.from, To: k.to, Enabling: k.enabling, Count: agg[k]})
	}
}

// reindex renumbers states to 0..n-1 and rewrites transitions and
// initials accordingly.
func reindex(m *Model) {
	remap := map[int]int{}
	for i, s := range m.States {
		remap[s.ID] = i
		s.ID = i
	}
	for i := range m.Transitions {
		m.Transitions[i].From = remap[m.Transitions[i].From]
		m.Transitions[i].To = remap[m.Transitions[i].To]
	}
	newInit := map[int]int{}
	for id, n := range m.Initials {
		newInit[remap[id]] = n
	}
	m.Initials = newInit
}
