package psm

import (
	"bytes"
	"strings"
	"testing"

	"psmkit/internal/stats"
)

var fitForTest = stats.LinearFit{Slope: 2.5, Intercept: 0.25, R: 0.91}

func TestSaveLoadRoundTrip(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, err := Generate(dict, pt, pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := Join([]*Chain{Simplify(c, DefaultMergePolicy())}, DefaultMergePolicy())

	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.NumStates() != m.NumStates() || got.NumTransitions() != m.NumTransitions() {
		t.Fatalf("shape: %d/%d vs %d/%d",
			got.NumStates(), got.NumTransitions(), m.NumStates(), m.NumTransitions())
	}
	for i, s := range m.States {
		gs := got.States[i]
		if gs.Power != s.Power {
			t.Errorf("state %d power attributes differ", i)
		}
		if len(gs.Alts) != len(s.Alts) {
			t.Fatalf("state %d alts differ", i)
		}
		for a := range s.Alts {
			if gs.Alts[a].Seq.Key() != s.Alts[a].Seq.Key() || gs.Alts[a].Count != s.Alts[a].Count {
				t.Errorf("state %d alt %d differs", i, a)
			}
		}
		if len(gs.Intervals) != len(s.Intervals) {
			t.Errorf("state %d intervals differ", i)
		}
	}
	for i, tr := range m.Transitions {
		if got.Transitions[i] != tr {
			t.Errorf("transition %d differs", i)
		}
	}
	for id, n := range m.Initials {
		if got.Initials[id] != n {
			t.Errorf("initials[%d] differ", id)
		}
	}
	// The embedded dictionary survives: propositions render identically.
	for p := 0; p < dict.NumProps(); p++ {
		if got.Dict.PropString(p) != m.Dict.PropString(p) {
			t.Errorf("proposition %d renders differently", p)
		}
	}
}

func TestSaveLoadPreservesCalibration(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, _ := Generate(dict, pt, pw, 0)
	m := Join([]*Chain{c}, DefaultMergePolicy())
	// Attach a synthetic fit to exercise the optional field.
	m.States[0].Fit = &fitForTest
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.States[0].Fit == nil || *got.States[0].Fit != fitForTest {
		t.Error("fit lost in round trip")
	}
	for _, s := range got.States[1:] {
		if s.Fit != nil {
			t.Error("spurious fit appeared")
		}
	}
}

// TestSaveDeterministic pins byte-identical Save output for the same
// model. The initial distribution used to be gob-encoded as a map —
// randomized iteration order made two saves of one model differ, which
// breaks artifact diffing and the parallel-pipeline byte-equality
// guarantee. A multi-entry distribution is the regression trigger.
func TestSaveDeterministic(t *testing.T) {
	dict, pt, pw := fig3(t)
	c1, err := Generate(dict, pt, pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(dict, pt, pw, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A strict policy keeps the chains' start states apart so Initials
	// holds several entries.
	strict := MergePolicy{Epsilon: 1e-12, Alpha: 0.999999, EquivalenceMargin: 1e-12}
	m := Join([]*Chain{c1, c2}, strict)

	var first bytes.Buffer
	if err := Save(&first, m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := Save(&again, m); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), again.Bytes()) {
			t.Fatalf("save %d produced different bytes for the same model", i)
		}
	}
	got, err := Load(&first)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Initials) != len(m.Initials) {
		t.Fatalf("initials lost: %d vs %d", len(got.Initials), len(m.Initials))
	}
	for id, n := range m.Initials {
		if got.Initials[id] != n {
			t.Errorf("initials[%d] = %d, want %d", id, got.Initials[id], n)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}
