package psm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"psmkit/internal/mining"
	"psmkit/internal/stats"
)

// reuseChains builds two small chains with power attributes arranged so
// the default policy merges states both within and across chains.
func reuseChains() []*Chain {
	dict := &mining.Dictionary{}
	mk := func(traceIdx int, means ...float64) *Chain {
		c := &Chain{Dict: dict, Trace: traceIdx}
		for i, mu := range means {
			var m stats.Moments
			m.AddAll([]float64{mu, mu * 1.001, mu * 0.999})
			c.States = append(c.States, &State{
				ID:        i,
				Alts:      []Alt{{Seq: Sequence{Phases: []Phase{{Prop: i % 3, Kind: Until}}}, Count: 1}},
				Power:     m,
				Intervals: []Interval{{Trace: traceIdx, Start: i * 3, Stop: i*3 + 2}},
				Fit:       &stats.LinearFit{Slope: 1, Intercept: float64(i), R: 0.9},
			})
		}
		return c
	}
	return []*Chain{mk(0, 1, 5, 1.01, 9), mk(1, 5.01, 1, 9.02, 5)}
}

// deepSnapshot serializes every exported field of the chains' states so a
// before/after comparison catches any in-place modification.
func deepSnapshot(t *testing.T, chains []*Chain) []byte {
	t.Helper()
	type snap struct {
		Trace  int
		States []State
	}
	var out []snap
	for _, c := range chains {
		s := snap{Trace: c.Trace}
		for _, st := range c.States {
			s.States = append(s.States, *st)
		}
		out = append(out, s)
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJoinDoesNotMutateChains is the regression test for the join
// aliasing hazard: collapse/reindex operate on pooled state copies, never
// on the callers' chains, so the same chains can feed several policies.
func TestJoinDoesNotMutateChains(t *testing.T) {
	chains := reuseChains()
	before := deepSnapshot(t, chains)
	m := Join(chains, DefaultMergePolicy())
	if !bytes.Equal(before, deepSnapshot(t, chains)) {
		t.Fatal("Join modified its input chains")
	}

	// Deep-aliasing probe: mutating the returned model's states through
	// every reference path must leave the chains untouched. A shallow
	// clone that shared Alts/Phases/Intervals/Fit backing storage would
	// fail here even though the snapshot above still matched.
	for _, s := range m.States {
		s.ID += 1000
		s.Power.Add(123456)
		for k := range s.Alts {
			s.Alts[k].Count += 7
			for p := range s.Alts[k].Seq.Phases {
				s.Alts[k].Seq.Phases[p].Prop = 99
			}
		}
		for k := range s.Intervals {
			s.Intervals[k].Start = -1
		}
		if s.Fit != nil {
			s.Fit.Slope = -42
		}
	}
	if !bytes.Equal(before, deepSnapshot(t, chains)) {
		t.Fatal("Join's model aliases its input chains' state storage")
	}
}

// TestJoinChainReuseAcrossPolicies reuses one chain set across different
// merge policies: each Join must behave as if it ran on freshly built
// chains.
func TestJoinChainReuseAcrossPolicies(t *testing.T) {
	loose := DefaultMergePolicy()
	// A high Alpha demands p ≥ Alpha to merge, so near-identical samples
	// still pool but the 0.1–1 % apart clusters stay split.
	strict := MergePolicy{Epsilon: 1e-9, Alpha: 0.999999, EquivalenceMargin: 1e-12}

	shared := reuseChains()
	mLoose := Join(shared, loose)
	mStrict := Join(shared, strict)

	freshLoose := Join(reuseChains(), loose)
	freshStrict := Join(reuseChains(), strict)

	if !reflect.DeepEqual(modelFingerprint(mLoose), modelFingerprint(freshLoose)) {
		t.Error("reused chains gave a different model under the loose policy")
	}
	if !reflect.DeepEqual(modelFingerprint(mStrict), modelFingerprint(freshStrict)) {
		t.Error("reused chains gave a different model under the strict policy")
	}
	if len(mStrict.States) <= len(mLoose.States) {
		t.Errorf("strict policy should keep more states (loose %d, strict %d)",
			len(mLoose.States), len(mStrict.States))
	}
}

// TestSimplifyDoesNotMutateChain pins the same contract for Simplify.
func TestSimplifyDoesNotMutateChain(t *testing.T) {
	chains := reuseChains()
	before := deepSnapshot(t, chains)
	out := Simplify(chains[0], DefaultMergePolicy())
	for _, s := range out.States {
		s.Power.Add(1e9)
		for k := range s.Alts {
			s.Alts[k].Seq.Phases[0].Prop = 77
		}
	}
	if !bytes.Equal(before, deepSnapshot(t, chains)) {
		t.Fatal("Simplify modified or aliased its input chain")
	}
}

// modelFingerprint reduces a model to comparable structure: state power
// attributes, alternatives and transition tuples in export order.
func modelFingerprint(m *Model) [][2]string {
	var out [][2]string
	for _, s := range m.sortedStates() {
		var alts string
		for _, a := range s.Alts {
			alts += a.Seq.Key() + "|"
		}
		out = append(out, [2]string{"s", alts})
	}
	for _, tr := range m.sortedTransitions() {
		out = append(out, [2]string{"t", fmt.Sprintf("%d>%d@%d x%d", tr.From, tr.To, tr.Enabling, tr.Count)})
	}
	return out
}
