// Package psm is the paper's primary contribution: automatic generation of
// Power State Machines from mined temporal assertions.
//
// The pipeline mirrors Sections III and IV of the paper:
//
//	Generate  — the PSMGenerator procedure (Fig. 4): drive the two-state
//	            XU automaton (Fig. 5) over a proposition trace, emitting a
//	            chain of power states — one per recognized `p until q` or
//	            `p next q` temporal assertion — annotated with the power
//	            attributes ⟨μ, σ, n⟩ measured on the reference power trace.
//	Simplify  — merge adjacent, power-mergeable states of one chain.
//	Join      — merge mergeable states across chains, producing the final
//	            (possibly non-deterministic) PSM set as a single Model.
//	Calibrate — replace the constant μ of data-dependent states (high σ)
//	            with a linear function of the primary-input Hamming
//	            distance, when the correlation is strong.
//
// A Model is simulated concurrently with the IP by package powersim,
// backed by the HMM of package hmm for non-deterministic choices and
// resynchronization.
package psm

import (
	"fmt"
	"strings"

	"psmkit/internal/mining"
	"psmkit/internal/stats"
)

// PatternKind distinguishes the two temporal patterns of Section III-B.
type PatternKind int

const (
	// Until is the pattern s_i U s_j: the IP stays in a stable condition
	// for at least two instants before s_j appears.
	Until PatternKind = iota
	// Next is the pattern s_i X s_j: a single-instant condition followed
	// immediately by s_j.
	Next
)

func (k PatternKind) String() string {
	if k == Until {
		return "U"
	}
	return "X"
}

// Phase is one step of a state's characterizing assertion: proposition
// Prop holding with the given temporal pattern.
type Phase struct {
	Prop int
	Kind PatternKind
}

// Sequence is a cascade of phases {p_i; p_{i+1}; …} (the result of
// simplify merges, Section IV): each phase must be satisfied after the
// previous one ends.
type Sequence struct {
	Phases []Phase
}

// Key returns a canonical identity for the sequence, used to detect
// duplicate assertions when join collapses states (they feed the HMM's B
// matrix).
func (s Sequence) Key() string {
	var sb strings.Builder
	for i, p := range s.Phases {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d%s", p.Prop, p.Kind)
	}
	return sb.String()
}

// String renders the sequence with the dictionary's proposition names.
func (s Sequence) String(d *mining.Dictionary) string {
	var parts []string
	for _, p := range s.Phases {
		parts = append(parts, fmt.Sprintf("(%s)%s", d.PropString(p.Prop), p.Kind))
	}
	return strings.Join(parts, " ; ")
}

// Alt is one alternative assertion of a state together with its join
// multiplicity (how many merged states contributed this exact sequence).
type Alt struct {
	Seq   Sequence
	Count int
}

// Interval locates a state's supporting evidence in a training trace.
type Interval struct {
	Trace int // index of the training trace
	Start int // first instant where the assertion holds
	Stop  int // last instant (inclusive)
}

// State is a power state: one or more alternative temporal assertions
// ({p_i || p_j || …} after join, each possibly a cascade {…;…} after
// simplify), the power attributes, and an optional Hamming-distance
// regression for data-dependent states.
type State struct {
	ID    int
	Alts  []Alt
	Power stats.Moments // exact ⟨n, Σδ, Σδ²⟩ ⇒ ⟨μ, σ, n⟩ on demand
	// Intervals lists the supporting evidence; start/stop arrays of the
	// paper's join are recovered from here.
	Intervals []Interval
	// Fit, when non-nil, replaces the constant μ with
	// power = Intercept + Slope·HD(inputs_t, inputs_t-1).
	Fit *stats.LinearFit
}

// Mean returns the state's constant power output ω(s) = μ.
func (s *State) Mean() float64 { return s.Power.Mean() }

// Estimate returns the state's power estimate given the current primary-
// input Hamming distance — the regression if the state was calibrated,
// the constant mean otherwise.
func (s *State) Estimate(inputHD float64) float64 {
	if s.Fit != nil {
		return s.Fit.Predict(inputHD)
	}
	return s.Power.Mean()
}

// FirstProps returns the set of propositions that can open the state (the
// first phase of each alternative). A state is enterable at an instant
// only if one of these holds.
func (s *State) FirstProps() []int {
	seen := map[int]bool{}
	var out []int
	for _, a := range s.Alts {
		p := a.Seq.Phases[0].Prop
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// HasAlt reports whether the state carries an alternative with the given
// sequence key.
func (s *State) HasAlt(key string) bool {
	for _, a := range s.Alts {
		if a.Seq.Key() == key {
			return true
		}
	}
	return false
}

// Transition is a PSM edge: leaving From for To when the Enabling
// proposition becomes true. Count is the number of source-chain edges the
// transition aggregates (the HMM's A matrix is built from it).
type Transition struct {
	From     int
	To       int
	Enabling int
	Count    int
}

// Chain is the output of the PSMGenerator for one training trace: a PSM
// in the form of a chain of states where each state has a unique
// successor and predecessor (Section III-C). The transition from state i
// to state i+1 is enabled by the first proposition of state i+1.
type Chain struct {
	Dict   *mining.Dictionary
	Trace  int // index of the originating training trace
	States []*State
}

// Model is the combined, optimized PSM set (the paper's P^opt) flattened
// into one state graph: states, aggregated transitions, and the initial
// states of the source chains with their multiplicities.
type Model struct {
	Dict        *mining.Dictionary
	States      []*State
	Transitions []Transition
	// Initials maps state id → number of training chains that began
	// there; it seeds the HMM's π vector.
	Initials map[int]int
}

// NumStates returns the number of power states.
func (m *Model) NumStates() int { return len(m.States) }

// NumTransitions returns the number of distinct transitions (aggregated
// edges count once).
func (m *Model) NumTransitions() int { return len(m.Transitions) }

// OutgoingEnabled returns the transitions leaving state id whose enabling
// proposition is prop.
func (m *Model) OutgoingEnabled(id, prop int) []Transition {
	var out []Transition
	for _, t := range m.Transitions {
		if t.From == id && t.Enabling == prop {
			out = append(out, t)
		}
	}
	return out
}

// CloneModel deep-copies a model: states (sharing nothing mutable),
// transitions and initials. The dictionary is shared — it is immutable
// once published. The streaming engine snapshots its live pooled model
// through this before running the mutating JoinPooled collapse, so the
// pool keeps accepting Concat folds while snapshots are served.
func CloneModel(m *Model) *Model {
	out := &Model{
		Dict:        m.Dict,
		States:      make([]*State, len(m.States)),
		Transitions: append([]Transition(nil), m.Transitions...),
		Initials:    make(map[int]int, len(m.Initials)),
	}
	for i, s := range m.States {
		out.States[i] = clonedState(s)
	}
	for id, n := range m.Initials {
		out.Initials[id] = n
	}
	return out
}

// clonedState deep-copies a state (sharing nothing mutable).
func clonedState(s *State) *State {
	ns := &State{
		ID:        s.ID,
		Alts:      make([]Alt, len(s.Alts)),
		Power:     s.Power,
		Intervals: append([]Interval(nil), s.Intervals...),
	}
	for i, a := range s.Alts {
		ns.Alts[i] = Alt{Seq: Sequence{Phases: append([]Phase(nil), a.Seq.Phases...)}, Count: a.Count}
	}
	if s.Fit != nil {
		f := *s.Fit
		ns.Fit = &f
	}
	return ns
}
