package psm

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/stats"
	"psmkit/internal/trace"
)

// fig3 builds the functional, proposition and power traces of the paper's
// Fig. 3 (see mining's golden test for the functional-trace layout).
func fig3(t *testing.T) (*mining.Dictionary, *mining.PropTrace, *trace.Power) {
	t.Helper()
	f := trace.NewFunctional([]trace.Signal{
		{Name: "v1", Width: 1}, {Name: "v2", Width: 1},
		{Name: "v3", Width: 4}, {Name: "v4", Width: 4},
	})
	rows := [][4]uint64{
		{1, 0, 3, 1}, {1, 0, 3, 1}, {1, 0, 3, 1},
		{0, 1, 3, 3}, {0, 1, 4, 4}, {0, 1, 2, 2},
		{1, 1, 0, 0}, {1, 1, 3, 1},
	}
	for _, r := range rows {
		f.Append([]logic.Vector{
			logic.FromUint64(1, r[0]), logic.FromUint64(1, r[1]),
			logic.FromUint64(4, r[2]), logic.FromUint64(4, r[3]),
		})
	}
	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.Config{MinSupport: 0.1, MinRunLength: 2})
	if err != nil {
		t.Fatal(err)
	}
	pw := &trace.Power{Values: []float64{3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343}}
	return dict, pts[0], pw
}

// TestFig5PSMGenerator is the golden reproduction of the paper's Fig. 5:
// the XU automaton over the Fig. 3 proposition trace must recognize
// ⟨p_a U p_b, 0, 2⟩, ⟨p_b U p_c, 3, 5⟩ and the next-pattern p_c X p_d,
// yielding a three-state chain with transitions enabled by p_b and p_c.
func TestFig5PSMGenerator(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, err := Generate(dict, pt, pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.States) != 3 {
		t.Fatalf("states = %d, want 3", len(c.States))
	}
	pa, pb, pc := pt.IDs[0], pt.IDs[3], pt.IDs[6]

	s0 := c.States[0]
	if got := s0.Alts[0].Seq.Phases[0]; got.Prop != pa || got.Kind != Until {
		t.Errorf("s0 phase = %+v, want until(p_a)", got)
	}
	if iv := s0.Intervals[0]; iv.Start != 0 || iv.Stop != 2 {
		t.Errorf("s0 interval = %+v, want [0,2]", iv)
	}
	if s0.Power.N != 3 {
		t.Errorf("s0 n = %d, want 3", s0.Power.N)
	}
	wantMu := (3.349 + 3.339 + 3.353) / 3
	if math.Abs(s0.Mean()-wantMu) > 1e-12 {
		t.Errorf("s0 μ = %g, want %g", s0.Mean(), wantMu)
	}

	s1 := c.States[1]
	if got := s1.Alts[0].Seq.Phases[0]; got.Prop != pb || got.Kind != Until {
		t.Errorf("s1 phase = %+v, want until(p_b)", got)
	}
	if iv := s1.Intervals[0]; iv.Start != 3 || iv.Stop != 5 {
		t.Errorf("s1 interval = %+v", iv)
	}

	s2 := c.States[2]
	if got := s2.Alts[0].Seq.Phases[0]; got.Prop != pc || got.Kind != Next {
		t.Errorf("s2 phase = %+v, want next(p_c)", got)
	}
	if s2.Power.N != 1 {
		t.Errorf("s2 n = %d, want 1 (Case 1 of Sec. IV-A requires n=1 for next-states)", s2.Power.N)
	}
	if math.Abs(s2.Mean()-3.350) > 1e-12 {
		t.Errorf("s2 μ = %g, want 3.350", s2.Mean())
	}

	// Transitions: s0 --p_b--> s1 --p_c--> s2.
	ts := ChainTransitions(c)
	if len(ts) != 2 {
		t.Fatalf("transitions = %d, want 2", len(ts))
	}
	if ts[0].Enabling != pb || ts[1].Enabling != pc {
		t.Errorf("enabling = %d,%d want %d,%d", ts[0].Enabling, ts[1].Enabling, pb, pc)
	}
}

func TestGenerateErrors(t *testing.T) {
	dict, pt, pw := fig3(t)
	if _, err := Generate(dict, &mining.PropTrace{}, pw, 0); err == nil {
		t.Error("empty proposition trace accepted")
	}
	if _, err := Generate(dict, pt, &trace.Power{Values: []float64{1}}, 0); err == nil {
		t.Error("short power trace accepted")
	}
	single := &mining.PropTrace{IDs: []int{0}}
	if _, err := Generate(dict, single, pw, 0); err == nil {
		t.Error("single-instant trace should expose no pattern")
	}
}

func TestGenerateAllSameProposition(t *testing.T) {
	dict, _, pw := fig3(t)
	pt := &mining.PropTrace{IDs: []int{4, 4, 4, 4, 4}}
	// One run reaching the end of the trace: no successor, no state.
	if _, err := Generate(dict, pt, pw, 0); err == nil {
		t.Error("uniform trace should yield no states")
	}
}

// --- mergeability -----------------------------------------------------------

func momentsConst(v float64, n int) stats.Moments {
	var m stats.Moments
	for i := 0; i < n; i++ {
		m.Add(v)
	}
	return m
}

func momentsJitter(v float64, n int, amp float64) stats.Moments {
	var m stats.Moments
	for i := 0; i < n; i++ {
		x := v * (1 + amp*float64(i%3-1))
		m.Add(x)
	}
	return m
}

func TestMergeableCase1(t *testing.T) {
	p := DefaultMergePolicy()
	a := momentsConst(10, 1)
	if !p.Mergeable(a, momentsConst(10.2, 1)) {
		t.Error("2% apart next-states should merge at ε=5%")
	}
	if p.Mergeable(a, momentsConst(12, 1)) {
		t.Error("20% apart next-states merged")
	}
}

func TestMergeableCase2(t *testing.T) {
	p := MergePolicy{Alpha: 0.05, EquivalenceMargin: 0, MaxCV: 0.5}
	a := momentsJitter(10, 30, 0.02)
	b := momentsJitter(10, 30, 0.02)
	if !p.Mergeable(a, b) {
		t.Error("identically distributed until-states should merge")
	}
	c := momentsJitter(20, 30, 0.02)
	if p.Mergeable(a, c) {
		t.Error("2x power until-states merged")
	}
}

func TestMergeableCase2LargeNEquivalenceMargin(t *testing.T) {
	// Two big samples whose means differ by 0.5%: Welch rejects (huge n),
	// the equivalence margin must step in.
	a := momentsJitter(10, 5000, 0.01)
	b := momentsJitter(10.05, 5000, 0.01)
	strict := MergePolicy{Alpha: 0.05, EquivalenceMargin: 0, MaxCV: 1}
	if strict.Mergeable(a, b) {
		t.Skip("Welch did not reject; margin not exercised")
	}
	relaxed := MergePolicy{Alpha: 0.05, EquivalenceMargin: 0.02, MaxCV: 1}
	if !relaxed.Mergeable(a, b) {
		t.Error("equivalence margin did not rescue near-identical states")
	}
}

func TestMergeableCase3(t *testing.T) {
	p := MergePolicy{Alpha: 0.05, EquivalenceMargin: 0, MaxCV: 0.5}
	until := momentsJitter(10, 30, 0.05)
	if !p.Mergeable(until, momentsConst(10.1, 1)) {
		t.Error("in-distribution next-state should merge into until-state")
	}
	if p.Mergeable(until, momentsConst(30, 1)) {
		t.Error("far-out next-state merged")
	}
	// symmetric argument order
	if !p.Mergeable(momentsConst(10.1, 1), until) {
		t.Error("Case 3 should be symmetric")
	}
}

func TestMergeableCVGuard(t *testing.T) {
	p := MergePolicy{Alpha: 0.05, EquivalenceMargin: 0.5, MaxCV: 0.1}
	noisy := momentsJitter(10, 30, 0.5) // CV ≈ 0.4
	calm := momentsJitter(10, 30, 0.01)
	if p.Mergeable(noisy, calm) {
		t.Error("high-σ state merged despite CV guard")
	}
}

func TestMergeableEmpty(t *testing.T) {
	p := DefaultMergePolicy()
	if p.Mergeable(stats.Moments{}, momentsConst(1, 1)) {
		t.Error("empty moments mergeable")
	}
}

// --- simplify (Fig. 6a) -------------------------------------------------------

// simplifyFixture builds a chain with four runs whose power profile makes
// exactly the first two states mergeable: p0 (μ≈1) p1 (μ≈1) p2 (μ≈5).
func simplifyFixture(t *testing.T) (*Chain, *mining.Dictionary) {
	t.Helper()
	f := trace.NewFunctional([]trace.Signal{{Name: "m0", Width: 1}, {Name: "m1", Width: 1}})
	add := func(m0, m1 uint64, n int) {
		for i := 0; i < n; i++ {
			f.Append([]logic.Vector{logic.FromUint64(1, m0), logic.FromUint64(1, m1)})
		}
	}
	add(0, 0, 4) // run A
	add(0, 1, 4) // run B (same power as A)
	add(1, 0, 4) // run C (higher power)
	add(1, 1, 2) // terminator run
	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pw := &trace.Power{Values: []float64{
		1.00, 1.01, 0.99, 1.00,
		1.01, 1.00, 1.00, 0.99,
		5.00, 5.05, 4.95, 5.00,
		5.00, 5.00,
	}}
	c, err := Generate(dict, pts[0], pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, dict
}

func TestFig6Simplify(t *testing.T) {
	c, _ := simplifyFixture(t)
	if len(c.States) != 3 {
		t.Fatalf("precondition: chain has %d states, want 3", len(c.States))
	}
	s := Simplify(c, DefaultMergePolicy())
	if len(s.States) != 2 {
		t.Fatalf("simplified states = %d, want 2", len(s.States))
	}
	merged := s.States[0]
	// Cascade {p_A; p_B} like Fig. 6(a).
	if len(merged.Alts) != 1 || len(merged.Alts[0].Seq.Phases) != 2 {
		t.Fatalf("merged state alts/phases wrong: %+v", merged.Alts)
	}
	// Power attributes recomputed over the union [0,7].
	if merged.Power.N != 8 {
		t.Errorf("merged n = %d, want 8", merged.Power.N)
	}
	if iv := merged.Intervals[0]; iv.Start != 0 || iv.Stop != 7 {
		t.Errorf("merged interval = %+v, want [0,7]", iv)
	}
	wantMu := (1.00 + 1.01 + 0.99 + 1.00 + 1.01 + 1.00 + 1.00 + 0.99) / 8
	if math.Abs(merged.Power.Mean()-wantMu) > 1e-12 {
		t.Errorf("merged μ = %g, want %g", merged.Power.Mean(), wantMu)
	}
	// The original chain is untouched.
	if len(c.States) != 3 {
		t.Error("Simplify mutated its input")
	}
	// IDs renumbered.
	if s.States[0].ID != 0 || s.States[1].ID != 1 {
		t.Errorf("ids not renumbered: %d, %d", s.States[0].ID, s.States[1].ID)
	}
}

func TestSimplifyNothingToMerge(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, err := Generate(dict, pt, pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	// fig3 power: 3.35 / 1.9 / 3.35 — adjacent states differ.
	s := Simplify(c, DefaultMergePolicy())
	if len(s.States) != len(c.States) {
		t.Errorf("states merged unexpectedly: %d -> %d", len(c.States), len(s.States))
	}
}

// --- join (Fig. 6b) -----------------------------------------------------------

func TestFig6Join(t *testing.T) {
	// Two chains from two traces with the same structure: join must
	// collapse the power-equivalent states across chains.
	mkChain := func(traceIdx int) *Chain {
		f := trace.NewFunctional([]trace.Signal{{Name: "m0", Width: 1}, {Name: "m1", Width: 1}})
		add := func(m0, m1 uint64, n int) {
			for i := 0; i < n; i++ {
				f.Append([]logic.Vector{logic.FromUint64(1, m0), logic.FromUint64(1, m1)})
			}
		}
		add(0, 0, 4)
		add(1, 0, 4)
		add(1, 1, 2)
		dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		pw := &trace.Power{Values: []float64{
			1.00, 1.01, 0.99, 1.00,
			5.00, 5.05, 4.95, 5.00,
			5.00, 5.00,
		}}
		c, err := Generate(dict, pts[0], pw, traceIdx)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c0, c1 := mkChain(0), mkChain(1)
	m := Join([]*Chain{c0, c1}, DefaultMergePolicy())

	// Both chains have states (idle μ≈1, busy μ≈5); join collapses the
	// equivalents pairwise: 4 pooled states → 2.
	if m.NumStates() != 2 {
		t.Fatalf("joined states = %d, want 2", m.NumStates())
	}
	// The collapsed idle state carries the assertion once per chain.
	var idle, busy *State
	for _, s := range m.States {
		if s.Power.Mean() < 2 {
			idle = s
		} else {
			busy = s
		}
	}
	if idle == nil || busy == nil {
		t.Fatal("missing idle or busy state")
	}
	if len(idle.Alts) != 1 || idle.Alts[0].Count != 2 {
		t.Errorf("idle alts = %+v, want one assertion with count 2", idle.Alts)
	}
	if idle.Power.N != 8 {
		t.Errorf("idle pooled n = %d, want 8", idle.Power.N)
	}
	if len(idle.Intervals) != 2 {
		t.Errorf("idle intervals = %+v, want one per chain", idle.Intervals)
	}
	// Both chains started in the idle state: π mass 2.
	if m.Initials[idle.ID] != 2 {
		t.Errorf("initials = %v", m.Initials)
	}
	// The duplicate transitions aggregated: idle→busy with count 2.
	ts := m.OutgoingEnabled(idle.ID, busy.Alts[0].Seq.Phases[0].Prop)
	if len(ts) != 1 || ts[0].Count != 2 {
		t.Errorf("aggregated transition = %+v", ts)
	}
}

func TestJoinKeepsDistinctPower(t *testing.T) {
	c, _ := simplifyFixture(t)
	s := Simplify(c, DefaultMergePolicy())
	m := Join([]*Chain{s}, DefaultMergePolicy())
	if m.NumStates() != 2 {
		t.Errorf("states = %d, want 2 (1 vs 5 power must stay apart)", m.NumStates())
	}
}

func TestJoinEmpty(t *testing.T) {
	m := Join(nil, DefaultMergePolicy())
	if m.NumStates() != 0 {
		t.Error("empty join should be empty")
	}
}

// --- calibration ---------------------------------------------------------------

func TestCalibrateDataDependentState(t *testing.T) {
	// A "write burst" whose power is 2 + 3*HD(inputs): the state's CV is
	// high and the regression must recover the line.
	f := trace.NewFunctional([]trace.Signal{{Name: "we", Width: 1}, {Name: "data", Width: 8}})
	var pwv []float64
	// idle preamble
	for i := 0; i < 5; i++ {
		f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
		pwv = append(pwv, 0.5)
	}
	// write burst with data toggling a varying number of bits
	patterns := []uint64{0x00, 0xff, 0x0f, 0xff, 0x01, 0x03, 0xff, 0x00, 0xaa, 0x55, 0xf0, 0x0f}
	for _, d := range patterns {
		f.Append([]logic.Vector{logic.FromUint64(1, 1), logic.FromUint64(8, d)})
		// Power is filled in below from the exact input Hamming distances
		// (the we toggle at the burst boundary counts toward the HD too).
		pwv = append(pwv, 0)
	}
	// terminator
	f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
	pwv = append(pwv, 0.5)
	f.Append([]logic.Vector{logic.FromUint64(1, 0), logic.FromUint64(8, 0)})
	pwv = append(pwv, 0.5)

	inputCols := []int{f.Column("we"), f.Column("data")}
	hds := f.InputHammingDistance(inputCols)
	for t2 := 5; t2 < 5+len(patterns); t2++ {
		pwv[t2] = 2 + 3*hds[t2]
	}

	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pw := &trace.Power{Values: pwv}
	c, err := Generate(dict, pts[0], pw, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := Join([]*Chain{Simplify(c, DefaultMergePolicy())}, DefaultMergePolicy())

	n := Calibrate(m, []*trace.Functional{f}, []*trace.Power{pw}, inputCols, DefaultCalibrationPolicy())
	if n < 1 {
		t.Fatalf("calibrated %d states, want at least the burst state", n)
	}
	fits := 0
	for _, s := range m.States {
		if s.Fit == nil {
			if got := s.Estimate(4); got != s.Power.Mean() {
				t.Errorf("uncalibrated Estimate should be μ")
			}
			continue
		}
		fits++
		// Every calibrated state sits on the exact synthetic line.
		if math.Abs(s.Fit.Slope-3) > 1e-9 || math.Abs(s.Fit.Intercept-2) > 1e-9 {
			t.Errorf("fit = %+v, want slope 3 intercept 2", s.Fit)
		}
		if got := s.Estimate(4); math.Abs(got-14) > 1e-9 {
			t.Errorf("Estimate(4) = %g, want 14", got)
		}
	}
	if fits != n {
		t.Errorf("Calibrate reported %d but %d states carry fits", n, fits)
	}
}

func TestCalibrateSkipsLowCV(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, _ := Generate(dict, pt, pw, 0)
	m := Join([]*Chain{c}, DefaultMergePolicy())
	// fig3's states have tiny spreads: nothing to calibrate.
	if n := Calibrate(m, nil, nil, nil, DefaultCalibrationPolicy()); n != 0 {
		t.Errorf("calibrated %d states on low-CV model", n)
	}
}

// --- Fig. 2: hand-built example PSM ---------------------------------------------

// TestFig2ExamplePSM reproduces the paper's Fig. 2 example — a PSM with
// off (0 mW), idle (15 mW) and run (100 mW) states guarded by on/ready/
// start inputs — through the public construction APIs, and checks the
// output function and exports.
func TestFig2ExamplePSM(t *testing.T) {
	f := trace.NewFunctional([]trace.Signal{
		{Name: "on", Width: 1}, {Name: "ready", Width: 1}, {Name: "start", Width: 1},
	})
	add := func(on, ready, start uint64, n int) {
		for i := 0; i < n; i++ {
			f.Append([]logic.Vector{
				logic.FromUint64(1, on), logic.FromUint64(1, ready), logic.FromUint64(1, start),
			})
		}
	}
	var pwv []float64
	addP := func(v float64, n int) {
		for i := 0; i < n; i++ {
			pwv = append(pwv, v)
		}
	}
	add(0, 0, 0, 5) // off
	addP(0.000, 5)
	add(1, 1, 0, 5) // idle
	addP(0.015, 5)
	add(1, 1, 1, 5) // run
	addP(0.100, 5)
	add(1, 1, 0, 3) // idle again
	addP(0.015, 3)
	add(0, 0, 0, 2) // off (terminator)
	addP(0.000, 2)

	dict, pts, err := mining.Mine([]*trace.Functional{f}, mining.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := Generate(dict, pts[0], &trace.Power{Values: pwv}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := Join([]*Chain{Simplify(c, DefaultMergePolicy())}, DefaultMergePolicy())

	// off / idle / run / idle with idle states joined: 3 states.
	if m.NumStates() != 3 {
		t.Fatalf("states = %d, want 3 (off, idle, run)", m.NumStates())
	}
	var means []float64
	for _, s := range m.States {
		means = append(means, s.Power.Mean())
	}
	found := map[string]bool{}
	for _, mu := range means {
		switch {
		case mu < 0.001:
			found["off"] = true
		case math.Abs(mu-0.015) < 0.001:
			found["idle"] = true
		case math.Abs(mu-0.100) < 0.001:
			found["run"] = true
		}
	}
	for _, name := range []string{"off", "idle", "run"} {
		if !found[name] {
			t.Errorf("missing %s state (means: %v)", name, means)
		}
	}
}

// --- exports -------------------------------------------------------------------

func TestWriteDOT(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, _ := Generate(dict, pt, pw, 0)
	// A no-merge policy keeps the three Fig. 5 states distinct in the DOT.
	m := Join([]*Chain{c}, MergePolicy{Alpha: 1.1})
	var buf bytes.Buffer
	if err := m.WriteDOT(&buf, "fig5"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "s0", "s1", "s2", "->", "peripheries=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	dict, pt, pw := fig3(t)
	c, _ := Generate(dict, pt, pw, 0)
	m := Join([]*Chain{c}, DefaultMergePolicy())
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"states"`, `"transitions"`, `"mu"`, `"enabling"`, `"initials"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestSequenceKeyAndString(t *testing.T) {
	s := Sequence{Phases: []Phase{{Prop: 3, Kind: Until}, {Prop: 1, Kind: Next}}}
	if s.Key() != "3U;1X" {
		t.Errorf("Key = %q", s.Key())
	}
	s2 := Sequence{Phases: []Phase{{Prop: 3, Kind: Until}, {Prop: 1, Kind: Until}}}
	if s.Key() == s2.Key() {
		t.Error("different kinds produced equal keys")
	}
}

func TestFirstProps(t *testing.T) {
	st := &State{Alts: []Alt{
		{Seq: Sequence{Phases: []Phase{{Prop: 2, Kind: Until}}}},
		{Seq: Sequence{Phases: []Phase{{Prop: 2, Kind: Next}}}},
		{Seq: Sequence{Phases: []Phase{{Prop: 5, Kind: Until}}}},
	}}
	fp := st.FirstProps()
	if len(fp) != 2 || fp[0] != 2 || fp[1] != 5 {
		t.Errorf("FirstProps = %v", fp)
	}
}
