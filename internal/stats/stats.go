// Package stats implements the statistical machinery the PSM flow depends
// on: streaming moment accumulators (Welford), exact pooling of moments for
// state merging, the Student-t distribution (via the regularized incomplete
// beta function), Welch's two-sample t-test (mergeability Case 2 of the
// paper), the one-sample t-test against a single observation (Case 3),
// Pearson correlation and least-squares linear regression (Hamming-distance
// power calibration).
//
// Everything is implemented from first principles on top of the standard
// library, since the flow must run offline with no external dependencies.
package stats

import (
	"errors"
	"math"
)

// Moments accumulates count, sum and sum of squares of a sample. It is the
// canonical representation of a PSM state's power attributes: mean and
// standard deviation are derived on demand, and two Moments can be pooled
// exactly — which is how simplify/join recompute μ and σ of merged states
// without re-reading the power trace.
type Moments struct {
	N     int     // number of observations
	Sum   float64 // Σx
	SumSq float64 // Σx²
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.N++
	m.Sum += x
	m.SumSq += x * x
}

// AddAll incorporates a slice of observations.
func (m *Moments) AddAll(xs []float64) {
	for _, x := range xs {
		m.Add(x)
	}
}

// Merge pools another accumulator into m. Pooling is exact: the result is
// identical to having accumulated both samples into a single Moments.
func (m *Moments) Merge(o Moments) {
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
}

// Mean returns the sample mean, or 0 for an empty sample.
func (m Moments) Mean() float64 {
	if m.N == 0 {
		return 0
	}
	return m.Sum / float64(m.N)
}

// Variance returns the unbiased sample variance (divisor n-1), or 0 when
// fewer than two observations are available. Negative values produced by
// floating-point cancellation are clamped to 0.
func (m Moments) Variance() float64 {
	if m.N < 2 {
		return 0
	}
	n := float64(m.N)
	v := (m.SumSq - m.Sum*m.Sum/n) / (n - 1)
	if v < 0 {
		return 0
	}
	return v
}

// StdDev returns the unbiased sample standard deviation.
func (m Moments) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CoefficientOfVariation returns σ/|μ|, or +Inf when the mean is zero and
// the deviation is not. It is the paper's "too high standard deviation"
// gate for data-dependent state calibration.
func (m Moments) CoefficientOfVariation() float64 {
	mu := m.Mean()
	sd := m.StdDev()
	if mu == 0 {
		if sd == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return sd / math.Abs(mu)
}

// MomentsOf accumulates xs into a fresh Moments.
func MomentsOf(xs []float64) Moments {
	var m Moments
	m.AddAll(xs)
	return m
}

// --- Student's t distribution ----------------------------------------------

// lnGamma is the natural log of the Gamma function (Lanczos approximation,
// accurate to ~1e-14 for positive arguments — ample for p-values).
func lnGamma(x float64) float64 {
	// Lanczos g=7, n=9 coefficients.
	coef := [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// reflection formula
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lnGamma(1-x)
	}
	x--
	a := coef[0]
	t := x + 7.5
	for i := 1; i < len(coef); i++ {
		a += coef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes' betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lnGamma(a+b) - lnGamma(a) - lnGamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpMin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap //psmlint:ignore nan-guard qap = a+1 >= 1 for every t-test caller
	if math.Abs(d) < fpMin {
		d = fpMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpMin {
			d = fpMin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpMin {
			c = fpMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for a Student-t variable with df degrees of
// freedom. df may be fractional (Welch–Satterthwaite). It panics if df <= 0.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		panic("stats: nonpositive degrees of freedom")
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := df / (df + t*t)
	p := 0.5 * regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TwoSidedTPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom.
func TwoSidedTPValue(t, df float64) float64 {
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// --- hypothesis tests --------------------------------------------------------

// TTestResult reports the outcome of a t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // degrees of freedom (Welch–Satterthwaite for Welch's test)
	P  float64 // two-sided p-value
}

// ErrInsufficientData is returned when a test cannot be computed from the
// supplied sample sizes.
var ErrInsufficientData = errors.New("stats: insufficient data for test")

// WelchTTest performs Welch's unequal-variance two-sample t-test on two
// summarized samples. This is mergeability Case 2 of the paper: two
// until-pattern states are mergeable when the test fails to reject equality
// of means (p >= alpha).
//
// Both samples need at least two observations. When both variances are zero
// the test degenerates: T is 0 if the means coincide and +Inf otherwise,
// with P 1 or 0 accordingly.
func WelchTTest(a, b Moments) (TTestResult, error) {
	if a.N < 2 || b.N < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	va, vb := a.Variance(), b.Variance()
	na, nb := float64(a.N), float64(b.N)
	se2 := va/na + vb/nb
	diff := a.Mean() - b.Mean()
	if se2 == 0 {
		if diff == 0 {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(diff)), DF: na + nb - 2, P: 0}, nil
	}
	t := diff / math.Sqrt(se2)
	// Welch–Satterthwaite degrees of freedom. With near-denormal
	// variances the denominator can underflow to 0 while se2 does not;
	// fall back to the pooled df instead of propagating Inf/NaN into the
	// t distribution.
	df := na + nb - 2
	if den := va*va/(na*na*(na-1)) + vb*vb/(nb*nb*(nb-1)); den > 0 {
		df = se2 * se2 / den
	}
	if df < 1 {
		df = 1
	}
	return TTestResult{T: t, DF: df, P: TwoSidedTPValue(t, df)}, nil
}

// OneSampleTTest tests whether a single observation x is consistent with
// the sample summarized by a. This is mergeability Case 3 of the paper
// (until-state vs next-state): the statistic is a prediction-interval test,
//
//	t = (x - mean) / (s * sqrt(1 + 1/n)),  df = n - 1.
//
// The sample needs at least two observations. Zero sample variance
// degenerates like WelchTTest.
func OneSampleTTest(a Moments, x float64) (TTestResult, error) {
	if a.N < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	n := float64(a.N)
	s := a.StdDev()
	diff := x - a.Mean()
	df := n - 1
	if s == 0 {
		if diff == 0 {
			return TTestResult{T: 0, DF: df, P: 1}, nil
		}
		return TTestResult{T: math.Inf(sign(diff)), DF: df, P: 0}, nil
	}
	t := diff / (s * math.Sqrt(1+1/n))
	return TTestResult{T: t, DF: df, P: TwoSidedTPValue(t, df)}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// --- correlation and regression ---------------------------------------------

// Pearson returns the Pearson correlation coefficient of the paired samples
// xs and ys. It returns 0 when either sample is constant or the slices are
// shorter than 2. The slices must have equal length.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson sample length mismatch")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	covn := sxy - sx*sy/n
	vxn := sxx - sx*sx/n
	vyn := syy - sy*sy/n
	if vxn <= 0 || vyn <= 0 {
		return 0
	}
	r := covn / math.Sqrt(vxn*vyn)
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r
}

// LinearFit holds a least-squares line y = Intercept + Slope*x together
// with its Pearson correlation on the fitted data.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R         float64 // Pearson correlation of the fitted sample
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Intercept + f.Slope*x }

// LinearRegression fits y = a + b*x by ordinary least squares. It returns
// an error when fewer than two points are supplied or x is constant (the
// slope would be undefined).
func LinearRegression(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		panic("stats: LinearRegression sample length mismatch")
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := sxx - sx*sx/n
	if den == 0 {
		return LinearFit{}, errors.New("stats: constant regressor")
	}
	slope := (sxy - sx*sy/n) / den
	intercept := (sy - slope*sx) / n
	return LinearFit{Slope: slope, Intercept: intercept, R: Pearson(xs, ys)}, nil
}

// MeanRelativeError returns the mean of |est-ref|/|ref| over the paired
// series, skipping instants where the reference is exactly zero (they carry
// no relative information). This is the paper's MRE accuracy metric.
func MeanRelativeError(est, ref []float64) float64 {
	if len(est) != len(ref) {
		panic("stats: MeanRelativeError length mismatch")
	}
	var sum float64
	var n int
	for i := range ref {
		if ref[i] == 0 {
			continue
		}
		sum += math.Abs(est[i]-ref[i]) / math.Abs(ref[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
