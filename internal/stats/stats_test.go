package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMomentsBasics(t *testing.T) {
	m := MomentsOf([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m.N != 8 {
		t.Fatalf("N = %d", m.N)
	}
	if !almostEq(m.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g", m.Mean())
	}
	// sample variance of this classic set is 32/7
	if !almostEq(m.Variance(), 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %g", m.Variance())
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.StdDev() != 0 {
		t.Error("empty moments should be all zero")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Variance() != 0 {
		t.Error("single observation: mean 3, variance 0")
	}
}

func TestMomentsMergeExact(t *testing.T) {
	xs := []float64{1.5, 2.25, 3, -1, 0.5, 9, 2, 2}
	a := MomentsOf(xs[:3])
	b := MomentsOf(xs[3:])
	a.Merge(b)
	all := MomentsOf(xs)
	if a.N != all.N || !almostEq(a.Mean(), all.Mean(), 1e-12) ||
		!almostEq(a.Variance(), all.Variance(), 1e-12) {
		t.Errorf("merged = %+v, direct = %+v", a, all)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 3 {
			return true
		}
		// bound magnitudes so SumSq stays finite
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				return true
			}
			xs[i] = math.Mod(xs[i], 1e6)
		}
		k := len(xs) / 2
		a, b := MomentsOf(xs[:k]), MomentsOf(xs[k:])
		a.Merge(b)
		all := MomentsOf(xs)
		return a.N == all.N && almostEq(a.Sum, all.Sum, 1e-6*math.Abs(all.Sum)+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	m := MomentsOf([]float64{10, 10, 10})
	if m.CoefficientOfVariation() != 0 {
		t.Error("constant sample should have CV 0")
	}
	m2 := MomentsOf([]float64{-1, 1})
	if !math.IsInf(m2.CoefficientOfVariation(), 1) {
		t.Error("zero-mean sample should have CV +Inf")
	}
	m3 := MomentsOf([]float64{9, 11})
	want := m3.StdDev() / 10
	if !almostEq(m3.CoefficientOfVariation(), want, 1e-12) {
		t.Errorf("CV = %g want %g", m3.CoefficientOfVariation(), want)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want float64
	}{
		{0, 5, 0.5},
		{1.0, 1, 0.75},          // t(1) CDF at 1 is exactly 3/4
		{2.015, 5, 0.95},        // 95th percentile, df=5
		{1.812, 10, 0.95},       // df=10
		{2.228, 10, 0.975},      // df=10 two-sided 5%
		{1.645, 1e6, 0.9500},    // ~normal
		{-2.228, 10, 1 - 0.975}, // symmetry
		{12.706, 1, 0.975},      // df=1 two-sided 5%
		{2.576, 1e6, 0.995},     // ~normal 99%
		{0.6745, 1e6, 0.75},     // normal quartile
		{3.169, 10, 0.995},      // df=10
		{1.330, 18, 0.90},       // df=18
		{math.Inf(1), 7, 1.0},   // +inf
		{math.Inf(-1), 7, 0.0},  // -inf
	}
	for _, c := range cases {
		got := StudentTCDF(c.t, c.df)
		if !almostEq(got, c.want, 5e-4) {
			t.Errorf("StudentTCDF(%g, %g) = %.6f, want %.4f", c.t, c.df, got, c.want)
		}
	}
}

func TestStudentTCDFSymmetry(t *testing.T) {
	f := func(tv float64, dfRaw uint8) bool {
		if math.IsNaN(tv) || math.IsInf(tv, 0) {
			return true
		}
		tv = math.Mod(tv, 50)
		df := float64(dfRaw%60) + 1
		a := StudentTCDF(tv, df)
		b := StudentTCDF(-tv, df)
		return almostEq(a+b, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentTCDFPanicsOnBadDF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("df<=0 did not panic")
		}
	}()
	StudentTCDF(1, 0)
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := MomentsOf([]float64{5, 6, 7, 5, 6, 7})
	res, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P != 1 {
		t.Errorf("identical samples: T=%g P=%g", res.T, res.P)
	}
}

func TestWelchTTestClearlyDifferent(t *testing.T) {
	a := MomentsOf([]float64{1.0, 1.1, 0.9, 1.05, 0.95})
	b := MomentsOf([]float64{9.0, 9.1, 8.9, 9.05, 8.95})
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("distant means should reject: P = %g", res.P)
	}
	if res.T >= 0 {
		t.Errorf("T should be negative (a < b): %g", res.T)
	}
}

// exactSample builds a 10-element sample with exact mean mu and exact
// unbiased sample variance 1: five points at mu-a and five at mu+a with
// a = sqrt(9/10).
func exactSample(mu float64) Moments {
	a := math.Sqrt(0.9)
	var m Moments
	for i := 0; i < 5; i++ {
		m.Add(mu - a)
		m.Add(mu + a)
	}
	return m
}

func TestWelchTTestReferenceValue(t *testing.T) {
	// Two samples of n=10 with s²=1 each give t = d/sqrt(0.2) and, since the
	// variances are equal, Welch–Satterthwaite df = 18. Choosing the mean
	// difference d so that t hits the 97.5th percentile of t(18)
	// (t = 2.100922) makes the two-sided p-value exactly 0.05.
	d := 2.100922 * math.Sqrt(0.2)
	a := exactSample(d)
	b := exactSample(0)
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.T, 2.100922, 1e-6) {
		t.Errorf("T = %g, want 2.100922", res.T)
	}
	if !almostEq(res.DF, 18, 1e-6) {
		t.Errorf("DF = %g, want 18", res.DF)
	}
	if !almostEq(res.P, 0.05, 1e-4) {
		t.Errorf("P = %g, want 0.05", res.P)
	}

	// And the 99.5th percentile of t(18) (t = 2.878440) gives p = 0.01.
	d = 2.878440 * math.Sqrt(0.2)
	res, err = WelchTTest(exactSample(0), exactSample(d))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.P, 0.01, 1e-4) {
		t.Errorf("P = %g, want 0.01", res.P)
	}
	if res.T >= 0 {
		t.Errorf("T should be negative, got %g", res.T)
	}
}

func TestWelchTTestDegenerateVariance(t *testing.T) {
	a := MomentsOf([]float64{3, 3, 3})
	b := MomentsOf([]float64{3, 3})
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("equal constant samples: P = %g", res.P)
	}
	c := MomentsOf([]float64{4, 4})
	res, err = WelchTTest(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Errorf("different constant samples: P = %g", res.P)
	}
}

func TestWelchTTestInsufficientData(t *testing.T) {
	a := MomentsOf([]float64{1})
	b := MomentsOf([]float64{1, 2})
	if _, err := WelchTTest(a, b); err != ErrInsufficientData {
		t.Errorf("err = %v", err)
	}
}

func TestOneSampleTTest(t *testing.T) {
	a := MomentsOf([]float64{10, 10.2, 9.8, 10.1, 9.9})
	// x within the sample: should not reject
	res, err := OneSampleTTest(a, 10.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.5 {
		t.Errorf("in-sample observation rejected: P = %g", res.P)
	}
	// x far away: should reject
	res, err = OneSampleTTest(a, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-4 {
		t.Errorf("out-of-sample observation accepted: P = %g", res.P)
	}
	if res.DF != 4 {
		t.Errorf("DF = %g, want 4", res.DF)
	}
}

func TestOneSampleTTestDegenerate(t *testing.T) {
	a := MomentsOf([]float64{5, 5, 5})
	if res, _ := OneSampleTTest(a, 5); res.P != 1 {
		t.Errorf("P = %g, want 1", res.P)
	}
	if res, _ := OneSampleTTest(a, 6); res.P != 0 {
		t.Errorf("P = %g, want 0", res.P)
	}
	if _, err := OneSampleTTest(MomentsOf([]float64{1}), 1); err != ErrInsufficientData {
		t.Errorf("err = %v", err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive: r = %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative: r = %g", r)
	}
	if r := Pearson(xs, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant y: r = %g", r)
	}
	if r := Pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("short sample: r = %g", r)
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths did not panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

func TestLinearRegressionExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 2, 1e-12) || !almostEq(fit.Intercept, 3, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEq(fit.R, 1, 1e-12) {
		t.Errorf("R = %g", fit.R)
	}
	if !almostEq(fit.Predict(10), 23, 1e-12) {
		t.Errorf("Predict(10) = %g", fit.Predict(10))
	}
}

func TestLinearRegressionNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var xs, ys []float64
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 5+0.7*x+rng.NormFloat64()*0.5)
	}
	fit, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fit.Slope, 0.7, 0.01) || !almostEq(fit.Intercept, 5, 0.5) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R < 0.99 {
		t.Errorf("R = %g", fit.R)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant regressor accepted")
	}
}

func TestMeanRelativeError(t *testing.T) {
	ref := []float64{10, 20, 0, 40}
	est := []float64{11, 18, 5, 40}
	// errors: 0.1, 0.1, (skipped), 0 → mean 0.2/3
	got := MeanRelativeError(est, ref)
	if !almostEq(got, 0.2/3, 1e-12) {
		t.Errorf("MRE = %g", got)
	}
	if MeanRelativeError([]float64{1}, []float64{0}) != 0 {
		t.Error("all-zero reference should give 0")
	}
}

func TestQuickPearsonBounds(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		return r >= -1 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickWelchSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 2
		mkSample := func() Moments {
			var m Moments
			for i := 0; i < n; i++ {
				m.Add(rng.NormFloat64()*3 + 10)
			}
			return m
		}
		a, b := mkSample(), mkSample()
		r1, err1 := WelchTTest(a, b)
		r2, err2 := WelchTTest(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return almostEq(r1.P, r2.P, 1e-9) && almostEq(r1.T, -r2.T, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
