package hmm

import (
	"math"
	"testing"

	"psmkit/internal/psm"
	"psmkit/internal/stats"
)

// model3 builds a small hand-crafted model:
//
//	s0 (idle, assertion "0U")  --p1-->  s1 (work, "1U")  --p0--> s0
//	s1 --p2--> s2 (flush, "2X"), s2 --p0--> s0
//
// s0 is initial twice (two chains), s1 carries its assertion twice (a
// join merged two equal states).
func model3() *psm.Model {
	seq := func(p int, k psm.PatternKind) psm.Sequence {
		return psm.Sequence{Phases: []psm.Phase{{Prop: p, Kind: k}}}
	}
	mom := func(v float64, n int) stats.Moments {
		var m stats.Moments
		for i := 0; i < n; i++ {
			m.Add(v)
		}
		return m
	}
	return &psm.Model{
		States: []*psm.State{
			{ID: 0, Alts: []psm.Alt{{Seq: seq(0, psm.Until), Count: 2}}, Power: mom(1, 10)},
			{ID: 1, Alts: []psm.Alt{{Seq: seq(1, psm.Until), Count: 2}}, Power: mom(5, 10)},
			{ID: 2, Alts: []psm.Alt{{Seq: seq(2, psm.Next), Count: 1}}, Power: mom(2, 1)},
		},
		Transitions: []psm.Transition{
			{From: 0, To: 1, Enabling: 1, Count: 3},
			{From: 1, To: 0, Enabling: 0, Count: 2},
			{From: 1, To: 2, Enabling: 2, Count: 1},
			{From: 2, To: 0, Enabling: 0, Count: 1},
		},
		Initials: map[int]int{0: 2},
	}
}

func TestNewBuildsStochasticMatrices(t *testing.T) {
	h := New(model3())
	if h.NumStates() != 3 {
		t.Fatalf("states = %d", h.NumStates())
	}
	if h.NumObservations() != 3 {
		t.Fatalf("observations = %d", h.NumObservations())
	}
	// Rows of A with outgoing edges sum to 1.
	for i, row := range h.A {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-12 {
			t.Errorf("A row %d sums to %g", i, sum)
		}
	}
	// A[1] splits 2:1 between s0 and s2.
	if math.Abs(h.A[1][0]-2.0/3.0) > 1e-12 || math.Abs(h.A[1][2]-1.0/3.0) > 1e-12 {
		t.Errorf("A[1] = %v", h.A[1])
	}
	// π is concentrated on s0.
	if h.Pi[0] != 1 || h.Pi[1] != 0 {
		t.Errorf("Pi = %v", h.Pi)
	}
	// B rows are one-hot here (one assertion per state).
	for j := range h.B {
		var sum float64
		for _, v := range h.B[j] {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("B row %d sums to %g", j, sum)
		}
	}
}

func TestFilterAndPredict(t *testing.T) {
	h := New(model3())
	b := h.InitialBelief()
	if h.Predict(b) != 0 {
		t.Errorf("initial prediction = %d", h.Predict(b))
	}
	// Observe the work assertion: mass must move to s1.
	obs := h.Observation("1U")
	if obs < 0 {
		t.Fatal("assertion 1U not in vocabulary")
	}
	b = h.Filter(b, obs)
	if h.Predict(b) != 1 {
		t.Errorf("after observing work: prediction = %d, belief %v", h.Predict(b), b)
	}
	if math.Abs(b[1]-1) > 1e-12 {
		t.Errorf("belief not concentrated: %v", b)
	}
}

func TestFilterImpossibleObservation(t *testing.T) {
	h := New(model3())
	b := h.InitialBelief()
	// From π = s0, observing s2's assertion is impossible (no edge 0→2).
	b = h.Filter(b, h.Observation("2X"))
	for _, v := range b {
		if v != 0 {
			t.Errorf("belief should be all-zero, got %v", b)
		}
	}
	if h.Predict(b) != -1 {
		t.Error("Predict on zero belief should be -1")
	}
}

func TestFilterTransitionOnly(t *testing.T) {
	h := New(model3())
	b := []float64{0, 1, 0}
	b = h.Filter(b, -1)
	if math.Abs(b[0]-2.0/3.0) > 1e-12 || math.Abs(b[2]-1.0/3.0) > 1e-12 {
		t.Errorf("transition-only filter = %v", b)
	}
}

func TestFilterPanicsOnBadBelief(t *testing.T) {
	h := New(model3())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h.Filter([]float64{1}, 0)
}

func TestZeroTransitionMasksAndRenormalizes(t *testing.T) {
	h := New(model3()).Clone()
	h.ZeroTransition(1, 0)
	if h.A[1][0] != 0 {
		t.Error("transition not zeroed")
	}
	if math.Abs(h.A[1][2]-1) > 1e-12 {
		t.Errorf("row not renormalized: %v", h.A[1])
	}
	// Zeroing the only remaining edge leaves the row all-zero.
	h.ZeroTransition(1, 2)
	for _, v := range h.A[1] {
		if v != 0 {
			t.Errorf("row should be zero: %v", h.A[1])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	h := New(model3())
	c := h.Clone()
	c.ZeroTransition(0, 1)
	if h.A[0][1] == 0 {
		t.Error("Clone shares A with the original")
	}
}

func TestScore(t *testing.T) {
	h := New(model3())
	obs := h.Observation("1U")
	if got := h.Score(0, 1, obs); math.Abs(got-1) > 1e-12 {
		t.Errorf("Score(0→1 | work) = %g, want 1", got)
	}
	if got := h.Score(-1, 0, h.Observation("0U")); math.Abs(got-1) > 1e-12 {
		t.Errorf("initial Score(s0) = %g", got)
	}
	if got := h.Score(0, 2, -1); got != 0 {
		t.Errorf("Score(0→2) = %g, want 0", got)
	}
}

func TestObservationUnknownKey(t *testing.T) {
	h := New(model3())
	if h.Observation("99U") != -1 {
		t.Error("unknown assertion should map to -1")
	}
}

// wikiHMM is the classic "healthy/fever — normal/cold/dizzy" example whose
// Viterbi path is worked out in many references.
func wikiHMM() *HMM {
	return &HMM{
		Pi: []float64{0.6, 0.4}, // healthy, fever
		A: [][]float64{
			{0.7, 0.3},
			{0.4, 0.6},
		},
		B: [][]float64{
			{0.5, 0.4, 0.1}, // healthy: normal, cold, dizzy
			{0.1, 0.3, 0.6}, // fever
		},
		Assertions: map[string]int{"normal": 0, "cold": 1, "dizzy": 2},
	}
}

func TestViterbiKnownExample(t *testing.T) {
	h := wikiHMM()
	// Observations normal, cold, dizzy → healthy, healthy, fever.
	got := h.Viterbi([]int{0, 1, 2})
	want := []int{0, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("path = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("path[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestViterbiEdgeCases(t *testing.T) {
	h := wikiHMM()
	if got := h.Viterbi(nil); got == nil || len(got) != 0 {
		t.Error("empty observation sequence should give an empty path")
	}
	if got := h.Viterbi([]int{2}); len(got) != 1 || got[0] != 1 {
		t.Errorf("single dizzy observation = %v, want [1] (fever)", got)
	}
}

func TestViterbiImpossibleSequence(t *testing.T) {
	h := New(model3())
	// s2's assertion cannot be the first observation (π concentrated on s0
	// and B[0] excludes it).
	if got := h.Viterbi([]int{h.Observation("2X")}); got != nil {
		t.Errorf("impossible sequence decoded to %v", got)
	}
}

func TestViterbiOnPSMModel(t *testing.T) {
	h := New(model3())
	obs := []int{h.Observation("0U"), h.Observation("1U"), h.Observation("2X"), h.Observation("0U")}
	got := h.Viterbi(obs)
	want := []int{0, 1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("path = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("path[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestForwardLikelihood(t *testing.T) {
	h := wikiHMM()
	// P(normal) = 0.6*0.5 + 0.4*0.1 = 0.34
	if got := h.Forward([]int{0}); math.Abs(got-math.Log(0.34)) > 1e-12 {
		t.Errorf("logP(normal) = %g, want %g", got, math.Log(0.34))
	}
	// Hand-computed two-step likelihood:
	// α1 = {0.30, 0.04}; α2(h) = (0.3*0.7+0.04*0.4)*0.4 = 0.0904,
	// α2(f) = (0.3*0.3+0.04*0.6)*0.3 = 0.0342 → P = 0.1246.
	if got := h.Forward([]int{0, 1}); math.Abs(got-math.Log(0.1246)) > 1e-12 {
		t.Errorf("logP(normal,cold) = %g, want %g", got, math.Log(0.1246))
	}
	if got := h.Forward(nil); got != 0 {
		t.Errorf("logP(empty) = %g", got)
	}
}

func TestForwardImpossible(t *testing.T) {
	h := New(model3())
	if got := h.Forward([]int{h.Observation("2X")}); !math.IsInf(got, -1) {
		t.Errorf("impossible sequence logP = %g, want -Inf", got)
	}
}

func TestForwardMonotoneInLength(t *testing.T) {
	// Adding observations can only decrease the log-likelihood.
	h := wikiHMM()
	obs := []int{0, 1, 2, 0, 1, 2, 2, 0}
	prev := 0.0
	for n := 1; n <= len(obs); n++ {
		l := h.Forward(obs[:n])
		if l > prev+1e-12 {
			t.Fatalf("logP increased at length %d: %g > %g", n, l, prev)
		}
		prev = l
	}
}

func TestViterbiPathAtLeastAsLikelyAsGreedy(t *testing.T) {
	// The Viterbi path's joint probability must be ≥ the greedy filtered
	// path's joint probability.
	h := wikiHMM()
	obs := []int{0, 2, 1, 0, 2}
	joint := func(path []int) float64 {
		p := h.Pi[path[0]] * h.B[path[0]][obs[0]]
		for t2 := 1; t2 < len(path); t2++ {
			p *= h.A[path[t2-1]][path[t2]] * h.B[path[t2]][obs[t2]]
		}
		return p
	}
	vit := h.Viterbi(obs)
	greedy := make([]int, len(obs))
	b := h.InitialBelief()
	for i := range b {
		b[i] *= h.B[i][obs[0]]
	}
	greedy[0] = h.Predict(b)
	for t2 := 1; t2 < len(obs); t2++ {
		b = h.Filter(b, obs[t2])
		greedy[t2] = h.Predict(b)
	}
	if joint(vit) < joint(greedy)-1e-15 {
		t.Errorf("Viterbi joint %g < greedy joint %g", joint(vit), joint(greedy))
	}
}

func TestBaumWelchImprovesLikelihood(t *testing.T) {
	h := wikiHMM()
	seqs := [][]int{
		{0, 0, 1, 2, 2, 1, 0},
		{2, 2, 2, 1, 0},
		{0, 1, 0, 0, 1, 2},
	}
	var before float64
	for _, s := range seqs {
		before += h.Forward(s)
	}
	h.BaumWelch(seqs, 25, 1e-9)
	var after float64
	for _, s := range seqs {
		after += h.Forward(s)
	}
	if after < before-1e-9 {
		t.Errorf("Baum-Welch decreased log-likelihood: %g -> %g", before, after)
	}
	// Matrices stay row-stochastic.
	for i, row := range h.A {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("A row %d sums to %g", i, sum)
		}
	}
	for i, row := range h.B {
		var sum float64
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("B row %d sums to %g", i, sum)
		}
	}
}

func TestBaumWelchPreservesTopology(t *testing.T) {
	// Structural zeros of the mined PSM must survive re-estimation.
	h := New(model3())
	seqs := [][]int{{
		h.Observation("0U"), h.Observation("1U"), h.Observation("0U"),
		h.Observation("1U"), h.Observation("2X"), h.Observation("0U"),
	}}
	h.BaumWelch(seqs, 10, 1e-9)
	if h.A[0][2] != 0 {
		t.Errorf("A[0][2] = %g, want 0 (no mined edge s0->s2)", h.A[0][2])
	}
	if h.A[0][0] != 0 {
		t.Errorf("A[0][0] = %g, want 0 (no self loop mined)", h.A[0][0])
	}
	if h.B[0][h.Observation("2X")] != 0 {
		t.Errorf("B[0][2X] should stay 0")
	}
}

func TestBaumWelchFitsGeneratedData(t *testing.T) {
	// Generate sequences from a known sharp model; starting from a blurred
	// version, EM must move A towards the truth.
	truth := &HMM{
		Pi: []float64{1, 0},
		A: [][]float64{
			{0.9, 0.1},
			{0.2, 0.8},
		},
		B: [][]float64{
			{0.95, 0.05},
			{0.05, 0.95},
		},
		Assertions: map[string]int{"a": 0, "b": 1},
	}
	// Deterministic sampling via a tiny LCG.
	seed := uint64(12345)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(seed>>11) / (1 << 53)
	}
	sample := func(p []float64) int {
		r := next()
		acc := 0.0
		for i, v := range p {
			acc += v
			if r < acc {
				return i
			}
		}
		return len(p) - 1
	}
	var seqs [][]int
	for s := 0; s < 20; s++ {
		state := sample(truth.Pi)
		var obs []int
		for t2 := 0; t2 < 60; t2++ {
			obs = append(obs, sample(truth.B[state]))
			state = sample(truth.A[state])
		}
		seqs = append(seqs, obs)
	}

	blurred := &HMM{
		Pi: []float64{1, 0},
		A: [][]float64{
			{0.5, 0.5},
			{0.5, 0.5},
		},
		B: [][]float64{
			{0.7, 0.3},
			{0.3, 0.7},
		},
		Assertions: map[string]int{"a": 0, "b": 1},
	}
	blurred.BaumWelch(seqs, 60, 1e-9)
	if math.Abs(blurred.A[0][0]-0.9) > 0.1 {
		t.Errorf("A[0][0] = %g, want ≈0.9", blurred.A[0][0])
	}
	if math.Abs(blurred.A[1][1]-0.8) > 0.1 {
		t.Errorf("A[1][1] = %g, want ≈0.8", blurred.A[1][1])
	}
	if math.Abs(blurred.B[0][0]-0.95) > 0.08 {
		t.Errorf("B[0][0] = %g, want ≈0.95", blurred.B[0][0])
	}
}

func TestBaumWelchIgnoresImpossibleSequences(t *testing.T) {
	h := New(model3())
	// A sequence outside the support must not corrupt the model.
	before := h.Clone()
	h.BaumWelch([][]int{{h.Observation("2X"), h.Observation("2X")}}, 5, 1e-9)
	for i := range h.A {
		for j := range h.A[i] {
			if h.A[i][j] != before.A[i][j] {
				t.Fatalf("A[%d][%d] changed on impossible data", i, j)
			}
		}
	}
}
