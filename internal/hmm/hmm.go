// Package hmm implements the Hidden Markov Model of Section V of the
// paper: the statistical layer that lets a set of (possibly
// non-deterministic) PSMs be simulated efficiently.
//
// Contextualized to the PSM problem, the model λ = (A, B, π) is built
// from a psm.Model as the paper specifies:
//
//   - Q, the hidden states, are the power states of all generated PSMs;
//   - E, the observable events, are the temporal assertions that
//     characterize the states;
//   - A[i][j] is proportional to the number of transitions from state i
//     to state j;
//   - B[j][k] is proportional to the number of times assertion k has been
//     included (by join operations) in the assertion set of state j;
//   - π[i] is proportional to the number of training traces whose chain
//     begins in state i.
//
// Prediction uses the standard filtering recursion
//
//	b'(j) ∝ Σ_i b(i)·A[i][j] · B[j][obs]
//
// and the resynchronization procedure masks A entries that led to wrong
// predictions (ZeroTransition on a run-local copy).
package hmm

import (
	"fmt"
	"math"

	"psmkit/internal/psm"
)

// HMM is the model λ = (A, B, π) plus the assertion vocabulary.
type HMM struct {
	// A is the row-stochastic state-transition matrix (states × states).
	A [][]float64
	// B is the row-stochastic observation matrix (states × assertions).
	B [][]float64
	// Pi is the initial-state distribution.
	Pi []float64
	// Assertions maps an assertion key (psm.Sequence.Key) to its
	// observation index in B's columns.
	Assertions map[string]int
}

// New builds the HMM from a combined PSM model.
func New(m *psm.Model) *HMM {
	n := m.NumStates()
	h := &HMM{
		A:          zeros(n, 0),
		Pi:         make([]float64, n),
		Assertions: map[string]int{},
	}
	// Observation vocabulary: every distinct assertion of every state.
	for _, s := range m.States {
		for _, a := range s.Alts {
			key := a.Seq.Key()
			if _, ok := h.Assertions[key]; !ok {
				h.Assertions[key] = len(h.Assertions)
			}
		}
	}
	k := len(h.Assertions)
	h.B = zeros(n, k)
	for i := range h.A {
		h.A[i] = make([]float64, n)
	}

	for _, t := range m.Transitions {
		h.A[t.From][t.To] += float64(t.Count)
	}
	for _, s := range m.States {
		for _, a := range s.Alts {
			h.B[s.ID][h.Assertions[a.Seq.Key()]] += float64(a.Count)
		}
	}
	for id, c := range m.Initials {
		h.Pi[id] = float64(c)
	}

	normalizeRows(h.A)
	normalizeRows(h.B)
	normalize(h.Pi)
	return h
}

// NumStates returns |Q|.
func (h *HMM) NumStates() int { return len(h.Pi) }

// NumObservations returns |E|.
func (h *HMM) NumObservations() int { return len(h.Assertions) }

// Observation returns the observation index of an assertion key, or -1.
func (h *HMM) Observation(key string) int {
	if i, ok := h.Assertions[key]; ok {
		return i
	}
	return -1
}

// InitialBelief returns a copy of π.
func (h *HMM) InitialBelief() []float64 {
	return append([]float64(nil), h.Pi...)
}

// Filter advances a belief vector one step given the observation index
// (the filtering approach of Section V). A negative obs applies the
// transition model only. The returned belief is normalized; if all mass
// vanishes (impossible observation) the zero vector is returned.
func (h *HMM) Filter(belief []float64, obs int) []float64 {
	if len(belief) != h.NumStates() {
		panic(fmt.Sprintf("hmm: belief has %d entries, model has %d states", len(belief), h.NumStates()))
	}
	n := h.NumStates()
	out := make([]float64, n)
	for i, bi := range belief {
		if bi == 0 {
			continue
		}
		row := h.A[i]
		for j := 0; j < n; j++ {
			out[j] += bi * row[j]
		}
	}
	if obs >= 0 {
		for j := 0; j < n; j++ {
			out[j] *= h.B[j][obs]
		}
	}
	normalize(out)
	return out
}

// Predict returns the index of the most probable state in a belief
// vector, or -1 when the belief is all-zero.
func (h *HMM) Predict(belief []float64) int {
	best, bestP := -1, 0.0
	for i, p := range belief {
		if p > bestP {
			best, bestP = i, p
		}
	}
	return best
}

// Clone deep-copies the model so the resynchronization procedure can
// mask transitions without disturbing the trained matrices.
func (h *HMM) Clone() *HMM {
	c := &HMM{
		A:          make([][]float64, len(h.A)),
		B:          make([][]float64, len(h.B)),
		Pi:         append([]float64(nil), h.Pi...),
		Assertions: make(map[string]int, len(h.Assertions)),
	}
	for i := range h.A {
		c.A[i] = append([]float64(nil), h.A[i]...)
	}
	for i := range h.B {
		c.B[i] = append([]float64(nil), h.B[i]...)
	}
	for k, v := range h.Assertions {
		c.Assertions[k] = v
	}
	return c
}

// ZeroTransition implements the resynchronization masking of Section V:
// after a wrong prediction the probability of reaching the wrong state
// again is fixed to 0 (the row is re-normalized; a row that loses all
// mass stays zero, signalling "every successor was wrong").
func (h *HMM) ZeroTransition(from, to int) {
	h.A[from][to] = 0
	normalize(h.A[from])
}

// Score ranks a candidate successor j of state i under observation obs:
// A[i][j]·B[j][obs]. With i < 0 the prior π[j] replaces the transition
// term (initial choice); with obs < 0 the observation term is dropped.
func (h *HMM) Score(i, j, obs int) float64 {
	var t float64
	if i < 0 {
		t = h.Pi[j]
	} else {
		t = h.A[i][j]
	}
	if obs >= 0 {
		t *= h.B[j][obs]
	}
	return t
}

func zeros(n, k int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, k)
	}
	return m
}

func normalize(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

func normalizeRows(m [][]float64) {
	for i := range m {
		normalize(m[i])
	}
}

// Forward returns the log-likelihood of an observation sequence under the
// model (the forward algorithm with per-step normalization for numerical
// stability). It returns -Inf for an impossible sequence.
func (h *HMM) Forward(obs []int) float64 {
	if len(obs) == 0 {
		return 0
	}
	n := h.NumStates()
	alpha := make([]float64, n)
	var logL float64
	for i := 0; i < n; i++ {
		alpha[i] = h.Pi[i] * h.B[i][obs[0]]
	}
	logL += logNormalize(alpha)
	next := make([]float64, n)
	for _, o := range obs[1:] {
		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ {
				if alpha[i] != 0 {
					s += alpha[i] * h.A[i][j]
				}
			}
			next[j] = s * h.B[j][o]
		}
		alpha, next = next, alpha
		logL += logNormalize(alpha)
	}
	return logL
}

// Viterbi returns the most likely hidden-state sequence for an
// observation sequence, or nil when the sequence is impossible under the
// model. Ties break toward the lower state index.
func (h *HMM) Viterbi(obs []int) []int {
	if len(obs) == 0 {
		return []int{}
	}
	n := h.NumStates()
	delta := make([]float64, n)
	for i := 0; i < n; i++ {
		delta[i] = h.Pi[i] * h.B[i][obs[0]]
	}
	if math.IsInf(logNormalize(delta), -1) {
		return nil
	}
	back := make([][]int, len(obs))
	next := make([]float64, n)
	for t := 1; t < len(obs); t++ {
		back[t] = make([]int, n)
		for j := 0; j < n; j++ {
			best, bestP := -1, 0.0
			for i := 0; i < n; i++ {
				if p := delta[i] * h.A[i][j]; p > bestP {
					best, bestP = i, p
				}
			}
			back[t][j] = best
			next[j] = bestP * h.B[j][obs[t]]
		}
		delta, next = next, delta
		if math.IsInf(logNormalize(delta), -1) {
			return nil
		}
	}
	last, lastP := -1, 0.0
	for i, p := range delta {
		if p > lastP {
			last, lastP = i, p
		}
	}
	if last < 0 {
		return nil
	}
	path := make([]int, len(obs))
	path[len(obs)-1] = last
	for t := len(obs) - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path
}

var negInf = math.Inf(-1)

// logNormalize scales v to sum 1 and returns log of the scaling mass
// (-Inf when the vector is all-zero, leaving it untouched).
func logNormalize(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		return negInf
	}
	for i := range v {
		v[i] /= sum
	}
	return math.Log(sum)
}

// BaumWelch re-estimates the model's A and B matrices from unlabeled
// observation sequences (the EM/forward–backward algorithm), leaving π
// untouched. It is the natural refinement step once a generated PSM set
// has been deployed: field traces re-weight the transition and
// observation statistics the join bookkeeping seeded. Iteration stops
// after maxIter rounds or when the total log-likelihood improves by less
// than tol. It returns the final log-likelihood.
//
// Zero-probability structure is preserved: entries of A and B that are 0
// stay 0 (EM cannot create mass where the PSM topology has none), so the
// re-estimated model never invents transitions the mined PSMs lack.
func (h *HMM) BaumWelch(sequences [][]int, maxIter int, tol float64) float64 {
	n := h.NumStates()
	k := h.NumObservations()
	prevLL := math.Inf(-1)
	for iter := 0; iter < maxIter; iter++ {
		numA := zeros(n, n)
		numB := zeros(n, k)
		denA := make([]float64, n)
		denB := make([]float64, n)
		var ll float64

		for _, obs := range sequences {
			if len(obs) == 0 {
				continue
			}
			T := len(obs)
			// Scaled forward pass.
			alpha := zeros(T, n)
			scale := make([]float64, T)
			for i := 0; i < n; i++ {
				alpha[0][i] = h.Pi[i] * h.B[i][obs[0]]
			}
			scale[0] = logNormalize(alpha[0])
			for t := 1; t < T; t++ {
				for j := 0; j < n; j++ {
					var s float64
					for i := 0; i < n; i++ {
						s += alpha[t-1][i] * h.A[i][j]
					}
					alpha[t][j] = s * h.B[j][obs[t]]
				}
				scale[t] = logNormalize(alpha[t])
			}
			impossible := false
			for _, s := range scale {
				if math.IsInf(s, -1) {
					impossible = true
					break
				}
				ll += s
			}
			if impossible {
				continue // sequence outside the model's support
			}
			// Scaled backward pass (same per-step normalization).
			beta := zeros(T, n)
			for i := 0; i < n; i++ {
				beta[T-1][i] = 1
			}
			for t := T - 2; t >= 0; t-- {
				for i := 0; i < n; i++ {
					var s float64
					for j := 0; j < n; j++ {
						s += h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
					}
					beta[t][i] = s
				}
				logNormalize(beta[t])
			}
			// Accumulate expected counts.
			for t := 0; t < T; t++ {
				var gsum float64
				g := make([]float64, n)
				for i := 0; i < n; i++ {
					g[i] = alpha[t][i] * beta[t][i]
					gsum += g[i]
				}
				if gsum == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					gi := g[i] / gsum
					numB[i][obs[t]] += gi
					denB[i] += gi
					if t < T-1 {
						denA[i] += gi
					}
				}
				if t < T-1 {
					var xsum float64
					xi := zeros(n, n)
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							xi[i][j] = alpha[t][i] * h.A[i][j] * h.B[j][obs[t+1]] * beta[t+1][j]
							xsum += xi[i][j]
						}
					}
					if xsum > 0 {
						for i := 0; i < n; i++ {
							for j := 0; j < n; j++ {
								numA[i][j] += xi[i][j] / xsum
							}
						}
					}
				}
			}
		}

		// M-step. denA was accumulated per state; the ξ counts are already
		// normalized per step, so re-normalize rows directly.
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				rowSum += numA[i][j]
			}
			if rowSum > 0 {
				for j := 0; j < n; j++ {
					if h.A[i][j] > 0 {
						h.A[i][j] = numA[i][j] / rowSum
					}
				}
				normalize(h.A[i])
			}
			if denB[i] > 0 {
				for o := 0; o < k; o++ {
					if h.B[i][o] > 0 {
						h.B[i][o] = numB[i][o] / denB[i]
					}
				}
				normalize(h.B[i])
			}
		}

		if ll-prevLL < tol && iter > 0 {
			return ll
		}
		prevLL = ll
	}
	return prevLL
}
