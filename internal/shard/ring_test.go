package shard

import (
	"fmt"
	"testing"
)

// TestRingDeterministic pins that routing is a pure function of the
// session id and the shard count — two rings built for the same count
// agree on every key, and a single-shard ring routes everything to 0.
func TestRingDeterministic(t *testing.T) {
	a, b := newRing(8), newRing(8)
	for i := 0; i < 2000; i++ {
		id := fmt.Sprintf("sess-%d", i)
		if a.shardOf(id) != b.shardOf(id) {
			t.Fatalf("rings disagree on %q: %d vs %d", id, a.shardOf(id), b.shardOf(id))
		}
	}
	single := newRing(1)
	for i := 0; i < 100; i++ {
		if sh := single.shardOf(fmt.Sprintf("x-%d", i)); sh != 0 {
			t.Fatalf("1-shard ring routed to %d", sh)
		}
	}
}

// TestRingDistribution checks the vnode spread: over many ids no shard
// may hold less than half or more than double its fair share.
func TestRingDistribution(t *testing.T) {
	const shards, keys = 8, 20000
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.shardOf(fmt.Sprintf("sess-%d", i))]++
	}
	avg := keys / shards
	for s, n := range counts {
		if n < avg/2 || n > avg*2 {
			t.Fatalf("shard %d holds %d of %d keys (fair share %d): vnode spread too lumpy (%v)",
				s, n, keys, avg, counts)
		}
	}
}

// TestRingStabilityAcrossShardCounts pins the consistent-hashing
// property the ring exists for: growing the fleet from 4 to 5 shards
// moves roughly 1/5 of the keys, not a full reshuffle (a modulo hash
// would move ~80%).
func TestRingStabilityAcrossShardCounts(t *testing.T) {
	const keys = 20000
	r4, r5 := newRing(4), newRing(5)
	moved := 0
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("sess-%d", i)
		if r4.shardOf(id) != r5.shardOf(id) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac > 0.45 {
		t.Fatalf("%.0f%% of keys moved growing 4->5 shards; consistent hashing should move ~20%%", frac*100)
	}
}
