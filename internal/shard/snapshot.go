package shard

import (
	"context"
	"fmt"
	"sync"
	"time"

	"psmkit/internal/mining"
	"psmkit/internal/obs"
	"psmkit/internal/psm"
	"psmkit/internal/stream"
)

// holdAll parks every shard worker at a barrier: a hold task is queued
// behind whatever each shard already has, and once a worker reaches it
// the shard's queue prefix is fully applied and the worker touches its
// engine no further until released. The returned release is idempotent
// and must always be called. Holding all shards gives the snapshot a
// consistent per-shard cut — each shard's statistics, chains and
// calibration series describe exactly the same completed-session
// prefix. (Cross-shard skew is harmless: any union of per-shard
// prefixes is a valid session set, and the model is pinned to equal a
// single engine over precisely that set.)
func (c *Coordinator) holdAll(ctx context.Context) (release func(), err error) {
	helds := make([]chan struct{}, len(c.shards))
	releases := make([]chan struct{}, len(c.shards))
	var once sync.Once
	release = func() {
		once.Do(func() {
			for _, r := range releases {
				if r != nil {
					close(r)
				}
			}
		})
	}
	for i, sh := range c.shards {
		helds[i] = make(chan struct{})
		releases[i] = make(chan struct{})
		if err := sh.enqueueBlocking(task{kind: taskHold, held: helds[i], release: releases[i]}); err != nil {
			releases[i] = nil // never queued: nothing will wait on it
			release()
			return nil, err
		}
	}
	for i := range helds {
		select {
		case <-helds[i]:
		case <-ctx.Done():
			release()
			return nil, ctx.Err()
		case <-c.stopc:
			release()
			return nil, errClosed
		}
	}
	return release, nil
}

// globalCut is the fleet-wide mining evidence read under a hold.
type globalCut struct {
	stats  []mining.AtomStats
	rows   int
	traces int
}

// miningCut sums the shards' mining statistics. AtomStats fields are
// exact integer counts, so the sum equals a single engine's statistics
// over the union of the shards' sessions — the global kept-set decision
// is exactly the one engine's. Caller holds the shards.
func (c *Coordinator) miningCut(candidates []mining.Atom) globalCut {
	cut := globalCut{stats: make([]mining.AtomStats, len(candidates))}
	for _, sh := range c.shards {
		st, rows, traces := sh.eng.MiningStats()
		if len(st) > 0 {
			mining.MergeStats(cut.stats, st)
		}
		cut.rows += rows
		cut.traces += traces
	}
	return cut
}

// Snapshot materializes the fleet's current model: byte-identical to a
// single stream.Engine (and so to pipeline.BuildModel) over the same
// sessions in canonical order — shard-major, each shard's sessions in
// its completion order — for any shard count and any interleaving.
//
// The cut is taken under a fleet-wide hold (statistics, chains and
// calibration series of one consistent per-shard prefix); the hold is
// released before the expensive join, which runs on immutable exports.
// The join reuses one cross-snapshot verdict memo, reset whenever the
// globally-selected kept atom set moves (a global epoch boundary,
// mirroring psm.Joiner.Reset).
func (c *Coordinator) Snapshot(ctx context.Context) (*psm.Model, error) {
	//psmlint:ignore nondet-source join-latency metric only; never reaches the model
	start := time.Now()
	defer func() {
		// Recorded on every outcome, including errors and cancellations —
		// see Engine.Snapshot for why failed joins must show up here.
		//psmlint:ignore nondet-source join-latency metric only; never reaches the model
		el := time.Since(start)
		c.mJoinNanos.Add(el.Nanoseconds())
		ms := float64(el.Nanoseconds()) / 1e6
		c.hJoin.Observe(ms)
		c.hJoinWin.Observe(ms)
	}()
	if obs.RegistryFrom(ctx) == nil {
		// Bill the global join's merge counters to the coordinator
		// registry so they surface on /metrics.
		ctx = obs.WithRegistry(ctx, c.reg)
	}
	ctx, span := obs.Start(ctx, "snapshot", obs.KV("shards", len(c.shards)))
	defer span.End()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()

	c.mu.Lock()
	schema, candidates := c.schema, c.candidates
	c.mu.Unlock()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("shard: no completed traces")
	}

	release, err := c.holdAll(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	cut := c.miningCut(candidates)
	if cut.traces == 0 {
		return nil, fmt.Errorf("shard: no completed traces")
	}
	idx := mining.SelectIndices(candidates, cut.stats, cut.rows, c.cfg.Stream.Mining)
	if len(idx) == 0 {
		return nil, fmt.Errorf("shard: no atomic proposition survived filtering (%d candidates over %d instants)",
			len(candidates), cut.rows)
	}

	// Global epoch accounting: a moved kept set voids every shard's
	// chains (they rebuild inside ExportChains) and every memoized
	// verdict (different propositions, same moments would be a lie —
	// see psm.Joiner.Reset for the same boundary in the fold engine).
	rebuild := !equalInts(idx, c.lastKept)
	if rebuild {
		c.lastKept = append([]int(nil), idx...)
		c.memo.Reset()
		span.SetAttr("rebuild", true)
	}

	exps := make([]stream.ShardExport, len(c.shards))
	for i, sh := range c.shards {
		if exps[i], err = sh.eng.ExportChains(ctx, idx); err != nil {
			return nil, err
		}
	}
	// The exports are immutable copies/shared-immutable storage: the
	// expensive dictionary merge and join below run with the fleet
	// already ingesting again.
	release()

	kept := make([]mining.Atom, len(idx))
	for i, ci := range idx {
		kept[i] = candidates[ci]
	}
	gdict := mining.NewDictionary(schema, kept)

	// Canonical re-intern: shards in index order, each shard's local
	// proposition ids in order. A shard dictionary's id order is the
	// first-appearance order over that shard's sessions, so this global
	// intern sequence is exactly the single engine's over the canonical
	// session order — ids match byte for byte.
	total := 0
	for _, exp := range exps {
		total += exp.Traces
	}
	chains := make([]*psm.Chain, 0, total)
	hds := make([][]float64, 0, total)
	pws := make([][]float64, 0, total)
	base := 0
	for _, exp := range exps {
		props := make([]int, len(exp.PropKeys))
		for j, key := range exp.PropKeys {
			props[j] = gdict.Intern(key)
		}
		for j, ch := range exp.Chains {
			chains = append(chains, remapChain(ch, gdict, props, base+j))
		}
		hds = append(hds, exp.HD...)
		pws = append(pws, exp.PW...)
		base += exp.Traces
	}

	pool := psm.Pool(chains)
	pooled := len(pool.States)
	snap := psm.JoinPooledMemoCtx(ctx, pool, c.memo)
	if !c.cfg.Stream.SkipCalibration {
		_, calSpan := obs.Start(ctx, "calibrate")
		fits := psm.CalibrateSeries(snap, hds, pws, c.cfg.Stream.Calibration)
		calSpan.SetAttr("fits", fits)
		calSpan.End()
	}
	// gdict is private to this snapshot (chains are discarded), so the
	// served model can own it directly; EvalRow readers never race.
	snap.Dict = gdict

	c.mSnapshots.Inc()
	if rebuild {
		c.mRebuilds.Inc()
	} else {
		c.mDelta.Inc()
	}
	c.gPooled.Set(float64(pooled))
	c.gServed.Set(float64(len(snap.States)))
	span.SetAttr("states", len(snap.States))
	return snap, nil
}

// Provenance re-derives every mergeability decision of the fleet's
// current model, exactly as a single engine over the canonical session
// order would (see Engine.Provenance): fresh global dictionary, chain
// replays shard by shard in index order with canonical trace indices,
// one sequential pooled collapse. The hold lasts through the replay —
// the kept set and the replayed sessions must be one cut.
func (c *Coordinator) Provenance(ctx context.Context) ([]obs.MergeDecision, error) {
	ctx, span := obs.Start(ctx, "provenance", obs.KV("shards", len(c.shards)))
	defer span.End()
	c.snapMu.Lock()
	defer c.snapMu.Unlock()

	c.mu.Lock()
	schema, candidates := c.schema, c.candidates
	c.mu.Unlock()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("shard: no completed traces")
	}

	release, err := c.holdAll(ctx)
	if err != nil {
		return nil, err
	}
	defer release()

	cut := c.miningCut(candidates)
	if cut.traces == 0 {
		return nil, fmt.Errorf("shard: no completed traces")
	}
	idx := mining.SelectIndices(candidates, cut.stats, cut.rows, c.cfg.Stream.Mining)
	if len(idx) == 0 {
		return nil, fmt.Errorf("shard: no atomic proposition survived filtering (%d candidates over %d instants)",
			len(candidates), cut.rows)
	}
	kept := make([]mining.Atom, len(idx))
	for i, ci := range idx {
		kept[i] = candidates[ci]
	}
	dict := mining.NewDictionary(schema, kept)

	log := obs.NewProvenanceLog()
	ctx = obs.WithProvenance(ctx, log)
	var chains []*psm.Chain
	base := 0
	for _, sh := range c.shards {
		cs, err := sh.eng.ProvenanceChains(ctx, idx, dict, base)
		if err != nil {
			return nil, err
		}
		chains = append(chains, cs...)
		base += len(cs)
	}
	psm.JoinPooledCtx(ctx, psm.Pool(chains), c.cfg.Stream.Merge)
	span.SetAttr("decisions", log.Len())
	return log.Decisions(), nil
}

// remapChain deep-copies one shard-local chain into the global
// coordinate system: proposition ids through the shard's re-intern
// table (props[local id] = global id) and every trace reference to the
// chain's canonical global index. The remap is a bijective relabeling —
// distinct shard-local ids carry distinct signatures, so distinct
// global ids — and every merge decision downstream reads propositions
// only through sequence equality, so the relabeled chain joins exactly
// as the single engine's identically-labeled chain does. The source
// chain (the shard's epoch cache) is never touched.
func remapChain(c *psm.Chain, dict *mining.Dictionary, props []int, traceIdx int) *psm.Chain {
	out := &psm.Chain{Dict: dict, Trace: traceIdx, States: make([]*psm.State, len(c.States))}
	for i, s := range c.States {
		ns := &psm.State{
			ID:        s.ID,
			Alts:      make([]psm.Alt, len(s.Alts)),
			Power:     s.Power,
			Intervals: make([]psm.Interval, len(s.Intervals)),
		}
		for j, a := range s.Alts {
			phases := make([]psm.Phase, len(a.Seq.Phases))
			for k, p := range a.Seq.Phases {
				phases[k] = psm.Phase{Prop: props[p.Prop], Kind: p.Kind}
			}
			ns.Alts[j] = psm.Alt{Seq: psm.Sequence{Phases: phases}, Count: a.Count}
		}
		for j, iv := range s.Intervals {
			ns.Intervals[j] = psm.Interval{Trace: traceIdx, Start: iv.Start, Stop: iv.Stop}
		}
		out.States[i] = ns
	}
	return out
}

// ShardMetric is one shard's row of the fleet metrics: the shard
// engine's ingest counters plus the queue the coordinator runs in front
// of it.
type ShardMetric struct {
	Shard           int   `json:"shard"`
	RecordsIngested int64 `json:"records_ingested"`
	OpenSessions    int   `json:"open_sessions"`
	TracesCompleted int   `json:"traces_completed"`
	Rebuilds        int   `json:"rebuilds"`
	QueueDepth      int   `json:"queue_depth"`
	QueueCap        int   `json:"queue_cap"`
	Shed            int64 `json:"shed_total"`
}

// ShardMetrics returns the per-shard rows in shard order.
func (c *Coordinator) ShardMetrics() []ShardMetric {
	rows := make([]ShardMetric, len(c.shards))
	for i, sh := range c.shards {
		em := sh.eng.Metrics()
		rows[i] = ShardMetric{
			Shard:           i,
			RecordsIngested: em.RecordsIngested,
			OpenSessions:    em.OpenSessions,
			TracesCompleted: em.TracesCompleted,
			Rebuilds:        em.Rebuilds,
			QueueDepth:      len(sh.q),
			QueueCap:        cap(sh.q),
			Shed:            sh.mShed.Value(),
		}
	}
	return rows
}

// Metrics aggregates the fleet into one stream.Metrics: ingest counters
// sum across shards; the snapshot accounting (snapshots, rebuilds,
// states pooled/served, join latency) is the coordinator's own — it
// describes the global cross-shard join, the only join that runs under
// a coordinator.
func (c *Coordinator) Metrics() stream.Metrics {
	var m stream.Metrics
	for _, sh := range c.shards {
		em := sh.eng.Metrics()
		m.RecordsIngested += em.RecordsIngested
		m.OpenSessions += em.OpenSessions
		m.TracesCompleted += em.TracesCompleted
	}
	hs := c.hJoin.Snapshot()
	m.Snapshots = int(c.mSnapshots.Value())
	m.Rebuilds = int(c.mRebuilds.Value())
	m.DeltaSnapshots = int(c.mDelta.Value())
	m.StatesPooled = int(c.gPooled.Value())
	m.StatesServed = int(c.gServed.Value())
	m.StatesMerged = m.StatesPooled - m.StatesServed
	m.JoinNanos = c.mJoinNanos.Value()
	m.JoinLatency = make([]int, len(hs.Counts))
	for i, n := range hs.Counts {
		m.JoinLatency[i] = int(n)
	}
	return m
}

// Shed returns the total number of shed append batches across shards.
func (c *Coordinator) Shed() int64 { return c.mShed.Value() }

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
