package shard_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/shard"
	"psmkit/internal/stream"
)

// TestCoordinatorHammer races concurrent sessions (with mid-session
// aborts) against continuous snapshots and periodic flushes on a
// 4-shard coordinator. The coordinator must come out clean: no open
// sessions, aborted sessions invisible, and the final model
// byte-identical to the batch flow over the completed sessions in
// canonical shard-major order. Under `make race` this is the data-race
// hammer for the queue/hold-barrier/snapshot interleaving.
func TestCoordinatorHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := genParityCase(rng)
	co := newCoordinator(c, 4, 2)
	defer co.Close()
	ctx := context.Background()

	stop := make(chan struct{})
	var bgWG sync.WaitGroup
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			default:
			}
			if k%5 == 4 {
				if err := co.Flush(ctx); err != nil {
					t.Error(err)
					return
				}
			} else {
				// "no completed traces" is expected early in the hammer;
				// consistency is asserted by the final snapshot.
				//psmlint:ignore err-drop chaos arm; the final snapshot asserts consistency
				_, _ = co.Snapshot(ctx)
			}
			time.Sleep(300 * time.Microsecond)
		}
	}()

	type done struct{ shardIdx, local, traceIdx int }
	var (
		mu     sync.Mutex
		closed []done
	)
	const workers, perWorker = 6, 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < perWorker; it++ {
				i := rng.Intn(len(c.fts))
				id := fmt.Sprintf("hammer-%d-%d", seed, it)
				s, err := co.Open(ctx, id, c.fts[i].Signals)
				if err != nil {
					t.Error(err)
					return
				}
				n := c.fts[i].Len()
				abortAt := -1
				if rng.Float64() < 0.35 {
					abortAt = 1 + rng.Intn(n-1)
				}
				aborted := false
				for r := 0; r < n; r++ {
					if r == abortAt {
						s.Abort()
						aborted = true
						break
					}
					if err := s.AppendRows([][]logic.Vector{c.fts[i].Row(r)}, []float64{c.pws[i].Values[r]}); err != nil {
						t.Error(err)
						s.Abort()
						aborted = true
						break
					}
				}
				if aborted {
					continue
				}
				local, rows, err := s.Close(ctx)
				if err != nil {
					t.Error(err)
					continue
				}
				if rows != n {
					t.Errorf("session %s: %d rows landed, want %d", id, rows, n)
				}
				mu.Lock()
				closed = append(closed, done{s.Shard(), local, i})
				mu.Unlock()
			}
		}(int64(w) + 1)
	}
	wg.Wait()
	close(stop)
	bgWG.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(closed) == 0 {
		t.Fatal("hammer completed no sessions")
	}
	if err := co.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	sortDone := func(a, b done) bool {
		if a.shardIdx != b.shardIdx {
			return a.shardIdx < b.shardIdx
		}
		return a.local < b.local
	}
	for i := range closed {
		for j := i + 1; j < len(closed); j++ {
			if sortDone(closed[j], closed[i]) {
				closed[i], closed[j] = closed[j], closed[i]
			}
		}
	}
	order := make([]int, len(closed))
	for i, d := range closed {
		order[i] = d.traceIdx
	}

	live, err := co.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := batchModel(c, order)
	if err != nil {
		t.Fatal(err)
	}
	ld, lj := exports(t, live)
	bd, bj := exports(t, batch)
	if ld != bd || lj != bj {
		t.Fatal("post-hammer model differs from batch over canonical shard-major order")
	}
	// The delta path must serve identical bytes.
	again, err := co.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ad, aj := exports(t, again)
	if ad != ld || aj != lj {
		t.Fatal("repeat snapshot differs: the cross-shard pool was mutated")
	}
	m := co.Metrics()
	if m.OpenSessions != 0 {
		t.Fatalf("%d sessions still open after the hammer", m.OpenSessions)
	}
	if m.TracesCompleted != len(closed) {
		t.Fatalf("coordinator counts %d completed traces, hammer closed %d", m.TracesCompleted, len(closed))
	}
}

// encodeRepeatedLines renders trace `idx` of the case as wire-format
// NDJSON record lines, repeated `repeats` times (no header line).
func encodeRepeatedLines(c parityCase, idx, repeats int) ([]byte, int) {
	var buf bytes.Buffer
	n := 0
	for k := 0; k < repeats; k++ {
		for r := 0; r < c.fts[idx].Len(); r++ {
			row := c.fts[idx].Row(r)
			buf.WriteString(`{"v":[`)
			for j, v := range row {
				if j > 0 {
					buf.WriteByte(',')
				}
				fmt.Fprintf(&buf, "%q", v.Hex())
			}
			fmt.Fprintf(&buf, `],"p":%g}`+"\n", c.pws[idx].Values[r])
			n++
		}
	}
	return buf.Bytes(), n
}

// TestBackpressureShedsWithSaturatedError pins the load-shed contract:
// with a depth-1 queue and a 1ms enqueue timeout, appends behind a
// parse-heavy batch must fail with SaturatedError carrying the shard
// index and the timeout as the Retry-After hint, and both the fleet
// Shed counter and the per-shard metric row must account for every
// shed batch.
func TestBackpressureShedsWithSaturatedError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := genParityCase(rng)
	mcfg, merge, cal := flowPolicies()
	co := shard.New(shard.Config{
		Shards:         1,
		QueueDepth:     1,
		EnqueueTimeout: time.Millisecond,
		Stream: stream.Config{
			Workers:     1,
			Mining:      mcfg,
			Merge:       merge,
			Calibration: cal,
			Inputs:      c.inputs,
		},
	})
	defer co.Close()
	ctx := context.Background()

	s, err := co.Open(ctx, "slow", c.fts[0].Signals)
	if err != nil {
		t.Fatal(err)
	}
	// Each batch takes the worker far longer to parse than the 1ms
	// enqueue timeout, so with one slot past the in-flight batch the
	// pump below must shed at least once.
	payload, nrec := encodeRepeatedLines(c, 0, 400)
	shed := 0
	var sat *shard.SaturatedError
	for k := 0; k < 6; k++ {
		buf := append([]byte(nil), payload...)
		if err := s.AppendLines(buf, nrec, 2); err != nil {
			if !errors.As(err, &sat) {
				t.Fatalf("append %d: unexpected error: %v", k, err)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("no batch shed at queue depth 1 with a 1ms enqueue timeout")
	}
	if sat.Shard != 0 {
		t.Fatalf("SaturatedError names shard %d, want 0", sat.Shard)
	}
	if sat.RetryAfter != time.Millisecond {
		t.Fatalf("SaturatedError Retry-After %v, want the enqueue timeout (1ms)", sat.RetryAfter)
	}
	if got := co.Shed(); got != int64(shed) {
		t.Fatalf("fleet shed counter %d, want %d", got, shed)
	}
	rows := co.ShardMetrics()
	if len(rows) != 1 {
		t.Fatalf("%d shard metric rows, want 1", len(rows))
	}
	if rows[0].Shed != int64(shed) {
		t.Fatalf("shard row shed %d, want %d", rows[0].Shed, shed)
	}
	if rows[0].QueueCap != 1 {
		t.Fatalf("shard row queue cap %d, want 1", rows[0].QueueCap)
	}
	// The session survives shedding: the client decides whether to
	// retry or abandon. Abandon here and verify nothing leaks.
	s.Abort()
	if err := co.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if m := co.Metrics(); m.OpenSessions != 0 || m.TracesCompleted != 0 {
		t.Fatalf("shed/aborted session leaked state: %+v", m)
	}
}
