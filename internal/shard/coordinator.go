package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/obs"
	"psmkit/internal/psm"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// Config tunes the coordinator.
type Config struct {
	// Shards is the engine count; ≤ 0 selects 1 (a sharded deployment
	// of one shard behaves exactly like a single engine, queue and all).
	Shards int
	// Stream configures every shard engine identically. Stream.Registry
	// is ignored: each shard gets a private registry (per-engine gauges
	// must not collide), and the coordinator's own registry carries the
	// fleet-level instruments. Stream.MaxOpenSessions is a PER-SHARD
	// cap; the effective fleet cap is Shards times it.
	Stream stream.Config
	// QueueDepth bounds each shard's task queue in batches (not
	// records); ≤ 0 selects 512. A full queue is the backpressure
	// signal: appends block up to EnqueueTimeout, then shed.
	QueueDepth int
	// EnqueueTimeout is how long an append may block on a saturated
	// shard before giving up with a SaturatedError (the 429 +
	// Retry-After path); ≤ 0 selects 2 s.
	EnqueueTimeout time.Duration
	// Registry receives the coordinator's instruments; nil builds a
	// private one (Registry() exposes it either way).
	Registry *obs.Registry
}

// DefaultConfig returns serving-grade defaults for a 4-shard fleet.
func DefaultConfig() Config {
	return Config{
		Shards:         4,
		Stream:         stream.DefaultConfig(),
		QueueDepth:     512,
		EnqueueTimeout: 2 * time.Second,
	}
}

func (c Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return 1
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 512
}

func (c Config) enqueueTimeout() time.Duration {
	if c.EnqueueTimeout > 0 {
		return c.EnqueueTimeout
	}
	return 2 * time.Second
}

// SaturatedError reports a shard whose queue stayed full past the
// enqueue timeout: the load-shed signal the serving layer translates
// into 429 + Retry-After. RetryAfter is the coordinator's suggestion
// for how long the client should back off.
type SaturatedError struct {
	Shard      int
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("shard: shard %d saturated (queue full past %s)", e.Shard, e.RetryAfter)
}

// errClosed reports an operation against a coordinator whose workers
// have been stopped.
var errClosed = errors.New("shard: coordinator closed")

// Coordinator runs N shard engines as one logical model. Sessions are
// routed by consistent hash on their id; each shard's engine is touched
// only by that shard's worker goroutine, so per-shard reduction is
// strictly sequential (one cache-hot reducer per shard) and the fleet
// scales ingest across cores. Snapshot joins the shards back into one
// model that is byte-identical to a single engine fed the same sessions
// in canonical order — shard-major: all of shard 0's sessions in their
// completion order, then shard 1's, and so on.
type Coordinator struct {
	cfg    Config
	ring   *ring
	shards []*shard
	reg    *obs.Registry

	// Fleet-level instruments. Snapshot accounting (latency, rebuilds,
	// states pooled/served) describes the global cross-shard join — the
	// per-shard joiners never run under a coordinator.
	mSnapshots *obs.Counter
	mRebuilds  *obs.Counter
	mDelta     *obs.Counter
	mJoinNanos *obs.Counter
	mShed      *obs.Counter
	gPooled    *obs.Gauge
	gServed    *obs.Gauge
	hJoin      *obs.Histogram
	hJoinWin   *obs.WindowedHistogram

	// Schema state: the coordinator pins one global schema (mining
	// requires a uniform training schema) before any session reaches a
	// shard, exactly like a single engine's first Open fixes its schema.
	mu         sync.Mutex
	schema     []trace.Signal
	inputCols  []int
	candidates []mining.Atom
	autoID     int64

	// Snapshot state, serialized by snapMu: the cross-snapshot verdict
	// memo and the last global kept atom set (the global epoch).
	snapMu   sync.Mutex
	memo     *psm.EvalMemo
	lastKept []int

	stopc     chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// shard is one engine plus its bounded task queue and the single worker
// goroutine that owns all engine access for the shard.
type shard struct {
	idx     int
	eng     *stream.Engine
	q       chan task
	stopc   chan struct{} // the coordinator's stop channel
	gDepth  *obs.Gauge
	mShed   *obs.Counter // this shard's shed batches
	mShedAg *obs.Counter // the coordinator's fleet-wide shed counter
}

// New builds and starts a coordinator: cfg.Shards engines, each behind
// a bounded queue drained by a dedicated worker. Close stops the
// workers.
func New(cfg Config) *Coordinator {
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n := cfg.shards()
	memo := psm.NewEvalMemo(cfg.Stream.Merge)
	memo.SetLimit(cfg.Stream.JoinMemoEntries)
	c := &Coordinator{
		cfg:        cfg,
		ring:       newRing(n),
		reg:        reg,
		memo:       memo,
		mSnapshots: reg.Counter("psmd_snapshots_total"),
		mRebuilds:  reg.Counter("psmd_rebuilds_total"),
		mDelta:     reg.Counter("psmd_snapshots_delta_total"),
		mJoinNanos: reg.Counter("psmd_join_nanos_total"),
		mShed:      reg.Counter("psmd_shed_total"),
		gPooled:    reg.Gauge("psmd_states_pooled"),
		gServed:    reg.Gauge("psmd_states_served"),
		hJoin:      reg.Histogram("psmd_join_latency_ms", stream.LatencyBuckets),
		hJoinWin:   reg.Window("psmd_join_latency_ms_window", stream.LatencyBuckets, obs.DefaultWindowInterval, obs.DefaultWindowSlots),
		stopc:      make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		scfg := cfg.Stream
		scfg.Registry = nil // private per-engine registry; see Config.Stream
		sh := &shard{
			idx:     i,
			eng:     stream.NewEngine(scfg),
			q:       make(chan task, cfg.queueDepth()),
			stopc:   c.stopc,
			gDepth:  reg.Gauge(fmt.Sprintf("psmd_shard%d_queue_depth", i)),
			mShed:   reg.Counter(fmt.Sprintf("psmd_shard%d_shed_total", i)),
			mShedAg: c.mShed,
		}
		c.shards = append(c.shards, sh)
		c.wg.Add(1)
		go func() { defer c.wg.Done(); sh.run() }()
	}
	return c
}

// Close stops the shard workers after draining whatever is already
// queued. Producers must be quiesced first (the serving layer shuts its
// HTTP server down before closing the coordinator); operations racing a
// Close fail with a closed-coordinator error rather than hanging.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.stopc)
		c.wg.Wait()
	})
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Registry exposes the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.reg }

// JoinLatencyWindow returns the cross-shard join latency distribution
// over the most recent sliding window (the /v1/status feed).
func (c *Coordinator) JoinLatencyWindow() obs.HistogramSnapshot { return c.hJoinWin.Snapshot() }

// Schema returns the pinned global schema (nil before the first Open).
func (c *Coordinator) Schema() []trace.Signal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.schema
}

// InputCols returns the primary-input column indices.
func (c *Coordinator) InputCols() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.inputCols...)
}

// ShardOf returns the shard a session id routes to (tests, ops).
func (c *Coordinator) ShardOf(id string) int { return c.ring.shardOf(id) }

// Session is one open trace being streamed through the coordinator.
// Like stream.Session it is single-producer. Appends are asynchronous:
// they enqueue onto the session's shard and are applied by the shard
// worker, so a validation failure surfaces on a later call or at Close
// (Err reports the first deferred failure early).
type Session struct {
	c  *Coordinator
	sh *shard
	id string
	ws *wsession
}

// Open routes a session to its shard by consistent hash on id (an
// empty id is assigned one) and waits for the shard engine to accept
// it, so engine-side rejections (schema mismatch, open-session cap)
// surface synchronously. The first Open pins the coordinator's global
// schema; later sessions must match it on arrival, before they reach
// any shard.
func (c *Coordinator) Open(ctx context.Context, id string, sigs []trace.Signal) (*Session, error) {
	c.mu.Lock()
	if c.schema == nil {
		if len(sigs) == 0 {
			c.mu.Unlock()
			return nil, fmt.Errorf("stream: empty signal schema")
		}
		cols, err := stream.InputColumns(sigs, c.cfg.Stream.Inputs)
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		c.schema = append([]trace.Signal(nil), sigs...)
		c.inputCols = cols
		c.candidates = mining.CandidateAtoms(c.schema)
	} else if !sameSchema(c.schema, sigs) {
		c.mu.Unlock()
		return nil, fmt.Errorf("stream: session schema differs from the engine's (%d signals)", len(c.schema))
	}
	if id == "" {
		c.autoID++
		id = fmt.Sprintf("session-%d", c.autoID)
	}
	schema := c.schema
	c.mu.Unlock()

	sh := c.shards[c.ring.shardOf(id)]
	ws := &wsession{sigs: schema}
	ack := make(chan error, 1)
	if err := sh.enqueue(task{kind: taskOpen, ws: ws, sigs: schema, ack: ack}, c.cfg.enqueueTimeout()); err != nil {
		return nil, err
	}
	select {
	case err := <-ack:
		if err != nil {
			return nil, err
		}
	case <-ctx.Done():
		// The queued open will still run; queue an abort behind it so
		// the engine slot it takes is released again.
		//psmlint:ignore err-drop best-effort cleanup on a cancelled open; the abort is a no-op if the coordinator is closing
		sh.enqueueBlocking(task{kind: taskAbort, ws: ws})
		return nil, ctx.Err()
	case <-c.stopc:
		return nil, errClosed
	}
	return &Session{c: c, sh: sh, id: id, ws: ws}, nil
}

// ID returns the session's (possibly auto-assigned) id.
func (s *Session) ID() string { return s.id }

// Shard returns the shard index the session routed to.
func (s *Session) Shard() int { return s.sh.idx }

// Err reports the first deferred failure of this session's asynchronous
// appends (nil while healthy). After a failure the shard has already
// aborted the underlying engine session; the producer should stop
// streaming and surface the error.
func (s *Session) Err() error { return s.ws.failure() }

// AppendRows hands a decoded batch to the shard worker. Ownership of
// rows and powers transfers to the coordinator: the caller must not
// reuse them (the engine retains the batch's last row as input-HD
// history, see stream.Session.AppendBatch). Blocks at most the enqueue
// timeout when the shard is saturated, then sheds with SaturatedError.
func (s *Session) AppendRows(rows [][]logic.Vector, powers []float64) error {
	if err := s.ws.failure(); err != nil {
		return err
	}
	return s.sh.enqueue(task{kind: taskRows, ws: s.ws, rows: rows, pows: powers}, s.c.cfg.enqueueTimeout())
}

// AppendLines hands framed NDJSON record lines to the shard worker,
// which parses them there (stream.LineParser + DecodeRowArena) — the
// sharded hot path: the HTTP handler only frames and copies lines, the
// per-shard worker pays the parse and the reduction. buf must hold
// exactly records newline-terminated record lines and ownership
// transfers; firstLine is the 1-based position of buf's first line in
// the upload (error-text accounting, the header is line 1).
func (s *Session) AppendLines(buf []byte, records, firstLine int) error {
	if err := s.ws.failure(); err != nil {
		return err
	}
	return s.sh.enqueue(task{kind: taskLines, ws: s.ws, lines: buf, nlines: records, firstLine: firstLine}, s.c.cfg.enqueueTimeout())
}

// Close completes the session on its shard and waits for the result:
// the shard-local trace index and the record count that landed. Any
// deferred append failure surfaces here at the latest.
func (s *Session) Close(ctx context.Context) (traceIdx, rows int, err error) {
	res := make(chan closeAck, 1)
	if err := s.sh.enqueueBlocking(task{kind: taskClose, ws: s.ws, res: res}); err != nil {
		return 0, 0, err
	}
	select {
	case a := <-res:
		return a.trace, a.rows, a.err
	case <-ctx.Done():
		return 0, 0, ctx.Err()
	case <-s.c.stopc:
		return 0, 0, errClosed
	}
}

// Abort discards the session (client disconnect mid-upload): nothing it
// streamed reaches the model. The abort is queued behind any in-flight
// appends and never sheds.
func (s *Session) Abort() {
	//psmlint:ignore err-drop an abort racing coordinator shutdown has nothing left to clean up
	s.sh.enqueueBlocking(task{kind: taskAbort, ws: s.ws})
}

// Flush blocks until every task enqueued on every shard before the
// call has been applied to the shard engines — the graceful-drain
// barrier before a final snapshot.
func (c *Coordinator) Flush(ctx context.Context) error {
	acks := make([]chan error, len(c.shards))
	for i, sh := range c.shards {
		acks[i] = make(chan error, 1)
		if err := sh.enqueueBlocking(task{kind: taskFlush, ack: acks[i]}); err != nil {
			return err
		}
	}
	for _, ack := range acks {
		select {
		case <-ack:
		case <-ctx.Done():
			return ctx.Err()
		case <-c.stopc:
			return errClosed
		}
	}
	return nil
}

// taskKind discriminates the shard queue's messages.
type taskKind int

const (
	taskOpen taskKind = iota
	taskRows
	taskLines
	taskClose
	taskAbort
	taskFlush
	taskHold
)

// closeAck is the worker's reply to a taskClose.
type closeAck struct {
	trace int
	rows  int
	err   error
}

// task is one shard-queue message. Appends carry their payload by
// ownership transfer; control messages carry reply channels.
type task struct {
	kind      taskKind
	ws        *wsession
	sigs      []trace.Signal   // taskOpen
	rows      [][]logic.Vector // taskRows
	pows      []float64        // taskRows
	lines     []byte           // taskLines: newline-terminated record lines
	nlines    int              // taskLines: record count in lines
	firstLine int              // taskLines: 1-based upload line of lines[0]
	ack       chan error       // taskOpen (buffered), taskFlush (closed)
	res       chan closeAck    // taskClose (buffered)
	held      chan struct{}    // taskHold: closed once the worker is parked
	release   chan struct{}    // taskHold: worker resumes when closed
}

// wsession is the worker-side state of one session. The worker owns
// everything except err, which the producer reads through failure().
type wsession struct {
	sigs   []trace.Signal
	sess   *stream.Session
	arenas [2]logic.Arena // double-buffered: the engine keeps the last row one extra batch
	epoch  int
	rowMem []logic.Vector
	rows   [][]logic.Vector
	pows   []float64
	raw    stream.RawRecord
	parser stream.LineParser
	dead   bool // worker-only: aborted/closed, later tasks are dropped

	mu  sync.Mutex
	err error
}

func (ws *wsession) fail(err error) {
	ws.mu.Lock()
	if ws.err == nil {
		ws.err = err
	}
	ws.mu.Unlock()
}

func (ws *wsession) failure() error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.err
}

// kill records the session's first failure and discards it from the
// engine; every later task of the session is dropped.
func (ws *wsession) kill(err error) {
	ws.fail(err)
	if ws.sess != nil {
		ws.sess.Abort()
	}
	ws.dead = true
}

// enqueue offers a task with backpressure: an immediate slot wins, a
// full queue blocks up to timeout, then the task is shed with a
// SaturatedError naming the shard.
func (sh *shard) enqueue(t task, timeout time.Duration) error {
	select {
	case sh.q <- t:
		sh.gDepth.Set(float64(len(sh.q)))
		return nil
	case <-sh.stopc:
		return errClosed
	default:
	}
	//psmlint:ignore nondet-source backpressure deadline; sheds load, never reaches the model
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case sh.q <- t:
		sh.gDepth.Set(float64(len(sh.q)))
		return nil
	case <-timer.C:
		sh.mShed.Inc()
		sh.mShedAg.Inc()
		return &SaturatedError{Shard: sh.idx, RetryAfter: timeout}
	case <-sh.stopc:
		return errClosed
	}
}

// enqueueBlocking queues a control message that must not be shed
// (close, abort, flush, hold): it waits for a slot however long that
// takes — the worker is always draining — and fails only when the
// coordinator is shutting down.
func (sh *shard) enqueueBlocking(t task) error {
	select {
	case sh.q <- t:
		sh.gDepth.Set(float64(len(sh.q)))
		return nil
	case <-sh.stopc:
		return errClosed
	}
}

// run is the shard worker: the only goroutine that touches the shard's
// engine. On stop it drains what is already queued, then exits.
func (sh *shard) run() {
	for {
		select {
		case t := <-sh.q:
			sh.gDepth.Set(float64(len(sh.q)))
			sh.handle(t)
		case <-sh.stopc:
			for {
				select {
				case t := <-sh.q:
					sh.handle(t)
				default:
					sh.gDepth.Set(0)
					return
				}
			}
		}
	}
}

// handle applies one task to the shard engine.
func (sh *shard) handle(t task) {
	switch t.kind {
	case taskOpen:
		ss, err := sh.eng.Open(t.sigs)
		if err != nil {
			t.ws.kill(err)
		} else {
			t.ws.sess = ss
		}
		t.ack <- err
	case taskRows:
		if t.ws.dead {
			return
		}
		if err := t.ws.sess.AppendBatch(t.rows, t.pows); err != nil {
			t.ws.kill(err)
		}
	case taskLines:
		sh.handleLines(t)
	case taskClose:
		ws := t.ws
		if ws.dead {
			err := ws.failure()
			if err == nil {
				err = fmt.Errorf("stream: session closed twice")
			}
			t.res <- closeAck{err: err}
			return
		}
		rows := ws.sess.Rows()
		idx, err := ws.sess.Close()
		ws.dead = true
		if err != nil {
			ws.fail(err)
		}
		t.res <- closeAck{trace: idx, rows: rows, err: err}
	case taskAbort:
		if !t.ws.dead && t.ws.sess != nil {
			t.ws.sess.Abort()
		}
		t.ws.dead = true
	case taskFlush:
		close(t.ack)
	case taskHold:
		// Park until released: the snapshot path holds every shard to
		// read a consistent per-shard cut (stats + chains + series).
		close(t.held)
		<-t.release
	}
}

// handleLines parses one framed line batch into the session's arenas
// and reduces it in a single AppendBatch — the serve.handleTraces hot
// path, relocated onto the shard worker so N shards parse and reduce
// on N cores while the HTTP handlers only frame bytes.
func (sh *shard) handleLines(t task) {
	ws := t.ws
	if ws.dead {
		return
	}
	// Two alternating arenas: the engine references the previous batch's
	// last row until this batch lands, so this batch must decode into
	// the arena the batch before last used, never the immediately
	// previous one.
	a := &ws.arenas[ws.epoch&1]
	a.Reset()
	ws.epoch++
	if need := t.nlines * len(ws.sigs); cap(ws.rowMem) < need {
		ws.rowMem = make([]logic.Vector, need)
	}
	ws.rows = ws.rows[:0]
	ws.pows = ws.pows[:0]
	buf, lineno := t.lines, t.firstLine
	for len(buf) > 0 {
		nl := bytes.IndexByte(buf, '\n')
		if nl < 0 {
			nl = len(buf) // a final unterminated line is still a line
		}
		line := buf[:nl]
		if nl < len(buf) {
			buf = buf[nl+1:]
		} else {
			buf = nil
		}
		if len(line) == 0 {
			continue
		}
		if err := ws.parser.Parse(line, lineno, &ws.raw); err != nil {
			ws.kill(err)
			return
		}
		if ws.raw.P == nil {
			ws.kill(fmt.Errorf("stream: record %d: training records need a power value \"p\"",
				ws.sess.Rows()+len(ws.rows)+1))
			return
		}
		k := len(ws.rows) * len(ws.sigs)
		row, err := stream.DecodeRowArena(ws.sigs, &ws.raw, a, ws.rowMem[k:k:k+len(ws.sigs)])
		if err != nil {
			ws.kill(err)
			return
		}
		ws.rows = append(ws.rows, row)
		ws.pows = append(ws.pows, *ws.raw.P)
		lineno++
	}
	if len(ws.rows) == 0 {
		return
	}
	if err := ws.sess.AppendBatch(ws.rows, ws.pows); err != nil {
		ws.kill(err)
	}
}

func sameSchema(a, b []trace.Signal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
