// Package shard runs several stream.Engines as one logical psmd: a
// coordinator partitions inbound sessions across N shards by consistent
// hash on the session id, each shard reduces its sessions on a
// dedicated worker behind a bounded queue (backpressure instead of
// unbounded buffering), and a cross-shard snapshot re-interns the shard
// dictionaries into one canonical global dictionary and collapses the
// shards' chains with the batch Concat/JoinPooled algebra — so the
// served model is byte-identical to a single engine over the same
// sessions in canonical order, for any shard count and any
// interleaving (pinned by the cross-shard parity suite).
package shard

import (
	"fmt"
	"sort"
)

// vnodesPerShard is the virtual-node count each shard contributes to
// the hash ring. 64 vnodes keep the assignment within a few percent of
// uniform for small shard counts while keeping ring construction and
// lookup trivially cheap.
const vnodesPerShard = 64

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is a consistent-hash ring over shard indices: a session id maps
// to the first virtual node at or clockwise after its hash. Consistent
// hashing (rather than hash mod N) keeps most session→shard
// assignments stable when the shard count changes — only the keyspace
// adjacent to the moved vnodes reassigns — so a redeploy at a
// different -shards value re-routes a minimal fraction of returning
// session ids.
type ring struct {
	points []ringPoint
}

// newRing builds the ring for n shards. Construction is deterministic:
// vnode positions are FNV-1a hashes of "shard-<s>/vnode-<v>", ties
// broken by shard index, so every process computes the same ring.
func newRing(n int) *ring {
	pts := make([]ringPoint, 0, n*vnodesPerShard)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			pts = append(pts, ringPoint{hash: fnv64(fmt.Sprintf("shard-%d/vnode-%d", s, v)), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].shard < pts[j].shard
	})
	return &ring{points: pts}
}

// shardOf maps a session id to its shard.
func (r *ring) shardOf(session string) int {
	h := fnv64(session)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last vnode the ring starts over
	}
	return r.points[i].shard
}

// fnv64 is the 64-bit FNV-1a hash with a splitmix64-style avalanche
// finalizer. Ring placement orders points by the full 64-bit value, and
// raw FNV-1a barely diffuses short structured keys ("shard-3/vnode-17",
// "sess-42") into the high bits, which makes vnode arcs — and therefore
// shard load — visibly lumpy. The finalizer spreads every input bit
// across the word, keeping the assignment within a few percent of
// uniform (pinned by TestRingDistribution).
func fnv64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
