package shard_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/pipeline"
	"psmkit/internal/psm"
	"psmkit/internal/shard"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// shardCounts is the fleet-size sweep every parity property runs over:
// 1 pins that a one-shard fleet degenerates to the single engine, the
// rest pin that the cross-shard join is invariant in the partition.
var shardCounts = []int{1, 2, 4, 8}

// parityCase is one randomized trace set fed to every flow, mirroring
// the stream parity suite's generator (run-structured control signals,
// power tracking the control state) with a higher trace count so that
// several shards actually receive sessions.
type parityCase struct {
	fts    []*trace.Functional
	pws    []*trace.Power
	cols   []int
	inputs []string
}

func genParityCase(rng *rand.Rand) parityCase {
	sigs := []trace.Signal{
		{Name: "en", Width: 1},
		{Name: "busy", Width: 1},
		{Name: "op", Width: 2},
		{Name: "a", Width: 4},
		{Name: "b", Width: 4},
	}
	nTraces := 2 + rng.Intn(5)
	c := parityCase{cols: []int{0, 2, 3}, inputs: []string{"en", "op", "a"}}
	for i := 0; i < nTraces; i++ {
		n := 30 + rng.Intn(170)
		ft := trace.NewFunctional(sigs)
		pw := &trace.Power{}
		row := make([]logic.Vector, len(sigs))
		for j, s := range sigs {
			row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
		}
		for t := 0; t < n; t++ {
			for j, s := range sigs {
				p := 0.08
				if s.Width > 2 {
					p = 0.4
				}
				if rng.Float64() < p {
					row[j] = logic.FromUint64(s.Width, uint64(rng.Intn(1<<uint(s.Width))))
				}
			}
			ft.Append(row)
			level := 1.0
			if row[0].Bit(0) == 1 {
				level += 2.5
			}
			if row[1].Bit(0) == 1 {
				level += 1.2
			}
			hw := 0.0
			for b := 0; b < 4; b++ {
				hw += float64(row[3].Bit(b))
			}
			pw.Values = append(pw.Values, level+0.15*hw+0.01*rng.NormFloat64())
		}
		c.fts = append(c.fts, ft)
		c.pws = append(c.pws, pw)
	}
	return c
}

func flowPolicies() (mining.Config, psm.MergePolicy, psm.CalibrationPolicy) {
	return mining.DefaultConfig(), psm.DefaultMergePolicy(), psm.DefaultCalibrationPolicy()
}

// batchModel is the ground truth: pipeline.BuildModel over the given
// traces in the given order.
func batchModel(c parityCase, traces []int) (*psm.Model, error) {
	mcfg, merge, cal := flowPolicies()
	var fts []*trace.Functional
	var pws []*trace.Power
	for _, i := range traces {
		fts = append(fts, c.fts[i])
		pws = append(pws, c.pws[i])
	}
	cfg := pipeline.Config{Workers: 2, Mining: mcfg, Merge: merge, Calibration: cal}
	return pipeline.BuildModel(context.Background(), fts, pws, c.cols, cfg)
}

func exports(t testing.TB, m *psm.Model) (string, string) {
	t.Helper()
	var dot, js bytes.Buffer
	if err := m.WriteDOT(&dot, "m"); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return dot.String(), js.String()
}

func newCoordinator(c parityCase, shards, workers int) *shard.Coordinator {
	mcfg, merge, cal := flowPolicies()
	return shard.New(shard.Config{
		Shards: shards,
		Stream: stream.Config{
			Workers:     workers,
			Mining:      mcfg,
			Merge:       merge,
			Calibration: cal,
			Inputs:      c.inputs,
		},
	})
}

// interleave streams every trace of the case through the coordinator
// with the given record schedule and returns the canonical global trace
// order: shard-major, each shard's sessions in completion order — the
// order the cross-shard snapshot pins itself to. Session ids are the
// trace numbers, so the consistent-hash routing (not the test) decides
// which shard each trace lands on.
func interleave(t testing.TB, co *shard.Coordinator, c parityCase, rng *rand.Rand,
	pick func(rng *rand.Rand, open []int) int) []int {
	t.Helper()
	ctx := context.Background()
	sessions := make([]*shard.Session, len(c.fts))
	next := make([]int, len(c.fts))
	var open []int
	for i := range c.fts {
		s, err := co.Open(ctx, fmt.Sprintf("trace-%d", i), c.fts[i].Signals)
		if err != nil {
			t.Fatalf("open session %d: %v", i, err)
		}
		sessions[i] = s
		open = append(open, i)
	}
	type done struct{ shardIdx, local, traceIdx int }
	var closed []done
	for len(open) > 0 {
		k := pick(rng, open)
		i := open[k]
		r := next[i]
		if err := sessions[i].AppendRows([][]logic.Vector{c.fts[i].Row(r)}, []float64{c.pws[i].Values[r]}); err != nil {
			t.Fatalf("append trace %d record %d: %v", i, r, err)
		}
		next[i]++
		if next[i] == c.fts[i].Len() {
			local, rows, err := sessions[i].Close(ctx)
			if err != nil {
				t.Fatalf("close trace %d: %v", i, err)
			}
			if rows != c.fts[i].Len() {
				t.Fatalf("close trace %d: %d rows landed, want %d", i, rows, c.fts[i].Len())
			}
			closed = append(closed, done{sessions[i].Shard(), local, i})
			open = append(open[:k], open[k+1:]...)
		}
	}
	sort.Slice(closed, func(a, b int) bool {
		if closed[a].shardIdx != closed[b].shardIdx {
			return closed[a].shardIdx < closed[b].shardIdx
		}
		return closed[a].local < closed[b].local
	})
	order := make([]int, len(closed))
	for i, d := range closed {
		order[i] = d.traceIdx
	}
	return order
}

// TestCrossShardMatchesBatch is the cross-shard equivalence property
// suite — the tentpole guarantee: for seeded random trace sets, several
// session-interleaving schedules and every shard count, the
// coordinator's snapshot must export byte-identical JSON and DOT to
// pipeline.BuildModel (and hence to the single-engine path, pinned
// equal to batch by the stream parity suite) over the same traces in
// canonical shard-major order.
func TestCrossShardMatchesBatch(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	schedules := []struct {
		name string
		pick func(rng *rand.Rand, open []int) int
	}{
		{"sequential", func(_ *rand.Rand, open []int) int { return 0 }},
		{"round-robin", func(_ *rand.Rand, open []int) int { return rrCounter() % len(open) }},
		{"random", func(rng *rand.Rand, open []int) int { return rng.Intn(len(open)) }},
		{"reverse", func(_ *rand.Rand, open []int) int { return len(open) - 1 }},
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		c := genParityCase(rng)
		for _, n := range shardCounts {
			for _, sched := range schedules {
				rrReset()
				co := newCoordinator(c, n, 1+seed%4)
				order := interleave(t, co, c, rng, sched.pick)

				live, liveErr := co.Snapshot(context.Background())
				batch, batchErr := batchModel(c, order)
				if (liveErr != nil) != (batchErr != nil) {
					t.Fatalf("seed %d shards %d %s: shard err %v, batch err %v (order %v)",
						seed, n, sched.name, liveErr, batchErr, order)
				}
				if liveErr != nil {
					co.Close()
					continue
				}
				ld, lj := exports(t, live)
				bd, bj := exports(t, batch)
				if ld != bd {
					t.Fatalf("seed %d shards %d %s order %v: DOT exports differ\nshard:\n%s\nbatch:\n%s",
						seed, n, sched.name, order, ld, bd)
				}
				if lj != bj {
					t.Fatalf("seed %d shards %d %s order %v: JSON exports differ", seed, n, sched.name, order)
				}

				// A repeat snapshot reuses the shard epoch caches and the
				// cross-snapshot verdict memo (the delta path) and must stay
				// byte-identical too.
				again, err := co.Snapshot(context.Background())
				if err != nil {
					t.Fatalf("seed %d shards %d %s: repeat snapshot: %v", seed, n, sched.name, err)
				}
				ad, aj := exports(t, again)
				if ad != bd || aj != bj {
					t.Fatalf("seed %d shards %d %s order %v: delta-path snapshot diverges from batch",
						seed, n, sched.name, order)
				}
				m := co.Metrics()
				if m.Snapshots != m.Rebuilds+m.DeltaSnapshots {
					t.Fatalf("seed %d shards %d %s: %d snapshots ≠ %d rebuilds + %d delta",
						seed, n, sched.name, m.Snapshots, m.Rebuilds, m.DeltaSnapshots)
				}
				if m.DeltaSnapshots < 1 {
					t.Fatalf("seed %d shards %d %s: repeat snapshot did not take the delta path", seed, n, sched.name)
				}
				if m.TracesCompleted != len(c.fts) {
					t.Fatalf("seed %d shards %d %s: %d traces completed, want %d",
						seed, n, sched.name, m.TracesCompleted, len(c.fts))
				}
				co.Close()
			}
		}
	}
}

var rrN int

func rrCounter() int { rrN++; return rrN - 1 }
func rrReset()       { rrN = 0 }

// TestCrossShardSnapshotAfterEveryTrace exercises the incremental global
// path: snapshot after each completed session and compare with batch
// over the canonical prefix. Early snapshots move the globally-selected
// kept atom set (global epoch rebuilds, shard cache rebuilds), later
// ones reuse every shard's epoch cache.
func TestCrossShardSnapshotAfterEveryTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := genParityCase(rng)
	for len(c.fts) < 3 {
		c = genParityCase(rng)
	}
	co := newCoordinator(c, 4, 2)
	defer co.Close()
	ctx := context.Background()

	type done struct{ shardIdx, local, traceIdx int }
	var closed []done
	for i := range c.fts {
		s, err := co.Open(ctx, fmt.Sprintf("trace-%d", i), c.fts[i].Signals)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < c.fts[i].Len(); r++ {
			if err := s.AppendRows([][]logic.Vector{c.fts[i].Row(r)}, []float64{c.pws[i].Values[r]}); err != nil {
				t.Fatal(err)
			}
		}
		local, _, err := s.Close(ctx)
		if err != nil {
			t.Fatal(err)
		}
		closed = append(closed, done{s.Shard(), local, i})

		canon := append([]done(nil), closed...)
		sort.Slice(canon, func(a, b int) bool {
			if canon[a].shardIdx != canon[b].shardIdx {
				return canon[a].shardIdx < canon[b].shardIdx
			}
			return canon[a].local < canon[b].local
		})
		order := make([]int, len(canon))
		for j, d := range canon {
			order[j] = d.traceIdx
		}

		live, liveErr := co.Snapshot(ctx)
		batch, batchErr := batchModel(c, order)
		if (liveErr != nil) != (batchErr != nil) {
			t.Fatalf("prefix %v: shard err %v, batch err %v", order, liveErr, batchErr)
		}
		if liveErr != nil {
			continue
		}
		ld, lj := exports(t, live)
		bd, bj := exports(t, batch)
		if ld != bd || lj != bj {
			t.Fatalf("prefix %v: exports differ from batch", order)
		}
	}
}

// TestCrossShardProvenanceMatchesSingleEngine pins the audit trail: the
// coordinator's provenance replay must record exactly the decision
// sequence a single engine fed the canonical session order records.
func TestCrossShardProvenanceMatchesSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := genParityCase(rng)
	ctx := context.Background()
	for _, n := range shardCounts {
		co := newCoordinator(c, n, 2)
		order := interleave(t, co, c, rng, func(rng *rand.Rand, open []int) int { return rng.Intn(len(open)) })

		mcfg, merge, cal := flowPolicies()
		eng := stream.NewEngine(stream.Config{
			Workers: 2, Mining: mcfg, Merge: merge, Calibration: cal, Inputs: c.inputs,
		})
		for _, i := range order {
			s, err := eng.Open(c.fts[i].Signals)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < c.fts[i].Len(); r++ {
				if err := s.Append(c.fts[i].Row(r), c.pws[i].Values[r]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Close(); err != nil {
				t.Fatal(err)
			}
		}

		got, gotErr := co.Provenance(ctx)
		want, wantErr := eng.Provenance(ctx)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("shards %d: shard err %v, engine err %v", n, gotErr, wantErr)
		}
		if gotErr == nil {
			if len(got) == 0 {
				t.Fatalf("shards %d: empty provenance log", n)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards %d: provenance decision sequences differ (%d vs %d decisions)",
					n, len(got), len(want))
			}
		}
		co.Close()
	}
}

// TestCrossShardLinesPathMatchesRows pins the worker-side NDJSON parse:
// streaming framed record lines (the serve hot path) must produce the
// same model bytes as streaming decoded rows.
func TestCrossShardLinesPathMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := genParityCase(rng)
	ctx := context.Background()

	viaRows := newCoordinator(c, 4, 2)
	defer viaRows.Close()
	viaLines := newCoordinator(c, 4, 2)
	defer viaLines.Close()

	for i := range c.fts {
		id := fmt.Sprintf("trace-%d", i)
		sr, err := viaRows.Open(ctx, id, c.fts[i].Signals)
		if err != nil {
			t.Fatal(err)
		}
		sl, err := viaLines.Open(ctx, id, c.fts[i].Signals)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		records := 0
		for r := 0; r < c.fts[i].Len(); r++ {
			row := c.fts[i].Row(r)
			if err := sr.AppendRows([][]logic.Vector{row}, []float64{c.pws[i].Values[r]}); err != nil {
				t.Fatal(err)
			}
			buf.WriteString(`{"v":[`)
			for j, v := range row {
				if j > 0 {
					buf.WriteByte(',')
				}
				fmt.Fprintf(&buf, "%q", v.Hex())
			}
			fmt.Fprintf(&buf, `],"p":%g}`, c.pws[i].Values[r])
			buf.WriteByte('\n')
			records++
			// Flush in irregular chunks so batch boundaries differ from
			// record boundaries.
			if records == 7 || buf.Len() > 1<<10 {
				if err := sl.AppendLines(append([]byte(nil), buf.Bytes()...), records, 2+r-records+1); err != nil {
					t.Fatal(err)
				}
				buf.Reset()
				records = 0
			}
		}
		if records > 0 {
			if err := sl.AppendLines(append([]byte(nil), buf.Bytes()...), records, 2+c.fts[i].Len()-records); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := sr.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sl.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}

	a, err := viaRows.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaLines.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ad, aj := exports(t, a)
	bd, bj := exports(t, b)
	if ad != bd || aj != bj {
		t.Fatal("lines-path model differs from rows-path model")
	}
}
