package experiment

import (
	"bytes"
	"testing"

	"psmkit/internal/testbench"
)

// TestBuildModelParallelMatchesSequential pins the experiment-layer
// wrapper: same traces, same policies, byte-identical exports.
func TestBuildModelParallelMatchesSequential(t *testing.T) {
	c, err := CaseByName("MultSum")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := GenerateTraces(c, 1600, Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicies()
	seq, err := BuildModel(ts, pol)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		par, err := BuildModelParallel(ts, pol, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var a, b bytes.Buffer
		if err := seq.Model.WriteJSON(&a); err != nil {
			t.Fatal(err)
		}
		if err := par.Model.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("workers=%d: parallel model differs from sequential", workers)
		}
	}
}

// TestTableRowsOrderAndErrors checks the row fan-out keeps Cases() order
// and propagates a row failure with the IP name attached.
func TestTableRowsOrderAndErrors(t *testing.T) {
	names, err := tableRows(4, func(c IPCase) (string, error) { return c.Name, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range Cases() {
		if names[i] != c.Name {
			t.Errorf("row %d = %s, want %s", i, names[i], c.Name)
		}
	}

	_, err = tableRows(4, func(c IPCase) (string, error) {
		if c.Name == "AES" {
			return "", errTest
		}
		return c.Name, nil
	})
	if err == nil || err.Error() != "AES: synthetic failure" {
		t.Errorf("err = %v, want AES-labelled failure", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "synthetic failure" }
