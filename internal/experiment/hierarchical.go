package experiment

import (
	"fmt"
	"time"

	"psmkit/internal/hdl"
	"psmkit/internal/hierarchy"
	"psmkit/internal/ip"
	"psmkit/internal/power"
	"psmkit/internal/powersim"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// HierarchicalRow compares the flat PI/PO-level PSM against the
// hierarchical per-subcomponent PSMs (the paper's Section VII future
// work) on the Camellia benchmark.
type HierarchicalRow struct {
	Groups      []string
	FlatStates  int
	HierStates  int
	FlatMRE     float64
	HierMRE     float64
	FlatGenSecs float64
	HierGenSecs float64
	Validation  int
}

// probedSet holds probed-schema training data with per-group power.
type probedSet struct {
	fts       []*trace.Functional
	total     []*trace.Power
	groups    map[string][]*trace.Power
	inputCols []int // in the probed schema
	flatCols  []int // PI/PO projection columns
}

// generateProbed simulates Camellia capturing the extended schema and the
// per-subcomponent power traces.
func generateProbed(c IPCase, total, pieces int, opts testbench.Options) (*probedSet, error) {
	ps := &probedSet{groups: map[string][]*trace.Power{}}
	per := total / pieces
	for p := 0; p < pieces; p++ {
		n := per
		if p == pieces-1 {
			n = total - per*(pieces-1)
		}
		core := c.New()
		probed, ok := core.(hdl.Probed)
		if !ok {
			return nil, fmt.Errorf("experiment: core %s exposes no probes", c.Name)
		}
		cam, ok := core.(*ip.Camellia128)
		if !ok {
			return nil, fmt.Errorf("experiment: hierarchical flow is defined for Camellia")
		}
		sim := hdl.NewSimulator(core)
		est := power.NewEstimator(core, power.DefaultConfig())
		est.Classify(cam.SubcomponentOf)
		ft, obs := hierarchy.CaptureProbed(probed)
		sim.Observe(obs)
		sim.Observe(est.Observer())
		pOpts := opts
		pOpts.Seed = opts.Seed + int64(p)*7919
		gen, err := testbench.For(core, pOpts)
		if err != nil {
			return nil, err
		}
		if err := testbench.Drive(sim, gen, n); err != nil {
			return nil, err
		}
		ps.fts = append(ps.fts, ft)
		ps.total = append(ps.total, &trace.Power{Values: est.Trace()})
		for _, g := range est.Groups() {
			ps.groups[g] = append(ps.groups[g], &trace.Power{Values: est.GroupTrace(g)})
		}
		if p == 0 {
			ps.inputCols = trace.InputColumns(ft, core)
			// Flat projection: the PI/PO columns only (the probes come
			// after the ports in the probed schema).
			nPorts := len(trace.CoreSchema(core))
			for i := 0; i < nPorts; i++ {
				ps.flatCols = append(ps.flatCols, i)
			}
		}
	}
	return ps, nil
}

// HierarchicalCamellia trains both models on short-TS and cross-validates
// them on a long-TS slice (with stall injection, like Table III). scale
// shrinks both testsets; the reference experiment uses scale = 1.
func HierarchicalCamellia(scale float64, pol Policies) (HierarchicalRow, error) {
	c, err := CaseByName("Camellia")
	if err != nil {
		return HierarchicalRow{}, err
	}
	train, err := generateProbed(c, scaled(c.ShortTS, scale), Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		return HierarchicalRow{}, err
	}

	row := HierarchicalRow{}

	// Flat flow: project the probed traces down to the PI/PO schema.
	flatStart := time.Now()
	flatTS := &TraceSet{Case: c, PWs: train.total}
	for _, ft := range train.fts {
		flatTS.FTs = append(flatTS.FTs, ft.Project(train.flatCols))
	}
	flatTS.InputCols = train.inputCols // same indices: inputs precede probes
	flatFlow, err := BuildModel(flatTS, pol)
	if err != nil {
		return HierarchicalRow{}, err
	}
	row.FlatGenSecs = time.Since(flatStart).Seconds()
	row.FlatStates = flatFlow.Model.NumStates()

	// Hierarchical flow: extended schema + per-subcomponent power.
	hierStart := time.Now()
	hcfg := hierarchy.Config{Mining: pol.Mining, Merge: pol.Merge, Calibration: pol.Calibration}
	hier, err := hierarchy.Build(train.fts, train.groups, train.inputCols, hcfg)
	if err != nil {
		return HierarchicalRow{}, err
	}
	row.HierGenSecs = time.Since(hierStart).Seconds()
	row.HierStates = hier.States()
	for _, s := range hier.Subs {
		row.Groups = append(row.Groups, s.Group)
	}

	// Cross-validation on a long-TS slice with stalls.
	n := scaled(c.LongTS/5, scale)
	val, err := generateProbed(c, n, 1, testbench.Options{Seed: c.Seed + 424243, Stalls: true})
	if err != nil {
		return HierarchicalRow{}, err
	}
	row.Validation = n

	flatRes := powersim.Run(flatFlow.Model, val.fts[0].Project(val.flatCols),
		val.inputCols, val.total[0], powersim.DefaultConfig())
	row.FlatMRE = flatRes.MRE

	hierRes := hierarchy.Run(hier, val.fts[0], val.inputCols, val.total[0], powersim.DefaultConfig())
	row.HierMRE = hierRes.MRE

	return row, nil
}
