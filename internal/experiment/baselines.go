package experiment

import (
	"psmkit/internal/powersim"
	"psmkit/internal/stats"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// Baselines puts the PSM's accuracy in context against two stateless
// power models trained on the same data:
//
//   - constant: the average power of the training set (the crudest
//     spreadsheet estimate);
//   - global regression: one linear model power = a + b·HD(inputs) fitted
//     over the whole training set — the paper's calibration idea without
//     the state machine.
//
// The gap between these and the PSM quantifies what the mined temporal
// structure itself contributes.
type BaselineRow struct {
	IP            string
	ConstantMRE   float64
	RegressionMRE float64
	PSMMRE        float64
}

// fitConstant pools the training power into its mean.
func fitConstant(pws []*trace.Power) float64 {
	var mo stats.Moments
	for _, pw := range pws {
		mo.AddAll(pw.Values)
	}
	return mo.Mean()
}

// fitGlobalRegression fits power = a + b·HD(inputs) over all training
// traces. Falls back to the constant model when the regression is
// degenerate.
func fitGlobalRegression(fts []*trace.Functional, pws []*trace.Power, inputCols []int) stats.LinearFit {
	var xs, ys []float64
	for i, ft := range fts {
		hds := ft.InputHammingDistance(inputCols)
		for t := 0; t < ft.Len() && t < pws[i].Len(); t++ {
			xs = append(xs, hds[t])
			ys = append(ys, pws[i].Values[t])
		}
	}
	fit, err := stats.LinearRegression(xs, ys)
	if err != nil {
		return stats.LinearFit{Intercept: fitConstant(pws)}
	}
	return fit
}

// evalBaseline computes the MRE of a per-instant estimator on a
// validation set.
func evalBaseline(fts []*trace.Functional, pws []*trace.Power, estimate func(ft *trace.Functional, t int, hd float64) float64, inputCols []int) float64 {
	var errSum float64
	var n int
	for i, ft := range fts {
		hds := ft.InputHammingDistance(inputCols)
		est := make([]float64, ft.Len())
		for t := 0; t < ft.Len(); t++ {
			est[t] = estimate(ft, t, hds[t])
		}
		m := ft.Len()
		if pws[i].Len() < m {
			m = pws[i].Len()
		}
		errSum += stats.MeanRelativeError(est[:m], pws[i].Values[:m]) * float64(m)
		n += m
	}
	if n == 0 {
		return 0
	}
	return errSum / float64(n)
}

// BaselinesFor trains the PSM and both baselines on the IP's short-TS and
// evaluates all three on the same traces (the Table II protocol).
func BaselinesFor(c IPCase, scale float64, pol Policies) (BaselineRow, error) {
	ts, err := GenerateTraces(c, scaled(c.ShortTS, scale), Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		return BaselineRow{}, err
	}
	flow, err := BuildModel(ts, pol)
	if err != nil {
		return BaselineRow{}, err
	}
	psmMRE, _ := ValidateMRE(flow.Model, ts, powersim.DefaultConfig())

	mean := fitConstant(ts.PWs)
	constMRE := evalBaseline(ts.FTs, ts.PWs, func(_ *trace.Functional, _ int, _ float64) float64 {
		return mean
	}, ts.InputCols)

	fit := fitGlobalRegression(ts.FTs, ts.PWs, ts.InputCols)
	regMRE := evalBaseline(ts.FTs, ts.PWs, func(_ *trace.Functional, _ int, hd float64) float64 {
		return fit.Predict(hd)
	}, ts.InputCols)

	return BaselineRow{
		IP:            c.Name,
		ConstantMRE:   constMRE,
		RegressionMRE: regMRE,
		PSMMRE:        psmMRE,
	}, nil
}

// Baselines runs the comparison for every IP.
func Baselines(scale float64, pol Policies) ([]BaselineRow, error) {
	var rows []BaselineRow
	for _, c := range Cases() {
		r, err := BaselinesFor(c, scale, pol)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}
