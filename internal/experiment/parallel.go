package experiment

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"psmkit/internal/pipeline"
)

// RowWorkers is the worker budget for per-IP experiment rows: one worker
// per processor. Each row owns its cores, simulator, estimator and PSM
// tracker, so rows share nothing mutable and scale independently.
//
// Note that the *timing columns* of a row (PX, IP sim, IP+PSM) measure
// wall time: on a loaded machine, concurrent rows contend and inflate
// each other's timings. The states/transitions/MRE/WSP columns are
// unaffected — the flow itself is deterministic. Record publication
// timings with GOMAXPROCS=1 (see EXPERIMENTS.md).
func RowWorkers() int { return runtime.GOMAXPROCS(0) }

// BuildModelParallel is BuildModel with the per-trace stages fanned out
// over the pipeline worker pool. The generated model is bit-identical to
// the sequential BuildModel for any worker count; only GenTime differs.
// workers ≤ 0 selects GOMAXPROCS.
func BuildModelParallel(ts *TraceSet, pol Policies, workers int) (*Flow, error) {
	start := time.Now()
	cfg := pipeline.Config{
		Workers:         workers,
		Mining:          pol.Mining,
		Merge:           pol.Merge,
		Calibration:     pol.Calibration,
		SkipCalibration: pol.SkipCalibration,
	}
	model, err := pipeline.BuildModel(context.Background(), ts.FTs, ts.PWs, ts.InputCols, cfg)
	if err != nil {
		return nil, err
	}
	return &Flow{Model: model, GenTime: time.Since(start)}, nil
}

// tableRows fans one row-builder per benchmark IP out over the pool,
// keeping the rows in Cases() order.
func tableRows[R any](workers int, build func(IPCase) (R, error)) ([]R, error) {
	cases := Cases()
	rows := make([]R, len(cases))
	err := pipeline.ForEach(context.Background(), workers, len(cases), func(_ context.Context, i int) error {
		r, err := build(cases[i])
		if err != nil {
			return fmt.Errorf("%s: %w", cases[i].Name, err)
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
