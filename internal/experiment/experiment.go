// Package experiment regenerates the paper's evaluation (Section VI): the
// benchmark characterization of Table I, the PSM-generation results of
// Table II (short-TS and long-TS) and the performance / cross-validation
// results of Table III. The cmd/psmreport tool and the repository-root
// benchmarks are thin wrappers over this package.
package experiment

import (
	"fmt"
	"time"

	"psmkit/internal/hdl"
	"psmkit/internal/ip"
	"psmkit/internal/logic"
	"psmkit/internal/mining"
	"psmkit/internal/power"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/stats"
	"psmkit/internal/testbench"
	"psmkit/internal/trace"
)

// IPCase describes one benchmark IP and its testset sizes (Table II's TS
// column uses the paper's exact trace lengths).
type IPCase struct {
	Name    string
	New     func() hdl.Core
	ShortTS int
	LongTS  int
	Seed    int64
}

// Cases returns the four benchmarks of Table I with the paper's testset
// lengths.
func Cases() []IPCase {
	return []IPCase{
		{Name: "RAM", New: func() hdl.Core { return ip.NewRAM() }, ShortTS: 34130, LongTS: 500000, Seed: 1101},
		{Name: "MultSum", New: func() hdl.Core { return ip.NewMultSum() }, ShortTS: 12002, LongTS: 500000, Seed: 2202},
		{Name: "AES", New: func() hdl.Core { return ip.NewAES128() }, ShortTS: 16504, LongTS: 500000, Seed: 3303},
		{Name: "Camellia", New: func() hdl.Core { return ip.NewCamellia128() }, ShortTS: 78004, LongTS: 500000, Seed: 4404},
	}
}

// CaseByName returns the named benchmark.
func CaseByName(name string) (IPCase, error) {
	for _, c := range Cases() {
		if c.Name == name {
			return c, nil
		}
	}
	return IPCase{}, fmt.Errorf("experiment: unknown IP %q", name)
}

// Pieces is the number of training traces a testset is split into; the
// paper extracts one PSM per functional trace and combines them, so the
// join/combination machinery is exercised by every experiment.
const Pieces = 4

// TraceSet bundles the training (or validation) traces of one IP.
type TraceSet struct {
	Case      IPCase
	FTs       []*trace.Functional
	PWs       []*trace.Power
	InputCols []int
	// PXTime is the wall time spent producing the reference power traces
	// (simulation plus gate-level-style power estimation) — the paper's
	// "PX" column.
	PXTime time.Duration
}

// Instants returns the total trace length.
func (ts *TraceSet) Instants() int {
	n := 0
	for _, ft := range ts.FTs {
		n += ft.Len()
	}
	return n
}

// GenerateTraces simulates the IP under its stimulus program, producing
// `pieces` functional traces with reference power traces. The wall time of
// simulation+estimation is accumulated into PXTime.
func GenerateTraces(c IPCase, total, pieces int, opts testbench.Options) (*TraceSet, error) {
	if pieces < 1 || total < pieces {
		return nil, fmt.Errorf("experiment: bad split %d/%d", total, pieces)
	}
	ts := &TraceSet{Case: c}
	per := total / pieces
	for p := 0; p < pieces; p++ {
		n := per
		if p == pieces-1 {
			n = total - per*(pieces-1)
		}
		core := c.New()
		sim := hdl.NewSimulator(core)
		est := power.NewEstimator(core, power.DefaultConfig())
		ft, obs := trace.Capture(core)
		sim.Observe(obs)
		sim.Observe(est.Observer())
		pOpts := opts
		pOpts.Seed = opts.Seed + int64(p)*7919
		gen, err := testbench.For(core, pOpts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := testbench.Drive(sim, gen, n); err != nil {
			return nil, err
		}
		ts.PXTime += time.Since(start)
		ts.FTs = append(ts.FTs, ft)
		ts.PWs = append(ts.PWs, &trace.Power{Values: est.Trace()})
		if p == 0 {
			ts.InputCols = trace.InputColumns(ft, core)
		}
	}
	return ts, nil
}

// Flow is the result of running the full PSM-generation pipeline on a
// trace set.
type Flow struct {
	Model   *psm.Model
	GenTime time.Duration
}

// Policies groups the tunables of the flow (the ablation benchmarks sweep
// them; everything else uses the defaults).
type Policies struct {
	Mining      mining.Config
	Merge       psm.MergePolicy
	Calibration psm.CalibrationPolicy
	// SkipCalibration disables the Hamming-distance regression entirely.
	SkipCalibration bool
}

// DefaultPolicies returns the configuration used for the paper tables.
func DefaultPolicies() Policies {
	return Policies{
		Mining:      mining.DefaultConfig(),
		Merge:       psm.DefaultMergePolicy(),
		Calibration: psm.DefaultCalibrationPolicy(),
	}
}

// BuildModel runs mining → PSMGenerator → simplify → join → calibrate and
// times it (the paper's "PSMs gen." column).
func BuildModel(ts *TraceSet, pol Policies) (*Flow, error) {
	start := time.Now()
	dict, pts, err := mining.Mine(ts.FTs, pol.Mining)
	if err != nil {
		return nil, err
	}
	var chains []*psm.Chain
	for i, pt := range pts {
		c, err := psm.Generate(dict, pt, ts.PWs[i], i)
		if err != nil {
			return nil, fmt.Errorf("experiment: trace %d: %w", i, err)
		}
		chains = append(chains, psm.Simplify(c, pol.Merge))
	}
	model := psm.Join(chains, pol.Merge)
	if !pol.SkipCalibration {
		psm.Calibrate(model, ts.FTs, ts.PWs, ts.InputCols, pol.Calibration)
	}
	return &Flow{Model: model, GenTime: time.Since(start)}, nil
}

// ValidateMRE replays every trace of a set through the model and returns
// the instant-weighted mean relative error and the pooled WSP.
func ValidateMRE(model *psm.Model, ts *TraceSet, cfg powersim.Config) (mre, wsp float64) {
	var errSum float64
	var n int
	var wrong, preds, unsynced int
	for i, ft := range ts.FTs {
		res := powersim.Run(model, ft, ts.InputCols, ts.PWs[i], cfg)
		errSum += res.MRE * float64(res.Instants)
		n += res.Instants
		wrong += res.WrongPredictions
		preds += res.Predictions
		unsynced += res.UnsyncedInstants
	}
	if n > 0 {
		mre = errSum / float64(n)
	}
	if preds > 0 {
		wsp = float64(wrong) / float64(preds)
	} else if unsynced > 0 {
		wsp = 1
	}
	return mre, wsp
}

// --- Table I -------------------------------------------------------------------

// TableIRow is one row of Table I (benchmark characteristics).
type TableIRow struct {
	IP       string
	Lines    int     // Go RTL model source lines (the paper counts Verilog lines)
	PIs      int     // primary-input bits
	POs      int     // primary-output bits
	ElabSecs float64 // power-model elaboration ("Syn. time" analogue)
	MemElems int     // memory-element bits
}

// TableI characterizes the four benchmarks.
func TableI() []TableIRow {
	var rows []TableIRow
	for _, c := range Cases() {
		core := c.New()
		est := power.NewEstimator(core, power.DefaultConfig())
		rows = append(rows, TableIRow{
			IP:       c.Name,
			Lines:    ip.SourceLines(c.Name),
			PIs:      hdl.PortWidths(core, hdl.In),
			POs:      hdl.PortWidths(core, hdl.Out),
			ElabSecs: est.ElaborationTime().Seconds(),
			MemElems: hdl.MemoryBits(core),
		})
	}
	return rows
}

// --- Table II ------------------------------------------------------------------

// TableIIRow is one row of Table II (characteristics of the generated
// PSMs).
type TableIIRow struct {
	IP      string
	TS      int
	PXSecs  float64
	GenSecs float64
	States  int
	Trans   int
	MRE     float64
}

// TableIIFor runs the generation experiment for one IP. long selects the
// long-TS testset; scale (0 < scale ≤ 1) shrinks the trace lengths for
// quick runs — the paper tables use scale = 1.
func TableIIFor(c IPCase, long bool, scale float64, pol Policies) (TableIIRow, error) {
	total := c.ShortTS
	opts := testbench.Options{Seed: c.Seed}
	if long {
		total = c.LongTS
		opts.Seed = c.Seed + 99991
	}
	total = scaled(total, scale)
	ts, err := GenerateTraces(c, total, Pieces, opts)
	if err != nil {
		return TableIIRow{}, err
	}
	flow, err := BuildModel(ts, pol)
	if err != nil {
		return TableIIRow{}, err
	}
	mre, _ := ValidateMRE(flow.Model, ts, powersim.DefaultConfig())
	return TableIIRow{
		IP:      c.Name,
		TS:      total,
		PXSecs:  ts.PXTime.Seconds(),
		GenSecs: flow.GenTime.Seconds(),
		States:  flow.Model.NumStates(),
		Trans:   flow.Model.NumTransitions(),
		MRE:     mre,
	}, nil
}

// TableII runs the generation experiment for every IP, one row per
// worker (RowWorkers documents the timing-column caveat).
func TableII(long bool, scale float64, pol Policies) ([]TableIIRow, error) {
	return tableRows(RowWorkers(), func(c IPCase) (TableIIRow, error) {
		return TableIIFor(c, long, scale, pol)
	})
}

// --- Table III -----------------------------------------------------------------

// TableIIIRow is one row of Table III (simulation performance and
// cross-validated accuracy: PSMs trained on short-TS, validated on
// long-TS).
type TableIIIRow struct {
	IP         string
	IPSimSecs  float64 // functional simulation alone
	CoSimSecs  float64 // functional simulation + PSM tracking
	Overhead   float64 // (CoSim - IPSim) / IPSim
	MRE        float64
	WSP        float64
	PXSecs     float64 // reference power estimation on the same testset
	Speedup    float64 // PXSecs / CoSimSecs: PSM power estimation vs reference
	TrainSecs  float64 // one-off: training-set generation + PSM build
	Validation int     // validation instants
}

// TableIIIFor trains on short-TS and cross-validates on long-TS for one
// IP. The validation stimulus enables stall injection, which only affects
// cores with a stall port (Camellia) — the source of its wrong-state
// predictions, as discussed in Section VI.
func TableIIIFor(c IPCase, scale float64, pol Policies) (TableIIIRow, error) {
	trainStart := time.Now()
	ts, err := GenerateTraces(c, scaled(c.ShortTS, scale), Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		return TableIIIRow{}, err
	}
	flow, err := BuildModel(ts, pol)
	if err != nil {
		return TableIIIRow{}, err
	}
	trainTime := time.Since(trainStart)

	n := scaled(c.LongTS, scale)
	valOpts := testbench.Options{Seed: c.Seed + 424243, Stalls: true}

	// Both timed runs are repeated and the minimum taken, interleaved so
	// ambient effects (GC pressure, frequency scaling) hit both equally.
	const reps = 3
	var ipSim, coSim time.Duration
	var tracker *powersim.Simulator
	var estimates []float64
	for r := 0; r < reps; r++ {
		// Run 1 (timed): the IP alone — the paper's "IP sim." column.
		d, err := timeFunctional(c, n, valOpts, nil)
		if err != nil {
			return TableIIIRow{}, err
		}
		if r == 0 || d < ipSim {
			ipSim = d
		}

		// Run 2 (timed): the IP with the PSM tracker in lock-step.
		tracker = powersim.New(flow.Model, ts.InputCols, powersim.DefaultConfig())
		estimates = estimates[:0]
		d, err = timeFunctional(c, n, valOpts, func(row []logic.Vector) {
			estimates = append(estimates, tracker.Step(row))
		})
		if err != nil {
			return TableIIIRow{}, err
		}
		if r == 0 || d < coSim {
			coSim = d
		}
	}

	// Run 3 (untimed for the table, but it is the PX reference): the IP
	// with the power estimator, for the validation reference trace.
	refStart := time.Now()
	core := c.New()
	sim := hdl.NewSimulator(core)
	est := power.NewEstimator(core, power.DefaultConfig())
	sim.Observe(est.Observer())
	gen, err := testbench.For(core, valOpts)
	if err != nil {
		return TableIIIRow{}, err
	}
	if err := testbench.Drive(sim, gen, n); err != nil {
		return TableIIIRow{}, err
	}
	pxTime := time.Since(refStart)

	res := tracker.Result()
	row := TableIIIRow{
		IP:         c.Name,
		IPSimSecs:  ipSim.Seconds(),
		CoSimSecs:  coSim.Seconds(),
		MRE:        stats.MeanRelativeError(estimates, est.Trace()),
		WSP:        res.WSP(),
		PXSecs:     pxTime.Seconds(),
		TrainSecs:  trainTime.Seconds(),
		Validation: n,
	}
	if ipSim > 0 {
		row.Overhead = (coSim - ipSim).Seconds() / ipSim.Seconds()
	}
	if coSim > 0 {
		row.Speedup = pxTime.Seconds() / coSim.Seconds()
	}
	return row, nil
}

// TableIII runs the cross-validation experiment for every IP, one row
// per worker (RowWorkers documents the timing-column caveat).
func TableIII(scale float64, pol Policies) ([]TableIIIRow, error) {
	return tableRows(RowWorkers(), func(c IPCase) (TableIIIRow, error) {
		return TableIIIFor(c, scale, pol)
	})
}

// timeFunctional simulates the IP for n cycles and returns the wall time.
// When onRow is non-nil it is called each cycle with the PI/PO valuation
// in schema order (the tracker's input).
func timeFunctional(c IPCase, n int, opts testbench.Options, onRow func([]logic.Vector)) (time.Duration, error) {
	core := c.New()
	sim := hdl.NewSimulator(core)
	if onRow != nil {
		names := hdl.SortedPortNames(core)
		row := make([]logic.Vector, len(names))
		sim.Observe(func(_ int, in, out hdl.Values) {
			for i, name := range names {
				if v, ok := in[name]; ok {
					row[i] = v
				} else {
					row[i] = out[name]
				}
			}
			onRow(row)
		})
	}
	gen, err := testbench.For(core, opts)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := testbench.Drive(sim, gen, n); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

func scaled(n int, scale float64) int {
	if scale <= 0 || scale >= 1 {
		return n
	}
	s := int(float64(n) * scale)
	if s < 50*Pieces {
		s = 50 * Pieces
	}
	return s
}
