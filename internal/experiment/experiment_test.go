package experiment

import (
	"testing"

	"psmkit/internal/powersim"
	"psmkit/internal/testbench"
)

func TestCases(t *testing.T) {
	cs := Cases()
	if len(cs) != 4 {
		t.Fatalf("cases = %d", len(cs))
	}
	want := map[string]int{"RAM": 34130, "MultSum": 12002, "AES": 16504, "Camellia": 78004}
	for _, c := range cs {
		if want[c.Name] != c.ShortTS {
			t.Errorf("%s short-TS = %d, want %d (paper Table II)", c.Name, c.ShortTS, want[c.Name])
		}
		if c.LongTS != 500000 {
			t.Errorf("%s long-TS = %d, want 500000", c.Name, c.LongTS)
		}
	}
	if _, err := CaseByName("AES"); err != nil {
		t.Error(err)
	}
	if _, err := CaseByName("Z80"); err == nil {
		t.Error("unknown IP accepted")
	}
}

func TestTableIShape(t *testing.T) {
	rows := TableI()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byIP := map[string]TableIRow{}
	for _, r := range rows {
		byIP[r.IP] = r
		if r.Lines <= 0 {
			t.Errorf("%s: zero source lines", r.IP)
		}
		if r.ElabSecs < 0 {
			t.Errorf("%s: negative elaboration time", r.IP)
		}
	}
	// Table I invariants from the paper: RAM has by far the most memory
	// elements (the 1KB array), the ciphers have the widest interfaces.
	if byIP["RAM"].MemElems != 8192 {
		t.Errorf("RAM memory elements = %d", byIP["RAM"].MemElems)
	}
	if byIP["RAM"].PIs != 44 || byIP["RAM"].POs != 32 {
		t.Errorf("RAM interface = %d/%d", byIP["RAM"].PIs, byIP["RAM"].POs)
	}
	if byIP["AES"].PIs != 260 || byIP["Camellia"].PIs != 262 {
		t.Errorf("cipher PIs = %d/%d", byIP["AES"].PIs, byIP["Camellia"].PIs)
	}
	if byIP["MultSum"].MemElems >= byIP["AES"].MemElems {
		t.Error("MultSum should be smaller than AES")
	}
}

func TestGenerateTracesSplitsAndAligns(t *testing.T) {
	c, _ := CaseByName("MultSum")
	ts, err := GenerateTraces(c, 1000, 4, testbench.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.FTs) != 4 || len(ts.PWs) != 4 {
		t.Fatalf("pieces = %d/%d", len(ts.FTs), len(ts.PWs))
	}
	if ts.Instants() != 1000 {
		t.Errorf("instants = %d", ts.Instants())
	}
	for i, ft := range ts.FTs {
		if ft.Len() != ts.PWs[i].Len() {
			t.Errorf("piece %d: functional %d vs power %d", i, ft.Len(), ts.PWs[i].Len())
		}
	}
	if len(ts.InputCols) != 4 {
		t.Errorf("input cols = %v", ts.InputCols)
	}
	if ts.PXTime <= 0 {
		t.Error("PX time not recorded")
	}
}

func TestGenerateTracesErrors(t *testing.T) {
	c, _ := CaseByName("RAM")
	if _, err := GenerateTraces(c, 2, 4, testbench.Options{}); err == nil {
		t.Error("bad split accepted")
	}
}

func TestFullFlowSmallScaleShape(t *testing.T) {
	// A miniature end-to-end run of the Table II experiment for every IP,
	// checking the qualitative shape the paper reports rather than exact
	// numbers: small PSMs, sub-second generation, and the accuracy
	// ordering RAM < AES/MultSum << Camellia.
	pol := DefaultPolicies()
	mre := map[string]float64{}
	for _, c := range Cases() {
		row, err := TableIIFor(c, false, 0.08, pol)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if row.States < 2 || row.States > 40 {
			t.Errorf("%s: %d states — PSMs should stay compact", c.Name, row.States)
		}
		if row.MRE < 0 || row.MRE > 1 {
			t.Errorf("%s: MRE = %g out of range", c.Name, row.MRE)
		}
		mre[c.Name] = row.MRE
	}
	if !(mre["RAM"] < mre["MultSum"]) {
		t.Errorf("RAM MRE %.3f should be below MultSum %.3f", mre["RAM"], mre["MultSum"])
	}
	if !(mre["Camellia"] > 2*mre["AES"]) {
		t.Errorf("Camellia MRE %.3f should dominate AES %.3f", mre["Camellia"], mre["AES"])
	}
}

func TestTableIIIForSmallScale(t *testing.T) {
	c, _ := CaseByName("MultSum")
	row, err := TableIIIFor(c, 0.02, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if row.IPSimSecs <= 0 || row.CoSimSecs <= 0 {
		t.Error("timings missing")
	}
	if row.CoSimSecs < row.IPSimSecs {
		t.Error("co-simulation cannot be faster than the IP alone")
	}
	// At this tiny training scale a handful of mispredictions can occur;
	// the full-scale run (EXPERIMENTS.md) gives exactly 0.
	if row.WSP > 0.05 {
		t.Errorf("MultSum WSP = %g, want ~0 (no unknown behaviours)", row.WSP)
	}
	if row.MRE <= 0 || row.MRE > 0.5 {
		t.Errorf("MRE = %g", row.MRE)
	}
	if row.Validation <= 0 {
		t.Error("validation length missing")
	}
}

func TestCamelliaCrossValidationExposesWSP(t *testing.T) {
	c, _ := CaseByName("Camellia")
	row, err := TableIIIFor(c, 0.05, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if row.WSP <= 0 {
		t.Error("Camellia long-TS (with stalls) should produce wrong-state predictions")
	}
	if row.MRE < 0.1 {
		t.Errorf("Camellia MRE = %g, expected the paper's poorly-correlated-subcomponent degradation", row.MRE)
	}
}

func TestValidateMREOnTraining(t *testing.T) {
	c, _ := CaseByName("RAM")
	ts, err := GenerateTraces(c, 3000, Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := BuildModel(ts, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	mre, wsp := ValidateMRE(flow.Model, ts, powersim.DefaultConfig())
	if mre > 0.10 {
		t.Errorf("RAM training MRE = %g", mre)
	}
	if wsp > 0.2 {
		t.Errorf("RAM training WSP = %g", wsp)
	}
	if flow.GenTime <= 0 {
		t.Error("generation time not recorded")
	}
}

func TestPoliciesAblation(t *testing.T) {
	// Disabling calibration must hurt the data-dependent RAM.
	c, _ := CaseByName("RAM")
	ts, err := GenerateTraces(c, 4000, Pieces, testbench.Options{Seed: c.Seed})
	if err != nil {
		t.Fatal(err)
	}
	with, err := BuildModel(ts, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultPolicies()
	pol.SkipCalibration = true
	without, err := BuildModel(ts, pol)
	if err != nil {
		t.Fatal(err)
	}
	mreWith, _ := ValidateMRE(with.Model, ts, powersim.DefaultConfig())
	mreWithout, _ := ValidateMRE(without.Model, ts, powersim.DefaultConfig())
	if mreWithout <= mreWith {
		t.Errorf("calibration off: MRE %.4f should exceed calibrated %.4f", mreWithout, mreWith)
	}
}

func TestHierarchicalCamelliaBeatsFlat(t *testing.T) {
	row, err := HierarchicalCamellia(0.1, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if row.HierMRE >= row.FlatMRE/2 {
		t.Errorf("hierarchical MRE %.3f should be well below flat %.3f", row.HierMRE, row.FlatMRE)
	}
	if row.FlatMRE < 0.15 {
		t.Errorf("flat Camellia MRE %.3f unexpectedly low — the subcomponent decorrelation is gone", row.FlatMRE)
	}
	found := false
	for _, g := range row.Groups {
		if g == "ksu" {
			found = true
		}
	}
	if !found {
		t.Errorf("key-schedule unit missing from groups %v", row.Groups)
	}
}

func TestBaselinesShape(t *testing.T) {
	rows, err := Baselines(0.08, DefaultPolicies())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The PSM must beat the constant baseline everywhere, and the
		// stateless global regression on every IP (structure matters).
		if r.PSMMRE >= r.ConstantMRE {
			t.Errorf("%s: PSM MRE %.3f not better than constant %.3f", r.IP, r.PSMMRE, r.ConstantMRE)
		}
		if r.PSMMRE >= r.RegressionMRE {
			t.Errorf("%s: PSM MRE %.3f not better than global regression %.3f", r.IP, r.PSMMRE, r.RegressionMRE)
		}
	}
}
