package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"psmkit/internal/logic"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

var testSigs = []trace.Signal{
	{Name: "en", Width: 1},
	{Name: "op", Width: 2},
}

// genNDJSON renders one synthetic trace as an upload body. The power
// level tracks the control state so the model has distinct power states
// to find, and withPower=false drops the p field (estimate uploads).
func genNDJSON(t *testing.T, seed int64, n int, withPower bool) *bytes.Buffer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	enc := stream.NewEncoder(&buf)
	if err := enc.WriteHeader(HeaderForTest()); err != nil {
		t.Fatal(err)
	}
	// The no-power path bypasses the encoder below, so the header must
	// land in the buffer first.
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	en, op := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			en = uint64(rng.Intn(2))
		}
		if rng.Float64() < 0.3 {
			op = uint64(rng.Intn(4))
		}
		row := []logic.Vector{logic.FromUint64(1, en), logic.FromUint64(2, op)}
		p := 1.0 + 2.5*float64(en) + 0.01*rng.NormFloat64()
		if withPower {
			if err := enc.WriteRow(row, p); err != nil {
				t.Fatal(err)
			}
		} else {
			rec := stream.Record{V: []string{row[0].Hex(), row[1].Hex()}}
			b, _ := json.Marshal(rec)
			buf2 := append(b, '\n')
			if _, err := buf.Write(buf2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// HeaderForTest builds the upload header for the test schema.
func HeaderForTest() stream.Header {
	return stream.HeaderFor(testSigs, []int{1})
}

func newTestServer() *Server {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	return New(cfg)
}

func mustPost(t *testing.T, url string, body io.Reader) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestEndToEnd walks the full serving loop over HTTP: concurrent trace
// uploads, verified model export in both formats, power estimation with
// MRE, and the metrics document.
func TestEndToEnd(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No model before any trace completes.
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("model before ingest: status %d, want 404 (%s)", resp.StatusCode, readAll(t, resp))
	}
	readAll(t, resp)

	// Concurrent uploads: every session is independent.
	const nTraces = 3
	lens := []int{80, 120, 60}
	var wg sync.WaitGroup
	records := 0
	for i := 0; i < nTraces; i++ {
		records += lens[i]
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := mustPost(t, ts.URL+"/v1/traces", genNDJSON(t, int64(i), lens[i], true))
			body := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("upload %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var res struct {
				Trace   int `json:"trace"`
				Records int `json:"records"`
			}
			if err := json.Unmarshal([]byte(body), &res); err != nil {
				t.Errorf("upload %d: %v", i, err)
			}
			if res.Records != lens[i] {
				t.Errorf("upload %d: %d records acknowledged, want %d", i, res.Records, lens[i])
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// JSON export parses under the psmlint document schema and verifies.
	resp, err = http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model export: status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		States      []json.RawMessage `json:"states"`
		Transitions []json.RawMessage `json:"transitions"`
		Initials    map[string]int    `json:"initials"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("served JSON does not parse as a model export: %v", err)
	}
	if len(doc.States) == 0 || len(doc.Initials) == 0 {
		t.Fatal("served model is empty")
	}

	// DOT export.
	resp, err = http.Get(ts.URL + "/v1/model?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	if dot := readAll(t, resp); !strings.HasPrefix(dot, "digraph") {
		t.Fatalf("DOT export does not look like graphviz: %.60s", dot)
	}

	resp, err = http.Get(ts.URL + "/v1/model?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: status %d, want 400", resp.StatusCode)
	}

	// Estimate with reference powers: MRE reported and small on the
	// training distribution.
	resp = mustPost(t, ts.URL+"/v1/estimate", genNDJSON(t, 0, 80, true))
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", resp.StatusCode, body)
	}
	var est struct {
		Instants  int       `json:"instants"`
		MeanPower float64   `json:"mean_power"`
		Estimates []float64 `json:"estimates"`
		MRE       *float64  `json:"mre"`
	}
	if err := json.Unmarshal([]byte(body), &est); err != nil {
		t.Fatal(err)
	}
	if est.Instants != 80 || len(est.Estimates) != 80 {
		t.Fatalf("estimate covered %d instants (%d estimates), want 80", est.Instants, len(est.Estimates))
	}
	if est.MRE == nil {
		t.Fatal("upload carried reference powers but no MRE came back")
	}
	if *est.MRE < 0 || *est.MRE > 0.5 {
		t.Fatalf("MRE %v implausible for in-distribution replay", *est.MRE)
	}

	// Estimate without powers: no MRE.
	resp = mustPost(t, ts.URL+"/v1/estimate", genNDJSON(t, 1, 40, false))
	body = readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate without refs: status %d: %s", resp.StatusCode, body)
	}
	est.MRE = nil
	if err := json.Unmarshal([]byte(body), &est); err != nil {
		t.Fatal(err)
	}
	if est.MRE != nil {
		t.Fatal("MRE reported without reference powers")
	}

	// Metrics: the psmd section carries the ingestion counters.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	var mdoc map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &mdoc); err != nil {
		t.Fatalf("metrics is not a JSON object: %v\n%s", err, body)
	}
	var psmd struct {
		RecordsIngested int64 `json:"records_ingested"`
		OpenSessions    int   `json:"open_sessions"`
		TracesCompleted int   `json:"traces_completed"`
		Snapshots       int   `json:"snapshots"`
		JoinLatencyMs   []struct {
			LE    string `json:"le"`
			Count int    `json:"count"`
		} `json:"join_latency_ms"`
	}
	if err := json.Unmarshal(mdoc["psmd"], &psmd); err != nil {
		t.Fatalf("metrics lacks a psmd section: %v", err)
	}
	if psmd.RecordsIngested != int64(records) {
		t.Fatalf("metrics report %d records, want %d", psmd.RecordsIngested, records)
	}
	if psmd.OpenSessions != 0 || psmd.TracesCompleted != nTraces {
		t.Fatalf("metrics report %d open / %d completed, want 0 / %d",
			psmd.OpenSessions, psmd.TracesCompleted, nTraces)
	}
	if psmd.Snapshots == 0 {
		t.Fatal("metrics report no snapshots after model exports")
	}
	samples := 0
	for _, b := range psmd.JoinLatencyMs {
		samples += b.Count
	}
	// Every Snapshot call lands one latency sample, including failed
	// attempts (e.g. a model request before any trace completed), so the
	// histogram holds at least one sample per successful snapshot.
	if samples < psmd.Snapshots {
		t.Fatalf("latency histogram holds %d samples for %d snapshots", samples, psmd.Snapshots)
	}
	if _, ok := mdoc["memstats"]; !ok {
		t.Fatal("metrics lacks the process-global expvar sections")
	}

	// pprof index responds.
	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

// TestIngestErrors exercises the upload failure paths: every one must
// abort its session and leave the engine clean.
func TestIngestErrors(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty", "", http.StatusBadRequest},
		{"bad header", "{not json\n", http.StatusBadRequest},
		{"no signals", `{"signals":[]}` + "\n", http.StatusBadRequest},
		{"missing power", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1","2"]}` + "\n", http.StatusBadRequest},
		{"bad hex", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1","zz"],"p":1.0}` + "\n", http.StatusBadRequest},
		{"arity", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1"],"p":1.0}` + "\n", http.StatusBadRequest},
		{"empty trace", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n",
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := mustPost(t, ts.URL+"/v1/traces", strings.NewReader(tc.body))
		body := readAll(t, resp)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}

	// Method checks.
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/traces: status %d, want 405", resp.StatusCode)
	}
	resp = mustPost(t, ts.URL+"/v1/model", strings.NewReader(""))
	if readAll(t, resp); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/model: status %d, want 405", resp.StatusCode)
	}

	if m := srv.Engine().Metrics(); m.OpenSessions != 0 || m.TracesCompleted != 0 {
		t.Fatalf("failed uploads leaked state: %+v", m)
	}
}

// TestDisconnectAbortsSession drops the connection mid-upload and checks
// the session aborts without touching the model.
func TestDisconnectAbortsSession(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A good trace first, so the model exists.
	resp := mustPost(t, ts.URL+"/v1/traces", genNDJSON(t, 42, 100, true))
	if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	before := readAll(t, func() *http.Response {
		r, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		return r
	}())

	// Now a partial upload whose body errors mid-stream.
	pr, pw := io.Pipe()
	go func() {
		full := genNDJSON(t, 43, 100, true).Bytes()
		pw.Write(full[:len(full)/2])
		pw.CloseWithError(fmt.Errorf("connection dropped"))
	}()
	resp, err := http.Post(ts.URL+"/v1/traces", "application/x-ndjson", pr)
	if err == nil {
		// Some transports surface the broken body as a 400 response
		// instead of a client-side error; either way the session must die.
		readAll(t, resp)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := srv.Engine().Metrics()
		if m.OpenSessions == 0 {
			if m.TracesCompleted != 1 {
				t.Fatalf("aborted upload completed a trace: %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session still open after disconnect: %+v", m)
		}
		time.Sleep(10 * time.Millisecond)
	}

	after := readAll(t, func() *http.Response {
		r, err := http.Get(ts.URL + "/v1/model")
		if err != nil {
			t.Fatal(err)
		}
		return r
	}())
	if before != after {
		t.Fatal("aborted upload changed the served model")
	}
}

// TestGracefulShutdown starts a real http.Server, keeps an upload open
// across the Shutdown call, and checks the drain: the in-flight session
// completes with a 200 while new connections are refused.
func TestGracefulShutdown(t *testing.T) {
	srv := newTestServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	pr, pw := io.Pipe()
	type postResult struct {
		code int
		body string
		err  error
	}
	done := make(chan postResult, 1)
	go func() {
		resp, err := http.Post(base+"/v1/traces", "application/x-ndjson", pr)
		if err != nil {
			done <- postResult{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- postResult{code: resp.StatusCode, body: string(b)}
	}()

	// Stream the first half, then shut down with the session open.
	full := genNDJSON(t, 7, 100, true).Bytes()
	half := bytes.LastIndexByte(full[:len(full)/2], '\n') + 1
	if _, err := pw.Write(full[:half]); err != nil {
		t.Fatal(err)
	}
	for srv.Engine().Metrics().OpenSessions == 0 { // wait for the server to see it
		time.Sleep(5 * time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- hs.Shutdown(ctx) }()

	// Finish the upload while the server drains.
	time.Sleep(50 * time.Millisecond)
	if _, err := pw.Write(full[half:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight upload failed during drain: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight upload: status %d during drain: %s", res.code, res.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	m := srv.Engine().Metrics()
	if m.TracesCompleted != 1 || m.OpenSessions != 0 {
		t.Fatalf("drain did not complete the session: %+v", m)
	}
}
