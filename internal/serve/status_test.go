package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"psmkit/internal/obs"
)

// TestStatusAfterTraffic drives uploads and a model read, then checks
// the /v1/status document: readiness, sane quantiles, engine
// watermarks, slow-session attribution, and SLO burn arithmetic.
func TestStatusAfterTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	cfg.SLO = SLOConfig{IngestP99Ms: 60_000, ErrorRate: 0.5} // generous: traffic is healthy
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp := mustPost(t, ts.URL+"/v1/traces", genNDJSON(t, int64(300+i), 200, true))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, readAll(t, resp))
		}
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/model"); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc statusDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("status JSON invalid: %v\n%s", err, body)
	}
	if !doc.Ready || !doc.ModelAvailable || !doc.SLOOK {
		t.Fatalf("unhealthy status after healthy traffic: %s", body)
	}
	if doc.Ingest.Count != 2 || doc.Ingest.WindowSeconds <= 0 {
		t.Fatalf("ingest window = %+v, want 2 observations", doc.Ingest)
	}
	if doc.Ingest.P50Ms > doc.Ingest.P95Ms || doc.Ingest.P95Ms > doc.Ingest.P99Ms {
		t.Fatalf("quantiles not monotone: %+v", doc.Ingest)
	}
	if doc.Join.Count == 0 {
		t.Fatalf("join window empty after a snapshot: %+v", doc.Join)
	}
	if doc.Engine.TracesCompleted != 2 || doc.Engine.RecordsIngested != 400 || doc.Engine.Snapshots == 0 {
		t.Fatalf("engine watermarks wrong: %+v", doc.Engine)
	}
	if doc.Errors.Requests != 3 || doc.Errors.Errors != 0 || doc.Errors.Burn != 0 {
		t.Fatalf("error accounting: %+v, want 3 requests (2 uploads + model), 0 errors", doc.Errors)
	}
	if len(doc.SlowSessions) != 2 {
		t.Fatalf("slow-session table holds %d rows, want 2", len(doc.SlowSessions))
	}
	for _, tl := range doc.SlowSessions {
		if tl.Records != 200 || tl.Trace < 0 || tl.TotalNS <= 0 ||
			tl.ScanNS+tl.ParseNS+tl.ReduceNS+tl.JoinNS > tl.TotalNS {
			t.Fatalf("implausible timeline: %+v", tl)
		}
	}
	if doc.Flight.Recorded == 0 || doc.Flight.Capacity != obs.DefaultFlightEntries {
		t.Fatalf("flight fill state: %+v", doc.Flight)
	}

	// The status surface itself is not a /v1/ request for SLO purposes:
	// probing must not inflate the request counters.
	resp2, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var doc2 statusDoc
	if err := json.Unmarshal([]byte(readAll(t, resp2)), &doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Errors.Requests != doc.Errors.Requests {
		t.Fatalf("status probe counted as traffic: %d -> %d requests", doc.Errors.Requests, doc2.Errors.Requests)
	}
}

// TestStatusErrorBurn drives 5xx responses and checks the windowed
// error-rate burn trips the SLO verdict.
func TestStatusErrorBurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	cfg.SLO = SLOConfig{ErrorRate: 0.01}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// GET /v1/model with no completed traces is 404 — a client error,
	// not a burn.
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty model: status %d, want 404", resp.StatusCode)
	}
	var doc statusDoc
	resp, err = http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Errors.Requests != 1 || doc.Errors.Errors != 0 || !doc.SLOOK {
		t.Fatalf("4xx counted as burn: %+v", doc.Errors)
	}
}

// TestFlightHammer is the race hammer of the acceptance criteria:
// concurrent upload sessions drive the engine while readers pound
// /debug/flight and /v1/status hard enough that the (tiny) flight ring
// wraps many times. Every dump must stay parseable and Seq-ordered and
// every status document must stay valid JSON — under -race this pins
// the recorder's and the SLO middleware's synchronization.
func TestFlightHammer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	cfg.FlightEntries = 16 // tiny ring: guaranteed wraparound under load
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const uploaders, readers, rounds = 4, 4, 8
	var wg sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				resp, err := http.Post(ts.URL+"/v1/traces", "application/x-ndjson",
					genNDJSON(t, int64(2000+u*rounds+r), 150, true))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				// A model read per round makes the engine emit snapshot
				// spans into the ring alongside the ingest spans.
				if mresp, err := http.Get(ts.URL + "/v1/model"); err == nil {
					mresp.Body.Close()
				}
			}
		}(u)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds*4; r++ {
				if g%2 == 0 {
					resp, err := http.Get(ts.URL + "/debug/flight")
					if err != nil {
						t.Error(err)
						return
					}
					body := readAll(t, resp)
					entries, err := obs.ReadFlight(strings.NewReader(body))
					if err != nil {
						t.Errorf("mid-wrap dump unparseable: %v", err)
						return
					}
					for i := 1; i < len(entries); i++ {
						if entries[i].Seq <= entries[i-1].Seq {
							t.Errorf("dump not Seq-ordered at %d", i)
							return
						}
					}
				} else {
					resp, err := http.Get(ts.URL + "/v1/status")
					if err != nil {
						t.Error(err)
						return
					}
					var doc statusDoc
					if err := json.Unmarshal([]byte(readAll(t, resp)), &doc); err != nil {
						t.Errorf("status JSON invalid mid-hammer: %v", err)
						return
					}
					if !doc.Ready {
						t.Error("status lost readiness mid-hammer")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if got := srv.Flight().Dropped(); got == 0 {
		t.Fatal("hammer never wrapped the 64-entry ring; the test lost its point")
	}
	var doc statusDoc
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(readAll(t, resp)), &doc); err != nil {
		t.Fatal(err)
	}
	// Each uploader round is one upload plus one model read.
	if doc.Errors.Requests != uploaders*rounds*2 || doc.Errors.Errors != 0 {
		t.Fatalf("final SLO counters: %+v, want %d requests / 0 errors", doc.Errors, uploaders*rounds*2)
	}
	if doc.Engine.TracesCompleted != uploaders*rounds {
		t.Fatalf("traces completed = %d, want %d", doc.Engine.TracesCompleted, uploaders*rounds)
	}
}

// TestFlightDumpByteStable pins determinism: once the daemon quiesces,
// consecutive GET /debug/flight dumps are byte-identical.
func TestFlightDumpByteStable(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := mustPost(t, ts.URL+"/v1/traces", genNDJSON(t, 77, 200, true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %s", readAll(t, resp))
	}
	resp.Body.Close()
	if mresp, err := http.Get(ts.URL + "/v1/model"); err == nil {
		mresp.Body.Close()
	}

	fetch := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/debug/flight")
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		return []byte(readAll(t, resp))
	}
	a, b := fetch(), fetch()
	if len(a) == 0 {
		t.Fatal("flight dump empty after traffic")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("quiesced dumps differ:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if _, err := obs.ReadFlight(bytes.NewReader(a)); err != nil {
		t.Fatalf("dump unparseable: %v", err)
	}
}
