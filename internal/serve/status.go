package serve

import (
	"net/http"
	"sort"
	"time"

	"psmkit/internal/obs"
	"psmkit/internal/shard"
)

// maxSlowSessions bounds the top-K slow-session table.
const maxSlowSessions = 8

// sessionTimeline is one upload's stage-time attribution: where the
// wall time of a /v1/traces request went. Times are nanoseconds; Trace
// is -1 for sessions that aborted or failed before completing.
type sessionTimeline struct {
	Session  int64 `json:"session"`
	Trace    int   `json:"trace"`
	Records  int   `json:"records"`
	ScanNS   int64 `json:"scan_ns"`
	ParseNS  int64 `json:"parse_ns"`
	ReduceNS int64 `json:"reduce_ns"`
	JoinNS   int64 `json:"join_ns"`
	TotalNS  int64 `json:"total_ns"`
}

// recordTimeline folds one finished session into the top-K
// slowest-session table (sorted by total wall time, descending).
func (s *Server) recordTimeline(tl *sessionTimeline) {
	s.tlMu.Lock()
	defer s.tlMu.Unlock()
	s.slow = append(s.slow, *tl)
	sort.Slice(s.slow, func(i, j int) bool {
		if s.slow[i].TotalNS != s.slow[j].TotalNS {
			return s.slow[i].TotalNS > s.slow[j].TotalNS
		}
		return s.slow[i].Session < s.slow[j].Session
	})
	if len(s.slow) > maxSlowSessions {
		s.slow = s.slow[:maxSlowSessions]
	}
}

// slowSessions returns a copy of the top-K slow-session table.
func (s *Server) slowSessions() []sessionTimeline {
	s.tlMu.Lock()
	defer s.tlMu.Unlock()
	return append([]sessionTimeline(nil), s.slow...)
}

// statusWindow reports one windowed latency distribution: the quantiles
// of the last WindowSeconds of observations. Burn is the measured p99
// over its objective (0 when no objective is configured); a burn above
// 1 means the objective is being violated right now.
type statusWindow struct {
	WindowSeconds float64 `json:"window_seconds"`
	Count         int64   `json:"count"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Burn          float64 `json:"burn"`
}

func windowStatus(snap obs.HistogramSnapshot, window time.Duration, objectiveP99 float64) statusWindow {
	w := statusWindow{
		WindowSeconds: window.Seconds(),
		Count:         snap.Count,
		P50Ms:         snap.Quantile(0.50),
		P95Ms:         snap.Quantile(0.95),
		P99Ms:         snap.Quantile(0.99),
	}
	if objectiveP99 > 0 {
		w.Burn = w.P99Ms / objectiveP99
	}
	return w
}

// statusErrors reports the windowed 5xx error rate over the /v1/
// surface and its burn against the configured objective.
type statusErrors struct {
	WindowSeconds float64 `json:"window_seconds"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Rate          float64 `json:"rate"`
	Burn          float64 `json:"burn"`
}

// statusEngine is the engine watermark block of the status document.
type statusEngine struct {
	SessionsOpen    int     `json:"sessions_open"`
	TracesCompleted int     `json:"traces_completed"`
	RecordsIngested int64   `json:"records_ingested"`
	StatesPooled    int     `json:"states_pooled"`
	StatesServed    int     `json:"states_served"`
	Snapshots       int     `json:"snapshots"`
	Rebuilds        int     `json:"rebuilds"`
	DeltaSnapshots  int     `json:"delta_snapshots"`
	QueueDepth      float64 `json:"queue_depth"`
}

// statusFlight summarizes the flight recorder's fill state.
type statusFlight struct {
	Capacity int    `json:"capacity"`
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped"`
}

// statusObjectives echoes the configured objectives (0 = disabled).
type statusObjectives struct {
	IngestP99Ms float64 `json:"ingest_p99_ms"`
	ErrorRate   float64 `json:"error_rate"`
}

// statusDoc is the GET /v1/status document.
type statusDoc struct {
	Ready          bool             `json:"ready"`
	ModelAvailable bool             `json:"model_available"`
	SLOOK          bool             `json:"slo_ok"`
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Objectives     statusObjectives `json:"objectives"`
	Ingest         statusWindow     `json:"ingest"`
	Join           statusWindow     `json:"join"`
	Errors         statusErrors     `json:"errors"`
	Engine         statusEngine     `json:"engine"`
	// Shards carries the per-shard rows under sharded ingest: the Engine
	// block then holds the fleet sums, and each row here attributes them
	// to its shard engine together with the live queue depth and the
	// load-shed count. Absent on the single-engine path.
	Shards       []shard.ShardMetric `json:"shards,omitempty"`
	SlowSessions []sessionTimeline   `json:"slow_sessions"`
	Flight       statusFlight        `json:"flight"`
}

// handleStatus serves the SLO health surface: readiness, windowed
// latency quantiles for ingest and join, the windowed error-rate burn
// against the configured objectives, engine watermarks, the top-K
// slow-session table, and the flight recorder's fill state. The
// endpoint always answers 200 — health is in the body (slo_ok), not
// the status code, so a probe can distinguish "unhealthy" from "down".
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	m := s.Metrics()
	reg := s.registry()
	doc := statusDoc{
		Ready:          true,
		ModelAvailable: m.TracesCompleted > 0,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Objectives: statusObjectives{
			IngestP99Ms: s.cfg.SLO.IngestP99Ms,
			ErrorRate:   s.cfg.SLO.ErrorRate,
		},
		Ingest: windowStatus(s.hIngestWin.Snapshot(), s.hIngestWin.WindowDuration(), s.cfg.SLO.IngestP99Ms),
		// The engine's join window shares the default geometry (see
		// stream.NewEngine); no p99 objective is configured for joins.
		Join: windowStatus(s.joinWindow(), obs.DefaultWindowInterval*time.Duration(obs.DefaultWindowSlots), 0),
		Engine: statusEngine{
			SessionsOpen:    m.OpenSessions,
			TracesCompleted: m.TracesCompleted,
			RecordsIngested: m.RecordsIngested,
			StatesPooled:    m.StatesPooled,
			StatesServed:    m.StatesServed,
			Snapshots:       m.Snapshots,
			Rebuilds:        m.Rebuilds,
			DeltaSnapshots:  m.DeltaSnapshots,
			QueueDepth:      reg.Gauge("pipeline_pool_queue_depth").Value(),
		},
		Shards:       s.ShardMetrics(),
		SlowSessions: s.slowSessions(),
		Flight: statusFlight{
			Capacity: s.flight.Capacity(),
			Recorded: s.flight.Recorded(),
			Dropped:  s.flight.Dropped(),
		},
	}
	doc.Errors = statusErrors{
		WindowSeconds: s.wReqs.WindowDuration().Seconds(),
		Requests:      s.wReqs.Sum(),
		Errors:        s.wErrs.Sum(),
	}
	if doc.Errors.Requests > 0 {
		doc.Errors.Rate = float64(doc.Errors.Errors) / float64(doc.Errors.Requests)
	}
	if s.cfg.SLO.ErrorRate > 0 {
		doc.Errors.Burn = doc.Errors.Rate / s.cfg.SLO.ErrorRate
	}
	doc.SLOOK = doc.Ingest.Burn <= 1 && doc.Errors.Burn <= 1
	writeJSON(w, http.StatusOK, doc)
}

// handleFlight dumps the flight recorder as NDJSON: the most recent
// span and log events ordered by sequence number. Serving the dump
// records nothing itself, so a quiesced daemon returns byte-identical
// dumps on repeated fetches.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	//psmlint:ignore err-drop response already committed; a write error here means the client left
	s.flight.WriteNDJSON(w)
}
