// Package serve is the HTTP face of the streaming engine: it exposes
// trace ingestion, live model export, co-simulation power estimation and
// operational metrics over a small REST surface, reusing the batch flow's
// building blocks — the internal/stream engine for ingestion and joins,
// internal/check as the gate a model must pass before it leaves the
// process, and internal/powersim for estimation.
//
// Endpoints:
//
//	POST /v1/traces   — ingest one trace as an NDJSON stream (wire.go
//	                    format: header line, then one record per instant).
//	                    Concurrent uploads are independent sessions; a
//	                    dropped connection aborts its session without
//	                    touching the model.
//	GET  /v1/model    — export the live model (?format=json|dot), rebuilt
//	                    incrementally from completed sessions and verified
//	                    by the psmlint rule set before serving.
//	POST /v1/estimate — co-simulate an NDJSON functional stream against
//	                    the live model and return the power estimate
//	                    (and the MRE when reference powers are present).
//	GET  /v1/provenance — the merge-provenance audit log of the live
//	                    model as NDJSON: one Section IV-A mergeability
//	                    decision per line, canonically ordered (equal to
//	                    `psmreport provenance` over the same traces).
//	GET  /metrics     — expvar-style JSON: ingestion counters, join
//	                    latency histogram, memstats
//	                    (?format=prometheus for the text exposition).
//	GET  /debug/pprof — the standard profiling handlers.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"psmkit/internal/check"
	"psmkit/internal/logic"
	"psmkit/internal/obs"
	"psmkit/internal/powersim"
	"psmkit/internal/psm"
	"psmkit/internal/shard"
	"psmkit/internal/stats"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// Config tunes the server.
type Config struct {
	// Stream configures the ingestion engine (policies, worker budget,
	// per-session record bound, open-session cap). Under sharding
	// (Shards > 1) every shard engine gets this configuration;
	// MaxOpenSessions then caps each shard, not the fleet.
	Stream stream.Config
	// Shards selects the sharded ingest fan-out: > 1 partitions sessions
	// across that many engines behind a shard.Coordinator (consistent
	// hash on the session id, one reducer goroutine per shard, bounded
	// queues with 429 + Retry-After load-shed). The served model stays
	// byte-identical to the single-engine path; ≤ 1 runs one engine
	// in-handler, exactly as before.
	Shards int
	// ShardQueueDepth bounds each shard's task queue in batches;
	// ≤ 0 selects the shard package default (512).
	ShardQueueDepth int
	// ShardEnqueueTimeout is how long an append may block on a saturated
	// shard before the upload is shed with 429 + Retry-After; ≤ 0
	// selects the shard package default (2 s).
	ShardEnqueueTimeout time.Duration
	// RetryAfter is the back-off hint attached to admission-control 429s
	// of the single-engine path (open-session cap); ≤ 0 selects 1 s.
	// Sharded load-shed responses use the shard's enqueue timeout
	// instead — that is how long the queue actually stayed full.
	RetryAfter time.Duration
	// MaxLineBytes bounds one NDJSON line of an upload; ≤ 0 selects 1 MiB.
	MaxLineBytes int
	// IngestBatch is how many records the trace ingest path accumulates
	// before handing them to Session.AppendBatch; ≤ 0 selects 256. Larger
	// batches amortize the atom-signature reduction, smaller ones bound
	// the memory a slow upload pins.
	IngestBatch int
	// CheckOptions parameterizes the model verifier gating GET /v1/model.
	CheckOptions check.Options
	// Sim parameterizes the estimation tracker.
	Sim powersim.Config
	// Tracer, when set, attaches to every request context: ingestion and
	// snapshot spans stream to it as NDJSON (psmd -trace). When nil the
	// server still runs an internal tracer (summary-only, no event
	// writer) so the always-on flight recorder sees every span.
	Tracer *obs.Tracer
	// Flight, when set, is the flight recorder the server's tracer and
	// handlers capture into; nil builds a private ring of FlightEntries
	// slots. Either way GET /debug/flight serves it.
	Flight *obs.Flight
	// FlightEntries sizes the private flight ring when Flight is nil;
	// ≤ 0 selects obs.DefaultFlightEntries.
	FlightEntries int
	// Log receives the server's structured events (upload failures,
	// verification failures). A nil logger drops them — the flight
	// recorder still sees span history.
	Log *obs.Logger
	// SLO configures the objectives GET /v1/status burns against.
	SLO SLOConfig
}

// SLOConfig holds the service-level objectives of the status surface.
// Zero values disable the corresponding burn computation.
type SLOConfig struct {
	// IngestP99Ms is the windowed p99 ingest-latency objective in
	// milliseconds (psmd -slo-ingest-p99).
	IngestP99Ms float64
	// ErrorRate is the windowed 5xx error-rate objective as a fraction
	// of /v1/ requests (psmd -slo-error-rate).
	ErrorRate float64
}

// DefaultConfig returns serving-grade defaults.
func DefaultConfig() Config {
	return Config{
		Stream:       stream.DefaultConfig(),
		CheckOptions: check.DefaultOptions(),
		Sim:          powersim.DefaultConfig(),
	}
}

// Server routes the endpoints to a streaming engine — or, when
// cfg.Shards > 1, to a shard.Coordinator running several of them as one
// logical model. Exactly one of eng and co is set.
type Server struct {
	cfg    Config
	eng    *stream.Engine
	co     *shard.Coordinator
	start  time.Time
	tracer *obs.Tracer
	flight *obs.Flight
	log    *obs.Logger

	// SLO accounting over the /v1/ surface (middleware-maintained).
	mReqs      *obs.Counter
	mErrs      *obs.Counter
	wReqs      *obs.WindowedCounter
	wErrs      *obs.WindowedCounter
	hIngestWin *obs.WindowedHistogram

	// Per-session ingest timelines: a top-K slow-session table.
	nextSession atomic.Int64
	tlMu        sync.Mutex
	slow        []sessionTimeline
}

// New builds a server around a fresh engine. Runtime diagnostics are
// always on: every request runs under a tracer (the configured one, or
// an internal summary-only tracer), every ended span lands in the
// flight recorder, and the /v1/ middleware keeps the windowed SLO
// instruments current.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg, start: time.Now(), log: cfg.Log}
	if cfg.Shards > 1 {
		s.co = shard.New(shard.Config{
			Shards:         cfg.Shards,
			Stream:         cfg.Stream,
			QueueDepth:     cfg.ShardQueueDepth,
			EnqueueTimeout: cfg.ShardEnqueueTimeout,
		})
	} else {
		s.eng = stream.NewEngine(cfg.Stream)
	}
	s.flight = cfg.Flight
	if s.flight == nil {
		s.flight = obs.NewFlight(cfg.FlightEntries)
	}
	s.tracer = cfg.Tracer
	if s.tracer == nil {
		s.tracer = obs.NewTracer(nil)
	}
	reg := s.registry()
	s.tracer.SetFlight(s.flight)
	s.tracer.SetSpanWindow(reg.Window("psmd_span_ms_window", stream.LatencyBuckets, obs.DefaultWindowInterval, obs.DefaultWindowSlots))
	s.mReqs = reg.Counter("psmd_requests_total")
	s.mErrs = reg.Counter("psmd_errors_total")
	s.wReqs = reg.WindowCounter("psmd_requests_window", obs.DefaultWindowInterval, obs.DefaultWindowSlots)
	s.wErrs = reg.WindowCounter("psmd_errors_window", obs.DefaultWindowInterval, obs.DefaultWindowSlots)
	s.hIngestWin = reg.Window("psmd_ingest_latency_ms_window", stream.LatencyBuckets, obs.DefaultWindowInterval, obs.DefaultWindowSlots)
	return s
}

// Flight exposes the server's flight recorder (psmd's SIGQUIT and
// crash-path dumps).
func (s *Server) Flight() *obs.Flight { return s.flight }

// Engine exposes the underlying engine (tests, cmd wiring). It is nil
// under sharding — use Coordinator there, or Metrics for the counters.
func (s *Server) Engine() *stream.Engine { return s.eng }

// Coordinator exposes the shard coordinator (nil when Shards ≤ 1).
func (s *Server) Coordinator() *shard.Coordinator { return s.co }

// The two backends expose the same model/metrics surface; these
// accessors pick the live one so every handler is backend-agnostic.

func (s *Server) registry() *obs.Registry {
	if s.co != nil {
		return s.co.Registry()
	}
	return s.eng.Registry()
}

func (s *Server) snapshot(ctx context.Context) (*psm.Model, error) {
	if s.co != nil {
		return s.co.Snapshot(ctx)
	}
	return s.eng.Snapshot(ctx)
}

func (s *Server) provenance(ctx context.Context) ([]obs.MergeDecision, error) {
	if s.co != nil {
		return s.co.Provenance(ctx)
	}
	return s.eng.Provenance(ctx)
}

func (s *Server) inputCols() []int {
	if s.co != nil {
		return s.co.InputCols()
	}
	return s.eng.InputCols()
}

func (s *Server) joinWindow() obs.HistogramSnapshot {
	if s.co != nil {
		return s.co.JoinLatencyWindow()
	}
	return s.eng.JoinLatencyWindow()
}

// Metrics returns the backend's aggregated counters (the fleet sum
// under sharding; see shard.Coordinator.Metrics).
func (s *Server) Metrics() stream.Metrics {
	if s.co != nil {
		return s.co.Metrics()
	}
	return s.eng.Metrics()
}

// ShardMetrics returns the per-shard rows (nil when not sharded).
func (s *Server) ShardMetrics() []shard.ShardMetric {
	if s.co == nil {
		return nil
	}
	return s.co.ShardMetrics()
}

// Drain is the graceful-shutdown barrier, called after the HTTP server
// has stopped accepting requests: under sharding it flushes every shard
// queue into the engines — so the final metrics and any final snapshot
// cover everything acknowledged — and stops the shard workers. The
// single-engine path has nothing queued and nothing to stop.
func (s *Server) Drain(ctx context.Context) error {
	if s.co == nil {
		return nil
	}
	err := s.co.Flush(ctx)
	s.co.Close()
	return err
}

// Handler returns the route table. Every request context carries the
// server's tracer, so the engine's spans (ingest, snapshot, simplify,
// collapse) report per request and land in the flight recorder; the
// /v1/ surface additionally runs under the SLO middleware, which
// maintains the windowed request/error counters and the windowed
// ingest-latency histogram /v1/status reports from.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/model", s.handleModel)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/provenance", s.handleProvenance)
	mux.HandleFunc("/v1/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r = r.WithContext(obs.WithTracer(r.Context(), s.tracer))
		// The status and dump surfaces stay outside the SLO accounting
		// and create no spans of their own: probing the diagnostics must
		// not perturb them (a quiesced flight dump stays byte-stable no
		// matter how often it is fetched).
		if !strings.HasPrefix(r.URL.Path, "/v1/") || r.URL.Path == "/v1/status" {
			mux.ServeHTTP(w, r)
			return
		}
		begin := time.Now()
		// Accounting runs at response-commit time — before the first byte
		// reaches the client — so a client that has its answer in hand and
		// immediately probes /v1/status always sees its own request counted.
		sw := &statusWriter{ResponseWriter: w, commit: func(code int) {
			s.mReqs.Inc()
			s.wReqs.Add(1)
			if code >= http.StatusInternalServerError {
				s.mErrs.Inc()
				s.wErrs.Add(1)
			}
			if r.URL.Path == "/v1/traces" {
				s.hIngestWin.Observe(float64(time.Since(begin).Nanoseconds()) / 1e6)
			}
		}}
		mux.ServeHTTP(sw, r)
		// The handler never wrote — the client vanished mid-upload. Count
		// the request, but not as a server failure.
		if sw.code == 0 {
			sw.commit(0)
		}
	})
}

// statusWriter captures the response status code for SLO accounting and
// fires the commit hook exactly once, just before the response commits.
type statusWriter struct {
	http.ResponseWriter
	code   int
	commit func(code int)
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
		w.commit(code)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
		w.commit(w.code)
	}
	return w.ResponseWriter.Write(p)
}

// ingestResult is the response of a completed upload. Trace is the
// backend-local completion index (shard-local under sharding, where
// Shard identifies the engine that owns the session).
type ingestResult struct {
	Trace   int  `json:"trace"`
	Records int  `json:"records"`
	Shard   *int `json:"shard,omitempty"`
}

// ingestError maps an ingest-path failure onto its HTTP status.
// Admission-control and load-shed rejections are 429s carrying a
// Retry-After hint: the shard's enqueue timeout when a queue shed the
// upload (that is how long it actually stayed full), the configured
// single-engine hint when the open-session cap rejected it. Everything
// else is the client's malformed stream — 400.
func (s *Server) ingestError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	var sat *shard.SaturatedError
	switch {
	case errors.As(err, &sat):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(sat.RetryAfter)))
	case strings.Contains(err.Error(), "sessions already open"):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
	}
	http.Error(w, err.Error(), code)
}

// retryAfterSeconds renders a back-off hint as whole seconds, rounding
// up and clamping to at least 1 (the smallest honest Retry-After).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleTraces ingests one NDJSON trace stream as a session. The request
// context cancels with the connection, so a client disconnect surfaces as
// a body read error and the session aborts — nothing partial reaches the
// model.
//
// This is the hot ingest path: records are line-scanned zero-copy
// (stream.Scanner), their valuations parsed into two alternating
// logic.Arenas — the engine keeps each batch's last row as input-HD
// history for one more batch, so the arena a batch used is recycled only
// after the NEXT batch lands — and appended IngestBatch records at a
// time (Session.AppendBatch).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	begin := time.Now()
	_, span := obs.Start(r.Context(), "ingest")
	defer span.End()
	sc := stream.NewScanner(r.Body, s.cfg.MaxLineBytes)
	h, err := sc.ScanHeader()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sigs, err := h.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.co != nil {
		s.handleTracesSharded(w, r, begin, span, sc, sigs)
		return
	}
	sess, err := s.eng.Open(sigs)
	if err != nil {
		s.log.Warn("session rejected", obs.KV("err", err.Error()))
		s.ingestError(w, err)
		return
	}

	// The session timeline attributes this upload's wall time to its
	// stages (scan / parse / reduce / join); the top-K slowest feed the
	// /metrics and /v1/status slow-session tables. Aborted sessions keep
	// Trace = -1. Recording rides the response commit (the same
	// before-the-first-byte discipline as the SLO middleware), so a
	// client holding its ack already finds its session in the tables;
	// the defer covers sessions whose client vanished before a response.
	tl := &sessionTimeline{Session: s.nextSession.Add(1), Trace: -1}
	sw := &statusWriter{ResponseWriter: w, commit: func(int) {
		tl.TotalNS = time.Since(begin).Nanoseconds()
		s.recordTimeline(tl)
	}}
	w = sw
	defer func() {
		if sw.code == 0 {
			sw.commit(0)
		}
	}()

	batch := s.cfg.IngestBatch
	if batch <= 0 {
		batch = 256
	}
	var (
		arenas [2]logic.Arena
		epoch  int
		raw    stream.RawRecord
		rows   = make([][]logic.Vector, 0, batch)
		powers = make([]float64, 0, batch)
		rowMem = make([]logic.Vector, batch*len(sigs))
	)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		t0 := time.Now()
		err := sess.AppendBatch(rows, powers)
		tl.ReduceNS += time.Since(t0).Nanoseconds()
		tl.Records += len(rows)
		rows, powers = rows[:0], powers[:0]
		epoch++
		return err
	}
	for {
		if err := r.Context().Err(); err != nil {
			sess.Abort()
			return // connection is gone; no response reaches the client
		}
		t0 := time.Now()
		err := sc.ScanRecord(&raw)
		t1 := time.Now()
		tl.ScanNS += t1.Sub(t0).Nanoseconds()
		if err == io.EOF {
			break
		}
		if err != nil {
			sess.Abort()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if raw.P == nil {
			sess.Abort()
			http.Error(w, fmt.Sprintf("stream: record %d: training records need a power value \"p\"", sess.Rows()+len(rows)+1),
				http.StatusBadRequest)
			return
		}
		a := &arenas[epoch&1]
		if len(rows) == 0 {
			a.Reset()
		}
		k := len(rows) * len(sigs)
		row, err := stream.DecodeRowArena(sigs, &raw, a, rowMem[k:k:k+len(sigs)])
		tl.ParseNS += time.Since(t1).Nanoseconds()
		if err != nil {
			sess.Abort()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rows = append(rows, row)
		powers = append(powers, *raw.P)
		if len(rows) == batch {
			if err := flush(); err != nil {
				sess.Abort()
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
	}
	if err := flush(); err != nil {
		sess.Abort()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := sess.Rows()
	t0 := time.Now()
	idx, err := sess.Close()
	tl.JoinNS += time.Since(t0).Nanoseconds()
	if err != nil {
		s.log.Warn("session close failed", obs.KV("err", err.Error()))
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tl.Trace = idx
	span.SetAttr("trace", idx)
	span.SetAttr("records", n)
	writeJSON(w, http.StatusOK, ingestResult{Trace: idx, Records: n})
}

// handleTracesSharded is the sharded twin of the ingest loop: the
// handler only frames raw NDJSON lines into batches and hands them to
// the session's shard (shard.Session.AppendLines transfers buffer
// ownership); the shard's reducer goroutine does the parse and the
// atom-signature reduction off the request path. The optional
// ?session= query parameter names the session for routing — uploads
// sharing an id land on the same shard; absent, the coordinator
// assigns one.
func (s *Server) handleTracesSharded(w http.ResponseWriter, r *http.Request, begin time.Time, span *obs.Span, sc *stream.Scanner, sigs []trace.Signal) {
	sess, err := s.co.Open(r.Context(), r.URL.Query().Get("session"), sigs)
	if err != nil {
		s.log.Warn("session rejected", obs.KV("err", err.Error()))
		s.ingestError(w, err)
		return
	}

	// Same timeline discipline as the single-engine path, but parse and
	// reduce run on the shard worker: the handler's wall time splits into
	// scan (framing) and join (the Close round-trip, which rides behind
	// everything queued for the shard).
	tl := &sessionTimeline{Session: s.nextSession.Add(1), Trace: -1}
	sw := &statusWriter{ResponseWriter: w, commit: func(int) {
		tl.TotalNS = time.Since(begin).Nanoseconds()
		s.recordTimeline(tl)
	}}
	w = sw
	defer func() {
		if sw.code == 0 {
			sw.commit(0)
		}
	}()

	batch := s.cfg.IngestBatch
	if batch <= 0 {
		batch = 256
	}
	var (
		buf       []byte
		records   int
		firstLine int
	)
	flush := func() error {
		if records == 0 {
			return nil
		}
		err := sess.AppendLines(buf, records, firstLine)
		tl.Records += records
		// Ownership of buf moved to the shard; the next batch allocates.
		buf, records = nil, 0
		return err
	}
	for {
		if err := r.Context().Err(); err != nil {
			sess.Abort()
			return // connection is gone; no response reaches the client
		}
		t0 := time.Now()
		line, err := sc.Line()
		tl.ScanNS += time.Since(t0).Nanoseconds()
		if err == io.EOF {
			break
		}
		if err != nil {
			sess.Abort()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if records == 0 {
			firstLine = sc.Lines()
			buf = make([]byte, 0, batch*(len(line)+16))
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		records++
		if records == batch {
			if err := flush(); err != nil {
				sess.Abort()
				s.ingestError(w, err)
				return
			}
		}
	}
	if err := flush(); err != nil {
		sess.Abort()
		s.ingestError(w, err)
		return
	}
	t0 := time.Now()
	local, n, err := sess.Close(r.Context())
	tl.JoinNS += time.Since(t0).Nanoseconds()
	if err != nil {
		s.log.Warn("session close failed", obs.KV("err", err.Error()))
		s.ingestError(w, err)
		return
	}
	tl.Trace = local
	shardIdx := sess.Shard()
	span.SetAttr("trace", local)
	span.SetAttr("records", n)
	span.SetAttr("shard", shardIdx)
	writeJSON(w, http.StatusOK, ingestResult{Trace: local, Records: n, Shard: &shardIdx})
}

// handleModel exports the live model after the psmlint rule set clears
// it: a model that fails verification is a pipeline bug and must not
// leave the process looking like a result.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.snapshot(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return
		}
		http.Error(w, err.Error(), code)
		return
	}
	rep := check.VerifyPSM(m, "live", s.cfg.CheckOptions)
	if rep.HasErrors() {
		s.log.Error("live model failed verification", obs.KV("errors", rep.Count(check.Error)))
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "live model failed verification (%d errors):\n", rep.Count(check.Error))
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		rep.Write(w)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		m.WriteJSON(w)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		m.WriteDOT(w, "psm")
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json|dot)", format), http.StatusBadRequest)
	}
}

// handleProvenance streams the merge-provenance audit log of the live
// model as NDJSON, one mergeability decision per line — the same
// decisions, in the same canonical order, as `psmreport provenance`
// over the traces ingested so far (the parity is pinned by test).
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ds, err := s.provenance(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	//psmlint:ignore err-drop response already committed; a write error here means the client left
	obs.WriteDecisions(w, ds)
}

// estimateResult is the response of a co-simulation run.
type estimateResult struct {
	Instants  int       `json:"instants"`
	MeanPower float64   `json:"mean_power"`
	Estimates []float64 `json:"estimates,omitempty"`
	// MRE is present when the uploaded records carried reference powers.
	MRE *float64 `json:"mre,omitempty"`
	// WSP and UnsyncedInstants quantify tracking quality (Section V).
	WSP              float64 `json:"wsp"`
	Predictions      int     `json:"predictions"`
	WrongPredictions int     `json:"wrong_predictions"`
	UnsyncedInstants int     `json:"unsynced_instants"`
}

// handleEstimate co-simulates an uploaded functional stream against the
// current model snapshot. Records may omit the power value; when all
// carry one, the MRE against the upload is reported.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.snapshot(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}

	sc := stream.NewScanner(r.Body, s.cfg.MaxLineBytes)
	h, err := sc.ScanHeader()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sigs, err := h.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sim := powersim.New(m, s.inputCols(), s.cfg.Sim)
	var (
		raw       stream.RawRecord
		row       []logic.Vector
		estimates []float64
		refs      []float64
		allRef    = true
		total     float64
		// The simulator keeps the previous row as its sync history, so
		// each record's vectors must outlive one Step: alternate two
		// arenas, recycling the one whose rows are two steps old.
		arenas [2]logic.Arena
	)
	for {
		err := sc.ScanRecord(&raw)
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a := &arenas[len(estimates)&1]
		a.Reset()
		row, err = stream.DecodeRowArena(sigs, &raw, a, row[:0])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		est := sim.Step(row)
		estimates = append(estimates, est)
		total += est
		if raw.P != nil {
			refs = append(refs, *raw.P)
		} else {
			allRef = false
		}
	}
	if len(estimates) == 0 {
		http.Error(w, "stream: no records to estimate", http.StatusBadRequest)
		return
	}
	res := sim.Result()
	out := estimateResult{
		Instants:         len(estimates),
		MeanPower:        total / float64(len(estimates)),
		Estimates:        estimates,
		WSP:              res.WSP(),
		Predictions:      res.Predictions,
		WrongPredictions: res.WrongPredictions,
		UnsyncedInstants: res.UnsyncedInstants,
	}
	if allRef {
		mre := stats.MeanRelativeError(estimates, refs)
		out.MRE = &mre
	}
	writeJSON(w, http.StatusOK, out)
}
