// Package serve is the HTTP face of the streaming engine: it exposes
// trace ingestion, live model export, co-simulation power estimation and
// operational metrics over a small REST surface, reusing the batch flow's
// building blocks — the internal/stream engine for ingestion and joins,
// internal/check as the gate a model must pass before it leaves the
// process, and internal/powersim for estimation.
//
// Endpoints:
//
//	POST /v1/traces   — ingest one trace as an NDJSON stream (wire.go
//	                    format: header line, then one record per instant).
//	                    Concurrent uploads are independent sessions; a
//	                    dropped connection aborts its session without
//	                    touching the model.
//	GET  /v1/model    — export the live model (?format=json|dot), rebuilt
//	                    incrementally from completed sessions and verified
//	                    by the psmlint rule set before serving.
//	POST /v1/estimate — co-simulate an NDJSON functional stream against
//	                    the live model and return the power estimate
//	                    (and the MRE when reference powers are present).
//	GET  /v1/provenance — the merge-provenance audit log of the live
//	                    model as NDJSON: one Section IV-A mergeability
//	                    decision per line, canonically ordered (equal to
//	                    `psmreport provenance` over the same traces).
//	GET  /metrics     — expvar-style JSON: ingestion counters, join
//	                    latency histogram, memstats
//	                    (?format=prometheus for the text exposition).
//	GET  /debug/pprof — the standard profiling handlers.
package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"psmkit/internal/check"
	"psmkit/internal/logic"
	"psmkit/internal/obs"
	"psmkit/internal/powersim"
	"psmkit/internal/stats"
	"psmkit/internal/stream"
)

// Config tunes the server.
type Config struct {
	// Stream configures the ingestion engine (policies, worker budget,
	// per-session record bound, open-session cap).
	Stream stream.Config
	// MaxLineBytes bounds one NDJSON line of an upload; ≤ 0 selects 1 MiB.
	MaxLineBytes int
	// IngestBatch is how many records the trace ingest path accumulates
	// before handing them to Session.AppendBatch; ≤ 0 selects 256. Larger
	// batches amortize the atom-signature reduction, smaller ones bound
	// the memory a slow upload pins.
	IngestBatch int
	// CheckOptions parameterizes the model verifier gating GET /v1/model.
	CheckOptions check.Options
	// Sim parameterizes the estimation tracker.
	Sim powersim.Config
	// Tracer, when set, attaches to every request context: ingestion and
	// snapshot spans stream to it as NDJSON (psmd -trace).
	Tracer *obs.Tracer
}

// DefaultConfig returns serving-grade defaults.
func DefaultConfig() Config {
	return Config{
		Stream:       stream.DefaultConfig(),
		CheckOptions: check.DefaultOptions(),
		Sim:          powersim.DefaultConfig(),
	}
}

// Server routes the endpoints to a streaming engine.
type Server struct {
	cfg   Config
	eng   *stream.Engine
	start time.Time
}

// New builds a server around a fresh engine.
func New(cfg Config) *Server {
	return &Server{cfg: cfg, eng: stream.NewEngine(cfg.Stream), start: time.Now()}
}

// Engine exposes the underlying engine (tests, cmd wiring).
func (s *Server) Engine() *stream.Engine { return s.eng }

// Handler returns the route table. When the server has a tracer, every
// request context carries it, so the engine's spans (ingest, snapshot,
// simplify, collapse) report per request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/traces", s.handleTraces)
	mux.HandleFunc("/v1/model", s.handleModel)
	mux.HandleFunc("/v1/estimate", s.handleEstimate)
	mux.HandleFunc("/v1/provenance", s.handleProvenance)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.cfg.Tracer == nil {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mux.ServeHTTP(w, r.WithContext(obs.WithTracer(r.Context(), s.cfg.Tracer)))
	})
}

// ingestResult is the response of a completed upload.
type ingestResult struct {
	Trace   int `json:"trace"`
	Records int `json:"records"`
}

// handleTraces ingests one NDJSON trace stream as a session. The request
// context cancels with the connection, so a client disconnect surfaces as
// a body read error and the session aborts — nothing partial reaches the
// model.
//
// This is the hot ingest path: records are line-scanned zero-copy
// (stream.Scanner), their valuations parsed into two alternating
// logic.Arenas — the engine keeps each batch's last row as input-HD
// history for one more batch, so the arena a batch used is recycled only
// after the NEXT batch lands — and appended IngestBatch records at a
// time (Session.AppendBatch).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	_, span := obs.Start(r.Context(), "ingest")
	defer span.End()
	sc := stream.NewScanner(r.Body, s.cfg.MaxLineBytes)
	h, err := sc.ScanHeader()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sigs, err := h.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, err := s.eng.Open(sigs)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "sessions already open") {
			code = http.StatusTooManyRequests
		}
		http.Error(w, err.Error(), code)
		return
	}

	batch := s.cfg.IngestBatch
	if batch <= 0 {
		batch = 256
	}
	var (
		arenas [2]logic.Arena
		epoch  int
		raw    stream.RawRecord
		rows   = make([][]logic.Vector, 0, batch)
		powers = make([]float64, 0, batch)
		rowMem = make([]logic.Vector, batch*len(sigs))
	)
	flush := func() error {
		if len(rows) == 0 {
			return nil
		}
		err := sess.AppendBatch(rows, powers)
		rows, powers = rows[:0], powers[:0]
		epoch++
		return err
	}
	for {
		if err := r.Context().Err(); err != nil {
			sess.Abort()
			return // connection is gone; no response reaches the client
		}
		err := sc.ScanRecord(&raw)
		if err == io.EOF {
			break
		}
		if err != nil {
			sess.Abort()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if raw.P == nil {
			sess.Abort()
			http.Error(w, fmt.Sprintf("stream: record %d: training records need a power value \"p\"", sess.Rows()+len(rows)+1),
				http.StatusBadRequest)
			return
		}
		a := &arenas[epoch&1]
		if len(rows) == 0 {
			a.Reset()
		}
		k := len(rows) * len(sigs)
		row, err := stream.DecodeRowArena(sigs, &raw, a, rowMem[k:k:k+len(sigs)])
		if err != nil {
			sess.Abort()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		rows = append(rows, row)
		powers = append(powers, *raw.P)
		if len(rows) == batch {
			if err := flush(); err != nil {
				sess.Abort()
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
	}
	if err := flush(); err != nil {
		sess.Abort()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	n := sess.Rows()
	idx, err := sess.Close()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	span.SetAttr("trace", idx)
	span.SetAttr("records", n)
	writeJSON(w, http.StatusOK, ingestResult{Trace: idx, Records: n})
}

// handleModel exports the live model after the psmlint rule set clears
// it: a model that fails verification is a pipeline bug and must not
// leave the process looking like a result.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.eng.Snapshot(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		if errors.Is(err, r.Context().Err()) && r.Context().Err() != nil {
			return
		}
		http.Error(w, err.Error(), code)
		return
	}
	rep := check.VerifyPSM(m, "live", s.cfg.CheckOptions)
	if rep.HasErrors() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, "live model failed verification (%d errors):\n", rep.Count(check.Error))
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		rep.Write(w)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		m.WriteJSON(w)
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		m.WriteDOT(w, "psm")
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json|dot)", format), http.StatusBadRequest)
	}
}

// handleProvenance streams the merge-provenance audit log of the live
// model as NDJSON, one mergeability decision per line — the same
// decisions, in the same canonical order, as `psmreport provenance`
// over the traces ingested so far (the parity is pinned by test).
func (s *Server) handleProvenance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ds, err := s.eng.Provenance(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	//psmlint:ignore err-drop response already committed; a write error here means the client left
	obs.WriteDecisions(w, ds)
}

// estimateResult is the response of a co-simulation run.
type estimateResult struct {
	Instants  int       `json:"instants"`
	MeanPower float64   `json:"mean_power"`
	Estimates []float64 `json:"estimates,omitempty"`
	// MRE is present when the uploaded records carried reference powers.
	MRE *float64 `json:"mre,omitempty"`
	// WSP and UnsyncedInstants quantify tracking quality (Section V).
	WSP              float64 `json:"wsp"`
	Predictions      int     `json:"predictions"`
	WrongPredictions int     `json:"wrong_predictions"`
	UnsyncedInstants int     `json:"unsynced_instants"`
}

// handleEstimate co-simulates an uploaded functional stream against the
// current model snapshot. Records may omit the power value; when all
// carry one, the MRE against the upload is reported.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	m, err := s.eng.Snapshot(r.Context())
	if err != nil {
		code := http.StatusInternalServerError
		if strings.Contains(err.Error(), "no completed traces") {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}

	sc := stream.NewScanner(r.Body, s.cfg.MaxLineBytes)
	h, err := sc.ScanHeader()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sigs, err := h.Schema()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sim := powersim.New(m, s.eng.InputCols(), s.cfg.Sim)
	var (
		raw       stream.RawRecord
		row       []logic.Vector
		estimates []float64
		refs      []float64
		allRef    = true
		total     float64
		// The simulator keeps the previous row as its sync history, so
		// each record's vectors must outlive one Step: alternate two
		// arenas, recycling the one whose rows are two steps old.
		arenas [2]logic.Arena
	)
	for {
		err := sc.ScanRecord(&raw)
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		a := &arenas[len(estimates)&1]
		a.Reset()
		row, err = stream.DecodeRowArena(sigs, &raw, a, row[:0])
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		est := sim.Step(row)
		estimates = append(estimates, est)
		total += est
		if raw.P != nil {
			refs = append(refs, *raw.P)
		} else {
			allRef = false
		}
	}
	if len(estimates) == 0 {
		http.Error(w, "stream: no records to estimate", http.StatusBadRequest)
		return
	}
	res := sim.Result()
	out := estimateResult{
		Instants:         len(estimates),
		MeanPower:        total / float64(len(estimates)),
		Estimates:        estimates,
		WSP:              res.WSP(),
		Predictions:      res.Predictions,
		WrongPredictions: res.WrongPredictions,
		UnsyncedInstants: res.UnsyncedInstants,
	}
	if allRef {
		mre := stats.MeanRelativeError(estimates, refs)
		out.MRE = &mre
	}
	writeJSON(w, http.StatusOK, out)
}
