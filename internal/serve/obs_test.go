package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"psmkit/internal/logic"
	"psmkit/internal/obs"
	"psmkit/internal/pipeline"
	"psmkit/internal/stream"
	"psmkit/internal/trace"
)

// genRows draws one synthetic trace as raw rows + powers, so the same
// data can feed both an NDJSON upload and the batch trace types.
func genRows(seed int64, n int) ([][]logic.Vector, []float64) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]logic.Vector, 0, n)
	pows := make([]float64, 0, n)
	en, op := uint64(0), uint64(0)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.2 {
			en = uint64(rng.Intn(2))
		}
		if rng.Float64() < 0.3 {
			op = uint64(rng.Intn(4))
		}
		rows = append(rows, []logic.Vector{logic.FromUint64(1, en), logic.FromUint64(2, op)})
		pows = append(pows, 1.0+2.5*float64(en)+0.01*rng.NormFloat64())
	}
	return rows, pows
}

func uploadBody(t *testing.T, rows [][]logic.Vector, pows []float64) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	enc := stream.NewEncoder(&buf)
	if err := enc.WriteHeader(HeaderForTest()); err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		if err := enc.WriteRow(row, pows[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func batchTraces(rows [][][]logic.Vector, pows [][]float64) ([]*trace.Functional, []*trace.Power) {
	var fts []*trace.Functional
	var pws []*trace.Power
	for i := range rows {
		ft := trace.NewFunctional(testSigs)
		for _, row := range rows[i] {
			ft.Append(row)
		}
		fts = append(fts, ft)
		pws = append(pws, &trace.Power{Values: pows[i]})
	}
	return fts, pws
}

// TestProvenanceParityWithBatch pins the acceptance invariant: over the
// same completed traces, GET /v1/provenance returns exactly the decision
// log the batch flow (psmreport provenance) produces — same decisions,
// same canonical order, same statistics.
func TestProvenanceParityWithBatch(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var allRows [][][]logic.Vector
	var allPows [][]float64
	for i := 0; i < 3; i++ {
		rows, pows := genRows(int64(100+i), 400)
		allRows, allPows = append(allRows, rows), append(allPows, pows)
		// Sequential uploads: trace indices assign in order, like the
		// batch flow's file order.
		resp := mustPost(t, ts.URL+"/v1/traces", uploadBody(t, rows, pows))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %s", i, readAll(t, resp))
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/provenance")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/provenance: %s", readAll(t, resp))
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	served, err := obs.ReadDecisions(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(served) == 0 {
		t.Fatal("served provenance is empty")
	}

	// The batch flow over the same traces, same policies.
	scfg := srv.cfg.Stream
	fts, pws := batchTraces(allRows, allPows)
	log := obs.NewProvenanceLog()
	ctx := obs.WithProvenance(context.Background(), log)
	cfg := pipeline.Config{Workers: 4, Mining: scfg.Mining, Merge: scfg.Merge}
	chains, err := pipeline.BuildChains(ctx, fts, pws, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.TreeJoin(ctx, chains, scfg.Merge, 4); err != nil {
		t.Fatal(err)
	}
	batch := log.Decisions()

	if !reflect.DeepEqual(served, batch) {
		t.Fatalf("provenance diverges: served %d decisions, batch %d", len(served), len(batch))
	}

	// The export is idempotent and does not disturb the model cache.
	resp2, err := http.Get(ts.URL + "/v1/provenance")
	if err != nil {
		t.Fatal(err)
	}
	again, err := obs.ReadDecisions(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(served, again) {
		t.Fatal("provenance not idempotent")
	}
}

func TestProvenanceEmptyAndMethod(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/provenance")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty engine: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()

	resp = mustPost(t, ts.URL+"/v1/provenance", strings.NewReader(""))
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestMetricsDuringUploads hammers GET /metrics (both formats) while
// uploads run, pinning the epoch-consistency fix: under -race this is
// the regression test for the engine counters being read under the same
// lock as the model cache.
func TestMetricsDuringUploads(t *testing.T) {
	srv := newTestServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const uploaders, readers, rounds = 4, 4, 8
	var wg sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				body := genNDJSON(t, int64(1000+u*rounds+r), 200, true)
				resp, err := http.Post(ts.URL+"/v1/traces", "application/x-ndjson", body)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(u)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				url := ts.URL + "/metrics"
				if g%2 == 1 {
					url += "?format=prometheus"
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body := readAll(t, resp)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %d %s", url, resp.StatusCode, body)
					return
				}
				if g%2 == 0 {
					var doc map[string]json.RawMessage
					if err := json.Unmarshal([]byte(body), &doc); err != nil {
						t.Errorf("metrics JSON invalid: %v", err)
						return
					}
					for _, key := range []string{"psmd", "psmd_registry", "memstats"} {
						if _, ok := doc[key]; !ok {
							t.Errorf("metrics JSON missing %q", key)
							return
						}
					}
				} else if !strings.Contains(body, "psmd_records_ingested_total") {
					t.Error("prometheus exposition missing psmd_records_ingested_total")
					return
				}
				// Interleave a model read so snapshots race the uploads too.
				if mresp, err := http.Get(ts.URL + "/v1/model"); err == nil {
					mresp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	var doc struct {
		PSMD struct {
			RecordsIngested int64 `json:"records_ingested"`
			TracesCompleted int   `json:"traces_completed"`
		} `json:"psmd"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	wantRecords := int64(uploaders * rounds * 200)
	if doc.PSMD.RecordsIngested != wantRecords || doc.PSMD.TracesCompleted != uploaders*rounds {
		t.Fatalf("final counters: %d records / %d traces, want %d / %d\n%s",
			doc.PSMD.RecordsIngested, doc.PSMD.TracesCompleted, wantRecords, uploaders*rounds, body)
	}
}
