package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"psmkit/internal/shard"
)

func newShardedTestServer(shards int) *Server {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	cfg.Shards = shards
	return New(cfg)
}

// shardedIngestResult mirrors ingestResult for response decoding.
type shardedIngestResult struct {
	Trace   int  `json:"trace"`
	Records int  `json:"records"`
	Shard   *int `json:"shard"`
}

// TestAdmission429RetryAfter pins the single-engine admission contract:
// when the open-session cap rejects an upload, the 429 carries the
// configured Retry-After hint so a well-behaved client backs off
// instead of hammering the cap.
func TestAdmission429RetryAfter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stream.Inputs = []string{"op"}
	cfg.Stream.MaxOpenSessions = 1
	cfg.RetryAfter = 3 * time.Second
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold one session open: stream the header and wait for the server
	// to register it.
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/traces", "application/x-ndjson", pr)
		if err == nil {
			readAll(t, resp)
		}
	}()
	full := genNDJSON(t, 11, 50, true).Bytes()
	if _, err := pw.Write(full); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Engine().Metrics().OpenSessions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never opened the held session")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A second upload must be shed with 429 + Retry-After.
	resp := mustPost(t, ts.URL+"/v1/traces", genNDJSON(t, 12, 10, true))
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap upload: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if !strings.Contains(body, "sessions already open") {
		t.Fatalf("unexpected rejection body: %s", body)
	}

	pw.Close()
	<-done
}

// TestIngestErrorMapping pins the error→status mapping of the ingest
// path without needing to reproduce real saturation: a shard load-shed
// maps to 429 with the shed's own enqueue timeout as the Retry-After
// (rounded up to whole seconds), everything else to 400.
func TestIngestErrorMapping(t *testing.T) {
	srv := newTestServer()

	rec := httptest.NewRecorder()
	srv.ingestError(rec, &shard.SaturatedError{Shard: 2, RetryAfter: 1500 * time.Millisecond})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("saturated Retry-After = %q, want \"2\" (1.5s rounds up)", got)
	}

	rec = httptest.NewRecorder()
	srv.ingestError(rec, io.ErrUnexpectedEOF)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("plain error: status %d, want 400", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("plain error carries Retry-After %q", got)
	}
}

// TestShardedServeParity drives the sharded server over HTTP and pins
// the tentpole guarantee end to end: the model a 4-shard daemon serves
// is byte-identical (JSON and DOT) to a single-engine daemon fed the
// same traces in the canonical shard-major order, and the metrics and
// status surfaces carry consistent per-shard rows.
func TestShardedServeParity(t *testing.T) {
	const nShards, nTraces = 4, 8
	lens := []int{60, 90, 40, 120, 75, 55, 100, 80}

	sharded := newShardedTestServer(nShards)
	ts := httptest.NewServer(sharded.Handler())
	defer ts.Close()

	// Sequential uploads with explicit session ids; the response's shard
	// and local trace index define the canonical cross-shard order.
	type upload struct {
		seed         int64
		n            int
		shard, local int
	}
	var ups []upload
	records := 0
	for i := 0; i < nTraces; i++ {
		resp := mustPost(t, ts.URL+"/v1/traces?session=trace-"+string(rune('0'+i)), genNDJSON(t, int64(i), lens[i], true))
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: status %d: %s", i, resp.StatusCode, body)
		}
		var res shardedIngestResult
		if err := json.Unmarshal([]byte(body), &res); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if res.Shard == nil || *res.Shard < 0 || *res.Shard >= nShards {
			t.Fatalf("upload %d: missing or out-of-range shard in %s", i, body)
		}
		if res.Records != lens[i] {
			t.Fatalf("upload %d: %d records acknowledged, want %d", i, res.Records, lens[i])
		}
		ups = append(ups, upload{seed: int64(i), n: lens[i], shard: *res.Shard, local: res.Trace})
		records += lens[i]
	}

	shardedModel := readAll(t, mustGet(t, ts.URL+"/v1/model"))
	shardedDOT := readAll(t, mustGet(t, ts.URL+"/v1/model?format=dot"))

	// Reference: a single-engine server fed the same traces sequentially
	// in canonical order — shards in index order, each shard's sessions
	// in completion (here: upload) order.
	sort.SliceStable(ups, func(i, j int) bool {
		if ups[i].shard != ups[j].shard {
			return ups[i].shard < ups[j].shard
		}
		return ups[i].local < ups[j].local
	})
	single := newTestServer()
	ss := httptest.NewServer(single.Handler())
	defer ss.Close()
	for _, u := range ups {
		resp := mustPost(t, ss.URL+"/v1/traces", genNDJSON(t, u.seed, u.n, true))
		if body := readAll(t, resp); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference upload: status %d: %s", resp.StatusCode, body)
		}
	}
	singleModel := readAll(t, mustGet(t, ss.URL+"/v1/model"))
	singleDOT := readAll(t, mustGet(t, ss.URL+"/v1/model?format=dot"))
	if shardedModel != singleModel {
		t.Fatal("sharded JSON model differs from the canonical single-engine model")
	}
	if shardedDOT != singleDOT {
		t.Fatal("sharded DOT model differs from the canonical single-engine model")
	}

	// /metrics: fleet sums plus one row per shard, consistent with them.
	var mdoc struct {
		PSMD struct {
			RecordsIngested int64               `json:"records_ingested"`
			TracesCompleted int                 `json:"traces_completed"`
			Shards          []shard.ShardMetric `json:"shards"`
		} `json:"psmd"`
	}
	if err := json.Unmarshal([]byte(readAll(t, mustGet(t, ts.URL+"/metrics"))), &mdoc); err != nil {
		t.Fatal(err)
	}
	if mdoc.PSMD.RecordsIngested != int64(records) || mdoc.PSMD.TracesCompleted != nTraces {
		t.Fatalf("fleet sums: %d records / %d traces, want %d / %d",
			mdoc.PSMD.RecordsIngested, mdoc.PSMD.TracesCompleted, records, nTraces)
	}
	if len(mdoc.PSMD.Shards) != nShards {
		t.Fatalf("metrics carry %d shard rows, want %d", len(mdoc.PSMD.Shards), nShards)
	}
	var sumRec int64
	var sumTraces int
	for i, row := range mdoc.PSMD.Shards {
		if row.Shard != i {
			t.Fatalf("shard row %d labeled %d", i, row.Shard)
		}
		if row.QueueCap <= 0 {
			t.Fatalf("shard row %d reports queue cap %d", i, row.QueueCap)
		}
		sumRec += row.RecordsIngested
		sumTraces += row.TracesCompleted
	}
	if sumRec != int64(records) || sumTraces != nTraces {
		t.Fatalf("shard rows sum to %d records / %d traces, want %d / %d",
			sumRec, sumTraces, records, nTraces)
	}

	// Prometheus exposition carries the per-shard gauges.
	prom := readAll(t, mustGet(t, ts.URL+"/metrics?format=prometheus"))
	if !strings.Contains(prom, "psmd_shard0_queue_depth") {
		t.Fatal("prometheus exposition lacks per-shard queue gauges")
	}

	// /v1/status carries the same per-shard rows.
	var sdoc struct {
		Ready  bool                `json:"ready"`
		Shards []shard.ShardMetric `json:"shards"`
		Engine struct {
			TracesCompleted int `json:"traces_completed"`
		} `json:"engine"`
	}
	if err := json.Unmarshal([]byte(readAll(t, mustGet(t, ts.URL+"/v1/status"))), &sdoc); err != nil {
		t.Fatal(err)
	}
	if !sdoc.Ready || sdoc.Engine.TracesCompleted != nTraces {
		t.Fatalf("status: ready=%v traces=%d, want true/%d", sdoc.Ready, sdoc.Engine.TracesCompleted, nTraces)
	}
	if len(sdoc.Shards) != nShards {
		t.Fatalf("status carries %d shard rows, want %d", len(sdoc.Shards), nShards)
	}

	// Graceful drain: flush and stop the shard workers; the final
	// metrics still cover everything acknowledged.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sharded.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if m := sharded.Metrics(); m.RecordsIngested != int64(records) || m.TracesCompleted != nTraces {
		t.Fatalf("post-drain metrics: %+v", m)
	}
}

// TestShardedIngestErrors replays the single-engine failure cases
// against a sharded server: the deferred worker-side errors must come
// back with the same status codes, and nothing may leak.
func TestShardedIngestErrors(t *testing.T) {
	srv := newShardedTestServer(2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"empty", "", http.StatusBadRequest},
		{"bad header", "{not json\n", http.StatusBadRequest},
		{"no signals", `{"signals":[]}` + "\n", http.StatusBadRequest},
		{"missing power", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1","2"]}` + "\n", http.StatusBadRequest},
		{"bad hex", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1","zz"],"p":1.0}` + "\n", http.StatusBadRequest},
		{"arity", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n" +
			`{"v":["1"],"p":1.0}` + "\n", http.StatusBadRequest},
		{"empty trace", `{"signals":[{"name":"en","width":1},{"name":"op","width":2}],"inputs":["op"]}` + "\n",
			http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp := mustPost(t, ts.URL+"/v1/traces", strings.NewReader(tc.body))
		body := readAll(t, resp)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, body)
		}
	}

	if m := srv.Metrics(); m.OpenSessions != 0 || m.TracesCompleted != 0 {
		t.Fatalf("failed uploads leaked state: %+v", m)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return resp
}
