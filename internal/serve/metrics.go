package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"psmkit/internal/obs"
	"psmkit/internal/shard"
	"psmkit/internal/stream"
)

// latencyBucket is one histogram cell of the join latency distribution.
type latencyBucket struct {
	// LE is the bucket's upper bound in milliseconds; "+Inf" on overflow.
	LE    string `json:"le"`
	Count int    `json:"count"`
}

// metricsDoc is the "psmd" section of the /metrics document.
type metricsDoc struct {
	UptimeSeconds   float64         `json:"uptime_seconds"`
	RecordsIngested int64           `json:"records_ingested"`
	OpenSessions    int             `json:"open_sessions"`
	TracesCompleted int             `json:"traces_completed"`
	Snapshots       int             `json:"snapshots"`
	Rebuilds        int             `json:"rebuilds"`
	DeltaSnapshots  int             `json:"delta_snapshots"`
	StatesPooled    int             `json:"states_pooled"`
	StatesServed    int             `json:"states_served"`
	StatesMerged    int             `json:"states_merged"`
	JoinNanos       int64           `json:"join_nanos"`
	JoinLatencyMs   []latencyBucket `json:"join_latency_ms"`
	// Join latency quantiles over the cumulative histogram, estimated by
	// linear interpolation within bucket bounds (obs.HistogramSnapshot.
	// Quantile).
	JoinP50Ms float64 `json:"join_p50_ms"`
	JoinP95Ms float64 `json:"join_p95_ms"`
	JoinP99Ms float64 `json:"join_p99_ms"`
	// SlowSessions is the top-K slowest /v1/traces sessions with their
	// per-stage wall-time attribution.
	SlowSessions []sessionTimeline `json:"slow_sessions"`
	// Shards carries the per-shard rows under sharded ingest (-shards>1):
	// one entry per shard engine with its own ingest counters, live queue
	// depth and load-shed count. Absent on the single-engine path.
	Shards []shard.ShardMetric `json:"shards,omitempty"`
}

func metricsOf(m stream.Metrics, uptime time.Duration) metricsDoc {
	doc := metricsDoc{
		UptimeSeconds:   uptime.Seconds(),
		RecordsIngested: m.RecordsIngested,
		OpenSessions:    m.OpenSessions,
		TracesCompleted: m.TracesCompleted,
		Snapshots:       m.Snapshots,
		Rebuilds:        m.Rebuilds,
		DeltaSnapshots:  m.DeltaSnapshots,
		StatesPooled:    m.StatesPooled,
		StatesServed:    m.StatesServed,
		StatesMerged:    m.StatesMerged,
		JoinNanos:       m.JoinNanos,
	}
	for i, n := range m.JoinLatency {
		le := "+Inf"
		if i < len(stream.LatencyBuckets) {
			le = fmt.Sprintf("%g", stream.LatencyBuckets[i])
		}
		doc.JoinLatencyMs = append(doc.JoinLatencyMs, latencyBucket{LE: le, Count: n})
	}
	hs := obs.HistogramSnapshot{
		Bounds: stream.LatencyBuckets,
		Counts: make([]int64, len(m.JoinLatency)),
	}
	for i, n := range m.JoinLatency {
		hs.Counts[i] = int64(n)
		hs.Count += int64(n)
	}
	doc.JoinP50Ms = hs.Quantile(0.50)
	doc.JoinP95Ms = hs.Quantile(0.95)
	doc.JoinP99Ms = hs.Quantile(0.99)
	return doc
}

// handleMetrics renders the metrics surface. The default is the
// expvar-style JSON document with the server's own "psmd" section (one
// consistent engine epoch — see stream.Engine.Metrics) injected
// alongside the process-global vars (cmdline, memstats) via
// obs.WriteExpvarJSON — each server renders its own engine's counters,
// so several servers in one process never contend over the global
// expvar namespace. ?format=prometheus serves the engine registry in
// the Prometheus text exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		doc := metricsOf(s.Metrics(), time.Since(s.start))
		doc.SlowSessions = s.slowSessions()
		doc.Shards = s.ShardMetrics()
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		obs.WriteExpvarJSON(w, map[string]interface{}{
			"psmd":          doc,
			"psmd_registry": s.registry().Snapshot(),
		})
	case "prometheus":
		reg := s.registry()
		reg.Gauge("psmd_uptime_seconds").Set(time.Since(s.start).Seconds())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//psmlint:ignore err-drop response already committed; a write error here means the client left
		reg.WritePrometheus(w)
	default:
		http.Error(w, fmt.Sprintf("unknown format %q (json|prometheus)", format), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//psmlint:ignore err-drop response already committed; a write error here means the client left
	json.NewEncoder(w).Encode(v)
}
