package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"time"

	"psmkit/internal/stream"
)

// latencyBucket is one histogram cell of the join latency distribution.
type latencyBucket struct {
	// LE is the bucket's upper bound in milliseconds; "+Inf" on overflow.
	LE    string `json:"le"`
	Count int    `json:"count"`
}

// metricsDoc is the "psmd" section of the /metrics document.
type metricsDoc struct {
	UptimeSeconds   float64         `json:"uptime_seconds"`
	RecordsIngested int64           `json:"records_ingested"`
	OpenSessions    int             `json:"open_sessions"`
	TracesCompleted int             `json:"traces_completed"`
	Snapshots       int             `json:"snapshots"`
	Rebuilds        int             `json:"rebuilds"`
	StatesPooled    int             `json:"states_pooled"`
	StatesServed    int             `json:"states_served"`
	StatesMerged    int             `json:"states_merged"`
	JoinNanos       int64           `json:"join_nanos"`
	JoinLatencyMs   []latencyBucket `json:"join_latency_ms"`
}

func metricsOf(m stream.Metrics, uptime time.Duration) metricsDoc {
	doc := metricsDoc{
		UptimeSeconds:   uptime.Seconds(),
		RecordsIngested: m.RecordsIngested,
		OpenSessions:    m.OpenSessions,
		TracesCompleted: m.TracesCompleted,
		Snapshots:       m.Snapshots,
		Rebuilds:        m.Rebuilds,
		StatesPooled:    m.StatesPooled,
		StatesServed:    m.StatesServed,
		StatesMerged:    m.StatesMerged,
		JoinNanos:       m.JoinNanos,
	}
	for i, n := range m.JoinLatency {
		le := "+Inf"
		if i < len(stream.LatencyBuckets) {
			le = fmt.Sprintf("%g", stream.LatencyBuckets[i])
		}
		doc.JoinLatencyMs = append(doc.JoinLatencyMs, latencyBucket{LE: le, Count: n})
	}
	return doc
}

// handleMetrics renders the expvar document with the server's own "psmd"
// section injected alongside the process-global vars (cmdline, memstats).
// Each server renders its own engine's counters, so several servers in
// one process — the test suite, say — never contend over the global
// expvar namespace.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	own, err := json.Marshal(metricsOf(s.eng.Metrics(), time.Since(s.start)))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "%q: %s", "psmd", own)
	expvar.Do(func(kv expvar.KeyValue) {
		fmt.Fprintf(w, ",\n%q: %s", kv.Key, kv.Value)
	})
	fmt.Fprintf(w, "\n}\n")
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//psmlint:ignore err-drop response already committed; a write error here means the client left
	json.NewEncoder(w).Encode(v)
}
