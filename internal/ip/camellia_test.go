package ip

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

func camIdleIn() hdl.Values {
	return hdl.Values{
		"key":     logic.New(128),
		"din":     logic.New(128),
		"keyload": logic.New(1),
		"start":   logic.New(1),
		"dec":     logic.New(1),
		"flush":   logic.New(1),
		"hold":    logic.New(2),
	}
}

func camRunBlock(t *testing.T, sim *hdl.Simulator, key, din []byte, dec bool) ([]byte, int) {
	t.Helper()
	in := camIdleIn()
	in["key"] = logic.FromBytes(128, key)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)

	in = camIdleIn()
	in["din"] = logic.FromBytes(128, din)
	in["start"] = logic.FromUint64(1, 1)
	if dec {
		in["dec"] = logic.FromUint64(1, 1)
	}
	out := sim.MustStep(in)
	cycles := 1
	for out["done"].Bit(0) != 1 {
		out = sim.MustStep(camIdleIn())
		cycles++
		if cycles > 200 {
			t.Fatal("Camellia did not finish within 200 cycles")
		}
	}
	return out["dout"].Bytes(), cycles
}

// RFC 3713 128-bit test vector.
var (
	camKey = logic.MustParseHex(128, "0123456789abcdeffedcba9876543210").Bytes()
	camCT  = logic.MustParseHex(128, "67673138549669730857065648eabe43").Bytes()
	camPT  = camKey
)

func TestCamelliaRFC3713Vector(t *testing.T) {
	sim := hdl.NewSimulator(NewCamellia128())
	got, cycles := camRunBlock(t, sim, camKey, camPT, false)
	if !bytes.Equal(got, camCT) {
		t.Errorf("ciphertext = %x, want %x", got, camCT)
	}
	// start + 18 rounds + 2 FL layers + output = 22 cycles
	if cycles != 22 {
		t.Errorf("block took %d cycles, want 22", cycles)
	}
}

func TestCamelliaDecrypt(t *testing.T) {
	sim := hdl.NewSimulator(NewCamellia128())
	got, _ := camRunBlock(t, sim, camKey, camCT, true)
	if !bytes.Equal(got, camPT) {
		t.Errorf("plaintext = %x, want %x", got, camPT)
	}
}

func TestCamelliaCoreMatchesReferenceBlock(t *testing.T) {
	f := func(keySeed, ptSeed int64) bool {
		rng := rand.New(rand.NewSource(keySeed))
		key := make([]byte, 16)
		rng.Read(key)
		rng = rand.New(rand.NewSource(ptSeed))
		pt := make([]byte, 16)
		rng.Read(pt)

		kl := cam128{hi: be64(key[:8]), lo: be64(key[8:])}
		sk := camExpand128(kl)
		hi, lo := camEncryptBlock(sk, be64(pt[:8]), be64(pt[8:]))
		want := from128(cam128{hi: hi, lo: lo}).Bytes()

		sim := hdl.NewSimulator(NewCamellia128())
		got, _ := camRunBlock(t, sim, key, pt, false)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCamelliaRoundTrip(t *testing.T) {
	f := func(keySeed, ptSeed int64) bool {
		rng := rand.New(rand.NewSource(keySeed))
		key := make([]byte, 16)
		rng.Read(key)
		rng = rand.New(rand.NewSource(ptSeed))
		pt := make([]byte, 16)
		rng.Read(pt)
		sim := hdl.NewSimulator(NewCamellia128())
		ct, _ := camRunBlock(t, sim, key, pt, false)
		back, _ := camRunBlock(t, sim, key, ct, true)
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCamelliaSubkeyReversalInvolution(t *testing.T) {
	kl := cam128{hi: 0x0123456789abcdef, lo: 0xfedcba9876543210}
	s := camExpand128(kl)
	r := s.reversed().reversed()
	if r != s {
		t.Error("reversed twice is not the identity")
	}
}

func TestCamelliaFLInverse(t *testing.T) {
	f := func(x, k uint64) bool {
		return camFLInv(camFL(x, k), k) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCamelliaRotl128(t *testing.T) {
	c := cam128{hi: 0x8000000000000000, lo: 1}
	// bit 127 wraps to bit 0, bit 63 moves to bit 64... for this value:
	// hi' = hi<<1 | lo>>63 = 0, lo' = lo<<1 | hi>>63 = 3.
	if got := c.rotl(1); got.hi != 0 || got.lo != 3 {
		t.Errorf("rotl(1) = %+x", got)
	}
	if got := c.rotl(64); got.hi != 1 || got.lo != 0x8000000000000000 {
		t.Errorf("rotl(64) = %+x", got)
	}
	if got := c.rotl(0); got != c {
		t.Errorf("rotl(0) = %+x", got)
	}
	// rotl(a) then rotl(128-a) is identity
	for _, n := range []uint{15, 30, 45, 60, 77, 94, 111} {
		if got := c.rotl(n).rotl(128 - n); got != c {
			t.Errorf("rotl(%d) round trip failed", n)
		}
	}
}

func TestCamelliaSboxDerivations(t *testing.T) {
	// Spot-check RFC-specified derivations.
	for _, x := range []int{0, 1, 0x53, 0xa7, 0xff} {
		if camSbox2[x] != rotl8(camSbox1[x], 1) {
			t.Errorf("SBOX2[%#x] wrong", x)
		}
		if camSbox3[x] != rotl8(camSbox1[x], 7) {
			t.Errorf("SBOX3[%#x] wrong", x)
		}
		if camSbox4[x] != camSbox1[rotl8(byte(x), 1)] {
			t.Errorf("SBOX4[%#x] wrong", x)
		}
	}
	// SBOX1 must be a permutation.
	seen := map[byte]bool{}
	for _, v := range camSbox1 {
		if seen[v] {
			t.Fatalf("SBOX1 duplicate %#x", v)
		}
		seen[v] = true
	}
}

func TestCamelliaHoldStallsPipeline(t *testing.T) {
	sim := hdl.NewSimulator(NewCamellia128())
	in := camIdleIn()
	in["key"] = logic.FromBytes(128, camKey)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	in = camIdleIn()
	in["din"] = logic.FromBytes(128, camPT)
	in["start"] = logic.FromUint64(1, 1)
	out := sim.MustStep(in)
	// stall for 10 cycles mid-block
	for i := 0; i < 10; i++ {
		in = camIdleIn()
		in["hold"] = logic.FromUint64(2, 3)
		out = sim.MustStep(in)
		if out["done"].Bit(0) == 1 {
			t.Fatal("done during stall")
		}
	}
	cycles := 1
	for out["done"].Bit(0) != 1 {
		out = sim.MustStep(camIdleIn())
		cycles++
		if cycles > 200 {
			t.Fatal("never finished after stall")
		}
	}
	if !bytes.Equal(out["dout"].Bytes(), camCT) {
		t.Errorf("stalled block produced %x", out["dout"].Bytes())
	}
}

func TestCamelliaFlushAborts(t *testing.T) {
	sim := hdl.NewSimulator(NewCamellia128())
	in := camIdleIn()
	in["key"] = logic.FromBytes(128, camKey)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	in = camIdleIn()
	in["din"] = logic.FromBytes(128, camPT)
	in["start"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	in = camIdleIn()
	in["flush"] = logic.FromUint64(1, 1)
	out := sim.MustStep(in)
	if !out["dout"].IsZero() {
		t.Error("flush did not clear dout")
	}
	// key survives a flush; a fresh block still encrypts correctly
	in = camIdleIn()
	in["din"] = logic.FromBytes(128, camPT)
	in["start"] = logic.FromUint64(1, 1)
	out = sim.MustStep(in)
	cycles := 1
	for out["done"].Bit(0) != 1 {
		out = sim.MustStep(camIdleIn())
		cycles++
	}
	if !bytes.Equal(out["dout"].Bytes(), camCT) {
		t.Errorf("after flush: %x", out["dout"].Bytes())
	}
}

func TestCamelliaTableIShape(t *testing.T) {
	c := NewCamellia128()
	if got := hdl.PortWidths(c, hdl.In); got != 262 {
		t.Errorf("PI bits = %d, want 262", got)
	}
	if got := hdl.PortWidths(c, hdl.Out); got != 129 {
		t.Errorf("PO bits = %d, want 129", got)
	}
	want := 128 + 128 + 64 + 64 + 5 + 1 + 1 + 128 + 1 + 4*64
	if got := hdl.MemoryBits(c); got != want {
		t.Errorf("memory bits = %d, want %d", got, want)
	}
}

func TestCamelliaKeyUnitBurstActivity(t *testing.T) {
	// The key-schedule unit must produce activity bursts during busy
	// cycles that are absent in non-burst cycles: check that rot_net
	// toggles on steps 1,5,9,... and not on others.
	c := NewCamellia128()
	sim := hdl.NewSimulator(c)
	in := camIdleIn()
	in["key"] = logic.FromBytes(128, camKey)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	drainToggles(c)

	in = camIdleIn()
	in["din"] = logic.FromBytes(128, camPT)
	in["start"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	drainToggles(c)

	burstCycles := 0
	for i := 0; i < 21; i++ {
		sim.MustStep(camIdleIn())
		if c.rotNet.TakeToggles() > 0 {
			burstCycles++
		}
		drainToggles(c)
	}
	if burstCycles < 4 || burstCycles > 6 {
		t.Errorf("burst cycles = %d, want ~5 (every 4th busy cycle)", burstCycles)
	}
}

func drainToggles(c hdl.Core) {
	for _, e := range c.Elements() {
		e.TakeToggles()
	}
}
