package ip

import (
	_ "embed"
	"strings"
)

// The model sources are embedded so the experiment harness can report the
// "Lines" column of the paper's Table I (there it counts the Verilog RTL;
// here it counts the Go RTL models).

//go:embed ram.go
var ramSrc string

//go:embed multsum.go
var multsumSrc string

//go:embed aes.go
var aesSrc string

//go:embed aes_math.go
var aesMathSrc string

//go:embed camellia.go
var camelliaSrc string

//go:embed camellia_math.go
var camelliaMathSrc string

// SourceLines returns the number of source lines of the named IP's model
// (0 for unknown names).
func SourceLines(name string) int {
	switch name {
	case "RAM":
		return countLines(ramSrc)
	case "MultSum":
		return countLines(multsumSrc)
	case "AES":
		return countLines(aesSrc) + countLines(aesMathSrc)
	case "Camellia":
		return countLines(camelliaSrc) + countLines(camelliaMathSrc)
	default:
		return 0
	}
}

func countLines(s string) int {
	if s == "" {
		return 0
	}
	return strings.Count(s, "\n") + 1
}
