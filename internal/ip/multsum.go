package ip

import (
	"fmt"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// MultSum is a 16×16+16 multiplier-accumulator in the style of the
// Synopsys DesignWare DW02 MAC the paper benchmarks: 49 PI bits
// (a[16] + b[16] + c[16] + en) and 32 PO bits (sum).
//
// The multiplier array is combinational with registered operands and a
// registered result: when en is high the operand registers, the four
// radix-16 partial-product registers and the output register all update
// in the same cycle, so the power of a cycle tracks that cycle's operand
// activity. The clock tree is free-running (no gating), giving the design
// the non-zero idle floor a real DesignWare macro exhibits.
//
// The IP is data-dependent: partial-product switching follows the operand
// values, which correlates with — but is not a pure function of — the
// primary-input Hamming distance. That residual is why the paper reports
// a MultSum MRE a notch above the RAM's even after linear-regression
// calibration (the correlation would need a wider time window).
type MultSum struct {
	ra, rb, rc *hdl.Reg
	pp         [4]*hdl.Reg
	busy       *hdl.Reg
	out        *hdl.Reg
}

// NewMultSum returns an idle MAC.
func NewMultSum() *MultSum {
	m := &MultSum{
		ra:   hdl.NewReg("mac.ra", 16),
		rb:   hdl.NewReg("mac.rb", 16),
		rc:   hdl.NewReg("mac.rc", 16),
		busy: hdl.NewReg("mac.busy", 1),
		out:  hdl.NewReg("mac.sum", 32),
	}
	for i := range m.pp {
		m.pp[i] = hdl.NewReg(fmt.Sprintf("mac.pp[%d]", i), 32)
	}
	return m
}

// Name implements hdl.Core.
func (m *MultSum) Name() string { return "MultSum" }

// Ports implements hdl.Core.
func (m *MultSum) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "a", Width: 16, Dir: hdl.In},
		{Name: "b", Width: 16, Dir: hdl.In},
		{Name: "c", Width: 16, Dir: hdl.In},
		{Name: "en", Width: 1, Dir: hdl.In},
		{Name: "sum", Width: 32, Dir: hdl.Out},
	}
}

// Reset implements hdl.Core.
func (m *MultSum) Reset() {
	for _, r := range m.Elements() {
		r.Reset()
	}
}

// Elements implements hdl.Core.
func (m *MultSum) Elements() []*hdl.Reg {
	return []*hdl.Reg{
		m.ra, m.rb, m.rc,
		m.pp[0], m.pp[1], m.pp[2], m.pp[3],
		m.busy, m.out,
	}
}

// Step implements hdl.Core.
func (m *MultSum) Step(in hdl.Values) hdl.Values {
	en := in["en"].Bit(0) == 1
	if en {
		a := in["a"].Uint64()
		b := in["b"].Uint64()
		c := in["c"].Uint64()
		m.ra.Set(in["a"])
		m.rb.Set(in["b"])
		m.rc.Set(in["c"])
		// Radix-16 multiplier: one partial product per 4-bit digit of b.
		var acc uint64
		for i := 0; i < 4; i++ {
			digit := (b >> (4 * i)) & 0xf
			p := (a * digit) << (4 * i)
			m.pp[i].Set(logic.FromUint64(32, p))
			acc += p
		}
		m.out.Set(logic.FromUint64(32, (acc+c)&0xffffffff))
	}
	m.busy.SetUint64(boolBit(en))
	return hdl.Values{"sum": m.out.Get()}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
