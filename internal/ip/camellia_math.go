package ip

import "math/bits"

// Camellia-128 primitives per RFC 3713.

// camSbox1 is Camellia's SBOX1 (RFC 3713 appendix); SBOX2..4 are derived
// from it in init, as the RFC specifies:
//
//	SBOX2[x] = SBOX1[x] <<< 1
//	SBOX3[x] = SBOX1[x] <<< 7
//	SBOX4[x] = SBOX1[x <<< 1]
var camSbox1 = [256]byte{
	0x70, 0x82, 0x2c, 0xec, 0xb3, 0x27, 0xc0, 0xe5, 0xe4, 0x85, 0x57, 0x35, 0xea, 0x0c, 0xae, 0x41,
	0x23, 0xef, 0x6b, 0x93, 0x45, 0x19, 0xa5, 0x21, 0xed, 0x0e, 0x4f, 0x4e, 0x1d, 0x65, 0x92, 0xbd,
	0x86, 0xb8, 0xaf, 0x8f, 0x7c, 0xeb, 0x1f, 0xce, 0x3e, 0x30, 0xdc, 0x5f, 0x5e, 0xc5, 0x0b, 0x1a,
	0xa6, 0xe1, 0x39, 0xca, 0xd5, 0x47, 0x5d, 0x3d, 0xd9, 0x01, 0x5a, 0xd6, 0x51, 0x56, 0x6c, 0x4d,
	0x8b, 0x0d, 0x9a, 0x66, 0xfb, 0xcc, 0xb0, 0x2d, 0x74, 0x12, 0x2b, 0x20, 0xf0, 0xb1, 0x84, 0x99,
	0xdf, 0x4c, 0xcb, 0xc2, 0x34, 0x7e, 0x76, 0x05, 0x6d, 0xb7, 0xa9, 0x31, 0xd1, 0x17, 0x04, 0xd7,
	0x14, 0x58, 0x3a, 0x61, 0xde, 0x1b, 0x11, 0x1c, 0x32, 0x0f, 0x9c, 0x16, 0x53, 0x18, 0xf2, 0x22,
	0xfe, 0x44, 0xcf, 0xb2, 0xc3, 0xb5, 0x7a, 0x91, 0x24, 0x08, 0xe8, 0xa8, 0x60, 0xfc, 0x69, 0x50,
	0xaa, 0xd0, 0xa0, 0x7d, 0xa1, 0x89, 0x62, 0x97, 0x54, 0x5b, 0x1e, 0x95, 0xe0, 0xff, 0x64, 0xd2,
	0x10, 0xc4, 0x00, 0x48, 0xa3, 0xf7, 0x75, 0xdb, 0x8a, 0x03, 0xe6, 0xda, 0x09, 0x3f, 0xdd, 0x94,
	0x87, 0x5c, 0x83, 0x02, 0xcd, 0x4a, 0x90, 0x33, 0x73, 0x67, 0xf6, 0xf3, 0x9d, 0x7f, 0xbf, 0xe2,
	0x52, 0x9b, 0xd8, 0x26, 0xc8, 0x37, 0xc6, 0x3b, 0x81, 0x96, 0x6f, 0x4b, 0x13, 0xbe, 0x63, 0x2e,
	0xe9, 0x79, 0xa7, 0x8c, 0x9f, 0x6e, 0xbc, 0x8e, 0x29, 0xf5, 0xf9, 0xb6, 0x2f, 0xfd, 0xb4, 0x59,
	0x78, 0x98, 0x06, 0x6a, 0xe7, 0x46, 0x71, 0xba, 0xd4, 0x25, 0xab, 0x42, 0x88, 0xa2, 0x8d, 0xfa,
	0x72, 0x07, 0xb9, 0x55, 0xf8, 0xee, 0xac, 0x0a, 0x36, 0x49, 0x2a, 0x68, 0x3c, 0x38, 0xf1, 0xa4,
	0x40, 0x28, 0xd3, 0x7b, 0xbb, 0xc9, 0x43, 0xc1, 0x15, 0xe3, 0xad, 0xf4, 0x77, 0xc7, 0x80, 0x9e,
}

var camSbox2, camSbox3, camSbox4 [256]byte

func init() {
	for x := 0; x < 256; x++ {
		camSbox2[x] = rotl8(camSbox1[x], 1)
		camSbox3[x] = rotl8(camSbox1[x], 7)
		camSbox4[x] = camSbox1[rotl8(byte(x), 1)]
	}
}

// Key-schedule constants Σ1..Σ6 (RFC 3713 §2.2); a 128-bit key only needs
// the first four.
const (
	camSigma1 = 0xA09E667F3BCC908B
	camSigma2 = 0xB67AE8584CAA73B2
	camSigma3 = 0xC6EF372FE94F82BE
	camSigma4 = 0x54FF53A5F1D36F1C
	camSigma5 = 0x10E527FADE682D1D
	camSigma6 = 0xB05688C2B3E6C1FD
)

// camF is Camellia's round function F(x, k): key addition, the four
// S-boxes, and the byte-diffusion P-layer.
func camF(x, k uint64) uint64 {
	x ^= k
	t1 := camSbox1[byte(x>>56)]
	t2 := camSbox2[byte(x>>48)]
	t3 := camSbox3[byte(x>>40)]
	t4 := camSbox4[byte(x>>32)]
	t5 := camSbox2[byte(x>>24)]
	t6 := camSbox3[byte(x>>16)]
	t7 := camSbox4[byte(x>>8)]
	t8 := camSbox1[byte(x)]

	y1 := t1 ^ t3 ^ t4 ^ t6 ^ t7 ^ t8
	y2 := t1 ^ t2 ^ t4 ^ t5 ^ t7 ^ t8
	y3 := t1 ^ t2 ^ t3 ^ t5 ^ t6 ^ t8
	y4 := t2 ^ t3 ^ t4 ^ t5 ^ t6 ^ t7
	y5 := t1 ^ t2 ^ t6 ^ t7 ^ t8
	y6 := t2 ^ t3 ^ t5 ^ t7 ^ t8
	y7 := t3 ^ t4 ^ t5 ^ t6 ^ t8
	y8 := t1 ^ t4 ^ t5 ^ t6 ^ t7

	return uint64(y1)<<56 | uint64(y2)<<48 | uint64(y3)<<40 | uint64(y4)<<32 |
		uint64(y5)<<24 | uint64(y6)<<16 | uint64(y7)<<8 | uint64(y8)
}

// camFL is the FL function (RFC 3713 §2.4.3).
func camFL(x, k uint64) uint64 {
	xl, xr := uint32(x>>32), uint32(x)
	kl, kr := uint32(k>>32), uint32(k)
	xr ^= bits.RotateLeft32(xl&kl, 1)
	xl ^= xr | kr
	return uint64(xl)<<32 | uint64(xr)
}

// camFLInv is the FL⁻¹ function.
func camFLInv(y, k uint64) uint64 {
	yl, yr := uint32(y>>32), uint32(y)
	kl, kr := uint32(k>>32), uint32(k)
	yl ^= yr | kr
	yr ^= bits.RotateLeft32(yl&kl, 1)
	return uint64(yl)<<32 | uint64(yr)
}

// cam128 is a 128-bit quantity as a pair of 64-bit halves (hi = bits
// 127..64).
type cam128 struct{ hi, lo uint64 }

// rotl rotates a 128-bit value left by n (0 <= n < 128).
func (c cam128) rotl(n uint) cam128 {
	if n == 0 {
		return c
	}
	if n < 64 {
		return cam128{
			hi: c.hi<<n | c.lo>>(64-n),
			lo: c.lo<<n | c.hi>>(64-n),
		}
	}
	if n == 64 {
		return cam128{hi: c.lo, lo: c.hi}
	}
	n -= 64
	return cam128{
		hi: c.lo<<n | c.hi>>(64-n),
		lo: c.hi<<n | c.lo>>(64-n),
	}
}

// camKA derives the KA key material from KL (128-bit key case, KR = 0),
// RFC 3713 §2.2.
func camKA(kl cam128) cam128 {
	d1, d2 := kl.hi, kl.lo
	d2 ^= camF(d1, camSigma1)
	d1 ^= camF(d2, camSigma2)
	d1 ^= kl.hi
	d2 ^= kl.lo
	d2 ^= camF(d1, camSigma3)
	d1 ^= camF(d2, camSigma4)
	return cam128{hi: d1, lo: d2}
}

// camSubkeys holds the 26 subkeys of Camellia-128 in order of use during
// encryption: kw1,kw2, k1..k6, ke1,ke2, k7..k12, ke3,ke4, k13..k18,
// kw3,kw4.
type camSubkeys struct {
	kw [4]uint64  // whitening
	k  [18]uint64 // round subkeys
	ke [4]uint64  // FL-layer subkeys
}

// camExpand128 computes the Camellia-128 subkey set (RFC 3713 §2.2).
func camExpand128(kl cam128) camSubkeys {
	ka := camKA(kl)
	var s camSubkeys
	s.kw[0] = kl.hi
	s.kw[1] = kl.lo
	s.k[0] = ka.hi
	s.k[1] = ka.lo
	r := kl.rotl(15)
	s.k[2], s.k[3] = r.hi, r.lo
	r = ka.rotl(15)
	s.k[4], s.k[5] = r.hi, r.lo
	r = ka.rotl(30)
	s.ke[0], s.ke[1] = r.hi, r.lo
	r = kl.rotl(45)
	s.k[6], s.k[7] = r.hi, r.lo
	r = ka.rotl(45)
	s.k[8] = r.hi
	r = kl.rotl(60)
	s.k[9] = r.lo
	r = ka.rotl(60)
	s.k[10], s.k[11] = r.hi, r.lo
	r = kl.rotl(77)
	s.ke[2], s.ke[3] = r.hi, r.lo
	r = kl.rotl(94)
	s.k[12], s.k[13] = r.hi, r.lo
	r = ka.rotl(94)
	s.k[14], s.k[15] = r.hi, r.lo
	r = kl.rotl(111)
	s.k[16], s.k[17] = r.hi, r.lo
	r = ka.rotl(111)
	s.kw[2], s.kw[3] = r.hi, r.lo
	return s
}

// reversed returns the subkey set for decryption: the same algorithm with
// the subkey order reversed (kw1↔kw3, kw2↔kw4, k_i↔k_{19-i}, ke_i↔ke_{5-i}).
func (s camSubkeys) reversed() camSubkeys {
	var r camSubkeys
	r.kw[0], r.kw[1], r.kw[2], r.kw[3] = s.kw[2], s.kw[3], s.kw[0], s.kw[1]
	for i := 0; i < 18; i++ {
		r.k[i] = s.k[17-i]
	}
	r.ke[0], r.ke[1], r.ke[2], r.ke[3] = s.ke[3], s.ke[2], s.ke[1], s.ke[0]
	return r
}

// camEncryptBlock runs the full 18-round Camellia-128 block operation with
// the given subkey set (use reversed() subkeys to decrypt). It is the
// reference implementation the cycle-accurate core is tested against, and
// is also used by the testbench to pre-compute expected ciphertexts.
func camEncryptBlock(s camSubkeys, hi, lo uint64) (uint64, uint64) {
	d1 := hi ^ s.kw[0]
	d2 := lo ^ s.kw[1]
	for i := 0; i < 18; i++ {
		if i == 6 {
			d1 = camFL(d1, s.ke[0])
			d2 = camFLInv(d2, s.ke[1])
		}
		if i == 12 {
			d1 = camFL(d1, s.ke[2])
			d2 = camFLInv(d2, s.ke[3])
		}
		if i%2 == 0 {
			d2 ^= camF(d1, s.k[i])
		} else {
			d1 ^= camF(d2, s.k[i])
		}
	}
	return d2 ^ s.kw[2], d1 ^ s.kw[3]
}
