package ip

import (
	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// AES phases.
const (
	aesIdle uint64 = iota
	aesBusyEnc
	aesBusyDec
)

// AES128 is an iterative AES-128 encryption/decryption core with on-the-fly
// key expansion: 260 PI bits (key[128] + din[128] + keyload + start + dec +
// flush) and 129 PO bits (dout[128] + done), matching the shape of the
// Open Core AES the paper benchmarks.
//
// Protocol:
//
//	keyload=1  — latch key; a one-shot unrolled key-expansion block also
//	             derives the last round key (needed to start decryptions),
//	             causing a visible one-cycle power burst. 1 cycle.
//	start=1    — begin processing din with the loaded key; dec selects
//	             decryption. The core runs 10 round cycles; on the last it
//	             latches dout and pulses done for one cycle.
//	flush=1    — abort and clear state.
//
// The round datapath and the key datapath advance in lock-step every busy
// cycle, so — as the paper observes for AES — the activity of its
// subcomponents is strongly correlated and its per-cycle power is nearly
// constant across data, which keeps the PSM's MRE low.
type AES128 struct {
	key0   *hdl.Reg // loaded cipher key (= round key 0)
	rkLast *hdl.Reg // round key 10, derived at keyload
	state  *hdl.Reg
	rkey   *hdl.Reg // current round key
	rnd    *hdl.Reg // 4-bit round counter
	phase  *hdl.Reg // 2-bit phase
	doutR  *hdl.Reg
	doneR  *hdl.Reg

	// Tracked combinational nets: S-box layer output and the
	// MixColumns/key-expansion outputs. They model the round logic's
	// switched capacitance.
	sboxNet *hdl.Reg
	mixNet  *hdl.Reg
	keyNet  *hdl.Reg
}

// NewAES128 returns an idle AES core with no key loaded.
func NewAES128() *AES128 {
	return &AES128{
		key0:    hdl.NewReg("aes.key0", 128),
		rkLast:  hdl.NewReg("aes.rk_last", 128),
		state:   hdl.NewReg("aes.state", 128),
		rkey:    hdl.NewReg("aes.rkey", 128),
		rnd:     hdl.NewReg("aes.rnd", 4),
		phase:   hdl.NewReg("aes.phase", 2),
		doutR:   hdl.NewReg("aes.dout", 128),
		doneR:   hdl.NewReg("aes.done", 1),
		sboxNet: hdl.NewNet("aes.sbox_net", 128),
		mixNet:  hdl.NewNet("aes.mix_net", 128),
		keyNet:  hdl.NewNet("aes.key_net", 128),
	}
}

// Name implements hdl.Core.
func (a *AES128) Name() string { return "AES" }

// Ports implements hdl.Core.
func (a *AES128) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "key", Width: 128, Dir: hdl.In},
		{Name: "din", Width: 128, Dir: hdl.In},
		{Name: "keyload", Width: 1, Dir: hdl.In},
		{Name: "start", Width: 1, Dir: hdl.In},
		{Name: "dec", Width: 1, Dir: hdl.In},
		{Name: "flush", Width: 1, Dir: hdl.In},
		{Name: "dout", Width: 128, Dir: hdl.Out},
		{Name: "done", Width: 1, Dir: hdl.Out},
	}
}

// Reset implements hdl.Core.
func (a *AES128) Reset() {
	for _, r := range a.Elements() {
		r.Reset()
	}
}

// Elements implements hdl.Core.
func (a *AES128) Elements() []*hdl.Reg {
	return []*hdl.Reg{
		a.key0, a.rkLast, a.state, a.rkey, a.rnd, a.phase, a.doutR, a.doneR,
		a.sboxNet, a.mixNet, a.keyNet,
	}
}

// Step implements hdl.Core.
func (a *AES128) Step(in hdl.Values) hdl.Values {
	phase := a.phase.Get().Uint64()
	busy := phase != aesIdle

	// Default clock gating: the datapath clocks only while busy.
	a.state.Gate(!busy)
	a.rkey.Gate(!busy)
	a.rnd.Gate(!busy)
	a.key0.Gate(true)
	a.rkLast.Gate(true)

	// done is a single-cycle pulse.
	if a.doneR.Get().Bit(0) == 1 {
		a.doneR.SetUint64(0)
	}

	switch {
	case in["flush"].Bit(0) == 1:
		a.state.Gate(false)
		a.state.SetUint64(0)
		a.doutR.SetUint64(0)
		a.doneR.SetUint64(0)
		a.rnd.SetUint64(0)
		a.phase.SetUint64(aesIdle)

	case !busy && in["keyload"].Bit(0) == 1:
		a.key0.Gate(false)
		a.rkLast.Gate(false)
		a.key0.Set(in["key"])
		// One-shot unrolled key expansion: ten chained round-key stages
		// fire combinationally within the cycle.
		rk := toBlock(in["key"])
		for r := 1; r <= 10; r++ {
			rk = aesNextRoundKey(rk, r)
			a.keyNet.Set(fromBlock(rk)) // successive values glitch the net
		}
		a.rkLast.Set(fromBlock(rk))

	case !busy && in["start"].Bit(0) == 1:
		a.state.Gate(false)
		a.rkey.Gate(false)
		a.rnd.Gate(false)
		st := toBlock(in["din"])
		if in["dec"].Bit(0) == 1 {
			rk := toBlock(a.rkLast.Get())
			st.xor(&rk)
			a.rkey.Set(a.rkLast.Get())
			a.phase.SetUint64(aesBusyDec)
		} else {
			rk := toBlock(a.key0.Get())
			st.xor(&rk)
			a.rkey.Set(a.key0.Get())
			a.phase.SetUint64(aesBusyEnc)
		}
		a.state.Set(fromBlock(st))
		a.rnd.SetUint64(1)

	case phase == aesBusyEnc:
		round := int(a.rnd.Get().Uint64())
		st := toBlock(a.state.Get())
		rk := aesNextRoundKey(toBlock(a.rkey.Get()), round)

		aesSubBytes(&st)
		a.sboxNet.Set(fromBlock(st))
		aesShiftRows(&st)
		if round < 10 {
			aesMixColumns(&st)
		}
		a.mixNet.Set(fromBlock(st))
		st.xor(&rk)

		a.rkey.Set(fromBlock(rk))
		a.keyNet.Set(fromBlock(rk))
		a.state.Set(fromBlock(st))
		a.finishRound(round)

	case phase == aesBusyDec:
		round := int(a.rnd.Get().Uint64())
		st := toBlock(a.state.Get())
		// Decryption round r applies round key 10-r, derived on the fly.
		rk := aesPrevRoundKey(toBlock(a.rkey.Get()), 11-round)

		aesInvShiftRows(&st)
		aesInvSubBytes(&st)
		a.sboxNet.Set(fromBlock(st))
		st.xor(&rk)
		if round < 10 {
			aesInvMixColumns(&st)
		}
		a.mixNet.Set(fromBlock(st))

		a.rkey.Set(fromBlock(rk))
		a.keyNet.Set(fromBlock(rk))
		a.state.Set(fromBlock(st))
		a.finishRound(round)
	}

	return hdl.Values{"dout": a.doutR.Get(), "done": a.doneR.Get()}
}

// finishRound advances the round counter and, on the last round, latches
// the result and pulses done.
func (a *AES128) finishRound(round int) {
	if round == 10 {
		a.doutR.Set(a.state.Get())
		a.doneR.SetUint64(1)
		a.rnd.SetUint64(0)
		a.phase.SetUint64(aesIdle)
		return
	}
	a.rnd.SetUint64(uint64(round + 1))
}

func toBlock(v logic.Vector) aesBlock {
	var b aesBlock
	copy(b[:], v.Bytes())
	return b
}

func fromBlock(b aesBlock) logic.Vector {
	return logic.FromBytes(128, b[:])
}
