package ip

import (
	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

// Camellia phases.
const (
	camIdle uint64 = iota
	camBusy
)

// Camellia128 is an iterative Camellia-128 encryption/decryption core
// (RFC 3713): 262 PI bits (key[128] + din[128] + keyload + start + dec +
// flush + hold[2]) and 129 PO bits (dout[128] + done). hold is a pipeline
// stall control: any nonzero value pauses a block mid-flight with clocks
// gated.
//
// Architecture — and the reason this IP defeats PI/PO-level power
// modelling, as the paper reports (MRE ≈ 33%): the design is split into
// two subcomponents whose switching activity is poorly correlated:
//
//   - the data path: one Feistel round per cycle (18 rounds plus two
//     FL/FL⁻¹ layer cycles and a whitening/output cycle);
//   - the key-schedule unit: an autonomous prefetcher with a four-entry
//     subkey cache. Every fourth busy cycle it refills the cache by
//     running its 128-bit barrel rotators over KL and KA — a burst of
//     switched capacitance that is invisible at the primary inputs and
//     outputs and unsynchronized with the data the IP processes.
//
// From the PI/PO boundary every busy cycle looks identical, so the mined
// power state covers a bimodal distribution and a constant-μ (or input-
// Hamming-regressed) estimate is systematically wrong — which is exactly
// the effect Table II/III of the paper attributes to Camellia.
type Camellia128 struct {
	klReg *hdl.Reg // loaded key KL
	kaReg *hdl.Reg // derived key material KA
	d1    *hdl.Reg // Feistel left half
	d2    *hdl.Reg // Feistel right half
	step  *hdl.Reg // 5-bit sequence counter
	phase *hdl.Reg // 1-bit phase
	decR  *hdl.Reg // latched direction for the current block
	doutR *hdl.Reg
	doneR *hdl.Reg

	// Tracked combinational nets.
	fNet   *hdl.Reg // F-function output
	sbNet  *hdl.Reg // S-box layer output
	keyNet *hdl.Reg // KA derivation logic (keyload burst)
	// Key-schedule unit: subkey cache registers and rotator net.
	cache  [4]*hdl.Reg
	rotNet *hdl.Reg // barrel-rotator output bus (prefetch burst)

	// Architectural mirror of the subkey schedule (combinational in
	// hardware, derived from klReg/kaReg; cached here for speed).
	sched camSubkeys
	// ksuFetched records whether the key-schedule unit's prefetcher fired
	// during the last cycle (exposed by the p_ksu_fetch probe).
	ksuFetched bool
}

// NewCamellia128 returns an idle Camellia core with no key loaded.
func NewCamellia128() *Camellia128 {
	c := &Camellia128{
		klReg:  hdl.NewReg("cam.kl", 128),
		kaReg:  hdl.NewReg("cam.ka", 128),
		d1:     hdl.NewReg("cam.d1", 64),
		d2:     hdl.NewReg("cam.d2", 64),
		step:   hdl.NewReg("cam.step", 5),
		phase:  hdl.NewReg("cam.phase", 1),
		decR:   hdl.NewReg("cam.dec", 1),
		doutR:  hdl.NewReg("cam.dout", 128),
		doneR:  hdl.NewReg("cam.done", 1),
		fNet:   hdl.NewNet("cam.f_net", 64),
		sbNet:  hdl.NewNet("cam.sb_net", 64),
		keyNet: hdl.NewNet("cam.key_net", 128),
		rotNet: hdl.NewNet("cam.rot_net", 256),
	}
	for i := range c.cache {
		c.cache[i] = hdl.NewReg(camCacheName(i), 64)
	}
	return c
}

func camCacheName(i int) string {
	return "cam.ksu.cache[" + string(rune('0'+i)) + "]"
}

// Name implements hdl.Core.
func (c *Camellia128) Name() string { return "Camellia" }

// Ports implements hdl.Core.
func (c *Camellia128) Ports() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "key", Width: 128, Dir: hdl.In},
		{Name: "din", Width: 128, Dir: hdl.In},
		{Name: "keyload", Width: 1, Dir: hdl.In},
		{Name: "start", Width: 1, Dir: hdl.In},
		{Name: "dec", Width: 1, Dir: hdl.In},
		{Name: "flush", Width: 1, Dir: hdl.In},
		{Name: "hold", Width: 2, Dir: hdl.In},
		{Name: "dout", Width: 128, Dir: hdl.Out},
		{Name: "done", Width: 1, Dir: hdl.Out},
	}
}

// Reset implements hdl.Core.
func (c *Camellia128) Reset() {
	for _, r := range c.Elements() {
		r.Reset()
	}
	c.sched = camSubkeys{}
	c.ksuFetched = false
}

// Elements implements hdl.Core.
func (c *Camellia128) Elements() []*hdl.Reg {
	return []*hdl.Reg{
		c.klReg, c.kaReg, c.d1, c.d2, c.step, c.phase, c.decR, c.doutR, c.doneR,
		c.fNet, c.sbNet, c.keyNet,
		c.cache[0], c.cache[1], c.cache[2], c.cache[3], c.rotNet,
	}
}

// subkeys returns the schedule in the direction latched for the current
// block.
func (c *Camellia128) subkeys() camSubkeys {
	if c.decR.Get().Bit(0) == 1 {
		return c.sched.reversed()
	}
	return c.sched
}

// Step implements hdl.Core.
func (c *Camellia128) Step(in hdl.Values) hdl.Values {
	busy := c.phase.Get().Uint64() == camBusy
	c.ksuFetched = false

	c.d1.Gate(!busy)
	c.d2.Gate(!busy)
	c.step.Gate(!busy)
	c.klReg.Gate(true)
	c.kaReg.Gate(true)
	for _, r := range c.cache {
		r.Gate(!busy)
	}

	if c.doneR.Get().Bit(0) == 1 {
		c.doneR.SetUint64(0)
	}

	switch {
	case in["flush"].Bit(0) == 1:
		c.d1.Gate(false)
		c.d2.Gate(false)
		c.d1.SetUint64(0)
		c.d2.SetUint64(0)
		c.doutR.SetUint64(0)
		c.doneR.SetUint64(0)
		c.step.SetUint64(0)
		c.phase.SetUint64(camIdle)

	case !busy && in["keyload"].Bit(0) == 1:
		c.klReg.Gate(false)
		c.kaReg.Gate(false)
		kb := in["key"].Bytes()
		kl := cam128{hi: be64(kb[:8]), lo: be64(kb[8:])}
		ka := camKA(kl)
		c.klReg.Set(in["key"])
		c.kaReg.Set(from128(ka))
		// The KA derivation block (four chained F stages) fires once.
		c.keyNet.Set(from128(cam128{hi: kl.hi ^ ka.hi, lo: kl.lo ^ ka.lo}))
		c.keyNet.Set(from128(ka))
		c.sched = camExpand128(kl)

	case !busy && in["start"].Bit(0) == 1:
		c.d1.Gate(false)
		c.d2.Gate(false)
		c.step.Gate(false)
		c.decR.Gate(false)
		c.decR.Set(in["dec"])
		// Direction must be read from the input this cycle (decR latches
		// concurrently).
		sk := c.sched
		if in["dec"].Bit(0) == 1 {
			sk = c.sched.reversed()
		}
		db := in["din"].Bytes()
		c.d1.SetUint64(be64(db[:8]) ^ sk.kw[0])
		c.d2.SetUint64(be64(db[8:]) ^ sk.kw[1])
		c.step.SetUint64(1)
		c.phase.SetUint64(camBusy)

	case busy && in["hold"].Uint64() != 0:
		// Pipeline stall: the block sequence pauses. The registers hold
		// their values (no data activity) but the clock tree keeps
		// running — hold is a sequencer freeze, not a clock gate.

	case busy:
		c.busyCycle()
	}

	return hdl.Values{"dout": c.doutR.Get(), "done": c.doneR.Get()}
}

// busyCycle advances the 22-cycle block sequence:
//
//	steps 1..6   rounds 1..6
//	step  7      FL / FL⁻¹ layer 1
//	steps 8..13  rounds 7..12
//	step 14      FL / FL⁻¹ layer 2
//	steps 15..20 rounds 13..18
//	step 21      output whitening, done pulse
func (c *Camellia128) busyCycle() {
	sk := c.subkeys()
	step := c.step.Get().Uint64()

	// Key-schedule unit: on steps ≡ 1 (mod 4) the prefetcher refills its
	// four-entry subkey cache, spinning the 128-bit barrel rotators over
	// KL and KA. This is the burst activity that is invisible — and
	// unpredictable — from the PI/PO boundary.
	if step%4 == 1 {
		c.ksuFetched = true
		base := int(step) - 1
		burst := logic.New(256)
		for i := 0; i < 4; i++ {
			idx := base + i
			var v uint64
			if idx < 18 {
				v = sk.k[idx]
			} else {
				v = sk.kw[2+(idx-18)%2] // tail of the schedule: output whitening keys
			}
			c.cache[i].Set(logic.FromUint64(64, v))
			burst = burst.Shl(64).Or(logic.FromUint64(256, v))
		}
		// The barrel rotators sweep through intermediate rotation stages
		// before settling; the glitching roughly doubles the net's
		// switched capacitance on every prefetch.
		c.rotNet.Set(burst.Not())
		c.rotNet.Set(burst)
	}

	switch {
	case step == 7:
		c.d1.SetUint64(camFL(c.d1.Get().Uint64(), sk.ke[0]))
		c.d2.SetUint64(camFLInv(c.d2.Get().Uint64(), sk.ke[1]))
		c.step.SetUint64(step + 1)

	case step == 14:
		c.d1.SetUint64(camFL(c.d1.Get().Uint64(), sk.ke[2]))
		c.d2.SetUint64(camFLInv(c.d2.Get().Uint64(), sk.ke[3]))
		c.step.SetUint64(step + 1)

	case step == 21:
		hi := c.d2.Get().Uint64() ^ sk.kw[2]
		lo := c.d1.Get().Uint64() ^ sk.kw[3]
		c.doutR.Set(from128(cam128{hi: hi, lo: lo}))
		c.doneR.SetUint64(1)
		c.step.SetUint64(0)
		c.phase.SetUint64(camIdle)

	default:
		// Feistel round. Round index (0-based) from the step number.
		round := int(step) - 1
		switch {
		case step >= 15:
			round = int(step) - 3
		case step >= 8:
			round = int(step) - 2
		}
		d1, d2 := c.d1.Get().Uint64(), c.d2.Get().Uint64()
		if round%2 == 0 {
			f := camF(d1, sk.k[round])
			c.sbNet.SetUint64(d1 ^ sk.k[round])
			c.fNet.SetUint64(f)
			c.d2.SetUint64(d2 ^ f)
		} else {
			f := camF(d2, sk.k[round])
			c.sbNet.SetUint64(d2 ^ sk.k[round])
			c.fNet.SetUint64(f)
			c.d1.SetUint64(d1 ^ f)
		}
		c.step.SetUint64(step + 1)
	}
}

// Probes implements hdl.Probed: the internal subcomponent-boundary
// signals the hierarchical PSM extension observes — the sequencer's step
// counter (data-path control) and the key-schedule unit's prefetch
// strobe. These are exactly the signals a designer would tap to
// characterize the two poorly-correlated subcomponents separately.
func (c *Camellia128) Probes() []hdl.PortSpec {
	return []hdl.PortSpec{
		{Name: "p_step", Width: 5, Dir: hdl.Out},
		{Name: "p_ksu_fetch", Width: 1, Dir: hdl.Out},
	}
}

// ProbeValues implements hdl.Probed.
func (c *Camellia128) ProbeValues() hdl.Values {
	fetch := uint64(0)
	if c.ksuFetched {
		fetch = 1
	}
	return hdl.Values{
		"p_step":      c.step.Get(),
		"p_ksu_fetch": logic.FromUint64(1, fetch),
	}
}

func be64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

func from128(c cam128) logic.Vector {
	return logic.FromUint64(128, c.lo).Or(logic.FromUint64(128, c.hi).Shl(64))
}

// SubcomponentOf classifies a Camellia element name into the design's two
// subcomponents — "ksu" (the autonomous key-schedule unit: KL/KA storage,
// the KA derivation logic, the subkey cache and the barrel-rotator net)
// and "data" (the Feistel data path and control) — for the hierarchical
// PSM extension.
func (c *Camellia128) SubcomponentOf(element string) string {
	switch element {
	case "cam.kl", "cam.ka", "cam.key_net", "cam.rot_net":
		return "ksu"
	}
	if len(element) > 8 && element[:8] == "cam.ksu." {
		return "ksu"
	}
	return "data"
}
