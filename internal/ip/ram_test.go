package ip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

func ramIn(en, we, addr, wdata uint64) hdl.Values {
	return hdl.Values{
		"en":    logic.FromUint64(1, en),
		"we":    logic.FromUint64(1, we),
		"addr":  logic.FromUint64(ramAddrBits, addr),
		"wdata": logic.FromUint64(ramDataWidth, wdata),
	}
}

func TestRAMWriteReadBack(t *testing.T) {
	sim := hdl.NewSimulator(NewRAM())
	out := sim.MustStep(ramIn(1, 1, 0x10, 0xdeadbeef)) // write word 4
	if got := out["rdata"].Uint64(); got != 0xdeadbeef {
		t.Errorf("write-through rdata = %#x", got)
	}
	out = sim.MustStep(ramIn(1, 0, 0x10, 0))
	if got := out["rdata"].Uint64(); got != 0xdeadbeef {
		t.Errorf("read back = %#x", got)
	}
	// different word still zero
	out = sim.MustStep(ramIn(1, 0, 0x14, 0))
	if got := out["rdata"].Uint64(); got != 0 {
		t.Errorf("untouched word = %#x", got)
	}
}

func TestRAMWordAlignment(t *testing.T) {
	sim := hdl.NewSimulator(NewRAM())
	sim.MustStep(ramIn(1, 1, 0x13, 0xabcd)) // byte addr 0x13 → word 4
	out := sim.MustStep(ramIn(1, 0, 0x10, 0))
	if got := out["rdata"].Uint64(); got != 0xabcd {
		t.Errorf("aligned access: rdata = %#x", got)
	}
}

func TestRAMDisabledDrivesZero(t *testing.T) {
	sim := hdl.NewSimulator(NewRAM())
	sim.MustStep(ramIn(1, 1, 0, 0xffffffff))
	out := sim.MustStep(ramIn(0, 0, 0, 0))
	if got := out["rdata"].Uint64(); got != 0 {
		t.Errorf("disabled rdata = %#x", got)
	}
}

func TestRAMMemoryBits(t *testing.T) {
	if got := hdl.MemoryBits(NewRAM()); got != 8192 {
		t.Errorf("memory bits = %d, want 8192 (1 KB)", got)
	}
	if got := hdl.PortWidths(NewRAM(), hdl.In); got != 44 {
		t.Errorf("PI bits = %d, want 44", got)
	}
	if got := hdl.PortWidths(NewRAM(), hdl.Out); got != 32 {
		t.Errorf("PO bits = %d, want 32", got)
	}
}

func TestRAMClockGating(t *testing.T) {
	r := NewRAM()
	sim := hdl.NewSimulator(r)
	// After a write cycle, exactly one word is ungated.
	sim.MustStep(ramIn(1, 1, 0x20, 1))
	ungated := 0
	for _, e := range r.Elements() {
		if !e.Gated() {
			ungated++
		}
	}
	if ungated != 1 {
		t.Errorf("ungated words after write = %d, want 1", ungated)
	}
	// After an idle cycle everything is gated again.
	sim.MustStep(ramIn(0, 0, 0, 0))
	for _, e := range r.Elements() {
		if !e.Gated() {
			t.Fatalf("element %s ungated while idle", e.Name())
		}
	}
}

func TestRAMWriteToggleActivity(t *testing.T) {
	r := NewRAM()
	sim := hdl.NewSimulator(r)
	sim.MustStep(ramIn(1, 1, 0, 0x0000ffff))
	if got := totalToggles(r); got != 16 {
		t.Errorf("first write toggles = %d, want 16", got)
	}
	sim.MustStep(ramIn(1, 1, 0, 0xffff0000))
	if got := totalToggles(r); got != 32 {
		t.Errorf("rewrite toggles = %d, want 32", got)
	}
	sim.MustStep(ramIn(1, 0, 0, 0)) // read: no toggles
	if got := totalToggles(r); got != 0 {
		t.Errorf("read toggles = %d, want 0", got)
	}
}

func totalToggles(c hdl.Core) int {
	n := 0
	for _, e := range c.Elements() {
		n += e.TakeToggles()
	}
	return n
}

func TestRAMReset(t *testing.T) {
	r := NewRAM()
	sim := hdl.NewSimulator(r)
	sim.MustStep(ramIn(1, 1, 0x40, 77))
	sim.Reset()
	out := sim.MustStep(ramIn(1, 0, 0x40, 0))
	if got := out["rdata"].Uint64(); got != 0 {
		t.Errorf("after reset rdata = %#x", got)
	}
}

func TestQuickRAMBehavesLikeMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := hdl.NewSimulator(NewRAM())
		model := map[uint64]uint64{}
		for i := 0; i < 300; i++ {
			addr := uint64(rng.Intn(1 << ramAddrBits))
			word := addr >> 2
			if rng.Intn(2) == 0 {
				data := rng.Uint64() & 0xffffffff
				sim.MustStep(ramIn(1, 1, addr, data))
				model[word] = data
			} else {
				out := sim.MustStep(ramIn(1, 0, addr, 0))
				if out["rdata"].Uint64() != model[word] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
