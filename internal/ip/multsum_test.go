package ip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

func macIn(a, b, c, en uint64) hdl.Values {
	return hdl.Values{
		"a":  logic.FromUint64(16, a),
		"b":  logic.FromUint64(16, b),
		"c":  logic.FromUint64(16, c),
		"en": logic.FromUint64(1, en),
	}
}

func TestMultSumComputes(t *testing.T) {
	sim := hdl.NewSimulator(NewMultSum())
	out := sim.MustStep(macIn(3, 5, 7, 1))
	if got := out["sum"].Uint64(); got != 3*5+7 {
		t.Errorf("sum = %d, want %d", got, 3*5+7)
	}
	out = sim.MustStep(macIn(65535, 65535, 65535, 1))
	want := (uint64(65535)*65535 + 65535) & 0xffffffff
	if got := out["sum"].Uint64(); got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestMultSumStreaming(t *testing.T) {
	sim := hdl.NewSimulator(NewMultSum())
	type op struct{ a, b, c uint64 }
	ops := []op{{2, 3, 1}, {100, 200, 50}, {65535, 65535, 65535}, {0, 0, 0}, {1, 1, 1}}
	for i, o := range ops {
		out := sim.MustStep(macIn(o.a, o.b, o.c, 1))
		want := (o.a*o.b + o.c) & 0xffffffff
		if got := out["sum"].Uint64(); got != want {
			t.Errorf("op %d: sum = %d, want %d", i, got, want)
		}
	}
}

func TestMultSumHoldsOutputWhenIdle(t *testing.T) {
	sim := hdl.NewSimulator(NewMultSum())
	sim.MustStep(macIn(9, 9, 0, 1))
	var out hdl.Values
	for i := 0; i < 5; i++ {
		out = sim.MustStep(macIn(7, 7, 7, 0)) // inputs wiggle, en low
	}
	if got := out["sum"].Uint64(); got != 81 {
		t.Errorf("idle output drifted to %d", got)
	}
}

func TestMultSumIdleHasNoDataActivity(t *testing.T) {
	m := NewMultSum()
	sim := hdl.NewSimulator(m)
	sim.MustStep(macIn(9, 9, 9, 1))
	drainToggles(m)
	sim.MustStep(macIn(0, 0, 0, 0))
	// Only the busy status bit may toggle when idle.
	total := 0
	for _, e := range m.Elements() {
		if e.Name() == "mac.busy" {
			e.TakeToggles()
			continue
		}
		total += e.TakeToggles()
	}
	if total != 0 {
		t.Errorf("idle cycle toggled %d data bits", total)
	}
}

func TestMultSumPortAndMemoryBits(t *testing.T) {
	m := NewMultSum()
	if got := hdl.PortWidths(m, hdl.In); got != 49 {
		t.Errorf("PI bits = %d, want 49", got)
	}
	if got := hdl.PortWidths(m, hdl.Out); got != 32 {
		t.Errorf("PO bits = %d, want 32", got)
	}
	// ra+rb+rc (48) + pp (128) + busy + sum (32)
	if got := hdl.MemoryBits(m); got != 209 {
		t.Errorf("memory bits = %d, want 209", got)
	}
}

func TestMultSumNeverGated(t *testing.T) {
	// The DesignWare-style MAC is not clock-gated: its free-running clock
	// tree gives the design a non-zero idle power floor (which the power
	// model needs — and which real MACs exhibit).
	m := NewMultSum()
	sim := hdl.NewSimulator(m)
	sim.MustStep(macIn(0, 0, 0, 0))
	sim.MustStep(macIn(0, 0, 0, 0))
	for _, e := range m.Elements() {
		if e.Gated() {
			t.Errorf("element %s gated", e.Name())
		}
	}
}

func TestQuickMultSumMatchesArithmetic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sim := hdl.NewSimulator(NewMultSum())
		for i := 0; i < 50; i++ {
			a := uint64(rng.Intn(1 << 16))
			b := uint64(rng.Intn(1 << 16))
			c := uint64(rng.Intn(1 << 16))
			out := sim.MustStep(macIn(a, b, c, 1))
			if out["sum"].Uint64() != (a*b+c)&0xffffffff {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
