package ip

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"

	"psmkit/internal/hdl"
	"psmkit/internal/logic"
)

func aesIdleIn() hdl.Values {
	return hdl.Values{
		"key":     logic.New(128),
		"din":     logic.New(128),
		"keyload": logic.New(1),
		"start":   logic.New(1),
		"dec":     logic.New(1),
		"flush":   logic.New(1),
	}
}

// aesRunBlock loads the key, starts one operation and runs until done,
// returning the output block and the number of cycles from start to done.
func aesRunBlock(t *testing.T, sim *hdl.Simulator, key, din []byte, dec bool) ([]byte, int) {
	t.Helper()
	in := aesIdleIn()
	in["key"] = logic.FromBytes(128, key)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)

	in = aesIdleIn()
	in["din"] = logic.FromBytes(128, din)
	in["start"] = logic.FromUint64(1, 1)
	if dec {
		in["dec"] = logic.FromUint64(1, 1)
	}
	out := sim.MustStep(in)
	cycles := 1
	for out["done"].Bit(0) != 1 {
		out = sim.MustStep(aesIdleIn())
		cycles++
		if cycles > 100 {
			t.Fatal("AES did not finish within 100 cycles")
		}
	}
	return out["dout"].Bytes(), cycles
}

func TestAESSboxProperties(t *testing.T) {
	if aesSbox[0x00] != 0x63 {
		t.Errorf("Sbox[0] = %#x, want 0x63", aesSbox[0])
	}
	if aesSbox[0x01] != 0x7c {
		t.Errorf("Sbox[1] = %#x, want 0x7c", aesSbox[1])
	}
	if aesSbox[0x53] != 0xed {
		t.Errorf("Sbox[0x53] = %#x, want 0xed (FIPS-197 example)", aesSbox[0x53])
	}
	seen := map[byte]bool{}
	for x := 0; x < 256; x++ {
		s := aesSbox[x]
		if seen[s] {
			t.Fatalf("Sbox not a permutation: duplicate %#x", s)
		}
		seen[s] = true
		if aesInvSbox[s] != byte(x) {
			t.Fatalf("InvSbox[Sbox[%#x]] = %#x", x, aesInvSbox[s])
		}
	}
}

func TestGF256Inverse(t *testing.T) {
	if gf256Inv(0) != 0 {
		t.Error("inv(0) should be 0")
	}
	for x := 1; x < 256; x++ {
		if got := gf256Mul(byte(x), gf256Inv(byte(x))); got != 1 {
			t.Fatalf("x*inv(x) = %#x for x=%#x", got, x)
		}
	}
}

func TestAESFIPS197Vector(t *testing.T) {
	key := logic.MustParseHex(128, "000102030405060708090a0b0c0d0e0f").Bytes()
	pt := logic.MustParseHex(128, "00112233445566778899aabbccddeeff").Bytes()
	want := logic.MustParseHex(128, "69c4e0d86a7b0430d8cdb78070b4c55a").Bytes()
	sim := hdl.NewSimulator(NewAES128())
	got, cycles := aesRunBlock(t, sim, key, pt, false)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
	if cycles != 11 {
		t.Errorf("encryption took %d cycles, want 11 (start + 10 rounds)", cycles)
	}
}

func TestAESMatchesCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sim := hdl.NewSimulator(NewAES128())
	for i := 0; i < 25; i++ {
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		want := make([]byte, 16)
		c, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(want, pt)
		got, _ := aesRunBlock(t, sim, key, pt, false)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: core %x != crypto/aes %x", i, got, want)
		}
	}
}

func TestAESDecryptMatchesCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sim := hdl.NewSimulator(NewAES128())
	for i := 0; i < 25; i++ {
		key := make([]byte, 16)
		ct := make([]byte, 16)
		rng.Read(key)
		rng.Read(ct)
		want := make([]byte, 16)
		c, err := aes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		c.Decrypt(want, ct)
		got, _ := aesRunBlock(t, sim, key, ct, true)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: core %x != crypto/aes %x", i, got, want)
		}
	}
}

func TestAESEncryptDecryptRoundTrip(t *testing.T) {
	f := func(keySeed, ptSeed int64) bool {
		rng := rand.New(rand.NewSource(keySeed))
		key := make([]byte, 16)
		rng.Read(key)
		rng = rand.New(rand.NewSource(ptSeed))
		pt := make([]byte, 16)
		rng.Read(pt)
		sim := hdl.NewSimulator(NewAES128())
		ct, _ := aesRunBlock(t, sim, key, pt, false)
		back, _ := aesRunBlock(t, sim, key, ct, true)
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAESKeyScheduleInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var rk aesBlock
		for i := range rk {
			rk[i] = byte(rng.Intn(256))
		}
		for r := 1; r <= 10; r++ {
			next := aesNextRoundKey(rk, r)
			if aesPrevRoundKey(next, r) != rk {
				return false
			}
			rk = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAESMixColumnsInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var b aesBlock
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		orig := b
		aesMixColumns(&b)
		aesInvMixColumns(&b)
		return b == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAESShiftRowsInverse(t *testing.T) {
	var b aesBlock
	for i := range b {
		b[i] = byte(i)
	}
	orig := b
	aesShiftRows(&b)
	if b == orig {
		t.Error("ShiftRows is identity")
	}
	aesInvShiftRows(&b)
	if b != orig {
		t.Error("InvShiftRows does not invert ShiftRows")
	}
}

func TestAESDonePulsesOneCycle(t *testing.T) {
	sim := hdl.NewSimulator(NewAES128())
	key := make([]byte, 16)
	pt := make([]byte, 16)
	_, _ = aesRunBlock(t, sim, key, pt, false)
	out := sim.MustStep(aesIdleIn())
	if out["done"].Bit(0) != 0 {
		t.Error("done stayed high after one cycle")
	}
}

func TestAESDoutHoldsAfterDone(t *testing.T) {
	sim := hdl.NewSimulator(NewAES128())
	key := logic.MustParseHex(128, "000102030405060708090a0b0c0d0e0f").Bytes()
	pt := logic.MustParseHex(128, "00112233445566778899aabbccddeeff").Bytes()
	got, _ := aesRunBlock(t, sim, key, pt, false)
	for i := 0; i < 5; i++ {
		out := sim.MustStep(aesIdleIn())
		if !bytes.Equal(out["dout"].Bytes(), got) {
			t.Fatal("dout drifted while idle")
		}
	}
}

func TestAESFlushClears(t *testing.T) {
	sim := hdl.NewSimulator(NewAES128())
	key := make([]byte, 16)
	key[0] = 1
	in := aesIdleIn()
	in["key"] = logic.FromBytes(128, key)
	in["keyload"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	in = aesIdleIn()
	in["din"] = logic.FromBytes(128, key)
	in["start"] = logic.FromUint64(1, 1)
	sim.MustStep(in)
	// flush mid-operation
	in = aesIdleIn()
	in["flush"] = logic.FromUint64(1, 1)
	out := sim.MustStep(in)
	if !out["dout"].IsZero() || out["done"].Bit(0) != 0 {
		t.Error("flush did not clear outputs")
	}
	// core is idle again: a fresh block works
	pt := logic.MustParseHex(128, "00112233445566778899aabbccddeeff").Bytes()
	want := make([]byte, 16)
	c, _ := aes.NewCipher(key)
	c.Encrypt(want, pt)
	got, _ := aesRunBlock(t, sim, key, pt, false)
	if !bytes.Equal(got, want) {
		t.Errorf("after flush: %x want %x", got, want)
	}
}

func TestAESTableIShape(t *testing.T) {
	a := NewAES128()
	if got := hdl.PortWidths(a, hdl.In); got != 260 {
		t.Errorf("PI bits = %d, want 260", got)
	}
	if got := hdl.PortWidths(a, hdl.Out); got != 129 {
		t.Errorf("PO bits = %d, want 129", got)
	}
	if got := hdl.MemoryBits(a); got != 647 {
		t.Errorf("memory bits = %d, want 647", got)
	}
}

func TestAESIdleIsGated(t *testing.T) {
	a := NewAES128()
	sim := hdl.NewSimulator(a)
	sim.MustStep(aesIdleIn())
	sim.MustStep(aesIdleIn())
	for _, e := range a.Elements() {
		if e.IsMemory() && e.Name() != "aes.phase" && e.Name() != "aes.done" && e.Name() != "aes.dout" {
			if !e.Gated() {
				t.Errorf("element %s ungated while idle", e.Name())
			}
		}
	}
}
